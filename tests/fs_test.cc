#include <gtest/gtest.h>

#include <filesystem>
#include <memory>

#include "fs/local_filesystem.h"
#include "fs/mem_filesystem.h"

namespace hive {
namespace {

class FsTest : public ::testing::TestWithParam<std::string> {
 protected:
  void SetUp() override {
    if (GetParam() == "mem") {
      fs_ = std::make_unique<MemFileSystem>();
    } else {
      char tmpl[] = "/tmp/hive_fs_test_XXXXXX";
      ASSERT_NE(mkdtemp(tmpl), nullptr);
      root_ = tmpl;
      fs_ = std::make_unique<LocalFileSystem>(root_);
    }
  }
  void TearDown() override {
    if (!root_.empty()) std::filesystem::remove_all(root_);
  }
  std::unique_ptr<FileSystem> fs_;
  std::string root_;
};

TEST_P(FsTest, WriteReadRoundTrip) {
  ASSERT_TRUE(fs_->WriteFile("/warehouse/t/f1", "hello world").ok());
  auto data = fs_->ReadFile("/warehouse/t/f1");
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(*data, "hello world");
}

TEST_P(FsTest, ReadRangeClampsToEof) {
  ASSERT_TRUE(fs_->WriteFile("/f", "abcdef").ok());
  auto mid = fs_->ReadRange("/f", 2, 3);
  ASSERT_TRUE(mid.ok());
  EXPECT_EQ(*mid, "cde");
  auto tail = fs_->ReadRange("/f", 4, 100);
  ASSERT_TRUE(tail.ok());
  EXPECT_EQ(*tail, "ef");
}

TEST_P(FsTest, StatAssignsFreshFileIds) {
  ASSERT_TRUE(fs_->WriteFile("/f", "v1").ok());
  auto s1 = fs_->Stat("/f");
  ASSERT_TRUE(s1.ok());
  ASSERT_TRUE(fs_->WriteFile("/f", "v2-longer").ok());
  auto s2 = fs_->Stat("/f");
  ASSERT_TRUE(s2.ok());
  EXPECT_NE(s1->file_id, s2->file_id) << "rewrite must change file identity (ETag)";
  EXPECT_EQ(s2->size, 9u);
}

TEST_P(FsTest, ListDirIsNonRecursive) {
  ASSERT_TRUE(fs_->WriteFile("/db/t/base_1/f0", "x").ok());
  ASSERT_TRUE(fs_->WriteFile("/db/t/delta_2_2/f0", "y").ok());
  ASSERT_TRUE(fs_->WriteFile("/db/t/top", "z").ok());
  auto entries = fs_->ListDir("/db/t");
  ASSERT_TRUE(entries.ok());
  ASSERT_EQ(entries->size(), 3u);
  EXPECT_EQ((*entries)[0].path, "/db/t/base_1");
  EXPECT_TRUE((*entries)[0].is_dir);
  EXPECT_EQ((*entries)[1].path, "/db/t/delta_2_2");
  EXPECT_EQ((*entries)[2].path, "/db/t/top");
  EXPECT_FALSE((*entries)[2].is_dir);
}

TEST_P(FsTest, MakeDirsAndExists) {
  EXPECT_FALSE(fs_->Exists("/a/b/c"));
  ASSERT_TRUE(fs_->MakeDirs("/a/b/c").ok());
  EXPECT_TRUE(fs_->Exists("/a/b/c"));
  EXPECT_TRUE(fs_->Exists("/a/b"));
  auto info = fs_->Stat("/a/b/c");
  ASSERT_TRUE(info.ok());
  EXPECT_TRUE(info->is_dir);
}

TEST_P(FsTest, DeleteRecursive) {
  ASSERT_TRUE(fs_->WriteFile("/t/base_1/f0", "x").ok());
  ASSERT_TRUE(fs_->WriteFile("/t/base_1/f1", "y").ok());
  ASSERT_TRUE(fs_->DeleteRecursive("/t/base_1").ok());
  EXPECT_FALSE(fs_->Exists("/t/base_1"));
  EXPECT_FALSE(fs_->Exists("/t/base_1/f0"));
  EXPECT_TRUE(fs_->Exists("/t"));
}

TEST_P(FsTest, RenameDirectory) {
  ASSERT_TRUE(fs_->WriteFile("/t/tmp_base/f0", "x").ok());
  ASSERT_TRUE(fs_->Rename("/t/tmp_base", "/t/base_5").ok());
  EXPECT_FALSE(fs_->Exists("/t/tmp_base"));
  auto data = fs_->ReadFile("/t/base_5/f0");
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(*data, "x");
}

// POSIX rename semantics, shared by both backends. Error *codes* differ
// between the in-memory model and the OS, so failures assert only !ok()
// plus the invariant that matters: nothing was destroyed.

TEST_P(FsTest, RenameFileOverFileReplacesAtomically) {
  ASSERT_TRUE(fs_->WriteFile("/t/src", "new").ok());
  ASSERT_TRUE(fs_->WriteFile("/t/dst", "old").ok());
  ASSERT_TRUE(fs_->Rename("/t/src", "/t/dst").ok());
  EXPECT_FALSE(fs_->Exists("/t/src"));
  auto data = fs_->ReadFile("/t/dst");
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(*data, "new");
}

TEST_P(FsTest, RenameFileOntoDirectoryFails) {
  ASSERT_TRUE(fs_->WriteFile("/t/src", "x").ok());
  ASSERT_TRUE(fs_->MakeDirs("/t/dst").ok());
  EXPECT_FALSE(fs_->Rename("/t/src", "/t/dst").ok());
  auto data = fs_->ReadFile("/t/src");
  ASSERT_TRUE(data.ok()) << "failed rename must leave the source intact";
  EXPECT_EQ(*data, "x");
}

TEST_P(FsTest, RenameDirectoryOntoFileFails) {
  ASSERT_TRUE(fs_->WriteFile("/t/src/f0", "x").ok());
  ASSERT_TRUE(fs_->WriteFile("/t/dst", "y").ok());
  EXPECT_FALSE(fs_->Rename("/t/src", "/t/dst").ok());
  EXPECT_TRUE(fs_->Exists("/t/src/f0"));
  auto data = fs_->ReadFile("/t/dst");
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(*data, "y");
}

TEST_P(FsTest, RenameDirectoryOntoNonEmptyDirectoryFails) {
  ASSERT_TRUE(fs_->WriteFile("/t/src/f0", "x").ok());
  ASSERT_TRUE(fs_->WriteFile("/t/dst/g0", "y").ok());
  EXPECT_FALSE(fs_->Rename("/t/src", "/t/dst").ok())
      << "rename must not merge directory trees";
  EXPECT_TRUE(fs_->Exists("/t/src/f0"));
  auto data = fs_->ReadFile("/t/dst/g0");
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(*data, "y");
  EXPECT_FALSE(fs_->Exists("/t/dst/f0"));
}

TEST_P(FsTest, RenameDirectoryOntoEmptyDirectorySucceeds) {
  ASSERT_TRUE(fs_->WriteFile("/t/src/f0", "x").ok());
  ASSERT_TRUE(fs_->MakeDirs("/t/dst").ok());
  ASSERT_TRUE(fs_->Rename("/t/src", "/t/dst").ok());
  EXPECT_FALSE(fs_->Exists("/t/src"));
  auto data = fs_->ReadFile("/t/dst/f0");
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(*data, "x");
}

TEST_P(FsTest, RenameToSelfIsNoOp) {
  ASSERT_TRUE(fs_->WriteFile("/t/f", "x").ok());
  ASSERT_TRUE(fs_->Rename("/t/f", "/t/f").ok());
  auto data = fs_->ReadFile("/t/f");
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(*data, "x");
}

TEST_P(FsTest, ReadMissingFileFails) {
  auto r = fs_->ReadFile("/nope");
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
}

TEST_P(FsTest, IoAccounting) {
  ASSERT_TRUE(fs_->WriteFile("/f", std::string(1000, 'a')).ok());
  fs_->ResetIoStats();
  ASSERT_TRUE(fs_->ReadFile("/f").ok());
  ASSERT_TRUE(fs_->ReadRange("/f", 0, 100).ok());
  EXPECT_EQ(fs_->bytes_read(), 1100u);
  EXPECT_EQ(fs_->read_calls(), 2u);
}

INSTANTIATE_TEST_SUITE_P(Backends, FsTest, ::testing::Values("mem", "local"));

TEST(PathTest, Helpers) {
  EXPECT_EQ(ParentPath("/a/b/c"), "/a/b");
  EXPECT_EQ(ParentPath("/a"), "/");
  EXPECT_EQ(JoinPath("/a", "b"), "/a/b");
  EXPECT_EQ(JoinPath("/", "b"), "/b");
  EXPECT_EQ(BaseName("/a/b/base_10"), "base_10");
  auto parts = SplitPath("//a/b//c/");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[2], "c");
}

}  // namespace
}  // namespace hive
