#include <gtest/gtest.h>

#include "fs/mem_filesystem.h"
#include "storage/acid.h"
#include "storage/cof.h"
#include "storage/sarg.h"

namespace hive {
namespace {

Schema SalesSchema() {
  Schema s;
  s.AddField("item_sk", DataType::Bigint());
  s.AddField("price", DataType::Decimal(7, 2));
  s.AddField("category", DataType::String());
  return s;
}

TEST(CofTest, WriteReadRoundTrip) {
  MemFileSystem fs;
  CofWriter writer(SalesSchema());
  for (int64_t i = 0; i < 100; ++i)
    writer.AppendRow({Value::Bigint(i), Value::Decimal(i * 100, 2),
                      Value::String(i % 2 ? "Sports" : "Books")});
  auto bytes = writer.Finish();
  ASSERT_TRUE(bytes.ok());
  ASSERT_TRUE(fs.WriteFile("/t/f0", *bytes).ok());

  auto reader = CofReader::Open(&fs, "/t/f0");
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ((*reader)->schema().num_fields(), 3u);
  EXPECT_EQ((*reader)->NumRows(), 100u);
  auto batch = (*reader)->ReadRowGroup(0, {0, 1, 2});
  ASSERT_TRUE(batch.ok());
  EXPECT_EQ(batch->num_rows(), 100u);
  EXPECT_EQ(batch->column(0)->GetI64(7), 7);
  EXPECT_EQ(batch->column(1)->GetValue(7).ToString(), "7.00");
  EXPECT_EQ(batch->column(2)->GetStr(7), "Sports");
}

TEST(CofTest, NullsSurviveRoundTrip) {
  MemFileSystem fs;
  Schema schema;
  schema.AddField("a", DataType::Bigint());
  schema.AddField("b", DataType::Double());
  schema.AddField("c", DataType::String());
  CofWriter writer(schema);
  writer.AppendRow({Value::Null(), Value::Double(1.5), Value::String("x")});
  writer.AppendRow({Value::Bigint(2), Value::Null(), Value::Null()});
  auto bytes = writer.Finish();
  ASSERT_TRUE(bytes.ok());
  ASSERT_TRUE(fs.WriteFile("/t/f", *bytes).ok());
  auto reader = CofReader::Open(&fs, "/t/f");
  ASSERT_TRUE(reader.ok());
  auto batch = (*reader)->ReadRowGroup(0, {0, 1, 2});
  ASSERT_TRUE(batch.ok());
  EXPECT_TRUE(batch->column(0)->IsNull(0));
  EXPECT_FALSE(batch->column(0)->IsNull(1));
  EXPECT_TRUE(batch->column(1)->IsNull(1));
  EXPECT_TRUE(batch->column(2)->IsNull(1));
  EXPECT_EQ(batch->column(2)->GetStr(0), "x");
}

TEST(CofTest, MultipleRowGroupsAndStats) {
  MemFileSystem fs;
  CofWriteOptions options;
  options.row_group_size = 10;
  CofWriter writer(SalesSchema(), options);
  for (int64_t i = 0; i < 35; ++i)
    writer.AppendRow({Value::Bigint(i), Value::Decimal(i, 2), Value::String("c")});
  auto bytes = writer.Finish();
  ASSERT_TRUE(bytes.ok());
  ASSERT_TRUE(fs.WriteFile("/t/f", *bytes).ok());
  auto reader = CofReader::Open(&fs, "/t/f");
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ((*reader)->num_row_groups(), 4u);
  const auto& rg1 = (*reader)->row_group(1);
  EXPECT_EQ(rg1.num_rows, 10u);
  EXPECT_EQ(rg1.stats[0].min.i64(), 10);
  EXPECT_EQ(rg1.stats[0].max.i64(), 19);
  auto file_stats = (*reader)->FileStats(0);
  EXPECT_EQ(file_stats.min.i64(), 0);
  EXPECT_EQ(file_stats.max.i64(), 34);
  EXPECT_EQ(file_stats.value_count, 35u);
}

TEST(CofTest, SargSkipsRowGroups) {
  MemFileSystem fs;
  CofWriteOptions options;
  options.row_group_size = 10;
  CofWriter writer(SalesSchema(), options);
  for (int64_t i = 0; i < 100; ++i)
    writer.AppendRow({Value::Bigint(i), Value::Decimal(i, 2), Value::String("c")});
  auto bytes = writer.Finish();
  ASSERT_TRUE(bytes.ok());
  ASSERT_TRUE(fs.WriteFile("/t/f", *bytes).ok());
  auto reader = CofReader::Open(&fs, "/t/f");
  ASSERT_TRUE(reader.ok());

  SearchArgument sarg;
  sarg.conjuncts.push_back({"item_sk", SargOp::kEq, {Value::Bigint(55)}, nullptr});
  int matching = 0;
  for (size_t rg = 0; rg < (*reader)->num_row_groups(); ++rg)
    if ((*reader)->MightMatch(rg, sarg)) ++matching;
  EXPECT_EQ(matching, 1);

  SearchArgument range;
  range.conjuncts.push_back(
      {"item_sk", SargOp::kBetween, {Value::Bigint(15), Value::Bigint(34)}, nullptr});
  matching = 0;
  for (size_t rg = 0; rg < (*reader)->num_row_groups(); ++rg)
    if ((*reader)->MightMatch(rg, range)) ++matching;
  EXPECT_EQ(matching, 3);  // row groups [10,19],[20,29],[30,39]
}

TEST(CofTest, BloomFilterSkipsNonMatchingGroups) {
  MemFileSystem fs;
  CofWriteOptions options;
  options.row_group_size = 100;
  options.bloom_columns = {"item_sk"};
  CofWriter writer(SalesSchema(), options);
  // Sparse keys so min/max ranges overlap but Blooms distinguish.
  for (int64_t i = 0; i < 300; ++i)
    writer.AppendRow({Value::Bigint(i * 1000 + (i % 100)), Value::Decimal(0, 2),
                      Value::String("c")});
  auto bytes = writer.Finish();
  ASSERT_TRUE(bytes.ok());
  ASSERT_TRUE(fs.WriteFile("/t/f", *bytes).ok());
  auto reader = CofReader::Open(&fs, "/t/f");
  ASSERT_TRUE(reader.ok());
  SearchArgument sarg;
  // Value inside global min/max but not present in any row group.
  sarg.conjuncts.push_back({"item_sk", SargOp::kEq, {Value::Bigint(1500)}, nullptr});
  int matching = 0;
  for (size_t rg = 0; rg < (*reader)->num_row_groups(); ++rg)
    if ((*reader)->MightMatch(rg, sarg)) ++matching;
  EXPECT_EQ(matching, 0);
}

TEST(CofTest, ProjectionReadsOnlyRequestedColumns) {
  MemFileSystem fs;
  CofWriter writer(SalesSchema());
  for (int64_t i = 0; i < 1000; ++i)
    writer.AppendRow({Value::Bigint(i), Value::Decimal(i, 2),
                      Value::String("long-category-string-" + std::to_string(i))});
  auto bytes = writer.Finish();
  ASSERT_TRUE(bytes.ok());
  ASSERT_TRUE(fs.WriteFile("/t/f", *bytes).ok());
  auto reader = CofReader::Open(&fs, "/t/f");
  ASSERT_TRUE(reader.ok());
  fs.ResetIoStats();
  auto one = (*reader)->ReadRowGroup(0, {0});
  ASSERT_TRUE(one.ok());
  uint64_t bytes_one = fs.bytes_read();
  fs.ResetIoStats();
  auto all = (*reader)->ReadRowGroup(0, {0, 1, 2});
  ASSERT_TRUE(all.ok());
  uint64_t bytes_all = fs.bytes_read();
  EXPECT_LT(bytes_one * 2, bytes_all) << "column projection should reduce IO";
}

TEST(CofTest, RleCompressesConstantColumns) {
  Schema schema;
  schema.AddField("k", DataType::Bigint());
  CofWriter constant(schema);
  CofWriter random(schema);
  for (int64_t i = 0; i < 10000; ++i) {
    constant.AppendRow({Value::Bigint(7)});
    random.AppendRow({Value::Bigint(i * 2654435761 % 1000000)});
  }
  auto c = constant.Finish();
  auto r = random.Finish();
  ASSERT_TRUE(c.ok());
  ASSERT_TRUE(r.ok());
  EXPECT_LT(c->size() * 10, r->size());
}

TEST(CofTest, DictionaryEncodingForLowCardinalityStrings) {
  Schema schema;
  schema.AddField("s", DataType::String());
  CofWriter low(schema), high(schema);
  for (int64_t i = 0; i < 5000; ++i) {
    low.AppendRow({Value::String(i % 3 ? "Sports" : "Books")});
    high.AppendRow({Value::String("unique-string-value-" + std::to_string(i))});
  }
  auto l = low.Finish();
  auto h = high.Finish();
  ASSERT_TRUE(l.ok());
  ASSERT_TRUE(h.ok());
  EXPECT_LT(l->size() * 3, h->size());
}

TEST(CofTest, CorruptFileRejected) {
  MemFileSystem fs;
  ASSERT_TRUE(fs.WriteFile("/t/garbage", "this is not a cof file at all").ok());
  auto reader = CofReader::Open(&fs, "/t/garbage");
  EXPECT_FALSE(reader.ok());
}

// --- ACID ---

TEST(AcidDirTest, ParseNames) {
  auto base = ParseAcidDirName("/w/t/base_100");
  EXPECT_EQ(base.kind, AcidDirKind::kBase);
  EXPECT_EQ(base.max_write_id, 100);
  auto delta = ParseAcidDirName("/w/t/delta_101_105");
  EXPECT_EQ(delta.kind, AcidDirKind::kDelta);
  EXPECT_EQ(delta.min_write_id, 101);
  EXPECT_EQ(delta.max_write_id, 105);
  auto dd = ParseAcidDirName("/w/t/delete_delta_103_103");
  EXPECT_EQ(dd.kind, AcidDirKind::kDeleteDelta);
  EXPECT_EQ(dd.min_write_id, 103);
  auto other = ParseAcidDirName("/w/t/random_dir");
  EXPECT_EQ(other.kind, AcidDirKind::kOther);
}

TEST(ValidWriteIdListTest, Validity) {
  ValidWriteIdList list{10, {4, 7}};
  EXPECT_TRUE(list.IsValid(1));
  EXPECT_FALSE(list.IsValid(4));
  EXPECT_FALSE(list.IsValid(11));
  EXPECT_TRUE(list.IsRangeValid(1, 3));
  EXPECT_FALSE(list.IsRangeValid(3, 5));
  EXPECT_TRUE(list.IsRangeValid(8, 10));
  EXPECT_FALSE(list.IsRangeValid(8, 11));
}

int64_t ScanCount(FileSystem* fs, const std::string& dir, const Schema& schema,
                  const ValidWriteIdList& snapshot) {
  AcidReader reader(fs, dir, schema);
  AcidScanOptions options;
  if (!reader.Open(snapshot, options).ok()) return -1;
  int64_t count = 0;
  bool done = false;
  for (;;) {
    auto batch = reader.NextBatch(&done);
    if (!batch.ok()) return -1;
    if (done) break;
    count += static_cast<int64_t>(batch->SelectedSize());
  }
  return count;
}

TEST(AcidTest, InsertAndScan) {
  MemFileSystem fs;
  Schema schema = SalesSchema();
  AcidWriter writer(&fs, "/w/t", schema, 1);
  for (int64_t i = 0; i < 50; ++i)
    writer.Insert({Value::Bigint(i), Value::Decimal(i, 2), Value::String("a")});
  ASSERT_TRUE(writer.Commit().ok());
  EXPECT_EQ(ScanCount(&fs, "/w/t", schema, ValidWriteIdList::All(1)), 50);
}

TEST(AcidTest, SnapshotHidesUncommittedWrites) {
  MemFileSystem fs;
  Schema schema = SalesSchema();
  AcidWriter w1(&fs, "/w/t", schema, 1);
  w1.Insert({Value::Bigint(1), Value::Decimal(0, 2), Value::String("a")});
  ASSERT_TRUE(w1.Commit().ok());
  AcidWriter w2(&fs, "/w/t", schema, 2);
  w2.Insert({Value::Bigint(2), Value::Decimal(0, 2), Value::String("b")});
  ASSERT_TRUE(w2.Commit().ok());

  // Snapshot taken before write 2 committed: write id 2 is open.
  ValidWriteIdList snap{2, {2}};
  EXPECT_EQ(ScanCount(&fs, "/w/t", schema, snap), 1);
  // Snapshot after both commits.
  EXPECT_EQ(ScanCount(&fs, "/w/t", schema, ValidWriteIdList::All(2)), 2);
  // Aborted write stays invisible forever.
  ValidWriteIdList aborted{2, {2}};
  EXPECT_EQ(ScanCount(&fs, "/w/t", schema, aborted), 1);
}

TEST(AcidTest, DeleteHidesRows) {
  MemFileSystem fs;
  Schema schema = SalesSchema();
  AcidWriter w1(&fs, "/w/t", schema, 1);
  for (int64_t i = 0; i < 10; ++i)
    w1.Insert({Value::Bigint(i), Value::Decimal(0, 2), Value::String("a")});
  ASSERT_TRUE(w1.Commit().ok());

  // Delete rows 3 and 7 of write 1 (bucket 0, row ids 3 and 7).
  AcidWriter w2(&fs, "/w/t", schema, 2);
  w2.Delete({1, 0, 3});
  w2.Delete({1, 0, 7});
  ASSERT_TRUE(w2.Commit().ok());

  EXPECT_EQ(ScanCount(&fs, "/w/t", schema, ValidWriteIdList::All(2)), 8);
  // A snapshot that does not see the delete still sees 10 rows.
  ValidWriteIdList before{2, {2}};
  EXPECT_EQ(ScanCount(&fs, "/w/t", schema, before), 10);
}

TEST(AcidTest, UpdateAsDeletePlusInsert) {
  MemFileSystem fs;
  Schema schema = SalesSchema();
  AcidWriter w1(&fs, "/w/t", schema, 1);
  w1.Insert({Value::Bigint(1), Value::Decimal(100, 2), Value::String("old")});
  ASSERT_TRUE(w1.Commit().ok());

  AcidWriter w2(&fs, "/w/t", schema, 2);
  w2.Delete({1, 0, 0});
  w2.Insert({Value::Bigint(1), Value::Decimal(200, 2), Value::String("new")});
  ASSERT_TRUE(w2.Commit().ok());

  AcidReader reader(&fs, "/w/t", schema);
  ASSERT_TRUE(reader.Open(ValidWriteIdList::All(2), {}).ok());
  bool done = false;
  std::vector<std::string> values;
  for (;;) {
    auto batch = reader.NextBatch(&done);
    ASSERT_TRUE(batch.ok());
    if (done) break;
    for (size_t i = 0; i < batch->SelectedSize(); ++i)
      values.push_back(batch->GetRow(i)[2].str());
  }
  ASSERT_EQ(values.size(), 1u);
  EXPECT_EQ(values[0], "new");
}

TEST(AcidTest, MinorCompactionMergesDeltas) {
  MemFileSystem fs;
  Schema schema = SalesSchema();
  for (int64_t wid = 1; wid <= 5; ++wid) {
    AcidWriter w(&fs, "/w/t", schema, wid);
    w.Insert({Value::Bigint(wid), Value::Decimal(0, 2), Value::String("x")});
    ASSERT_TRUE(w.Commit().ok());
  }
  Compactor compactor(&fs, "/w/t", schema);
  ASSERT_TRUE(compactor.RunMinor(ValidWriteIdList::All(5)).ok());
  EXPECT_TRUE(fs.Exists("/w/t/delta_1_5"));
  // Rows unchanged pre-clean and post-clean.
  EXPECT_EQ(ScanCount(&fs, "/w/t", schema, ValidWriteIdList::All(5)), 5);
  ASSERT_TRUE(compactor.Clean(ValidWriteIdList::All(5)).ok());
  EXPECT_FALSE(fs.Exists("/w/t/delta_1_1"));
  EXPECT_EQ(ScanCount(&fs, "/w/t", schema, ValidWriteIdList::All(5)), 5);
}

TEST(AcidTest, MajorCompactionAppliesDeletes) {
  MemFileSystem fs;
  Schema schema = SalesSchema();
  AcidWriter w1(&fs, "/w/t", schema, 1);
  for (int64_t i = 0; i < 20; ++i)
    w1.Insert({Value::Bigint(i), Value::Decimal(0, 2), Value::String("x")});
  ASSERT_TRUE(w1.Commit().ok());
  AcidWriter w2(&fs, "/w/t", schema, 2);
  for (int64_t i = 0; i < 10; ++i) w2.Delete({1, 0, i});
  ASSERT_TRUE(w2.Commit().ok());

  Compactor compactor(&fs, "/w/t", schema);
  ASSERT_TRUE(compactor.RunMajor(ValidWriteIdList::All(2)).ok());
  EXPECT_TRUE(fs.Exists("/w/t/base_2"));
  ASSERT_TRUE(compactor.Clean(ValidWriteIdList::All(2)).ok());
  EXPECT_FALSE(fs.Exists("/w/t/delta_1_1"));
  EXPECT_FALSE(fs.Exists("/w/t/delete_delta_2_2"));
  EXPECT_EQ(ScanCount(&fs, "/w/t", schema, ValidWriteIdList::All(2)), 10);
}

TEST(AcidTest, RecordIdsSurviveMajorCompaction) {
  MemFileSystem fs;
  Schema schema = SalesSchema();
  AcidWriter w1(&fs, "/w/t", schema, 1);
  for (int64_t i = 0; i < 5; ++i)
    w1.Insert({Value::Bigint(i), Value::Decimal(0, 2), Value::String("x")});
  ASSERT_TRUE(w1.Commit().ok());
  Compactor compactor(&fs, "/w/t", schema);
  ASSERT_TRUE(compactor.RunMajor(ValidWriteIdList::All(1)).ok());
  ASSERT_TRUE(compactor.Clean(ValidWriteIdList::All(1)).ok());

  // Delete by the ORIGINAL record id; must still hit after compaction.
  AcidWriter w2(&fs, "/w/t", schema, 2);
  w2.Delete({1, 0, 2});
  ASSERT_TRUE(w2.Commit().ok());
  EXPECT_EQ(ScanCount(&fs, "/w/t", schema, ValidWriteIdList::All(2)), 4);
}

TEST(AcidTest, SargPushdownSkipsRowGroupsThroughAcidReader) {
  MemFileSystem fs;
  Schema schema = SalesSchema();
  CofWriteOptions options;
  options.row_group_size = 100;
  AcidWriter writer(&fs, "/w/t", schema, 1, options);
  for (int64_t i = 0; i < 1000; ++i)
    writer.Insert({Value::Bigint(i), Value::Decimal(0, 2), Value::String("x")});
  ASSERT_TRUE(writer.Commit().ok());

  AcidReader reader(&fs, "/w/t", schema);
  AcidScanOptions scan;
  scan.sarg.conjuncts.push_back({"item_sk", SargOp::kEq, {Value::Bigint(555)}, nullptr});
  ASSERT_TRUE(reader.Open(ValidWriteIdList::All(1), scan).ok());
  bool done = false;
  int64_t rows = 0;
  for (;;) {
    auto batch = reader.NextBatch(&done);
    ASSERT_TRUE(batch.ok());
    if (done) break;
    rows += static_cast<int64_t>(batch->SelectedSize());
  }
  EXPECT_EQ(reader.row_groups_read(), 1u);
  EXPECT_EQ(reader.row_groups_skipped(), 9u);
  EXPECT_EQ(rows, 100);  // row-group granularity; exact filter applied above
}

TEST(AcidTest, EmptyDirectoryScansZeroRows) {
  MemFileSystem fs;
  Schema schema = SalesSchema();
  EXPECT_EQ(ScanCount(&fs, "/w/missing", schema, ValidWriteIdList::All(1)), 0);
}

}  // namespace
}  // namespace hive
