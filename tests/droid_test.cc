#include <gtest/gtest.h>

#include "federation/droid.h"

namespace hive {
namespace {

Schema EventSchema() {
  Schema s;
  s.AddField("__time", DataType::Timestamp());
  s.AddField("dim", DataType::String());
  s.AddField("country", DataType::String());
  s.AddField("metric", DataType::Double());
  s.AddField("clicks", DataType::Bigint());
  return s;
}

int64_t Ts(int year, unsigned month, unsigned day) {
  return DaysFromCivil(year, month, day) * 86400LL * 1000000LL;
}

class DroidTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(store_.CreateDataSource("events", EventSchema()).ok());
    RowBatch batch(EventSchema());
    auto add = [&](int64_t ts, const char* dim, const char* country, double metric,
                   int64_t clicks) {
      batch.column(0)->AppendI64(ts);
      batch.column(1)->AppendStr(dim);
      batch.column(2)->AppendStr(country);
      batch.column(3)->AppendF64(metric);
      batch.column(4)->AppendI64(clicks);
    };
    add(Ts(2017, 1, 5), "a", "US", 1.0, 10);
    add(Ts(2017, 2, 5), "a", "DE", 2.0, 20);
    add(Ts(2017, 6, 5), "b", "US", 3.0, 30);
    add(Ts(2018, 3, 5), "a", "US", 4.0, 40);
    add(Ts(2018, 9, 5), "c", "FR", 5.0, 50);
    add(Ts(2019, 1, 5), "b", "US", 6.0, 60);
    batch.set_num_rows(6);
    ASSERT_TRUE(store_.Ingest("events", batch).ok());
  }

  DroidStore store_;
};

TEST_F(DroidTest, GroupByWithSelector) {
  DroidQuery q;
  q.datasource = "events";
  q.dimensions = {"dim"};
  q.aggregations = {{"doubleSum", "m", "metric"}};
  q.filters = {{"country", "US"}};
  auto r = store_.Execute(q);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->num_rows(), 2u);  // a: 1+4, b: 3+6
  double total = 0;
  for (size_t i = 0; i < r->num_rows(); ++i) total += r->column(1)->GetF64(i);
  EXPECT_DOUBLE_EQ(total, 14.0);
}

TEST_F(DroidTest, TimeseriesWithInterval) {
  DroidQuery q;
  q.query_type = "timeseries";
  q.datasource = "events";
  q.aggregations = {{"longSum", "clicks", "clicks"}, {"count", "n", ""}};
  q.interval_start_us = Ts(2017, 1, 1);
  q.interval_end_us = Ts(2018, 1, 1);
  auto r = store_.Execute(q);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->num_rows(), 1u);
  EXPECT_EQ(r->column(0)->GetI64(0), 60);  // 10+20+30
  EXPECT_EQ(r->column(1)->GetI64(0), 3);
}

TEST_F(DroidTest, TopNWithOrderAndLimit) {
  DroidQuery q;
  q.query_type = "topN";
  q.datasource = "events";
  q.dimensions = {"dim"};
  q.aggregations = {{"doubleSum", "m", "metric"}};
  q.order_by = {{"m", false}};
  q.limit = 2;
  auto r = store_.Execute(q);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->num_rows(), 2u);
  EXPECT_EQ(r->column(0)->GetStr(0), "b");  // 3+6 = 9
  EXPECT_EQ(r->column(0)->GetStr(1), "a");  // 1+2+4 = 7
}

TEST_F(DroidTest, InFilterAndBounds) {
  DroidQuery q;
  q.datasource = "events";
  q.dimensions = {"country"};
  q.aggregations = {{"count", "n", ""}};
  q.in_dimension = {"dim"};
  q.in_values = {{"a", "c"}};
  DroidBound bound;
  bound.dimension = "metric";
  bound.has_lower = true;
  bound.lower = 1.5;
  q.bounds = {bound};
  auto r = store_.Execute(q);
  ASSERT_TRUE(r.ok());
  // dim in (a, c) and metric > 1.5: rows (a,DE,2), (a,US,4), (c,FR,5).
  int64_t total = 0;
  for (size_t i = 0; i < r->num_rows(); ++i) total += r->column(1)->GetI64(i);
  EXPECT_EQ(total, 3);
}

TEST_F(DroidTest, MinMaxAggregators) {
  DroidQuery q;
  q.query_type = "timeseries";
  q.datasource = "events";
  q.aggregations = {{"doubleMin", "lo", "metric"}, {"doubleMax", "hi", "metric"}};
  auto r = store_.Execute(q);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->column(0)->GetF64(0), 1.0);
  EXPECT_DOUBLE_EQ(r->column(1)->GetF64(0), 6.0);
}

TEST_F(DroidTest, SegmentsCutByMonth) {
  // 6 rows across 6 distinct months -> 6 segments.
  DroidQuery q;
  q.query_type = "select";
  q.datasource = "events";
  auto r = store_.Execute(q);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->num_rows(), 6u);
}

TEST_F(DroidTest, JsonRoundTripPreservesSemantics) {
  DroidQuery q;
  q.datasource = "events";
  q.dimensions = {"dim", "country"};
  q.aggregations = {{"doubleSum", "m", "metric"}, {"count", "n", ""}};
  q.filters = {{"country", "US"}};
  q.in_dimension = {"dim"};
  q.in_values = {{"a", "b"}};
  DroidBound bound;
  bound.dimension = "clicks";
  bound.has_lower = true;
  bound.lower = 15;
  bound.lower_strict = true;
  q.bounds = {bound};
  q.interval_start_us = Ts(2017, 1, 1);
  q.interval_end_us = Ts(2020, 1, 1);
  q.limit = 5;
  q.order_by = {{"m", false}};

  std::string json = q.ToJson();
  EXPECT_NE(json.find("\"queryType\": \"groupBy\""), std::string::npos);
  EXPECT_NE(json.find("\"type\": \"selector\""), std::string::npos);

  auto parsed = ParseDroidQuery(json);
  ASSERT_TRUE(parsed.ok());
  auto direct = store_.Execute(q);
  auto roundtrip = store_.Execute(*parsed);
  ASSERT_TRUE(direct.ok());
  ASSERT_TRUE(roundtrip.ok());
  ASSERT_EQ(direct->num_rows(), roundtrip->num_rows());
  for (size_t i = 0; i < direct->num_rows(); ++i)
    for (size_t c = 0; c < direct->num_columns(); ++c)
      EXPECT_EQ(direct->column(c)->GetValue(i).ToString(),
                roundtrip->column(c)->GetValue(i).ToString());
}

TEST_F(DroidTest, JsonEscaping) {
  DroidQuery q;
  q.datasource = "weird\"name";
  q.filters = {{"dim", "va\\lue\"x"}};
  auto parsed = ParseDroidQuery(q.ToJson());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->datasource, "weird\"name");
  ASSERT_EQ(parsed->filters.size(), 1u);
  EXPECT_EQ(parsed->filters[0].value, "va\\lue\"x");
}

TEST_F(DroidTest, UnknownDatasourceAndColumns) {
  DroidQuery q;
  q.datasource = "missing";
  EXPECT_FALSE(store_.Execute(q).ok());
  q.datasource = "events";
  q.dimensions = {"not_a_column"};
  EXPECT_FALSE(store_.Execute(q).ok());
}

TEST_F(DroidTest, MultipleIngestsAccumulate) {
  RowBatch batch(EventSchema());
  batch.column(0)->AppendI64(Ts(2017, 1, 20));
  batch.column(1)->AppendStr("a");
  batch.column(2)->AppendStr("US");
  batch.column(3)->AppendF64(100.0);
  batch.column(4)->AppendI64(1);
  batch.set_num_rows(1);
  ASSERT_TRUE(store_.Ingest("events", batch).ok());
  EXPECT_EQ(store_.NumRows("events"), 7u);
  // The inverted index rebuilds for the dirty segment.
  DroidQuery q;
  q.datasource = "events";
  q.dimensions = {"dim"};
  q.aggregations = {{"doubleSum", "m", "metric"}};
  q.filters = {{"dim", "a"}};
  auto r = store_.Execute(q);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->num_rows(), 1u);
  EXPECT_DOUBLE_EQ(r->column(1)->GetF64(0), 107.0);
}

}  // namespace
}  // namespace hive
