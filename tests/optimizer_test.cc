#include <gtest/gtest.h>

#include "fs/mem_filesystem.h"
#include "metastore/catalog.h"
#include "optimizer/binder.h"
#include "optimizer/optimizer.h"
#include "optimizer/rules.h"
#include "optimizer/stats.h"
#include "sql/parser.h"

namespace hive {
namespace {

/// Plan-level assertions on the optimizer stages (Section 4).
class OptimizerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    catalog_ = std::make_unique<Catalog>(&fs_);

    TableDesc fact;
    fact.db = "default";
    fact.name = "fact";
    fact.schema.AddField("f_dim_sk", DataType::Bigint());
    fact.schema.AddField("f_other_sk", DataType::Bigint());
    fact.schema.AddField("f_amount", DataType::Decimal(7, 2));
    fact.schema.AddField("f_note", DataType::String());
    fact.partition_cols.push_back({"f_day", DataType::Bigint()});
    fact.stats.row_count = 1000000;
    ColumnStatistics dim_stats;
    dim_stats.num_values = 1000000;
    dim_stats.min = Value::Bigint(0);
    dim_stats.max = Value::Bigint(999);
    for (int i = 0; i < 1000; ++i) dim_stats.ndv.AddInt64(i);
    fact.stats.columns["f_dim_sk"] = dim_stats;
    ASSERT_TRUE(catalog_->CreateTable(fact).ok());
    for (int day = 0; day < 10; ++day)
      ASSERT_TRUE(catalog_->AddPartition("default", "fact", {Value::Bigint(day)}).ok());

    TableDesc dim;
    dim.db = "default";
    dim.name = "dim";
    dim.schema.AddField("d_sk", DataType::Bigint());
    dim.schema.AddField("d_name", DataType::String());
    dim.stats.row_count = 1000;
    ASSERT_TRUE(catalog_->CreateTable(dim).ok());

    TableDesc other;
    other.db = "default";
    other.name = "other";
    other.schema.AddField("o_sk", DataType::Bigint());
    other.schema.AddField("o_flag", DataType::Bigint());
    other.stats.row_count = 50000;
    ASSERT_TRUE(catalog_->CreateTable(other).ok());
  }

  RelNodePtr Plan(const std::string& sql) {
    auto stmt = Parser::Parse(sql);
    EXPECT_TRUE(stmt.ok()) << stmt.status().ToString();
    auto* select = dynamic_cast<SelectStatement*>(stmt->get());
    Binder binder(catalog_.get(), &config_);
    auto bound = binder.BindSelect(select->select);
    EXPECT_TRUE(bound.ok()) << bound.status().ToString();
    Optimizer optimizer(catalog_.get(), &config_);
    auto optimized = optimizer.Optimize(*bound);
    EXPECT_TRUE(optimized.ok()) << optimized.status().ToString();
    return optimized.ok() ? *optimized : nullptr;
  }

  static void Visit(const RelNodePtr& node,
                    const std::function<void(const RelNodePtr&)>& fn) {
    fn(node);
    for (const RelNodePtr& input : node->inputs) Visit(input, fn);
  }

  static int CountKind(const RelNodePtr& plan, RelKind kind) {
    int n = 0;
    Visit(plan, [&](const RelNodePtr& node) { n += node->kind == kind ? 1 : 0; });
    return n;
  }

  MemFileSystem fs_;
  Config config_;
  std::unique_ptr<Catalog> catalog_;
};

TEST_F(OptimizerTest, FiltersPushIntoScans) {
  RelNodePtr plan = Plan("SELECT f_amount FROM fact WHERE f_dim_sk = 5 AND f_amount > 10");
  EXPECT_EQ(CountKind(plan, RelKind::kFilter), 0) << plan->ToString();
  Visit(plan, [&](const RelNodePtr& node) {
    if (node->kind == RelKind::kScan) {
      EXPECT_EQ(node->scan_filters.size(), 2u) << plan->ToString();
    }
  });
}

TEST_F(OptimizerTest, FilterInJoinConditionSplitsToSides) {
  RelNodePtr plan = Plan(
      "SELECT COUNT(*) FROM fact JOIN dim ON f_dim_sk = d_sk AND d_name = 'x' "
      "AND f_amount > 5");
  Visit(plan, [&](const RelNodePtr& node) {
    if (node->kind != RelKind::kScan) return;
    EXPECT_EQ(node->scan_filters.size(), 1u)
        << node->table.name << ": single-side conjuncts must leave the ON clause";
  });
}

TEST_F(OptimizerTest, ConstantFoldingSimplifiesPredicates) {
  RelNodePtr plan = Plan("SELECT f_amount FROM fact WHERE 1 + 1 = 2 AND f_dim_sk > 2 * 3");
  Visit(plan, [&](const RelNodePtr& node) {
    if (node->kind != RelKind::kScan) return;
    ASSERT_EQ(node->scan_filters.size(), 1u) << "TRUE conjunct must fold away";
    EXPECT_EQ(node->scan_filters[0]->ToString(), "(f_dim_sk > 6)");
  });
}

TEST_F(OptimizerTest, AlwaysFalseFilterBecomesEmptyValues) {
  RelNodePtr plan = Plan("SELECT f_amount FROM fact WHERE 1 = 2");
  EXPECT_EQ(CountKind(plan, RelKind::kScan), 0) << plan->ToString();
  EXPECT_GE(CountKind(plan, RelKind::kValues), 1);
}

TEST_F(OptimizerTest, ColumnPruningNarrowsScans) {
  RelNodePtr plan = Plan("SELECT f_amount FROM fact");
  Visit(plan, [&](const RelNodePtr& node) {
    if (node->kind == RelKind::kScan) {
      EXPECT_EQ(node->projected.size(), 1u) << "only f_amount should be read";
    }
  });
}

TEST_F(OptimizerTest, CountStarScanKeepsOneColumn) {
  RelNodePtr plan = Plan("SELECT COUNT(*) FROM fact");
  Visit(plan, [&](const RelNodePtr& node) {
    if (node->kind == RelKind::kScan) {
      EXPECT_EQ(node->projected.size(), 1u);
    }
  });
}

TEST_F(OptimizerTest, StaticPartitionPruning) {
  RelNodePtr plan = Plan("SELECT f_amount FROM fact WHERE f_day = 3");
  Visit(plan, [&](const RelNodePtr& node) {
    if (node->kind != RelKind::kScan) return;
    EXPECT_TRUE(node->partitions_pruned);
    EXPECT_EQ(node->pruned_partitions.size(), 1u);
  });
  RelNodePtr range = Plan("SELECT f_amount FROM fact WHERE f_day >= 8");
  Visit(range, [&](const RelNodePtr& node) {
    if (node->kind == RelKind::kScan) {
      EXPECT_EQ(node->pruned_partitions.size(), 2u);
    }
  });
}

TEST_F(OptimizerTest, JoinReorderingPutsSmallRelationsFirst) {
  // fact (1M) x other (50k) x dim (1k): reordering should join the small
  // relations before the giant one touches the intermediate result.
  config_.cbo_enabled = true;
  RelNodePtr plan = Plan(
      "SELECT COUNT(*) FROM fact, other, dim "
      "WHERE f_dim_sk = d_sk AND f_other_sk = o_sk");
  // The first (deepest) join must not be fact-x-something-cross; find the
  // deepest join and check its left input is not the fact table alone with
  // a cross join.
  const RelNode* deepest = nullptr;
  Visit(plan, [&](const RelNodePtr& node) {
    if (node->kind == RelKind::kJoin) deepest = node.get();
  });
  ASSERT_NE(deepest, nullptr);
  EXPECT_NE(deepest->join_type, TableRef::JoinType::kCross)
      << "greedy order should avoid Cartesian products:\n" << plan->ToString();
}

TEST_F(OptimizerTest, SemiJoinReducerAttachedForSelectiveBuildSide) {
  config_.semijoin_reduction_enabled = true;
  RelNodePtr plan = Plan(
      "SELECT SUM(f_amount) FROM fact, dim "
      "WHERE f_dim_sk = d_sk AND d_name = 'selective'");
  bool found = false;
  Visit(plan, [&](const RelNodePtr& node) {
    if (node->kind == RelKind::kScan && node->table.name == "fact")
      found = !node->semijoin_reducers.empty();
  });
  EXPECT_TRUE(found) << plan->ToString();
}

TEST_F(OptimizerTest, SemiJoinReducerMarksPartitionPruningVariant) {
  config_.semijoin_reduction_enabled = true;
  config_.dynamic_partition_pruning_enabled = true;
  RelNodePtr plan = Plan(
      "SELECT SUM(f_amount) FROM fact, dim "
      "WHERE f_day = d_sk AND d_name = 'selective'");
  Visit(plan, [&](const RelNodePtr& node) {
    if (node->kind == RelKind::kScan && node->table.name == "fact") {
      ASSERT_FALSE(node->semijoin_reducers.empty());
      EXPECT_TRUE(node->semijoin_reducers[0].partition_pruning)
          << "join key is the partition column";
    }
  });
}

TEST_F(OptimizerTest, NoSemiJoinReducerWhenDisabled) {
  config_.semijoin_reduction_enabled = false;
  RelNodePtr plan = Plan(
      "SELECT SUM(f_amount) FROM fact, dim "
      "WHERE f_dim_sk = d_sk AND d_name = 'selective'");
  Visit(plan, [&](const RelNodePtr& node) {
    if (node->kind == RelKind::kScan) {
      EXPECT_TRUE(node->semijoin_reducers.empty());
    }
  });
}

TEST_F(OptimizerTest, RowEstimatesUseNdvForEquality) {
  RelNodePtr plan = Plan("SELECT f_amount FROM fact WHERE f_dim_sk = 7");
  // 1M rows, NDV(f_dim_sk) ~ 1000 -> estimate ~ 1000.
  Visit(plan, [&](const RelNodePtr& node) {
    if (node->kind == RelKind::kScan) {
      EXPECT_GT(node->row_estimate, 100.0);
      EXPECT_LT(node->row_estimate, 10000.0) << plan->ToString();
    }
  });
}

TEST_F(OptimizerTest, RuntimeStatsOverrideEstimates) {
  Optimizer optimizer(catalog_.get(), &config_);
  auto stmt = Parser::Parse("SELECT f_amount FROM fact WHERE f_dim_sk = 7");
  auto* select = dynamic_cast<SelectStatement*>(stmt->get());
  Binder binder(catalog_.get(), &config_);
  auto bound = binder.BindSelect(select->select);
  ASSERT_TRUE(bound.ok());
  // Derive once to find the scan digest.
  auto first = optimizer.Optimize(*bound);
  ASSERT_TRUE(first.ok());
  std::string digest;
  Visit(*first, [&](const RelNodePtr& node) {
    if (node->kind == RelKind::kScan) digest = node->Digest();
  });
  // Re-derive with a runtime override claiming 123456 rows.
  std::map<std::string, int64_t> overrides{{digest, 123456}};
  DeriveRowEstimates(*first, &overrides);
  Visit(*first, [&](const RelNodePtr& node) {
    if (node->kind == RelKind::kScan) {
      EXPECT_DOUBLE_EQ(node->row_estimate, 123456.0);
    }
  });
}

TEST_F(OptimizerTest, ExplainDigestStableAcrossIdenticalPlans) {
  RelNodePtr a = Plan("SELECT f_amount FROM fact WHERE f_dim_sk = 5");
  RelNodePtr b = Plan("SELECT f_amount FROM fact WHERE f_dim_sk = 5");
  EXPECT_EQ(a->Digest(), b->Digest());
  RelNodePtr c = Plan("SELECT f_amount FROM fact WHERE f_dim_sk = 6");
  EXPECT_NE(a->Digest(), c->Digest());
}

}  // namespace
}  // namespace hive
