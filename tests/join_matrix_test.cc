#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "fs/fault_injection.h"
#include "fs/mem_filesystem.h"
#include "llap/daemon.h"
#include "server/hive_server.h"
#include "server/workload_loader.h"

namespace hive {
namespace {

/// The join matrix: every join shape the flat-hash engine supports, asserted
/// byte-identical across the serial operator, the morsel-parallel operator at
/// every executor count, the perfect-hash and generic table variants, and a
/// seeded fault schedule. The serial engine with parallel join and perfect
/// hash both disabled is the reference — the slow, boring path every
/// optimization must reproduce row for row.
class JoinMatrixTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    mem_ = new MemFileSystem();
    faults_ = new FaultInjectingFileSystem(mem_, /*seed=*/1);
    Config config;
    config.container_startup_us = 0;
    config.num_executors = 8;  // pool size; sessions scale workers below it
    server_ = new HiveServer2(faults_, config);
    faults_->set_clock(server_->clock());
    Connection loader = server_->Connect();
    TpcdsOptions options;
    options.days = 5;  // keep the suite fast
    ASSERT_TRUE(LoadTpcds(loader, options).ok());
  }
  static void TearDownTestSuite() {
    delete server_;
    delete faults_;
    delete mem_;
  }

  void TearDown() override {
    faults_->ClearRules();
    faults_->ResetSchedule();
    faults_->Reseed(1);
    if (server_->llap()) server_->llap()->cache()->Clear();
  }

  /// Reference session: serial engine, flat table but no parallel build,
  /// no perfect hash — the baseline all variants must match.
  static Connection BaselineSession() {
    Connection session = server_->Connect();
    session.config().result_cache_enabled = false;
    session.config().parallel_scan_enabled = false;
    session.config().parallel_join_enabled = false;
    session.config().perfect_hash_join_enabled = false;
    return session;
  }

  /// Session configured for a given worker count (0 = serial engine).
  static Connection SessionFor(int workers, bool perfect_hash = true) {
    Connection session = server_->Connect();
    session.config().result_cache_enabled = false;
    session.config().perfect_hash_join_enabled = perfect_hash;
    if (workers == 0) {
      session.config().parallel_scan_enabled = false;
    } else {
      session.config().num_executors = workers;
    }
    return session;
  }

  static std::vector<std::string> Rows(const QueryResult& result) {
    std::vector<std::string> out;
    out.reserve(result.rows.size());
    for (const auto& row : result.rows) {
      std::string line;
      for (const Value& v : row) {
        line += v.ToString();
        line += '|';
      }
      out.push_back(std::move(line));
    }
    return out;
  }

  /// Runs `sql` on the baseline session and on every engine variant,
  /// asserting byte-identical rows everywhere.
  void ExpectIdenticalEverywhere(const std::string& name,
                                 const std::string& sql) {
    Connection baseline_conn = BaselineSession();
    auto baseline = baseline_conn.Execute(sql);
    ASSERT_TRUE(baseline.ok()) << name << ": " << baseline.status().ToString();
    const std::vector<std::string> expected = Rows(*baseline);
    for (int workers : {0, 1, 2, 4, 8}) {
      for (bool perfect : {false, true}) {
        Connection conn = SessionFor(workers, perfect);
        auto result = conn.Execute(sql);
        ASSERT_TRUE(result.ok()) << name << " @" << workers
                                 << (perfect ? "/ph" : "") << ": "
                                 << result.status().ToString();
        EXPECT_EQ(Rows(*result), expected)
            << name << " differs at " << workers << " executors"
            << (perfect ? " with perfect hash" : "");
      }
    }
  }

  static MemFileSystem* mem_;
  static FaultInjectingFileSystem* faults_;
  static HiveServer2* server_;
};

MemFileSystem* JoinMatrixTest::mem_ = nullptr;
FaultInjectingFileSystem* JoinMatrixTest::faults_ = nullptr;
HiveServer2* JoinMatrixTest::server_ = nullptr;

/// The matrix proper: one named query per join shape.
struct MatrixQuery {
  const char* name;
  const char* sql;
};

const MatrixQuery kMatrix[] = {
    // Inner fact x dim on a dense integer key: the perfect-hash sweet spot.
    {"inner_fact_dim",
     "SELECT ss_item_sk, i_category, ss_quantity FROM store_sales, item "
     "WHERE ss_item_sk = i_item_sk AND ss_quantity > 15"},
    // Inner join with an extra residual conjunct beyond the equi key.
    {"inner_residual",
     "SELECT ss_ticket_number, sr_return_amt FROM store_sales "
     "JOIN store_returns ON ss_ticket_number = sr_ticket_number "
     "AND ss_quantity > 5"},
    // Fact x fact: duplicate keys on both sides of the table.
    {"fact_fact_dup_keys",
     "SELECT ss_item_sk, sr_return_amt, ss_sales_price FROM store_sales "
     "JOIN store_returns ON ss_item_sk = sr_item_sk "
     "WHERE ss_quantity > 18"},
    // Left outer: unmatched probe rows must null-pad deterministically.
    {"left_outer",
     "SELECT d_date_sk, d_year, sr_item_sk FROM date_dim "
     "LEFT JOIN store_returns ON d_date_sk = sr_returned_date_sk"},
    // Right outer: normalized to a left join with swapped inputs.
    {"right_outer",
     "SELECT sr_item_sk, d_date_sk, d_moy FROM store_returns "
     "RIGHT JOIN date_dim ON sr_returned_date_sk = d_date_sk"},
    // Full outer: both unmatched tails emit, build tail in build-row order.
    {"full_outer",
     "SELECT d_date_sk, s_store_sk, s_state FROM date_dim "
     "FULL JOIN store ON d_date_sk = s_store_sk"},
    // Empty build side: dim filter matches nothing; probe must survive.
    {"empty_build_inner",
     "SELECT ss_item_sk, i_brand FROM store_sales, item "
     "WHERE ss_item_sk = i_item_sk AND i_category = 'NoSuchCategory'"},
    {"empty_build_left",
     "SELECT c_customer_sk, ss_ticket_number FROM customer "
     "LEFT JOIN store_sales ON c_customer_sk = ss_customer_sk "
     "AND ss_quantity > 1000"},
    // Semi / anti shapes (compiled from IN / NOT EXISTS).
    {"semi",
     "SELECT COUNT(*) FROM store_sales WHERE ss_item_sk IN "
     "(SELECT i_item_sk FROM item WHERE i_category = 'Sports')"},
    {"anti",
     "SELECT COUNT(*) FROM customer c WHERE NOT EXISTS "
     "(SELECT 1 FROM store_sales ss WHERE ss.ss_customer_sk = c.c_customer_sk)"},
    // Aggregation stacked on a join: flat agg table over flat join table.
    {"join_then_agg",
     "SELECT i_category, COUNT(*) AS cnt, SUM(ss_quantity) FROM store_sales, "
     "item WHERE ss_item_sk = i_item_sk GROUP BY i_category ORDER BY "
     "i_category"},
    // DISTINCT aggregate over join output (hash-set accumulator path).
    {"distinct_agg",
     "SELECT COUNT(DISTINCT ss_item_sk), SUM(DISTINCT ss_sales_price) "
     "FROM store_sales, store WHERE ss_store_sk = s_store_sk"},
};

TEST_F(JoinMatrixTest, MatrixByteIdenticalAcrossEngines) {
  for (const MatrixQuery& q : kMatrix) {
    ExpectIdenticalEverywhere(q.name, q.sql);
  }
}

TEST_F(JoinMatrixTest, PerfectHashEngagesOnDenseDimensionKey) {
  // The fact x dim query keys the build side on i_item_sk, a dense
  // duplicate-free integer domain: the perfect-hash table must engage (its
  // engagement counter moves) and still match the generic-table rows.
  const std::string sql = kMatrix[0].sql;
  Connection generic_conn = SessionFor(4, /*perfect_hash=*/false);
  auto generic = generic_conn.Execute(sql);
  ASSERT_TRUE(generic.ok()) << generic.status().ToString();

  int64_t before = server_->metrics()->counter("exec.join.perfect_hash")->value();
  Connection perfect_conn = SessionFor(4, /*perfect_hash=*/true);
  auto perfect = perfect_conn.Execute(sql);
  ASSERT_TRUE(perfect.ok()) << perfect.status().ToString();
  int64_t after = server_->metrics()->counter("exec.join.perfect_hash")->value();
  EXPECT_GT(after, before) << "perfect hash never engaged on a dense int key";
  EXPECT_EQ(Rows(*perfect), Rows(*generic));
}

TEST_F(JoinMatrixTest, GenericTableHandlesDuplicateKeys) {
  // Duplicate build keys must force the generic table even with perfect
  // hashing enabled (TryBuild detects the duplicate and falls back).
  const std::string sql =
      "SELECT sr_ticket_number, ss_sales_price FROM store_returns "
      "JOIN store_sales ON sr_item_sk = ss_item_sk WHERE sr_return_amt > 90";
  int64_t before = server_->metrics()->counter("exec.join.perfect_hash")->value();
  Connection conn = SessionFor(4, /*perfect_hash=*/true);
  auto result = conn.Execute(sql);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  int64_t after = server_->metrics()->counter("exec.join.perfect_hash")->value();
  EXPECT_EQ(after, before)
      << "perfect hash engaged on a build side with duplicate keys";
}

TEST_F(JoinMatrixTest, MatrixSurvivesFaultSeeds) {
  // A seeded schedule of transient read errors and stragglers must never
  // change join results: retries and speculation absorb the faults.
  std::vector<std::vector<std::string>> expected;
  for (const MatrixQuery& q : kMatrix) {
    Connection conn = SessionFor(8);
    auto r = conn.Execute(q.sql);
    ASSERT_TRUE(r.ok()) << q.name << ": " << r.status().ToString();
    expected.push_back(Rows(*r));
  }
  for (uint64_t seed : {7u, 23u, 101u}) {
    faults_->ClearRules();
    faults_->ResetSchedule();
    faults_->Reseed(seed);
    FaultRule rule;
    rule.path_prefix = "/warehouse";
    rule.read_error_rate = 0.1;
    rule.latency_rate = 0.1;
    rule.latency_us = 40000;
    faults_->AddRule(rule);
    if (server_->llap()) server_->llap()->cache()->Clear();
    size_t i = 0;
    for (const MatrixQuery& q : kMatrix) {
      Connection conn = SessionFor(8);
    auto r = conn.Execute(q.sql);
      ASSERT_TRUE(r.ok()) << q.name << " seed " << seed << ": "
                          << r.status().ToString();
      EXPECT_EQ(Rows(*r), expected[i])
          << q.name << " changed under fault seed " << seed;
      ++i;
    }
  }
}

}  // namespace
}  // namespace hive
