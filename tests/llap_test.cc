#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "fs/mem_filesystem.h"
#include "llap/daemon.h"
#include "storage/acid.h"

namespace hive {
namespace {

Schema TestSchema() {
  Schema s;
  s.AddField("a", DataType::Bigint());
  s.AddField("b", DataType::String());
  return s;
}

void WriteCofFile(MemFileSystem* fs, const std::string& path, int rows,
                  const std::string& marker) {
  CofWriter writer(TestSchema());
  for (int i = 0; i < rows; ++i)
    writer.AppendRow({Value::Bigint(i), Value::String(marker)});
  auto bytes = writer.Finish();
  ASSERT_TRUE(bytes.ok());
  ASSERT_TRUE(fs->WriteFile(path, *bytes).ok());
}

TEST(LlapCacheTest, ChunksCachedByFileRowGroupColumn) {
  MemFileSystem fs;
  Config config;
  LlapCacheProvider cache(&fs, config);
  WriteCofFile(&fs, "/t/f0", 100, "x");

  auto reader = cache.OpenReader("/t/f0");
  ASSERT_TRUE(reader.ok());
  fs.ResetIoStats();
  auto chunk1 = cache.ReadChunk(*reader, 0, 0);
  ASSERT_TRUE(chunk1.ok());
  uint64_t bytes_first = fs.bytes_read();
  EXPECT_GT(bytes_first, 0u);

  auto chunk2 = cache.ReadChunk(*reader, 0, 0);
  ASSERT_TRUE(chunk2.ok());
  EXPECT_EQ(fs.bytes_read(), bytes_first) << "second read must hit the cache";
  EXPECT_EQ(cache.data_hits(), 1u);
  EXPECT_EQ(*chunk1, *chunk2) << "same shared chunk";

  // A different column is a different cache entry.
  auto chunk3 = cache.ReadChunk(*reader, 0, 1);
  ASSERT_TRUE(chunk3.ok());
  EXPECT_GT(fs.bytes_read(), bytes_first);
}

TEST(LlapCacheTest, MetadataCachedAcrossOpens) {
  MemFileSystem fs;
  LlapCacheProvider cache(&fs, Config{});
  WriteCofFile(&fs, "/t/f0", 10, "x");
  auto r1 = cache.OpenReader("/t/f0");
  auto r2 = cache.OpenReader("/t/f0");
  ASSERT_TRUE(r1.ok() && r2.ok());
  EXPECT_EQ(r1->get(), r2->get()) << "same cached reader";
  EXPECT_EQ(cache.metadata_hits(), 1u);
}

TEST(LlapCacheTest, FileIdChangeInvalidates) {
  // The ETag analogue (Section 5.1): rewriting a path yields a new FileId;
  // cached chunks for the old file must never serve the new one.
  MemFileSystem fs;
  LlapCacheProvider cache(&fs, Config{});
  WriteCofFile(&fs, "/t/f0", 10, "old");
  auto r1 = cache.OpenReader("/t/f0");
  ASSERT_TRUE(r1.ok());
  auto old_chunk = cache.ReadChunk(*r1, 0, 1);
  ASSERT_TRUE(old_chunk.ok());
  EXPECT_EQ((*old_chunk)->GetStr(0), "old");

  WriteCofFile(&fs, "/t/f0", 10, "new");
  auto r2 = cache.OpenReader("/t/f0");
  ASSERT_TRUE(r2.ok());
  EXPECT_NE((*r2)->file_id(), (*r1)->file_id());
  auto new_chunk = cache.ReadChunk(*r2, 0, 1);
  ASSERT_TRUE(new_chunk.ok());
  EXPECT_EQ((*new_chunk)->GetStr(0), "new");
}

TEST(LlapCacheTest, EvictionUnderCapacity) {
  MemFileSystem fs;
  Config config;
  config.llap_cache_capacity_bytes = 4096;  // tiny cache
  LlapCacheProvider cache(&fs, config);
  for (int f = 0; f < 10; ++f)
    WriteCofFile(&fs, "/t/f" + std::to_string(f), 200, "data");
  for (int f = 0; f < 10; ++f) {
    auto reader = cache.OpenReader("/t/f" + std::to_string(f));
    ASSERT_TRUE(reader.ok());
    ASSERT_TRUE(cache.ReadChunk(*reader, 0, 0).ok());
    ASSERT_TRUE(cache.ReadChunk(*reader, 0, 1).ok());
  }
  EXPECT_LE(cache.used_bytes(), 4096u);
  EXPECT_LT(cache.cached_chunks(), 20u) << "some chunks must have been evicted";
}

TEST(LlapCacheTest, MvccViaAcidFileSelection) {
  // Two snapshots address different delta files; both are served correctly
  // from one cache because keys carry file identity (the "MVCC view").
  MemFileSystem fs;
  Config config;
  LlapCacheProvider cache(&fs, config);
  Schema schema = TestSchema();
  AcidWriter w1(&fs, "/w/t", schema, 1);
  w1.Insert({Value::Bigint(1), Value::String("v1")});
  ASSERT_TRUE(w1.Commit().ok());
  AcidWriter w2(&fs, "/w/t", schema, 2);
  w2.Insert({Value::Bigint(2), Value::String("v2")});
  ASSERT_TRUE(w2.Commit().ok());

  auto count_rows = [&](const ValidWriteIdList& snapshot) {
    AcidReader reader(&fs, "/w/t", schema, &cache);
    AcidScanOptions options;
    EXPECT_TRUE(reader.Open(snapshot, options).ok());
    int64_t rows = 0;
    bool done = false;
    for (;;) {
      auto batch = reader.NextBatch(&done);
      EXPECT_TRUE(batch.ok());
      if (done) break;
      rows += static_cast<int64_t>(batch->SelectedSize());
    }
    return rows;
  };
  EXPECT_EQ(count_rows(ValidWriteIdList::All(2)), 2);
  ValidWriteIdList old_snapshot{2, {2}, {}};
  EXPECT_EQ(count_rows(old_snapshot), 1) << "older snapshot sees fewer files";
  EXPECT_EQ(count_rows(ValidWriteIdList::All(2)), 2)
      << "newer snapshot unaffected by cached reads of the older one";
  EXPECT_GT(cache.data_hits(), 0u);
}

TEST(LlapDaemonTest, FragmentsRunOnPersistentExecutors) {
  MemFileSystem fs;
  Config config;
  config.num_executors = 3;
  LlapDaemon daemon(&fs, config);
  EXPECT_EQ(daemon.num_executors(), 3);
  std::atomic<int> ran{0};
  std::vector<std::future<Status>> futures;
  for (int i = 0; i < 16; ++i)
    futures.push_back(daemon.SubmitFragment([&ran] {
      ran.fetch_add(1);
      return Status::OK();
    }));
  for (auto& f : futures) EXPECT_TRUE(f.get().ok());
  EXPECT_EQ(ran.load(), 16);
  EXPECT_EQ(daemon.fragments_completed(), 16);
}

TEST(LlapDaemonTest, FragmentErrorsPropagate) {
  MemFileSystem fs;
  LlapDaemon daemon(&fs, Config{});
  auto future = daemon.SubmitFragment([] { return Status::ExecError("boom"); });
  Status status = future.get();
  EXPECT_TRUE(status.IsExecError());
}

TEST(LlapDaemonTest, IoElevatorPrefetchesAsync) {
  MemFileSystem fs;
  LlapDaemon daemon(&fs, Config{});
  WriteCofFile(&fs, "/t/f0", 50, "x");
  auto reader = daemon.cache()->OpenReader("/t/f0");
  ASSERT_TRUE(reader.ok());
  auto f0 = daemon.PrefetchChunk(*reader, 0, 0);
  auto f1 = daemon.PrefetchChunk(*reader, 0, 1);
  auto c0 = f0.get();
  auto c1 = f1.get();
  ASSERT_TRUE(c0.ok() && c1.ok());
  EXPECT_EQ((*c0)->size(), 50u);
  EXPECT_EQ((*c1)->GetStr(0), "x");
  // Later synchronous reads hit what the elevator loaded.
  uint64_t hits = daemon.cache()->data_hits();
  ASSERT_TRUE(daemon.cache()->ReadChunk(*reader, 0, 0).ok());
  EXPECT_GT(daemon.cache()->data_hits(), hits);
}

TEST(LlapCacheTest, ColdChunkDecodesOnceUnderConcurrency) {
  // Single-flight: N threads racing on one cold chunk must produce exactly
  // one decode and one recorded miss; everyone else scores a hit. This is
  // what keeps the parallel scan's read-ahead from duplicating I/O work.
  MemFileSystem fs;
  LlapCacheProvider cache(&fs, Config{});
  WriteCofFile(&fs, "/t/f0", 200, "x");
  auto reader = cache.OpenReader("/t/f0");
  ASSERT_TRUE(reader.ok());

  constexpr int kThreads = 8;
  std::atomic<int> go{0};
  std::vector<std::thread> threads;
  std::vector<ColumnVectorPtr> seen(kThreads);
  std::atomic<int> errors{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      go.fetch_add(1);
      while (go.load() < kThreads) {}  // line up at the gate
      auto chunk = cache.ReadChunk(*reader, 0, 0);
      if (chunk.ok()) seen[t] = *chunk;
      else errors.fetch_add(1);
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(errors.load(), 0);
  EXPECT_EQ(cache.data_decodes(), 1u) << "cold chunk must decode exactly once";
  EXPECT_EQ(cache.data_misses(), 1u);
  EXPECT_EQ(cache.data_hits(), static_cast<uint64_t>(kThreads - 1));
  for (int t = 1; t < kThreads; ++t)
    EXPECT_EQ(seen[t], seen[0]) << "all threads share the decoded chunk";
}

}  // namespace
}  // namespace hive
