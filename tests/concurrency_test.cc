#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "fs/mem_filesystem.h"
#include "server/hive_server.h"

namespace hive {
namespace {

/// Multi-session stress: the paper's system serves many concurrent BI/ETL
/// sessions; these tests drive concurrent readers and writers through HS2
/// and check the transactional invariants hold under contention.
class ConcurrencyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Config config;
    config.container_startup_us = 0;
    server_ = std::make_unique<HiveServer2>(&fs_, config);
    admin_ = server_->Connect();
  }

  MemFileSystem fs_;
  std::unique_ptr<HiveServer2> server_;
  Connection admin_;
};

TEST_F(ConcurrencyTest, ConcurrentWritersAllCommit) {
  ASSERT_TRUE(admin_.Execute("CREATE TABLE t (w INT, v INT)").ok());
  constexpr int kWriters = 6, kRowsEach = 20;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w] {
      Connection session = server_->Connect();
      for (int i = 0; i < kRowsEach; ++i) {
        auto r = session.Execute("INSERT INTO t VALUES (" +
                                               std::to_string(w) + ", " +
                                               std::to_string(i) + ")");
        if (!r.ok()) failures.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0) << "blind inserts never conflict";
  auto count = admin_.Execute("SELECT COUNT(*) FROM t");
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(count->rows[0][0].i64(), kWriters * kRowsEach);
}

TEST_F(ConcurrencyTest, ReadersSeeConsistentSnapshotsDuringWrites) {
  ASSERT_TRUE(admin_.Execute("CREATE TABLE t (v INT)").ok());
  // Writer appends PAIRS of rows in one statement; any consistent snapshot
  // must therefore observe an even row count.
  std::atomic<bool> stop{false};
  std::atomic<int> anomalies{0};
  std::thread writer([&] {
    Connection session = server_->Connect();
    for (int i = 0; i < 60 && !stop.load(); ++i)
      // lint: allow-discard(background churn; readers assert the invariant)
      (void)session.Execute("INSERT INTO t VALUES (1), (2)");
  });
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&] {
      Connection session = server_->Connect();
      session.config().result_cache_enabled = false;
      for (int i = 0; i < 60; ++i) {
        auto result = session.Execute("SELECT COUNT(*) FROM t");
        if (!result.ok()) {
          anomalies.fetch_add(1);
          continue;
        }
        if (result->rows[0][0].i64() % 2 != 0) anomalies.fetch_add(1);
      }
    });
  }
  for (auto& t : readers) t.join();
  stop.store(true);
  writer.join();
  EXPECT_EQ(anomalies.load(), 0)
      << "a snapshot must never expose half of a transaction";
}

TEST_F(ConcurrencyTest, ConflictingUpdatesFirstCommitWins) {
  ASSERT_TRUE(admin_.Execute("CREATE TABLE t (id INT, v INT)").ok());
  ASSERT_TRUE(admin_.Execute("INSERT INTO t VALUES (1, 0)").ok());
  constexpr int kUpdaters = 8;
  std::atomic<int> ok{0}, aborted{0};
  std::vector<std::thread> threads;
  for (int u = 0; u < kUpdaters; ++u) {
    threads.emplace_back([&, u] {
      Connection session = server_->Connect();
      auto r = session.Execute("UPDATE t SET v = " + std::to_string(u + 1) + " WHERE id = 1");
      if (r.ok()) ok.fetch_add(1);
      else if (r.status().IsTxnAborted()) aborted.fetch_add(1);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(ok.load() + aborted.load(), kUpdaters);
  EXPECT_GE(ok.load(), 1);
  // Exactly one live row regardless of the interleaving.
  auto rows = admin_.Execute("SELECT COUNT(*) FROM t");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->rows[0][0].i64(), 1);
}

TEST_F(ConcurrencyTest, LlapCacheThreadSafeUnderParallelScans) {
  ASSERT_TRUE(admin_.Execute("CREATE TABLE t (a INT, b STRING)").ok());
  std::string values = "INSERT INTO t VALUES ";
  for (int i = 0; i < 2000; ++i)
    values += (i ? ", (" : "(") + std::to_string(i) + ", 'v" + std::to_string(i) + "')";
  ASSERT_TRUE(admin_.Execute(values).ok());

  std::atomic<int> wrong{0};
  std::vector<std::thread> threads;
  for (int r = 0; r < 6; ++r) {
    threads.emplace_back([&] {
      Connection session = server_->Connect();
      session.config().result_cache_enabled = false;
      for (int i = 0; i < 10; ++i) {
        auto result = session.Execute("SELECT SUM(a) FROM t");
        if (!result.ok() || result->rows[0][0].i64() != 2000 * 1999 / 2)
          wrong.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(wrong.load(), 0);
  EXPECT_GT(server_->llap()->cache()->data_hits(), 0u);
}

TEST_F(ConcurrencyTest, WorkloadManagerAdmissionUnderContention) {
  ASSERT_TRUE(admin_
                  .ExecuteScript("CREATE RESOURCE PLAN p;"
                                  "CREATE POOL p.a WITH alloc_fraction=0.5, "
                                  "query_parallelism=3;"
                                  "CREATE POOL p.b WITH alloc_fraction=0.5, "
                                  "query_parallelism=3;"
                                  "ALTER PLAN p SET DEFAULT POOL = a;"
                                  "ALTER RESOURCE PLAN p ENABLE ACTIVATE;")
                  .ok());
  // 6 slots total; 12 threads race to admit, hold, release.
  std::atomic<int> admitted{0}, rejected{0};
  std::vector<std::thread> threads;
  for (int i = 0; i < 12; ++i) {
    threads.emplace_back([&] {
      auto handle = server_->workload_manager()->Admit("app");
      if (!handle.ok()) {
        rejected.fetch_add(1);
        return;
      }
      admitted.fetch_add(1);
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      server_->workload_manager()->Release(*handle);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(admitted.load() + rejected.load(), 12);
  EXPECT_GE(admitted.load(), 6);
  EXPECT_EQ(server_->workload_manager()->ActiveInPool("a"), 0);
  EXPECT_EQ(server_->workload_manager()->ActiveInPool("b"), 0);
}

}  // namespace
}  // namespace hive
