#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "fs/fault_injection.h"
#include "fs/mem_filesystem.h"
#include "llap/daemon.h"
#include "server/hive_server.h"
#include "server/workload_loader.h"

namespace hive {
namespace {

std::vector<std::string> Rows(const QueryResult& result) {
  std::vector<std::string> out;
  out.reserve(result.rows.size());
  for (const auto& row : result.rows) {
    std::string line;
    for (const Value& v : row) {
      line += v.ToString();
      line += '|';
    }
    out.push_back(std::move(line));
  }
  return out;
}

/// Fault-injected execution: a seeded fault schedule (transient read
/// errors, silent corruption, straggling reads, torn renames) must never
/// change query *results* — retries, checksum re-reads, cache eviction and
/// speculation absorb the faults — and queries that cannot finish must die
/// with a Status naming what killed them.
///
/// One TPC-DS warehouse is shared by the whole suite; every test installs
/// its own fault rules and TearDown restores a quiet, cache-cold cluster.
class FaultInjectionTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    mem_ = new MemFileSystem();
    faults_ = new FaultInjectingFileSystem(mem_, /*seed=*/1);
    Config config;
    config.container_startup_us = 0;
    config.num_executors = 4;
    server_ = new HiveServer2(faults_, config);
    faults_->set_clock(server_->clock());
    Connection loader = server_->Connect();
    TpcdsOptions options;
    options.days = 4;  // keep the suite fast
    ASSERT_TRUE(LoadTpcds(loader, options).ok());
    // Fault-free reference results for every benchmark query.
    baseline_ = new std::vector<std::pair<std::string, std::vector<std::string>>>();
    Connection session = NewSession();
    for (const BenchQuery& q : TpcdsQueries()) {
      auto result = session.Execute(q.sql);
      ASSERT_TRUE(result.ok()) << q.name << ": " << result.status().ToString();
      baseline_->emplace_back(q.name, Rows(*result));
    }
  }
  static void TearDownTestSuite() {
    delete baseline_;
    delete server_;
    delete faults_;
    delete mem_;
  }

  void TearDown() override {
    faults_->ClearRules();
    faults_->ResetSchedule();
    faults_->Reseed(1);
    if (server_->llap()) server_->llap()->cache()->Clear();
  }

  static Connection NewSession() {
    Connection session = server_->Connect();
    session.config().result_cache_enabled = false;
    return session;
  }

  /// Drops all cached state so the next query pays real (faultable) reads.
  static void DropCaches() {
    if (server_->llap()) server_->llap()->cache()->Clear();
  }

  /// Summed fault-tolerance footprint of one sweep over the query set.
  struct Footprint {
    int64_t task_retries = 0;
    int64_t speculative_tasks = 0;
    int64_t speculative_wins = 0;
  };

  /// Runs every baseline query under the current fault schedule and asserts
  /// byte-identical results, accumulating the footprint into `fp`.
  void RunAllAndExpectBaseline(Connection& session, Footprint* fp) {
    size_t i = 0;
    for (const BenchQuery& q : TpcdsQueries()) {
      auto result = session.Execute(q.sql);
      ASSERT_TRUE(result.ok()) << q.name << ": " << result.status().ToString();
      EXPECT_EQ(Rows(*result), (*baseline_)[i].second)
          << q.name << " diverged under faults";
      const obs::QueryProfile& profile = result->profile();
      fp->task_retries += profile.counter(obs::qc::kTaskRetries);
      fp->speculative_tasks += profile.counter(obs::qc::kSpeculativeTasks);
      fp->speculative_wins += profile.counter(obs::qc::kSpeculativeWins);
      ++i;
    }
  }

  static MemFileSystem* mem_;
  static FaultInjectingFileSystem* faults_;
  static HiveServer2* server_;
  static std::vector<std::pair<std::string, std::vector<std::string>>>* baseline_;
};

MemFileSystem* FaultInjectionTest::mem_ = nullptr;
FaultInjectingFileSystem* FaultInjectionTest::faults_ = nullptr;
HiveServer2* FaultInjectionTest::server_ = nullptr;
std::vector<std::pair<std::string, std::vector<std::string>>>*
    FaultInjectionTest::baseline_ = nullptr;

TEST_F(FaultInjectionTest, TransientReadErrorsRetriedByteIdentical) {
  FaultRule rule;
  rule.path_prefix = "/warehouse";
  rule.read_error_rate = 0.2;
  rule.max_read_errors_per_site = 1;
  faults_->AddRule(rule);
  DropCaches();
  uint64_t before = faults_->injected_read_errors();
  Footprint fp;
  Connection session = NewSession();
  RunAllAndExpectBaseline(session, &fp);
  EXPECT_GT(faults_->injected_read_errors(), before)
      << "schedule injected nothing; the test exercised no fault path";
  EXPECT_GT(fp.task_retries, 0) << "injected errors should surface as retries";
}

TEST_F(FaultInjectionTest, SilentCorruptionCaughtByChecksumAndRetried) {
  FaultRule rule;
  rule.path_prefix = "/warehouse";
  rule.corrupt_rate = 0.15;
  rule.max_corruptions_per_site = 1;
  faults_->AddRule(rule);
  DropCaches();
  uint64_t before = faults_->injected_corruptions();
  Footprint fp;
  Connection session = NewSession();
  RunAllAndExpectBaseline(session, &fp);
  EXPECT_GT(faults_->injected_corruptions(), before);
  EXPECT_GT(fp.task_retries, 0)
      << "checksum mismatches must be retried, not silently decoded";
}

TEST_F(FaultInjectionTest, PermanentReadErrorFailsFast) {
  FaultRule rule;
  rule.path_prefix = "/warehouse";
  rule.read_error_rate = 1.0;
  rule.permanent = true;
  faults_->AddRule(rule);
  DropCaches();
  Connection session = NewSession();
  auto result = session.Execute("SELECT COUNT(*) FROM store_sales");
  ASSERT_FALSE(result.ok());
  EXPECT_FALSE(result.status().IsTransient())
      << "permanent faults must not look retryable: "
      << result.status().ToString();
  EXPECT_NE(result.status().ToString().find("injected permanent read error"),
            std::string::npos)
      << result.status().ToString();
}

TEST_F(FaultInjectionTest, TransientErrorsExhaustTaskAttempts) {
  // A transient fault that outlives the retry budget: every attempt at every
  // site fails, so the query must give up after task.max.attempts and
  // surface the (still transient) error instead of looping forever.
  FaultRule rule;
  rule.path_prefix = "/warehouse";
  rule.read_error_rate = 1.0;
  rule.max_read_errors_per_site = 1000;
  faults_->AddRule(rule);
  DropCaches();
  Connection session = NewSession();
  session.config().task_max_attempts = 2;
  auto result = session.Execute("SELECT COUNT(*) FROM store_sales");
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsTransient()) << result.status().ToString();
}

TEST_F(FaultInjectionTest, CachePoisoningEvictsAndRecovers) {
  ASSERT_NE(server_->llap(), nullptr);
  LlapCacheProvider* cache = server_->llap()->cache();
  Connection session = NewSession();
  // Warm the cache, then corrupt cached chunks behind the engine's back.
  auto warm = session.Execute(TpcdsQueries()[0].sql);
  ASSERT_TRUE(warm.ok()) << warm.status().ToString();
  ASSERT_GT(cache->PoisonChunks(2), 0u) << "nothing cached to poison";
  uint64_t detected = cache->poison_detected();
  auto again = session.Execute(TpcdsQueries()[0].sql);
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_EQ(Rows(*again), (*baseline_)[0].second)
      << "poisoned chunks leaked into a query result";
  EXPECT_GT(cache->poison_detected(), detected)
      << "fingerprint validation never fired";
}

TEST_F(FaultInjectionTest, RepeatedPoisoningDegradesFileToDirectReads) {
  ASSERT_NE(server_->llap(), nullptr);
  LlapCacheProvider* cache = server_->llap()->cache();
  Connection session = NewSession();
  // Default cache.poison.threshold is 3 consecutive corruptions per file.
  // Poison everything before each run until some file crosses it.
  for (int round = 0; round < 4; ++round) {
    auto result = session.Execute(TpcdsQueries()[0].sql);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(Rows(*result), (*baseline_)[0].second) << "round " << round;
    cache->PoisonChunks(static_cast<size_t>(-1));
  }
  EXPECT_GT(cache->degraded_files(), 0u)
      << "no file degraded after repeated poisoning";
  uint64_t direct = cache->degraded_reads();
  auto final_run = session.Execute(TpcdsQueries()[0].sql);
  ASSERT_TRUE(final_run.ok());
  EXPECT_EQ(Rows(*final_run), (*baseline_)[0].second);
  EXPECT_GT(cache->degraded_reads(), direct)
      << "degraded file should bypass the cache entirely";
}

TEST(StragglerSpeculationTest, StragglerTriggersSpeculativeDuplicateThatWins) {
  // One slow datanode, modeled deterministically: every read of ONE late
  // file stalls 500ms (once per site) while the other eleven files' morsels
  // cost microseconds. The stalled morsel dwarfs the median completed task,
  // so the driver must launch a speculative duplicate; the duplicate's
  // re-read finds the fault site's budget spent, runs clean, and wins.
  MemFileSystem mem;
  FaultInjectingFileSystem faults(&mem, /*seed=*/5);
  Config config;
  config.container_startup_us = 0;
  config.num_executors = 4;
  HiveServer2 server(&faults, config);
  faults.set_clock(server.clock());
  Connection session = server.Connect();
  session.config().result_cache_enabled = false;
  // Twelve partitions, one delta file each -> twelve morsels (and no
  // compaction folding them back into one).
  ASSERT_TRUE(
      session.Execute("CREATE TABLE t (k INT, v INT) PARTITIONED BY (p INT)")
          .ok());
  for (int part = 0; part < 12; ++part) {
    std::string insert = "INSERT INTO t VALUES ";
    for (int i = 0; i < 150; ++i) {
      int k = part * 150 + i;
      insert += (i ? ", (" : "(") + std::to_string(k) + ", " +
                std::to_string(k % 23) + ", " + std::to_string(part) + ")";
    }
    ASSERT_TRUE(session.Execute(insert).ok());
  }
  const std::string sql =
      "SELECT COUNT(*), SUM(v), MIN(k), MAX(k) FROM t";
  auto baseline = session.Execute(sql);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();

  FaultRule rule;
  // Partition p=9 sorts last in the directory listing, so its morsel is
  // claimed after plenty of fast tasks have established the median.
  rule.path_prefix = "/warehouse/default.db/t/p=9/";
  rule.latency_rate = 1.0;
  rule.latency_us = 500000;
  rule.max_latency_injections_per_site = 1;
  faults.AddRule(rule);
  server.llap()->cache()->Clear();
  auto faulted = session.Execute(sql);
  ASSERT_TRUE(faulted.ok()) << faulted.status().ToString();
  EXPECT_EQ(Rows(*faulted), Rows(*baseline));
  EXPECT_GT(faulted->profile().counter(obs::qc::kSpeculativeTasks), 0)
      << "straggler was never speculated";
  EXPECT_GT(faulted->profile().counter(obs::qc::kSpeculativeWins), 0)
      << "the clean duplicate should beat a 500ms straggler";
}

TEST_F(FaultInjectionTest, QueryDeadlineKillsLongQueryMidSort) {
  // Every read stalls 100ms (modeled); the deadline is 50ms, so the query
  // is over budget after its first morsel and must die at the next
  // interruption point — inside the sort's input collection here.
  FaultRule rule;
  rule.path_prefix = "/warehouse";
  rule.latency_rate = 1.0;
  rule.latency_us = 100000;
  faults_->AddRule(rule);
  DropCaches();
  Connection session = NewSession();
  session.config().query_timeout_ms = 50;
  auto result = session.Execute("SELECT ss_item_sk, SUM(ss_quantity) FROM store_sales "
      "GROUP BY ss_item_sk ORDER BY ss_item_sk");
  ASSERT_FALSE(result.ok()) << "deadline never fired";
  EXPECT_NE(result.status().ToString().find("query.timeout.ms"),
            std::string::npos)
      << "kill reason must name the deadline: " << result.status().ToString();
}

TEST_F(FaultInjectionTest, DeadlineDisabledByDefault) {
  FaultRule rule;
  rule.path_prefix = "/warehouse";
  rule.latency_rate = 1.0;
  rule.latency_us = 100000;
  faults_->AddRule(rule);
  DropCaches();
  // query.timeout.ms = 0 (default): slow but successful.
  Connection session = NewSession();
  auto result = session.Execute("SELECT COUNT(*) FROM store_sales");
  EXPECT_TRUE(result.ok()) << result.status().ToString();
}

TEST_F(FaultInjectionTest, SeedMatrixIsByteIdentical) {
  // The acceptance matrix: eight schedules mixing transient errors, silent
  // corruption and stragglers. Results must match the fault-free baseline
  // bit for bit under every seed.
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    faults_->ClearRules();
    faults_->Reseed(seed);
    FaultRule rule;
    rule.path_prefix = "/warehouse";
    rule.read_error_rate = 0.2;
    rule.max_read_errors_per_site = 1;
    rule.corrupt_rate = 0.1;
    rule.max_corruptions_per_site = 1;
    rule.latency_rate = 0.1;
    rule.latency_us = 50000;
    faults_->AddRule(rule);
    DropCaches();
    Footprint fp;
    Connection session = NewSession();
    RunAllAndExpectBaseline(session, &fp);
  }
}

TEST_F(FaultInjectionTest, LowMemorySeedMatrixSpillsAndStaysByteIdentical) {
  // The seed matrix again, with a per-query memory budget small enough that
  // the heavy joins/aggregates/sorts spill — while the faults also target
  // the spill directory, so transient errors and corruption hit spill runs
  // mid-query. Spilling plus retries must still be byte-identical.
  //
  // The budget is tuned above what the non-spilling operators (set ops,
  // windows, scalar aggregates) need on this 4-day warehouse but well below
  // the big blocking operators' working sets.
  constexpr int64_t kLowBudget = 96 * 1024;
  int64_t spilled_before = server_->metrics()->Value("exec.spill.bytes");
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    faults_->ClearRules();
    faults_->Reseed(seed);
    for (const char* prefix : {"/warehouse", "/tmp/spill"}) {
      FaultRule rule;
      rule.path_prefix = prefix;
      rule.read_error_rate = 0.2;
      rule.max_read_errors_per_site = 1;
      rule.corrupt_rate = 0.1;
      rule.max_corruptions_per_site = 1;
      faults_->AddRule(rule);
    }
    DropCaches();
    Connection session = NewSession();
    session.config().query_memory_limit_bytes = kLowBudget;
    Footprint fp;
    RunAllAndExpectBaseline(session, &fp);
  }
  EXPECT_GT(server_->metrics()->Value("exec.spill.bytes"), spilled_before)
      << "the low budget never forced a spill; the matrix tested nothing new";
}

/// Workload-manager kills must name their trigger. Uses its own tiny
/// cluster because an activated resource plan cannot be deactivated.
TEST(WorkloadKillReasonTest, KillStatusNamesTrigger) {
  MemFileSystem mem;
  FaultInjectingFileSystem faults(&mem, /*seed=*/7);
  Config config;
  config.container_startup_us = 0;
  HiveServer2 server(&faults, config);
  faults.set_clock(server.clock());
  Connection session = server.Connect("etl");
  session.config().result_cache_enabled = false;
  ASSERT_TRUE(session.Execute("CREATE TABLE t (k INT, v INT)").ok());
  for (int batch = 0; batch < 4; ++batch) {
    std::string insert = "INSERT INTO t VALUES ";
    for (int i = 0; i < 200; ++i) {
      int k = batch * 200 + i;
      insert += (i ? ", (" : "(") + std::to_string(k) + ", " +
                std::to_string(k % 17) + ")";
    }
    ASSERT_TRUE(session.Execute(insert).ok());
  }
  ASSERT_TRUE(session
                  .ExecuteScript("CREATE RESOURCE PLAN guard;"
                                 "CREATE POOL guard.all WITH alloc_fraction=1.0, "
                                 "query_parallelism=4;"
                                 "CREATE RULE slow_kill IN guard WHEN "
                                 "total_runtime > 1 THEN KILL;"
                                 "ADD RULE slow_kill TO all;"
                                 "ALTER PLAN guard SET DEFAULT POOL = all;"
                                 "ALTER RESOURCE PLAN guard ENABLE ACTIVATE;")
                  .ok());
  // Stall every read so elapsed (modeled) time trips the 1ms trigger.
  FaultRule rule;
  rule.latency_rate = 1.0;
  rule.latency_us = 50000;
  faults.AddRule(rule);
  server.llap()->cache()->Clear();
  auto result = session.Execute("SELECT k, v FROM t ORDER BY k");
  ASSERT_FALSE(result.ok()) << "trigger never fired";
  EXPECT_NE(result.status().ToString().find("slow_kill"), std::string::npos)
      << "kill reason must name the trigger: " << result.status().ToString();
}

/// Rename fault modes at the FileSystem level: a failed rename leaves the
/// source intact; a *torn* rename applies but reports failure, so callers
/// must probe before re-issuing.
TEST(RenameFaultTest, FailedRenameLeavesSourceIntact) {
  MemFileSystem mem;
  FaultInjectingFileSystem faults(&mem, /*seed=*/3);
  ASSERT_TRUE(faults.WriteFile("/w/tmp_delta/f0", "payload").ok());
  FaultRule rule;
  rule.rename_error_rate = 1.0;
  rule.torn_rename = false;
  rule.max_rename_errors_per_site = 1;
  faults.AddRule(rule);
  Status first = faults.Rename("/w/tmp_delta", "/w/delta_1");
  ASSERT_FALSE(first.ok());
  EXPECT_TRUE(first.IsTransient());
  EXPECT_TRUE(faults.Exists("/w/tmp_delta")) << "failed rename must not apply";
  EXPECT_FALSE(faults.Exists("/w/delta_1"));
  // The site budget is spent: a straight retry succeeds.
  ASSERT_TRUE(faults.Rename("/w/tmp_delta", "/w/delta_1").ok());
  auto data = faults.ReadFile("/w/delta_1/f0");
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(*data, "payload");
}

TEST(RenameFaultTest, TornRenameAppliesButReportsError) {
  MemFileSystem mem;
  FaultInjectingFileSystem faults(&mem, /*seed=*/3);
  ASSERT_TRUE(faults.WriteFile("/w/tmp_delta/f0", "payload").ok());
  FaultRule rule;
  rule.rename_error_rate = 1.0;
  rule.torn_rename = true;
  rule.max_rename_errors_per_site = 1;
  faults.AddRule(rule);
  Status torn = faults.Rename("/w/tmp_delta", "/w/delta_1");
  ASSERT_FALSE(torn.ok());
  EXPECT_TRUE(torn.IsTransient());
  // The rename took effect even though the ack was lost.
  EXPECT_FALSE(faults.Exists("/w/tmp_delta"));
  auto data = faults.ReadFile("/w/delta_1/f0");
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(*data, "payload");
}

}  // namespace
}  // namespace hive
