#include <gtest/gtest.h>

#include "sql/parser.h"

namespace hive {
namespace {

Result<StatementPtr> P(const std::string& sql) { return Parser::Parse(sql); }

SelectStmt Sel(const std::string& sql) {
  auto r = P(sql);
  EXPECT_TRUE(r.ok()) << r.status().ToString() << " for: " << sql;
  auto* s = dynamic_cast<SelectStatement*>(r->get());
  EXPECT_NE(s, nullptr);
  return s->select;
}

TEST(ParserTest, SimpleSelect) {
  SelectStmt s = Sel("SELECT a, b FROM t WHERE a > 5");
  ASSERT_EQ(s.body->op, SetOpKind::kNone);
  const SelectCore& core = s.body->core;
  EXPECT_EQ(core.items.size(), 2u);
  EXPECT_EQ(core.items[0].expr->column, "a");
  ASSERT_NE(core.from, nullptr);
  EXPECT_EQ(core.from->table, "t");
  ASSERT_NE(core.where, nullptr);
  EXPECT_EQ(core.where->ToString(), "(a > 5)");
}

TEST(ParserTest, CaseInsensitiveKeywords) {
  SelectStmt s = Sel("select A from T where a = 'X'");
  EXPECT_EQ(s.body->core.items[0].expr->column, "a") << "identifiers lower-cased";
  EXPECT_EQ(s.body->core.where->ToString(), "(a = 'X')") << "literal case preserved";
}

TEST(ParserTest, JoinsWithConditions) {
  SelectStmt s = Sel(
      "SELECT ss.x FROM store_sales ss JOIN item i ON ss.item_sk = i.item_sk "
      "LEFT JOIN store st ON ss.store_sk = st.store_sk");
  ASSERT_EQ(s.body->core.from->kind, TableRef::Kind::kJoin);
  EXPECT_EQ(s.body->core.from->join_type, TableRef::JoinType::kLeft);
  EXPECT_EQ(s.body->core.from->left->join_type, TableRef::JoinType::kInner);
  EXPECT_EQ(s.body->core.from->left->left->alias, "ss");
}

TEST(ParserTest, CommaJoinIsCross) {
  SelectStmt s = Sel("SELECT 1 FROM a, b WHERE a.x = b.y");
  ASSERT_EQ(s.body->core.from->kind, TableRef::Kind::kJoin);
  EXPECT_EQ(s.body->core.from->join_type, TableRef::JoinType::kCross);
}

TEST(ParserTest, GroupByHavingOrderLimit) {
  SelectStmt s = Sel(
      "SELECT d_year, SUM(p) AS total FROM t GROUP BY d_year "
      "HAVING SUM(p) > 10 ORDER BY total DESC LIMIT 10");
  EXPECT_EQ(s.body->core.group_by.size(), 1u);
  ASSERT_NE(s.body->core.having, nullptr);
  ASSERT_EQ(s.order_by.size(), 1u);
  EXPECT_FALSE(s.order_by[0].ascending);
  EXPECT_EQ(s.limit, 10);
}

TEST(ParserTest, OrderByUnselectedColumn) {
  // A SQL feature called out in Section 7.1 as missing from Hive 1.2.
  SelectStmt s = Sel("SELECT a FROM t ORDER BY b");
  EXPECT_EQ(s.order_by[0].expr->column, "b");
}

TEST(ParserTest, SetOperations) {
  SelectStmt s = Sel("SELECT a FROM t1 UNION ALL SELECT a FROM t2");
  EXPECT_EQ(s.body->op, SetOpKind::kUnionAll);
  SelectStmt s2 = Sel("SELECT a FROM t1 INTERSECT SELECT a FROM t2");
  EXPECT_EQ(s2.body->op, SetOpKind::kIntersect);
  SelectStmt s3 = Sel("SELECT a FROM t1 EXCEPT SELECT a FROM t2");
  EXPECT_EQ(s3.body->op, SetOpKind::kExcept);
  SelectStmt s4 = Sel("SELECT a FROM t1 UNION SELECT a FROM t2");
  EXPECT_EQ(s4.body->op, SetOpKind::kUnionDistinct);
}

TEST(ParserTest, SubqueryInFrom) {
  SelectStmt s = Sel("SELECT x FROM (SELECT a AS x FROM t) sub WHERE x > 1");
  ASSERT_EQ(s.body->core.from->kind, TableRef::Kind::kSubquery);
  EXPECT_EQ(s.body->core.from->alias, "sub");
}

TEST(ParserTest, InSubqueryAndExists) {
  SelectStmt s = Sel("SELECT a FROM t WHERE a IN (SELECT b FROM u)");
  EXPECT_EQ(s.body->core.where->kind, ExprKind::kSubquery);
  EXPECT_EQ(s.body->core.where->subquery_kind, SubqueryKind::kIn);

  SelectStmt s2 = Sel("SELECT a FROM t WHERE EXISTS (SELECT 1 FROM u WHERE u.x = t.a)");
  EXPECT_EQ(s2.body->core.where->subquery_kind, SubqueryKind::kExists);

  SelectStmt s3 = Sel("SELECT a FROM t WHERE NOT EXISTS (SELECT 1 FROM u)");
  EXPECT_EQ(s3.body->core.where->subquery_kind, SubqueryKind::kNotExists);

  SelectStmt s4 = Sel("SELECT a FROM t WHERE a NOT IN (SELECT b FROM u)");
  EXPECT_EQ(s4.body->core.where->subquery_kind, SubqueryKind::kNotIn);
}

TEST(ParserTest, ScalarSubqueryComparison) {
  SelectStmt s = Sel("SELECT a FROM t WHERE a > (SELECT AVG(b) FROM u)");
  const ExprPtr& where = s.body->core.where;
  EXPECT_EQ(where->kind, ExprKind::kBinary);
  EXPECT_EQ(where->children[1]->kind, ExprKind::kSubquery);
  EXPECT_EQ(where->children[1]->subquery_kind, SubqueryKind::kScalar);
}

TEST(ParserTest, CaseExpressions) {
  SelectStmt s = Sel(
      "SELECT CASE WHEN a > 1 THEN 'big' ELSE 'small' END FROM t");
  EXPECT_EQ(s.body->core.items[0].expr->kind, ExprKind::kCase);
  // Simple CASE form rewrites to searched form.
  SelectStmt s2 = Sel("SELECT CASE a WHEN 1 THEN 'one' WHEN 2 THEN 'two' END FROM t");
  const ExprPtr& c = s2.body->core.items[0].expr;
  EXPECT_EQ(c->children[0]->ToString(), "(a = 1)");
}

TEST(ParserTest, CastAndExtract) {
  SelectStmt s = Sel(
      "SELECT CAST(a AS DECIMAL(7,2)), EXTRACT(year FROM d) FROM t");
  EXPECT_EQ(s.body->core.items[0].expr->kind, ExprKind::kCast);
  EXPECT_EQ(s.body->core.items[0].expr->cast_type, DataType::Decimal(7, 2));
  EXPECT_EQ(s.body->core.items[1].expr->func_name, "EXTRACT_YEAR");
}

TEST(ParserTest, BetweenInLikeIsNull) {
  SelectStmt s = Sel(
      "SELECT 1 FROM t WHERE a BETWEEN 1 AND 5 AND b IN (1,2,3) AND "
      "c LIKE 'x%' AND d IS NOT NULL AND e NOT BETWEEN 2 AND 3");
  std::string text = s.body->core.where->ToString();
  EXPECT_NE(text.find("BETWEEN"), std::string::npos);
  EXPECT_NE(text.find("IN (1, 2, 3)"), std::string::npos);
  EXPECT_NE(text.find("LIKE"), std::string::npos);
  EXPECT_NE(text.find("IS NOT NULL"), std::string::npos);
  EXPECT_NE(text.find("NOT BETWEEN"), std::string::npos);
}

TEST(ParserTest, IntervalNotation) {
  // Interval notation: another Hive 1.2 gap listed in Section 7.1.
  SelectStmt s = Sel("SELECT d + INTERVAL 30 DAY FROM t");
  EXPECT_EQ(s.body->core.items[0].expr->children[1]->func_name, "INTERVAL_DAY");
}

TEST(ParserTest, WindowFunctions) {
  SelectStmt s = Sel(
      "SELECT ROW_NUMBER() OVER (PARTITION BY a ORDER BY b DESC), "
      "SUM(c) OVER (PARTITION BY a) FROM t");
  const ExprPtr& rn = s.body->core.items[0].expr;
  ASSERT_NE(rn->window, nullptr);
  EXPECT_EQ(rn->window->partition_by.size(), 1u);
  ASSERT_EQ(rn->window->order_by.size(), 1u);
  EXPECT_FALSE(rn->window->order_by[0].second);
  ASSERT_NE(s.body->core.items[1].expr->window, nullptr);
}

TEST(ParserTest, GroupingSets) {
  SelectStmt s = Sel(
      "SELECT a, b, SUM(c) FROM t GROUP BY a, b GROUPING SETS ((a, b), (a), ())");
  EXPECT_EQ(s.body->core.group_by.size(), 2u);
  ASSERT_EQ(s.body->core.grouping_sets.size(), 3u);
  EXPECT_EQ(s.body->core.grouping_sets[0].size(), 2u);
  EXPECT_EQ(s.body->core.grouping_sets[2].size(), 0u);
}

TEST(ParserTest, Rollup) {
  SelectStmt s = Sel("SELECT a, b, SUM(c) FROM t GROUP BY ROLLUP (a, b)");
  ASSERT_EQ(s.body->core.grouping_sets.size(), 3u);  // (a,b),(a),()
}

TEST(ParserTest, Ctes) {
  SelectStmt s = Sel(
      "WITH x AS (SELECT a FROM t), y AS (SELECT a FROM x) SELECT * FROM y");
  ASSERT_EQ(s.ctes.size(), 2u);
  EXPECT_EQ(s.ctes[0].name, "x");
  EXPECT_EQ(s.ctes[1].name, "y");
}

TEST(ParserTest, CountDistinctAndStar) {
  SelectStmt s = Sel("SELECT COUNT(*), COUNT(DISTINCT a) FROM t");
  EXPECT_EQ(s.body->core.items[0].expr->children[0]->kind, ExprKind::kStar);
  EXPECT_TRUE(s.body->core.items[1].expr->distinct);
}

TEST(ParserTest, InsertValuesAndSelect) {
  auto r = P("INSERT INTO t VALUES (1, 'a', 2.5), (2, 'b', 3.5)");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  auto* insert = dynamic_cast<InsertStatement*>(r->get());
  ASSERT_NE(insert, nullptr);
  EXPECT_EQ(insert->values_rows.size(), 2u);

  auto r2 = P("INSERT INTO t SELECT * FROM u WHERE x > 1");
  ASSERT_TRUE(r2.ok());
  auto* insert2 = dynamic_cast<InsertStatement*>(r2->get());
  ASSERT_NE(insert2->source, nullptr);
}

TEST(ParserTest, UpdateDelete) {
  auto r = P("UPDATE t SET a = a + 1, b = 'x' WHERE c < 5");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  auto* update = dynamic_cast<UpdateStatement*>(r->get());
  ASSERT_NE(update, nullptr);
  EXPECT_EQ(update->assignments.size(), 2u);

  auto r2 = P("DELETE FROM t WHERE a = 3");
  ASSERT_TRUE(r2.ok());
  auto* del = dynamic_cast<DeleteStatement*>(r2->get());
  ASSERT_NE(del, nullptr);
  ASSERT_NE(del->where, nullptr);
}

TEST(ParserTest, Merge) {
  auto r = P(
      "MERGE INTO target t USING source s ON t.id = s.id "
      "WHEN MATCHED AND s.del = 1 THEN DELETE "
      "WHEN MATCHED THEN UPDATE SET v = s.v "
      "WHEN NOT MATCHED THEN INSERT VALUES (s.id, s.v)");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  auto* merge = dynamic_cast<MergeStatement*>(r->get());
  ASSERT_NE(merge, nullptr);
  EXPECT_TRUE(merge->has_matched_update);
  EXPECT_TRUE(merge->has_matched_delete);
  ASSERT_NE(merge->matched_delete_condition, nullptr);
  EXPECT_TRUE(merge->has_not_matched_insert);
  EXPECT_EQ(merge->insert_values.size(), 2u);
}

TEST(ParserTest, CreateTablePartitionedWithConstraints) {
  auto r = P(
      "CREATE TABLE store_sales ("
      "  sold_date_sk INT, item_sk INT NOT NULL, "
      "  list_price DECIMAL(7,2), "
      "  PRIMARY KEY (item_sk), "
      "  FOREIGN KEY (item_sk) REFERENCES item (i_item_sk)"
      ") PARTITIONED BY (sold_date_sk INT)");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  auto* create = dynamic_cast<CreateTableStatement*>(r->get());
  ASSERT_NE(create, nullptr);
  EXPECT_EQ(create->columns.size(), 3u);
  EXPECT_EQ(create->partition_columns.size(), 1u);
  ASSERT_EQ(create->constraints.size(), 3u);  // NOT NULL, PK, FK
  EXPECT_EQ(create->constraints[1].kind,
            CreateTableStatement::Constraint::Kind::kPrimaryKey);
  EXPECT_EQ(create->constraints[2].ref_table, "item");
}

TEST(ParserTest, CreateExternalTableStoredBy) {
  auto r = P(
      "CREATE EXTERNAL TABLE druid_table (x BIGINT) STORED BY 'droid' "
      "TBLPROPERTIES ('droid.datasource' = 'my_source')");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  auto* create = dynamic_cast<CreateTableStatement*>(r->get());
  EXPECT_TRUE(create->external);
  EXPECT_EQ(create->stored_by, "droid");
  EXPECT_EQ(create->properties.at("droid.datasource"), "my_source");
}

TEST(ParserTest, MaterializedViewLifecycle) {
  auto r = P(
      "CREATE MATERIALIZED VIEW mv TBLPROPERTIES('rewriting.time.window'='600') "
      "AS SELECT d_year, SUM(p) AS s FROM t GROUP BY d_year");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  auto* mv = dynamic_cast<CreateMaterializedViewStatement*>(r->get());
  ASSERT_NE(mv, nullptr);
  EXPECT_EQ(mv->name, "mv");

  auto r2 = P("ALTER MATERIALIZED VIEW mv REBUILD");
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ((*r2)->kind(), StatementKind::kAlterMaterializedViewRebuild);

  auto r3 = P("DROP MATERIALIZED VIEW mv");
  ASSERT_TRUE(r3.ok());
  auto* drop = dynamic_cast<DropTableStatement*>(r3->get());
  EXPECT_TRUE(drop->is_materialized_view);
}

TEST(ParserTest, ResourcePlanDdlFromPaper) {
  // The Section 5.2 example, statement by statement.
  auto script = Parser::ParseScript(
      "CREATE RESOURCE PLAN daytime;"
      "CREATE POOL daytime.bi WITH alloc_fraction=0.8, query_parallelism=5;"
      "CREATE POOL daytime.etl WITH alloc_fraction=0.2, query_parallelism=20;"
      "CREATE RULE downgrade IN daytime WHEN total_runtime > 3000 THEN MOVE etl;"
      "ADD RULE downgrade TO bi;"
      "CREATE APPLICATION MAPPING visualization_app IN daytime TO bi;"
      "ALTER PLAN daytime SET DEFAULT POOL = etl;"
      "ALTER RESOURCE PLAN daytime ENABLE ACTIVATE;");
  ASSERT_TRUE(script.ok()) << script.status().ToString();
  ASSERT_EQ(script->size(), 8u);
  auto* pool = dynamic_cast<ResourcePlanStatement*>((*script)[1].get());
  ASSERT_NE(pool, nullptr);
  EXPECT_DOUBLE_EQ(pool->alloc_fraction, 0.8);
  EXPECT_EQ(pool->query_parallelism, 5);
  auto* rule = dynamic_cast<ResourcePlanStatement*>((*script)[3].get());
  EXPECT_EQ(rule->rule_metric, "total_runtime");
  EXPECT_EQ(rule->rule_threshold, 3000);
  EXPECT_EQ(rule->rule_action, "MOVE");
}

TEST(ParserTest, ExplainAndAnalyze) {
  auto r = P("EXPLAIN SELECT * FROM t");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)->kind(), StatementKind::kExplain);
  auto r2 = P("ANALYZE TABLE t COMPUTE STATISTICS");
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ((*r2)->kind(), StatementKind::kAnalyzeTable);
}

TEST(ParserTest, StringEscapes) {
  SelectStmt s = Sel("SELECT 'it''s' FROM t");
  EXPECT_EQ(s.body->core.items[0].expr->literal.str(), "it's");
}

TEST(ParserTest, Comments) {
  SelectStmt s = Sel("SELECT a -- trailing comment\nFROM t");
  EXPECT_EQ(s.body->core.items[0].expr->column, "a");
}

TEST(ParserTest, ErrorsHavePositions) {
  auto r = P("SELECT FROM t");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);
  EXPECT_NE(r.status().message().find("offset"), std::string::npos);

  auto r2 = P("SELECT a FROM t WHERE");
  EXPECT_FALSE(r2.ok());

  auto r3 = P("SELEC a FROM t");
  EXPECT_FALSE(r3.ok());
}

TEST(ParserTest, CanonicalizationForResultCache) {
  // Two formattings of the same query canonicalize identically (the query
  // result cache keys on this).
  SelectStmt a = Sel("select  a,   b from t where a>5 and b = 'x'");
  SelectStmt b = Sel("SELECT a, b FROM t WHERE (a > 5) AND b = 'x'");
  EXPECT_EQ(a.ToString(), b.ToString());
}

TEST(ParserTest, QualifiedTableNames) {
  SelectStmt s = Sel("SELECT a FROM tpcds.store_sales");
  EXPECT_EQ(s.body->core.from->db, "tpcds");
  EXPECT_EQ(s.body->core.from->table, "store_sales");
}

}  // namespace
}  // namespace hive
