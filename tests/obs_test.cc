#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "fs/mem_filesystem.h"
#include "obs/metrics.h"
#include "obs/query_profile.h"
#include "server/hive_server.h"
#include "server/workload_loader.h"

namespace hive {
namespace {

// --- MetricsRegistry ---

TEST(MetricsRegistryTest, ConcurrentIncrementsSumExactly) {
  obs::MetricsRegistry registry;
  constexpr int kThreads = 8;
  constexpr int kIncrements = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry] {
      // Resolve once, then hammer the sharded fast path like a component
      // holding a cached pointer would.
      obs::Counter* c = registry.counter("test.hits");
      for (int i = 0; i < kIncrements; ++i) c->Inc();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(registry.Value("test.hits"), kThreads * kIncrements);
  EXPECT_EQ(registry.Snapshot().Get("test.hits"), kThreads * kIncrements);
}

TEST(MetricsRegistryTest, SnapshotDuringConcurrentWritesIsMonotone) {
  obs::MetricsRegistry registry;
  obs::Counter* c = registry.counter("test.events");
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) c->Inc();
    });
  }
  // Snapshots taken mid-flight must never go backwards and never exceed a
  // later settled total.
  int64_t last = 0;
  for (int i = 0; i < 200; ++i) {
    int64_t now = registry.Snapshot().Get("test.events");
    EXPECT_GE(now, last);
    last = now;
  }
  stop.store(true);
  for (auto& t : writers) t.join();
  EXPECT_GE(registry.Value("test.events"), last);
}

TEST(MetricsRegistryTest, GaugesSetAndAdd) {
  obs::MetricsRegistry registry;
  obs::Gauge* g = registry.gauge("pool.active");
  g->Set(5);
  g->Add(-2);
  EXPECT_EQ(registry.Value("pool.active"), 3);
}

TEST(MetricsRegistryTest, HistogramSummaryAndPercentiles) {
  obs::MetricsRegistry registry;
  obs::Histogram* h = registry.histogram("scan.latency_us");
  // 90 fast scans and 10 slow ones: p50 lands in the fast band, p95 in the
  // slow one. Buckets are powers of two, so bounds are exact.
  for (int i = 0; i < 90; ++i) h->Record(100);   // bucket (64,128]
  for (int i = 0; i < 10; ++i) h->Record(9000);  // bucket (8192,16384]
  EXPECT_EQ(h->count(), 100);
  EXPECT_EQ(h->sum(), 90 * 100 + 10 * 9000);
  EXPECT_EQ(h->max(), 9000);
  EXPECT_EQ(h->ValueAtPercentile(0.5), 128);
  EXPECT_EQ(h->ValueAtPercentile(0.95), 16384);
  // Snapshot flattens the summary under dotted suffixes; Value() resolves
  // the same names without creating anything.
  obs::MetricsSnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.Get("scan.latency_us.count"), 100);
  EXPECT_EQ(snap.Get("scan.latency_us.max"), 9000);
  EXPECT_EQ(registry.Value("scan.latency_us.p50"), 128);
  EXPECT_EQ(registry.Value("scan.latency_us.p95"), 16384);
  EXPECT_EQ(registry.Value("scan.latency_us.sum"), h->sum());
}

TEST(MetricsRegistryTest, CallbackGaugesPolledAtSnapshotTime) {
  obs::MetricsRegistry registry;
  int polls = 0;
  int64_t level = 42;
  registry.RegisterCallback("component.level", [&] {
    ++polls;
    return level;
  });
  EXPECT_EQ(polls, 0) << "registration must not invoke the callback";
  EXPECT_EQ(registry.Snapshot().Get("component.level"), 42);
  level = 7;
  EXPECT_EQ(registry.Value("component.level"), 7);
  EXPECT_EQ(polls, 2);
}

TEST(MetricsRegistryTest, ValueOfUnknownMetricIsZeroAndCreatesNothing) {
  obs::MetricsRegistry registry;
  registry.counter("known")->Inc();
  EXPECT_EQ(registry.Value("unknown.metric"), 0);
  EXPECT_EQ(registry.Snapshot().values.size(), 1u)
      << "Value() lookups must not materialize metrics";
}

// --- QueryProfile ---

TEST(QueryProfileTest, SelfTimeSubtractsChildren) {
  auto root = std::make_shared<obs::OperatorProfileNode>();
  root->name = "HashAgg";
  root->wall_us = 1000;
  root->virtual_us = 500;
  auto child = std::make_shared<obs::OperatorProfileNode>();
  child->name = "Scan";
  child->wall_us = 700;
  child->virtual_us = 500;
  root->children.push_back(child);

  EXPECT_EQ(root->SelfWallUs(), 300);
  EXPECT_EQ(root->SelfVirtualUs(), 0);
  EXPECT_EQ(child->SelfWallUs(), 700);

  obs::QueryProfile profile;
  profile.AttachRoot(root);
  // Self times over the tree sum back to the root's inclusive time.
  EXPECT_EQ(profile.TreeWallUs(), 1000);
  EXPECT_EQ(profile.TreeVirtualUs(), 500);
}

TEST(QueryProfileTest, ResetDropsSpansButKeepsCounters) {
  obs::QueryProfile profile;
  profile.SetCounter(obs::qc::kRowsReturned, 9);
  profile.AttachRoot(std::make_shared<obs::OperatorProfileNode>());
  profile.ResetOperatorTree();
  EXPECT_EQ(profile.root(), nullptr);
  EXPECT_EQ(profile.counter(obs::qc::kRowsReturned), 9);
}

TEST(QueryProfileTest, ToJsonContainsCountersAndPlan) {
  obs::QueryProfile profile;
  profile.SetCounter(obs::qc::kRowsReturned, 3);
  auto root = std::make_shared<obs::OperatorProfileNode>();
  root->name = "Scan";
  root->rows_out = 3;
  profile.AttachRoot(root);
  std::string json = profile.ToJson();
  EXPECT_NE(json.find("\"exec.rows_returned\":3"), std::string::npos) << json;
  EXPECT_NE(json.find("\"op\":\"Scan\""), std::string::npos) << json;
}

TEST(QueryProfileTest, QueryResultProfileCountersRoundTrip) {
  QueryResult result;
  result.profile().SetCounter(obs::qc::kFromResultCache, 1);
  result.profile().SetCounter(obs::qc::kReexecutions, 1);
  result.profile().SetCounter(obs::qc::kMvRewrites, 2);
  result.profile().SetCounter(obs::qc::kWallUs, 1234);
  result.profile().SetCounter(obs::qc::kTaskRetries, 3);
  const QueryResult& view = result;
  EXPECT_EQ(view.profile().counter(obs::qc::kFromResultCache), 1);
  EXPECT_EQ(view.profile().counter(obs::qc::kReexecutions), 1);
  EXPECT_EQ(view.profile().counter(obs::qc::kMvRewrites), 2);
  EXPECT_EQ(view.profile().counter(obs::qc::kWallUs), 1234);
  EXPECT_EQ(view.profile().counter(obs::qc::kTaskRetries), 3);
}

// --- end-to-end: EXPLAIN ANALYZE + SHOW METRICS over TPC-DS ---

class ObsEndToEndTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    fs_ = new MemFileSystem();
    Config config;
    config.container_startup_us = 0;
    server_ = new HiveServer2(fs_, config);
    Connection loader = server_->Connect();
    TpcdsOptions options;
    options.days = 4;  // keep the suite fast
    ASSERT_TRUE(LoadTpcds(loader, options).ok());
  }
  static void TearDownTestSuite() {
    delete server_;
    delete fs_;
  }

  /// Reads one metric row out of a SHOW METRICS result.
  static int64_t MetricRow(const QueryResult& metrics, const std::string& name) {
    for (const auto& row : metrics.rows)
      if (row.size() == 2 && row[0].ToString() == name) return row[1].i64();
    return -1;
  }

  static MemFileSystem* fs_;
  static HiveServer2* server_;
};

MemFileSystem* ObsEndToEndTest::fs_ = nullptr;
HiveServer2* ObsEndToEndTest::server_ = nullptr;

/// Every profiled span must contain its children (inclusive timing), so the
/// rendered tree's numbers add up for a reader.
void ExpectNestedSpans(const obs::OperatorProfileNode& node) {
  int64_t child_wall = 0, child_virtual = 0;
  for (const auto& c : node.children) {
    child_wall += c->wall_us;
    child_virtual += c->virtual_us;
    ExpectNestedSpans(*c);
  }
  EXPECT_GE(node.wall_us, child_wall) << node.name << "[" << node.detail << "]";
  EXPECT_GE(node.virtual_us, child_virtual)
      << node.name << "[" << node.detail << "]";
}

TEST_F(ObsEndToEndTest, ProfileTreeRowsAndTimesConsistent) {
  Connection session = server_->Connect();
  session.config().result_cache_enabled = false;
  for (const BenchQuery& q : TpcdsQueries()) {
    auto result = session.Execute(q.sql);
    ASSERT_TRUE(result.ok()) << q.name << ": " << result.status().ToString();
    const obs::QueryProfile& profile = result->profile();
    ASSERT_NE(profile.root(), nullptr) << q.name;
    // The root operator's row count is the query's row count, which is also
    // the rows_returned counter.
    EXPECT_EQ(profile.root()->rows_out,
              static_cast<int64_t>(result->rows.size()))
        << q.name;
    EXPECT_EQ(profile.counter(obs::qc::kRowsReturned),
              static_cast<int64_t>(result->rows.size()))
        << q.name;
    for (const auto& root : profile.roots()) ExpectNestedSpans(*root);
    // Summing self times over the main plan's spans reconstructs the root's
    // inclusive totals exactly (the identity EXPLAIN ANALYZE's numbers rely
    // on). Auxiliary roots are excluded: they run nested inside the main
    // plan's scan Open, so the main root already contains them.
    EXPECT_EQ(profile.TreeWallUs(), profile.root()->wall_us) << q.name;
    EXPECT_EQ(profile.TreeVirtualUs(), profile.root()->virtual_us) << q.name;
    // The plan's time is part of the query's measured time.
    EXPECT_LE(profile.TreeWallUs(), profile.counter(obs::qc::kWallUs)) << q.name;
    EXPECT_LE(profile.TreeVirtualUs(), profile.counter(obs::qc::kVirtualUs))
        << q.name;
  }
}

TEST_F(ObsEndToEndTest, ExplainAnalyzeAnnotatesPlanWithActualRowCounts) {
  Connection session = server_->Connect();
  session.config().result_cache_enabled = false;
  const BenchQuery q = TpcdsQueries().front();
  auto plain = session.Execute(q.sql);
  ASSERT_TRUE(plain.ok()) << plain.status().ToString();

  auto analyzed = session.Execute("EXPLAIN ANALYZE " + q.sql);
  ASSERT_TRUE(analyzed.ok()) << analyzed.status().ToString();
  ASSERT_EQ(analyzed->schema.field(0).name, "plan");
  ASSERT_FALSE(analyzed->rows.empty());
  // Root line: the plan's top operator annotated with the real row count.
  std::string root_line = analyzed->rows[0][0].ToString();
  EXPECT_NE(root_line.find("rows=" + std::to_string(plain->rows.size())),
            std::string::npos)
      << root_line;
  // The tree must mention a table scan and per-operator timings.
  std::string all;
  for (const auto& row : analyzed->rows) all += row[0].ToString() + "\n";
  EXPECT_NE(all.find("Scan"), std::string::npos) << all;
  EXPECT_NE(all.find("wall="), std::string::npos) << all;
  // The counter block follows the tree (flat counters, one per line).
  EXPECT_NE(all.find(std::string(obs::qc::kRowsReturned) + " = " +
                     std::to_string(plain->rows.size())),
            std::string::npos)
      << all;
}

TEST_F(ObsEndToEndTest, ExplainAnalyzeBypassesResultCache) {
  Connection session = server_->Connect();
  session.config().result_cache_enabled = true;
  const BenchQuery q = TpcdsQueries().front();
  ASSERT_TRUE(session.Execute(q.sql).ok());  // fill the cache
  auto analyzed = session.Execute("EXPLAIN ANALYZE " + q.sql);
  ASSERT_TRUE(analyzed.ok()) << analyzed.status().ToString();
  std::string all;
  for (const auto& row : analyzed->rows) all += row[0].ToString() + "\n";
  EXPECT_EQ(all.find("result-cache hit"), std::string::npos)
      << "EXPLAIN ANALYZE must measure a real execution:\n" << all;
  EXPECT_NE(all.find("Scan"), std::string::npos) << all;
}

TEST_F(ObsEndToEndTest, ShowMetricsReflectsLlapCacheAcrossWarmRerun) {
  Connection session = server_->Connect();
  session.config().result_cache_enabled = false;
  ASSERT_TRUE(session.config().llap_enabled);
  server_->llap()->cache()->Clear();

  const BenchQuery q = TpcdsQueries().front();
  ASSERT_TRUE(session.Execute(q.sql).ok());
  auto cold = session.Execute("SHOW METRICS");
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();
  int64_t cold_hits = MetricRow(*cold, "llap.cache.hits");
  int64_t cold_misses = MetricRow(*cold, "llap.cache.misses");
  ASSERT_GE(cold_hits, 0);
  EXPECT_GT(cold_misses, 0) << "cold run must miss the cleared cache";

  // Warm re-run: same chunks, so hits rise and misses stay put.
  auto warm_run = session.Execute(q.sql);
  ASSERT_TRUE(warm_run.ok());
  auto warm = session.Execute("SHOW METRICS");
  ASSERT_TRUE(warm.ok()) << warm.status().ToString();
  EXPECT_GT(MetricRow(*warm, "llap.cache.hits"), cold_hits);
  EXPECT_EQ(MetricRow(*warm, "llap.cache.misses"), cold_misses);
  // The per-query profile agrees: the warm run recorded cache hits.
  EXPECT_GT(warm_run->profile().counter(obs::qc::kLlapCacheHits), 0);
  EXPECT_EQ(warm_run->profile().counter(obs::qc::kLlapCacheMisses), 0);

  // Engine totals exposed alongside component callbacks.
  EXPECT_GT(MetricRow(*warm, "server.statements"), 0);
  EXPECT_GT(MetricRow(*warm, "server.queries"), 0);
}

TEST_F(ObsEndToEndTest, ExecuteScriptReturnsEveryStatementsResult) {
  Connection session = server_->Connect();
  auto results = session.ExecuteScript("SELECT 1; SELECT 2; SELECT 3");
  ASSERT_TRUE(results.ok()) << results.status().ToString();
  ASSERT_EQ(results->size(), 3u);
  EXPECT_EQ((*results)[0].rows[0][0].ToString(), "1");
  EXPECT_EQ((*results)[2].rows[0][0].ToString(), "3");

  auto empty = session.ExecuteScript("  ");
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->empty()) << "blank script should yield no results";
}

}  // namespace
}  // namespace hive
