#include <gtest/gtest.h>

#include "exec/compiler.h"
#include "fs/mem_filesystem.h"
#include "metastore/txn_manager.h"
#include "optimizer/binder.h"
#include "optimizer/optimizer.h"
#include "sql/parser.h"
#include "storage/chunk_provider.h"

namespace hive {
namespace {

/// End-to-end harness: parse -> bind -> optimize -> compile -> execute over
/// an in-memory warehouse, without the HS2 layer (covered separately).
class ExecTest : public ::testing::Test {
 protected:
  void SetUp() override {
    catalog_ = std::make_unique<Catalog>(&fs_);
    provider_ = std::make_unique<DirectChunkProvider>(&fs_);
    SetUpTables();
  }

  void SetUpTables() {
    // items: dimension table.
    TableDesc item;
    item.db = "default";
    item.name = "item";
    item.schema.AddField("i_item_sk", DataType::Bigint());
    item.schema.AddField("i_category", DataType::String());
    item.schema.AddField("i_price", DataType::Decimal(7, 2));
    ASSERT_TRUE(catalog_->CreateTable(item).ok());
    std::vector<std::vector<Value>> item_rows;
    for (int64_t i = 0; i < 20; ++i)
      item_rows.push_back({Value::Bigint(i),
                           Value::String(i % 4 == 0 ? "Sports" : (i % 4 == 1 ? "Books" : "Home")),
                           Value::Decimal(i * 150, 2)});
    WriteRows("item", item_rows);

    // store_sales: fact table partitioned by sold_date_sk.
    TableDesc sales;
    sales.db = "default";
    sales.name = "store_sales";
    sales.schema.AddField("ss_item_sk", DataType::Bigint());
    sales.schema.AddField("ss_customer_sk", DataType::Bigint());
    sales.schema.AddField("ss_sales_price", DataType::Decimal(7, 2));
    sales.partition_cols.push_back({"sold_date_sk", DataType::Bigint()});
    ASSERT_TRUE(catalog_->CreateTable(sales).ok());
    // 3 partitions (days 1..3), 60 rows each.
    for (int64_t day = 1; day <= 3; ++day) {
      ASSERT_TRUE(
          catalog_->AddPartition("default", "store_sales", {Value::Bigint(day)}).ok());
      std::vector<std::vector<Value>> rows;
      for (int64_t i = 0; i < 60; ++i)
        rows.push_back({Value::Bigint(i % 20), Value::Bigint(i % 7),
                        Value::Decimal((i + day) * 100, 2)});
      WritePartitionRows("store_sales", {Value::Bigint(day)}, rows);
    }
  }

  void WriteRows(const std::string& table, const std::vector<std::vector<Value>>& rows) {
    auto desc = catalog_->GetTable("default", table);
    ASSERT_TRUE(desc.ok());
    int64_t txn = txns_.OpenTxn();
    auto wid = txns_.AllocateWriteId(txn, desc->FullName());
    ASSERT_TRUE(wid.ok());
    AcidWriter writer(&fs_, desc->location, desc->schema, *wid);
    TableStatistics stats;
    stats.row_count = static_cast<int64_t>(rows.size());
    for (size_t c = 0; c < desc->schema.num_fields(); ++c) {
      ColumnStatistics col;
      for (const auto& row : rows) {
        col.num_values++;
        if (row[c].is_null()) {
          col.num_nulls++;
          continue;
        }
        if (col.min.is_null() || Value::Compare(row[c], col.min) < 0) col.min = row[c];
        if (col.max.is_null() || Value::Compare(row[c], col.max) > 0) col.max = row[c];
        col.ndv.Add(row[c]);
      }
      stats.columns[ToLower(desc->schema.field(c).name)] = col;
    }
    for (const auto& row : rows) writer.Insert(row);
    ASSERT_TRUE(writer.Commit().ok());
    ASSERT_TRUE(txns_.CommitTxn(txn).ok());
    ASSERT_TRUE(catalog_->MergeStats("default", table, stats).ok());
  }

  void WritePartitionRows(const std::string& table, const std::vector<Value>& part,
                          const std::vector<std::vector<Value>>& rows) {
    auto desc = catalog_->GetTable("default", table);
    ASSERT_TRUE(desc.ok());
    int64_t txn = txns_.OpenTxn();
    auto wid = txns_.AllocateWriteId(txn, desc->FullName());
    ASSERT_TRUE(wid.ok());
    std::string location =
        JoinPath(desc->location, Catalog::PartitionDirName(desc->partition_cols, part));
    AcidWriter writer(&fs_, location, desc->schema, *wid);
    for (const auto& row : rows) writer.Insert(row);
    ASSERT_TRUE(writer.Commit().ok());
    ASSERT_TRUE(txns_.CommitTxn(txn).ok());
    TableStatistics stats;
    stats.row_count = static_cast<int64_t>(rows.size());
    ASSERT_TRUE(catalog_->MergeStats("default", table, stats, part).ok());
  }

  Result<std::vector<std::vector<Value>>> Run(const std::string& sql) {
    HIVE_ASSIGN_OR_RETURN(StatementPtr stmt, Parser::Parse(sql));
    auto* select = dynamic_cast<SelectStatement*>(stmt.get());
    if (!select) return Status::InvalidArgument("not a select");
    Binder binder(catalog_.get(), &config_);
    HIVE_ASSIGN_OR_RETURN(RelNodePtr plan, binder.BindSelect(select->select));
    Optimizer optimizer(catalog_.get(), &config_);
    HIVE_ASSIGN_OR_RETURN(plan, optimizer.Optimize(plan));
    last_plan_ = plan;

    ExecContext ctx;
    ctx.fs = &fs_;
    ctx.catalog = catalog_.get();
    ctx.config = &config_;
    ctx.clock = &clock_;
    ctx.chunks = provider_.get();
    TxnSnapshot snap = txns_.GetSnapshot();
    ctx.snapshot_for = [this, snap](const std::string& table) {
      return txns_.GetValidWriteIds(table, snap);
    };
    HIVE_ASSIGN_OR_RETURN(OperatorPtr root, CompilePlan(&ctx, plan));
    return CollectRows(root.get());
  }

  MemFileSystem fs_;
  TransactionManager txns_;
  Config config_;
  SimClock clock_;
  std::unique_ptr<Catalog> catalog_;
  std::unique_ptr<DirectChunkProvider> provider_;
  RelNodePtr last_plan_;
};

TEST_F(ExecTest, SelectStarFromDimension) {
  auto rows = Run("SELECT * FROM item");
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_EQ(rows->size(), 20u);
  EXPECT_EQ((*rows)[0].size(), 3u);
}

TEST_F(ExecTest, FilterAndProject) {
  auto rows = Run("SELECT i_item_sk, i_price FROM item WHERE i_category = 'Sports'");
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_EQ(rows->size(), 5u);  // items 0,4,8,12,16
  for (const auto& row : *rows) EXPECT_EQ(row[0].i64() % 4, 0);
}

TEST_F(ExecTest, ArithmeticAndAliases) {
  auto rows = Run("SELECT i_item_sk * 2 AS double_sk FROM item WHERE i_item_sk < 3");
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  ASSERT_EQ(rows->size(), 3u);
  std::set<int64_t> got;
  for (const auto& row : *rows) got.insert(row[0].i64());
  EXPECT_EQ(got, (std::set<int64_t>{0, 2, 4}));
}

TEST_F(ExecTest, ScanPartitionedTable) {
  auto rows = Run("SELECT COUNT(*) FROM store_sales");
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_EQ((*rows)[0][0].i64(), 180);
}

TEST_F(ExecTest, StaticPartitionPruning) {
  auto rows = Run("SELECT COUNT(*) FROM store_sales WHERE sold_date_sk = 2");
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_EQ((*rows)[0][0].i64(), 60);
  // The plan must show a single surviving partition.
  std::string plan_text = last_plan_->ToString();
  EXPECT_NE(plan_text.find("partitions: 1"), std::string::npos) << plan_text;
}

TEST_F(ExecTest, GroupByWithHaving) {
  auto rows = Run(
      "SELECT i_category, COUNT(*) AS c, SUM(i_price) AS total FROM item "
      "GROUP BY i_category HAVING COUNT(*) > 5 ORDER BY c DESC");
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  ASSERT_EQ(rows->size(), 1u);  // only "Home" has 10
  EXPECT_EQ((*rows)[0][0].str(), "Home");
  EXPECT_EQ((*rows)[0][1].i64(), 10);
}

TEST_F(ExecTest, JoinFactToDimension) {
  auto rows = Run(
      "SELECT i_category, SUM(ss_sales_price) AS total FROM store_sales, item "
      "WHERE ss_item_sk = i_item_sk AND i_category = 'Sports' "
      "GROUP BY i_category");
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_EQ((*rows)[0][0].str(), "Sports");
  // 180 fact rows; item_sk = i%20; Sports items are 0,4,8,12,16 -> 45 rows.
}

TEST_F(ExecTest, ExplicitJoinSyntax) {
  auto rows = Run(
      "SELECT COUNT(*) FROM store_sales ss JOIN item i ON ss.ss_item_sk = i.i_item_sk");
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_EQ((*rows)[0][0].i64(), 180);
}

TEST_F(ExecTest, LeftJoinPreservesUnmatched) {
  auto rows = Run(
      "SELECT i.i_item_sk, COUNT(ss.ss_item_sk) AS c FROM item i "
      "LEFT JOIN (SELECT * FROM store_sales WHERE ss_item_sk < 5) ss "
      "ON i.i_item_sk = ss.ss_item_sk GROUP BY i.i_item_sk ORDER BY i.i_item_sk");
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  ASSERT_EQ(rows->size(), 20u);
  EXPECT_GT((*rows)[0][1].i64(), 0);   // item 0 matched
  EXPECT_EQ((*rows)[10][1].i64(), 0);  // item 10 unmatched -> count 0
}

TEST_F(ExecTest, OrderByLimitDesc) {
  auto rows = Run("SELECT i_item_sk FROM item ORDER BY i_item_sk DESC LIMIT 3");
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  ASSERT_EQ(rows->size(), 3u);
  EXPECT_EQ((*rows)[0][0].i64(), 19);
  EXPECT_EQ((*rows)[2][0].i64(), 17);
}

TEST_F(ExecTest, OrderByUnselectedColumn) {
  auto rows = Run("SELECT i_category FROM item ORDER BY i_item_sk LIMIT 2");
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  ASSERT_EQ(rows->size(), 2u);
  EXPECT_EQ((*rows)[0][0].str(), "Sports");  // item 0
  EXPECT_EQ((*rows)[1][0].str(), "Books");   // item 1
}

TEST_F(ExecTest, SetOperations) {
  auto u = Run(
      "SELECT i_item_sk FROM item WHERE i_item_sk < 3 UNION ALL "
      "SELECT i_item_sk FROM item WHERE i_item_sk < 2");
  ASSERT_TRUE(u.ok()) << u.status().ToString();
  EXPECT_EQ(u->size(), 5u);

  auto ud = Run(
      "SELECT i_item_sk FROM item WHERE i_item_sk < 3 UNION "
      "SELECT i_item_sk FROM item WHERE i_item_sk < 2");
  ASSERT_TRUE(ud.ok());
  EXPECT_EQ(ud->size(), 3u);

  auto in = Run(
      "SELECT i_item_sk FROM item WHERE i_item_sk < 5 INTERSECT "
      "SELECT i_item_sk FROM item WHERE i_item_sk > 2");
  ASSERT_TRUE(in.ok());
  EXPECT_EQ(in->size(), 2u);  // 3, 4

  auto ex = Run(
      "SELECT i_item_sk FROM item WHERE i_item_sk < 5 EXCEPT "
      "SELECT i_item_sk FROM item WHERE i_item_sk > 2");
  ASSERT_TRUE(ex.ok());
  EXPECT_EQ(ex->size(), 3u);  // 0, 1, 2
}

TEST_F(ExecTest, LegacyModeRejectsSetOps) {
  config_.SetLegacyV12Mode();
  auto r = Run("SELECT i_item_sk FROM item INTERSECT SELECT i_item_sk FROM item");
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotSupported());
}

TEST_F(ExecTest, UncorrelatedInSubquery) {
  auto rows = Run(
      "SELECT COUNT(*) FROM store_sales WHERE ss_item_sk IN "
      "(SELECT i_item_sk FROM item WHERE i_category = 'Sports')");
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_EQ((*rows)[0][0].i64(), 45);
}

TEST_F(ExecTest, NotInSubquery) {
  auto rows = Run(
      "SELECT COUNT(*) FROM store_sales WHERE ss_item_sk NOT IN "
      "(SELECT i_item_sk FROM item WHERE i_category = 'Sports')");
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_EQ((*rows)[0][0].i64(), 135);
}

TEST_F(ExecTest, CorrelatedExists) {
  auto rows = Run(
      "SELECT COUNT(*) FROM item i WHERE EXISTS "
      "(SELECT 1 FROM store_sales ss WHERE ss.ss_item_sk = i.i_item_sk "
      " AND ss.ss_sales_price > CAST(50 AS DECIMAL(7,2)))");
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_GT((*rows)[0][0].i64(), 0);
  EXPECT_LE((*rows)[0][0].i64(), 20);
}

TEST_F(ExecTest, CorrelatedScalarAggSubquery) {
  auto rows = Run(
      "SELECT i_item_sk, (SELECT COUNT(*) FROM store_sales ss "
      "WHERE ss.ss_item_sk = i.i_item_sk) AS sales_count "
      "FROM item i ORDER BY i_item_sk LIMIT 5");
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  ASSERT_EQ(rows->size(), 5u);
  // Every item_sk 0..19 appears 9 times (3 per partition x 3 partitions).
  EXPECT_EQ((*rows)[0][1].i64(), 9);
}

TEST_F(ExecTest, ScalarSubqueryComparison) {
  auto rows = Run(
      "SELECT COUNT(*) FROM item WHERE i_price > (SELECT AVG(i_price) FROM item)");
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_EQ((*rows)[0][0].i64(), 10);  // prices 0..28.50, avg 14.25 -> 10 above
}

TEST_F(ExecTest, CaseExpression) {
  auto rows = Run(
      "SELECT SUM(CASE WHEN i_category = 'Sports' THEN 1 ELSE 0 END) FROM item");
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_EQ((*rows)[0][0].i64(), 5);
}

TEST_F(ExecTest, DistinctAndCountDistinct) {
  auto rows = Run("SELECT COUNT(DISTINCT i_category) FROM item");
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_EQ((*rows)[0][0].i64(), 3);

  auto d = Run("SELECT DISTINCT i_category FROM item");
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->size(), 3u);
}

TEST_F(ExecTest, WindowFunctions) {
  auto rows = Run(
      "SELECT i_item_sk, i_category, "
      "ROW_NUMBER() OVER (PARTITION BY i_category ORDER BY i_price DESC) AS rn "
      "FROM item ORDER BY i_category, rn LIMIT 4");
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  ASSERT_EQ(rows->size(), 4u);
  EXPECT_EQ((*rows)[0][2].i64(), 1);
  EXPECT_EQ((*rows)[1][2].i64(), 2);
}

TEST_F(ExecTest, WindowAggregateOverPartition) {
  auto rows = Run(
      "SELECT i_item_sk, SUM(i_price) OVER (PARTITION BY i_category) AS cat_total "
      "FROM item WHERE i_category = 'Books' ORDER BY i_item_sk");
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  ASSERT_EQ(rows->size(), 5u);
  // All rows share the same category total.
  for (size_t i = 1; i < rows->size(); ++i)
    EXPECT_EQ((*rows)[i][1].ToString(), (*rows)[0][1].ToString());
}

TEST_F(ExecTest, GroupingSetsExpandToUnion) {
  auto rows = Run(
      "SELECT i_category, COUNT(*) AS c FROM item "
      "GROUP BY i_category GROUPING SETS ((i_category), ())");
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_EQ(rows->size(), 4u);  // 3 categories + 1 grand total
  int64_t grand_total = 0;
  for (const auto& row : *rows)
    if (row[0].is_null()) grand_total = row[1].i64();
  EXPECT_EQ(grand_total, 20);
}

TEST_F(ExecTest, Ctes) {
  auto rows = Run(
      "WITH sporty AS (SELECT i_item_sk FROM item WHERE i_category = 'Sports') "
      "SELECT COUNT(*) FROM sporty");
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_EQ((*rows)[0][0].i64(), 5);
}

TEST_F(ExecTest, JoinReorderingProducesSameResult) {
  const std::string sql =
      "SELECT COUNT(*) FROM store_sales ss, item i, "
      "(SELECT 1 AS one) d WHERE ss.ss_item_sk = i.i_item_sk";
  config_.cbo_enabled = true;
  auto with_cbo = Run(sql);
  ASSERT_TRUE(with_cbo.ok()) << with_cbo.status().ToString();
  config_.cbo_enabled = false;
  auto without_cbo = Run(sql);
  ASSERT_TRUE(without_cbo.ok()) << without_cbo.status().ToString();
  EXPECT_EQ((*with_cbo)[0][0].i64(), (*without_cbo)[0][0].i64());
}

TEST_F(ExecTest, SemiJoinReductionSkipsRowGroups) {
  // Dimension filter is selective; the reducer should push a Bloom/range
  // into the fact scan. Results must match with the feature off.
  const std::string sql =
      "SELECT SUM(ss_sales_price) FROM store_sales, item "
      "WHERE ss_item_sk = i_item_sk AND i_category = 'Books'";
  config_.semijoin_reduction_enabled = true;
  auto on = Run(sql);
  ASSERT_TRUE(on.ok()) << on.status().ToString();
  config_.semijoin_reduction_enabled = false;
  auto off = Run(sql);
  ASSERT_TRUE(off.ok());
  EXPECT_EQ((*on)[0][0].ToString(), (*off)[0][0].ToString());
}

TEST_F(ExecTest, SharedWorkProducesSameResults) {
  const std::string sql =
      "SELECT (SELECT COUNT(*) FROM store_sales WHERE ss_customer_sk = 1) AS a, "
      "(SELECT COUNT(*) FROM store_sales WHERE ss_customer_sk = 1) AS b";
  config_.shared_work_enabled = true;
  auto on = Run(sql);
  ASSERT_TRUE(on.ok()) << on.status().ToString();
  EXPECT_EQ((*on)[0][0].i64(), (*on)[0][1].i64());
}

TEST_F(ExecTest, EmptyResultSets) {
  auto rows = Run("SELECT * FROM item WHERE i_item_sk > 1000");
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_TRUE(rows->empty());
  auto agg = Run("SELECT COUNT(*), SUM(i_price) FROM item WHERE i_item_sk > 1000");
  ASSERT_TRUE(agg.ok());
  ASSERT_EQ(agg->size(), 1u);
  EXPECT_EQ((*agg)[0][0].i64(), 0);
  EXPECT_TRUE((*agg)[0][1].is_null());
}

TEST_F(ExecTest, SelectWithoutFrom) {
  auto rows = Run("SELECT 1 + 2, 'x' || 'y'");
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_EQ((*rows)[0][0].i64(), 3);
  EXPECT_EQ((*rows)[0][1].str(), "xy");
}

TEST_F(ExecTest, DecimalAggregationIsExact) {
  auto rows = Run("SELECT SUM(i_price) FROM item");
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  // Sum of i*1.50 for i in 0..19 = 1.5 * 190 = 285.00
  EXPECT_EQ((*rows)[0][0].ToString(), "285.00");
}

TEST_F(ExecTest, BetweenAndInList) {
  auto rows = Run(
      "SELECT COUNT(*) FROM item WHERE i_item_sk BETWEEN 5 AND 10 "
      "AND i_category IN ('Sports', 'Books')");
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  // 5..10: categories: 5:Books? 5%4=1 Books, 8:Sports, 9:Books -> 3
  EXPECT_EQ((*rows)[0][0].i64(), 3);
}

TEST_F(ExecTest, LikePredicate) {
  auto rows = Run("SELECT COUNT(*) FROM item WHERE i_category LIKE 'S%'");
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_EQ((*rows)[0][0].i64(), 5);
}

}  // namespace
}  // namespace hive
