// Fixture: idiomatic engine code produces zero findings. Mentions of
// std::mutex, printf("...") and rand() in comments or string literals are
// prose. R"(raw strings with printf( inside)" are also prose.
#include <string>

struct Status {
  bool ok() const { return true; }
};

Status Query(const std::string& sql);

Status Fine() {
  std::string doc = "call rand() and std::cout << printf(...) -- all prose";
  std::string raw = R"(std::mutex inside a raw string, time(nullptr) too)";
  Status s = Query(doc + raw);
  if (!s.ok()) return s;
  return Status{};
}
