// hivelint-fixture-path: src/server/bad_wait_nested.cc
// CondVar::Wait releases only the lock it is handed; with a second lock
// live, that one stays held for the whole sleep. Wait under exactly one
// lock is the normal pattern and stays clean.

#include "common/sync.h"

namespace hive {

void WaitNested(Mutex* a, Mutex* b, CondVar* cv, const bool* done) {
  MutexLock outer(a);
  MutexLock inner(b);
  while (!*done) cv->Wait(&inner);  // expect[lock-wait-nested]
}

void WaitSingle(Mutex* a, CondVar* cv, const bool* done) {
  MutexLock lock(a);
  while (!*done) cv->Wait(&lock);  // one lock: clean
}

}  // namespace hive
