// hivelint-fixture-path: src/metastore/allow_blocking.cc
// Suppression: `// lint: allow-blocking(<reason>)` on the offending line or
// the line above silences lock-blocking for that one site. The reason is
// mandatory by convention — it is what the reviewer signed off on.

#include "fs/filesystem.h"

namespace hive {

Status ReviewedBlocking(FileSystem* fs, Mutex* mu) {
  MutexLock lock(mu);
  // lint: allow-blocking(in-memory fs on this path; bounded critical section)
  HIVE_RETURN_IF_ERROR(fs->MakeDirs("/warehouse/a"));
  return fs->DeleteFile("/tmp/a");  // lint: allow-blocking(same review)
}

}  // namespace hive
