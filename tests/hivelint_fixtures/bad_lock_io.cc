// hivelint-fixture-path: src/metastore/bad_lock_io.cc
// Lockflow: filesystem I/O while a MutexLock is live stalls every thread
// that needs the lock; the same call with the lock already dead is fine.

#include "fs/filesystem.h"

namespace hive {

Status CreateUnderLock(FileSystem* fs, Mutex* mu) {
  MutexLock lock(mu);
  return fs->MakeDirs("/warehouse/t");  // expect[lock-blocking]
}

Status CreateAfterLock(FileSystem* fs, Mutex* mu) {
  {
    MutexLock lock(mu);
  }
  return fs->MakeDirs("/warehouse/t");  // lock already dead: clean
}

Status CreateAfterUnlock(FileSystem* fs, Mutex* mu) {
  MutexLock lock(mu);
  lock.Unlock();
  return fs->MakeDirs("/warehouse/t");  // explicitly released: clean
}

}  // namespace hive
