// hivelint-fixture-path: bench/outside_src.cc
// Fixture: the src/-scoped rules (raw-sync, wall-clock, stray-output) stay
// quiet outside src/ — benches and tests may use raw primitives and print
// results. silent-discard applies everywhere.
#include <cstdio>
#include <mutex>

struct Status {
  bool ok() const { return true; }
};
Status Run();

void Bench() {
  std::mutex mu;
  std::lock_guard<std::mutex> g(mu);
  printf("ok\n");
  (void)Run();  // expect[silent-discard]
  (void)Run();  // lint: allow-discard(warmup iteration)
}
