// Fixture: direct Session construction in src/ must be flagged — sessions
// exist only behind RAII Connection handles minted by the connection
// manager, so teardown (cancel, drain, drop temps, sweep spill) always runs.
#include <memory>

namespace hive {

class Session;
class HiveServer2;

void Bad(HiveServer2* server) {
  Session* raw = new Session();                 // expect[session-construct]
  auto owned = std::make_unique<Session>();     // expect[session-construct]
  auto shared = std::make_shared<Session>();    // expect[session-construct]
  auto q = std::make_shared<hive::Session>();   // expect[session-construct]
  Session by_value;                             // expect[session-construct]
  Session assigned = Session();                 // expect[session-construct]
}

// Non-owning uses must NOT fire: the engine passes sessions around by
// pointer/reference all the time; only *creation* is the manager's job.
void Fine(Session* session, Session& ref, const std::shared_ptr<Session>& sp);
// A comment mentioning `new Session()` or a by-value Session decl is prose,
// not code, and must not fire either.
class SessionObserver {
  Session* watched_ = nullptr;
};

}  // namespace hive
