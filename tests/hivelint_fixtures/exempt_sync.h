// hivelint-fixture-path: src/common/sync.h
// Fixture: the sync wrapper itself is the one place raw primitives are
// legal — the exemption list must suppress every raw-sync hit here.
#include <condition_variable>
#include <mutex>

struct Wrapper {
  std::mutex mu;
  std::condition_variable cv;
};
