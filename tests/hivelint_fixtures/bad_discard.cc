// Fixture: (void)-silenced calls need an adjacent allow-discard comment.
struct Status {
  bool ok() const { return true; }
};
Status DoWork();
Status Abort(int txn);

void Bad(int txn) {
  (void)DoWork();               // expect[silent-discard]
  (void)Abort(txn);             // expect[silent-discard]
  ( void ) DoWork();            // expect[silent-discard]
  (void)Abort(txn).ok();        // expect[silent-discard]
}

void Fine(int txn, int unused) {
  // Same-line marker.
  (void)DoWork();  // lint: allow-discard(best-effort warmup)
  // Previous-line marker.
  // lint: allow-discard(abort failure is secondary to the returned error)
  (void)Abort(txn);
  // Plain identifier discards are unused-variable silencing, not a
  // swallowed Status; they stay legal without a marker.
  (void)unused;
}
