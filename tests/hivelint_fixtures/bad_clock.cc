// Fixture: wall-clock and nondeterministic randomness in src/.
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>

long Bad() {
  long t = time(nullptr);                            // expect[wall-clock]
  t += std::time(nullptr);                           // expect[wall-clock]
  srand(42);                                         // expect[wall-clock]
  t += rand();                                       // expect[wall-clock]
  std::random_device rd;                             // expect[wall-clock]
  std::mt19937 gen(rd());                            // expect[wall-clock]
  std::mt19937_64 gen64(1);                          // expect[wall-clock]
  auto now = std::chrono::system_clock::now();       // expect[wall-clock]
  auto mono = std::chrono::steady_clock::now();      // expect[wall-clock]
  (void)now;
  (void)mono;
  (void)gen;
  (void)gen64;
  return t;
}

// Must NOT fire: identifiers that merely end in "time", member calls, and
// chrono durations without a clock read.
struct Stats {
  long runtime(int x) { return x; }
  long scan_time(int x) { return x; }
};
long Fine(Stats* s) {
  std::chrono::milliseconds d(5);
  return s->runtime(1) + s->scan_time(2) + d.count();
}
