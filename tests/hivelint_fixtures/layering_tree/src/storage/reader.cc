// A module directory that exists in the tree but that the declared layer
// DAG does not name: depending on it is an error until it is layered.
#include "widget/gadget.h"  // expect[layer-unknown]

// A quoted include with no matching module directory is external noise.
#include "thirdparty/lib.h"
