#ifndef FIXTURE_OBS_METRICS_H_
#define FIXTURE_OBS_METRICS_H_

// The back edge of the fs <-> obs cycle; the cycle is reported on the
// other edge (once per strongly connected component).
#include "fs/file.h"

#endif  // FIXTURE_OBS_METRICS_H_
