#ifndef FIXTURE_FS_FILE_H_
#define FIXTURE_FS_FILE_H_

// fs <-> obs are both layer 1, so neither edge is upward; the cycle is
// caught by the SCC check and reported once, on the first edge of the
// chain from the lexicographically smallest member (fs).
#include "obs/metrics.h"  // expect[layer-cycle]

#endif  // FIXTURE_FS_FILE_H_
