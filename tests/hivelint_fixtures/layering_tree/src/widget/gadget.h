#ifndef FIXTURE_WIDGET_GADGET_H_
#define FIXTURE_WIDGET_GADGET_H_

// This module is not in the layer DAG. Merely existing is fine — only
// depending on it (see storage/reader.cc) is flagged.

#endif  // FIXTURE_WIDGET_GADGET_H_
