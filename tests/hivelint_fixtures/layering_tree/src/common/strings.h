#ifndef FIXTURE_COMMON_STRINGS_H_
#define FIXTURE_COMMON_STRINGS_H_

// common (layer 0) reaching up into the engine (layer 5) is the canonical
// upward violation; a commented-out include must not count:
// #include "exec/engine.h"
#include "exec/engine.h"  // expect[layer-upward]

#endif  // FIXTURE_COMMON_STRINGS_H_
