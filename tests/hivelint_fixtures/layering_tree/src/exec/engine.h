#ifndef FIXTURE_EXEC_ENGINE_H_
#define FIXTURE_EXEC_ENGINE_H_

// Angled and same-module includes never participate in the module graph.
#include <string>

#endif  // FIXTURE_EXEC_ENGINE_H_
