#include "obs/metric_names.h"

namespace hive {

// References keep knob_used / knob_undoc and kUsed / kDupe alive for the
// drift pass; the string literal at a metric call site is the violation.
void TouchRegistries(Sink* sink, const Config* config) {
  sink->counter(obs::metric::kUsed);
  sink->counter(obs::metric::kDupe);
  sink->counter("fixture.metric.literal");  // expect[metric-literal]
  sink->gauge(config->knob_used ? 1 : 0);
  sink->gauge(config->knob_undoc ? 1 : 0);
}

}  // namespace hive
