#ifndef FIXTURE_OBS_METRIC_NAMES_H_
#define FIXTURE_OBS_METRIC_NAMES_H_

namespace hive {
namespace obs {
namespace metric {

inline constexpr char kUsed[] = "fixture.metric.used";
inline constexpr char kDead[] = "fixture.metric.dead";  // expect[metric-dead]
inline constexpr char kDupe[] = "fixture.metric.used";  // expect[metric-duplicate]

}  // namespace metric
}  // namespace obs
}  // namespace hive

#endif  // FIXTURE_OBS_METRIC_NAMES_H_
