#ifndef FIXTURE_COMMON_CONFIG_H_
#define FIXTURE_COMMON_CONFIG_H_

// Miniature config registry mirroring src/common/config.h's shape (linted,
// never compiled — continuation backslashes are omitted where a marker
// comment needs the line end).

namespace hive {

class Config {
 public:
  Config() = default;

  bool knob_used = true;
  bool knob_dead = true;
  bool knob_undoc = false;
  int knob_unregistered = 3;  // expect[knob-unregistered]
};

#define HIVE_CONFIG_FIELDS(X)       \
  X(knob_used, "fixture.knob.used") \
  X(knob_dead, "fixture.knob.dead")    // expect[knob-dead]
  X(knob_undoc, "fixture.knob.undoc")  // expect[knob-undocumented]

}  // namespace hive

#endif  // FIXTURE_COMMON_CONFIG_H_
