// Fixture: stdout chatter in src/ library code.
#include <cstdio>
#include <iostream>

void Bad(int rows) {
  std::cout << "rows: " << rows << "\n";  // expect[stray-output]
  printf("rows: %d\n", rows);             // expect[stray-output]
  std::printf("rows: %d\n", rows);        // expect[stray-output]
  puts("done");                           // expect[stray-output]
}

// Must NOT fire: stderr diagnostics and string formatting are fine, and
// "printf" inside a string or comment is prose, not a call.
void Fine(int rows) {
  std::fprintf(stderr, "rows: %d\n", rows);
  char buf[32];
  std::snprintf(buf, sizeof(buf), "rows: %d", rows);
  const char* doc = "printf(\"...\") is banned here";
  (void)doc;
}
