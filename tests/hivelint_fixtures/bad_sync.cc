// Fixture: raw synchronization primitives in src/ must be flagged.
#include <mutex>               // expect[raw-sync]
#include <condition_variable>  // expect[raw-sync]

// A comment mentioning std::mutex must NOT fire; only real code does.
struct Bad {
  std::mutex mu;                  // expect[raw-sync]
  std::recursive_mutex rmu;       // expect[raw-sync]
  std::shared_mutex smu;          // expect[raw-sync]
  std::condition_variable cv;     // expect[raw-sync]
  std::condition_variable_any a;  // expect[raw-sync]
};

void Use(Bad* b) {
  std::lock_guard<std::mutex> g(b->mu);   // expect[raw-sync]
  std::unique_lock<std::mutex> u(b->mu);  // expect[raw-sync]
  std::scoped_lock s(b->mu);              // expect[raw-sync]
  const char* msg = "the string std::mutex must not fire";
  (void)msg;
}
