// hivelint-fixture-path: src/exec/spill_like.cc
// Fixture: raw file I/O inside the execution engine. Spill paths must go
// through hive::fs FileSystem so fault injection can reach them.
#include <fstream>      // expect[raw-exec-io]
#include <filesystem>   // expect[raw-exec-io]
#include <cstdio>

void Bad(const char* path) {
  std::ofstream out(path);                     // expect[raw-exec-io]
  std::ifstream in(path);                      // expect[raw-exec-io]
  std::fstream both(path);                     // expect[raw-exec-io]
  std::filesystem::remove(path);               // expect[raw-exec-io]
  FILE* f = fopen(path, "rb");                 // expect[raw-exec-io]
  if (f) fclose(f);
}

// Must NOT fire: the tokens inside comments or strings are prose.
// std::ofstream in a comment is fine, as is "fopen(" in a message.
const char* Fine() { return "never fopen( spill files directly"; }
