#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <functional>
#include <mutex>
#include <thread>

#include "fs/mem_filesystem.h"
#include "server/hive_server.h"
#include "server/workload_loader.h"

namespace hive {
namespace {

/// End-to-end correctness of the benchmark workloads: every Figure 7 query
/// must run on the v3.1 configuration; the v1.2 configuration must reject
/// exactly the queries flagged `requires_v3`; optimizations must never
/// change results.
class TpcdsWorkloadTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    fs_ = new MemFileSystem();
    Config config;
    config.container_startup_us = 0;
    server_ = new HiveServer2(fs_, config);
    Connection loader = server_->Connect();
    TpcdsOptions options;
    options.days = 6;  // keep the suite fast
    ASSERT_TRUE(LoadTpcds(loader, options).ok());
  }
  static void TearDownTestSuite() {
    delete server_;
    delete fs_;
  }

  static MemFileSystem* fs_;
  static HiveServer2* server_;
};

MemFileSystem* TpcdsWorkloadTest::fs_ = nullptr;
HiveServer2* TpcdsWorkloadTest::server_ = nullptr;

TEST_F(TpcdsWorkloadTest, AllQueriesRunOnV31) {
  Connection session = server_->Connect();
  session.config().result_cache_enabled = false;
  for (const BenchQuery& q : TpcdsQueries()) {
    auto r = session.Execute(q.sql);
    EXPECT_TRUE(r.ok()) << q.name << ": " << r.status().ToString();
  }
}

TEST_F(TpcdsWorkloadTest, LegacyModeRejectsExactlyTheFlaggedQueries) {
  Connection session = server_->Connect();
  session.config().SetLegacyV12Mode();
  for (const BenchQuery& q : TpcdsQueries()) {
    auto r = session.Execute(q.sql);
    if (q.requires_v3) {
      EXPECT_FALSE(r.ok()) << q.name << " should be unsupported on v1.2";
      if (!r.ok())
        EXPECT_TRUE(r.status().IsNotSupported()) << r.status().ToString();
    } else {
      EXPECT_TRUE(r.ok()) << q.name << ": " << r.status().ToString();
    }
  }
}

TEST_F(TpcdsWorkloadTest, OptimizationsPreserveResults) {
  // The big safety property: CBO + semijoin + shared work + LLAP on/off
  // must not change any query's result.
  Connection full = server_->Connect();
  full.config().result_cache_enabled = false;
  Connection bare = server_->Connect();
  bare.config().result_cache_enabled = false;
  bare.config().cbo_enabled = false;
  bare.config().semijoin_reduction_enabled = false;
  bare.config().dynamic_partition_pruning_enabled = false;
  bare.config().shared_work_enabled = false;
  bare.config().llap_enabled = false;
  for (const BenchQuery& q : TpcdsQueries()) {
    auto a = full.Execute(q.sql);
    auto b = bare.Execute(q.sql);
    ASSERT_TRUE(a.ok()) << q.name << ": " << a.status().ToString();
    ASSERT_TRUE(b.ok()) << q.name << ": " << b.status().ToString();
    ASSERT_EQ(a->rows.size(), b->rows.size()) << q.name;
    // Row-set comparison (some queries have non-deterministic tie order).
    auto digest = [](const QueryResult& r) {
      std::multiset<std::string> out;
      for (const auto& row : r.rows) {
        std::string line;
        for (const Value& v : row) line += v.ToString() + "|";
        out.insert(line);
      }
      return out;
    };
    EXPECT_EQ(digest(*a), digest(*b)) << q.name << " results diverge";
  }
}

TEST_F(TpcdsWorkloadTest, MrAndTezAgree) {
  Connection mr = server_->Connect();
  mr.config().result_cache_enabled = false;
  mr.config().llap_enabled = false;
  mr.config().execution_engine = "mr";
  Connection tez = server_->Connect();
  tez.config().result_cache_enabled = false;
  tez.config().llap_enabled = false;
  const std::string sql =
      "SELECT i_category, COUNT(*) FROM store_sales, item "
      "WHERE ss_item_sk = i_item_sk GROUP BY i_category ORDER BY i_category";
  auto a = mr.Execute(sql);
  auto b = tez.Execute(sql);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->rows.size(), b->rows.size());
  for (size_t i = 0; i < a->rows.size(); ++i)
    EXPECT_EQ(a->rows[i][1].i64(), b->rows[i][1].i64());
}

class SsbWorkloadTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    fs_ = new MemFileSystem();
    Config config;
    config.container_startup_us = 0;
    server_ = new HiveServer2(fs_, config);
    Connection loader = server_->Connect();
    SsbOptions options;
    ASSERT_TRUE(LoadSsb(loader, options).ok());
  }
  static void TearDownTestSuite() {
    delete server_;
    delete fs_;
  }
  static MemFileSystem* fs_;
  static HiveServer2* server_;
};

MemFileSystem* SsbWorkloadTest::fs_ = nullptr;
HiveServer2* SsbWorkloadTest::server_ = nullptr;

TEST_F(SsbWorkloadTest, All13QueriesRun) {
  Connection session = server_->Connect();
  session.config().result_cache_enabled = false;
  for (const BenchQuery& q : SsbQueries()) {
    auto r = session.Execute(q.sql);
    EXPECT_TRUE(r.ok()) << q.name << ": " << r.status().ToString();
  }
}

TEST_F(SsbWorkloadTest, MaterializedViewRewritePreservesAllQueryResults) {
  // Run all 13 queries without any MV, then create the denormalized MV and
  // re-run: every query must be rewritten AND produce identical results.
  Connection session = server_->Connect();
  session.config().result_cache_enabled = false;
  std::vector<QueryResult> baseline;
  for (const BenchQuery& q : SsbQueries()) {
    auto r = session.Execute(q.sql);
    ASSERT_TRUE(r.ok()) << q.name;
    baseline.push_back(std::move(*r));
  }
  auto mv = session.Execute("CREATE MATERIALIZED VIEW ssb_mv AS " + SsbDenormalizedMvSql());
  ASSERT_TRUE(mv.ok()) << mv.status().ToString();

  auto queries = SsbQueries();
  for (size_t i = 0; i < queries.size(); ++i) {
    auto r = session.Execute(queries[i].sql);
    ASSERT_TRUE(r.ok()) << queries[i].name;
    EXPECT_EQ(r->profile().counter(obs::qc::kMvRewrites), 1) << queries[i].name << " not rewritten";
    ASSERT_EQ(r->rows.size(), baseline[i].rows.size()) << queries[i].name;
    for (size_t row = 0; row < r->rows.size(); ++row)
      for (size_t c = 0; c < r->rows[row].size(); ++c)
        EXPECT_EQ(r->rows[row][c].ToString(), baseline[i].rows[row][c].ToString())
            << queries[i].name << " row " << row << " col " << c;
  }
  ASSERT_TRUE(session.Execute("DROP MATERIALIZED VIEW ssb_mv").ok());
}

TEST_F(SsbWorkloadTest, DroidFederatedMvMatchesNativeResults) {
  Connection session = server_->Connect();
  session.config().result_cache_enabled = false;
  std::vector<QueryResult> baseline;
  for (const BenchQuery& q : SsbQueries()) {
    auto r = session.Execute(q.sql);
    ASSERT_TRUE(r.ok()) << q.name;
    baseline.push_back(std::move(*r));
  }
  auto droid = LoadSsbIntoDroid(session);
  ASSERT_TRUE(droid.ok()) << droid.status().ToString();

  auto queries = SsbQueries();
  int rewritten = 0;
  for (size_t i = 0; i < queries.size(); ++i) {
    auto r = session.Execute(queries[i].sql);
    ASSERT_TRUE(r.ok()) << queries[i].name;
    rewritten += r->profile().counter(obs::qc::kMvRewrites);
    ASSERT_EQ(r->rows.size(), baseline[i].rows.size()) << queries[i].name;
    for (size_t row = 0; row < r->rows.size(); ++row)
      for (size_t c = 0; c < r->rows[row].size(); ++c) {
        // droid aggregates numerics in double; compare numerically.
        const Value& got = r->rows[row][c];
        const Value& want = baseline[i].rows[row][c];
        if (want.kind() == TypeKind::kString) {
          EXPECT_EQ(got.ToString(), want.ToString()) << queries[i].name;
        } else {
          EXPECT_NEAR(got.AsDouble(), want.AsDouble(),
                      std::abs(want.AsDouble()) * 1e-9 + 1e-6)
              << queries[i].name << " row " << row << " col " << c;
        }
      }
  }
  EXPECT_EQ(rewritten, static_cast<int>(queries.size()))
      << "every SSB query should hit the droid-backed MV";
}

// --- admission control: FIFO queue, deadlines, MOVE while queued ---

class AdmissionControlTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Config config;
    config.container_startup_us = 0;
    server_ = std::make_unique<HiveServer2>(&fs_, config);
    admin_ = server_->Connect();
  }

  /// Activates a single-pool plan with `parallelism` slots.
  void ActivateSinglePool(int parallelism) {
    ASSERT_TRUE(admin_
                    .ExecuteScript(
                        "CREATE RESOURCE PLAN adm;"
                        "CREATE POOL adm.only WITH alloc_fraction=1.0, "
                        "query_parallelism=" + std::to_string(parallelism) + ";"
                        "ALTER PLAN adm SET DEFAULT POOL = only;"
                        "ALTER RESOURCE PLAN adm ENABLE ACTIVATE;")
                    .ok());
  }

  /// Spins until `pred` holds or ~2s elapse; admission wait loops run on
  /// real threads, so tests poll the introspection counters.
  static bool WaitFor(const std::function<bool()>& pred) {
    for (int i = 0; i < 2000; ++i) {
      if (pred()) return true;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return pred();
  }

  MemFileSystem fs_;
  std::unique_ptr<HiveServer2> server_;
  Connection admin_;
};

TEST_F(AdmissionControlTest, QueueDrainsInFifoOrder) {
  ActivateSinglePool(1);
  WorkloadManager* wm = server_->workload_manager();
  auto holder = wm->Admit("app");
  ASSERT_TRUE(holder.ok());

  std::mutex order_mu;
  std::vector<int> order;
  auto waiter = [&](int id) {
    auto h = wm->Admit("app", /*queue_timeout_ms=*/10000);
    ASSERT_TRUE(h.ok()) << h.status().ToString();
    {
      std::lock_guard<std::mutex> g(order_mu);
      order.push_back(id);
    }
    wm->Release(*h);
  };
  // Stagger arrivals so the FIFO sequence is deterministic.
  std::thread first(waiter, 1);
  ASSERT_TRUE(WaitFor([&] { return wm->QueuedInPool("only") == 1; }));
  std::thread second(waiter, 2);
  ASSERT_TRUE(WaitFor([&] { return wm->QueuedInPool("only") == 2; }));

  wm->Release(*holder);  // frees one slot; each finisher admits the next
  first.join();
  second.join();
  EXPECT_EQ(order, (std::vector<int>{1, 2}))
      << "the queue must drain oldest-arrival-first";
  EXPECT_EQ(wm->ActiveInPool("only"), 0);
  EXPECT_EQ(wm->QueueDepth(), 0);
}

TEST_F(AdmissionControlTest, QueueDeadlineExpiresNamingThePool) {
  ActivateSinglePool(1);
  WorkloadManager* wm = server_->workload_manager();
  auto holder = wm->Admit("app");
  ASSERT_TRUE(holder.ok());
  int64_t timeouts_before = server_->metrics()->Value("wlm.queue.timeouts");

  auto expired = wm->Admit("app", /*queue_timeout_ms=*/50);
  ASSERT_FALSE(expired.ok()) << "no slot ever freed; the wait must expire";
  EXPECT_EQ(expired.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(expired.status().ToString().find("pool 'only'"), std::string::npos)
      << "the error must name the pool: " << expired.status().ToString();
  EXPECT_NE(expired.status().ToString().find("wlm.queue.timeout.ms"),
            std::string::npos)
      << "the error must name the knob: " << expired.status().ToString();
  EXPECT_EQ(wm->QueueDepth(), 0) << "an expired waiter must leave the queue";
  EXPECT_EQ(server_->metrics()->Value("wlm.queue.timeouts"), timeouts_before + 1);
  wm->Release(*holder);
}

TEST_F(AdmissionControlTest, ZeroTimeoutKeepsRejectOnFullSemantics) {
  ActivateSinglePool(1);
  WorkloadManager* wm = server_->workload_manager();
  auto holder = wm->Admit("app");
  ASSERT_TRUE(holder.ok());
  auto rejected = wm->Admit("app", /*queue_timeout_ms=*/0);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(rejected.status().ToString().find("all pools at capacity"),
            std::string::npos)
      << rejected.status().ToString();
  wm->Release(*holder);
}

TEST_F(AdmissionControlTest, MoveOfQueuedQueryCompetesForTargetPool) {
  // Two single-slot pools, both full, one waiter queued for 'a'. Moving the
  // *queued* query to 'b' must let it win b's next free slot while 'a'
  // stays saturated.
  ASSERT_TRUE(admin_
                  .ExecuteScript(
                      "CREATE RESOURCE PLAN adm;"
                      "CREATE POOL adm.a WITH alloc_fraction=0.5, "
                      "query_parallelism=1;"
                      "CREATE POOL adm.b WITH alloc_fraction=0.5, "
                      "query_parallelism=1;"
                      "CREATE APPLICATION MAPPING app_b IN adm TO b;"
                      "ALTER PLAN adm SET DEFAULT POOL = a;"
                      "ALTER RESOURCE PLAN adm ENABLE ACTIVATE;")
                  .ok());
  WorkloadManager* wm = server_->workload_manager();
  auto hold_a = wm->Admit("app");
  ASSERT_TRUE(hold_a.ok());
  auto hold_b = wm->Admit("app_b");
  ASSERT_TRUE(hold_b.ok());

  std::atomic<bool> admitted{false};
  std::string admitted_pool;
  std::thread waiter([&] {
    auto h = wm->Admit("app", /*queue_timeout_ms=*/10000);
    ASSERT_TRUE(h.ok()) << h.status().ToString();
    admitted_pool = (*h)->pool;
    admitted.store(true);
    wm->Release(*h);
  });
  ASSERT_TRUE(WaitFor([&] { return wm->QueuedInPool("a") == 1; }));

  auto queued = wm->QueuedQueries();
  ASSERT_EQ(queued.size(), 1u);
  ASSERT_TRUE(wm->Move(queued[0], "b").ok());
  EXPECT_EQ(wm->QueuedInPool("b"), 1) << "the waiter now queues for b";
  EXPECT_EQ(wm->QueuedInPool("a"), 0);
  EXPECT_FALSE(admitted.load()) << "b is still full; the move alone admits nothing";

  wm->Release(*hold_b);  // b frees: the moved waiter must take the slot
  waiter.join();
  EXPECT_EQ(admitted_pool, "b");
  wm->Release(*hold_a);
  EXPECT_EQ(wm->ActiveInPool("a"), 0);
  EXPECT_EQ(wm->ActiveInPool("b"), 0);
}

TEST_F(AdmissionControlTest, SessionCloseAbortsQueuedQuery) {
  // End-to-end: a query still waiting in the admission queue dies cleanly
  // when its connection closes — no lost query, no stuck waiter.
  ActivateSinglePool(1);
  WorkloadManager* wm = server_->workload_manager();
  ASSERT_TRUE(admin_.Execute("CREATE TABLE t (a INT)").ok());
  ASSERT_TRUE(admin_.Execute("INSERT INTO t VALUES (1)").ok());
  auto holder = wm->Admit("app");  // saturate the pool
  ASSERT_TRUE(holder.ok());

  Connection doomed = server_->Connect();
  doomed.config().wlm_queue_timeout_ms = 10000;
  doomed.config().result_cache_enabled = false;
  Status seen;
  std::thread runner([&] {
    auto r = doomed.Execute("SELECT COUNT(*) FROM t");
    seen = r.status();
  });
  ASSERT_TRUE(WaitFor([&] { return wm->QueueDepth() == 1; }));
  ASSERT_TRUE(doomed.Close().ok());
  runner.join();
  EXPECT_FALSE(seen.ok()) << "the queued query must not silently succeed";
  wm->Release(*holder);
  EXPECT_EQ(wm->QueueDepth(), 0);
}

}  // namespace
}  // namespace hive
