#include <gtest/gtest.h>

#include "fs/mem_filesystem.h"
#include "server/hive_server.h"
#include "workloads/ssb.h"
#include "workloads/tpcds.h"

namespace hive {
namespace {

/// End-to-end correctness of the benchmark workloads: every Figure 7 query
/// must run on the v3.1 configuration; the v1.2 configuration must reject
/// exactly the queries flagged `requires_v3`; optimizations must never
/// change results.
class TpcdsWorkloadTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    fs_ = new MemFileSystem();
    Config config;
    config.container_startup_us = 0;
    server_ = new HiveServer2(fs_, config);
    Session* loader = server_->OpenSession();
    TpcdsOptions options;
    options.days = 6;  // keep the suite fast
    ASSERT_TRUE(LoadTpcds(server_, loader, options).ok());
  }
  static void TearDownTestSuite() {
    delete server_;
    delete fs_;
  }

  static MemFileSystem* fs_;
  static HiveServer2* server_;
};

MemFileSystem* TpcdsWorkloadTest::fs_ = nullptr;
HiveServer2* TpcdsWorkloadTest::server_ = nullptr;

TEST_F(TpcdsWorkloadTest, AllQueriesRunOnV31) {
  Session* session = server_->OpenSession();
  session->config.result_cache_enabled = false;
  for (const BenchQuery& q : TpcdsQueries()) {
    auto r = server_->Execute(session, q.sql);
    EXPECT_TRUE(r.ok()) << q.name << ": " << r.status().ToString();
  }
}

TEST_F(TpcdsWorkloadTest, LegacyModeRejectsExactlyTheFlaggedQueries) {
  Session* session = server_->OpenSession();
  session->config.SetLegacyV12Mode();
  for (const BenchQuery& q : TpcdsQueries()) {
    auto r = server_->Execute(session, q.sql);
    if (q.requires_v3) {
      EXPECT_FALSE(r.ok()) << q.name << " should be unsupported on v1.2";
      if (!r.ok())
        EXPECT_TRUE(r.status().IsNotSupported()) << r.status().ToString();
    } else {
      EXPECT_TRUE(r.ok()) << q.name << ": " << r.status().ToString();
    }
  }
}

TEST_F(TpcdsWorkloadTest, OptimizationsPreserveResults) {
  // The big safety property: CBO + semijoin + shared work + LLAP on/off
  // must not change any query's result.
  Session* full = server_->OpenSession();
  full->config.result_cache_enabled = false;
  Session* bare = server_->OpenSession();
  bare->config.result_cache_enabled = false;
  bare->config.cbo_enabled = false;
  bare->config.semijoin_reduction_enabled = false;
  bare->config.dynamic_partition_pruning_enabled = false;
  bare->config.shared_work_enabled = false;
  bare->config.llap_enabled = false;
  for (const BenchQuery& q : TpcdsQueries()) {
    auto a = server_->Execute(full, q.sql);
    auto b = server_->Execute(bare, q.sql);
    ASSERT_TRUE(a.ok()) << q.name << ": " << a.status().ToString();
    ASSERT_TRUE(b.ok()) << q.name << ": " << b.status().ToString();
    ASSERT_EQ(a->rows.size(), b->rows.size()) << q.name;
    // Row-set comparison (some queries have non-deterministic tie order).
    auto digest = [](const QueryResult& r) {
      std::multiset<std::string> out;
      for (const auto& row : r.rows) {
        std::string line;
        for (const Value& v : row) line += v.ToString() + "|";
        out.insert(line);
      }
      return out;
    };
    EXPECT_EQ(digest(*a), digest(*b)) << q.name << " results diverge";
  }
}

TEST_F(TpcdsWorkloadTest, MrAndTezAgree) {
  Session* mr = server_->OpenSession();
  mr->config.result_cache_enabled = false;
  mr->config.llap_enabled = false;
  mr->config.execution_engine = "mr";
  Session* tez = server_->OpenSession();
  tez->config.result_cache_enabled = false;
  tez->config.llap_enabled = false;
  const std::string sql =
      "SELECT i_category, COUNT(*) FROM store_sales, item "
      "WHERE ss_item_sk = i_item_sk GROUP BY i_category ORDER BY i_category";
  auto a = server_->Execute(mr, sql);
  auto b = server_->Execute(tez, sql);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->rows.size(), b->rows.size());
  for (size_t i = 0; i < a->rows.size(); ++i)
    EXPECT_EQ(a->rows[i][1].i64(), b->rows[i][1].i64());
}

class SsbWorkloadTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    fs_ = new MemFileSystem();
    Config config;
    config.container_startup_us = 0;
    server_ = new HiveServer2(fs_, config);
    Session* loader = server_->OpenSession();
    SsbOptions options;
    ASSERT_TRUE(LoadSsb(server_, loader, options).ok());
  }
  static void TearDownTestSuite() {
    delete server_;
    delete fs_;
  }
  static MemFileSystem* fs_;
  static HiveServer2* server_;
};

MemFileSystem* SsbWorkloadTest::fs_ = nullptr;
HiveServer2* SsbWorkloadTest::server_ = nullptr;

TEST_F(SsbWorkloadTest, All13QueriesRun) {
  Session* session = server_->OpenSession();
  session->config.result_cache_enabled = false;
  for (const BenchQuery& q : SsbQueries()) {
    auto r = server_->Execute(session, q.sql);
    EXPECT_TRUE(r.ok()) << q.name << ": " << r.status().ToString();
  }
}

TEST_F(SsbWorkloadTest, MaterializedViewRewritePreservesAllQueryResults) {
  // Run all 13 queries without any MV, then create the denormalized MV and
  // re-run: every query must be rewritten AND produce identical results.
  Session* session = server_->OpenSession();
  session->config.result_cache_enabled = false;
  std::vector<QueryResult> baseline;
  for (const BenchQuery& q : SsbQueries()) {
    auto r = server_->Execute(session, q.sql);
    ASSERT_TRUE(r.ok()) << q.name;
    baseline.push_back(std::move(*r));
  }
  auto mv = server_->Execute(
      session, "CREATE MATERIALIZED VIEW ssb_mv AS " + SsbDenormalizedMvSql());
  ASSERT_TRUE(mv.ok()) << mv.status().ToString();

  auto queries = SsbQueries();
  for (size_t i = 0; i < queries.size(); ++i) {
    auto r = server_->Execute(session, queries[i].sql);
    ASSERT_TRUE(r.ok()) << queries[i].name;
    EXPECT_EQ(r->profile().counter(obs::qc::kMvRewrites), 1) << queries[i].name << " not rewritten";
    ASSERT_EQ(r->rows.size(), baseline[i].rows.size()) << queries[i].name;
    for (size_t row = 0; row < r->rows.size(); ++row)
      for (size_t c = 0; c < r->rows[row].size(); ++c)
        EXPECT_EQ(r->rows[row][c].ToString(), baseline[i].rows[row][c].ToString())
            << queries[i].name << " row " << row << " col " << c;
  }
  ASSERT_TRUE(server_->Execute(session, "DROP MATERIALIZED VIEW ssb_mv").ok());
}

TEST_F(SsbWorkloadTest, DroidFederatedMvMatchesNativeResults) {
  Session* session = server_->OpenSession();
  session->config.result_cache_enabled = false;
  std::vector<QueryResult> baseline;
  for (const BenchQuery& q : SsbQueries()) {
    auto r = server_->Execute(session, q.sql);
    ASSERT_TRUE(r.ok()) << q.name;
    baseline.push_back(std::move(*r));
  }
  auto droid = LoadSsbIntoDroid(server_, session);
  ASSERT_TRUE(droid.ok()) << droid.status().ToString();

  auto queries = SsbQueries();
  int rewritten = 0;
  for (size_t i = 0; i < queries.size(); ++i) {
    auto r = server_->Execute(session, queries[i].sql);
    ASSERT_TRUE(r.ok()) << queries[i].name;
    rewritten += r->profile().counter(obs::qc::kMvRewrites);
    ASSERT_EQ(r->rows.size(), baseline[i].rows.size()) << queries[i].name;
    for (size_t row = 0; row < r->rows.size(); ++row)
      for (size_t c = 0; c < r->rows[row].size(); ++c) {
        // droid aggregates numerics in double; compare numerically.
        const Value& got = r->rows[row][c];
        const Value& want = baseline[i].rows[row][c];
        if (want.kind() == TypeKind::kString) {
          EXPECT_EQ(got.ToString(), want.ToString()) << queries[i].name;
        } else {
          EXPECT_NEAR(got.AsDouble(), want.AsDouble(),
                      std::abs(want.AsDouble()) * 1e-9 + 1e-6)
              << queries[i].name << " row " << row << " col " << c;
        }
      }
  }
  EXPECT_EQ(rewritten, static_cast<int>(queries.size()))
      << "every SSB query should hit the droid-backed MV";
}

}  // namespace
}  // namespace hive
