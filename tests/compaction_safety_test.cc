#include <gtest/gtest.h>

#include "fs/mem_filesystem.h"
#include "storage/acid.h"

namespace hive {
namespace {

Schema OneCol() {
  Schema s;
  s.AddField("v", DataType::Bigint());
  return s;
}

int64_t ScanSum(FileSystem* fs, const std::string& dir,
                const ValidWriteIdList& snapshot) {
  AcidReader reader(fs, dir, OneCol());
  EXPECT_TRUE(reader.Open(snapshot, {}).ok());
  int64_t sum = 0;
  bool done = false;
  for (;;) {
    auto batch = reader.NextBatch(&done);
    EXPECT_TRUE(batch.ok());
    if (done) break;
    for (size_t i = 0; i < batch->SelectedSize(); ++i)
      sum += batch->GetRow(i)[0].i64();
  }
  return sum;
}

void WriteOne(FileSystem* fs, const std::string& dir, int64_t wid, int64_t value) {
  AcidWriter writer(fs, dir, OneCol(), wid);
  writer.Insert({Value::Bigint(value)});
  ASSERT_TRUE(writer.Commit().ok());
}

/// Regression: minor compaction with an OPEN transaction in the middle of
/// the delta range must not produce a merged delta spanning the open id;
/// otherwise the open transaction's delta is orphaned when it commits.
TEST(CompactionSafetyTest, MinorNeverSpansOpenWriteIds) {
  MemFileSystem fs;
  // Committed: 1, 3, 4.  Open: 2 (its delta lands later).
  WriteOne(&fs, "/t", 1, 100);
  WriteOne(&fs, "/t", 3, 300);
  WriteOne(&fs, "/t", 4, 400);

  ValidWriteIdList snapshot;
  snapshot.high_watermark = 4;
  snapshot.exceptions = {2};
  snapshot.open_writes = {2};

  Compactor compactor(&fs, "/t", OneCol());
  ASSERT_TRUE(compactor.RunMinor(snapshot).ok());
  ASSERT_TRUE(compactor.Clean(snapshot).ok());
  // deltas 3..4 may merge; nothing may cover id 2.
  EXPECT_FALSE(fs.Exists("/t/delta_1_4"));
  EXPECT_TRUE(fs.Exists("/t/delta_1_1"));

  // Transaction 2 commits now.
  WriteOne(&fs, "/t", 2, 200);
  EXPECT_EQ(ScanSum(&fs, "/t", ValidWriteIdList::All(4)), 1000)
      << "late-committing delta must stay visible after compaction";
}

TEST(CompactionSafetyTest, MinorSpansAbortedWriteIds) {
  MemFileSystem fs;
  // Committed: 1, 3.  Aborted: 2 (with data on disk that must disappear).
  WriteOne(&fs, "/t", 1, 100);
  WriteOne(&fs, "/t", 2, 999);  // aborted later
  WriteOne(&fs, "/t", 3, 300);

  ValidWriteIdList snapshot;
  snapshot.high_watermark = 3;
  snapshot.exceptions = {2};  // aborted: not in open_writes

  Compactor compactor(&fs, "/t", OneCol());
  ASSERT_TRUE(compactor.RunMinor(snapshot).ok());
  ASSERT_TRUE(compactor.Clean(snapshot).ok());
  EXPECT_TRUE(fs.Exists("/t/delta_1_3")) << "aborted ids are safe to span";
  EXPECT_FALSE(fs.Exists("/t/delta_2_2")) << "aborted delta compacted away";
  EXPECT_EQ(ScanSum(&fs, "/t", snapshot), 400);
  // Even a snapshot WITHOUT the exception now reads clean data: major
  // compaction "deletes history" (the merged delta excluded aborted rows).
  EXPECT_EQ(ScanSum(&fs, "/t", ValidWriteIdList::All(3)), 400);
}

TEST(CompactionSafetyTest, MajorCapsBelowOpenWriteIds) {
  MemFileSystem fs;
  WriteOne(&fs, "/t", 1, 100);
  WriteOne(&fs, "/t", 3, 300);  // open id 2 in between

  ValidWriteIdList snapshot;
  snapshot.high_watermark = 3;
  snapshot.exceptions = {2};
  snapshot.open_writes = {2};

  Compactor compactor(&fs, "/t", OneCol());
  ASSERT_TRUE(compactor.RunMajor(snapshot).ok());
  ASSERT_TRUE(compactor.Clean(snapshot).ok());
  EXPECT_FALSE(fs.Exists("/t/base_3")) << "base must not span open id 2";
  EXPECT_TRUE(fs.Exists("/t/base_1"));
  EXPECT_TRUE(fs.Exists("/t/delta_3_3")) << "delta above the cap survives";

  WriteOne(&fs, "/t", 2, 200);
  EXPECT_EQ(ScanSum(&fs, "/t", ValidWriteIdList::All(3)), 600);
}

TEST(CompactionSafetyTest, MajorAppliesDeletesAndErasesHistory) {
  MemFileSystem fs;
  AcidWriter w1(&fs, "/t", OneCol(), 1);
  for (int64_t i = 0; i < 10; ++i) w1.Insert({Value::Bigint(i)});
  ASSERT_TRUE(w1.Commit().ok());
  AcidWriter w2(&fs, "/t", OneCol(), 2);
  w2.Delete({1, 0, 0});
  w2.Delete({1, 0, 9});
  ASSERT_TRUE(w2.Commit().ok());

  Compactor compactor(&fs, "/t", OneCol());
  ValidWriteIdList snapshot = ValidWriteIdList::All(2);
  ASSERT_TRUE(compactor.RunMajor(snapshot).ok());
  ASSERT_TRUE(compactor.Clean(snapshot).ok());
  EXPECT_TRUE(fs.Exists("/t/base_2"));
  EXPECT_FALSE(fs.Exists("/t/delete_delta_2_2"));
  EXPECT_EQ(ScanSum(&fs, "/t", ValidWriteIdList::All(2)), 36);  // sum 1..8
}

TEST(CompactionSafetyTest, ConcurrentReaderSurvivesCleanBecauseDataIsMerged) {
  // Clean runs as a separate phase (Section 3.2): a reader that resolved
  // its file list before compaction keeps producing correct data from the
  // merged files; a reader opened after Clean sees the new layout.
  MemFileSystem fs;
  for (int64_t wid = 1; wid <= 5; ++wid) WriteOne(&fs, "/t", wid, wid);
  ValidWriteIdList snapshot = ValidWriteIdList::All(5);
  Compactor compactor(&fs, "/t", OneCol());
  ASSERT_TRUE(compactor.RunMinor(snapshot).ok());
  // Merge done, clean not yet: both old and new dirs exist, scans correct.
  EXPECT_TRUE(fs.Exists("/t/delta_1_5"));
  EXPECT_TRUE(fs.Exists("/t/delta_1_1"));
  EXPECT_EQ(ScanSum(&fs, "/t", snapshot), 15);
  ASSERT_TRUE(compactor.Clean(snapshot).ok());
  EXPECT_FALSE(fs.Exists("/t/delta_1_1"));
  EXPECT_EQ(ScanSum(&fs, "/t", snapshot), 15);
}

}  // namespace
}  // namespace hive
