#include <gtest/gtest.h>

#include <thread>

#include "fs/mem_filesystem.h"
#include "server/hive_server.h"

namespace hive {
namespace {

class ServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Config config;
    config.container_startup_us = 0;  // keep unit tests latency-free
    server_ = std::make_unique<HiveServer2>(&fs_, config);
    session_ = server_->Connect();
  }

  QueryResult Run(const std::string& sql) {
    auto r = session_.Execute(sql);
    EXPECT_TRUE(r.ok()) << r.status().ToString() << "\nSQL: " << sql;
    return r.ok() ? *r : QueryResult{};
  }

  Status RunScript(const std::string& sql) {
    return session_.ExecuteScript(sql).status();
  }

  MemFileSystem fs_;
  std::unique_ptr<HiveServer2> server_;
  Connection session_;
};

TEST_F(ServerTest, CreateInsertSelectRoundTrip) {
  Run("CREATE TABLE t (a INT, b STRING, c DECIMAL(7,2))");
  QueryResult insert = Run("INSERT INTO t VALUES (1, 'x', 1.50), (2, 'y', 2.25)");
  EXPECT_EQ(insert.rows_affected, 2);
  QueryResult select = Run("SELECT a, b, c FROM t ORDER BY a");
  ASSERT_EQ(select.rows.size(), 2u);
  EXPECT_EQ(select.rows[0][1].str(), "x");
  EXPECT_EQ(select.rows[1][2].ToString(), "2.25");
}

TEST_F(ServerTest, InsertSelectAndCtas) {
  Run("CREATE TABLE src (a INT)");
  Run("INSERT INTO src VALUES (1), (2), (3)");
  Run("CREATE TABLE dst (a INT)");
  Run("INSERT INTO dst SELECT a * 10 FROM src WHERE a > 1");
  QueryResult rows = Run("SELECT a FROM dst ORDER BY a");
  ASSERT_EQ(rows.rows.size(), 2u);
  EXPECT_EQ(rows.rows[0][0].i64(), 20);

  Run("CREATE TABLE ctas AS SELECT a FROM src WHERE a <> 2");
  QueryResult ctas = Run("SELECT COUNT(*) FROM ctas");
  EXPECT_EQ(ctas.rows[0][0].i64(), 2);
}

TEST_F(ServerTest, PartitionedInsertCreatesPartitions) {
  Run("CREATE TABLE sales (amt INT) PARTITIONED BY (day INT)");
  Run("INSERT INTO sales VALUES (10, 1), (20, 1), (30, 2)");
  auto parts = server_->catalog()->GetPartitions("default", "sales");
  ASSERT_TRUE(parts.ok());
  EXPECT_EQ(parts->size(), 2u);
  EXPECT_TRUE(fs_.Exists("/warehouse/default.db/sales/day=1"));
  QueryResult rows = Run("SELECT SUM(amt) FROM sales WHERE day = 1");
  EXPECT_EQ(rows.rows[0][0].i64(), 30);
}

TEST_F(ServerTest, UpdateAndDelete) {
  Run("CREATE TABLE t (id INT, v STRING)");
  Run("INSERT INTO t VALUES (1, 'a'), (2, 'b'), (3, 'c')");
  QueryResult update = Run("UPDATE t SET v = 'B' WHERE id = 2");
  EXPECT_EQ(update.rows_affected, 1);
  QueryResult rows = Run("SELECT v FROM t WHERE id = 2");
  ASSERT_EQ(rows.rows.size(), 1u);
  EXPECT_EQ(rows.rows[0][0].str(), "B");

  QueryResult del = Run("DELETE FROM t WHERE id <> 2");
  EXPECT_EQ(del.rows_affected, 2);
  QueryResult remaining = Run("SELECT COUNT(*) FROM t");
  EXPECT_EQ(remaining.rows[0][0].i64(), 1);
}

TEST_F(ServerTest, MergeUpsert) {
  Run("CREATE TABLE target (id INT, v INT)");
  Run("CREATE TABLE source (id INT, v INT)");
  Run("INSERT INTO target VALUES (1, 10), (2, 20)");
  Run("INSERT INTO source VALUES (2, 200), (3, 300)");
  QueryResult merge = Run(
      "MERGE INTO target t USING source s ON t.id = s.id "
      "WHEN MATCHED THEN UPDATE SET v = s.v "
      "WHEN NOT MATCHED THEN INSERT VALUES (s.id, s.v)");
  EXPECT_EQ(merge.rows_affected, 2);
  QueryResult rows = Run("SELECT id, v FROM target ORDER BY id");
  ASSERT_EQ(rows.rows.size(), 3u);
  EXPECT_EQ(rows.rows[1][1].i64(), 200);
  EXPECT_EQ(rows.rows[2][1].i64(), 300);
}

TEST_F(ServerTest, MergeWithDelete) {
  Run("CREATE TABLE target (id INT, v INT)");
  Run("CREATE TABLE source (id INT, del INT)");
  Run("INSERT INTO target VALUES (1, 10), (2, 20)");
  Run("INSERT INTO source VALUES (1, 1), (2, 0)");
  Run("MERGE INTO target t USING source s ON t.id = s.id "
      "WHEN MATCHED AND s.del = 1 THEN DELETE");
  QueryResult rows = Run("SELECT id FROM target");
  ASSERT_EQ(rows.rows.size(), 1u);
  EXPECT_EQ(rows.rows[0][0].i64(), 2);
}

TEST_F(ServerTest, SnapshotIsolationAcrossSessions) {
  Run("CREATE TABLE t (a INT)");
  Run("INSERT INTO t VALUES (1)");
  // A second writer's data becomes visible only after it commits; since
  // statements auto-commit, verify the monotonic view.
  Connection other = server_->Connect();
  auto r = other.Execute("INSERT INTO t VALUES (2)");
  ASSERT_TRUE(r.ok());
  QueryResult rows = Run("SELECT COUNT(*) FROM t");
  EXPECT_EQ(rows.rows[0][0].i64(), 2);
}

TEST_F(ServerTest, ResultCacheHitsAndInvalidation) {
  Run("CREATE TABLE t (a INT)");
  Run("INSERT INTO t VALUES (1), (2)");
  QueryResult first = Run("SELECT SUM(a) FROM t");
  EXPECT_FALSE(first.profile().counter(obs::qc::kFromResultCache));
  QueryResult second = Run("SELECT  SUM(a)  FROM t");  // same canonical AST
  EXPECT_TRUE(second.profile().counter(obs::qc::kFromResultCache));
  EXPECT_EQ(second.rows[0][0].i64(), 3);
  // A write invalidates (snapshot changed).
  Run("INSERT INTO t VALUES (10)");
  QueryResult third = Run("SELECT SUM(a) FROM t");
  EXPECT_FALSE(third.profile().counter(obs::qc::kFromResultCache));
  EXPECT_EQ(third.rows[0][0].i64(), 13);
}

TEST_F(ServerTest, NondeterministicQueriesNotCached) {
  Run("CREATE TABLE t (a INT)");
  Run("INSERT INTO t VALUES (1)");
  Run("SELECT a, RAND() FROM t");
  QueryResult second = Run("SELECT a, RAND() FROM t");
  EXPECT_FALSE(second.profile().counter(obs::qc::kFromResultCache));
}

TEST_F(ServerTest, ExplainShowsPlan) {
  Run("CREATE TABLE t (a INT, b INT)");
  Run("INSERT INTO t VALUES (1, 2)");
  QueryResult plan = Run("EXPLAIN SELECT a FROM t WHERE b > 1");
  ASSERT_FALSE(plan.rows.empty());
  std::string text;
  for (const auto& row : plan.rows) text += row[0].str() + "\n";
  EXPECT_NE(text.find("Scan"), std::string::npos);
}

TEST_F(ServerTest, MaterializedViewRewriteFullContainment) {
  Run("CREATE TABLE f (k INT, grp INT, v INT)");
  Run("CREATE TABLE d (k INT, year INT)");
  Run("INSERT INTO d VALUES (1, 2016), (2, 2017), (3, 2018), (4, 2019)");
  std::string values = "INSERT INTO f VALUES ";
  for (int i = 0; i < 40; ++i) {
    if (i) values += ", ";
    values += "(" + std::to_string(i % 4 + 1) + ", " + std::to_string(i % 3) + ", " +
              std::to_string(i) + ")";
  }
  Run(values);
  Run("CREATE MATERIALIZED VIEW mv AS "
      "SELECT year, grp, SUM(v) AS sum_v FROM f, d WHERE f.k = d.k AND year > 2017 "
      "GROUP BY year, grp");
  // Fully contained query (Figure 4b): stricter filter, fewer keys.
  QueryResult rewritten = Run(
      "SELECT SUM(v) FROM f, d WHERE f.k = d.k AND year = 2018 GROUP BY year");
  EXPECT_EQ(rewritten.profile().counter(obs::qc::kMvRewrites), 1) << "expected MV rewrite";
  // Cross-check against the MV-free answer.
  session_.config().materialized_view_rewriting_enabled = false;
  QueryResult direct = Run(
      "SELECT SUM(v) FROM f, d WHERE f.k = d.k AND year = 2018 GROUP BY year");
  EXPECT_EQ(direct.profile().counter(obs::qc::kMvRewrites), 0);
  ASSERT_EQ(rewritten.rows.size(), direct.rows.size());
  EXPECT_EQ(rewritten.rows[0][0].ToString(), direct.rows[0][0].ToString());
}

TEST_F(ServerTest, MaterializedViewPartialContainmentUnion) {
  Run("CREATE TABLE f (k INT, v INT)");
  Run("CREATE TABLE d (k INT, year INT)");
  Run("INSERT INTO d VALUES (1, 2016), (2, 2017), (3, 2018)");
  Run("INSERT INTO f VALUES (1, 10), (2, 20), (3, 30), (1, 11), (2, 21), (3, 31)");
  Run("CREATE MATERIALIZED VIEW mv2 AS "
      "SELECT year, SUM(v) AS sum_v FROM f, d WHERE f.k = d.k AND year > 2017 "
      "GROUP BY year");
  // Wider filter (Figure 4c): needs MV part UNION source part.
  QueryResult rewritten =
      Run("SELECT year, SUM(v) FROM f, d WHERE f.k = d.k AND year > 2016 GROUP BY year");
  EXPECT_EQ(rewritten.profile().counter(obs::qc::kMvRewrites), 1);
  session_.config().materialized_view_rewriting_enabled = false;
  QueryResult direct =
      Run("SELECT year, SUM(v) FROM f, d WHERE f.k = d.k AND year > 2016 GROUP BY year");
  ASSERT_EQ(rewritten.rows.size(), direct.rows.size());
  int64_t total_rewritten = 0, total_direct = 0;
  for (const auto& row : rewritten.rows) total_rewritten += row[1].i64();
  for (const auto& row : direct.rows) total_direct += row[1].i64();
  EXPECT_EQ(total_rewritten, total_direct);
}

TEST_F(ServerTest, StaleMaterializedViewNotUsedUntilRebuilt) {
  session_.config().result_cache_enabled = false;  // isolate MV behaviour
  Run("CREATE TABLE f (k INT, v INT)");
  Run("INSERT INTO f VALUES (1, 10)");
  Run("CREATE MATERIALIZED VIEW mv3 AS SELECT k, SUM(v) AS s FROM f GROUP BY k");
  QueryResult hit = Run("SELECT k, SUM(v) FROM f GROUP BY k");
  EXPECT_EQ(hit.profile().counter(obs::qc::kMvRewrites), 1);
  // New data makes the view stale: rewriting must stop.
  Run("INSERT INTO f VALUES (1, 5)");
  QueryResult miss = Run("SELECT k, SUM(v) FROM f GROUP BY k");
  EXPECT_EQ(miss.profile().counter(obs::qc::kMvRewrites), 0);
  EXPECT_EQ(miss.rows[0][1].i64(), 15);
  // Rebuild refreshes the snapshot; rewriting resumes with correct data.
  Run("ALTER MATERIALIZED VIEW mv3 REBUILD");
  QueryResult again = Run("SELECT k, SUM(v) FROM f GROUP BY k");
  EXPECT_EQ(again.profile().counter(obs::qc::kMvRewrites), 1);
  EXPECT_EQ(again.rows[0][1].i64(), 15);
}

TEST_F(ServerTest, IncrementalMvRebuildForSpjViews) {
  Run("CREATE TABLE f (k INT, v INT)");
  Run("INSERT INTO f VALUES (1, 10), (2, 20)");
  Run("CREATE MATERIALIZED VIEW mv4 AS SELECT k, v FROM f WHERE v > 5");
  Run("INSERT INTO f VALUES (3, 30)");
  QueryResult rebuild = Run("ALTER MATERIALIZED VIEW mv4 REBUILD");
  // Incremental: only the new row flows in.
  EXPECT_EQ(rebuild.rows_affected, 1);
  session_.config().materialized_view_rewriting_enabled = false;
  QueryResult rows = Run("SELECT COUNT(*) FROM mv4");
  EXPECT_EQ(rows.rows[0][0].i64(), 3);
}

TEST_F(ServerTest, FullMvRebuildAfterUpdate) {
  Run("CREATE TABLE f (k INT, v INT)");
  Run("INSERT INTO f VALUES (1, 10), (2, 20)");
  Run("CREATE MATERIALIZED VIEW mv5 AS SELECT k, SUM(v) AS s FROM f GROUP BY k");
  Run("UPDATE f SET v = 100 WHERE k = 1");
  Run("ALTER MATERIALIZED VIEW mv5 REBUILD");
  session_.config().materialized_view_rewriting_enabled = false;
  QueryResult rows = Run("SELECT s FROM mv5 WHERE k = 1");
  ASSERT_EQ(rows.rows.size(), 1u);
  EXPECT_EQ(rows.rows[0][0].i64(), 100);
}

TEST_F(ServerTest, DroidFederationPushdown) {
  Run("CREATE EXTERNAL TABLE events (d1 STRING, m1 DOUBLE, yr INT) "
      "STORED BY 'droid' TBLPROPERTIES ('droid.datasource' = 'events')");
  Run("INSERT INTO events VALUES ('a', 1.5, 2017), ('b', 2.5, 2017), "
      "('a', 3.0, 2018), ('c', 4.0, 2019)");
  EXPECT_EQ(server_->droid()->NumRows("events"), 4u);
  // Figure 6-style query: filter + groupBy + sort pushed to the store.
  QueryResult rows = Run(
      "SELECT d1, SUM(m1) AS s FROM events WHERE yr >= 2017 AND yr <= 2018 "
      "GROUP BY d1 ORDER BY s DESC LIMIT 10");
  ASSERT_EQ(rows.rows.size(), 2u);
  EXPECT_EQ(rows.rows[0][0].str(), "a");
  EXPECT_DOUBLE_EQ(rows.rows[0][1].f64(), 4.5);
  // The plan must contain a federated scan (pushed query), no local join.
  QueryResult plan = Run(
      "EXPLAIN SELECT d1, SUM(m1) AS s FROM events WHERE yr >= 2017 AND yr <= 2018 "
      "GROUP BY d1");
  std::string text;
  for (const auto& row : plan.rows) text += row[0].str() + "\n";
  EXPECT_EQ(text.find("Aggregate"), std::string::npos)
      << "aggregate should be pushed into droid:\n" << text;
}

TEST_F(ServerTest, DroidSchemaInference) {
  Schema existing;
  existing.AddField("dim", DataType::String());
  existing.AddField("metric", DataType::Double());
  ASSERT_TRUE(server_->droid()->CreateDataSource("existing", existing).ok());
  Run("CREATE EXTERNAL TABLE mapped STORED BY 'droid' "
      "TBLPROPERTIES ('droid.datasource' = 'existing')");
  auto desc = server_->catalog()->GetTable("default", "mapped");
  ASSERT_TRUE(desc.ok());
  EXPECT_EQ(desc->schema.num_fields(), 2u) << "schema inferred from droid metadata";
}

TEST_F(ServerTest, CsvHandlerRoundTrip) {
  Run("CREATE EXTERNAL TABLE ext (a INT, b STRING) STORED BY 'jdbc'");
  Run("INSERT INTO ext VALUES (1, 'x'), (2, 'comma,and\\escape')");
  QueryResult rows = Run("SELECT a, b FROM ext WHERE a = 2");
  ASSERT_EQ(rows.rows.size(), 1u);
  EXPECT_EQ(rows.rows[0][1].str(), "comma,and\\escape");
}

TEST_F(ServerTest, WorkloadManagerAdmissionAndMappings) {
  ASSERT_TRUE(RunScript(
      "CREATE RESOURCE PLAN daytime;"
      "CREATE POOL daytime.bi WITH alloc_fraction=0.8, query_parallelism=2;"
      "CREATE POOL daytime.etl WITH alloc_fraction=0.2, query_parallelism=1;"
      "CREATE APPLICATION MAPPING visualization_app IN daytime TO bi;"
      "ALTER PLAN daytime SET DEFAULT POOL = etl;"
      "ALTER RESOURCE PLAN daytime ENABLE ACTIVATE;").ok());
  ASSERT_TRUE(server_->workload_manager()->HasActivePlan());
  auto bi = server_->workload_manager()->Admit("visualization_app");
  ASSERT_TRUE(bi.ok());
  EXPECT_EQ((*bi)->pool, "bi");
  auto etl = server_->workload_manager()->Admit("batch_thing");
  ASSERT_TRUE(etl.ok());
  EXPECT_EQ((*etl)->pool, "etl");
  // etl full (parallelism 1): the next etl query borrows from bi.
  auto borrowed = server_->workload_manager()->Admit("batch_thing");
  ASSERT_TRUE(borrowed.ok());
  EXPECT_EQ((*borrowed)->borrowed_from, "bi");
  server_->workload_manager()->Release(*bi);
  server_->workload_manager()->Release(*etl);
  server_->workload_manager()->Release(*borrowed);
  EXPECT_EQ(server_->workload_manager()->ActiveInPool("bi"), 0);
}

TEST_F(ServerTest, WorkloadManagerMoveTrigger) {
  ASSERT_TRUE(RunScript(
      "CREATE RESOURCE PLAN p;"
      "CREATE POOL p.fast WITH alloc_fraction=0.8, query_parallelism=5;"
      "CREATE POOL p.slow WITH alloc_fraction=0.2, query_parallelism=20;"
      "CREATE RULE downgrade IN p WHEN total_runtime > 3000 THEN MOVE slow;"
      "ADD RULE downgrade TO fast;"
      "ALTER PLAN p SET DEFAULT POOL = fast;"
      "ALTER RESOURCE PLAN p ENABLE ACTIVATE;").ok());
  auto handle = server_->workload_manager()->Admit("app");
  ASSERT_TRUE(handle.ok());
  EXPECT_EQ((*handle)->pool, "fast");
  server_->workload_manager()->ReportProgress(*handle, 2000);
  EXPECT_EQ((*handle)->pool, "fast") << "below threshold";
  server_->workload_manager()->ReportProgress(*handle, 3500);
  EXPECT_EQ((*handle)->pool, "slow") << "moved after exceeding total_runtime";
  server_->workload_manager()->Release(*handle);
}

TEST_F(ServerTest, WorkloadManagerKillTrigger) {
  ASSERT_TRUE(RunScript(
      "CREATE RESOURCE PLAN k;"
      "CREATE POOL k.only WITH alloc_fraction=1.0, query_parallelism=5;"
      "CREATE RULE killer IN k WHEN total_runtime > 1 THEN KILL;"
      "ADD RULE killer TO only;"
      "ALTER PLAN k SET DEFAULT POOL = only;"
      "ALTER RESOURCE PLAN k ENABLE ACTIVATE;").ok());
  auto handle = server_->workload_manager()->Admit("app");
  ASSERT_TRUE(handle.ok());
  server_->workload_manager()->ReportProgress(*handle, 100);
  EXPECT_TRUE((*handle)->cancelled->load());
  server_->workload_manager()->Release(*handle);
}

TEST_F(ServerTest, ReoptimizationRecoversFromBuildOverflow) {
  Run("CREATE TABLE big (k INT)");
  Run("CREATE TABLE small (k INT)");
  std::string values = "INSERT INTO big VALUES ";
  for (int i = 0; i < 300; ++i) values += (i ? ", (" : "(") + std::to_string(i) + ")";
  Run(values);
  Run("INSERT INTO small VALUES (1), (2)");
  // Corrupt the stats so the optimizer puts the big table on the build side.
  auto desc = server_->catalog()->GetTable("default", "big");
  ASSERT_TRUE(desc.ok());
  TableDesc corrupted = *desc;
  corrupted.stats.row_count = 1;
  ASSERT_TRUE(server_->catalog()->UpdateTable(corrupted).ok());
  session_.config().join_build_row_limit = 100;
  session_.config().reexecution_strategy = "reoptimize";
  QueryResult rows = Run(
      "SELECT COUNT(*) FROM small, big WHERE small.k = big.k");
  EXPECT_EQ(rows.rows[0][0].i64(), 2);
  EXPECT_EQ(rows.profile().counter(obs::qc::kReexecutions), 1)
      << "first attempt must fail on the build limit, rerun with runtime stats";
}

TEST_F(ServerTest, CompactionTriggersAfterManyInserts) {
  session_.config().result_cache_enabled = false;
  Run("CREATE TABLE t (a INT)");
  for (int i = 0; i < 12; ++i) Run("INSERT INTO t VALUES (" + std::to_string(i) + ")");
  // The per-insert compaction check fires once the delta threshold (10) is
  // crossed; afterwards the directory count must be low again.
  auto entries = fs_.ListDir("/warehouse/default.db/t");
  ASSERT_TRUE(entries.ok());
  EXPECT_LT(entries->size(), 12u) << "compaction should have merged deltas";
  QueryResult rows = Run("SELECT COUNT(*) FROM t");
  EXPECT_EQ(rows.rows[0][0].i64(), 12);
}

TEST_F(ServerTest, LlapCacheServesRepeatedScans) {
  Run("CREATE TABLE t (a INT, b STRING)");
  std::string values = "INSERT INTO t VALUES ";
  for (int i = 0; i < 500; ++i)
    values += (i ? ", (" : "(") + std::to_string(i) + ", 'v" + std::to_string(i) + "')";
  Run(values);
  session_.config().result_cache_enabled = false;  // isolate the data cache
  Run("SELECT SUM(a) FROM t");
  uint64_t misses_after_first = server_->llap()->cache()->data_misses();
  EXPECT_GT(misses_after_first, 0u);
  fs_.ResetIoStats();
  Run("SELECT SUM(a) FROM t");
  EXPECT_GT(server_->llap()->cache()->data_hits(), 0u);
  EXPECT_EQ(server_->llap()->cache()->data_misses(), misses_after_first)
      << "second scan must be served from the LLAP cache";
}

TEST_F(ServerTest, ShowTablesAndDropTable) {
  Run("CREATE TABLE t1 (a INT)");
  Run("CREATE TABLE t2 (a INT)");
  QueryResult tables = Run("SHOW TABLES");
  EXPECT_EQ(tables.rows.size(), 2u);
  Run("DROP TABLE t1");
  tables = Run("SHOW TABLES");
  EXPECT_EQ(tables.rows.size(), 1u);
  auto missing = session_.Execute("SELECT * FROM t1");
  EXPECT_FALSE(missing.ok());
  Run("DROP TABLE IF EXISTS t1");  // no error
}

TEST_F(ServerTest, AnalyzeRecomputesStatistics) {
  Run("CREATE TABLE t (a INT)");
  Run("INSERT INTO t VALUES (1), (2), (3)");
  Run("DELETE FROM t WHERE a = 3");
  // Additive stats drift after deletes; ANALYZE resets them.
  Run("ANALYZE TABLE t COMPUTE STATISTICS");
  auto desc = server_->catalog()->GetTable("default", "t");
  ASSERT_TRUE(desc.ok());
  EXPECT_EQ(desc->stats.row_count, 2);
}

TEST_F(ServerTest, ThunderingHerdPendingMode) {
  Run("CREATE TABLE t (a INT)");
  Run("INSERT INTO t VALUES (1), (2), (3)");
  // Many identical queries race on a cold cache: exactly one should fill.
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  std::atomic<int> from_cache{0}, computed{0};
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&] {
      Connection s = server_->Connect();
      auto r = s.Execute("SELECT SUM(a) FROM t");
      ASSERT_TRUE(r.ok());
      EXPECT_EQ(r->rows[0][0].i64(), 6);
      (r->profile().counter(obs::qc::kFromResultCache) ? from_cache : computed)++;
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(computed.load(), 1) << "only the filler computes";
  EXPECT_EQ(from_cache.load(), kThreads - 1);
}


TEST_F(ServerTest, InsertWithExplicitColumnList) {
  Run("CREATE TABLE t (a INT, b STRING, c DOUBLE)");
  Run("INSERT INTO t (b, a) VALUES ('x', 7)");
  QueryResult rows = Run("SELECT a, b, c FROM t");
  ASSERT_EQ(rows.rows.size(), 1u);
  EXPECT_EQ(rows.rows[0][0].i64(), 7);
  EXPECT_EQ(rows.rows[0][1].str(), "x");
  EXPECT_TRUE(rows.rows[0][2].is_null()) << "unlisted column defaults to NULL";
}

TEST_F(ServerTest, NotNullConstraintEnforcedOnInsert) {
  Run("CREATE TABLE t (a INT NOT NULL, b STRING)");
  auto bad = session_.Execute("INSERT INTO t (b) VALUES ('x')");
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(session_.Execute("INSERT INTO t VALUES (1, 'x')").ok());
}

TEST_F(ServerTest, UpdateOnPartitionedTable) {
  Run("CREATE TABLE sales (amt INT) PARTITIONED BY (day INT)");
  Run("INSERT INTO sales VALUES (10, 1), (20, 2), (30, 2)");
  QueryResult updated = Run("UPDATE sales SET amt = amt + 1 WHERE day = 2");
  EXPECT_EQ(updated.rows_affected, 2);
  QueryResult rows = Run("SELECT SUM(amt) FROM sales");
  EXPECT_EQ(rows.rows[0][0].i64(), 10 + 21 + 31);
  // Partition columns cannot be updated.
  auto bad = session_.Execute("UPDATE sales SET day = 9");
  EXPECT_FALSE(bad.ok());
}

TEST_F(ServerTest, DeleteFromSpecificPartitionLeavesOthers) {
  Run("CREATE TABLE sales (amt INT) PARTITIONED BY (day INT)");
  Run("INSERT INTO sales VALUES (10, 1), (20, 2), (30, 2)");
  Run("DELETE FROM sales WHERE day = 2 AND amt > 25");
  QueryResult rows = Run("SELECT COUNT(*) FROM sales");
  EXPECT_EQ(rows.rows[0][0].i64(), 2);
}

TEST_F(ServerTest, DropTableTakesExclusiveLockPath) {
  Run("CREATE TABLE t (a INT)");
  Run("INSERT INTO t VALUES (1)");
  // A still-open reader transaction holding a shared lock blocks DROP.
  int64_t reader_txn = server_->txns()->OpenTxn();
  ASSERT_TRUE(
      server_->txns()->AcquireLock(reader_txn, "default.t", LockMode::kShared).ok());
  auto blocked = session_.Execute("DROP TABLE t");
  EXPECT_FALSE(blocked.ok());
  EXPECT_EQ(blocked.status().code(), StatusCode::kLockTimeout);
  ASSERT_TRUE(server_->txns()->CommitTxn(reader_txn).ok());
  EXPECT_TRUE(session_.Execute("DROP TABLE t").ok());
}

/// Handler whose metastore drop hook fails until told otherwise — models an
/// external system rejecting the un-registration call.
class FlakyDropHandler : public StorageHandler {
 public:
  std::string name() const override { return "flaky"; }
  Result<OperatorPtr> CreateScan(ExecContext*, const RelNode&) override {
    return Status::NotSupported("flaky handler has no scan");
  }
  Status Insert(const TableDesc&, const RowBatch&) override {
    return Status::NotSupported("flaky handler has no insert");
  }
  Status OnDropTable(const TableDesc&) override {
    if (fail_drops) return Status::TransientIoError("external system unavailable");
    return Status::OK();
  }
  bool fail_drops = true;
};

TEST_F(ServerTest, FailedHandlerDropReleasesExclusiveLock) {
  // Regression: when the storage handler's OnDropTable failed, DROP TABLE
  // returned without aborting its transaction, leaking the exclusive lock —
  // every later lock on the table (including the retried drop) then failed.
  auto handler = std::make_unique<FlakyDropHandler>();
  FlakyDropHandler* flaky = handler.get();
  server_->RegisterStorageHandler(std::move(handler));
  Run("CREATE TABLE ext (a INT) STORED BY 'flaky'");

  auto drop = session_.Execute("DROP TABLE ext");
  EXPECT_FALSE(drop.ok());
  EXPECT_TRUE(server_->catalog()->GetTable("default", "ext").ok())
      << "failed drop must keep the table registered";

  // The external system recovers: the retried drop must get the exclusive
  // lock (i.e. the failed attempt released it) and succeed.
  flaky->fail_drops = false;
  auto retry = session_.Execute("DROP TABLE ext");
  EXPECT_TRUE(retry.ok()) << retry.status().ToString();
  EXPECT_FALSE(server_->catalog()->GetTable("default", "ext").ok());
}

TEST_F(ServerTest, MvStalenessWindowAllowsRewriteOnStaleData) {
  session_.config().result_cache_enabled = false;
  Run("CREATE TABLE f (k INT, v INT)");
  Run("INSERT INTO f VALUES (1, 10)");
  // 1-hour staleness window: rewriting continues after new data arrives.
  Run("CREATE MATERIALIZED VIEW mv_window "
      "TBLPROPERTIES ('rewriting.time.window' = '3600') "
      "AS SELECT k, SUM(v) AS s FROM f GROUP BY k");
  Run("INSERT INTO f VALUES (1, 5)");
  QueryResult q = Run("SELECT k, SUM(v) FROM f GROUP BY k");
  EXPECT_EQ(q.profile().counter(obs::qc::kMvRewrites), 1)
      << "within the staleness window the stale view still rewrites";
  // The (stale) answer comes from the view: 10, not 15.
  EXPECT_EQ(q.rows[0][1].i64(), 10);
}

// --- sessions & connections (connection manager) ---

TEST_F(ServerTest, SessionConfigOverridesAreIsolated) {
  Run("CREATE TABLE t (a INT)");
  Run("INSERT INTO t VALUES (1), (2)");
  Connection cached = server_->Connect();
  Connection uncached = server_->Connect();
  uncached.config().result_cache_enabled = false;
  // Warm the cache from the first session...
  ASSERT_TRUE(cached.Execute("SELECT SUM(a) FROM t").ok());
  auto hit = cached.Execute("SELECT SUM(a) FROM t");
  ASSERT_TRUE(hit.ok());
  EXPECT_TRUE(hit->profile().counter(obs::qc::kFromResultCache));
  // ...while the overridden session keeps computing.
  auto computed = uncached.Execute("SELECT SUM(a) FROM t");
  ASSERT_TRUE(computed.ok());
  EXPECT_FALSE(computed->profile().counter(obs::qc::kFromResultCache))
      << "one session's override must not leak into another";
}

TEST_F(ServerTest, ConfigLayeringSessionOverridesLiveServerDefault) {
  Run("CREATE TABLE t (a INT)");
  Run("INSERT INTO t VALUES (1)");
  Connection inherit = server_->Connect();
  ASSERT_TRUE(inherit.Execute("SELECT SUM(a) FROM t").ok());
  auto warm = inherit.Execute("SELECT SUM(a) FROM t");
  ASSERT_TRUE(warm.ok());
  EXPECT_TRUE(warm->profile().counter(obs::qc::kFromResultCache))
      << "server default result_cache_enabled=true should apply";
  // Flip the server default: sessions that never touched the field track
  // the live default...
  Config flipped = server_->default_config();
  flipped.result_cache_enabled = false;
  server_->SetDefaultConfig(flipped);
  auto after = inherit.Execute("SELECT SUM(a) FROM t");
  ASSERT_TRUE(after.ok());
  EXPECT_FALSE(after->profile().counter(obs::qc::kFromResultCache))
      << "an untouched session field must follow the new server default";
  // ...while an explicit session override beats the server default.
  Connection pinned = server_->Connect();
  pinned.config().result_cache_enabled = true;
  ASSERT_TRUE(pinned.Execute("SELECT SUM(a) FROM t").ok());
  auto overridden = pinned.Execute("SELECT SUM(a) FROM t");
  ASSERT_TRUE(overridden.ok());
  EXPECT_TRUE(overridden->profile().counter(obs::qc::kFromResultCache))
      << "session override > server default";
}

TEST_F(ServerTest, CurrentDatabaseIsPerSession) {
  Run("CREATE DATABASE db2");
  Connection other = server_->Connect();
  other.set_database("db2");
  ASSERT_TRUE(other.Execute("CREATE TABLE t (a INT)").ok());
  ASSERT_TRUE(other.Execute("INSERT INTO t VALUES (100)").ok());
  Run("CREATE TABLE t (a INT)");
  Run("INSERT INTO t VALUES (1), (2)");
  // Unqualified names resolve against each session's own database.
  auto mine = session_.Execute("SELECT COUNT(*) FROM t");
  ASSERT_TRUE(mine.ok());
  EXPECT_EQ(mine->rows[0][0].i64(), 2);
  auto theirs = other.Execute("SELECT SUM(a) FROM t");
  ASSERT_TRUE(theirs.ok());
  EXPECT_EQ(theirs->rows[0][0].i64(), 100);
}

TEST_F(ServerTest, TempTablesInvisibleAcrossSessionsAndShadowPermanent) {
  Run("CREATE TABLE t (a INT)");
  Run("INSERT INTO t VALUES (1)");
  Connection scratch = server_->Connect();
  ASSERT_TRUE(scratch.Execute("CREATE TEMPORARY TABLE t (a INT)").ok());
  ASSERT_TRUE(scratch.Execute("INSERT INTO t VALUES (7), (8)").ok());
  // The temp shadows the permanent table for its own session...
  auto shadowed = scratch.Execute("SELECT SUM(a) FROM t");
  ASSERT_TRUE(shadowed.ok());
  EXPECT_EQ(shadowed->rows[0][0].i64(), 15);
  // ...is invisible to every other session...
  auto permanent = session_.Execute("SELECT SUM(a) FROM t");
  ASSERT_TRUE(permanent.ok());
  EXPECT_EQ(permanent->rows[0][0].i64(), 1);
  // ...and never shows up in SHOW TABLES.
  auto tables = scratch.Execute("SHOW TABLES");
  ASSERT_TRUE(tables.ok());
  EXPECT_EQ(tables->rows.size(), 1u) << "only the permanent table is listed";
  // DROP removes the shadow first; the permanent table reappears.
  ASSERT_TRUE(scratch.Execute("DROP TABLE t").ok());
  auto unshadowed = scratch.Execute("SELECT SUM(a) FROM t");
  ASSERT_TRUE(unshadowed.ok());
  EXPECT_EQ(unshadowed->rows[0][0].i64(), 1);
}

TEST_F(ServerTest, CloseDropsTempTablesDeterministically) {
  Connection scratch = server_->Connect();
  ASSERT_TRUE(scratch.Execute("CREATE TEMPORARY TABLE tmp (a INT)").ok());
  ASSERT_TRUE(scratch.Execute("INSERT INTO tmp VALUES (1)").ok());
  std::string physical = Session::TempPhysicalName(scratch.id(), "tmp");
  ASSERT_TRUE(server_->catalog()->GetTable(kTempDatabase, physical).ok());
  ASSERT_TRUE(scratch.Close().ok());
  EXPECT_FALSE(server_->catalog()->GetTable(kTempDatabase, physical).ok())
      << "close must drop the session's temp tables";
}

TEST_F(ServerTest, DoubleCloseIsIdempotentAndExecuteAfterCloseFails) {
  Connection conn = server_->Connect();
  ASSERT_TRUE(conn.Execute("SELECT 1").ok());
  EXPECT_TRUE(conn.Close().ok());
  EXPECT_TRUE(conn.Close().ok()) << "second close must be a clean no-op";
  auto dead = conn.Execute("SELECT 1");
  ASSERT_FALSE(dead.ok());
  EXPECT_NE(dead.status().ToString().find("connection is closed"),
            std::string::npos)
      << dead.status().ToString();
}

TEST_F(ServerTest, ConnectionMetricsTrackOpenAndClose) {
  int64_t active_before = server_->connections()->active();
  {
    Connection a = server_->Connect();
    Connection b = server_->Connect();
    EXPECT_EQ(server_->connections()->active(), active_before + 2);
  }
  EXPECT_EQ(server_->connections()->active(), active_before)
      << "destructor must close the session";
}

// --- prepared statements & plan cache ---

TEST_F(ServerTest, PreparedExecuteByteIdenticalToAdHoc) {
  Run("CREATE TABLE t (a INT, b STRING)");
  Run("INSERT INTO t VALUES (1, 'x'), (2, 'y'), (3, 'z')");
  Run("PREPARE q AS SELECT a, b FROM t WHERE a >= ? ORDER BY a");
  auto prepared = session_.Execute("EXECUTE q (2)");
  ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();
  auto adhoc = session_.Execute("SELECT a, b FROM t WHERE a >= 2 ORDER BY a");
  ASSERT_TRUE(adhoc.ok());
  ASSERT_EQ(prepared->rows.size(), adhoc->rows.size());
  for (size_t i = 0; i < adhoc->rows.size(); ++i)
    for (size_t c = 0; c < adhoc->rows[i].size(); ++c)
      EXPECT_EQ(prepared->rows[i][c].ToString(), adhoc->rows[i][c].ToString())
          << "row " << i << " col " << c;
}

TEST_F(ServerTest, PreparedExecuteSharesResultCacheWithAdHoc) {
  Run("CREATE TABLE t (a INT)");
  Run("INSERT INTO t VALUES (1), (2)");
  Run("PREPARE q AS SELECT SUM(a) FROM t WHERE a > ?");
  // Ad-hoc fills the result cache; the equivalent EXECUTE must hit it
  // (their canonical cache keys are identical).
  ASSERT_TRUE(session_.Execute("SELECT SUM(a) FROM t WHERE a > 0").ok());
  auto exec = session_.Execute("EXECUTE q (0)");
  ASSERT_TRUE(exec.ok());
  EXPECT_TRUE(exec->profile().counter(obs::qc::kFromResultCache))
      << "EXECUTE and the equivalent ad-hoc SELECT must share a cache key";
}

TEST_F(ServerTest, PlanCacheHitsOnRepeatedExecute) {
  session_.config().result_cache_enabled = false;  // isolate the plan cache
  Run("CREATE TABLE t (a INT)");
  Run("INSERT INTO t VALUES (1), (2), (3)");
  Run("PREPARE q AS SELECT SUM(a) FROM t WHERE a > ?");
  int64_t misses_before = server_->plan_cache()->misses();
  int64_t hits_before = server_->plan_cache()->hits();
  ASSERT_TRUE(session_.Execute("EXECUTE q (0)").ok());
  EXPECT_EQ(server_->plan_cache()->misses(), misses_before + 1);
  auto second = session_.Execute("EXECUTE q (0)");
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->rows[0][0].i64(), 6);
  EXPECT_EQ(server_->plan_cache()->hits(), hits_before + 1)
      << "the second EXECUTE must reuse the optimized plan";
}

TEST_F(ServerTest, PlanCacheInvalidatedByDdlStaysCorrect) {
  session_.config().result_cache_enabled = false;
  Run("CREATE TABLE t (a INT)");
  Run("INSERT INTO t VALUES (1), (2)");
  Run("PREPARE q AS SELECT SUM(a) FROM t");
  auto first = session_.Execute("EXECUTE q");
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->rows[0][0].i64(), 3);
  // The insert bumps the catalog version (stats change): the cached plan is
  // stale and must be invalidated, and the answer must reflect the write.
  int64_t invalidations_before = server_->plan_cache()->invalidations();
  Run("INSERT INTO t VALUES (10)");
  auto second = session_.Execute("EXECUTE q");
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->rows[0][0].i64(), 13)
      << "a stale cached plan must never produce a stale answer";
  EXPECT_GT(server_->plan_cache()->invalidations(), invalidations_before);
}

TEST_F(ServerTest, ExplainExecuteReportsPlanCacheState) {
  session_.config().result_cache_enabled = false;
  Run("CREATE TABLE t (a INT)");
  Run("INSERT INTO t VALUES (1)");
  Run("PREPARE q AS SELECT a FROM t WHERE a > ?");
  auto cold = session_.Execute("EXPLAIN EXECUTE q (0)");
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();
  ASSERT_FALSE(cold->rows.empty());
  EXPECT_NE(cold->rows[0][0].ToString().find("plan cache: miss"),
            std::string::npos);
  auto warm = session_.Execute("EXPLAIN EXECUTE q (0)");
  ASSERT_TRUE(warm.ok());
  EXPECT_NE(warm->rows[0][0].ToString().find("plan cache: hit"),
            std::string::npos)
      << "EXPLAIN EXECUTE must warm and then report the plan cache";
}

TEST_F(ServerTest, PreparedStatementLifecycleErrors) {
  Run("CREATE TABLE t (a INT)");
  Run("PREPARE q AS SELECT a FROM t WHERE a > ?");
  // Duplicate name.
  auto dup = session_.Execute("PREPARE q AS SELECT a FROM t");
  ASSERT_FALSE(dup.ok());
  EXPECT_EQ(dup.status().code(), StatusCode::kAlreadyExists);
  // Wrong arity.
  auto missing = session_.Execute("EXECUTE q");
  ASSERT_FALSE(missing.ok());
  EXPECT_NE(missing.status().ToString().find("expects 1 parameter"),
            std::string::npos)
      << missing.status().ToString();
  // Non-literal arguments are rejected.
  auto expr = session_.Execute("EXECUTE q (a + 1)");
  EXPECT_FALSE(expr.ok());
  // DEALLOCATE then EXECUTE: clean not-found.
  ASSERT_TRUE(session_.Execute("DEALLOCATE q").ok());
  auto gone = session_.Execute("EXECUTE q (1)");
  ASSERT_FALSE(gone.ok());
  EXPECT_EQ(gone.status().code(), StatusCode::kNotFound);
  // Prepared statements are session-scoped.
  Run("PREPARE mine AS SELECT a FROM t");
  Connection other = server_->Connect();
  auto foreign = other.Execute("EXECUTE mine");
  ASSERT_FALSE(foreign.ok());
  EXPECT_EQ(foreign.status().code(), StatusCode::kNotFound);
}

// One-PR compatibility shim: the deprecated OpenSession path must keep
// working for out-of-tree callers until the next release.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
TEST_F(ServerTest, DeprecatedOpenSessionStillExecutes) {
  Session* legacy = server_->OpenSession("legacy_app");
  ASSERT_NE(legacy, nullptr);
  auto r = server_->Execute(legacy, "SELECT 1");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->rows[0][0].ToString(), "1");
}
#pragma GCC diagnostic pop

}  // namespace
}  // namespace hive
