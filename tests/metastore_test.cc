#include <gtest/gtest.h>

#include "fs/mem_filesystem.h"
#include "metastore/catalog.h"
#include "metastore/compaction_manager.h"
#include "metastore/txn_manager.h"

namespace hive {
namespace {

TableDesc SalesTable() {
  TableDesc desc;
  desc.db = "default";
  desc.name = "store_sales";
  desc.schema.AddField("item_sk", DataType::Bigint());
  desc.schema.AddField("sales_price", DataType::Decimal(7, 2));
  desc.partition_cols.push_back({"sold_date_sk", DataType::Bigint()});
  return desc;
}

TEST(CatalogTest, CreateGetDropTable) {
  MemFileSystem fs;
  Catalog catalog(&fs);
  ASSERT_TRUE(catalog.CreateTable(SalesTable()).ok());
  auto t = catalog.GetTable("default", "STORE_SALES");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->name, "store_sales");
  EXPECT_EQ(t->location, "/warehouse/default.db/store_sales");
  EXPECT_TRUE(fs.Exists(t->location));
  EXPECT_FALSE(catalog.CreateTable(SalesTable()).ok()) << "duplicate must fail";
  ASSERT_TRUE(catalog.DropTable("default", "store_sales").ok());
  EXPECT_FALSE(fs.Exists("/warehouse/default.db/store_sales"));
  EXPECT_FALSE(catalog.GetTable("default", "store_sales").ok());
}

TEST(CatalogTest, Databases) {
  MemFileSystem fs;
  Catalog catalog(&fs);
  EXPECT_TRUE(catalog.DatabaseExists("default"));
  ASSERT_TRUE(catalog.CreateDatabase("tpcds").ok());
  EXPECT_TRUE(catalog.DatabaseExists("TPCDS"));
  TableDesc t = SalesTable();
  t.db = "missing_db";
  EXPECT_FALSE(catalog.CreateTable(t).ok());
}

TEST(CatalogTest, PartitionsCreateDirectoryLayout) {
  MemFileSystem fs;
  Catalog catalog(&fs);
  ASSERT_TRUE(catalog.CreateTable(SalesTable()).ok());
  ASSERT_TRUE(catalog.AddPartition("default", "store_sales", {Value::Bigint(1)}).ok());
  ASSERT_TRUE(catalog.AddPartition("default", "store_sales", {Value::Bigint(2)}).ok());
  // Figure 3 layout: one directory per partition value.
  EXPECT_TRUE(fs.Exists("/warehouse/default.db/store_sales/sold_date_sk=1"));
  EXPECT_TRUE(fs.Exists("/warehouse/default.db/store_sales/sold_date_sk=2"));
  auto parts = catalog.GetPartitions("default", "store_sales");
  ASSERT_TRUE(parts.ok());
  EXPECT_EQ(parts->size(), 2u);
  // Idempotent add.
  ASSERT_TRUE(catalog.AddPartition("default", "store_sales", {Value::Bigint(1)}).ok());
  parts = catalog.GetPartitions("default", "store_sales");
  EXPECT_EQ(parts->size(), 2u);
  ASSERT_TRUE(
      catalog.DropPartition("default", "store_sales", {Value::Bigint(1)}).ok());
  EXPECT_FALSE(fs.Exists("/warehouse/default.db/store_sales/sold_date_sk=1"));
}

TEST(CatalogTest, StatsMergeAdditively) {
  MemFileSystem fs;
  Catalog catalog(&fs);
  ASSERT_TRUE(catalog.CreateTable(SalesTable()).ok());

  TableStatistics s1;
  s1.row_count = 100;
  ColumnStatistics c1;
  c1.num_values = 100;
  c1.min = Value::Bigint(1);
  c1.max = Value::Bigint(50);
  for (int i = 1; i <= 50; ++i) c1.ndv.AddInt64(i);
  s1.columns["item_sk"] = c1;
  ASSERT_TRUE(catalog.MergeStats("default", "store_sales", s1).ok());

  TableStatistics s2;
  s2.row_count = 200;
  ColumnStatistics c2;
  c2.num_values = 200;
  c2.min = Value::Bigint(30);
  c2.max = Value::Bigint(120);
  for (int i = 30; i <= 120; ++i) c2.ndv.AddInt64(i);
  s2.columns["item_sk"] = c2;
  ASSERT_TRUE(catalog.MergeStats("default", "store_sales", s2).ok());

  auto t = catalog.GetTable("default", "store_sales");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->stats.row_count, 300);
  const auto& merged = t->stats.columns.at("item_sk");
  EXPECT_EQ(merged.min.i64(), 1);
  EXPECT_EQ(merged.max.i64(), 120);
  EXPECT_NEAR(static_cast<double>(merged.Ndv()), 120, 12);
}

TEST(TxnTest, SnapshotIsolationBasics) {
  TransactionManager txns;
  int64_t t1 = txns.OpenTxn();
  TxnSnapshot snap1 = txns.GetSnapshot();
  EXPECT_FALSE(snap1.Sees(t1)) << "own open txn is in the exception list";
  ASSERT_TRUE(txns.CommitTxn(t1).ok());
  TxnSnapshot snap2 = txns.GetSnapshot();
  EXPECT_TRUE(snap2.Sees(t1));
  EXPECT_FALSE(snap1.Sees(t1)) << "old snapshot must not change";
}

TEST(TxnTest, AbortedStaysInvisible) {
  TransactionManager txns;
  int64_t t1 = txns.OpenTxn();
  ASSERT_TRUE(txns.AbortTxn(t1).ok());
  EXPECT_TRUE(txns.IsAborted(t1));
  EXPECT_FALSE(txns.GetSnapshot().Sees(t1));
  EXPECT_EQ(txns.NumAborted(), 1u);
}

TEST(TxnTest, WriteIdsArePerTableMonotonic) {
  TransactionManager txns;
  int64_t t1 = txns.OpenTxn();
  int64_t t2 = txns.OpenTxn();
  auto w1a = txns.AllocateWriteId(t1, "default.a");
  auto w2a = txns.AllocateWriteId(t2, "default.a");
  auto w1b = txns.AllocateWriteId(t1, "default.b");
  ASSERT_TRUE(w1a.ok() && w2a.ok() && w1b.ok());
  EXPECT_EQ(*w1a, 1);
  EXPECT_EQ(*w2a, 2);
  EXPECT_EQ(*w1b, 1) << "write ids are table-scoped";
  // Repeated allocation within the same txn returns the same id.
  auto again = txns.AllocateWriteId(t1, "default.a");
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*again, 1);
}

TEST(TxnTest, ValidWriteIdsFollowTxnVisibility) {
  TransactionManager txns;
  int64_t t1 = txns.OpenTxn();
  ASSERT_TRUE(txns.AllocateWriteId(t1, "default.a").ok());  // wid 1
  ASSERT_TRUE(txns.CommitTxn(t1).ok());

  int64_t t2 = txns.OpenTxn();
  ASSERT_TRUE(txns.AllocateWriteId(t2, "default.a").ok());  // wid 2, open

  int64_t t3 = txns.OpenTxn();
  ASSERT_TRUE(txns.AllocateWriteId(t3, "default.a").ok());  // wid 3
  ASSERT_TRUE(txns.CommitTxn(t3).ok());

  TxnSnapshot snap = txns.GetSnapshot();
  ValidWriteIdList wids = txns.GetValidWriteIds("default.a", snap);
  EXPECT_EQ(wids.high_watermark, 3);
  EXPECT_TRUE(wids.IsValid(1));
  EXPECT_FALSE(wids.IsValid(2)) << "open txn's write id is an exception";
  EXPECT_TRUE(wids.IsValid(3));
}

TEST(TxnTest, FirstCommitWinsOnUpdateConflict) {
  TransactionManager txns;
  int64_t t1 = txns.OpenTxn();
  int64_t t2 = txns.OpenTxn();
  ASSERT_TRUE(txns.RecordWriteSet(t1, "default.t/p=1", WriteOpKind::kUpdateDelete).ok());
  ASSERT_TRUE(txns.RecordWriteSet(t2, "default.t/p=1", WriteOpKind::kUpdateDelete).ok());
  ASSERT_TRUE(txns.CommitTxn(t1).ok());
  Status second = txns.CommitTxn(t2);
  EXPECT_TRUE(second.IsTxnAborted());
  EXPECT_TRUE(txns.IsAborted(t2));
}

TEST(TxnTest, InsertsDoNotConflict) {
  TransactionManager txns;
  int64_t t1 = txns.OpenTxn();
  int64_t t2 = txns.OpenTxn();
  ASSERT_TRUE(txns.RecordWriteSet(t1, "default.t", WriteOpKind::kInsert).ok());
  ASSERT_TRUE(txns.RecordWriteSet(t2, "default.t", WriteOpKind::kInsert).ok());
  EXPECT_TRUE(txns.CommitTxn(t1).ok());
  EXPECT_TRUE(txns.CommitTxn(t2).ok());
}

TEST(TxnTest, DisjointPartitionsDoNotConflict) {
  TransactionManager txns;
  int64_t t1 = txns.OpenTxn();
  int64_t t2 = txns.OpenTxn();
  ASSERT_TRUE(txns.RecordWriteSet(t1, "default.t/p=1", WriteOpKind::kUpdateDelete).ok());
  ASSERT_TRUE(txns.RecordWriteSet(t2, "default.t/p=2", WriteOpKind::kUpdateDelete).ok());
  EXPECT_TRUE(txns.CommitTxn(t1).ok());
  EXPECT_TRUE(txns.CommitTxn(t2).ok());
}

TEST(TxnTest, SharedAndExclusiveLocks) {
  TransactionManager txns;
  int64_t t1 = txns.OpenTxn();
  int64_t t2 = txns.OpenTxn();
  EXPECT_TRUE(txns.AcquireLock(t1, "default.t", LockMode::kShared).ok());
  EXPECT_TRUE(txns.AcquireLock(t2, "default.t", LockMode::kShared).ok());
  int64_t t3 = txns.OpenTxn();
  EXPECT_FALSE(txns.AcquireLock(t3, "default.t", LockMode::kExclusive).ok())
      << "DROP-style exclusive lock blocked by readers";
  ASSERT_TRUE(txns.CommitTxn(t1).ok());
  ASSERT_TRUE(txns.CommitTxn(t2).ok());
  EXPECT_TRUE(txns.AcquireLock(t3, "default.t", LockMode::kExclusive).ok());
  int64_t t4 = txns.OpenTxn();
  EXPECT_FALSE(txns.AcquireLock(t4, "default.t", LockMode::kShared).ok());
  ASSERT_TRUE(txns.AbortTxn(t3).ok());
  EXPECT_TRUE(txns.AcquireLock(t4, "default.t", LockMode::kShared).ok());
}

TEST(CompactionManagerTest, TriggersMinorAtDeltaThreshold) {
  MemFileSystem fs;
  Catalog catalog(&fs);
  TransactionManager txns;
  Config config;
  config.compaction_delta_threshold = 5;
  config.compaction_ratio_threshold = 100.0;  // effectively disable major
  CompactionManager manager(&catalog, &txns, &config);

  TableDesc desc;
  desc.db = "default";
  desc.name = "t";
  desc.schema.AddField("a", DataType::Bigint());
  ASSERT_TRUE(catalog.CreateTable(desc).ok());

  auto write_once = [&](int64_t value) {
    int64_t txn = txns.OpenTxn();
    auto wid = txns.AllocateWriteId(txn, "default.t");
    ASSERT_TRUE(wid.ok());
    AcidWriter writer(&fs, "/warehouse/default.db/t", desc.schema, *wid);
    writer.Insert({Value::Bigint(value)});
    ASSERT_TRUE(writer.Commit().ok());
    ASSERT_TRUE(txns.CommitTxn(txn).ok());
  };

  for (int i = 0; i < 4; ++i) write_once(i);
  auto decisions = manager.MaybeCompact("default", "t");
  ASSERT_TRUE(decisions.ok());
  EXPECT_EQ((*decisions)[0].action, CompactionDecision::Action::kNone);

  write_once(4);
  decisions = manager.MaybeCompact("default", "t");
  ASSERT_TRUE(decisions.ok());
  EXPECT_EQ((*decisions)[0].action, CompactionDecision::Action::kMinor);
  EXPECT_TRUE(fs.Exists("/warehouse/default.db/t/delta_1_5"));
  EXPECT_FALSE(fs.Exists("/warehouse/default.db/t/delta_1_1")) << "cleaned";
  EXPECT_EQ(manager.compactions_run(), 1);
}

TEST(CompactionManagerTest, MajorWhenDeltaRatioHigh) {
  MemFileSystem fs;
  Catalog catalog(&fs);
  TransactionManager txns;
  Config config;
  config.compaction_delta_threshold = 2;
  config.compaction_ratio_threshold = 0.01;
  CompactionManager manager(&catalog, &txns, &config);

  TableDesc desc;
  desc.db = "default";
  desc.name = "t";
  desc.schema.AddField("a", DataType::Bigint());
  ASSERT_TRUE(catalog.CreateTable(desc).ok());

  for (int w = 0; w < 3; ++w) {
    int64_t txn = txns.OpenTxn();
    auto wid = txns.AllocateWriteId(txn, "default.t");
    ASSERT_TRUE(wid.ok());
    AcidWriter writer(&fs, "/warehouse/default.db/t", desc.schema, *wid);
    for (int64_t i = 0; i < 100; ++i) writer.Insert({Value::Bigint(i)});
    ASSERT_TRUE(writer.Commit().ok());
    ASSERT_TRUE(txns.CommitTxn(txn).ok());
  }
  auto decisions = manager.MaybeCompact("default", "t");
  ASSERT_TRUE(decisions.ok());
  EXPECT_EQ((*decisions)[0].action, CompactionDecision::Action::kMajor);
  EXPECT_TRUE(fs.Exists("/warehouse/default.db/t/base_3"));
}

/// Forwards to MemFileSystem but fails DeleteRecursive while `fail_deletes`
/// is set — models a storage layer that temporarily rejects recursive
/// deletes (e.g. an object store throttling its batch-delete API).
class FlakyDeleteFs : public FileSystem {
 public:
  Status WriteFile(const std::string& path, const std::string& data) override {
    return base_.WriteFile(path, data);
  }
  Result<std::string> ReadFile(const std::string& path) override {
    return base_.ReadFile(path);
  }
  Result<std::string> ReadRange(const std::string& path, uint64_t offset,
                                uint64_t len) override {
    return base_.ReadRange(path, offset, len);
  }
  Result<FileInfo> Stat(const std::string& path) override { return base_.Stat(path); }
  Result<std::vector<FileInfo>> ListDir(const std::string& path) override {
    return base_.ListDir(path);
  }
  Status MakeDirs(const std::string& path) override { return base_.MakeDirs(path); }
  Status DeleteFile(const std::string& path) override { return base_.DeleteFile(path); }
  Status DeleteRecursive(const std::string& path) override {
    if (fail_deletes) return Status::TransientIoError("delete throttled: " + path);
    return base_.DeleteRecursive(path);
  }
  Status Rename(const std::string& from, const std::string& to) override {
    return base_.Rename(from, to);
  }
  bool Exists(const std::string& path) override { return base_.Exists(path); }

  bool fail_deletes = false;

 private:
  MemFileSystem base_;
};

TEST(CatalogTest, DropTableFailedDeleteKeepsEntryRetryable) {
  // Regression: DropTable used to erase the catalog entry even when the data
  // delete failed, orphaning the directory with nothing pointing at it. The
  // delete now runs first and a failure aborts the drop, so it can be retried.
  FlakyDeleteFs fs;
  Catalog catalog(&fs);
  TableDesc desc = SalesTable();
  desc.partition_cols.clear();
  ASSERT_TRUE(catalog.CreateTable(desc).ok());

  fs.fail_deletes = true;
  Status drop = catalog.DropTable("default", "store_sales");
  EXPECT_FALSE(drop.ok());
  EXPECT_TRUE(catalog.GetTable("default", "store_sales").ok())
      << "failed drop must keep the table registered";
  EXPECT_TRUE(fs.Exists("/warehouse/default.db/store_sales"));

  fs.fail_deletes = false;
  EXPECT_TRUE(catalog.DropTable("default", "store_sales").ok()) << "retry succeeds";
  EXPECT_FALSE(fs.Exists("/warehouse/default.db/store_sales"));
  EXPECT_FALSE(catalog.GetTable("default", "store_sales").ok());
}

TEST(CatalogTest, DropPartitionFailedDeleteKeepsPartition) {
  FlakyDeleteFs fs;
  Catalog catalog(&fs);
  ASSERT_TRUE(catalog.CreateTable(SalesTable()).ok());
  ASSERT_TRUE(
      catalog.AddPartition("default", "store_sales", {Value::Bigint(20260101)}).ok());
  const std::string part_dir =
      "/warehouse/default.db/store_sales/sold_date_sk=20260101";
  ASSERT_TRUE(fs.Exists(part_dir));

  fs.fail_deletes = true;
  EXPECT_FALSE(
      catalog.DropPartition("default", "store_sales", {Value::Bigint(20260101)}).ok());
  auto parts = catalog.GetPartitions("default", "store_sales");
  ASSERT_TRUE(parts.ok());
  EXPECT_EQ(parts->size(), 1u) << "failed drop must keep the partition registered";
  EXPECT_TRUE(fs.Exists(part_dir));

  fs.fail_deletes = false;
  EXPECT_TRUE(
      catalog.DropPartition("default", "store_sales", {Value::Bigint(20260101)}).ok());
  EXPECT_FALSE(fs.Exists(part_dir));
}

TEST(CompactionManagerTest, FailedCleanStaysPendingAndRetries) {
  // Regression: a deferred clean whose deletes failed used to be dropped from
  // the pending list forever, leaking the superseded delta directories. It
  // now stays queued and succeeds on a later flush.
  FlakyDeleteFs fs;
  Catalog catalog(&fs);
  TransactionManager txns;
  Config config;
  config.compaction_delta_threshold = 3;
  config.compaction_ratio_threshold = 100.0;
  CompactionManager manager(&catalog, &txns, &config);

  TableDesc desc;
  desc.db = "default";
  desc.name = "t";
  desc.schema.AddField("a", DataType::Bigint());
  ASSERT_TRUE(catalog.CreateTable(desc).ok());
  for (int w = 0; w < 3; ++w) {
    int64_t txn = txns.OpenTxn();
    auto wid = txns.AllocateWriteId(txn, "default.t");
    ASSERT_TRUE(wid.ok());
    AcidWriter writer(&fs, "/warehouse/default.db/t", desc.schema, *wid);
    writer.Insert({Value::Bigint(w)});
    ASSERT_TRUE(writer.Commit().ok());
    ASSERT_TRUE(txns.CommitTxn(txn).ok());
  }

  // A reader is in flight when the compaction commits: cleaning is deferred.
  manager.BeginRead();
  auto decisions = manager.MaybeCompact("default", "t");
  ASSERT_TRUE(decisions.ok());
  ASSERT_EQ((*decisions)[0].action, CompactionDecision::Action::kMinor);
  EXPECT_EQ(manager.pending_cleans(), 1u);
  EXPECT_TRUE(fs.Exists("/warehouse/default.db/t/delta_1_1")) << "clean deferred";

  // The last reader drains while deletes are failing: the clean must stay
  // queued, not vanish.
  fs.fail_deletes = true;
  manager.EndRead();
  EXPECT_EQ(manager.pending_cleans(), 1u) << "failed clean must be retained";
  EXPECT_TRUE(fs.Exists("/warehouse/default.db/t/delta_1_1"));

  // Storage recovers: the next flush completes the clean.
  fs.fail_deletes = false;
  manager.FlushPendingCleans();
  EXPECT_EQ(manager.pending_cleans(), 0u);
  EXPECT_FALSE(fs.Exists("/warehouse/default.db/t/delta_1_1"));
  EXPECT_TRUE(fs.Exists("/warehouse/default.db/t/delta_1_3")) << "compacted delta kept";
}

}  // namespace
}  // namespace hive
