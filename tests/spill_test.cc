#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/memory_governor.h"
#include "exec/spill.h"
#include "fs/fault_injection.h"
#include "fs/mem_filesystem.h"
#include "server/hive_server.h"

namespace hive {
namespace {

// --- memory governor unit tests ---

TEST(MemoryGovernorTest, ReserveDenyRelease) {
  MemoryGovernor gov(1000);
  EXPECT_TRUE(gov.TryReserve(600));
  EXPECT_EQ(gov.reserved(), 600);
  EXPECT_FALSE(gov.TryReserve(600)) << "over-limit reserve must be denied";
  EXPECT_EQ(gov.denied(), 1);
  EXPECT_EQ(gov.reserved(), 600) << "a denied reserve must not take bytes";
  gov.Release(600);
  EXPECT_EQ(gov.reserved(), 0);
  EXPECT_TRUE(gov.TryReserve(1000));
}

TEST(MemoryGovernorTest, UnlimitedAdmitsEverything) {
  MemoryGovernor gov(0);
  EXPECT_TRUE(gov.TryReserve(int64_t{1} << 60));
  EXPECT_EQ(gov.denied(), 0);
}

TEST(QueryMemoryTest, QueryCapChecksBeforeGovernor) {
  MemoryGovernor gov(1000);
  QueryMemory q(&gov, 500);
  EXPECT_TRUE(q.bounded());
  EXPECT_TRUE(q.TryGrow(400));
  EXPECT_FALSE(q.TryGrow(200)) << "query cap is 500";
  EXPECT_EQ(q.used(), 400);
  EXPECT_EQ(gov.reserved(), 400);
}

TEST(QueryMemoryTest, GovernorDeniesAcrossQueries) {
  MemoryGovernor gov(1000);
  QueryMemory a(&gov, 0);
  ASSERT_TRUE(a.TryGrow(700));
  {
    QueryMemory b(&gov, 0);
    EXPECT_FALSE(b.TryGrow(400)) << "process budget is shared";
    EXPECT_TRUE(b.TryGrow(300));
  }
  // b's destructor released its share.
  EXPECT_EQ(gov.reserved(), 700);
  QueryMemory c(&gov, 0);
  EXPECT_TRUE(c.TryGrow(300));
}

TEST(MemoryReservationTest, GrowToIsAbsoluteAndDenialKeepsSize) {
  MemoryGovernor gov(1000);
  QueryMemory q(&gov, 0);
  MemoryReservation r(&q);
  EXPECT_TRUE(r.GrowTo(400));
  EXPECT_EQ(r.held(), 400);
  EXPECT_TRUE(r.GrowTo(100)) << "GrowTo may shrink";
  EXPECT_EQ(q.used(), 100);
  EXPECT_FALSE(r.GrowTo(2000));
  EXPECT_EQ(r.held(), 100) << "a denied grow keeps the previous size";
  r.Release();
  EXPECT_EQ(q.used(), 0);
}

TEST(MemoryReservationTest, NullMemoryAdmitsEverything) {
  MemoryReservation r;
  EXPECT_TRUE(r.GrowTo(int64_t{1} << 60));
}

// --- spill stream format unit tests ---

/// Bare context: a MemFileSystem, a default config, nothing else.
struct SpillHarness {
  MemFileSystem mem;
  Config config;
  ExecContext ctx;
  SpillHarness() {
    ctx.fs = &mem;
    ctx.config = &config;
    ctx.spill_dir = "/spill";
  }
};

TEST(SpillStreamTest, RecordsRoundTripAcrossChunks) {
  SpillHarness h;
  SpillChunkWriter writer(&h.ctx, "/spill/t");
  // Large records force several chunk files (threshold is 256 KiB).
  std::vector<std::string> records;
  for (int i = 0; i < 5; ++i)
    records.push_back(std::string(200 * 1024, static_cast<char>('a' + i)) +
                      std::to_string(i));
  for (const std::string& r : records) ASSERT_TRUE(writer.AppendRecord(r).ok());
  ASSERT_TRUE(writer.Finish().ok());
  EXPECT_GT(writer.num_chunks(), 1) << "test meant to span multiple chunks";
  EXPECT_EQ(writer.num_records(), records.size());

  SpillChunkReader reader(&h.ctx, writer.prefix(), writer.num_chunks());
  std::string record;
  for (const std::string& want : records) {
    auto more = reader.NextRecord(&record);
    ASSERT_TRUE(more.ok()) << more.status().ToString();
    ASSERT_TRUE(*more);
    EXPECT_EQ(record, want);
  }
  auto end = reader.NextRecord(&record);
  ASSERT_TRUE(end.ok());
  EXPECT_FALSE(*end);
}

TEST(SpillStreamTest, CorruptChunkIsTransientCorruption) {
  SpillHarness h;
  SpillChunkWriter writer(&h.ctx, "/spill/c");
  ASSERT_TRUE(writer.AppendRecord("the payload under test").ok());
  ASSERT_TRUE(writer.Finish().ok());
  ASSERT_EQ(writer.num_chunks(), 1);

  std::string path = writer.prefix() + ".c0";
  auto data = h.mem.ReadFile(path);
  ASSERT_TRUE(data.ok());
  std::string bad = *data;
  bad[bad.size() / 2] ^= 0x40;  // flip one payload bit behind the checksum
  ASSERT_TRUE(h.mem.WriteFile(path, bad).ok());

  // Retries re-read the same corrupt bytes, so the (transient) corruption
  // eventually surfaces after the attempt budget.
  SpillChunkReader reader(&h.ctx, writer.prefix(), writer.num_chunks());
  std::string record;
  auto result = reader.NextRecord(&record);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsTransient()) << result.status().ToString();
  EXPECT_NE(result.status().ToString().find("checksum"), std::string::npos)
      << result.status().ToString();
}

TEST(SpillStreamTest, BatchWriterRoundTripsRowsAndSeqs) {
  SpillHarness h;
  Schema schema;
  schema.AddField("k", DataType::Bigint());
  schema.AddField("s", DataType::String());
  RowBatch dense(schema);
  for (int i = 0; i < 2500; ++i) {
    dense.column(0)->AppendValue(Value::Bigint(i * 3));
    dense.column(1)->AppendValue(Value::String("row-" + std::to_string(i)));
  }
  dense.set_num_rows(2500);

  SpillBatchWriter writer(&h.ctx, "/spill/b", schema, /*with_seqs=*/true);
  for (size_t i = 0; i < 2500; ++i)
    ASSERT_TRUE(writer.AppendBatchRow(dense, i, 1000 + i).ok());
  ASSERT_TRUE(writer.Finish().ok());
  EXPECT_EQ(writer.num_rows(), 2500u);

  SpillBatchReader reader(&h.ctx, writer);
  RowBatch batch(schema);
  std::vector<uint64_t> seqs;
  size_t row = 0;
  for (;;) {
    auto more = reader.NextBatch(&batch, &seqs);
    ASSERT_TRUE(more.ok()) << more.status().ToString();
    if (!*more) break;
    ASSERT_EQ(seqs.size(), batch.num_rows());
    for (size_t i = 0; i < batch.num_rows(); ++i, ++row) {
      EXPECT_EQ(batch.column(0)->GetValue(i).AsInt64(),
                static_cast<int64_t>(row * 3));
      EXPECT_EQ(batch.column(1)->GetValue(i).str(), "row-" + std::to_string(row));
      EXPECT_EQ(seqs[i], 1000 + row);
    }
  }
  EXPECT_EQ(row, 2500u);
}

TEST(SpillPartitionTest, DepthConsumesFreshHashBytes) {
  // Rows colliding at depth 0 (same top byte) must still split at depth 1.
  uint64_t a = 0xAB12000000000000ULL;
  uint64_t b = 0xAB34000000000000ULL;
  EXPECT_EQ(SpillPartitionOf(a, 0, 8), SpillPartitionOf(b, 0, 8));
  EXPECT_NE(SpillPartitionOf(a, 1, 251), SpillPartitionOf(b, 1, 251));
}

// --- end-to-end: a small warehouse whose working set dwarfs tiny budgets ---

constexpr int kFactRows = 4096;
constexpr int kDimRows = 512;

/// Scrambled-but-deterministic value column: distinct from the key order so
/// sorts actually permute rows.
int ValueOf(int i) { return (i * 7919 + 13) % kFactRows; }

std::vector<std::string> Rows(const QueryResult& result) {
  std::vector<std::string> out;
  out.reserve(result.rows.size());
  for (const auto& row : result.rows) {
    std::string line;
    for (const Value& v : row) {
      line += v.ToString();
      line += '|';
    }
    out.push_back(std::move(line));
  }
  return out;
}

/// One self-contained cluster: mem fs + fault decorator + server + data.
struct Cluster {
  MemFileSystem mem;
  FaultInjectingFileSystem faults;
  std::unique_ptr<HiveServer2> server;

  explicit Cluster(int executors, Config config = {}, uint64_t seed = 1)
      : faults(&mem, seed) {
    config.container_startup_us = 0;
    config.num_executors = executors;
    server = std::make_unique<HiveServer2>(&faults, config);
    faults.set_clock(server->clock());
    Connection loader = server->Connect();
    Load(loader);
  }

  void Load(Connection& session) {
    ASSERT_TRUE(session
                    .Execute("CREATE TABLE fact (fk INT, v INT, g INT, "
                             "pad STRING)")
                    .ok());
    ASSERT_TRUE(
        session.Execute("CREATE TABLE dim (dk INT, name STRING)").ok());
    for (int base = 0; base < kFactRows; base += 256) {
      std::string insert = "INSERT INTO fact VALUES ";
      for (int i = 0; i < 256; ++i) {
        int k = base + i;
        insert += (i ? ", (" : "(") + std::to_string(k) + ", " +
                  std::to_string(ValueOf(k)) + ", " + std::to_string(k % 97) +
                  ", 'pad-" + std::to_string(k) + "-abcdefghijklmnop')";
      }
      ASSERT_TRUE(session.Execute(insert).ok());
    }
    for (int base = 0; base < kDimRows; base += 256) {
      std::string insert = "INSERT INTO dim VALUES ";
      for (int i = 0; i < 256; ++i) {
        int k = base + i;
        insert += (i ? ", (" : "(") + std::to_string(k * 7) + ", 'name-" +
                  std::to_string(k) + "')";
      }
      ASSERT_TRUE(session.Execute(insert).ok());
    }
  }

  Connection NewSession(int64_t query_budget) {
    Connection session = server->Connect();
    session.config().result_cache_enabled = false;
    session.config().query_memory_limit_bytes = query_budget;
    return session;
  }

  int64_t Metric(const char* name) { return server->metrics()->Value(name); }
};

/// The queries the budget matrix sweeps: each blocking operator family gets
/// at least one query whose state exceeds the small budgets.
const std::vector<std::pair<std::string, std::string>>& MatrixQueries() {
  static const std::vector<std::pair<std::string, std::string>> queries = {
      // Grace hash join: the fact table is the build side.
      {"join",
       "SELECT name, v FROM dim JOIN fact ON dk = fk ORDER BY v, fk LIMIT 40"},
      // Left outer keeps unmatched probe rows through the spill path.
      {"left_join",
       "SELECT fk, name FROM fact LEFT JOIN dim ON fk = dk "
       "ORDER BY fk LIMIT 60"},
      // Wide aggregation: one group per fact key.
      {"agg", "SELECT fk, SUM(v) AS s FROM fact GROUP BY fk ORDER BY fk"},
      // External merge sort: full-output ORDER BY, no LIMIT.
      {"sort", "SELECT v, fk FROM fact ORDER BY v, fk"},
      // The acceptance shape: join + aggregate + sort in one plan.
      {"join_agg_sort",
       "SELECT g, COUNT(*) AS c, SUM(v) AS s, MIN(name) AS m "
       "FROM dim JOIN fact ON dk = fk GROUP BY g ORDER BY s DESC, g"},
  };
  return queries;
}

class SpillEndToEndTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    exec1_ = new Cluster(1);
    exec8_ = new Cluster(8);
    baseline_ = new std::vector<std::vector<std::string>>();
    Connection session = exec1_->NewSession(0);
    for (const auto& [name, sql] : MatrixQueries()) {
      auto result = session.Execute(sql);
      ASSERT_TRUE(result.ok()) << name << ": " << result.status().ToString();
      baseline_->push_back(Rows(*result));
    }
  }
  static void TearDownTestSuite() {
    delete baseline_;
    delete exec8_;
    delete exec1_;
  }

  void TearDown() override {
    for (Cluster* c : {exec1_, exec8_}) {
      c->faults.ClearRules();
      c->faults.ResetSchedule();
      c->faults.Reseed(1);
      if (c->server->llap()) c->server->llap()->cache()->Clear();
    }
  }

  /// Runs the matrix on `cluster` under `budget` and asserts byte-identity
  /// with the unlimited single-executor baseline.
  void RunMatrix(Cluster* cluster, int64_t budget) {
    Connection session = cluster->NewSession(budget);
    size_t i = 0;
    for (const auto& [name, sql] : MatrixQueries()) {
      SCOPED_TRACE(name + " @budget=" + std::to_string(budget));
      auto result = session.Execute(sql);
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      EXPECT_EQ(Rows(*result), (*baseline_)[i]) << "diverged from baseline";
      ++i;
    }
  }

  static Cluster* exec1_;
  static Cluster* exec8_;
  static std::vector<std::vector<std::string>>* baseline_;
};

Cluster* SpillEndToEndTest::exec1_ = nullptr;
Cluster* SpillEndToEndTest::exec8_ = nullptr;
std::vector<std::vector<std::string>>* SpillEndToEndTest::baseline_ = nullptr;

TEST_F(SpillEndToEndTest, BudgetLadderIsByteIdenticalAtBothExecutorCounts) {
  // 64 KiB is roughly 1/4 of the fact working set; 16 KiB roughly 1/16.
  int64_t spilled_before = exec1_->Metric("exec.spill.bytes");
  for (Cluster* cluster : {exec1_, exec8_}) {
    for (int64_t budget : {int64_t{0}, int64_t{64 * 1024}, int64_t{16 * 1024}}) {
      RunMatrix(cluster, budget);
    }
  }
  EXPECT_GT(exec1_->Metric("exec.spill.bytes"), spilled_before)
      << "the small budgets never spilled; the ladder tested nothing";
  EXPECT_GT(exec1_->Metric("exec.spill.partitions"), 0);
  EXPECT_GT(exec1_->Metric("exec.spill.merge_passes"), 0);
  EXPECT_GT(exec1_->Metric("exec.spill.denied_reservations"), 0);
  EXPECT_GT(exec8_->Metric("exec.spill.bytes"), 0)
      << "parallel operators never spilled";
}

TEST_F(SpillEndToEndTest, SpillSurvivesInjectedFaultsByteIdentical) {
  // Acceptance: working set >= 4x budget, 1 and 8 executors, three fault
  // seeds injecting transient read errors and corruption into the spill
  // directory itself. Results must match the unlimited fault-free baseline.
  for (Cluster* cluster : {exec1_, exec8_}) {
    for (uint64_t seed : {uint64_t{3}, uint64_t{5}, uint64_t{9}}) {
      SCOPED_TRACE("seed " + std::to_string(seed));
      cluster->faults.ClearRules();
      cluster->faults.ResetSchedule();
      cluster->faults.Reseed(seed);
      FaultRule rule;
      rule.path_prefix = "/tmp/spill";  // the default spill namespace
      rule.read_error_rate = 0.2;
      rule.max_read_errors_per_site = 1;
      rule.corrupt_rate = 0.1;
      rule.max_corruptions_per_site = 1;
      cluster->faults.AddRule(rule);
      int64_t spilled_before = cluster->Metric("exec.spill.bytes");
      RunMatrix(cluster, 16 * 1024);
      EXPECT_GT(cluster->Metric("exec.spill.bytes"), spilled_before)
          << "faulted run never spilled";
    }
  }
}

TEST_F(SpillEndToEndTest, SpillDisabledFailsCleanlyWithResourceExhausted) {
  Connection session = exec1_->NewSession(16 * 1024);
  session.config().spill_enabled = false;
  for (const auto& [name, sql] : MatrixQueries()) {
    SCOPED_TRACE(name);
    auto result = session.Execute(sql);
    ASSERT_FALSE(result.ok()) << "a 16 KiB budget cannot fit this working set";
    EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted)
        << result.status().ToString();
    EXPECT_NE(result.status().ToString().find("query.memory.limit.bytes"),
              std::string::npos)
        << "the status must name the knob: " << result.status().ToString();
    EXPECT_NE(result.status().ToString().find("spilling is unavailable"),
              std::string::npos)
        << result.status().ToString();
  }
  // The cluster stays healthy: the same queries succeed right after.
  RunMatrix(exec1_, 16 * 1024);
}

TEST_F(SpillEndToEndTest, ProcessGovernorBoundsConcurrentStateAndRecovers) {
  // Governor-level budget (exec.memory.limit.bytes) instead of a per-query
  // cap: the same spill ladder must hold.
  Config config;
  config.exec_memory_limit_bytes = 48 * 1024;
  Cluster governed(4, config);
  Connection session = governed.NewSession(0);
  size_t i = 0;
  for (const auto& [name, sql] : MatrixQueries()) {
    SCOPED_TRACE(name);
    auto result = session.Execute(sql);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(Rows(*result), (*baseline_)[i]);
    ++i;
  }
  EXPECT_GT(governed.Metric("exec.spill.bytes"), 0);
  EXPECT_EQ(governed.server->memory_governor()->reserved(), 0)
      << "queries must hand every reserved byte back";
}

TEST_F(SpillEndToEndTest, TopKSortNeverSpillsUnderTinyBudget) {
  // ORDER BY ... LIMIT keeps a bounded heap: a budget far too small for the
  // full sort must still pass without touching the spill path.
  Connection session = exec1_->NewSession(16 * 1024);
  int64_t spilled_before = exec1_->Metric("exec.spill.bytes");
  int64_t denied_before = exec1_->Metric("exec.spill.denied_reservations");
  auto result = session.Execute("SELECT v, fk FROM fact ORDER BY v, fk LIMIT 10");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->rows.size(), 10u);
  // Prefix of the full-sort baseline (query index 3 is the bare sort).
  std::vector<std::string> got = Rows(*result);
  for (size_t i = 0; i < got.size(); ++i)
    EXPECT_EQ(got[i], (*baseline_)[3][i]) << "row " << i;
  EXPECT_EQ(exec1_->Metric("exec.spill.bytes"), spilled_before)
      << "top-K must not materialize or spill";
  EXPECT_EQ(exec1_->Metric("exec.spill.denied_reservations"), denied_before)
      << "a 10-row heap cannot plausibly exhaust 16 KiB";
}

TEST_F(SpillEndToEndTest, SetOpReportsRealFootprintAndFailsCleanly) {
  // INTERSECT cannot spill; under a budget smaller than its digest sets it
  // must fail with the budget status, not a fabricated-estimate OOM pass.
  Connection tiny = exec1_->NewSession(4 * 1024);
  auto denied = tiny.Execute("SELECT fk FROM fact INTERSECT SELECT dk FROM dim");
  ASSERT_FALSE(denied.ok());
  EXPECT_EQ(denied.status().code(), StatusCode::kResourceExhausted)
      << denied.status().ToString();
  EXPECT_NE(denied.status().ToString().find("set operation"), std::string::npos)
      << denied.status().ToString();

  Connection roomy = exec1_->NewSession(0);
  auto ok = roomy.Execute("SELECT fk FROM fact INTERSECT SELECT dk FROM dim");
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  // dim keys are 7k for k in [0, 512), all below kFactRows: every dim key
  // appears on the fact side, so the intersection is the whole dim key set.
  EXPECT_EQ(ok->rows.size(), static_cast<size_t>(kDimRows));
}

TEST_F(SpillEndToEndTest, ExplainAnalyzeAnnotatesSpillingOperators) {
  Connection session = exec8_->NewSession(16 * 1024);
  auto analyzed = session.Execute("EXPLAIN ANALYZE SELECT g, COUNT(*) AS c, SUM(v) AS s, MIN(name) AS m "
      "FROM dim JOIN fact ON dk = fk GROUP BY g ORDER BY s DESC, g");
  ASSERT_TRUE(analyzed.ok()) << analyzed.status().ToString();
  std::string all;
  for (const auto& row : analyzed->rows) all += row[0].ToString() + "\n";
  EXPECT_NE(all.find("spill=grace"), std::string::npos)
      << "join spill missing from the profile:\n" << all;
  EXPECT_NE(all.find("spill=agg"), std::string::npos)
      << "aggregate spill missing from the profile:\n" << all;

  auto sorted = session.Execute("EXPLAIN ANALYZE SELECT v, fk FROM fact ORDER BY v, fk");
  ASSERT_TRUE(sorted.ok()) << sorted.status().ToString();
  all.clear();
  for (const auto& row : sorted->rows) all += row[0].ToString() + "\n";
  EXPECT_NE(all.find("spill=sort"), std::string::npos)
      << "sort spill missing from the profile:\n" << all;
}

TEST_F(SpillEndToEndTest, SpillDirectoryIsTornDownAfterQueries) {
  Connection session = exec1_->NewSession(16 * 1024);
  auto result = session.Execute("SELECT v, fk FROM fact ORDER BY v, fk");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  auto leftovers = exec1_->mem.ListDir("/tmp/spill");
  if (leftovers.ok()) {
    EXPECT_TRUE(leftovers->empty())
        << leftovers->size() << " spill entries leaked, first: "
        << (*leftovers)[0].path;
  }
}

}  // namespace
}  // namespace hive
