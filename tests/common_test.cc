#include <gtest/gtest.h>

#include <set>
#include <thread>

#include "common/bloom_filter.h"
#include "common/hll.h"
#include "common/lrfu_cache.h"
#include "common/rng.h"
#include "common/schema.h"
#include "common/thread_pool.h"
#include "common/types.h"

namespace hive {
namespace {

TEST(StatusTest, OkAndError) {
  Status ok = Status::OK();
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.ToString(), "OK");
  Status err = Status::NotFound("missing table");
  EXPECT_FALSE(err.ok());
  EXPECT_TRUE(err.IsNotFound());
  EXPECT_EQ(err.ToString(), "NotFound: missing table");
}

TEST(ResultTest, ValueAndError) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  Result<int> e = Status::InvalidArgument("bad");
  EXPECT_FALSE(e.ok());
  EXPECT_EQ(e.status().code(), StatusCode::kInvalidArgument);
}

TEST(ValueTest, CompareNumericCrossKind) {
  EXPECT_EQ(Value::Compare(Value::Bigint(3), Value::Double(3.0)), 0);
  EXPECT_LT(Value::Compare(Value::Bigint(2), Value::Double(2.5)), 0);
  EXPECT_GT(Value::Compare(Value::Decimal(250, 2), Value::Bigint(2)), 0);  // 2.50 > 2
  EXPECT_EQ(Value::Compare(Value::Decimal(200, 2), Value::Bigint(2)), 0);
}

TEST(ValueTest, NullOrdering) {
  EXPECT_LT(Value::Compare(Value::Null(), Value::Bigint(-100)), 0);
  EXPECT_EQ(Value::Compare(Value::Null(), Value::Null()), 0);
}

TEST(ValueTest, DecimalParseAndPrint) {
  auto v = Value::Parse("123.45", DataType::Decimal(7, 2));
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->i64(), 12345);
  EXPECT_EQ(v->ToString(), "123.45");
  auto neg = Value::Parse("-0.07", DataType::Decimal(7, 2));
  ASSERT_TRUE(neg.ok());
  EXPECT_EQ(neg->i64(), -7);
  EXPECT_EQ(neg->ToString(), "-0.07");
}

TEST(ValueTest, DecimalScaleTruncation) {
  auto v = Value::Parse("1.999", DataType::Decimal(7, 2));
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->i64(), 199);
}

TEST(ValueTest, HashEqualAcrossNumericKinds) {
  EXPECT_EQ(Value::Bigint(7).Hash(), Value::Double(7.0).Hash());
  EXPECT_EQ(Value::Bigint(7).Hash(), Value::Decimal(700, 2).Hash());
}

TEST(ValueTest, CastRoundTrips) {
  Value d = Value::Double(3.75);
  auto dec = d.CastTo(DataType::Decimal(7, 2));
  ASSERT_TRUE(dec.ok());
  EXPECT_EQ(dec->ToString(), "3.75");
  auto str = dec->CastTo(DataType::String());
  ASSERT_TRUE(str.ok());
  EXPECT_EQ(str->str(), "3.75");
  auto back = str->CastTo(DataType::Double());
  ASSERT_TRUE(back.ok());
  EXPECT_DOUBLE_EQ(back->f64(), 3.75);
}

TEST(DateTest, CivilRoundTrip) {
  for (int64_t days : {-10000, -1, 0, 1, 365, 18000, 20000}) {
    int y;
    unsigned m, d;
    CivilFromDays(days, &y, &m, &d);
    EXPECT_EQ(DaysFromCivil(y, m, d), days);
  }
}

TEST(DateTest, ParseFormat) {
  auto days = ParseDate("2018-03-26");
  ASSERT_TRUE(days.ok());
  EXPECT_EQ(FormatDate(*days), "2018-03-26");
  auto ts = ParseTimestamp("2018-03-26 12:34:56");
  ASSERT_TRUE(ts.ok());
  EXPECT_EQ(FormatTimestamp(*ts), "2018-03-26 12:34:56");
}

TEST(DateTest, ExtractFields) {
  auto days = ParseDate("2017-11-05");
  ASSERT_TRUE(days.ok());
  Value v = Value::Date(*days);
  EXPECT_EQ(ExtractDateField(DateField::kYear, v), 2017);
  EXPECT_EQ(ExtractDateField(DateField::kMonth, v), 11);
  EXPECT_EQ(ExtractDateField(DateField::kDay, v), 5);
  EXPECT_EQ(ExtractDateField(DateField::kQuarter, v), 4);
}

TEST(SchemaTest, CaseInsensitiveLookup) {
  Schema s;
  s.AddField("Sold_Date_SK", DataType::Bigint());
  s.AddField("list_price", DataType::Decimal(7, 2));
  EXPECT_EQ(s.IndexOf("sold_date_sk"), 0u);
  EXPECT_EQ(s.IndexOf("LIST_PRICE"), 1u);
  EXPECT_FALSE(s.IndexOf("missing").has_value());
}

TEST(SchemaTest, SerializeRoundTrip) {
  Schema s;
  s.AddField("a", DataType::Bigint());
  s.AddField("b", DataType::Decimal(10, 3));
  s.AddField("c", DataType::String());
  std::string buf;
  s.Serialize(&buf);
  size_t offset = 0;
  auto back = Schema::Deserialize(buf, &offset);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, s);
  EXPECT_EQ(offset, buf.size());
}

TEST(BloomFilterTest, NoFalseNegatives) {
  BloomFilter bf(1000, 0.03);
  for (int64_t i = 0; i < 1000; ++i) bf.AddInt64(i * 7);
  for (int64_t i = 0; i < 1000; ++i) EXPECT_TRUE(bf.MightContainInt64(i * 7));
}

TEST(BloomFilterTest, FalsePositiveRateIsBounded) {
  BloomFilter bf(1000, 0.03);
  for (int64_t i = 0; i < 1000; ++i) bf.AddInt64(i);
  int fp = 0;
  for (int64_t i = 10000; i < 20000; ++i)
    if (bf.MightContainInt64(i)) ++fp;
  EXPECT_LT(fp, 800);  // 8%, generous bound over the 3% target
}

TEST(BloomFilterTest, SerializeRoundTrip) {
  BloomFilter bf(100, 0.05);
  bf.AddString("hello");
  bf.AddString("world");
  std::string buf;
  bf.Serialize(&buf);
  size_t offset = 0;
  auto back = BloomFilter::Deserialize(buf, &offset);
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->MightContainString("hello"));
  EXPECT_TRUE(back->MightContainString("world"));
  EXPECT_EQ(offset, buf.size());
}

TEST(BloomFilterTest, Merge) {
  BloomFilter a(100, 0.03), b(100, 0.03);
  a.AddInt64(1);
  b.AddInt64(2);
  ASSERT_TRUE(a.MergeFrom(b).ok());
  EXPECT_TRUE(a.MightContainInt64(1));
  EXPECT_TRUE(a.MightContainInt64(2));
}

TEST(HllTest, EstimateWithinError) {
  HyperLogLog hll(12);
  const int n = 100000;
  for (int i = 0; i < n; ++i) hll.AddInt64(i);
  double est = static_cast<double>(hll.Estimate());
  EXPECT_NEAR(est, n, n * 0.05);
}

TEST(HllTest, SmallCardinalityLinearCounting) {
  HyperLogLog hll(12);
  for (int i = 0; i < 10; ++i) hll.AddInt64(i);
  EXPECT_NEAR(static_cast<double>(hll.Estimate()), 10, 2);
}

TEST(HllTest, MergeIsAdditive) {
  HyperLogLog a(12), b(12);
  for (int i = 0; i < 5000; ++i) a.AddInt64(i);
  for (int i = 2500; i < 7500; ++i) b.AddInt64(i);
  ASSERT_TRUE(a.MergeFrom(b).ok());
  EXPECT_NEAR(static_cast<double>(a.Estimate()), 7500, 7500 * 0.05);
}

TEST(HllTest, DuplicatesDoNotInflate) {
  HyperLogLog hll(12);
  for (int rep = 0; rep < 100; ++rep)
    for (int i = 0; i < 100; ++i) hll.AddInt64(i);
  EXPECT_NEAR(static_cast<double>(hll.Estimate()), 100, 10);
}

TEST(HllTest, SerializeRoundTrip) {
  HyperLogLog hll(10);
  for (int i = 0; i < 1000; ++i) hll.AddInt64(i);
  std::string buf;
  hll.Serialize(&buf);
  size_t offset = 0;
  auto back = HyperLogLog::Deserialize(buf, &offset);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->Estimate(), hll.Estimate());
}

TEST(LrfuCacheTest, BasicPutGet) {
  LrfuCache<int, std::shared_ptr<int>> cache(1024);
  cache.Put(1, std::make_shared<int>(10), 100);
  auto v = cache.Get(1);
  ASSERT_TRUE(v != nullptr);
  EXPECT_EQ(*v, 10);
  EXPECT_EQ(cache.Get(2), nullptr);
}

TEST(LrfuCacheTest, EvictsWhenFull) {
  LrfuCache<int, std::shared_ptr<int>> cache(300);
  cache.Put(1, std::make_shared<int>(1), 100);
  cache.Put(2, std::make_shared<int>(2), 100);
  cache.Put(3, std::make_shared<int>(3), 100);
  EXPECT_EQ(cache.size(), 3u);
  cache.Put(4, std::make_shared<int>(4), 100);
  EXPECT_EQ(cache.size(), 3u);
  EXPECT_LE(cache.used_bytes(), 300u);
}

TEST(LrfuCacheTest, FrequentlyUsedSurvivesScan) {
  LrfuCache<int, std::shared_ptr<int>> cache(500, 0.05);
  cache.Put(0, std::make_shared<int>(0), 100);
  for (int rep = 0; rep < 20; ++rep) cache.Get(0);  // make entry 0 hot
  // A scan of one-touch entries should not evict the hot entry.
  for (int i = 1; i <= 20; ++i) cache.Put(i, std::make_shared<int>(i), 100);
  EXPECT_NE(cache.Get(0), nullptr);
}

TEST(LrfuCacheTest, EraseIf) {
  LrfuCache<int, std::shared_ptr<int>> cache(10000);
  for (int i = 0; i < 10; ++i) cache.Put(i, std::make_shared<int>(i), 10);
  cache.EraseIf([](const int& k) { return k % 2 == 0; });
  EXPECT_EQ(cache.size(), 5u);
  EXPECT_EQ(cache.Get(2), nullptr);
  EXPECT_NE(cache.Get(3), nullptr);
}

TEST(LrfuCacheTest, OversizedEntryRejected) {
  LrfuCache<int, std::shared_ptr<int>> cache(100);
  EXPECT_FALSE(cache.Put(1, std::make_shared<int>(1), 200));
  EXPECT_EQ(cache.size(), 0u);
}

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) pool.Submit([&count] { count.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, WaitIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.Submit([&count] { count.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(count.load(), 1);
  pool.Submit([&count] { count.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(count.load(), 2);
}

TEST(RngTest, Deterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, RangeBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.Range(5, 10);
    EXPECT_GE(v, 5);
    EXPECT_LE(v, 10);
  }
}

}  // namespace
}  // namespace hive
