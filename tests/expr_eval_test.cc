#include <gtest/gtest.h>

#include "exec/vector_eval.h"
#include "optimizer/expr_eval.h"
#include "sql/parser.h"

namespace hive {
namespace {

/// Parses a standalone expression by wrapping it into SELECT <expr>.
ExprPtr ParseExpr(const std::string& text) {
  auto stmt = Parser::Parse("SELECT " + text);
  EXPECT_TRUE(stmt.ok()) << stmt.status().ToString();
  auto* select = dynamic_cast<SelectStatement*>(stmt->get());
  return select->select.body->core.items[0].expr;
}

/// Minimal manual type assignment for literal-only trees.
void TypeLiterals(const ExprPtr& e) {
  if (!e) return;
  for (const ExprPtr& c : e->children) TypeLiterals(c);
  if (e->kind == ExprKind::kLiteral) {
    e->type.kind = e->literal.kind();
  } else if (e->kind == ExprKind::kBinary) {
    switch (e->bin_op) {
      case BinaryOp::kAdd:
      case BinaryOp::kSub:
      case BinaryOp::kMul: {
        bool dbl = e->children[0]->type.kind == TypeKind::kDouble ||
                   e->children[1]->type.kind == TypeKind::kDouble;
        e->type = dbl ? DataType::Double() : DataType::Bigint();
        if (e->children[0]->type.kind == TypeKind::kDate) e->type = DataType::Date();
        break;
      }
      case BinaryOp::kDiv: e->type = DataType::Double(); break;
      case BinaryOp::kConcat: e->type = DataType::String(); break;
      default: e->type = DataType::Boolean(); break;
    }
  }
}

Value Eval(const std::string& text) {
  ExprPtr e = ParseExpr(text);
  TypeLiterals(e);
  auto v = EvalExpr(*e, nullptr);
  EXPECT_TRUE(v.ok()) << v.status().ToString() << " for " << text;
  return v.ok() ? *v : Value::Null();
}

TEST(ScalarEvalTest, Arithmetic) {
  EXPECT_EQ(Eval("1 + 2 * 3").i64(), 7);
  EXPECT_EQ(Eval("(1 + 2) * 3").i64(), 9);
  EXPECT_DOUBLE_EQ(Eval("7 / 2").f64(), 3.5);
  EXPECT_EQ(Eval("7 % 3").i64(), 1);
  EXPECT_DOUBLE_EQ(Eval("1.5 + 2.25").f64(), 3.75);
  EXPECT_EQ(Eval("-5 + 3").i64(), -2);
}

TEST(ScalarEvalTest, DivisionByZeroIsNull) {
  EXPECT_TRUE(Eval("1 / 0").is_null());
  EXPECT_TRUE(Eval("1 % 0").is_null());
}

TEST(ScalarEvalTest, ThreeValuedLogic) {
  EXPECT_TRUE(Eval("NULL AND TRUE").is_null());
  EXPECT_FALSE(Eval("NULL AND FALSE").bool_value());  // false dominates
  EXPECT_TRUE(Eval("NULL OR TRUE").bool_value());     // true dominates
  EXPECT_TRUE(Eval("NULL OR FALSE").is_null());
  EXPECT_TRUE(Eval("NOT NULL").is_null());
  EXPECT_TRUE(Eval("NULL = NULL").is_null()) << "NULL never equals NULL";
  EXPECT_TRUE(Eval("1 + NULL").is_null());
}

TEST(ScalarEvalTest, Comparisons) {
  EXPECT_TRUE(Eval("2 < 3").bool_value());
  EXPECT_TRUE(Eval("'abc' < 'abd'").bool_value());
  EXPECT_TRUE(Eval("2 BETWEEN 1 AND 3").bool_value());
  EXPECT_FALSE(Eval("2 NOT BETWEEN 1 AND 3").bool_value());
  EXPECT_TRUE(Eval("2 IN (1, 2, 3)").bool_value());
  EXPECT_FALSE(Eval("5 IN (1, 2, 3)").bool_value());
  EXPECT_TRUE(Eval("5 IN (1, NULL)").is_null()) << "unknown with null candidates";
  EXPECT_TRUE(Eval("NULL IS NULL").bool_value());
  EXPECT_TRUE(Eval("1 IS NOT NULL").bool_value());
}

TEST(ScalarEvalTest, LikePatterns) {
  EXPECT_TRUE(SqlLike("hello", "h%"));
  EXPECT_TRUE(SqlLike("hello", "%llo"));
  EXPECT_TRUE(SqlLike("hello", "h_llo"));
  EXPECT_TRUE(SqlLike("hello", "%"));
  EXPECT_FALSE(SqlLike("hello", "H%"));
  EXPECT_TRUE(SqlLike("", "%"));
  EXPECT_FALSE(SqlLike("", "_"));
  EXPECT_TRUE(SqlLike("abcabc", "%abc"));
  EXPECT_TRUE(SqlLike("a%b", "a%b"));
  EXPECT_TRUE(Eval("'Sports' LIKE 'S%'").bool_value());
  EXPECT_TRUE(Eval("'Sports' NOT LIKE 'B%'").bool_value());
}

TEST(ScalarEvalTest, CaseExpressions) {
  EXPECT_EQ(Eval("CASE WHEN 1 < 2 THEN 'yes' ELSE 'no' END").str(), "yes");
  EXPECT_EQ(Eval("CASE WHEN 1 > 2 THEN 'yes' ELSE 'no' END").str(), "no");
  EXPECT_TRUE(Eval("CASE WHEN 1 > 2 THEN 'yes' END").is_null());
  EXPECT_EQ(Eval("CASE 2 WHEN 1 THEN 'one' WHEN 2 THEN 'two' END").str(), "two");
}

TEST(ScalarEvalTest, StringFunctions) {
  EXPECT_EQ(Eval("UPPER('abc')").str(), "ABC");
  EXPECT_EQ(Eval("LOWER('ABC')").str(), "abc");
  EXPECT_EQ(Eval("'a' || 'b' || 'c'").str(), "abc");
  EXPECT_EQ(Eval("CONCAT('x', 1, 'y')").str(), "x1y");
  EXPECT_EQ(Eval("SUBSTR('hello', 2, 3)").str(), "ell");
  EXPECT_EQ(Eval("SUBSTR('hello', 10)").str(), "");
  EXPECT_EQ(Eval("LENGTH('hello')").i64(), 5);
  EXPECT_EQ(Eval("TRIM('  x  ')").str(), "x");
}

TEST(ScalarEvalTest, NumericFunctions) {
  EXPECT_EQ(Eval("ABS(-7)").i64(), 7);
  EXPECT_DOUBLE_EQ(Eval("ROUND(3.456, 1)").f64(), 3.5);
  EXPECT_EQ(Eval("FLOOR(3.7)").i64(), 3);
  EXPECT_EQ(Eval("CEIL(3.2)").i64(), 4);
  EXPECT_EQ(Eval("GREATEST(1, 5, 3)").i64(), 5);
  EXPECT_EQ(Eval("LEAST(4, 2, 9)").i64(), 2);
  EXPECT_EQ(Eval("COALESCE(NULL, NULL, 7)").i64(), 7);
  EXPECT_TRUE(Eval("COALESCE(NULL, NULL)").is_null());
}

TEST(ScalarEvalTest, DateArithmetic) {
  EXPECT_EQ(Eval("DATE '2018-01-01' + INTERVAL 30 DAY").ToString(), "2018-01-31");
  EXPECT_EQ(Eval("DATE '2018-03-01' - INTERVAL 1 DAY").ToString(), "2018-02-28");
  EXPECT_EQ(Eval("EXTRACT(year FROM DATE '2017-11-05')").i64(), 2017);
  EXPECT_EQ(Eval("EXTRACT(month FROM TIMESTAMP '2017-11-05 10:30:00')").i64(), 11);
  EXPECT_EQ(Eval("EXTRACT(hour FROM TIMESTAMP '2017-11-05 10:30:00')").i64(), 10);
}

TEST(ScalarEvalTest, Casts) {
  EXPECT_EQ(Eval("CAST('42' AS BIGINT)").i64(), 42);
  EXPECT_EQ(Eval("CAST(3.9 AS BIGINT)").i64(), 3);
  EXPECT_EQ(Eval("CAST(1.5 AS DECIMAL(5,2))").ToString(), "1.50");
  EXPECT_EQ(Eval("CAST(42 AS STRING)").str(), "42");
  EXPECT_EQ(Eval("CAST('2018-05-04' AS DATE)").ToString(), "2018-05-04");
}

// --- vectorized interpreter parity ---

RowBatch MakeBatch() {
  Schema schema;
  schema.AddField("a", DataType::Bigint());
  schema.AddField("b", DataType::Double());
  schema.AddField("c", DataType::String());
  schema.AddField("d", DataType::Decimal(7, 2));
  RowBatch batch(schema);
  for (int i = 0; i < 100; ++i) {
    if (i % 10 == 0) {
      batch.column(0)->AppendNull();
    } else {
      batch.column(0)->AppendI64(i);
    }
    batch.column(1)->AppendF64(i * 0.5);
    batch.column(2)->AppendStr(i % 2 ? "odd" : "even");
    batch.column(3)->AppendI64(i * 25);  // i * 0.25 at scale 2
  }
  batch.set_num_rows(100);
  return batch;
}

ExprPtr Col(int binding, DataType type) {
  ExprPtr e = MakeColumnRef("", "c" + std::to_string(binding));
  e->binding = binding;
  e->type = type;
  return e;
}

ExprPtr Lit(Value v) {
  ExprPtr e = MakeLiteral(v);
  e->type.kind = v.kind();
  if (v.kind() == TypeKind::kDecimal) e->type = DataType::Decimal(18, v.scale());
  return e;
}

/// The core property: the vectorized interpreter must agree with the scalar
/// evaluator on every row, for every expression shape it accelerates.
void CheckParity(const ExprPtr& e, const RowBatch& batch) {
  auto vec = EvalVector(*e, batch);
  ASSERT_TRUE(vec.ok()) << vec.status().ToString();
  for (size_t i = 0; i < batch.num_rows(); ++i) {
    std::vector<Value> row;
    for (size_t c = 0; c < batch.num_columns(); ++c)
      row.push_back(batch.column(c)->GetValue(i));
    auto scalar = EvalExpr(*e, &row);
    ASSERT_TRUE(scalar.ok());
    Value from_vec = (*vec)->GetValue(i);
    EXPECT_EQ(from_vec.is_null(), scalar->is_null()) << "row " << i;
    if (!scalar->is_null()) {
      EXPECT_EQ(Value::Compare(from_vec, *scalar), 0)
          << "row " << i << ": " << from_vec.ToString() << " vs "
          << scalar->ToString();
    }
  }
}

TEST(VectorEvalTest, ComparisonKernelsMatchScalar) {
  RowBatch batch = MakeBatch();
  ExprPtr a = Col(0, DataType::Bigint());
  for (BinaryOp op : {BinaryOp::kEq, BinaryOp::kNe, BinaryOp::kLt, BinaryOp::kLe,
                      BinaryOp::kGt, BinaryOp::kGe}) {
    ExprPtr e = MakeBinary(op, a, Lit(Value::Bigint(50)));
    e->type = DataType::Boolean();
    CheckParity(e, batch);
  }
}

TEST(VectorEvalTest, DecimalScaleAlignment) {
  RowBatch batch = MakeBatch();
  // d (scale 2) compared against a bigint literal: must rescale.
  ExprPtr e = MakeBinary(BinaryOp::kGt, Col(3, DataType::Decimal(7, 2)),
                         Lit(Value::Bigint(10)));
  e->type = DataType::Boolean();
  CheckParity(e, batch);
  // d + d keeps the scale.
  ExprPtr sum = MakeBinary(BinaryOp::kAdd, Col(3, DataType::Decimal(7, 2)),
                           Col(3, DataType::Decimal(7, 2)));
  sum->type = DataType::Decimal(18, 2);
  CheckParity(sum, batch);
}

TEST(VectorEvalTest, MixedNumericComparison) {
  RowBatch batch = MakeBatch();
  ExprPtr e = MakeBinary(BinaryOp::kLt, Col(0, DataType::Bigint()),
                         Col(1, DataType::Double()));
  e->type = DataType::Boolean();
  CheckParity(e, batch);
}

TEST(VectorEvalTest, AndOrNullSemantics) {
  RowBatch batch = MakeBatch();
  ExprPtr lhs = MakeBinary(BinaryOp::kGt, Col(0, DataType::Bigint()),
                           Lit(Value::Bigint(30)));
  lhs->type = DataType::Boolean();
  ExprPtr rhs = MakeBinary(BinaryOp::kLt, Col(1, DataType::Double()),
                           Lit(Value::Double(40.0)));
  rhs->type = DataType::Boolean();
  for (BinaryOp op : {BinaryOp::kAnd, BinaryOp::kOr}) {
    ExprPtr e = MakeBinary(op, lhs, rhs);
    e->type = DataType::Boolean();
    CheckParity(e, batch);
  }
}

TEST(VectorEvalTest, RowWiseFallbackForComplexExprs) {
  RowBatch batch = MakeBatch();
  // CASE + LIKE exercise the fallback path.
  auto stmt = Parser::Parse(
      "SELECT CASE WHEN c LIKE 'e%' THEN 1 ELSE 0 END FROM t");
  ASSERT_TRUE(stmt.ok());
  ExprPtr e = dynamic_cast<SelectStatement*>(stmt->get())
                  ->select.body->core.items[0]
                  .expr;
  // Bind manually: c is column 2.
  std::function<void(const ExprPtr&)> bind = [&](const ExprPtr& x) {
    if (!x) return;
    if (x->kind == ExprKind::kColumnRef) {
      x->binding = 2;
      x->type = DataType::String();
    }
    if (x->kind == ExprKind::kLiteral) x->type.kind = x->literal.kind();
    for (const ExprPtr& child : x->children) bind(child);
  };
  bind(e);
  e->type = DataType::Bigint();
  CheckParity(e, batch);
}

TEST(VectorEvalTest, FilterSelectionIntersectsExisting) {
  RowBatch batch = MakeBatch();
  // Pre-select even physical rows.
  std::vector<int32_t> evens;
  for (int32_t i = 0; i < 100; i += 2) evens.push_back(i);
  batch.SetSelection(evens);
  ExprPtr e = MakeBinary(BinaryOp::kGt, Col(0, DataType::Bigint()),
                         Lit(Value::Bigint(50)));
  e->type = DataType::Boolean();
  auto sel = FilterSelection(*e, batch);
  ASSERT_TRUE(sel.ok());
  for (int32_t row : *sel) {
    EXPECT_EQ(row % 2, 0) << "must stay within the prior selection";
    EXPECT_GT(row, 50);
  }
  // 52..98 even, minus null rows (60, 70, 80, 90): 24 - 4 = 20.
  EXPECT_EQ(sel->size(), 20u);
}

}  // namespace
}  // namespace hive
