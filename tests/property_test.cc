#include <gtest/gtest.h>

#include <map>
#include <set>
#include <tuple>

#include "common/rng.h"
#include "fs/mem_filesystem.h"
#include "storage/acid.h"
#include "storage/cof.h"

namespace hive {
namespace {

Schema MixedSchema() {
  Schema s;
  s.AddField("k", DataType::Bigint());
  s.AddField("price", DataType::Decimal(9, 2));
  s.AddField("tag", DataType::String());
  s.AddField("score", DataType::Double());
  return s;
}

std::vector<std::vector<Value>> GenerateRows(size_t n, int null_percent,
                                             uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<Value>> rows;
  rows.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    auto maybe_null = [&](Value v) {
      return rng.Uniform(100) < static_cast<uint64_t>(null_percent) ? Value::Null()
                                                                    : v;
    };
    rows.push_back({maybe_null(Value::Bigint(rng.Range(-1000, 1000))),
                    maybe_null(Value::Decimal(rng.Range(0, 100000), 2)),
                    maybe_null(Value::String("tag" + std::to_string(rng.Uniform(7)))),
                    maybe_null(Value::Double(rng.NextDouble() * 100))});
  }
  return rows;
}

// ---------------------------------------------------------------------------
// Property sweep 1: COF round-trip over a grid of row-group sizes, null
// densities and row counts. Invariants: every value (incl. NULLs) survives;
// file stats match; sarg-based skipping is SOUND (skipped row groups never
// contain matching rows).
// ---------------------------------------------------------------------------

using CofParam = std::tuple<size_t /*row_group*/, int /*null%*/, size_t /*rows*/,
                            bool /*bloom*/>;

class CofRoundTrip : public ::testing::TestWithParam<CofParam> {};

TEST_P(CofRoundTrip, PreservesDataAndSkipsSoundly) {
  auto [row_group, null_percent, num_rows, bloom] = GetParam();
  MemFileSystem fs;
  Schema schema = MixedSchema();
  CofWriteOptions options;
  options.row_group_size = row_group;
  if (bloom) options.bloom_columns = {"k"};
  auto rows = GenerateRows(num_rows, null_percent, 42 + num_rows);

  CofWriter writer(schema, options);
  for (const auto& row : rows) writer.AppendRow(row);
  auto bytes = writer.Finish();
  ASSERT_TRUE(bytes.ok());
  ASSERT_TRUE(fs.WriteFile("/f", *bytes).ok());
  auto reader = CofReader::Open(&fs, "/f");
  ASSERT_TRUE(reader.ok());
  ASSERT_EQ((*reader)->NumRows(), num_rows);

  // Round-trip equality, row by row.
  size_t global = 0;
  for (size_t rg = 0; rg < (*reader)->num_row_groups(); ++rg) {
    auto batch = (*reader)->ReadRowGroup(rg, {0, 1, 2, 3});
    ASSERT_TRUE(batch.ok());
    for (size_t i = 0; i < batch->num_rows(); ++i, ++global) {
      for (size_t c = 0; c < 4; ++c) {
        Value got = batch->column(c)->GetValue(i);
        const Value& want = rows[global][c];
        ASSERT_EQ(got.is_null(), want.is_null()) << "row " << global << " col " << c;
        if (!want.is_null())
          ASSERT_EQ(Value::Compare(got, want), 0)
              << "row " << global << " col " << c << ": " << got.ToString()
              << " != " << want.ToString();
      }
    }
  }
  ASSERT_EQ(global, num_rows);

  // Sarg soundness: for several point/range probes, every matching row must
  // live in a row group that MightMatch did NOT skip.
  Rng probe_rng(7);
  for (int probe = 0; probe < 20; ++probe) {
    Value needle = Value::Bigint(probe_rng.Range(-1000, 1000));
    SearchArgument sarg;
    sarg.conjuncts.push_back({"k", SargOp::kEq, {needle}, nullptr});
    size_t base = 0;
    for (size_t rg = 0; rg < (*reader)->num_row_groups(); ++rg) {
      size_t rg_rows = (*reader)->row_group(rg).num_rows;
      if (!(*reader)->MightMatch(rg, sarg)) {
        for (size_t i = 0; i < rg_rows; ++i) {
          const Value& v = rows[base + i][0];
          ASSERT_TRUE(v.is_null() || Value::Compare(v, needle) != 0)
              << "skipped row group contains matching row";
        }
      }
      base += rg_rows;
    }
  }

  // File-level stats match the data.
  ColumnChunkStats stats = (*reader)->FileStats(0);
  Value min, max;
  uint64_t nulls = 0;
  for (const auto& row : rows) {
    if (row[0].is_null()) {
      ++nulls;
      continue;
    }
    if (min.is_null() || Value::Compare(row[0], min) < 0) min = row[0];
    if (max.is_null() || Value::Compare(row[0], max) > 0) max = row[0];
  }
  EXPECT_EQ(stats.null_count, nulls);
  if (!min.is_null()) {
    EXPECT_EQ(Value::Compare(stats.min, min), 0);
    EXPECT_EQ(Value::Compare(stats.max, max), 0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, CofRoundTrip,
    ::testing::Combine(::testing::Values<size_t>(16, 128, 4096),
                       ::testing::Values(0, 15, 90),
                       ::testing::Values<size_t>(1, 100, 3000),
                       ::testing::Bool()));

// ---------------------------------------------------------------------------
// Property sweep 2: ACID snapshot correctness against a reference model.
// A random history of insert/delete transactions (some aborted) is applied;
// for EVERY prefix snapshot, the ACID scan must equal a trivial in-memory
// model replay.
// ---------------------------------------------------------------------------

class AcidModelCheck : public ::testing::TestWithParam<uint64_t /*seed*/> {};

TEST_P(AcidModelCheck, EverysnapshotMatchesModel) {
  uint64_t seed = GetParam();
  Rng rng(seed);
  MemFileSystem fs;
  Schema schema;
  schema.AddField("v", DataType::Bigint());

  struct ModelRow {
    int64_t write_id;
    int64_t row_id;
    int64_t value;
  };
  // Model state per committed write id: rows inserted and record ids deleted.
  std::map<int64_t, std::vector<ModelRow>> inserted_by_wid;
  std::map<int64_t, std::vector<RecordId>> deleted_by_wid;
  std::set<int64_t> aborted;
  std::vector<ModelRow> live_pool;  // committed rows, candidates for deletion

  const int kTxns = 25;
  for (int64_t wid = 1; wid <= kTxns; ++wid) {
    AcidWriter writer(&fs, "/t", schema, wid);
    bool abort = rng.Uniform(5) == 0;
    std::vector<ModelRow> txn_rows;
    std::vector<RecordId> txn_deletes;
    int inserts = static_cast<int>(rng.Range(0, 4));
    for (int i = 0; i < inserts; ++i) {
      int64_t value = rng.Range(0, 1000);
      writer.Insert({Value::Bigint(value)});
      txn_rows.push_back({wid, static_cast<int64_t>(i), value});
    }
    if (!live_pool.empty() && rng.Uniform(2) == 0) {
      size_t victim = rng.Uniform(live_pool.size());
      RecordId id{live_pool[victim].write_id, 0, live_pool[victim].row_id};
      writer.Delete(id);
      txn_deletes.push_back(id);
    }
    ASSERT_TRUE(writer.Commit().ok());
    if (abort) {
      aborted.insert(wid);
    } else {
      inserted_by_wid[wid] = txn_rows;
      deleted_by_wid[wid] = txn_deletes;
      for (const auto& row : txn_rows) live_pool.push_back(row);
    }
  }

  // Check every prefix snapshot (hwm from 0..kTxns), excluding aborted ids.
  for (int64_t hwm = 0; hwm <= kTxns; ++hwm) {
    ValidWriteIdList snapshot;
    snapshot.high_watermark = hwm;
    for (int64_t a : aborted)
      if (a <= hwm) snapshot.exceptions.insert(a);

    // Model replay.
    std::multiset<int64_t> expected;
    std::set<std::tuple<int64_t, int64_t>> deleted;
    for (int64_t wid = 1; wid <= hwm; ++wid) {
      if (aborted.count(wid)) continue;
      for (const RecordId& id : deleted_by_wid[wid])
        deleted.insert({id.write_id, id.row_id});
    }
    for (int64_t wid = 1; wid <= hwm; ++wid) {
      if (aborted.count(wid)) continue;
      for (const ModelRow& row : inserted_by_wid[wid])
        if (!deleted.count({row.write_id, row.row_id})) expected.insert(row.value);
    }

    // Engine scan.
    AcidReader reader(&fs, "/t", schema);
    ASSERT_TRUE(reader.Open(snapshot, {}).ok());
    std::multiset<int64_t> got;
    bool done = false;
    for (;;) {
      auto batch = reader.NextBatch(&done);
      ASSERT_TRUE(batch.ok());
      if (done) break;
      for (size_t i = 0; i < batch->SelectedSize(); ++i)
        got.insert(batch->GetRow(i)[0].i64());
    }
    ASSERT_EQ(got, expected) << "seed " << seed << " hwm " << hwm;
  }

  // The same invariant must hold after minor+major compaction for the full
  // snapshot (compaction never changes visible data).
  ValidWriteIdList full;
  full.high_watermark = kTxns;
  for (int64_t a : aborted) full.exceptions.insert(a);
  Compactor compactor(&fs, "/t", schema);
  ASSERT_TRUE(compactor.RunMinor(full).ok());
  ASSERT_TRUE(compactor.RunMajor(full).ok());
  ASSERT_TRUE(compactor.Clean(full).ok());

  std::multiset<int64_t> expected;
  {
    std::set<std::tuple<int64_t, int64_t>> deleted;
    for (const auto& [wid, ids] : deleted_by_wid)
      for (const RecordId& id : ids) deleted.insert({id.write_id, id.row_id});
    for (const auto& [wid, rows] : inserted_by_wid)
      for (const ModelRow& row : rows)
        if (!deleted.count({row.write_id, row.row_id})) expected.insert(row.value);
  }
  AcidReader reader(&fs, "/t", schema);
  ASSERT_TRUE(reader.Open(full, {}).ok());
  std::multiset<int64_t> got;
  bool done = false;
  for (;;) {
    auto batch = reader.NextBatch(&done);
    ASSERT_TRUE(batch.ok());
    if (done) break;
    for (size_t i = 0; i < batch->SelectedSize(); ++i)
      got.insert(batch->GetRow(i)[0].i64());
  }
  EXPECT_EQ(got, expected) << "post-compaction divergence, seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, AcidModelCheck,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

// ---------------------------------------------------------------------------
// Property sweep 3: Value total-order and hash consistency over random
// value pairs (join/group-by correctness depends on these).
// ---------------------------------------------------------------------------

class ValueOrderProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ValueOrderProperty, OrderIsTotalAndHashConsistent) {
  Rng rng(GetParam());
  auto random_value = [&]() -> Value {
    switch (rng.Uniform(5)) {
      case 0: return Value::Null();
      case 1: return Value::Bigint(rng.Range(-50, 50));
      case 2: return Value::Double(static_cast<double>(rng.Range(-50, 50)));
      case 3: return Value::Decimal(rng.Range(-5000, 5000), 2);
      default: return Value::String(std::string(1, 'a' + rng.Uniform(5)));
    }
  };
  std::vector<Value> values;
  for (int i = 0; i < 60; ++i) values.push_back(random_value());
  for (const Value& a : values) {
    EXPECT_EQ(Value::Compare(a, a), 0) << "reflexive";
    for (const Value& b : values) {
      int ab = Value::Compare(a, b);
      int ba = Value::Compare(b, a);
      EXPECT_EQ(ab > 0, ba < 0) << "antisymmetric: " << a.ToString() << " vs "
                                << b.ToString();
      EXPECT_EQ(ab == 0, ba == 0);
      if (ab == 0 && !a.is_null())
        EXPECT_EQ(a.Hash(), b.Hash())
            << "equal values must hash equal: " << a.ToString() << " / "
            << b.ToString();
      for (const Value& c : values) {
        if (ab <= 0 && Value::Compare(b, c) <= 0)
          EXPECT_LE(Value::Compare(a, c), 0)
              << "transitive: " << a.ToString() << " <= " << b.ToString()
              << " <= " << c.ToString();
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ValueOrderProperty, ::testing::Values(11, 22, 33));

}  // namespace
}  // namespace hive
