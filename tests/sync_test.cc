#include "common/sync.h"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

// TSan ships its own lock-order-inversion detector, which (correctly)
// flags the *intentional* inversions these tests feed hive's detector; skip
// those cases under TSan so scripts/run_tsan.sh still covers the rest.
#if defined(__SANITIZE_THREAD__)
#define HIVE_TSAN_ACTIVE 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define HIVE_TSAN_ACTIVE 1
#endif
#endif
#ifdef HIVE_TSAN_ACTIVE
#define HIVE_SKIP_UNDER_TSAN() \
  GTEST_SKIP() << "intentional lock-order inversion; TSan flags it by design"
#else
#define HIVE_SKIP_UNDER_TSAN() (void)0
#endif

namespace hive {
namespace {

// The detector is compiled in for tier-1 runs (HIVE_LOCK_ORDER_CHECKS
// defaults ON); these tests are the executable spec for its behavior.
#ifdef HIVE_LOCK_ORDER_CHECKS

class LockOrderTest : public ::testing::Test {
 protected:
  void SetUp() override { lockorder::ResetForTests(); }
  void TearDown() override { lockorder::ResetForTests(); }
};

TEST_F(LockOrderTest, FlagsInvertedAcquisitionOrder) {
  HIVE_SKIP_UNDER_TSAN();
  Mutex a("test.order.a");
  Mutex b("test.order.b");
  {
    MutexLock la(&a);
    MutexLock lb(&b);  // records a→b
  }
  ASSERT_EQ(lockorder::ViolationCount(), 0u);
  {
    MutexLock lb(&b);
    MutexLock la(&a);  // b→a closes the cycle: flagged, not deadlocked
  }
  ASSERT_EQ(lockorder::ViolationCount(), 1u);
  std::vector<lockorder::Violation> v = lockorder::Violations();
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].acquiring, "test.order.a");
  EXPECT_EQ(v[0].conflicting, "test.order.b");
  ASSERT_EQ(v[0].current_stack.size(), 1u) << "b was held at the bad acquire";
  EXPECT_EQ(v[0].current_stack[0], "test.order.b");
  ASSERT_EQ(v[0].prior_stack.size(), 1u) << "a was held when a→b was learned";
  EXPECT_EQ(v[0].prior_stack[0], "test.order.a");
  // The report names both locks; it is what lands in stderr/logs.
  std::string report = v[0].Report();
  EXPECT_NE(report.find("test.order.a"), std::string::npos);
  EXPECT_NE(report.find("test.order.b"), std::string::npos);
}

TEST_F(LockOrderTest, ReportsEachCycleOnce) {
  HIVE_SKIP_UNDER_TSAN();
  Mutex a("test.once.a");
  Mutex b("test.once.b");
  for (int i = 0; i < 3; ++i) {
    MutexLock la(&a);
    MutexLock lb(&b);
  }
  for (int i = 0; i < 3; ++i) {
    MutexLock lb(&b);
    MutexLock la(&a);
  }
  EXPECT_EQ(lockorder::ViolationCount(), 1u)
      << "the same inverted edge must not spam one report per acquisition";
}

TEST_F(LockOrderTest, ConsistentNestingStaysClean) {
  Mutex a("test.nest.a");
  Mutex b("test.nest.b");
  Mutex c("test.nest.c");
  for (int i = 0; i < 4; ++i) {
    MutexLock la(&a);
    MutexLock lb(&b);
    MutexLock lc(&c);
  }
  {
    // Skipping a level is consistent with a→b→c, not a new ordering.
    MutexLock la(&a);
    MutexLock lc(&c);
  }
  EXPECT_EQ(lockorder::ViolationCount(), 0u);
}

TEST_F(LockOrderTest, FlagsTransitiveCycle) {
  HIVE_SKIP_UNDER_TSAN();
  Mutex a("test.trans.a");
  Mutex b("test.trans.b");
  Mutex c("test.trans.c");
  {
    MutexLock la(&a);
    MutexLock lb(&b);  // a→b
  }
  {
    MutexLock lb(&b);
    MutexLock lc(&c);  // b→c
  }
  {
    MutexLock lc(&c);
    MutexLock la(&a);  // c→a closes a→b→c→a
  }
  ASSERT_EQ(lockorder::ViolationCount(), 1u);
  std::vector<lockorder::Violation> v = lockorder::Violations();
  EXPECT_EQ(v[0].acquiring, "test.trans.a");
}

TEST_F(LockOrderTest, FlagsCrossThreadInversion) {
  HIVE_SKIP_UNDER_TSAN();
  // Thread 1 establishes a→b; thread 2 later acquires b→a. The detector
  // must flag it even though the threads never overlap — this is exactly
  // the potential deadlock TSan misses when the schedule is benign.
  Mutex a("test.xthread.a");
  Mutex b("test.xthread.b");
  std::thread t1([&] {
    MutexLock la(&a);
    MutexLock lb(&b);
  });
  t1.join();
  std::thread t2([&] {
    MutexLock lb(&b);
    MutexLock la(&a);
  });
  t2.join();
  EXPECT_EQ(lockorder::ViolationCount(), 1u);
}

TEST_F(LockOrderTest, SeparateCriticalSectionsAreUnordered) {
  // Locks never held together impose no ordering on each other.
  Mutex a("test.flat.a");
  Mutex b("test.flat.b");
  { MutexLock la(&a); }
  { MutexLock lb(&b); }
  { MutexLock lb(&b); }
  { MutexLock la(&a); }
  EXPECT_EQ(lockorder::ViolationCount(), 0u);
}

#endif  // HIVE_LOCK_ORDER_CHECKS

TEST(SyncTest, TryLockReflectsContention) {
  Mutex mu("test.trylock.mu");
  ASSERT_TRUE(mu.TryLock());
  std::atomic<bool> second{true};
  // TryLock of a held mutex must fail (probe from another thread: locking
  // the same std::mutex twice from one thread is UB).
  std::thread probe([&] { second = mu.TryLock(); });
  probe.join();
  EXPECT_FALSE(second.load());
  mu.Unlock();
  ASSERT_TRUE(mu.TryLock());
  mu.Unlock();
}

TEST(SyncTest, MutexLockEarlyRelease) {
  Mutex mu("test.early.mu");
  {
    MutexLock lock(&mu);
    lock.Unlock();  // destructor must not double-unlock after this
    std::atomic<bool> acquired{false};
    std::thread probe([&] {
      MutexLock again(&mu);
      acquired = true;
    });
    probe.join();
    EXPECT_TRUE(acquired.load());
  }
}

TEST(SyncTest, CondVarPredicateLoopHandsOff) {
  Mutex mu("test.cv.mu");
  CondVar cv;
  bool ready = false;
  int observed = 0;
  std::thread waiter([&] {
    MutexLock lock(&mu);
    while (!ready) cv.Wait(lock);
    observed = 42;
  });
  {
    MutexLock lock(&mu);
    ready = true;
  }
  cv.NotifyOne();
  waiter.join();
  EXPECT_EQ(observed, 42);
}

TEST(SyncTest, CondVarWaitReacquiresBeforeReturning) {
  // After Wait returns, the waiter owns the mutex again: a guarded counter
  // incremented by many waiters must never lose updates.
  Mutex mu("test.cv.reacquire.mu");
  CondVar cv;
  bool go = false;
  int counter = 0;
  std::vector<std::thread> waiters;
  for (int i = 0; i < 4; ++i)
    waiters.emplace_back([&] {
      MutexLock lock(&mu);
      while (!go) cv.Wait(lock);
      ++counter;
    });
  {
    MutexLock lock(&mu);
    go = true;
  }
  cv.NotifyAll();
  for (auto& t : waiters) t.join();
  MutexLock lock(&mu);
  EXPECT_EQ(counter, 4);
}

}  // namespace
}  // namespace hive
