#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_pool.h"
#include "exec/exec_context.h"
#include "fs/mem_filesystem.h"
#include "server/hive_server.h"
#include "server/workload_loader.h"

namespace hive {
namespace {

/// Morsel-driven intra-query parallelism: the engine must return the same
/// result at any executor count — parallel scans use an ordered (by-morsel)
/// gather and partial aggregates merge in first-seen input order, so the
/// output is not merely set-equal but identical row for row.
class ParallelExecTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    fs_ = new MemFileSystem();
    Config config;
    config.container_startup_us = 0;
    config.num_executors = 8;  // pool size; sessions scale workers below it
    server_ = new HiveServer2(fs_, config);
    Connection loader = server_->Connect();
    TpcdsOptions options;
    options.days = 6;  // keep the suite fast
    ASSERT_TRUE(LoadTpcds(loader, options).ok());
  }
  static void TearDownTestSuite() {
    delete server_;
    delete fs_;
  }

  /// Session configured for a given worker count (0 = serial engine).
  Connection SessionFor(int workers) {
    Connection session = server_->Connect();
    session.config().result_cache_enabled = false;
    if (workers == 0) {
      session.config().parallel_scan_enabled = false;
    } else {
      session.config().num_executors = workers;
    }
    return session;
  }

  static std::vector<std::string> Rows(const QueryResult& result) {
    std::vector<std::string> out;
    out.reserve(result.rows.size());
    for (const auto& row : result.rows) {
      std::string line;
      for (const Value& v : row) {
        line += v.ToString();
        line += '|';
      }
      out.push_back(std::move(line));
    }
    return out;
  }

  static MemFileSystem* fs_;
  static HiveServer2* server_;
};

MemFileSystem* ParallelExecTest::fs_ = nullptr;
HiveServer2* ParallelExecTest::server_ = nullptr;

TEST_F(ParallelExecTest, TpcdsIdenticalAcrossExecutorCounts) {
  Connection serial = SessionFor(0);
  for (const BenchQuery& q : TpcdsQueries()) {
    auto baseline = serial.Execute(q.sql);
    ASSERT_TRUE(baseline.ok()) << q.name << ": " << baseline.status().ToString();
    std::vector<std::string> expected = Rows(*baseline);
    for (int workers : {1, 2, 8}) {
      Connection session = SessionFor(workers);
      auto result = session.Execute(q.sql);
      ASSERT_TRUE(result.ok())
          << q.name << " @" << workers << ": " << result.status().ToString();
      EXPECT_EQ(Rows(*result), expected)
          << q.name << " differs at " << workers << " executors";
    }
  }
}

TEST_F(ParallelExecTest, UnorderedScanPreservesSerialRowOrder) {
  // No ORDER BY: the ordered morsel gather must still reproduce the serial
  // engine's row order exactly, at every worker count.
  const std::string sql =
      "SELECT ss_item_sk, ss_quantity, ss_sales_price FROM store_sales "
      "WHERE ss_quantity > 10";
  Connection serial = SessionFor(0);
  auto baseline = serial.Execute(sql);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
  ASSERT_GT(baseline->rows.size(), 0u);
  for (int workers : {1, 2, 8}) {
    Connection session = SessionFor(workers);
    auto result = session.Execute(sql);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(Rows(*result), Rows(*baseline))
        << "row order diverged at " << workers << " executors";
  }
}

TEST_F(ParallelExecTest, ScanPipelinesFanOutAcrossExecutors) {
  // A parallel aggregation over the partitioned fact table must actually
  // fan worker fragments out to the LLAP executor pool (the coordinator
  // fragment alone would leave the counter at +1).
  Connection session = SessionFor(8);
  int64_t before = server_->llap()->fragments_submitted();
  auto result = session.Execute("SELECT ss_store_sk, COUNT(*), SUM(ss_quantity) FROM store_sales "
      "GROUP BY ss_store_sk");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(server_->llap()->fragments_submitted(), before + 1)
      << "expected intra-query worker fragments beyond the coordinator";
}

TEST(ThreadPoolTest, SubmitOrRunFallsBackInlineWhenSaturated) {
  ThreadPool pool(2);
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  std::atomic<int> blocked{0};
  // Saturate both pool threads.
  for (int i = 0; i < 2; ++i)
    pool.Submit([&] {
      blocked.fetch_add(1);
      std::unique_lock<std::mutex> lock(mu);
      cv.wait(lock, [&] { return release; });
    });
  while (blocked.load() < 2) std::this_thread::yield();

  // With no free executor the task must run inline on the caller — this is
  // what makes nested coordinator->worker fan-out deadlock-free.
  std::thread::id caller = std::this_thread::get_id();
  std::thread::id ran_on;
  pool.SubmitOrRun([&] { ran_on = std::this_thread::get_id(); });
  EXPECT_EQ(ran_on, caller);

  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  pool.Wait();

  // An idle pool runs SubmitOrRun tasks on pool threads, not the caller.
  ThreadPool idle(2);
  std::atomic<bool> done{false};
  std::thread::id async_id;
  idle.SubmitOrRun([&] {
    async_id = std::this_thread::get_id();
    done.store(true);
  });
  while (!done.load()) std::this_thread::yield();
  EXPECT_NE(async_id, caller);
  idle.Wait();
}

TEST(RuntimeStatsTest, RecordAccumulatesAcrossWorkers) {
  // Parallel workers each record their partial row counts under the same
  // operator digest; totals must be the sum, not the last writer's value.
  RuntimeStats stats;
  stats.Record("scan-digest", 5);
  stats.Record("scan-digest", 7);
  stats.Record("filter-digest", 3);
  MutexLock lock(&stats.mu);
  EXPECT_EQ(stats.rows_produced["scan-digest"], 12);
  EXPECT_EQ(stats.rows_produced["filter-digest"], 3);
}

}  // namespace
}  // namespace hive
