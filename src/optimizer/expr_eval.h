#ifndef HIVE_OPTIMIZER_EXPR_EVAL_H_
#define HIVE_OPTIMIZER_EXPR_EVAL_H_

#include <vector>

#include "common/ast.h"

namespace hive {

/// Row-at-a-time evaluator for bound expressions. Used by the optimizer for
/// constant folding and static partition pruning, and by the execution
/// engine as the general (non-vectorized-kernel) path inside vectorized
/// operators: the operator loops the evaluator over a batch.
///
/// `row` supplies the values for column bindings; a null pointer is only
/// valid for expressions without column references.
Result<Value> EvalExpr(const Expr& e, const std::vector<Value>* row);

/// SQL LIKE with % and _ wildcards.
bool SqlLike(const std::string& text, const std::string& pattern);

/// Three-valued-logic helpers: SQL comparisons return NULL when either side
/// is NULL; this evaluator models NULL as Value::Null() of boolean type.
inline bool IsTrue(const Value& v) { return !v.is_null() && v.bool_value(); }

}  // namespace hive

#endif  // HIVE_OPTIMIZER_EXPR_EVAL_H_
