#include "optimizer/rel.h"

namespace hive {

namespace {
const char* KindName(RelKind kind) {
  switch (kind) {
    case RelKind::kScan: return "Scan";
    case RelKind::kValues: return "Values";
    case RelKind::kFilter: return "Filter";
    case RelKind::kProject: return "Project";
    case RelKind::kJoin: return "Join";
    case RelKind::kAggregate: return "Aggregate";
    case RelKind::kWindow: return "Window";
    case RelKind::kSort: return "Sort";
    case RelKind::kLimit: return "Limit";
    case RelKind::kUnion: return "Union";
    case RelKind::kMinus: return "Except";
    case RelKind::kIntersect: return "Intersect";
  }
  return "?";
}

const char* JoinName(TableRef::JoinType type) {
  switch (type) {
    case TableRef::JoinType::kInner: return "inner";
    case TableRef::JoinType::kLeft: return "left";
    case TableRef::JoinType::kRight: return "right";
    case TableRef::JoinType::kFull: return "full";
    case TableRef::JoinType::kCross: return "cross";
    case TableRef::JoinType::kSemi: return "semi";
    case TableRef::JoinType::kAnti: return "anti";
  }
  return "?";
}
}  // namespace

std::string RelNode::Digest() const {
  std::string out = KindName(kind);
  out += "(";
  switch (kind) {
    case RelKind::kScan: {
      out += table.FullName();
      out += " cols=[";
      for (size_t i = 0; i < projected.size(); ++i) {
        if (i) out += ",";
        out += std::to_string(projected[i]);
      }
      out += "]";
      for (const ExprPtr& f : scan_filters) out += " " + f->ToString();
      if (partitions_pruned)
        out += " parts=" + std::to_string(pruned_partitions.size());
      break;
    }
    case RelKind::kValues:
      out += std::to_string(rows.size()) + " rows";
      break;
    case RelKind::kFilter:
      out += predicate ? predicate->ToString() : "";
      break;
    case RelKind::kProject:
      out += ExprListToString(exprs);
      break;
    case RelKind::kJoin:
      out += JoinName(join_type);
      if (condition) out += " on " + condition->ToString();
      break;
    case RelKind::kAggregate:
      out += "keys=[" + ExprListToString(group_keys) + "] aggs=[";
      for (size_t i = 0; i < aggs.size(); ++i) {
        if (i) out += ",";
        out += aggs[i].func;
        if (aggs[i].distinct) out += " DISTINCT";
        if (aggs[i].arg) out += "(" + aggs[i].arg->ToString() + ")";
      }
      out += "]";
      break;
    case RelKind::kWindow:
      for (const WindowCall& w : window_calls) out += w.func + " ";
      break;
    case RelKind::kSort:
      for (size_t i = 0; i < sort_keys.size(); ++i) {
        if (i) out += ",";
        out += sort_keys[i].first->ToString();
        out += sort_keys[i].second ? " asc" : " desc";
      }
      if (limit >= 0) out += " fetch=" + std::to_string(limit);
      break;
    case RelKind::kLimit:
      out += std::to_string(limit);
      break;
    default:
      break;
  }
  out += ")[";
  for (size_t i = 0; i < inputs.size(); ++i) {
    if (i) out += ",";
    out += inputs[i]->Digest();
  }
  out += "]";
  return out;
}

std::string RelNode::ToString(int indent) const {
  std::string pad(static_cast<size_t>(indent) * 2, ' ');
  std::string out = pad + KindName(kind);
  switch (kind) {
    case RelKind::kScan:
      out += " " + table.FullName();
      if (!scan_filters.empty()) {
        out += " filters: ";
        for (size_t i = 0; i < scan_filters.size(); ++i) {
          if (i) out += " AND ";
          out += scan_filters[i]->ToString();
        }
      }
      if (partitions_pruned)
        out += " partitions: " + std::to_string(pruned_partitions.size());
      if (!semijoin_reducers.empty())
        out += " semijoin-reducers: " + std::to_string(semijoin_reducers.size());
      break;
    case RelKind::kFilter:
      out += " " + (predicate ? predicate->ToString() : "");
      break;
    case RelKind::kProject: {
      out += " [";
      for (size_t i = 0; i < exprs.size(); ++i) {
        if (i) out += ", ";
        out += schema.field(i).name + "=" + exprs[i]->ToString();
      }
      out += "]";
      break;
    }
    case RelKind::kJoin:
      out += std::string(" ") + JoinName(join_type);
      if (condition) out += " on " + condition->ToString();
      break;
    case RelKind::kAggregate: {
      out += " keys=[" + ExprListToString(group_keys) + "]";
      out += " aggs=[";
      for (size_t i = 0; i < aggs.size(); ++i) {
        if (i) out += ", ";
        out += aggs[i].func + (aggs[i].arg ? "(" + aggs[i].arg->ToString() + ")" : "(*)");
      }
      out += "]";
      break;
    }
    case RelKind::kSort:
      if (limit >= 0) out += " fetch=" + std::to_string(limit);
      break;
    case RelKind::kLimit:
      out += " " + std::to_string(limit);
      break;
    default:
      break;
  }
  if (row_estimate >= 0) out += "  (rows=" + std::to_string(static_cast<int64_t>(row_estimate)) + ")";
  out += "\n";
  for (const RelNodePtr& input : inputs) out += input->ToString(indent + 1);
  return out;
}

RelNodePtr MakeFilter(RelNodePtr input, ExprPtr predicate) {
  auto node = std::make_shared<RelNode>();
  node->kind = RelKind::kFilter;
  node->schema = input->schema;
  node->inputs = {std::move(input)};
  node->predicate = std::move(predicate);
  return node;
}

RelNodePtr MakeProject(RelNodePtr input, std::vector<ExprPtr> exprs,
                       std::vector<std::string> names) {
  auto node = std::make_shared<RelNode>();
  node->kind = RelKind::kProject;
  for (size_t i = 0; i < exprs.size(); ++i)
    node->schema.AddField(i < names.size() ? names[i] : "_c" + std::to_string(i),
                          exprs[i]->type);
  node->inputs = {std::move(input)};
  node->exprs = std::move(exprs);
  return node;
}

RelNodePtr MakeJoin(TableRef::JoinType type, RelNodePtr left, RelNodePtr right,
                    ExprPtr condition) {
  auto node = std::make_shared<RelNode>();
  node->kind = RelKind::kJoin;
  node->join_type = type;
  // Semi/anti joins output only the left side.
  node->schema = left->schema;
  if (type != TableRef::JoinType::kSemi && type != TableRef::JoinType::kAnti) {
    for (const Field& f : right->schema.fields()) node->schema.AddField(f.name, f.type);
  }
  node->inputs = {std::move(left), std::move(right)};
  node->condition = std::move(condition);
  return node;
}

RelNodePtr MakeLimit(RelNodePtr input, int64_t limit) {
  auto node = std::make_shared<RelNode>();
  node->kind = RelKind::kLimit;
  node->schema = input->schema;
  node->inputs = {std::move(input)};
  node->limit = limit;
  return node;
}

void ForEachExpr(RelNode* node, const std::function<void(ExprPtr&)>& fn) {
  auto apply = [&fn](ExprPtr& e) {
    if (e) fn(e);
  };
  for (ExprPtr& e : node->scan_filters) apply(e);
  if (node->predicate) apply(node->predicate);
  for (ExprPtr& e : node->exprs) apply(e);
  if (node->condition) apply(node->condition);
  for (ExprPtr& e : node->group_keys) apply(e);
  for (AggCall& agg : node->aggs) apply(agg.arg);
  for (WindowCall& w : node->window_calls) {
    apply(w.arg);
    for (ExprPtr& e : w.partition_by) apply(e);
    for (auto& [e, asc] : w.order_by) apply(e);
  }
  for (auto& [e, asc] : node->sort_keys) apply(e);
}

ExprPtr CloneExpr(const ExprPtr& e) {
  if (!e) return nullptr;
  auto copy = std::make_shared<Expr>(*e);
  copy->children.clear();
  for (const ExprPtr& child : e->children) copy->children.push_back(CloneExpr(child));
  if (e->window) {
    copy->window = std::make_shared<WindowSpec>();
    for (const ExprPtr& p : e->window->partition_by)
      copy->window->partition_by.push_back(CloneExpr(p));
    for (const auto& [o, asc] : e->window->order_by)
      copy->window->order_by.push_back({CloneExpr(o), asc});
  }
  return copy;
}

void CollectBindings(const ExprPtr& e, std::vector<bool>* used) {
  if (!e) return;
  if (e->kind == ExprKind::kColumnRef && e->binding >= 0 &&
      static_cast<size_t>(e->binding) < used->size())
    (*used)[e->binding] = true;
  for (const ExprPtr& child : e->children) CollectBindings(child, used);
  if (e->window) {
    for (const ExprPtr& p : e->window->partition_by) CollectBindings(p, used);
    for (const auto& [o, asc] : e->window->order_by) CollectBindings(o, used);
  }
}

void RemapBindings(const ExprPtr& e, const std::vector<int>& mapping) {
  if (!e) return;
  if (e->kind == ExprKind::kColumnRef && e->binding >= 0 &&
      static_cast<size_t>(e->binding) < mapping.size())
    e->binding = mapping[e->binding];
  for (const ExprPtr& child : e->children) RemapBindings(child, mapping);
  if (e->window) {
    for (const ExprPtr& p : e->window->partition_by) RemapBindings(p, mapping);
    for (const auto& [o, asc] : e->window->order_by) RemapBindings(o, mapping);
  }
}

bool ExprContainsFunction(const ExprPtr& e, const std::string& func_name) {
  if (!e) return false;
  if (e->kind == ExprKind::kFunction && e->func_name == func_name) return true;
  for (const ExprPtr& child : e->children)
    if (ExprContainsFunction(child, func_name)) return true;
  return false;
}

}  // namespace hive
