#include "optimizer/rules.h"

#include <algorithm>
#include <set>

#include "optimizer/binder.h"
#include "optimizer/expr_eval.h"
#include "optimizer/stats.h"

namespace hive {

namespace {

bool IsDeterministicFunc(const std::string& f) {
  return f != "RAND" && f != "CURRENT_DATE" && f != "CURRENT_TIMESTAMP" &&
         f != "UNIX_TIMESTAMP";
}

bool IsFoldable(const ExprPtr& e) {
  if (!e) return false;
  switch (e->kind) {
    case ExprKind::kColumnRef:
    case ExprKind::kStar:
    case ExprKind::kSubquery:
    case ExprKind::kParam:
      return false;
    case ExprKind::kFunction:
      if (!IsDeterministicFunc(e->func_name) || e->window ||
          IsAggregateFunction(e->func_name))
        return false;
      break;
    default:
      break;
  }
  for (const ExprPtr& c : e->children)
    if (!IsFoldable(c)) return false;
  return true;
}

ExprPtr FoldExpr(ExprPtr e) {
  if (!e) return e;
  for (ExprPtr& c : e->children) c = FoldExpr(c);
  // Logical simplifications with constant sides.
  if (e->kind == ExprKind::kBinary &&
      (e->bin_op == BinaryOp::kAnd || e->bin_op == BinaryOp::kOr)) {
    bool is_and = e->bin_op == BinaryOp::kAnd;
    for (int side = 0; side < 2; ++side) {
      const ExprPtr& c = e->children[side];
      if (c->kind == ExprKind::kLiteral && c->literal.kind() == TypeKind::kBoolean) {
        bool value = c->literal.bool_value();
        if (is_and && value) return e->children[1 - side];
        if (!is_and && !value) return e->children[1 - side];
        if (is_and && !value) return c;  // FALSE
        if (!is_and && value) return c;  // TRUE
      }
    }
  }
  if (e->kind != ExprKind::kLiteral && IsFoldable(e)) {
    auto v = EvalExpr(*e, nullptr);
    if (v.ok()) {
      ExprPtr lit = MakeLiteral(*v);
      lit->type = e->type;
      return lit;
    }
  }
  return e;
}

RelNodePtr EmptyValues(const Schema& schema) {
  auto node = std::make_shared<RelNode>();
  node->kind = RelKind::kValues;
  node->schema = schema;
  return node;
}

ExprPtr AndAll(const std::vector<ExprPtr>& conjuncts) {
  ExprPtr out;
  for (const ExprPtr& c : conjuncts) {
    if (!out) {
      out = c;
    } else {
      out = MakeBinary(BinaryOp::kAnd, out, c);
      out->type = DataType::Boolean();
    }
  }
  return out;
}

void SplitAnd(const ExprPtr& e, std::vector<ExprPtr>* out) {
  if (e && e->kind == ExprKind::kBinary && e->bin_op == BinaryOp::kAnd) {
    SplitAnd(e->children[0], out);
    SplitAnd(e->children[1], out);
    return;
  }
  if (e) out->push_back(e);
}

/// Substitutes project expressions for column refs; returns nullptr when
/// the substituted tree would duplicate a non-trivial/non-deterministic
/// computation below the project.
ExprPtr Substitute(const ExprPtr& e, const std::vector<ExprPtr>& sources) {
  if (!e) return nullptr;
  if (e->kind == ExprKind::kColumnRef) {
    if (e->binding < 0 || static_cast<size_t>(e->binding) >= sources.size())
      return nullptr;
    const ExprPtr& src = sources[e->binding];
    if (ExprContainsFunction(src, "RAND") || src->window) return nullptr;
    return CloneExpr(src);
  }
  auto copy = std::make_shared<Expr>(*e);
  copy->children.clear();
  for (const ExprPtr& c : e->children) {
    ExprPtr sub = Substitute(c, sources);
    if (!sub) return nullptr;
    copy->children.push_back(sub);
  }
  return copy;
}

bool BindingsInRange(const ExprPtr& e, int lo, int hi) {
  if (!e) return true;
  if (e->kind == ExprKind::kColumnRef)
    return e->binding >= lo && e->binding < hi;
  for (const ExprPtr& c : e->children)
    if (!BindingsInRange(c, lo, hi)) return false;
  return true;
}

RelNodePtr PushFilterInto(RelNodePtr node, ExprPtr conjunct);

RelNodePtr WrapFilter(RelNodePtr node, ExprPtr conjunct) {
  return MakeFilter(std::move(node), std::move(conjunct));
}

RelNodePtr PushFilterInto(RelNodePtr node, ExprPtr conjunct) {
  switch (node->kind) {
    case RelKind::kScan:
      node->scan_filters.push_back(conjunct);
      return node;
    case RelKind::kFilter:
      node->inputs[0] = PushFilterInto(node->inputs[0], conjunct);
      return node;
    case RelKind::kProject: {
      ExprPtr substituted = Substitute(conjunct, node->exprs);
      if (substituted) {
        node->inputs[0] = PushFilterInto(node->inputs[0], substituted);
        return node;
      }
      return WrapFilter(node, conjunct);
    }
    case RelKind::kJoin: {
      int left_width = static_cast<int>(node->inputs[0]->schema.num_fields());
      bool left_only = BindingsInRange(conjunct, 0, left_width);
      bool right_only =
          BindingsInRange(conjunct, left_width,
                          left_width + static_cast<int>(
                                           node->inputs[1]->schema.num_fields()));
      bool is_inner = node->join_type == TableRef::JoinType::kInner ||
                      node->join_type == TableRef::JoinType::kCross;
      // A side produces NULL-padded rows when the *other* side is the
      // preserved one; filters only push into non-null-producing sides.
      bool left_null_producing = node->join_type == TableRef::JoinType::kRight ||
                                 node->join_type == TableRef::JoinType::kFull;
      bool right_null_producing = node->join_type == TableRef::JoinType::kLeft ||
                                  node->join_type == TableRef::JoinType::kFull;
      if (left_only && !left_null_producing) {
        node->inputs[0] = PushFilterInto(node->inputs[0], conjunct);
        return node;
      }
      if (right_only && !right_null_producing) {
        ExprPtr shifted = CloneExpr(conjunct);
        RemapBindings(shifted, [&] {
          std::vector<int> mapping(left_width + node->inputs[1]->schema.num_fields());
          for (size_t i = 0; i < mapping.size(); ++i)
            mapping[i] = static_cast<int>(i) - left_width;
          return mapping;
        }());
        node->inputs[1] = PushFilterInto(node->inputs[1], shifted);
        return node;
      }
      if (is_inner) {
        node->join_type = TableRef::JoinType::kInner;
        node->condition = node->condition
                              ? [&] {
                                  ExprPtr both = MakeBinary(BinaryOp::kAnd,
                                                            node->condition, conjunct);
                                  both->type = DataType::Boolean();
                                  return both;
                                }()
                              : conjunct;
        return node;
      }
      return WrapFilter(node, conjunct);
    }
    case RelKind::kUnion:
    case RelKind::kMinus:
    case RelKind::kIntersect: {
      for (RelNodePtr& input : node->inputs)
        input = PushFilterInto(input, CloneExpr(conjunct));
      return node;
    }
    case RelKind::kAggregate: {
      int num_keys = static_cast<int>(node->group_keys.size());
      if (BindingsInRange(conjunct, 0, num_keys)) {
        ExprPtr substituted = Substitute(conjunct, node->group_keys);
        if (substituted) {
          node->inputs[0] = PushFilterInto(node->inputs[0], substituted);
          return node;
        }
      }
      return WrapFilter(node, conjunct);
    }
    case RelKind::kWindow: {
      int base = static_cast<int>(node->inputs[0]->schema.num_fields());
      if (BindingsInRange(conjunct, 0, base)) {
        node->inputs[0] = PushFilterInto(node->inputs[0], conjunct);
        return node;
      }
      return WrapFilter(node, conjunct);
    }
    default:
      return WrapFilter(node, conjunct);
  }
}

}  // namespace

RelNodePtr FoldConstants(RelNodePtr plan) {
  for (RelNodePtr& input : plan->inputs) input = FoldConstants(input);
  ForEachExpr(plan.get(), [](ExprPtr& e) { e = FoldExpr(e); });
  if (plan->kind == RelKind::kFilter && plan->predicate &&
      plan->predicate->kind == ExprKind::kLiteral) {
    const Value& v = plan->predicate->literal;
    if (!v.is_null() && v.bool_value()) return plan->inputs[0];
    return EmptyValues(plan->schema);
  }
  return plan;
}

RelNodePtr PushDownFilters(RelNodePtr plan) {
  for (RelNodePtr& input : plan->inputs) input = PushDownFilters(input);
  if (plan->kind == RelKind::kFilter) {
    std::vector<ExprPtr> conjuncts;
    SplitAnd(plan->predicate, &conjuncts);
    RelNodePtr child = plan->inputs[0];
    for (const ExprPtr& conjunct : conjuncts)
      child = PushFilterInto(child, conjunct);
    return child;
  }
  if (plan->kind == RelKind::kJoin && plan->condition &&
      (plan->join_type == TableRef::JoinType::kInner)) {
    // Single-side conjuncts inside the ON clause move into the inputs.
    std::vector<ExprPtr> conjuncts;
    SplitAnd(plan->condition, &conjuncts);
    int left_width = static_cast<int>(plan->inputs[0]->schema.num_fields());
    int total = left_width + static_cast<int>(plan->inputs[1]->schema.num_fields());
    std::vector<ExprPtr> kept;
    for (const ExprPtr& c : conjuncts) {
      if (BindingsInRange(c, 0, left_width) && c->kind != ExprKind::kLiteral) {
        plan->inputs[0] = PushFilterInto(plan->inputs[0], c);
      } else if (BindingsInRange(c, left_width, total) &&
                 c->kind != ExprKind::kLiteral) {
        ExprPtr shifted = CloneExpr(c);
        std::vector<int> mapping(total);
        for (int i = 0; i < total; ++i) mapping[i] = i - left_width;
        RemapBindings(shifted, mapping);
        plan->inputs[1] = PushFilterInto(plan->inputs[1], shifted);
      } else {
        kept.push_back(c);
      }
    }
    plan->condition = kept.empty() ? [&] {
      ExprPtr t = MakeLiteral(Value::Boolean(true));
      t->type = DataType::Boolean();
      return t;
    }()
                                   : AndAll(kept);
  }
  return plan;
}

// ---------------------------------------------------------------------------
// Column pruning
// ---------------------------------------------------------------------------

namespace {

/// Prunes `node` to produce only `needed` columns (bitset over its current
/// output). Returns the new node; `mapping` maps old output ordinals to new
/// ones (-1 = dropped).
RelNodePtr Prune(RelNodePtr node, std::vector<bool> needed, std::vector<int>* mapping) {
  size_t width = node->schema.num_fields();
  needed.resize(width, false);
  mapping->assign(width, -1);

  auto identity = [&]() {
    for (size_t i = 0; i < width; ++i) (*mapping)[i] = static_cast<int>(i);
    return node;
  };

  switch (node->kind) {
    case RelKind::kScan: {
      for (const ExprPtr& f : node->scan_filters) CollectBindings(f, &needed);
      bool any = false;
      for (bool b : needed) any |= b;
      if (!any) needed[0] = true;  // COUNT(*)-style scans still read a column
      std::vector<size_t> new_projected;
      Schema new_schema;
      int next = 0;
      for (size_t i = 0; i < width; ++i) {
        if (!needed[i]) continue;
        (*mapping)[i] = next++;
        new_projected.push_back(node->projected[i]);
        new_schema.AddField(node->schema.field(i).name, node->schema.field(i).type);
      }
      node->projected = std::move(new_projected);
      node->schema = std::move(new_schema);
      for (const ExprPtr& f : node->scan_filters) RemapBindings(f, *mapping);
      return node;
    }
    case RelKind::kValues: {
      Schema new_schema;
      int next = 0;
      for (size_t i = 0; i < width; ++i) {
        if (!needed[i]) continue;
        (*mapping)[i] = next++;
        new_schema.AddField(node->schema.field(i).name, node->schema.field(i).type);
      }
      for (auto& row : node->rows) {
        std::vector<Value> new_row;
        for (size_t i = 0; i < row.size() && i < width; ++i)
          if (needed[i]) new_row.push_back(row[i]);
        row = std::move(new_row);
      }
      node->schema = std::move(new_schema);
      return node;
    }
    case RelKind::kFilter: {
      std::vector<bool> child_needed = needed;
      CollectBindings(node->predicate, &child_needed);
      std::vector<int> child_map;
      node->inputs[0] = Prune(node->inputs[0], child_needed, &child_map);
      RemapBindings(node->predicate, child_map);
      node->schema = node->inputs[0]->schema;
      *mapping = child_map;
      return node;
    }
    case RelKind::kProject: {
      std::vector<bool> child_needed(node->inputs[0]->schema.num_fields(), false);
      for (size_t i = 0; i < width; ++i)
        if (needed[i]) CollectBindings(node->exprs[i], &child_needed);
      std::vector<int> child_map;
      node->inputs[0] = Prune(node->inputs[0], child_needed, &child_map);
      std::vector<ExprPtr> new_exprs;
      Schema new_schema;
      int next = 0;
      for (size_t i = 0; i < width; ++i) {
        if (!needed[i]) continue;
        RemapBindings(node->exprs[i], child_map);
        new_exprs.push_back(node->exprs[i]);
        new_schema.AddField(node->schema.field(i).name, node->schema.field(i).type);
        (*mapping)[i] = next++;
      }
      node->exprs = std::move(new_exprs);
      node->schema = std::move(new_schema);
      return node;
    }
    case RelKind::kJoin: {
      size_t left_width = node->inputs[0]->schema.num_fields();
      size_t right_width = node->inputs[1]->schema.num_fields();
      bool semi = node->join_type == TableRef::JoinType::kSemi ||
                  node->join_type == TableRef::JoinType::kAnti;
      std::vector<bool> cond_needed(left_width + right_width, false);
      CollectBindings(node->condition, &cond_needed);
      std::vector<bool> left_needed(left_width, false), right_needed(right_width, false);
      for (size_t i = 0; i < left_width; ++i)
        left_needed[i] = cond_needed[i] || (i < width && needed[i]);
      for (size_t j = 0; j < right_width; ++j)
        right_needed[j] = cond_needed[left_width + j] ||
                          (!semi && left_width + j < width && needed[left_width + j]);
      std::vector<int> lmap, rmap;
      node->inputs[0] = Prune(node->inputs[0], left_needed, &lmap);
      node->inputs[1] = Prune(node->inputs[1], right_needed, &rmap);
      size_t new_left_width = node->inputs[0]->schema.num_fields();
      // Remap the condition.
      std::vector<int> cond_map(left_width + right_width, -1);
      for (size_t i = 0; i < left_width; ++i) cond_map[i] = lmap[i];
      for (size_t j = 0; j < right_width; ++j)
        cond_map[left_width + j] =
            rmap[j] < 0 ? -1 : static_cast<int>(new_left_width) + rmap[j];
      RemapBindings(node->condition, cond_map);
      // Output schema + parent mapping.
      Schema new_schema = node->inputs[0]->schema;
      if (!semi)
        for (const Field& f : node->inputs[1]->schema.fields())
          new_schema.AddField(f.name, f.type);
      node->schema = std::move(new_schema);
      for (size_t i = 0; i < left_width && i < width; ++i) (*mapping)[i] = lmap[i];
      if (!semi)
        for (size_t j = 0; j < right_width && left_width + j < width; ++j)
          (*mapping)[left_width + j] =
              rmap[j] < 0 ? -1 : static_cast<int>(new_left_width) + rmap[j];
      return node;
    }
    case RelKind::kAggregate: {
      std::vector<bool> child_needed(node->inputs[0]->schema.num_fields(), false);
      for (const ExprPtr& k : node->group_keys) CollectBindings(k, &child_needed);
      for (const AggCall& a : node->aggs) CollectBindings(a.arg, &child_needed);
      bool any = false;
      for (bool b : child_needed) any |= b;
      if (!any && node->inputs[0]->schema.num_fields() > 0) child_needed[0] = true;
      std::vector<int> child_map;
      node->inputs[0] = Prune(node->inputs[0], child_needed, &child_map);
      for (const ExprPtr& k : node->group_keys) RemapBindings(k, child_map);
      for (AggCall& a : node->aggs) RemapBindings(a.arg, child_map);
      return identity();
    }
    case RelKind::kWindow: {
      std::vector<bool> all(node->inputs[0]->schema.num_fields(), true);
      std::vector<int> child_map;
      node->inputs[0] = Prune(node->inputs[0], all, &child_map);
      return identity();
    }
    case RelKind::kUnion:
    case RelKind::kMinus:
    case RelKind::kIntersect: {
      // Set semantics (minus/intersect) compare whole rows: keep all.
      if (node->kind != RelKind::kUnion) {
        for (RelNodePtr& input : node->inputs) {
          std::vector<bool> all(input->schema.num_fields(), true);
          std::vector<int> child_map;
          input = Prune(input, all, &child_map);
        }
        return identity();
      }
      Schema new_schema;
      int next = 0;
      for (size_t i = 0; i < width; ++i) {
        if (!needed[i]) continue;
        (*mapping)[i] = next++;
        new_schema.AddField(node->schema.field(i).name, node->schema.field(i).type);
      }
      for (RelNodePtr& input : node->inputs) {
        std::vector<int> child_map;
        input = Prune(input, needed, &child_map);
        // Force positional agreement with a project when required.
        bool aligned = true;
        int expect = 0;
        for (size_t i = 0; i < width; ++i) {
          if (!needed[i]) continue;
          if (child_map[i] != expect++) aligned = false;
        }
        if (!aligned ||
            input->schema.num_fields() != static_cast<size_t>(next)) {
          std::vector<ExprPtr> refs;
          std::vector<std::string> names;
          for (size_t i = 0; i < width; ++i) {
            if (!needed[i]) continue;
            ExprPtr ref = MakeColumnRef("", input->schema.field(child_map[i]).name);
            ref->binding = child_map[i];
            ref->type = input->schema.field(child_map[i]).type;
            refs.push_back(ref);
            names.push_back(new_schema.field(refs.size() - 1).name);
          }
          input = MakeProject(input, std::move(refs), std::move(names));
        }
      }
      node->schema = std::move(new_schema);
      return node;
    }
    case RelKind::kSort: {
      std::vector<bool> child_needed = needed;
      for (const auto& [k, asc] : node->sort_keys) CollectBindings(k, &child_needed);
      std::vector<int> child_map;
      node->inputs[0] = Prune(node->inputs[0], child_needed, &child_map);
      for (const auto& [k, asc] : node->sort_keys) RemapBindings(k, child_map);
      node->schema = node->inputs[0]->schema;
      *mapping = child_map;
      return node;
    }
    case RelKind::kLimit: {
      std::vector<int> child_map;
      node->inputs[0] = Prune(node->inputs[0], needed, &child_map);
      node->schema = node->inputs[0]->schema;
      *mapping = child_map;
      return node;
    }
  }
  return identity();
}

}  // namespace

RelNodePtr PruneColumns(RelNodePtr plan) {
  std::vector<bool> all(plan->schema.num_fields(), true);
  std::vector<int> mapping;
  return Prune(std::move(plan), std::move(all), &mapping);
}

Status PrunePartitions(const RelNodePtr& plan, Catalog* catalog) {
  for (const RelNodePtr& input : plan->inputs)
    HIVE_RETURN_IF_ERROR(PrunePartitions(input, catalog));
  if (plan->kind != RelKind::kScan) return Status::OK();
  if (!plan->table.IsPartitioned() || !plan->table.storage_handler.empty())
    return Status::OK();
  if (plan->partitions_pruned) return Status::OK();
  HIVE_ASSIGN_OR_RETURN(std::vector<PartitionInfo> partitions,
                        catalog->GetPartitions(plan->table.db, plan->table.name));
  // Identify which scan-output ordinals are partition columns.
  std::vector<int> part_index(plan->schema.num_fields(), -1);
  bool has_part_col_filter = false;
  for (size_t i = 0; i < plan->schema.num_fields(); ++i) {
    for (size_t p = 0; p < plan->table.partition_cols.size(); ++p) {
      if (ToLower(plan->schema.field(i).name) ==
          ToLower(plan->table.partition_cols[p].name))
        part_index[i] = static_cast<int>(p);
    }
  }
  std::vector<ExprPtr> partition_conjuncts;
  for (const ExprPtr& f : plan->scan_filters) {
    std::vector<bool> used(plan->schema.num_fields(), false);
    CollectBindings(f, &used);
    bool only_partition_cols = true, any = false;
    for (size_t i = 0; i < used.size(); ++i) {
      if (!used[i]) continue;
      any = true;
      if (part_index[i] < 0) only_partition_cols = false;
    }
    if (any && only_partition_cols) {
      partition_conjuncts.push_back(f);
      has_part_col_filter = true;
    }
  }
  plan->partitions_pruned = true;
  if (!has_part_col_filter) {
    plan->pruned_partitions = std::move(partitions);
    return Status::OK();
  }
  for (const PartitionInfo& partition : partitions) {
    std::vector<Value> row(plan->schema.num_fields());
    for (size_t i = 0; i < plan->schema.num_fields(); ++i)
      if (part_index[i] >= 0) row[i] = partition.values[part_index[i]];
    bool keep = true;
    for (const ExprPtr& conjunct : partition_conjuncts) {
      auto v = EvalExpr(*conjunct, &row);
      if (!v.ok() || !IsTrue(*v)) {
        keep = false;
        break;
      }
    }
    if (keep) plan->pruned_partitions.push_back(partition);
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Join reordering
// ---------------------------------------------------------------------------

namespace {

bool IsReorderableJoin(const RelNode& node) {
  return node.kind == RelKind::kJoin &&
         (node.join_type == TableRef::JoinType::kInner ||
          node.join_type == TableRef::JoinType::kCross);
}

void ShiftExprBindings(const ExprPtr& e, int delta) {
  if (!e) return;
  if (e->kind == ExprKind::kColumnRef && e->binding >= 0) e->binding += delta;
  for (const ExprPtr& c : e->children) ShiftExprBindings(c, delta);
}

/// Flattens a contiguous inner-join tree. Collected conditions are
/// rebound into the global (flattened) ordinal space: a nested right
/// subtree's conditions, local to that subtree, get shifted by the width
/// of everything to its left.
void CollectJoinTree(const RelNodePtr& node, std::vector<RelNodePtr>* leaves,
                     std::vector<ExprPtr>* conditions) {
  if (IsReorderableJoin(*node)) {
    CollectJoinTree(node->inputs[0], leaves, conditions);
    size_t left_total = 0;
    for (const RelNodePtr& leaf : *leaves) left_total += leaf->schema.num_fields();
    size_t cond_start = conditions->size();
    CollectJoinTree(node->inputs[1], leaves, conditions);
    for (size_t i = cond_start; i < conditions->size(); ++i) {
      (*conditions)[i] = CloneExpr((*conditions)[i]);
      ShiftExprBindings((*conditions)[i], static_cast<int>(left_total));
    }
    // This node's own condition is already in the flattened space (its
    // inputs' concat equals the flattened prefix).
    if (node->condition && node->condition->kind != ExprKind::kLiteral)
      SplitAnd(node->condition, conditions);
    return;
  }
  leaves->push_back(node);
}

struct LeafRef {
  size_t leaf;
  int local;
};

}  // namespace

RelNodePtr ReorderJoins(RelNodePtr plan, const Config& config) {
  for (RelNodePtr& input : plan->inputs) input = ReorderJoins(input, config);
  if (!config.cbo_enabled || !IsReorderableJoin(*plan)) return plan;

  std::vector<RelNodePtr> leaves;
  std::vector<ExprPtr> conditions;
  CollectJoinTree(plan, &leaves, &conditions);
  if (leaves.size() < 3 ||
      leaves.size() > static_cast<size_t>(config.join_reorder_max_relations))
    return plan;

  // Original global ordinal -> (leaf, local ordinal).
  std::vector<size_t> offsets(leaves.size());
  size_t total = 0;
  for (size_t i = 0; i < leaves.size(); ++i) {
    offsets[i] = total;
    total += leaves[i]->schema.num_fields();
  }
  auto leaf_of = [&](int global) -> LeafRef {
    for (size_t i = leaves.size(); i-- > 0;)
      if (static_cast<size_t>(global) >= offsets[i])
        return {i, global - static_cast<int>(offsets[i])};
    return {0, global};
  };

  struct CondInfo {
    ExprPtr expr;
    std::set<size_t> leaves;
    bool used = false;
  };
  std::vector<CondInfo> cond_infos;
  for (const ExprPtr& c : conditions) {
    CondInfo info;
    info.expr = c;
    std::vector<bool> used(total, false);
    CollectBindings(c, &used);
    for (size_t g = 0; g < total; ++g)
      if (used[g]) info.leaves.insert(leaf_of(static_cast<int>(g)).leaf);
    cond_infos.push_back(std::move(info));
  }

  // Greedy: start from the smallest leaf, repeatedly add the connected leaf
  // with the smallest estimated join size.
  std::vector<bool> placed(leaves.size(), false);
  std::vector<size_t> order;
  size_t start = 0;
  for (size_t i = 1; i < leaves.size(); ++i)
    if (leaves[i]->row_estimate < leaves[start]->row_estimate) start = i;
  order.push_back(start);
  placed[start] = true;
  double current_rows = std::max(1.0, leaves[start]->row_estimate);
  while (order.size() < leaves.size()) {
    int best = -1;
    double best_rows = 0;
    bool best_connected = false;
    for (size_t cand = 0; cand < leaves.size(); ++cand) {
      if (placed[cand]) continue;
      bool connected = false;
      for (const CondInfo& info : cond_infos) {
        if (info.leaves.count(cand) == 0) continue;
        bool others_placed = true;
        for (size_t l : info.leaves)
          if (l != cand && !placed[l]) others_placed = false;
        if (others_placed && info.leaves.size() > 1) connected = true;
      }
      double rows = connected
                        ? std::max(current_rows, std::max(1.0, leaves[cand]->row_estimate))
                        : current_rows * std::max(1.0, leaves[cand]->row_estimate);
      if (best < 0 || (connected && !best_connected) ||
          (connected == best_connected && rows < best_rows)) {
        best = static_cast<int>(cand);
        best_rows = rows;
        best_connected = connected;
      }
    }
    order.push_back(static_cast<size_t>(best));
    placed[best] = true;
    current_rows = best_rows;
  }

  // New global offsets.
  std::vector<size_t> new_offsets(leaves.size());
  size_t acc = 0;
  for (size_t pos = 0; pos < order.size(); ++pos) {
    new_offsets[order[pos]] = acc;
    acc += leaves[order[pos]]->schema.num_fields();
  }
  std::vector<int> global_map(total);
  for (size_t g = 0; g < total; ++g) {
    LeafRef ref = leaf_of(static_cast<int>(g));
    global_map[g] = static_cast<int>(new_offsets[ref.leaf]) + ref.local;
  }

  // Build the left-deep tree, attaching each condition at the first step
  // where all its leaves are available.
  RelNodePtr current = leaves[order[0]];
  std::set<size_t> available = {order[0]};
  for (size_t pos = 1; pos < order.size(); ++pos) {
    available.insert(order[pos]);
    std::vector<ExprPtr> step_conditions;
    for (CondInfo& info : cond_infos) {
      if (info.used) continue;
      bool ready = true;
      for (size_t l : info.leaves)
        if (available.count(l) == 0) ready = false;
      if (!ready) continue;
      info.used = true;
      ExprPtr rebound = CloneExpr(info.expr);
      RemapBindings(rebound, global_map);
      step_conditions.push_back(rebound);
    }
    ExprPtr condition = AndAll(step_conditions);
    TableRef::JoinType type =
        condition ? TableRef::JoinType::kInner : TableRef::JoinType::kCross;
    current = MakeJoin(type, current, leaves[order[pos]], condition);
  }

  // Restore the original output column order.
  std::vector<ExprPtr> refs;
  std::vector<std::string> names;
  for (size_t g = 0; g < total; ++g) {
    int new_pos = global_map[g];
    ExprPtr ref = MakeColumnRef("", current->schema.field(new_pos).name);
    ref->binding = new_pos;
    ref->type = current->schema.field(new_pos).type;
    refs.push_back(ref);
    LeafRef lr = leaf_of(static_cast<int>(g));
    names.push_back(leaves[lr.leaf]->schema.field(lr.local).name);
  }
  return MakeProject(current, std::move(refs), std::move(names));
}

// ---------------------------------------------------------------------------
// Dynamic semijoin reduction
// ---------------------------------------------------------------------------

namespace {

/// Traces an output ordinal of `node` to an underlying scan column, walking
/// through filters, projects (column refs only) and join inputs.
bool TraceToScan(const RelNodePtr& node, int ordinal, RelNode** scan,
                 std::string* column) {
  switch (node->kind) {
    case RelKind::kScan:
      if (ordinal < 0 || static_cast<size_t>(ordinal) >= node->schema.num_fields())
        return false;
      *scan = node.get();
      *column = node->schema.field(ordinal).name;
      return true;
    case RelKind::kFilter:
    case RelKind::kLimit:
    case RelKind::kSort:
      return TraceToScan(node->inputs[0], ordinal, scan, column);
    case RelKind::kProject: {
      if (ordinal < 0 || static_cast<size_t>(ordinal) >= node->exprs.size())
        return false;
      const ExprPtr& e = node->exprs[ordinal];
      if (e->kind != ExprKind::kColumnRef) return false;
      return TraceToScan(node->inputs[0], e->binding, scan, column);
    }
    case RelKind::kJoin: {
      int left_width = static_cast<int>(node->inputs[0]->schema.num_fields());
      if (ordinal < left_width) return TraceToScan(node->inputs[0], ordinal, scan, column);
      return TraceToScan(node->inputs[1], ordinal - left_width, scan, column);
    }
    default:
      return false;
  }
}

}  // namespace

Status InsertSemiJoinReducers(const RelNodePtr& plan, const Config& config) {
  for (const RelNodePtr& input : plan->inputs)
    HIVE_RETURN_IF_ERROR(InsertSemiJoinReducers(input, config));
  if (!config.semijoin_reduction_enabled) return Status::OK();
  if (plan->kind != RelKind::kJoin) return Status::OK();
  if (plan->join_type != TableRef::JoinType::kInner &&
      plan->join_type != TableRef::JoinType::kSemi)
    return Status::OK();
  if (!plan->condition) return Status::OK();

  const RelNodePtr& left = plan->inputs[0];
  const RelNodePtr& right = plan->inputs[1];
  int left_width = static_cast<int>(left->schema.num_fields());

  std::vector<ExprPtr> conjuncts;
  SplitAnd(plan->condition, &conjuncts);
  for (const ExprPtr& c : conjuncts) {
    if (c->kind != ExprKind::kBinary || c->bin_op != BinaryOp::kEq) continue;
    for (int side = 0; side < 2; ++side) {
      const ExprPtr& a = c->children[side];      // probe candidate
      const ExprPtr& b = c->children[1 - side];  // build candidate
      if (a->kind != ExprKind::kColumnRef || b->kind != ExprKind::kColumnRef) continue;
      bool a_left = a->binding < left_width;
      bool b_left = b->binding < left_width;
      if (a_left == b_left) continue;  // same side, not a join key
      const RelNodePtr& probe_side = a_left ? left : right;
      const RelNodePtr& build_side = a_left ? right : left;
      // Only reduce when the build side is substantially smaller.
      double probe_rows = std::max(1.0, probe_side->row_estimate);
      double build_rows = std::max(1.0, build_side->row_estimate);
      if (build_rows > probe_rows * 0.3) continue;
      if (probe_rows < 10000) continue;  // not worth the reducer
      int probe_ordinal = a_left ? a->binding : a->binding - left_width;
      int build_ordinal = b_left ? b->binding : b->binding - left_width;
      RelNode* scan = nullptr;
      std::string column;
      if (!TraceToScan(probe_side, probe_ordinal, &scan, &column)) continue;
      if (!scan->table.storage_handler.empty()) continue;
      SemiJoinReducer reducer;
      reducer.build_plan = build_side;
      ExprPtr key = MakeColumnRef("", build_side->schema.field(build_ordinal).name);
      key->binding = build_ordinal;
      key->type = build_side->schema.field(build_ordinal).type;
      reducer.build_key = key;
      reducer.target_column = column;
      for (const Field& pc : scan->table.partition_cols)
        if (ToLower(pc.name) == ToLower(column))
          reducer.partition_pruning = config.dynamic_partition_pruning_enabled;
      scan->semijoin_reducers.push_back(std::move(reducer));
      break;  // one reducer per conjunct
    }
  }
  return Status::OK();
}

}  // namespace hive
