#include "optimizer/mv_rewrite.h"

#include <algorithm>
#include <map>
#include <set>

#include "common/ast.h"
#include "optimizer/binder.h"
#include "optimizer/rules.h"

namespace hive {

namespace {

/// Per-thread: planning runs on the session's coordinator thread, and a
/// process-wide counter would race (and bleed values) across concurrent
/// sessions.
thread_local int g_last_rewrite_count = 0;

/// Canonical SPJA decomposition of a plan subtree.
struct SpjaSummary {
  bool valid = false;
  /// Scans in left-to-right order with their global column offsets.
  std::vector<RelNode*> scans;
  std::vector<size_t> offsets;
  size_t total_columns = 0;
  /// All predicate conjuncts (join + filter), bindings in global space.
  std::vector<ExprPtr> conjuncts;
  bool has_agg = false;
  std::vector<ExprPtr> group_keys;  // global space
  std::vector<AggCall> aggs;        // args in global space
  /// Top projection over (agg output | global space).
  bool has_project = false;
  std::vector<ExprPtr> project_exprs;
  Schema output_schema;
  RelNode* aggregate_node = nullptr;
};

void ShiftAll(const ExprPtr& e, int delta) {
  if (!e) return;
  if (e->kind == ExprKind::kColumnRef && e->binding >= 0) e->binding += delta;
  for (const ExprPtr& c : e->children) ShiftAll(c, delta);
}

bool ExtractJoinTree(const RelNodePtr& node, SpjaSummary* out) {
  switch (node->kind) {
    case RelKind::kScan: {
      if (!node->table.storage_handler.empty() || node->table.is_materialized_view)
        return false;
      out->offsets.push_back(out->total_columns);
      out->scans.push_back(node.get());
      for (const ExprPtr& f : node->scan_filters) {
        ExprPtr shifted = CloneExpr(f);
        ShiftAll(shifted, static_cast<int>(out->total_columns));
        out->conjuncts.push_back(shifted);
      }
      out->total_columns += node->schema.num_fields();
      return true;
    }
    case RelKind::kFilter: {
      size_t base = out->total_columns;
      if (!ExtractJoinTree(node->inputs[0], out)) return false;
      ExprPtr shifted = CloneExpr(node->predicate);
      ShiftAll(shifted, static_cast<int>(base));
      out->conjuncts.push_back(shifted);
      return true;
    }
    case RelKind::kJoin: {
      if (node->join_type != TableRef::JoinType::kInner &&
          node->join_type != TableRef::JoinType::kCross)
        return false;
      size_t base = out->total_columns;
      if (!ExtractJoinTree(node->inputs[0], out)) return false;
      if (!ExtractJoinTree(node->inputs[1], out)) return false;
      if (node->condition && node->condition->kind != ExprKind::kLiteral) {
        ExprPtr shifted = CloneExpr(node->condition);
        ShiftAll(shifted, static_cast<int>(base));
        std::vector<ExprPtr> split;
        std::function<void(const ExprPtr&)> split_and = [&](const ExprPtr& e) {
          if (e->kind == ExprKind::kBinary && e->bin_op == BinaryOp::kAnd) {
            split_and(e->children[0]);
            split_and(e->children[1]);
          } else {
            out->conjuncts.push_back(e);
          }
        };
        split_and(shifted);
      }
      return true;
    }
    default:
      return false;
  }
}

SpjaSummary Summarize(const RelNodePtr& plan) {
  SpjaSummary out;
  RelNodePtr node = plan;
  if (node->kind == RelKind::kProject) {
    out.has_project = true;
    out.project_exprs = node->exprs;  // over next level's output
    out.output_schema = node->schema;
    node = node->inputs[0];
  }
  if (node->kind == RelKind::kAggregate) {
    out.has_agg = true;
    out.aggregate_node = node.get();
    out.group_keys = node->group_keys;
    out.aggs = node->aggs;
    if (!out.has_project) out.output_schema = node->schema;
    node = node->inputs[0];
  }
  if (!ExtractJoinTree(node, &out)) return out;
  if (!out.has_project && !out.has_agg) out.output_schema = node->schema;
  // Scans must reference distinct tables (self-join mapping is ambiguous).
  std::set<std::string> names;
  for (RelNode* scan : out.scans)
    if (!names.insert(scan->table.FullName()).second) return out;
  out.valid = true;
  return out;
}

/// Canonical digest of a conjunct: equality operands sorted so a=b == b=a.
std::string ConjunctDigest(const ExprPtr& e) {
  if (e->kind == ExprKind::kBinary && e->bin_op == BinaryOp::kEq) {
    std::string a = e->children[0]->ToString();
    std::string b = e->children[1]->ToString();
    if (b < a) std::swap(a, b);
    return "(" + a + " = " + b + ")";
  }
  return e->ToString();
}

struct RangePredicate {
  bool valid = false;
  int column = -1;  // global ordinal
  BinaryOp op = BinaryOp::kEq;
  Value literal;
};

RangePredicate ParseRange(const ExprPtr& e) {
  RangePredicate out;
  if (e->kind != ExprKind::kBinary) return out;
  BinaryOp op = e->bin_op;
  if (op != BinaryOp::kLt && op != BinaryOp::kLe && op != BinaryOp::kGt &&
      op != BinaryOp::kGe && op != BinaryOp::kEq)
    return out;
  const ExprPtr& l = e->children[0];
  const ExprPtr& r = e->children[1];
  if (l->kind == ExprKind::kColumnRef && r->kind == ExprKind::kLiteral) {
    out.valid = true;
    out.column = l->binding;
    out.op = op;
    out.literal = r->literal;
  } else if (r->kind == ExprKind::kColumnRef && l->kind == ExprKind::kLiteral) {
    // Mirror: lit < col  =>  col > lit.
    out.valid = true;
    out.column = r->binding;
    out.literal = l->literal;
    switch (op) {
      case BinaryOp::kLt: out.op = BinaryOp::kGt; break;
      case BinaryOp::kLe: out.op = BinaryOp::kGe; break;
      case BinaryOp::kGt: out.op = BinaryOp::kLt; break;
      case BinaryOp::kGe: out.op = BinaryOp::kLe; break;
      default: out.op = op; break;
    }
  }
  return out;
}

/// True when range `q` implies range `v` (same column): every row passing q
/// passes v.
bool RangeImplies(const RangePredicate& q, const RangePredicate& v) {
  if (q.column != v.column) return false;
  int cmp = Value::Compare(q.literal, v.literal);
  switch (v.op) {
    case BinaryOp::kGt:
      return (q.op == BinaryOp::kGt && cmp >= 0) || (q.op == BinaryOp::kGe && cmp > 0) ||
             (q.op == BinaryOp::kEq && cmp > 0);
    case BinaryOp::kGe:
      return (q.op == BinaryOp::kGt && cmp >= 0) || (q.op == BinaryOp::kGe && cmp >= 0) ||
             (q.op == BinaryOp::kEq && cmp >= 0);
    case BinaryOp::kLt:
      return (q.op == BinaryOp::kLt && cmp <= 0) || (q.op == BinaryOp::kLe && cmp < 0) ||
             (q.op == BinaryOp::kEq && cmp < 0);
    case BinaryOp::kLe:
      return (q.op == BinaryOp::kLt && cmp <= 0) || (q.op == BinaryOp::kLe && cmp <= 0) ||
             (q.op == BinaryOp::kEq && cmp <= 0);
    case BinaryOp::kEq:
      return q.op == BinaryOp::kEq && cmp == 0;
    default:
      return false;
  }
}

/// Negation of a range predicate (complement filter for union rewrites).
ExprPtr ComplementRange(const ExprPtr& original) {
  auto e = CloneExpr(original);
  if (e->kind != ExprKind::kBinary) return nullptr;
  switch (e->bin_op) {
    case BinaryOp::kGt: e->bin_op = BinaryOp::kLe; break;
    case BinaryOp::kGe: e->bin_op = BinaryOp::kLt; break;
    case BinaryOp::kLt: e->bin_op = BinaryOp::kGe; break;
    case BinaryOp::kLe: e->bin_op = BinaryOp::kGt; break;
    default: return nullptr;
  }
  return e;
}

/// Rewrites an expression in query-global space into one over the MV's
/// output columns: subtrees whose digest equals an MV output expression's
/// digest become refs to that output. Returns nullptr when not expressible.
ExprPtr RewriteOverMv(const ExprPtr& e, const std::vector<std::string>& mv_digests,
                      const Schema& mv_table_schema) {
  std::string digest = e->ToString();
  for (size_t i = 0; i < mv_digests.size(); ++i) {
    if (digest == mv_digests[i]) {
      ExprPtr ref = MakeColumnRef("", mv_table_schema.field(i).name);
      ref->binding = static_cast<int>(i);
      ref->type = mv_table_schema.field(i).type;
      return ref;
    }
  }
  if (e->kind == ExprKind::kColumnRef || e->kind == ExprKind::kLiteral) {
    if (e->kind == ExprKind::kLiteral) return CloneExpr(e);
    return nullptr;
  }
  auto copy = std::make_shared<Expr>(*e);
  copy->children.clear();
  for (const ExprPtr& c : e->children) {
    ExprPtr r = RewriteOverMv(c, mv_digests, mv_table_schema);
    if (!r) return nullptr;
    copy->children.push_back(r);
  }
  return copy;
}

struct MvInfo {
  TableDesc desc;
  SpjaSummary summary;
  RelNodePtr plan;
  /// Digest (in MV-global space) of each MV table column's defining expr.
  std::vector<std::string> output_digests;
  /// For SPJA MVs: which agg (index into summary.aggs) each output is, or
  /// -1 when it is a group key / plain column.
  std::vector<int> output_agg;
};

/// Maps query-global bindings into MV-global space via table identity.
bool BuildGlobalMap(const SpjaSummary& query, const MvInfo& mv,
                    std::vector<int>* map) {
  if (query.scans.size() != mv.summary.scans.size()) return false;
  map->assign(query.total_columns, -1);
  for (size_t i = 0; i < query.scans.size(); ++i) {
    const std::string name = query.scans[i]->table.FullName();
    int match = -1;
    for (size_t j = 0; j < mv.summary.scans.size(); ++j)
      if (mv.summary.scans[j]->table.FullName() == name) match = static_cast<int>(j);
    if (match < 0) return false;
    size_t q_off = query.offsets[i];
    size_t v_off = mv.summary.offsets[match];
    size_t width = query.scans[i]->schema.num_fields();
    if (width != mv.summary.scans[match]->schema.num_fields()) return false;
    for (size_t c = 0; c < width; ++c)
      (*map)[q_off + c] = static_cast<int>(v_off + c);
  }
  return true;
}

void ApplyMap(const ExprPtr& e, const std::vector<int>& map, bool* ok) {
  if (!e || !*ok) return;
  if (e->kind == ExprKind::kColumnRef) {
    if (e->binding < 0 || static_cast<size_t>(e->binding) >= map.size() ||
        map[e->binding] < 0) {
      *ok = false;
      return;
    }
    e->binding = map[e->binding];
  }
  for (const ExprPtr& c : e->children) ApplyMap(c, map, ok);
}

}  // namespace

int LastMvRewriteCount() { return g_last_rewrite_count; }

Result<RelNodePtr> RewriteWithMaterializedViews(
    RelNodePtr plan, Catalog* catalog, const Config* config,
    const std::function<bool(const TableDesc&)>& usable) {
  g_last_rewrite_count = 0;
  std::vector<TableDesc> views = catalog->ListMaterializedViews();
  if (views.empty()) return plan;

  // Bind every usable view definition once.
  std::vector<MvInfo> infos;
  for (TableDesc& view : views) {
    if (usable && !usable(view)) continue;
    // The registrar (DDL layer / workload loader) stores the parsed
    // definition alongside the SQL text; a view without an AST predates the
    // field and simply never rewrites.
    if (!view.view_ast) continue;
    Binder binder(catalog, config, view.db);
    auto bound = binder.BindSelect(*view.view_ast);
    if (!bound.ok()) continue;
    RelNodePtr view_plan = FoldConstants(*bound);
    view_plan = PushDownFilters(view_plan);
    MvInfo info;
    info.desc = view;
    info.plan = view_plan;
    info.summary = Summarize(view_plan);
    if (!info.summary.valid) continue;
    // Output digests: expressions (in MV-global space) defining each MV
    // table column. With a top project, those are the project exprs with
    // aggregate refs expanded; otherwise the aggregate/join outputs.
    const SpjaSummary& s = info.summary;
    size_t n_out = view.schema.num_fields();
    bool ok = true;
    for (size_t i = 0; i < n_out && ok; ++i) {
      ExprPtr def;
      int agg_index = -1;
      if (s.has_project) {
        def = s.project_exprs[i];
        if (s.has_agg) {
          // Expand one level: project refs into the aggregate output.
          if (def->kind == ExprKind::kColumnRef) {
            int b = def->binding;
            if (b < static_cast<int>(s.group_keys.size())) {
              def = s.group_keys[b];
            } else {
              agg_index = b - static_cast<int>(s.group_keys.size());
              def = nullptr;
            }
          } else {
            ok = false;  // computed exprs over aggregates unsupported
          }
        }
      } else if (s.has_agg) {
        if (i < s.group_keys.size()) {
          def = s.group_keys[i];
        } else {
          agg_index = static_cast<int>(i - s.group_keys.size());
        }
      } else {
        ExprPtr ref = MakeColumnRef("", view.schema.field(i).name);
        ref->binding = static_cast<int>(i);
        def = ref;  // plain join-tree output column i (global ordinal i)
      }
      if (agg_index >= 0) {
        const AggCall& a = s.aggs[agg_index];
        std::string digest = a.func;
        digest += "|";
        digest += a.arg ? a.arg->ToString() : "*";
        info.output_digests.push_back("AGG:" + digest);
      } else if (def) {
        info.output_digests.push_back(def->ToString());
      } else {
        ok = false;
      }
      info.output_agg.push_back(agg_index);
    }
    if (!ok) continue;
    infos.push_back(std::move(info));
  }
  if (infos.empty()) return plan;

  // Bottom-up attempt on every node.
  std::function<RelNodePtr(RelNodePtr)> visit = [&](RelNodePtr node) -> RelNodePtr {
    for (RelNodePtr& input : node->inputs) input = visit(input);
    SpjaSummary query = Summarize(node);
    if (!query.valid) return node;
    // Only rewrite aggregate or projection roots (cost heuristics: the MV
    // must stand in for real work).
    if (!query.has_agg && !query.has_project) return node;

    for (const MvInfo& mv : infos) {
      std::vector<int> global_map;
      if (!BuildGlobalMap(query, mv, &global_map)) continue;

      // Map all query conjuncts into MV space.
      std::vector<ExprPtr> q_conjuncts;
      bool map_ok = true;
      for (const ExprPtr& c : query.conjuncts) {
        ExprPtr mapped = CloneExpr(c);
        ApplyMap(mapped, global_map, &map_ok);
        if (!map_ok) break;
        q_conjuncts.push_back(mapped);
      }
      if (!map_ok) continue;

      std::set<std::string> q_digests;
      for (const ExprPtr& c : q_conjuncts) q_digests.insert(ConjunctDigest(c));

      // Every MV conjunct must be implied by the query; at most one may be
      // implied only partially (union rewrite).
      ExprPtr widen_mv_conjunct;   // the MV conjunct the query widens
      bool containment_ok = true;
      for (const ExprPtr& vc : mv.summary.conjuncts) {
        std::string digest = ConjunctDigest(vc);
        if (q_digests.count(digest)) continue;
        RangePredicate v_range = ParseRange(vc);
        bool implied = false;
        bool widened = false;
        if (v_range.valid) {
          bool query_has_pred_on_col = false;
          for (const ExprPtr& qc : q_conjuncts) {
            RangePredicate q_range = ParseRange(qc);
            if (!q_range.valid || q_range.column != v_range.column) continue;
            query_has_pred_on_col = true;
            if (RangeImplies(q_range, v_range)) implied = true;
            // Query strictly wider (same direction, weaker bound)?
            if (!implied && RangeImplies(v_range, q_range)) widened = true;
          }
          if (!query_has_pred_on_col) widened = false;
        }
        if (implied) continue;
        if (widened && !widen_mv_conjunct) {
          widen_mv_conjunct = vc;
          continue;
        }
        containment_ok = false;
        break;
      }
      if (!containment_ok) continue;

      // Residual query conjuncts (everything not exactly an MV conjunct)
      // must be expressible over the MV outputs.
      std::set<std::string> v_digests;
      for (const ExprPtr& vc : mv.summary.conjuncts)
        v_digests.insert(ConjunctDigest(vc));
      std::vector<ExprPtr> residual;
      bool residual_ok = true;
      for (const ExprPtr& qc : q_conjuncts) {
        if (v_digests.count(ConjunctDigest(qc))) continue;
        ExprPtr rewritten = RewriteOverMv(qc, mv.output_digests, mv.desc.schema);
        if (!rewritten) {
          residual_ok = false;
          break;
        }
        residual.push_back(rewritten);
      }
      if (!residual_ok) continue;

      // Group keys and aggregates must roll up from MV outputs.
      std::vector<ExprPtr> new_keys;
      std::vector<AggCall> new_aggs;
      bool agg_ok = true;
      if (query.has_agg) {
        for (const ExprPtr& key : query.group_keys) {
          ExprPtr mapped = CloneExpr(key);
          ApplyMap(mapped, global_map, &agg_ok);
          if (!agg_ok) break;
          ExprPtr rewritten = RewriteOverMv(mapped, mv.output_digests, mv.desc.schema);
          if (!rewritten) {
            agg_ok = false;
            break;
          }
          new_keys.push_back(rewritten);
        }
        for (const AggCall& agg : query.aggs) {
          if (!agg_ok) break;
          AggCall rolled = agg;
          if (agg.func == "AVG" || agg.distinct) {
            agg_ok = false;
            break;
          }
          ExprPtr mapped_arg = agg.arg ? CloneExpr(agg.arg) : nullptr;
          if (mapped_arg) ApplyMap(mapped_arg, global_map, &agg_ok);
          if (!agg_ok) break;
          if (mv.summary.has_agg) {
            // Roll up from a pre-aggregated MV column.
            std::string want = "AGG:" + agg.func + "|" +
                               (mapped_arg ? mapped_arg->ToString() : "*");
            if (agg.func == "COUNT")
              want = "AGG:COUNT|" + std::string(mapped_arg ? mapped_arg->ToString() : "*");
            int found = -1;
            for (size_t i = 0; i < mv.output_digests.size(); ++i)
              if (mv.output_digests[i] == want) found = static_cast<int>(i);
            if (found < 0) {
              agg_ok = false;
              break;
            }
            ExprPtr ref = MakeColumnRef("", mv.desc.schema.field(found).name);
            ref->binding = found;
            ref->type = mv.desc.schema.field(found).type;
            rolled.arg = ref;
            if (agg.func == "SUM" || agg.func == "COUNT") rolled.func = "SUM";
            // MIN/MAX keep their function.
            if (agg.func == "COUNT") rolled.result_type = DataType::Bigint();
          } else {
            // SPJ MV: evaluate the aggregate over MV columns directly.
            if (mapped_arg) {
              ExprPtr rewritten =
                  RewriteOverMv(mapped_arg, mv.output_digests, mv.desc.schema);
              if (!rewritten) {
                agg_ok = false;
                break;
              }
              rolled.arg = rewritten;
            }
          }
          new_aggs.push_back(rolled);
        }
      }
      if (!agg_ok) continue;
      if (!query.has_agg) {
        // Pure projection query over an SPJ view: every output expr must be
        // expressible over the MV.
        if (mv.summary.has_agg) continue;
      }

      // Union rewrites only supported for aggregate queries here.
      if (widen_mv_conjunct && !query.has_agg) continue;

      // --- build the MV-part plan ---
      auto mv_scan = std::make_shared<RelNode>();
      mv_scan->kind = RelKind::kScan;
      mv_scan->table = mv.desc;
      mv_scan->scan_alias = mv.desc.name;
      for (size_t i = 0; i < mv.desc.schema.num_fields(); ++i) {
        mv_scan->projected.push_back(i);
        mv_scan->schema.AddField(mv.desc.schema.field(i).name,
                                 mv.desc.schema.field(i).type);
      }
      RelNodePtr mv_part = mv_scan;
      for (const ExprPtr& f : residual) mv_part = MakeFilter(mv_part, f);

      RelNodePtr replacement;
      if (!query.has_agg) {
        // Project query outputs over the MV.
        std::vector<ExprPtr> outs;
        std::vector<std::string> names;
        bool project_ok = true;
        for (size_t i = 0; i < query.output_schema.num_fields(); ++i) {
          ExprPtr src = query.has_project
                            ? query.project_exprs[i]
                            : [&] {
                                ExprPtr r = MakeColumnRef(
                                    "", query.output_schema.field(i).name);
                                r->binding = static_cast<int>(i);
                                r->type = query.output_schema.field(i).type;
                                return r;
                              }();
          ExprPtr mapped = CloneExpr(src);
          ApplyMap(mapped, global_map, &project_ok);
          if (!project_ok) break;
          ExprPtr rewritten = RewriteOverMv(mapped, mv.output_digests, mv.desc.schema);
          if (!rewritten) {
            project_ok = false;
            break;
          }
          outs.push_back(rewritten);
          names.push_back(query.output_schema.field(i).name);
        }
        if (!project_ok) continue;
        replacement = MakeProject(mv_part, outs, names);
      } else {
        auto agg_node = std::make_shared<RelNode>();
        agg_node->kind = RelKind::kAggregate;
        agg_node->group_keys = new_keys;
        agg_node->aggs = new_aggs;
        for (size_t i = 0; i < new_keys.size(); ++i)
          agg_node->schema.AddField("_k" + std::to_string(i), new_keys[i]->type);
        for (const AggCall& a : new_aggs)
          agg_node->schema.AddField(a.name, a.result_type);

        if (widen_mv_conjunct) {
          // Partial containment (Figure 4c): MV part handles rows within
          // the MV predicate; the complement comes from the source tables.
          ExprPtr complement = ComplementRange(widen_mv_conjunct);
          if (!complement) continue;
          // Pre-aggregate both branches to the same shape, then roll up.
          auto pre_mv = std::make_shared<RelNode>();
          pre_mv->kind = RelKind::kAggregate;
          pre_mv->group_keys = new_keys;
          pre_mv->aggs = new_aggs;
          pre_mv->schema = agg_node->schema;
          pre_mv->inputs = {mv_part};

          // Source branch: rebuild the original join tree with the
          // complement conjunct (complement is in MV-global space; map back
          // to query space via the inverse map).
          std::vector<int> inverse(mv.summary.total_columns, -1);
          for (size_t g = 0; g < global_map.size(); ++g)
            if (global_map[g] >= 0) inverse[global_map[g]] = static_cast<int>(g);
          ExprPtr comp_q = CloneExpr(complement);
          bool inv_ok = true;
          ApplyMap(comp_q, inverse, &inv_ok);
          if (!inv_ok) continue;
          // node is Aggregate(...) or Project(Aggregate(...)); insert the
          // complement filter directly above the original join tree.
          RelNodePtr source_tree =
              query.aggregate_node
                  ? RelNodePtr(query.aggregate_node->inputs[0])
                  : node->inputs[0];
          RelNodePtr source_branch = MakeFilter(source_tree, comp_q);
          auto pre_src = std::make_shared<RelNode>();
          pre_src->kind = RelKind::kAggregate;
          // Source branch aggregates use the ORIGINAL (query-space) keys
          // and aggs.
          pre_src->group_keys = query.group_keys;
          pre_src->aggs = query.aggs;
          pre_src->schema = agg_node->schema;
          pre_src->inputs = {source_branch};

          auto union_node = std::make_shared<RelNode>();
          union_node->kind = RelKind::kUnion;
          union_node->schema = agg_node->schema;
          union_node->inputs = {pre_mv, pre_src};

          // Final rollup over the union.
          auto rollup = std::make_shared<RelNode>();
          rollup->kind = RelKind::kAggregate;
          for (size_t i = 0; i < new_keys.size(); ++i) {
            ExprPtr ref = MakeColumnRef("", union_node->schema.field(i).name);
            ref->binding = static_cast<int>(i);
            ref->type = union_node->schema.field(i).type;
            rollup->group_keys.push_back(ref);
            rollup->schema.AddField("_k" + std::to_string(i), ref->type);
          }
          for (size_t j = 0; j < new_aggs.size(); ++j) {
            AggCall r = new_aggs[j];
            ExprPtr ref = MakeColumnRef("", union_node->schema.field(new_keys.size() + j).name);
            ref->binding = static_cast<int>(new_keys.size() + j);
            ref->type = union_node->schema.field(new_keys.size() + j).type;
            r.arg = ref;
            if (r.func == "COUNT") r.func = "SUM";
            rollup->aggs.push_back(r);
            rollup->schema.AddField(r.name, r.result_type);
          }
          rollup->inputs = {union_node};
          replacement = rollup;
        } else {
          agg_node->inputs = {mv_part};
          replacement = agg_node;
        }

        // Re-apply the query's top projection over the new aggregate.
        if (query.has_project) {
          auto project = std::make_shared<RelNode>();
          project->kind = RelKind::kProject;
          project->exprs = query.project_exprs;  // bindings over (keys, aggs)
          project->schema = query.output_schema;
          project->inputs = {replacement};
          replacement = project;
        }
      }
      ++g_last_rewrite_count;
      return replacement;
    }
    return node;
  };

  return visit(std::move(plan));
}

}  // namespace hive
