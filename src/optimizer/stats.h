#ifndef HIVE_OPTIMIZER_STATS_H_
#define HIVE_OPTIMIZER_STATS_H_

#include "optimizer/rel.h"

namespace hive {

/// Derives `row_estimate` for every node in the plan, bottom-up, from the
/// metastore statistics attached to scans (Section 4.1). Estimates feed the
/// cost-based join reordering and the semijoin-reduction heuristic.
///
/// `runtime_overrides` (node digest -> observed rows) injects statistics
/// captured during a failed execution, the re-optimization path of Section
/// 4.2: overridden nodes take the observed cardinality instead of the
/// estimate, correcting the planner's mistakes on the rerun.
void DeriveRowEstimates(const RelNodePtr& node,
                        const std::map<std::string, int64_t>* runtime_overrides = nullptr);

/// Selectivity estimate for a bound predicate evaluated over `input`.
/// NDV-aware for equality on scan columns with statistics; heuristic
/// fractions otherwise.
double EstimateSelectivity(const ExprPtr& predicate, const RelNode& input);

}  // namespace hive

#endif  // HIVE_OPTIMIZER_STATS_H_
