#include "optimizer/stats.h"

#include <algorithm>
#include <cmath>

namespace hive {

namespace {

constexpr double kDefaultScanRows = 1000.0;

/// Column statistics lookup for a column of `node`'s output. Only scans
/// resolve; other nodes return nullptr.
const ColumnStatistics* FindColumnStats(const RelNode& node, int binding) {
  if (node.kind != RelKind::kScan) return nullptr;
  if (binding < 0 || static_cast<size_t>(binding) >= node.schema.num_fields())
    return nullptr;
  const std::string name = ToLower(node.schema.field(binding).name);
  auto it = node.table.stats.columns.find(name);
  return it == node.table.stats.columns.end() ? nullptr : &it->second;
}

double ConjunctSelectivity(const ExprPtr& e, const RelNode& input) {
  switch (e->kind) {
    case ExprKind::kLiteral:
      if (e->literal.kind() == TypeKind::kBoolean)
        return e->literal.bool_value() ? 1.0 : 0.0;
      return 1.0;
    case ExprKind::kBinary: {
      switch (e->bin_op) {
        case BinaryOp::kAnd:
          return ConjunctSelectivity(e->children[0], input) *
                 ConjunctSelectivity(e->children[1], input);
        case BinaryOp::kOr:
          return std::min(1.0, ConjunctSelectivity(e->children[0], input) +
                                   ConjunctSelectivity(e->children[1], input));
        case BinaryOp::kEq: {
          // col = literal: 1/NDV when stats exist.
          const ExprPtr& l = e->children[0];
          const ExprPtr& r = e->children[1];
          const ExprPtr* col = nullptr;
          if (l->kind == ExprKind::kColumnRef && r->kind == ExprKind::kLiteral) col = &l;
          if (r->kind == ExprKind::kColumnRef && l->kind == ExprKind::kLiteral) col = &r;
          if (col) {
            const ColumnStatistics* stats = FindColumnStats(input, (*col)->binding);
            if (stats && stats->Ndv() > 0)
              return 1.0 / static_cast<double>(stats->Ndv());
          }
          return 0.05;
        }
        case BinaryOp::kNe:
          return 0.9;
        case BinaryOp::kLt:
        case BinaryOp::kLe:
        case BinaryOp::kGt:
        case BinaryOp::kGe: {
          // Range over known min/max: interpolate.
          const ExprPtr& l = e->children[0];
          const ExprPtr& r = e->children[1];
          if (l->kind == ExprKind::kColumnRef && r->kind == ExprKind::kLiteral) {
            const ColumnStatistics* stats = FindColumnStats(input, l->binding);
            if (stats && !stats->min.is_null() && !stats->max.is_null() &&
                stats->min.kind() != TypeKind::kString) {
              double lo = stats->min.AsDouble(), hi = stats->max.AsDouble();
              double v = r->literal.AsDouble();
              if (hi > lo) {
                double frac = (v - lo) / (hi - lo);
                frac = std::clamp(frac, 0.0, 1.0);
                if (e->bin_op == BinaryOp::kLt || e->bin_op == BinaryOp::kLe) return std::max(0.01, frac);
                return std::max(0.01, 1.0 - frac);
              }
            }
          }
          return 0.33;
        }
        case BinaryOp::kLike:
          return 0.25;
        default:
          return 1.0;
      }
    }
    case ExprKind::kUnary:
      if (e->un_op == UnaryOp::kNot)
        return std::max(0.0, 1.0 - ConjunctSelectivity(e->children[0], input));
      return 1.0;
    case ExprKind::kInList: {
      double per = 0.05;
      if (e->children[0]->kind == ExprKind::kColumnRef) {
        const ColumnStatistics* stats = FindColumnStats(input, e->children[0]->binding);
        if (stats && stats->Ndv() > 0) per = 1.0 / static_cast<double>(stats->Ndv());
      }
      double s = per * static_cast<double>(e->children.size() - 1);
      s = std::min(1.0, s);
      return e->negated ? 1.0 - s : s;
    }
    case ExprKind::kBetween: {
      double s = 0.25;
      if (e->children[0]->kind == ExprKind::kColumnRef &&
          e->children[1]->kind == ExprKind::kLiteral &&
          e->children[2]->kind == ExprKind::kLiteral) {
        const ColumnStatistics* stats = FindColumnStats(input, e->children[0]->binding);
        if (stats && !stats->min.is_null() && !stats->max.is_null() &&
            stats->min.kind() != TypeKind::kString) {
          double lo = stats->min.AsDouble(), hi = stats->max.AsDouble();
          if (hi > lo) {
            double a = e->children[1]->literal.AsDouble();
            double b = e->children[2]->literal.AsDouble();
            s = std::clamp((b - a) / (hi - lo), 0.01, 1.0);
          }
        }
      }
      return e->negated ? 1.0 - s : s;
    }
    case ExprKind::kIsNull:
      return e->negated ? 0.9 : 0.1;
    default:
      return 0.5;
  }
}

double KeyNdv(const RelNode& input, const ExprPtr& key) {
  if (key->kind == ExprKind::kColumnRef) {
    const ColumnStatistics* stats = FindColumnStats(input, key->binding);
    if (stats && stats->Ndv() > 0) return static_cast<double>(stats->Ndv());
  }
  double rows = input.row_estimate >= 0 ? input.row_estimate : kDefaultScanRows;
  return std::max(1.0, rows * 0.1);
}

}  // namespace

double EstimateSelectivity(const ExprPtr& predicate, const RelNode& input) {
  return std::clamp(ConjunctSelectivity(predicate, input), 0.0001, 1.0);
}

void DeriveRowEstimates(const RelNodePtr& node,
                        const std::map<std::string, int64_t>* runtime_overrides) {
  for (const RelNodePtr& input : node->inputs)
    DeriveRowEstimates(input, runtime_overrides);
  if (runtime_overrides && !runtime_overrides->empty()) {
    auto it = runtime_overrides->find(node->Digest());
    if (it != runtime_overrides->end()) {
      node->row_estimate = static_cast<double>(it->second);
      return;
    }
  }
  switch (node->kind) {
    case RelKind::kScan: {
      double rows = static_cast<double>(node->table.stats.row_count);
      if (node->partitions_pruned) {
        double part_rows = 0;
        for (const PartitionInfo& p : node->pruned_partitions)
          part_rows += static_cast<double>(p.stats.row_count);
        if (part_rows > 0) rows = part_rows;
        else if (!node->pruned_partitions.empty() && rows > 0)
          rows = rows;  // keep table estimate if partition stats are absent
        else if (node->pruned_partitions.empty())
          rows = 0;
      }
      if (rows <= 0) rows = node->table.stats.row_count > 0 ? 1 : kDefaultScanRows;
      for (const ExprPtr& filter : node->scan_filters)
        rows *= EstimateSelectivity(filter, *node);
      node->row_estimate = std::max(rows, 0.0);
      break;
    }
    case RelKind::kValues:
      node->row_estimate = static_cast<double>(node->rows.size());
      break;
    case RelKind::kFilter:
      node->row_estimate = node->inputs[0]->row_estimate *
                           EstimateSelectivity(node->predicate, *node->inputs[0]);
      break;
    case RelKind::kProject:
    case RelKind::kWindow:
      node->row_estimate = node->inputs[0]->row_estimate;
      break;
    case RelKind::kJoin: {
      double l = node->inputs[0]->row_estimate;
      double r = node->inputs[1]->row_estimate;
      switch (node->join_type) {
        case TableRef::JoinType::kSemi:
          node->row_estimate = l * 0.5;
          break;
        case TableRef::JoinType::kAnti:
          node->row_estimate = l * 0.5;
          break;
        case TableRef::JoinType::kCross:
          node->row_estimate = l * r;
          break;
        default: {
          // FK-PK heuristic: |L join R| ~ max(L, R) for equi joins,
          // scaled down slightly per extra conjunct.
          bool has_condition = node->condition != nullptr &&
                               !(node->condition->kind == ExprKind::kLiteral);
          node->row_estimate = has_condition ? std::max(l, r) : l * r;
          if (node->join_type == TableRef::JoinType::kLeft)
            node->row_estimate = std::max(node->row_estimate, l);
          if (node->join_type == TableRef::JoinType::kRight)
            node->row_estimate = std::max(node->row_estimate, r);
          if (node->join_type == TableRef::JoinType::kFull)
            node->row_estimate = std::max(node->row_estimate, l + r);
          break;
        }
      }
      break;
    }
    case RelKind::kAggregate: {
      if (node->group_keys.empty()) {
        node->row_estimate = 1;
        break;
      }
      double groups = 1;
      for (const ExprPtr& key : node->group_keys)
        groups *= KeyNdv(*node->inputs[0], key);
      node->row_estimate =
          std::min(groups, std::max(1.0, node->inputs[0]->row_estimate));
      break;
    }
    case RelKind::kSort:
      node->row_estimate =
          node->limit >= 0
              ? std::min<double>(static_cast<double>(node->limit),
                                 node->inputs[0]->row_estimate)
              : node->inputs[0]->row_estimate;
      break;
    case RelKind::kLimit:
      node->row_estimate = std::min<double>(static_cast<double>(node->limit),
                                            node->inputs[0]->row_estimate);
      break;
    case RelKind::kUnion: {
      double total = 0;
      for (const RelNodePtr& input : node->inputs) total += input->row_estimate;
      node->row_estimate = total;
      break;
    }
    case RelKind::kMinus:
      node->row_estimate = node->inputs[0]->row_estimate;
      break;
    case RelKind::kIntersect:
      node->row_estimate =
          std::min(node->inputs[0]->row_estimate, node->inputs[1]->row_estimate);
      break;
  }
  if (node->row_estimate < 0) node->row_estimate = kDefaultScanRows;
}

}  // namespace hive
