#include "optimizer/normalize.h"

#include "common/schema.h"

namespace hive {
namespace {

/// One deep-clone walk shared by qualification and parameter substitution.
/// Either knob may be inactive; the walk always produces a fresh tree (the
/// originals are shared between concurrent EXECUTEs and must stay
/// immutable).
class Rewriter {
 public:
  Rewriter(const std::string* current_db, const TableResolver* resolver,
           const std::vector<Value>* params)
      : current_db_(current_db), resolver_(resolver), params_(params) {}

  std::shared_ptr<SelectStmt> RewriteSelect(const SelectStmt& stmt) {
    auto out = std::make_shared<SelectStmt>();
    // CTE visibility mirrors the binder: each definition sees the ones
    // before it; the body sees them all. Only names *in scope* escape
    // qualification, so a real table shadow-named by an outer CTE still
    // resolves the same way it would at bind time.
    size_t pushed = 0;
    for (const CteDef& cte : stmt.ctes) {
      CteDef copy;
      copy.name = cte.name;
      copy.query = cte.query ? RewriteSelect(*cte.query) : nullptr;
      out->ctes.push_back(std::move(copy));
      cte_scope_.push_back(ToLower(cte.name));
      ++pushed;
    }
    out->body = stmt.body ? RewriteQuery(*stmt.body) : nullptr;
    for (const OrderItem& item : stmt.order_by)
      out->order_by.push_back({RewriteExpr(item.expr), item.ascending});
    out->limit = stmt.limit;
    cte_scope_.resize(cte_scope_.size() - pushed);
    return out;
  }

  const Status& status() const { return status_; }

 private:
  std::shared_ptr<QueryExpr> RewriteQuery(const QueryExpr& q) {
    auto out = std::make_shared<QueryExpr>();
    out->op = q.op;
    if (q.op == SetOpKind::kNone) {
      out->core = RewriteCore(q.core);
    } else {
      out->left = q.left ? RewriteQuery(*q.left) : nullptr;
      out->right = q.right ? RewriteQuery(*q.right) : nullptr;
    }
    return out;
  }

  SelectCore RewriteCore(const SelectCore& core) {
    SelectCore out;
    out.distinct = core.distinct;
    for (const SelectItem& item : core.items)
      out.items.push_back({RewriteExpr(item.expr), item.alias});
    out.from = core.from ? RewriteTableRef(*core.from) : nullptr;
    out.where = RewriteExpr(core.where);
    for (const ExprPtr& e : core.group_by) out.group_by.push_back(RewriteExpr(e));
    out.grouping_sets = core.grouping_sets;
    out.having = RewriteExpr(core.having);
    return out;
  }

  TableRefPtr RewriteTableRef(const TableRef& ref) {
    auto out = std::make_shared<TableRef>(ref);
    switch (ref.kind) {
      case TableRef::Kind::kTable:
        if (out->db.empty() && !InCteScope(out->table)) {
          if (resolver_ && *resolver_) (*resolver_)(&out->db, &out->table);
          if (out->db.empty() && current_db_) out->db = *current_db_;
        }
        break;
      case TableRef::Kind::kSubquery:
        out->subquery = ref.subquery ? RewriteSelect(*ref.subquery) : nullptr;
        break;
      case TableRef::Kind::kJoin:
        out->left = ref.left ? RewriteTableRef(*ref.left) : nullptr;
        out->right = ref.right ? RewriteTableRef(*ref.right) : nullptr;
        out->condition = RewriteExpr(ref.condition);
        break;
    }
    return out;
  }

  ExprPtr RewriteExpr(const ExprPtr& e) {
    if (!e) return nullptr;
    if (e->kind == ExprKind::kParam && params_) {
      if (e->param_index < 1 ||
          static_cast<size_t>(e->param_index) > params_->size()) {
        if (status_.ok())
          status_ = Status::InvalidArgument(
              "prepared statement expects parameter ?" +
              std::to_string(e->param_index) + " but only " +
              std::to_string(params_->size()) + " argument(s) were given");
        return e;
      }
      return MakeLiteral((*params_)[e->param_index - 1]);
    }
    auto out = std::make_shared<Expr>(*e);
    for (ExprPtr& child : out->children) child = RewriteExpr(child);
    if (e->subquery) out->subquery = RewriteSelect(*e->subquery);
    if (e->window) {
      auto w = std::make_shared<WindowSpec>();
      for (const ExprPtr& p : e->window->partition_by)
        w->partition_by.push_back(RewriteExpr(p));
      for (const auto& [expr, asc] : e->window->order_by)
        w->order_by.emplace_back(RewriteExpr(expr), asc);
      out->window = std::move(w);
    }
    return out;
  }

  bool InCteScope(const std::string& table) const {
    std::string key = ToLower(table);
    for (const std::string& name : cte_scope_)
      if (name == key) return true;
    return false;
  }

  const std::string* current_db_;
  const TableResolver* resolver_;
  const std::vector<Value>* params_;
  std::vector<std::string> cte_scope_;
  Status status_;
};

}  // namespace

std::shared_ptr<SelectStmt> QualifyTables(const SelectStmt& stmt,
                                          const std::string& current_db,
                                          const TableResolver& resolver) {
  Rewriter rewriter(&current_db, &resolver, nullptr);
  return rewriter.RewriteSelect(stmt);
}

std::string NormalizedQueryText(const SelectStmt& stmt,
                                const std::string& current_db,
                                const TableResolver& resolver) {
  return QualifyTables(stmt, current_db, resolver)->ToString();
}

Result<std::shared_ptr<SelectStmt>> SubstituteParams(
    const SelectStmt& stmt, const std::vector<Value>& values) {
  Rewriter rewriter(nullptr, nullptr, &values);
  auto out = rewriter.RewriteSelect(stmt);
  HIVE_RETURN_IF_ERROR(rewriter.status());
  return out;
}

}  // namespace hive
