#ifndef HIVE_OPTIMIZER_BINDER_H_
#define HIVE_OPTIMIZER_BINDER_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/config.h"
#include "metastore/catalog.h"
#include "optimizer/normalize.h"
#include "optimizer/rel.h"
#include "common/ast.h"

namespace hive {

/// Converts parsed SELECT statements into bound logical plans (the
/// SqlToRelConverter analogue). Responsibilities:
///   * name resolution against the catalog and CTEs (case-insensitive),
///   * type derivation,
///   * aggregate/window separation,
///   * grouping-set expansion into unions,
///   * subquery decorrelation: IN/EXISTS -> semi/anti joins, correlated
///     scalar aggregates -> left joins on the correlation keys,
///   * SQL-surface checks for the legacy "Hive 1.2" compatibility mode
///     (set operations, interval notation, order-by-unselected-column and
///     grouping sets are rejected there, reproducing the Figure 7 gaps).
class Binder {
 public:
  Binder(Catalog* catalog, const Config* config, std::string current_db = "default");

  /// Installs a resolver consulted for unqualified table names before the
  /// current-database fallback (sessions use it to redirect temp-table
  /// names into the hidden temp database). CTE names in scope still win.
  void set_table_resolver(TableResolver resolver) {
    table_resolver_ = std::move(resolver);
  }

  /// Binds a full SELECT statement into a logical plan.
  Result<RelNodePtr> BindSelect(const SelectStmt& stmt);

  /// Binds a standalone scalar expression against a schema (used by DML).
  Result<ExprPtr> BindScalar(const ExprPtr& expr, const Schema& schema,
                             const std::string& alias);

  /// Binds an expression against several named row sources concatenated in
  /// order (MERGE binds its ON clause over target then source).
  Result<ExprPtr> BindAgainst(const ExprPtr& expr,
                              const std::vector<std::pair<std::string, Schema>>& tables);

  /// Tables referenced by the last BindSelect call ("db.table" names);
  /// feeds the result cache's validity tracking and MV staleness checks.
  const std::vector<std::string>& referenced_tables() const {
    return referenced_tables_;
  }

  /// True when any referenced expression calls a non-deterministic or
  /// runtime-constant function (rand, current_date...); such queries are
  /// not cacheable (Section 4.3).
  bool uses_nondeterministic() const { return uses_nondeterministic_; }

 private:
  /// One level of name-resolution scope: the FROM items visible at this
  /// query level, plus a link to the enclosing query's scope for
  /// correlated references.
  struct Scope {
    /// (alias, schema) pairs in FROM order; ordinals are cumulative.
    std::vector<std::pair<std::string, Schema>> tables;
    Scope* outer = nullptr;

    size_t TotalColumns() const;
  };

  /// Result of resolving a column name.
  struct Resolution {
    int ordinal = -1;   // within the scope level that matched
    int depth = 0;      // 0 = current scope, 1 = enclosing, ...
    DataType type;
  };

  Result<RelNodePtr> BindQueryExpr(const QueryExpr& query, Scope* outer);
  Result<RelNodePtr> BindCore(const SelectCore& core, Scope* outer);
  Result<RelNodePtr> BindCoreForSets(const SelectCore& core, Scope* outer,
                                     const std::vector<size_t>* active_set);
  Result<RelNodePtr> BindTableRef(const TableRef& ref, Scope* scope, Scope* outer);
  /// Binds a nested SELECT (subquery / CTE body) with its own CTE frame.
  Result<RelNodePtr> BindSelectSubtree(const std::shared_ptr<SelectStmt>& stmt);
  Status BindExprInPlace(const ExprPtr& e, Scope* scope, bool allow_aggregates);

  /// Binds `expr` in `scope`; outer references become column refs with
  /// qualifier "$outer" (resolved depth 1). `allow_aggregates` gates agg
  /// calls (false inside WHERE).
  Result<ExprPtr> BindExpr(const ExprPtr& expr, Scope* scope, bool allow_aggregates);

  Result<Resolution> ResolveColumn(Scope* scope, const std::string& qualifier,
                                   const std::string& name);

  /// Applies WHERE handling: plain conjuncts become a Filter; IN/EXISTS
  /// subquery conjuncts become semi/anti joins; scalar subqueries in
  /// comparisons become joins appending the scalar column.
  Result<RelNodePtr> ApplyWhere(RelNodePtr plan, Scope* scope, const ExprPtr& where);

  /// Transforms one subquery expression into a join against `plan`,
  /// returning the rewritten plan. For scalar subqueries, `*replacement`
  /// is set to a column ref addressing the appended scalar column.
  Result<RelNodePtr> ApplySubquery(RelNodePtr plan, Scope* scope, const ExprPtr& sub,
                                   ExprPtr* replacement);

  Result<DataType> DeriveFunctionType(Expr* e);
  Status DeriveType(Expr* e);

  /// Splits AND trees into conjuncts.
  static void SplitConjuncts(const ExprPtr& e, std::vector<ExprPtr>* out);

  Catalog* catalog_;
  const Config* config_;
  std::string current_db_;
  TableResolver table_resolver_;
  /// CTEs visible while binding (per BindSelect invocation).
  std::vector<std::map<std::string, std::pair<std::shared_ptr<SelectStmt>, RelNodePtr>>>
      cte_stack_;
  std::vector<std::string> referenced_tables_;
  bool uses_nondeterministic_ = false;
  /// Stack of frames collecting correlated conjuncts while binding
  /// subqueries; ApplySubquery pushes/pops.
  std::vector<std::vector<ExprPtr>> correlated_frames_;
};

/// True when `func` (upper-case) is an aggregate function name.
bool IsAggregateFunction(const std::string& func);

}  // namespace hive

#endif  // HIVE_OPTIMIZER_BINDER_H_
