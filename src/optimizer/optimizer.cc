#include "optimizer/optimizer.h"

#include "optimizer/mv_rewrite.h"
#include "optimizer/rules.h"
#include "optimizer/stats.h"

namespace hive {

Result<RelNodePtr> Optimizer::Optimize(RelNodePtr plan) {
  // Stage 1: simplification.
  plan = FoldConstants(std::move(plan));
  // Stage 2: filter pushdown.
  plan = PushDownFilters(std::move(plan));
  plan = FoldConstants(std::move(plan));
  // Stage 3: materialized view rewriting (cost-based; Section 4.4).
  if (config_->materialized_view_rewriting_enabled) {
    HIVE_ASSIGN_OR_RETURN(plan, RewriteWithMaterializedViews(std::move(plan),
                                                             catalog_, config_,
                                                             mv_filter_));
    plan = PushDownFilters(std::move(plan));
  }
  // Stage 4: static partition pruning.
  HIVE_RETURN_IF_ERROR(PrunePartitions(plan, catalog_));
  // Stage 5: cost-based join reordering.
  const auto* overrides = runtime_stats_.empty() ? nullptr : &runtime_stats_;
  if (config_->cbo_enabled) {
    DeriveRowEstimates(plan, overrides);
    plan = ReorderJoins(std::move(plan), *config_);
    plan = PushDownFilters(std::move(plan));
    HIVE_RETURN_IF_ERROR(PrunePartitions(plan, catalog_));
  }
  // Stage 6: column pruning (projection pushdown into the readers).
  plan = PruneColumns(std::move(plan));
  // Stage 7: dynamic semijoin reduction.
  DeriveRowEstimates(plan, overrides);
  HIVE_RETURN_IF_ERROR(InsertSemiJoinReducers(plan, *config_));
  DeriveRowEstimates(plan, overrides);
  return plan;
}

}  // namespace hive
