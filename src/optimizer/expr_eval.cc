#include "optimizer/expr_eval.h"

#include <cctype>
#include <cmath>

namespace hive {

bool SqlLike(const std::string& text, const std::string& pattern) {
  // Iterative wildcard match with backtracking on '%'.
  size_t t = 0, p = 0;
  size_t star_p = std::string::npos, star_t = 0;
  while (t < text.size()) {
    if (p < pattern.size() && (pattern[p] == '_' || pattern[p] == text[t])) {
      ++t;
      ++p;
    } else if (p < pattern.size() && pattern[p] == '%') {
      star_p = p++;
      star_t = t;
    } else if (star_p != std::string::npos) {
      p = star_p + 1;
      t = ++star_t;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '%') ++p;
  return p == pattern.size();
}

namespace {

Result<Value> EvalBinary(const Expr& e, const std::vector<Value>* row) {
  // AND/OR use three-valued logic with short-circuiting.
  if (e.bin_op == BinaryOp::kAnd || e.bin_op == BinaryOp::kOr) {
    HIVE_ASSIGN_OR_RETURN(Value l, EvalExpr(*e.children[0], row));
    bool is_and = e.bin_op == BinaryOp::kAnd;
    if (!l.is_null()) {
      if (is_and && !l.bool_value()) return Value::Boolean(false);
      if (!is_and && l.bool_value()) return Value::Boolean(true);
    }
    HIVE_ASSIGN_OR_RETURN(Value r, EvalExpr(*e.children[1], row));
    if (!r.is_null()) {
      if (is_and && !r.bool_value()) return Value::Boolean(false);
      if (!is_and && r.bool_value()) return Value::Boolean(true);
    }
    if (l.is_null() || r.is_null()) return Value::Null();
    return Value::Boolean(is_and);
  }

  HIVE_ASSIGN_OR_RETURN(Value l, EvalExpr(*e.children[0], row));
  HIVE_ASSIGN_OR_RETURN(Value r, EvalExpr(*e.children[1], row));
  switch (e.bin_op) {
    case BinaryOp::kEq:
    case BinaryOp::kNe:
    case BinaryOp::kLt:
    case BinaryOp::kLe:
    case BinaryOp::kGt:
    case BinaryOp::kGe: {
      if (l.is_null() || r.is_null()) return Value::Null();
      int cmp = Value::Compare(l, r);
      switch (e.bin_op) {
        case BinaryOp::kEq: return Value::Boolean(cmp == 0);
        case BinaryOp::kNe: return Value::Boolean(cmp != 0);
        case BinaryOp::kLt: return Value::Boolean(cmp < 0);
        case BinaryOp::kLe: return Value::Boolean(cmp <= 0);
        case BinaryOp::kGt: return Value::Boolean(cmp > 0);
        default: return Value::Boolean(cmp >= 0);
      }
    }
    case BinaryOp::kAdd:
    case BinaryOp::kSub: {
      if (l.is_null() || r.is_null()) return Value::Null();
      bool minus = e.bin_op == BinaryOp::kSub;
      // DATE/TIMESTAMP +/- interval (bigint days from INTERVAL_DAY).
      if (l.kind() == TypeKind::kDate)
        return Value::Date(l.i64() + (minus ? -r.AsInt64() : r.AsInt64()));
      if (l.kind() == TypeKind::kTimestamp)
        return Value::Timestamp(l.i64() +
                                (minus ? -r.AsInt64() : r.AsInt64()) * 86400000000LL);
      if (e.type.kind == TypeKind::kDouble)
        return Value::Double(minus ? l.AsDouble() - r.AsDouble()
                                   : l.AsDouble() + r.AsDouble());
      if (e.type.kind == TypeKind::kDecimal) {
        auto lc = l.CastTo(e.type);
        auto rc = r.CastTo(e.type);
        if (!lc.ok() || !rc.ok()) return Value::Null();
        return Value::Decimal(minus ? lc->i64() - rc->i64() : lc->i64() + rc->i64(),
                              e.type.scale);
      }
      return Value::Bigint(minus ? l.AsInt64() - r.AsInt64()
                                 : l.AsInt64() + r.AsInt64());
    }
    case BinaryOp::kMul: {
      if (l.is_null() || r.is_null()) return Value::Null();
      if (e.type.kind == TypeKind::kDouble)
        return Value::Double(l.AsDouble() * r.AsDouble());
      if (e.type.kind == TypeKind::kDecimal) {
        double v = l.AsDouble() * r.AsDouble();
        return Value::Decimal(static_cast<int64_t>(std::llround(v * Pow10(e.type.scale))),
                              e.type.scale);
      }
      return Value::Bigint(l.AsInt64() * r.AsInt64());
    }
    case BinaryOp::kDiv: {
      if (l.is_null() || r.is_null()) return Value::Null();
      double d = r.AsDouble();
      if (d == 0) return Value::Null();
      return Value::Double(l.AsDouble() / d);
    }
    case BinaryOp::kMod: {
      if (l.is_null() || r.is_null()) return Value::Null();
      int64_t d = r.AsInt64();
      if (d == 0) return Value::Null();
      return Value::Bigint(l.AsInt64() % d);
    }
    case BinaryOp::kLike: {
      if (l.is_null() || r.is_null()) return Value::Null();
      return Value::Boolean(SqlLike(l.kind() == TypeKind::kString ? l.str() : l.ToString(),
                                    r.str()));
    }
    case BinaryOp::kConcat: {
      if (l.is_null() || r.is_null()) return Value::Null();
      return Value::String(l.ToString() + r.ToString());
    }
    default:
      return Status::ExecError("unhandled binary op");
  }
}

Result<Value> EvalFunction(const Expr& e, const std::vector<Value>* row) {
  const std::string& f = e.func_name;
  std::vector<Value> args;
  args.reserve(e.children.size());
  for (const ExprPtr& c : e.children) {
    HIVE_ASSIGN_OR_RETURN(Value v, EvalExpr(*c, row));
    args.push_back(std::move(v));
  }
  auto null_if_arg_null = [&](size_t i) { return i < args.size() && args[i].is_null(); };

  if (f.rfind("EXTRACT_", 0) == 0 || f == "YEAR" || f == "MONTH" || f == "DAY") {
    if (null_if_arg_null(0)) return Value::Null();
    DateField field = DateField::kYear;
    std::string name = f.rfind("EXTRACT_", 0) == 0 ? f.substr(8) : f;
    if (name == "YEAR") field = DateField::kYear;
    else if (name == "QUARTER") field = DateField::kQuarter;
    else if (name == "MONTH") field = DateField::kMonth;
    else if (name == "DAY") field = DateField::kDay;
    else if (name == "HOUR") field = DateField::kHour;
    else if (name == "MINUTE") field = DateField::kMinute;
    else if (name == "SECOND") field = DateField::kSecond;
    return Value::Bigint(ExtractDateField(field, args[0]));
  }
  if (f.rfind("INTERVAL_", 0) == 0) {
    if (null_if_arg_null(0)) return Value::Null();
    std::string unit = f.substr(9);
    int64_t n = args[0].AsInt64();
    if (unit == "DAY") return Value::Bigint(n);
    if (unit == "MONTH") return Value::Bigint(n * 30);
    if (unit == "YEAR") return Value::Bigint(n * 365);
    return Value::Bigint(n);
  }
  if (f == "UPPER" || f == "LOWER") {
    if (null_if_arg_null(0)) return Value::Null();
    std::string s = args[0].kind() == TypeKind::kString ? args[0].str() : args[0].ToString();
    for (char& c : s)
      c = f == "UPPER" ? static_cast<char>(std::toupper(static_cast<unsigned char>(c)))
                       : static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    return Value::String(std::move(s));
  }
  if (f == "LENGTH") {
    if (null_if_arg_null(0)) return Value::Null();
    return Value::Bigint(static_cast<int64_t>(args[0].str().size()));
  }
  if (f == "CONCAT") {
    std::string out;
    for (const Value& v : args) {
      if (v.is_null()) return Value::Null();
      out += v.kind() == TypeKind::kString ? v.str() : v.ToString();
    }
    return Value::String(std::move(out));
  }
  if (f == "SUBSTR" || f == "SUBSTRING") {
    if (null_if_arg_null(0) || null_if_arg_null(1)) return Value::Null();
    const std::string& s = args[0].str();
    int64_t start = args[1].AsInt64();
    int64_t len = args.size() > 2 ? args[2].AsInt64() : static_cast<int64_t>(s.size());
    if (start < 1) start = 1;
    if (static_cast<size_t>(start) > s.size()) return Value::String("");
    return Value::String(s.substr(static_cast<size_t>(start - 1),
                                  static_cast<size_t>(std::max<int64_t>(0, len))));
  }
  if (f == "TRIM") {
    if (null_if_arg_null(0)) return Value::Null();
    std::string s = args[0].str();
    size_t b = s.find_first_not_of(' ');
    size_t e2 = s.find_last_not_of(' ');
    if (b == std::string::npos) return Value::String("");
    return Value::String(s.substr(b, e2 - b + 1));
  }
  if (f == "ABS") {
    if (null_if_arg_null(0)) return Value::Null();
    if (args[0].kind() == TypeKind::kDouble) return Value::Double(std::fabs(args[0].f64()));
    if (args[0].kind() == TypeKind::kDecimal)
      return Value::Decimal(std::llabs(args[0].i64()), args[0].scale());
    return Value::Bigint(std::llabs(args[0].i64()));
  }
  if (f == "ROUND") {
    if (null_if_arg_null(0)) return Value::Null();
    int64_t digits = args.size() > 1 && !args[1].is_null() ? args[1].AsInt64() : 0;
    double scale = std::pow(10.0, static_cast<double>(digits));
    return Value::Double(std::round(args[0].AsDouble() * scale) / scale);
  }
  if (f == "FLOOR") {
    if (null_if_arg_null(0)) return Value::Null();
    return Value::Bigint(static_cast<int64_t>(std::floor(args[0].AsDouble())));
  }
  if (f == "CEIL" || f == "CEILING") {
    if (null_if_arg_null(0)) return Value::Null();
    return Value::Bigint(static_cast<int64_t>(std::ceil(args[0].AsDouble())));
  }
  if (f == "COALESCE" || f == "NVL") {
    for (const Value& v : args)
      if (!v.is_null()) return v;
    return Value::Null();
  }
  if (f == "IF") {
    if (args.size() < 2) return Status::ExecError("IF needs 3 args");
    if (IsTrue(args[0])) return args[1];
    return args.size() > 2 ? args[2] : Value::Null();
  }
  if (f == "GREATEST" || f == "LEAST") {
    Value best;
    for (const Value& v : args) {
      if (v.is_null()) return Value::Null();
      if (best.is_null() || (f == "GREATEST" ? Value::Compare(v, best) > 0
                                             : Value::Compare(v, best) < 0))
        best = v;
    }
    return best;
  }
  if (f == "RAND") {
    // Deterministic per-process pseudo-random; marked non-cacheable upstream.
    static thread_local uint64_t state = 0x2545F4914F6CDD1DULL;
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return Value::Double(static_cast<double>(state >> 11) / 9007199254740992.0);
  }
  if (f == "CURRENT_DATE") return Value::Date(20000);       // fixed epoch for tests
  if (f == "CURRENT_TIMESTAMP") return Value::Timestamp(20000LL * 86400 * 1000000);
  return Status::ExecError("unknown function in evaluator: " + f);
}

}  // namespace

Result<Value> EvalExpr(const Expr& e, const std::vector<Value>* row) {
  switch (e.kind) {
    case ExprKind::kLiteral:
      return e.literal;
    case ExprKind::kColumnRef: {
      if (!row) return Status::ExecError("column reference without a row");
      if (e.binding < 0 || static_cast<size_t>(e.binding) >= row->size())
        return Status::ExecError("binding out of range: " + e.ToString());
      return (*row)[e.binding];
    }
    case ExprKind::kBinary:
      return EvalBinary(e, row);
    case ExprKind::kUnary: {
      HIVE_ASSIGN_OR_RETURN(Value v, EvalExpr(*e.children[0], row));
      if (e.un_op == UnaryOp::kNot) {
        if (v.is_null()) return Value::Null();
        return Value::Boolean(!v.bool_value());
      }
      if (v.is_null()) return Value::Null();
      if (v.kind() == TypeKind::kDouble) return Value::Double(-v.f64());
      if (v.kind() == TypeKind::kDecimal) return Value::Decimal(-v.i64(), v.scale());
      return Value::Bigint(-v.i64());
    }
    case ExprKind::kCase: {
      size_t pair_count = (e.children.size() - (e.has_else ? 1 : 0)) / 2;
      for (size_t p = 0; p < pair_count; ++p) {
        HIVE_ASSIGN_OR_RETURN(Value cond, EvalExpr(*e.children[2 * p], row));
        if (IsTrue(cond)) return EvalExpr(*e.children[2 * p + 1], row);
      }
      if (e.has_else) return EvalExpr(*e.children.back(), row);
      return Value::Null();
    }
    case ExprKind::kCast: {
      HIVE_ASSIGN_OR_RETURN(Value v, EvalExpr(*e.children[0], row));
      return v.CastTo(e.cast_type);
    }
    case ExprKind::kInList: {
      HIVE_ASSIGN_OR_RETURN(Value v, EvalExpr(*e.children[0], row));
      if (v.is_null()) return Value::Null();
      bool any_null = false;
      for (size_t i = 1; i < e.children.size(); ++i) {
        HIVE_ASSIGN_OR_RETURN(Value candidate, EvalExpr(*e.children[i], row));
        if (candidate.is_null()) {
          any_null = true;
          continue;
        }
        if (Value::Compare(v, candidate) == 0) return Value::Boolean(!e.negated);
      }
      if (any_null) return Value::Null();
      return Value::Boolean(e.negated);
    }
    case ExprKind::kBetween: {
      HIVE_ASSIGN_OR_RETURN(Value v, EvalExpr(*e.children[0], row));
      HIVE_ASSIGN_OR_RETURN(Value lo, EvalExpr(*e.children[1], row));
      HIVE_ASSIGN_OR_RETURN(Value hi, EvalExpr(*e.children[2], row));
      if (v.is_null() || lo.is_null() || hi.is_null()) return Value::Null();
      bool in_range = Value::Compare(v, lo) >= 0 && Value::Compare(v, hi) <= 0;
      return Value::Boolean(e.negated ? !in_range : in_range);
    }
    case ExprKind::kIsNull: {
      HIVE_ASSIGN_OR_RETURN(Value v, EvalExpr(*e.children[0], row));
      return Value::Boolean(e.negated ? !v.is_null() : v.is_null());
    }
    case ExprKind::kFunction:
      return EvalFunction(e, row);
    case ExprKind::kStar:
    case ExprKind::kSubquery:
    case ExprKind::kParam:
      return Status::ExecError("cannot evaluate " + e.ToString());
  }
  return Status::ExecError("unhandled expression kind");
}

}  // namespace hive
