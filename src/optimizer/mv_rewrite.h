#ifndef HIVE_OPTIMIZER_MV_REWRITE_H_
#define HIVE_OPTIMIZER_MV_REWRITE_H_

#include <functional>

#include "common/config.h"
#include "metastore/catalog.h"
#include "optimizer/rel.h"

namespace hive {

/// Materialized-view based rewriting (Section 4.4). Matches SPJA query
/// subtrees (Project? over Aggregate? over a join tree of scans+filters)
/// against registered materialized views and produces:
///
///  * full-containment rewrites: the query is answered entirely from the
///    MV (Figure 4b) — the MV's predicate set is implied by the query's,
///    its join tree matches, and every needed column/aggregate rolls up
///    from the MV's outputs;
///  * partial-containment (union) rewrites (Figure 4c): when the query's
///    range predicate is strictly wider than the MV's on one column, the
///    plan becomes MV-part UNION ALL complement-part-from-source, re-
///    aggregated on top. The same machinery drives incremental MV
///    maintenance.
///
/// `usable` filters which MVs may be used (the server rejects stale views
/// outside their staleness window before calling the optimizer).
Result<RelNodePtr> RewriteWithMaterializedViews(
    RelNodePtr plan, Catalog* catalog, const Config* config,
    const std::function<bool(const TableDesc&)>& usable = nullptr);

/// Number of MV rewrites applied in the last call (observability/tests).
int LastMvRewriteCount();

}  // namespace hive

#endif  // HIVE_OPTIMIZER_MV_REWRITE_H_
