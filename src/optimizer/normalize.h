#ifndef HIVE_OPTIMIZER_NORMALIZE_H_
#define HIVE_OPTIMIZER_NORMALIZE_H_

// AST normalization for cache keys and prepared statements.
//
// Two caches key on a statement's canonical text: the result cache and the
// prepared-statement plan cache. The raw text is ambiguous across sessions —
// `SELECT * FROM t` means different things depending on the current database
// and on session temp tables — so both keys are derived from a *qualified*
// copy of the AST in which every table reference names its physical
// database.table. EXECUTE additionally substitutes literal arguments for the
// `?` placeholders of a PREPAREd template before planning, which makes the
// substituted statement literally equal to the equivalent ad-hoc query (and
// therefore share its result-cache entry).

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "common/ast.h"

namespace hive {

/// Maps an *unqualified* table name to a physical (db, table); leaves both
/// untouched when no mapping applies. Sessions install one that redirects
/// temp-table names into the hidden temp database.
using TableResolver = std::function<void(std::string* db, std::string* table)>;

/// Deep-copies `stmt`, database-qualifying every table reference that is not
/// a CTE name in scope: an unqualified name is first offered to `resolver`
/// (may be null), then falls back to `current_db`. The input is not
/// modified; unqualified CTE references stay unqualified so the binder still
/// resolves them against the CTE stack.
std::shared_ptr<SelectStmt> QualifyTables(const SelectStmt& stmt,
                                          const std::string& current_db,
                                          const TableResolver& resolver);

/// Canonical text both caches key on: qualified AST rendered by ToString.
std::string NormalizedQueryText(const SelectStmt& stmt,
                                const std::string& current_db,
                                const TableResolver& resolver);

/// Deep-copies `stmt`, replacing each `?i` parameter with the literal
/// `values[i-1]`. Fails when a parameter index exceeds the value count.
Result<std::shared_ptr<SelectStmt>> SubstituteParams(
    const SelectStmt& stmt, const std::vector<Value>& values);

}  // namespace hive

#endif  // HIVE_OPTIMIZER_NORMALIZE_H_
