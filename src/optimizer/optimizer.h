#ifndef HIVE_OPTIMIZER_OPTIMIZER_H_
#define HIVE_OPTIMIZER_OPTIMIZER_H_

#include "common/config.h"
#include "metastore/catalog.h"
#include "optimizer/rel.h"

namespace hive {

/// Multi-stage plan optimizer (Section 4.1): each stage runs a planner-like
/// pass with a fixed rule set, mirroring how Hive drives Calcite. Stages:
///
///   1. constant folding + predicate simplification      (exhaustive)
///   2. filter pushdown                                    (exhaustive)
///   3. materialized-view rewriting                        (cost-based)
///   4. static partition pruning
///   5. cost-based join reordering (needs statistics)
///   6. second pushdown pass + column pruning
///   7. dynamic semijoin-reduction insertion               (cost-based)
///
/// The legacy v1.2 configuration disables stages 3, 5 and 7, leaving the
/// rule-based subset the original Hive shipped with.
class Optimizer {
 public:
  Optimizer(Catalog* catalog, const Config* config)
      : catalog_(catalog), config_(config) {}

  /// Re-optimization hook (Section 4.2): runtime statistics captured during
  /// a failed execution override the metastore estimates on the rerun.
  void set_runtime_stats(std::map<std::string, int64_t> stats) {
    runtime_stats_ = std::move(stats);
  }

  /// Filters which materialized views may rewrite this query (the server
  /// rejects views that are stale beyond their allowed window).
  void set_mv_filter(std::function<bool(const TableDesc&)> filter) {
    mv_filter_ = std::move(filter);
  }

  Result<RelNodePtr> Optimize(RelNodePtr plan);

 private:
  Catalog* catalog_;
  const Config* config_;
  std::map<std::string, int64_t> runtime_stats_;
  std::function<bool(const TableDesc&)> mv_filter_;
};

}  // namespace hive

#endif  // HIVE_OPTIMIZER_OPTIMIZER_H_
