#ifndef HIVE_OPTIMIZER_RULES_H_
#define HIVE_OPTIMIZER_RULES_H_

#include "common/config.h"
#include "metastore/catalog.h"
#include "optimizer/rel.h"

namespace hive {

/// Rewrite rules applied by the multi-stage optimizer (Section 4.1). Each
/// rule takes and returns a plan; rules may mutate nodes in place (plans
/// are not shared across queries).

/// Folds literal-only subexpressions, simplifies AND/OR with constants, and
/// removes always-true filters / replaces always-false filters with empty
/// Values.
RelNodePtr FoldConstants(RelNodePtr plan);

/// Pushes Filter predicates towards the scans: through projects, into join
/// sides, below unions, and finally into `scan_filters` (where they become
/// sargable pushdown candidates).
RelNodePtr PushDownFilters(RelNodePtr plan);

/// Removes unused columns: narrows scans (projection pushdown into the
/// columnar reader) and trims intermediate projects.
RelNodePtr PruneColumns(RelNodePtr plan);

/// Static partition pruning: evaluates scan filters on partition columns
/// against the partition values registered in the metastore and restricts
/// the scan to surviving partitions.
Status PrunePartitions(const RelNodePtr& plan, Catalog* catalog);

/// Cost-based join reordering over contiguous inner-join trees, greedy
/// smallest-intermediate-first, avoiding Cartesian products when possible.
/// Requires row estimates (DeriveRowEstimates).
RelNodePtr ReorderJoins(RelNodePtr plan, const Config& config);

/// Dynamic semijoin reduction (Section 4.6): for selective build sides of
/// equi joins over large scans, attaches SemiJoinReducer descriptors to the
/// probe-side scan (min/max + Bloom pushdown, or dynamic partition pruning
/// when the key is the scan's partition column).
Status InsertSemiJoinReducers(const RelNodePtr& plan, const Config& config);

}  // namespace hive

#endif  // HIVE_OPTIMIZER_RULES_H_
