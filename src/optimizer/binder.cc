#include "optimizer/binder.h"

#include <algorithm>
#include <set>

namespace hive {

namespace {

constexpr const char* kOuterMarker = "$outer";

bool ContainsOuterRef(const ExprPtr& e) {
  if (!e) return false;
  if (e->kind == ExprKind::kColumnRef && e->qualifier == kOuterMarker) return true;
  for (const ExprPtr& c : e->children)
    if (ContainsOuterRef(c)) return true;
  return false;
}

bool ContainsOnlyOuterRefs(const ExprPtr& e) {
  if (!e) return true;
  if (e->kind == ExprKind::kColumnRef) return e->qualifier == kOuterMarker;
  for (const ExprPtr& c : e->children)
    if (!ContainsOnlyOuterRefs(c)) return false;
  return true;
}

bool ContainsNoOuterRefs(const ExprPtr& e) { return !ContainsOuterRef(e); }

/// Rewrites a correlated conjunct into a join condition over
/// concat(left, right): $outer refs keep their binding (left side), inner
/// refs shift by `left_width`.
void RewriteCorrelated(const ExprPtr& e, size_t left_width) {
  if (!e) return;
  if (e->kind == ExprKind::kColumnRef) {
    if (e->qualifier == kOuterMarker) {
      e->qualifier.clear();
    } else {
      e->binding += static_cast<int>(left_width);
    }
  }
  for (const ExprPtr& c : e->children) RewriteCorrelated(c, left_width);
}

void ShiftBindings(const ExprPtr& e, int delta) {
  if (!e) return;
  if (e->kind == ExprKind::kColumnRef && e->binding >= 0) e->binding += delta;
  for (const ExprPtr& c : e->children) ShiftBindings(c, delta);
  if (e->window) {
    for (const ExprPtr& p : e->window->partition_by) ShiftBindings(p, delta);
    for (const auto& [o, asc] : e->window->order_by) ShiftBindings(o, delta);
  }
}

void CollectAggCalls(const ExprPtr& e, std::vector<ExprPtr>* out) {
  if (!e) return;
  if (e->kind == ExprKind::kFunction && !e->window && IsAggregateFunction(e->func_name)) {
    out->push_back(e);
    return;  // no nested aggregates
  }
  for (const ExprPtr& c : e->children) CollectAggCalls(c, out);
}

void CollectWindowCalls(const ExprPtr& e, std::vector<ExprPtr>* out) {
  if (!e) return;
  if (e->kind == ExprKind::kFunction && e->window) {
    out->push_back(e);
    return;
  }
  for (const ExprPtr& c : e->children) CollectWindowCalls(c, out);
}

DataType AggResultType(const std::string& func, const DataType& arg) {
  if (func == "COUNT") return DataType::Bigint();
  if (func == "AVG") return DataType::Double();
  if (func == "SUM") {
    if (arg.kind == TypeKind::kDouble) return DataType::Double();
    if (arg.kind == TypeKind::kDecimal) return DataType::Decimal(18, arg.scale);
    return DataType::Bigint();
  }
  return arg;  // MIN/MAX
}

}  // namespace

bool IsAggregateFunction(const std::string& func) {
  return func == "SUM" || func == "COUNT" || func == "MIN" || func == "MAX" ||
         func == "AVG";
}

size_t Binder::Scope::TotalColumns() const {
  size_t n = 0;
  for (const auto& [alias, schema] : tables) n += schema.num_fields();
  return n;
}

Binder::Binder(Catalog* catalog, const Config* config, std::string current_db)
    : catalog_(catalog), config_(config), current_db_(std::move(current_db)) {}

Result<RelNodePtr> Binder::BindSelect(const SelectStmt& stmt) {
  referenced_tables_.clear();
  uses_nondeterministic_ = false;
  cte_stack_.emplace_back();
  for (const CteDef& cte : stmt.ctes)
    cte_stack_.back()[ToLower(cte.name)] = {cte.query, nullptr};

  auto cleanup = [this]() { cte_stack_.pop_back(); };
  auto result = BindQueryExpr(*stmt.body, nullptr);
  if (!result.ok()) {
    cleanup();
    return result.status();
  }
  RelNodePtr plan = *result;

  // ORDER BY / LIMIT.
  if (!stmt.order_by.empty()) {
    auto sort = std::make_shared<RelNode>();
    sort->kind = RelKind::kSort;
    sort->schema = plan->schema;
    size_t original_width = plan->schema.num_fields();
    bool extended = false;

    for (const OrderItem& item : stmt.order_by) {
      ExprPtr key;
      // Ordinal reference: ORDER BY 2.
      if (item.expr->kind == ExprKind::kLiteral &&
          item.expr->literal.kind() == TypeKind::kBigint) {
        int64_t ordinal = item.expr->literal.i64();
        if (ordinal < 1 || ordinal > static_cast<int64_t>(original_width)) {
          cleanup();
          return Status::PlanError("ORDER BY ordinal out of range");
        }
        key = MakeColumnRef("", plan->schema.field(ordinal - 1).name);
        key->binding = static_cast<int>(ordinal - 1);
        key->type = plan->schema.field(ordinal - 1).type;
        sort->sort_keys.push_back({key, item.ascending});
        continue;
      }
      // Try resolving against the output schema; qualified references fall
      // back to bare names (output columns lose their table qualifiers).
      Scope out_scope;
      out_scope.tables.push_back({"", plan->schema});
      auto bound = BindExpr(item.expr, &out_scope, true);
      if (!bound.ok()) {
        ExprPtr stripped = CloneExpr(item.expr);
        std::function<void(const ExprPtr&)> strip = [&](const ExprPtr& e) {
          if (!e) return;
          if (e->kind == ExprKind::kColumnRef) e->qualifier.clear();
          for (const ExprPtr& c : e->children) strip(c);
        };
        strip(stripped);
        bound = BindExpr(stripped, &out_scope, true);
      }
      if (bound.ok()) {
        sort->sort_keys.push_back({*bound, item.ascending});
        continue;
      }
      // Order by an unselected column: push it through the final project.
      if (plan->kind == RelKind::kProject) {
        if (config_->legacy_sql_only) {
          cleanup();
          return Status::NotSupported(
              "ORDER BY on unselected column requires Hive > 1.2");
        }
        Scope in_scope;
        in_scope.tables.push_back({"", plan->inputs[0]->schema});
        auto inner = BindExpr(item.expr, &in_scope, false);
        if (inner.ok()) {
          plan->exprs.push_back(*inner);
          plan->schema.AddField("_sort" + std::to_string(plan->exprs.size()),
                                (*inner)->type);
          ExprPtr ref = MakeColumnRef("", "_sort");
          ref->binding = static_cast<int>(plan->schema.num_fields() - 1);
          ref->type = (*inner)->type;
          sort->sort_keys.push_back({ref, item.ascending});
          extended = true;
          continue;
        }
      }
      cleanup();
      return Status::PlanError("cannot resolve ORDER BY expression " +
                               item.expr->ToString());
    }
    sort->schema = plan->schema;
    sort->inputs = {plan};
    if (stmt.limit >= 0) sort->limit = stmt.limit;
    plan = sort;
    if (extended) {
      // Drop the hidden sort columns again.
      std::vector<ExprPtr> exprs;
      std::vector<std::string> names;
      for (size_t i = 0; i < original_width; ++i) {
        ExprPtr ref = MakeColumnRef("", plan->schema.field(i).name);
        ref->binding = static_cast<int>(i);
        ref->type = plan->schema.field(i).type;
        exprs.push_back(ref);
        names.push_back(plan->schema.field(i).name);
      }
      plan = MakeProject(plan, std::move(exprs), std::move(names));
    }
  } else if (stmt.limit >= 0) {
    plan = MakeLimit(plan, stmt.limit);
  }
  cleanup();
  return plan;
}

Result<RelNodePtr> Binder::BindQueryExpr(const QueryExpr& query, Scope* outer) {
  if (query.op == SetOpKind::kNone) return BindCore(query.core, outer);

  if (config_->legacy_sql_only &&
      (query.op == SetOpKind::kIntersect || query.op == SetOpKind::kExcept)) {
    return Status::NotSupported(
        "INTERSECT/EXCEPT set operations require Hive > 1.2");
  }
  HIVE_ASSIGN_OR_RETURN(RelNodePtr left, BindQueryExpr(*query.left, outer));
  HIVE_ASSIGN_OR_RETURN(RelNodePtr right, BindQueryExpr(*query.right, outer));
  if (left->schema.num_fields() != right->schema.num_fields())
    return Status::PlanError("set operation inputs differ in arity");

  auto node = std::make_shared<RelNode>();
  node->schema = left->schema;
  node->inputs = {left, right};
  switch (query.op) {
    case SetOpKind::kUnionAll:
      node->kind = RelKind::kUnion;
      return node;
    case SetOpKind::kUnionDistinct: {
      node->kind = RelKind::kUnion;
      // Distinct via aggregate-on-all-columns.
      auto distinct = std::make_shared<RelNode>();
      distinct->kind = RelKind::kAggregate;
      distinct->schema = node->schema;
      for (size_t i = 0; i < node->schema.num_fields(); ++i) {
        ExprPtr ref = MakeColumnRef("", node->schema.field(i).name);
        ref->binding = static_cast<int>(i);
        ref->type = node->schema.field(i).type;
        distinct->group_keys.push_back(ref);
      }
      distinct->inputs = {node};
      return distinct;
    }
    case SetOpKind::kIntersect:
      node->kind = RelKind::kIntersect;
      return node;
    case SetOpKind::kExcept:
      node->kind = RelKind::kMinus;
      return node;
    case SetOpKind::kNone:
      break;
  }
  return Status::Internal("unreachable set op");
}

Result<RelNodePtr> Binder::BindCore(const SelectCore& core, Scope* outer) {
  if (core.grouping_sets.empty()) return BindCoreForSets(core, outer, nullptr);
  if (config_->legacy_sql_only)
    return Status::NotSupported("GROUPING SETS require Hive > 1.2");
  // Expand grouping sets into a UNION ALL of per-set aggregations.
  RelNodePtr result;
  for (const std::vector<size_t>& set : core.grouping_sets) {
    HIVE_ASSIGN_OR_RETURN(RelNodePtr branch, BindCoreForSets(core, outer, &set));
    if (!result) {
      result = branch;
    } else {
      auto u = std::make_shared<RelNode>();
      u->kind = RelKind::kUnion;
      u->schema = result->schema;
      u->inputs = {result, branch};
      result = u;
    }
  }
  return result;
}

Result<RelNodePtr> Binder::BindTableRef(const TableRef& ref, Scope* scope, Scope* outer) {
  switch (ref.kind) {
    case TableRef::Kind::kTable: {
      std::string alias = ref.alias.empty() ? ref.table : ref.alias;
      // CTE reference?
      if (ref.db.empty()) {
        for (auto it = cte_stack_.rbegin(); it != cte_stack_.rend(); ++it) {
          auto cte = it->find(ref.table);
          if (cte != it->end()) {
            HIVE_ASSIGN_OR_RETURN(RelNodePtr plan, BindSelectSubtree(cte->second.first));
            scope->tables.push_back({alias, plan->schema});
            return plan;
          }
        }
      }
      std::string db = ref.db;
      std::string table = ref.table;
      if (db.empty()) {
        if (table_resolver_) table_resolver_(&db, &table);
        if (db.empty()) db = current_db_;
      }
      HIVE_ASSIGN_OR_RETURN(TableDesc desc, catalog_->GetTable(db, table));
      referenced_tables_.push_back(desc.FullName());
      auto scan = std::make_shared<RelNode>();
      scan->kind = RelKind::kScan;
      scan->table = desc;
      scan->scan_alias = alias;
      Schema full = desc.FullSchema();
      for (size_t i = 0; i < full.num_fields(); ++i) {
        scan->projected.push_back(i);
        scan->schema.AddField(full.field(i).name, full.field(i).type);
      }
      scope->tables.push_back({alias, scan->schema});
      return RelNodePtr(scan);
    }
    case TableRef::Kind::kSubquery: {
      HIVE_ASSIGN_OR_RETURN(RelNodePtr plan, BindSelectSubtree(ref.subquery));
      scope->tables.push_back({ref.alias, plan->schema});
      return plan;
    }
    case TableRef::Kind::kJoin: {
      HIVE_ASSIGN_OR_RETURN(RelNodePtr left, BindTableRef(*ref.left, scope, outer));
      HIVE_ASSIGN_OR_RETURN(RelNodePtr right, BindTableRef(*ref.right, scope, outer));
      ExprPtr condition;
      if (ref.condition) {
        Scope join_scope;
        join_scope.tables = scope->tables;  // includes both sides now
        join_scope.outer = outer;
        HIVE_ASSIGN_OR_RETURN(condition, BindExpr(ref.condition, &join_scope, false));
      }
      TableRef::JoinType type = ref.join_type;
      if (type == TableRef::JoinType::kCross && condition)
        type = TableRef::JoinType::kInner;
      return MakeJoin(type, std::move(left), std::move(right), std::move(condition));
    }
  }
  return Status::Internal("unreachable table ref");
}

// Helper wrapper so CTE/subquery binds keep the current CTE environment.
Result<RelNodePtr> Binder::BindSelectSubtree(const std::shared_ptr<SelectStmt>& stmt) {
  cte_stack_.emplace_back();
  for (const CteDef& cte : stmt->ctes)
    cte_stack_.back()[ToLower(cte.name)] = {cte.query, nullptr};
  auto result = BindQueryExpr(*stmt->body, nullptr);
  RelNodePtr plan;
  if (result.ok()) plan = *result;
  cte_stack_.pop_back();
  if (!result.ok()) return result.status();
  // ORDER BY inside subqueries only matters with LIMIT.
  if (!stmt->order_by.empty()) {
    auto sort = std::make_shared<RelNode>();
    sort->kind = RelKind::kSort;
    sort->schema = plan->schema;
    Scope out_scope;
    out_scope.tables.push_back({"", plan->schema});
    for (const OrderItem& item : stmt->order_by) {
      HIVE_ASSIGN_OR_RETURN(ExprPtr key, BindExpr(item.expr, &out_scope, true));
      sort->sort_keys.push_back({key, item.ascending});
    }
    sort->inputs = {plan};
    sort->limit = stmt->limit;
    return RelNodePtr(sort);
  }
  if (stmt->limit >= 0) return MakeLimit(plan, stmt->limit);
  return plan;
}

Result<Binder::Resolution> Binder::ResolveColumn(Scope* scope,
                                                 const std::string& qualifier,
                                                 const std::string& name) {
  int depth = 0;
  for (Scope* s = scope; s != nullptr; s = s->outer, ++depth) {
    size_t base = 0;
    int found = -1;
    DataType type;
    for (const auto& [alias, schema] : s->tables) {
      if (qualifier.empty() || ToLower(alias) == ToLower(qualifier)) {
        auto idx = schema.IndexOf(name);
        if (idx) {
          if (found >= 0)
            return Status::PlanError("ambiguous column reference: " + name);
          found = static_cast<int>(base + *idx);
          type = schema.field(*idx).type;
        }
      }
      base += schema.num_fields();
    }
    if (found >= 0) return Resolution{found, depth, type};
  }
  return Status::PlanError("cannot resolve column " +
                           (qualifier.empty() ? name : qualifier + "." + name));
}

Result<ExprPtr> Binder::BindExpr(const ExprPtr& expr, Scope* scope,
                                 bool allow_aggregates) {
  ExprPtr e = CloneExpr(expr);
  HIVE_RETURN_IF_ERROR(BindExprInPlace(e, scope, allow_aggregates));
  return e;
}

Status Binder::BindExprInPlace(const ExprPtr& e, Scope* scope, bool allow_aggregates) {
  if (!e) return Status::OK();
  switch (e->kind) {
    case ExprKind::kLiteral:
      e->type.kind = e->literal.kind();
      if (e->literal.kind() == TypeKind::kDecimal)
        e->type = DataType::Decimal(18, e->literal.scale());
      return Status::OK();
    case ExprKind::kColumnRef: {
      HIVE_ASSIGN_OR_RETURN(Resolution res, ResolveColumn(scope, e->qualifier, e->column));
      if (res.depth > 1)
        return Status::NotSupported("correlation depth > 1 not supported");
      e->binding = res.ordinal;
      e->type = res.type;
      if (res.depth == 1) {
        e->qualifier = kOuterMarker;
      } else {
        e->qualifier.clear();
      }
      return Status::OK();
    }
    case ExprKind::kStar:
      return Status::PlanError("'*' not allowed here");
    case ExprKind::kSubquery:
      // Subqueries are handled by ApplyWhere/ApplySubquery before generic
      // binding; reaching here means an unsupported position.
      return Status::NotSupported("subquery not supported in this position: " +
                                  e->ToString());
    case ExprKind::kParam:
      // EXECUTE substitutes literals before planning; a surviving parameter
      // means a raw PREPARE template leaked into the binder.
      return Status::PlanError("unbound parameter " + e->ToString() +
                               " (use EXECUTE to run a prepared statement)");
    default:
      break;
  }
  // COUNT(*) keeps its star child unbound.
  if (e->kind == ExprKind::kFunction && e->func_name == "COUNT" &&
      e->children.size() == 1 && e->children[0]->kind == ExprKind::kStar) {
    e->children.clear();
  }
  for (const ExprPtr& child : e->children)
    HIVE_RETURN_IF_ERROR(BindExprInPlace(child, scope, allow_aggregates));
  if (e->window) {
    for (const ExprPtr& p : e->window->partition_by)
      HIVE_RETURN_IF_ERROR(BindExprInPlace(p, scope, allow_aggregates));
    for (const auto& [o, asc] : e->window->order_by)
      HIVE_RETURN_IF_ERROR(BindExprInPlace(o, scope, allow_aggregates));
  }
  if (e->kind == ExprKind::kFunction && !allow_aggregates && !e->window &&
      IsAggregateFunction(e->func_name))
    return Status::PlanError("aggregate not allowed here: " + e->ToString());
  return DeriveType(e.get());
}

Status Binder::DeriveType(Expr* e) {
  switch (e->kind) {
    case ExprKind::kBinary: {
      const DataType& l = e->children[0]->type;
      const DataType& r = e->children[1]->type;
      switch (e->bin_op) {
        case BinaryOp::kAdd:
        case BinaryOp::kSub: {
          // date +/- interval days stays a date.
          if (l.kind == TypeKind::kDate || l.kind == TypeKind::kTimestamp) {
            e->type = l;
            return Status::OK();
          }
          [[fallthrough]];
        }
        case BinaryOp::kMul:
        case BinaryOp::kMod: {
          if (l.kind == TypeKind::kDouble || r.kind == TypeKind::kDouble)
            e->type = DataType::Double();
          else if (l.kind == TypeKind::kDecimal || r.kind == TypeKind::kDecimal)
            e->type = DataType::Decimal(
                18, std::max(l.kind == TypeKind::kDecimal ? l.scale : 0,
                             r.kind == TypeKind::kDecimal ? r.scale : 0));
          else
            e->type = DataType::Bigint();
          return Status::OK();
        }
        case BinaryOp::kDiv:
          e->type = DataType::Double();
          return Status::OK();
        case BinaryOp::kConcat:
          e->type = DataType::String();
          return Status::OK();
        default:
          e->type = DataType::Boolean();
          return Status::OK();
      }
    }
    case ExprKind::kUnary:
      e->type = e->un_op == UnaryOp::kNot ? DataType::Boolean() : e->children[0]->type;
      return Status::OK();
    case ExprKind::kCase: {
      size_t pair_count = (e->children.size() - (e->has_else ? 1 : 0)) / 2;
      e->type = pair_count > 0 ? e->children[1]->type
                               : (e->has_else ? e->children.back()->type : DataType::Null());
      if (e->type.kind == TypeKind::kNull && e->has_else)
        e->type = e->children.back()->type;
      return Status::OK();
    }
    case ExprKind::kCast:
      e->type = e->cast_type;
      return Status::OK();
    case ExprKind::kInList:
    case ExprKind::kBetween:
    case ExprKind::kIsNull:
      e->type = DataType::Boolean();
      return Status::OK();
    case ExprKind::kFunction: {
      HIVE_ASSIGN_OR_RETURN(e->type, DeriveFunctionType(e));
      return Status::OK();
    }
    default:
      return Status::OK();
  }
}

Result<DataType> Binder::DeriveFunctionType(Expr* e) {
  const std::string& f = e->func_name;
  auto arg_type = [&](size_t i) {
    return i < e->children.size() ? e->children[i]->type : DataType::Null();
  };
  if (IsAggregateFunction(f)) return AggResultType(f, arg_type(0));
  if (f == "ROW_NUMBER" || f == "RANK" || f == "DENSE_RANK") return DataType::Bigint();
  if (f.rfind("EXTRACT_", 0) == 0 || f == "YEAR" || f == "MONTH" || f == "DAY")
    return DataType::Bigint();
  if (f.rfind("INTERVAL_", 0) == 0) {
    if (config_->legacy_sql_only)
      return Status::NotSupported("INTERVAL notation requires Hive > 1.2");
    return DataType::Bigint();
  }
  if (f == "UPPER" || f == "LOWER" || f == "CONCAT" || f == "SUBSTR" ||
      f == "SUBSTRING" || f == "TRIM")
    return DataType::String();
  if (f == "LENGTH") return DataType::Bigint();
  if (f == "ABS") return arg_type(0);
  if (f == "ROUND") return arg_type(0).kind == TypeKind::kDecimal ? arg_type(0)
                                                                  : DataType::Double();
  if (f == "FLOOR" || f == "CEIL" || f == "CEILING") return DataType::Bigint();
  if (f == "COALESCE" || f == "NVL" || f == "IF" || f == "GREATEST" || f == "LEAST") {
    for (const ExprPtr& c : e->children)
      if (c->type.kind != TypeKind::kNull) return c->type;
    return DataType::Null();
  }
  if (f == "RAND") {
    uses_nondeterministic_ = true;
    return DataType::Double();
  }
  if (f == "CURRENT_DATE") {
    uses_nondeterministic_ = true;
    return DataType::Date();
  }
  if (f == "CURRENT_TIMESTAMP" || f == "UNIX_TIMESTAMP") {
    uses_nondeterministic_ = true;
    return DataType::Timestamp();
  }
  return Status::PlanError("unknown function: " + f);
}

void Binder::SplitConjuncts(const ExprPtr& e, std::vector<ExprPtr>* out) {
  if (e && e->kind == ExprKind::kBinary && e->bin_op == BinaryOp::kAnd) {
    SplitConjuncts(e->children[0], out);
    SplitConjuncts(e->children[1], out);
    return;
  }
  if (e) out->push_back(e);
}

Result<RelNodePtr> Binder::ApplyWhere(RelNodePtr plan, Scope* scope,
                                      const ExprPtr& where) {
  if (!where) return plan;
  std::vector<ExprPtr> conjuncts;
  SplitConjuncts(where, &conjuncts);
  std::vector<ExprPtr> residual;
  for (ExprPtr& conjunct : conjuncts) {
    // Normalize NOT(subquery).
    ExprPtr c = conjunct;
    if (c->kind == ExprKind::kUnary && c->un_op == UnaryOp::kNot &&
        c->children[0]->kind == ExprKind::kSubquery) {
      auto flipped = std::make_shared<Expr>(*c->children[0]);
      switch (flipped->subquery_kind) {
        case SubqueryKind::kExists: flipped->subquery_kind = SubqueryKind::kNotExists; break;
        case SubqueryKind::kNotExists: flipped->subquery_kind = SubqueryKind::kExists; break;
        case SubqueryKind::kIn: flipped->subquery_kind = SubqueryKind::kNotIn; break;
        case SubqueryKind::kNotIn: flipped->subquery_kind = SubqueryKind::kIn; break;
        case SubqueryKind::kScalar: return Status::PlanError("NOT on scalar subquery");
      }
      c = flipped;
    }
    if (c->kind == ExprKind::kSubquery) {
      HIVE_ASSIGN_OR_RETURN(plan, ApplySubquery(plan, scope, c, nullptr));
      continue;
    }
    // Comparison against a scalar subquery?
    if (c->kind == ExprKind::kBinary &&
        (c->children[0]->kind == ExprKind::kSubquery ||
         c->children[1]->kind == ExprKind::kSubquery)) {
      size_t sub_idx = c->children[0]->kind == ExprKind::kSubquery ? 0 : 1;
      ExprPtr replacement;
      HIVE_ASSIGN_OR_RETURN(
          plan, ApplySubquery(plan, scope, c->children[sub_idx], &replacement));
      auto rewritten = std::make_shared<Expr>(*c);
      rewritten->children = c->children;
      rewritten->children[sub_idx] = replacement;
      HIVE_ASSIGN_OR_RETURN(ExprPtr bound_other,
                            BindExpr(rewritten->children[1 - sub_idx], scope, false));
      rewritten->children[1 - sub_idx] = bound_other;
      rewritten->type = DataType::Boolean();
      residual.push_back(rewritten);
      continue;
    }
    HIVE_ASSIGN_OR_RETURN(ExprPtr bound, BindExpr(c, scope, false));
    if (ContainsOuterRef(bound)) {
      if (correlated_frames_.empty())
        return Status::PlanError("correlated reference outside subquery");
      correlated_frames_.back().push_back(bound);
      continue;
    }
    residual.push_back(bound);
  }
  for (const ExprPtr& f : residual) plan = MakeFilter(plan, f);
  return plan;
}

Result<RelNodePtr> Binder::ApplySubquery(RelNodePtr plan, Scope* scope,
                                         const ExprPtr& sub, ExprPtr* replacement) {
  const SelectStmt& stmt = *sub->subquery;
  size_t left_width = plan->schema.num_fields();

  // Correlation is only supported for single-core subqueries.
  bool simple_core = stmt.body->op == SetOpKind::kNone && stmt.ctes.empty();

  if (simple_core) {
    const SelectCore& core = stmt.body->core;
    // Bind the subquery's FROM/WHERE manually, collecting correlated
    // conjuncts into a fresh frame.
    Scope sub_scope;
    sub_scope.outer = scope;
    correlated_frames_.emplace_back();
    Result<RelNodePtr> inner_result =
        core.from ? BindTableRef(*core.from, &sub_scope, scope)
                  : Status::PlanError("subquery without FROM");
    if (!inner_result.ok()) {
      correlated_frames_.pop_back();
      return inner_result.status();
    }
    RelNodePtr inner = *inner_result;
    Result<RelNodePtr> filtered = ApplyWhere(inner, &sub_scope, core.where);
    if (!filtered.ok()) {
      correlated_frames_.pop_back();
      return filtered.status();
    }
    inner = *filtered;
    std::vector<ExprPtr> correlated = std::move(correlated_frames_.back());
    correlated_frames_.pop_back();

    if (!correlated.empty()) {
      // --- correlated paths ---
      if (sub->subquery_kind == SubqueryKind::kExists ||
          sub->subquery_kind == SubqueryKind::kNotExists ||
          sub->subquery_kind == SubqueryKind::kIn ||
          sub->subquery_kind == SubqueryKind::kNotIn) {
        ExprPtr condition;
        for (const ExprPtr& c : correlated) {
          ExprPtr cc = CloneExpr(c);
          RewriteCorrelated(cc, left_width);
          condition = condition ? MakeBinary(BinaryOp::kAnd, condition, cc) : cc;
          if (condition) condition->type = DataType::Boolean();
        }
        if (sub->subquery_kind == SubqueryKind::kIn ||
            sub->subquery_kind == SubqueryKind::kNotIn) {
          if (core.items.size() != 1)
            return Status::PlanError("IN subquery must select one column");
          HIVE_ASSIGN_OR_RETURN(ExprPtr outer_item,
                                BindExpr(sub->children[0], scope, false));
          HIVE_ASSIGN_OR_RETURN(ExprPtr inner_item,
                                BindExpr(core.items[0].expr, &sub_scope, false));
          if (ContainsOuterRef(inner_item))
            return Status::NotSupported("correlated IN select item");
          ExprPtr inner_shifted = CloneExpr(inner_item);
          ShiftBindings(inner_shifted, static_cast<int>(left_width));
          ExprPtr eq = MakeBinary(BinaryOp::kEq, outer_item, inner_shifted);
          eq->type = DataType::Boolean();
          condition = condition ? MakeBinary(BinaryOp::kAnd, condition, eq) : eq;
          condition->type = DataType::Boolean();
        }
        bool anti = sub->subquery_kind == SubqueryKind::kNotExists ||
                    sub->subquery_kind == SubqueryKind::kNotIn;
        return MakeJoin(anti ? TableRef::JoinType::kAnti : TableRef::JoinType::kSemi,
                        plan, inner, condition);
      }
      // Correlated scalar subquery: must be a lone aggregate over the
      // correlation groups, decorrelated into a LEFT JOIN on the keys.
      if (config_->legacy_sql_only)
        return Status::NotSupported(
            "correlated scalar subqueries require Hive > 1.2");
      if (core.items.size() != 1 || !core.group_by.empty())
        return Status::NotSupported("unsupported correlated scalar subquery shape");
      std::vector<ExprPtr> agg_calls;
      CollectAggCalls(core.items[0].expr, &agg_calls);
      if (agg_calls.size() != 1 || core.items[0].expr->kind != ExprKind::kFunction)
        return Status::NotSupported(
            "correlated scalar subquery must be a single aggregate");
      // Every correlated conjunct must be outer = inner equality.
      std::vector<ExprPtr> outer_keys, inner_keys;
      for (const ExprPtr& c : correlated) {
        if (c->kind != ExprKind::kBinary || c->bin_op != BinaryOp::kEq)
          return Status::NotSupported(
              "correlated scalar subquery with non-equi condition");
        ExprPtr a = c->children[0], b = c->children[1];
        if (ContainsOnlyOuterRefs(a) && ContainsNoOuterRefs(b)) {
          outer_keys.push_back(a);
          inner_keys.push_back(b);
        } else if (ContainsOnlyOuterRefs(b) && ContainsNoOuterRefs(a)) {
          outer_keys.push_back(b);
          inner_keys.push_back(a);
        } else {
          return Status::NotSupported(
              "correlated scalar subquery with non-equi condition");
        }
      }
      HIVE_ASSIGN_OR_RETURN(ExprPtr agg_arg_holder,
                            BindExpr(core.items[0].expr, &sub_scope, true));
      // Build Aggregate(group by inner keys, the agg call).
      auto agg = std::make_shared<RelNode>();
      agg->kind = RelKind::kAggregate;
      agg->inputs = {inner};
      for (size_t i = 0; i < inner_keys.size(); ++i) {
        agg->group_keys.push_back(inner_keys[i]);
        agg->schema.AddField("_ck" + std::to_string(i), inner_keys[i]->type);
      }
      AggCall call;
      call.func = agg_arg_holder->func_name;
      call.arg = agg_arg_holder->children.empty() ? nullptr : agg_arg_holder->children[0];
      call.distinct = agg_arg_holder->distinct;
      call.result_type = agg_arg_holder->type;
      call.name = "_scalar";
      agg->schema.AddField(call.name, call.result_type);
      agg->aggs.push_back(call);

      ExprPtr condition;
      for (size_t i = 0; i < outer_keys.size(); ++i) {
        ExprPtr outer_expr = CloneExpr(outer_keys[i]);
        RewriteCorrelated(outer_expr, left_width);  // clears $outer markers
        ExprPtr key_ref = MakeColumnRef("", agg->schema.field(i).name);
        key_ref->binding = static_cast<int>(left_width + i);
        key_ref->type = agg->schema.field(i).type;
        ExprPtr eq = MakeBinary(BinaryOp::kEq, outer_expr, key_ref);
        eq->type = DataType::Boolean();
        condition = condition ? MakeBinary(BinaryOp::kAnd, condition, eq) : eq;
        condition->type = DataType::Boolean();
      }
      RelNodePtr joined = MakeJoin(TableRef::JoinType::kLeft, plan, agg, condition);
      if (replacement) {
        ExprPtr ref = MakeColumnRef("", "_scalar");
        ref->binding = static_cast<int>(left_width + inner_keys.size());
        ref->type = call.result_type;
        *replacement = ref;
      }
      // Extend the caller's scope with the appended columns so later
      // conjuncts/items still resolve by ordinal.
      scope->tables.push_back({"$scalar", agg->schema});
      return joined;
    }
    // fall through: uncorrelated simple core handled by the generic path
  }

  // --- uncorrelated general path: bind the whole subquery normally ---
  HIVE_ASSIGN_OR_RETURN(RelNodePtr subplan, BindSelectSubtree(sub->subquery));
  switch (sub->subquery_kind) {
    case SubqueryKind::kExists:
    case SubqueryKind::kNotExists: {
      ExprPtr condition = MakeLiteral(Value::Boolean(true));
      condition->type = DataType::Boolean();
      return MakeJoin(sub->subquery_kind == SubqueryKind::kExists
                          ? TableRef::JoinType::kSemi
                          : TableRef::JoinType::kAnti,
                      plan, subplan, condition);
    }
    case SubqueryKind::kIn:
    case SubqueryKind::kNotIn: {
      if (subplan->schema.num_fields() != 1)
        return Status::PlanError("IN subquery must produce one column");
      HIVE_ASSIGN_OR_RETURN(ExprPtr outer_item, BindExpr(sub->children[0], scope, false));
      ExprPtr inner_ref = MakeColumnRef("", subplan->schema.field(0).name);
      inner_ref->binding = static_cast<int>(left_width);
      inner_ref->type = subplan->schema.field(0).type;
      ExprPtr eq = MakeBinary(BinaryOp::kEq, outer_item, inner_ref);
      eq->type = DataType::Boolean();
      return MakeJoin(sub->subquery_kind == SubqueryKind::kIn
                          ? TableRef::JoinType::kSemi
                          : TableRef::JoinType::kAnti,
                      plan, subplan, eq);
    }
    case SubqueryKind::kScalar: {
      if (config_->legacy_sql_only)
        return Status::NotSupported("scalar subqueries require Hive > 1.2");
      if (subplan->schema.num_fields() != 1)
        return Status::PlanError("scalar subquery must produce one column");
      // Guarantee at most one row.
      bool single_row = subplan->kind == RelKind::kAggregate &&
                        subplan->group_keys.empty();
      if (!single_row) subplan = MakeLimit(subplan, 1);
      RelNodePtr joined =
          MakeJoin(TableRef::JoinType::kLeft, plan, subplan,
                   [&] {
                     ExprPtr t = MakeLiteral(Value::Boolean(true));
                     t->type = DataType::Boolean();
                     return t;
                   }());
      if (replacement) {
        ExprPtr ref = MakeColumnRef("", subplan->schema.field(0).name);
        ref->binding = static_cast<int>(left_width);
        ref->type = subplan->schema.field(0).type;
        *replacement = ref;
      }
      scope->tables.push_back({"$scalar", subplan->schema});
      return joined;
    }
  }
  return Status::Internal("unreachable subquery kind");
}

namespace {

std::string AggDigest(const std::string& func, const ExprPtr& arg, bool distinct) {
  std::string d = func;
  d += "|";
  d += arg ? arg->ToString() : "*";
  if (distinct) d += "|D";
  return d;
}

/// Rewrites a bound expression into one over the aggregate output: group
/// key subtrees become refs to [0, num_keys), aggregate calls become refs
/// to [num_keys, num_keys + num_aggs).
Status RewriteForAgg(ExprPtr& e, const std::vector<std::string>& key_digests,
                     const std::vector<DataType>& key_types,
                     const std::vector<AggCall>& aggs) {
  if (!e) return Status::OK();
  std::string digest = e->ToString();
  for (size_t i = 0; i < key_digests.size(); ++i) {
    if (digest == key_digests[i]) {
      ExprPtr ref = MakeColumnRef("", "_k" + std::to_string(i));
      ref->binding = static_cast<int>(i);
      ref->type = key_types[i];
      e = ref;
      return Status::OK();
    }
  }
  if (e->kind == ExprKind::kFunction && !e->window && IsAggregateFunction(e->func_name)) {
    std::string want =
        AggDigest(e->func_name, e->children.empty() ? nullptr : e->children[0],
                  e->distinct);
    for (size_t j = 0; j < aggs.size(); ++j) {
      if (AggDigest(aggs[j].func, aggs[j].arg, aggs[j].distinct) == want) {
        ExprPtr ref = MakeColumnRef("", aggs[j].name);
        ref->binding = static_cast<int>(key_digests.size() + j);
        ref->type = aggs[j].result_type;
        e = ref;
        return Status::OK();
      }
    }
    return Status::PlanError("aggregate call not found: " + e->ToString());
  }
  if (e->kind == ExprKind::kColumnRef)
    return Status::PlanError("column " + e->ToString() +
                             " is neither grouped nor aggregated");
  for (ExprPtr& c : e->children) HIVE_RETURN_IF_ERROR(RewriteForAgg(c, key_digests, key_types, aggs));
  if (e->window) {
    for (ExprPtr& p : e->window->partition_by)
      HIVE_RETURN_IF_ERROR(RewriteForAgg(p, key_digests, key_types, aggs));
    for (auto& [o, asc] : e->window->order_by)
      HIVE_RETURN_IF_ERROR(RewriteForAgg(o, key_digests, key_types, aggs));
  }
  return Status::OK();
}

/// Replaces window-call subtrees with refs into the window node's output.
void RewriteForWindow(ExprPtr& e, const std::vector<std::string>& digests,
                      size_t base, const std::vector<WindowCall>& calls) {
  if (!e) return;
  if (e->kind == ExprKind::kFunction && e->window) {
    std::string digest = e->ToString();
    for (size_t i = 0; i < digests.size(); ++i) {
      if (digest == digests[i]) {
        ExprPtr ref = MakeColumnRef("", calls[i].name);
        ref->binding = static_cast<int>(base + i);
        ref->type = calls[i].result_type;
        e = ref;
        return;
      }
    }
  }
  for (ExprPtr& c : e->children) RewriteForWindow(c, digests, base, calls);
}

}  // namespace

Result<RelNodePtr> Binder::BindCoreForSets(const SelectCore& core, Scope* outer,
                                           const std::vector<size_t>* active_set) {
  Scope scope;
  scope.outer = outer;
  RelNodePtr plan;
  if (core.from) {
    HIVE_ASSIGN_OR_RETURN(plan, BindTableRef(*core.from, &scope, outer));
  } else {
    // SELECT <exprs> without FROM: a single empty row.
    plan = std::make_shared<RelNode>();
    plan->kind = RelKind::kValues;
    plan->rows.push_back({});
  }
  HIVE_ASSIGN_OR_RETURN(plan, ApplyWhere(plan, &scope, core.where));

  // Expand stars and handle scalar subqueries appearing as select items.
  std::vector<SelectItem> items;
  for (const SelectItem& item : core.items) {
    if (item.expr->kind == ExprKind::kStar) {
      size_t base = 0;
      for (const auto& [alias, schema] : scope.tables) {
        bool match = item.expr->qualifier.empty() ||
                     ToLower(alias) == ToLower(item.expr->qualifier);
        if (alias == "$scalar") match = false;  // internal columns stay hidden
        for (size_t i = 0; i < schema.num_fields(); ++i) {
          if (!match) continue;
          SelectItem expanded;
          ExprPtr ref = MakeColumnRef(alias, schema.field(i).name);
          expanded.expr = ref;
          expanded.alias = schema.field(i).name;
          items.push_back(std::move(expanded));
        }
        base += schema.num_fields();
      }
      continue;
    }
    items.push_back(item);
  }

  // Bind the select items; scalar subqueries become joins first.
  std::vector<ExprPtr> bound_items;
  std::vector<std::string> names;
  for (size_t i = 0; i < items.size(); ++i) {
    ExprPtr raw = items[i].expr;
    if (raw->kind == ExprKind::kSubquery &&
        raw->subquery_kind == SubqueryKind::kScalar) {
      ExprPtr replacement;
      HIVE_ASSIGN_OR_RETURN(plan, ApplySubquery(plan, &scope, raw, &replacement));
      bound_items.push_back(replacement);
    } else {
      HIVE_ASSIGN_OR_RETURN(ExprPtr bound, BindExpr(raw, &scope, true));
      if (ContainsOuterRef(bound))
        return Status::NotSupported("correlated reference in select list");
      bound_items.push_back(bound);
    }
    std::string name = items[i].alias;
    if (name.empty()) {
      name = bound_items[i]->kind == ExprKind::kColumnRef ? bound_items[i]->column
                                                          : "_c" + std::to_string(i);
    }
    names.push_back(ToLower(name));
  }

  // HAVING is bound against the same scope (aggregates allowed).
  ExprPtr bound_having;
  if (core.having) {
    HIVE_ASSIGN_OR_RETURN(bound_having, BindExpr(core.having, &scope, true));
  }

  // Aggregation phase.
  std::vector<ExprPtr> bound_keys;
  for (const ExprPtr& key : core.group_by) {
    HIVE_ASSIGN_OR_RETURN(ExprPtr bound, BindExpr(key, &scope, false));
    bound_keys.push_back(bound);
  }
  std::vector<ExprPtr> agg_exprs;
  for (const ExprPtr& item : bound_items) CollectAggCalls(item, &agg_exprs);
  if (bound_having) CollectAggCalls(bound_having, &agg_exprs);

  bool has_agg = !bound_keys.empty() || !agg_exprs.empty();
  if (has_agg) {
    // Deduplicate aggregate calls by digest.
    std::vector<AggCall> aggs;
    std::set<std::string> seen;
    for (const ExprPtr& call : agg_exprs) {
      ExprPtr arg = call->children.empty() ? nullptr : call->children[0];
      std::string digest = AggDigest(call->func_name, arg, call->distinct);
      if (!seen.insert(digest).second) continue;
      AggCall agg;
      agg.func = call->func_name;
      agg.arg = arg;
      agg.distinct = call->distinct;
      agg.result_type = call->type;
      agg.name = "_a" + std::to_string(aggs.size());
      aggs.push_back(std::move(agg));
    }

    // The active grouping set keeps a subset of keys.
    std::vector<bool> active(bound_keys.size(), true);
    if (active_set) {
      active.assign(bound_keys.size(), false);
      for (size_t k : *active_set) active[k] = true;
    }
    auto agg_node = std::make_shared<RelNode>();
    agg_node->kind = RelKind::kAggregate;
    agg_node->inputs = {plan};
    std::vector<int> key_to_output(bound_keys.size(), -1);
    for (size_t i = 0; i < bound_keys.size(); ++i) {
      if (!active[i]) continue;
      key_to_output[i] = static_cast<int>(agg_node->group_keys.size());
      agg_node->group_keys.push_back(bound_keys[i]);
      agg_node->schema.AddField("_k" + std::to_string(i), bound_keys[i]->type);
    }
    for (const AggCall& agg : aggs)
      agg_node->schema.AddField(agg.name, agg.result_type);
    agg_node->aggs = aggs;
    plan = agg_node;

    // Normalize to the full key list: project NULL for inactive keys so all
    // grouping-set branches share one schema.
    if (active_set) {
      std::vector<ExprPtr> proj;
      std::vector<std::string> proj_names;
      for (size_t i = 0; i < bound_keys.size(); ++i) {
        if (key_to_output[i] >= 0) {
          ExprPtr ref = MakeColumnRef("", "_k" + std::to_string(i));
          ref->binding = key_to_output[i];
          ref->type = bound_keys[i]->type;
          proj.push_back(ref);
        } else {
          ExprPtr null_lit = MakeLiteral(Value::Null());
          null_lit->type = bound_keys[i]->type;
          proj.push_back(null_lit);
        }
        proj_names.push_back("_k" + std::to_string(i));
      }
      size_t active_keys = agg_node->group_keys.size();
      for (size_t j = 0; j < aggs.size(); ++j) {
        ExprPtr ref = MakeColumnRef("", aggs[j].name);
        ref->binding = static_cast<int>(active_keys + j);
        ref->type = aggs[j].result_type;
        proj.push_back(ref);
        proj_names.push_back(aggs[j].name);
      }
      plan = MakeProject(plan, std::move(proj), std::move(proj_names));
    }

    // Rewrite items/having over the aggregate output.
    std::vector<std::string> key_digests;
    std::vector<DataType> key_types;
    for (const ExprPtr& key : bound_keys) {
      key_digests.push_back(key->ToString());
      key_types.push_back(key->type);
    }
    for (ExprPtr& item : bound_items)
      HIVE_RETURN_IF_ERROR(RewriteForAgg(item, key_digests, key_types, aggs));
    if (bound_having) {
      HIVE_RETURN_IF_ERROR(RewriteForAgg(bound_having, key_digests, key_types, aggs));
      plan = MakeFilter(plan, bound_having);
    }
  } else if (bound_having) {
    plan = MakeFilter(plan, bound_having);
  }

  // Window phase.
  std::vector<ExprPtr> window_exprs;
  for (const ExprPtr& item : bound_items) CollectWindowCalls(item, &window_exprs);
  if (!window_exprs.empty()) {
    auto window_node = std::make_shared<RelNode>();
    window_node->kind = RelKind::kWindow;
    window_node->schema = plan->schema;
    std::vector<std::string> digests;
    for (const ExprPtr& call : window_exprs) {
      std::string digest = call->ToString();
      bool dup = false;
      for (const std::string& d : digests)
        if (d == digest) dup = true;
      if (dup) continue;
      WindowCall w;
      w.func = call->func_name;
      w.arg = call->children.empty() ? nullptr : call->children[0];
      w.partition_by = call->window->partition_by;
      w.order_by = call->window->order_by;
      w.result_type = call->type;
      w.name = "_w" + std::to_string(window_node->window_calls.size());
      window_node->schema.AddField(w.name, w.result_type);
      window_node->window_calls.push_back(std::move(w));
      digests.push_back(digest);
    }
    size_t base = plan->schema.num_fields();
    window_node->inputs = {plan};
    plan = window_node;
    for (ExprPtr& item : bound_items)
      RewriteForWindow(item, digests, base, plan->window_calls);
  }

  plan = MakeProject(plan, bound_items, names);

  if (core.distinct) {
    auto distinct = std::make_shared<RelNode>();
    distinct->kind = RelKind::kAggregate;
    distinct->schema = plan->schema;
    for (size_t i = 0; i < plan->schema.num_fields(); ++i) {
      ExprPtr ref = MakeColumnRef("", plan->schema.field(i).name);
      ref->binding = static_cast<int>(i);
      ref->type = plan->schema.field(i).type;
      distinct->group_keys.push_back(ref);
    }
    distinct->inputs = {plan};
    plan = distinct;
  }
  return plan;
}

Result<ExprPtr> Binder::BindScalar(const ExprPtr& expr, const Schema& schema,
                                   const std::string& alias) {
  Scope scope;
  scope.tables.push_back({alias, schema});
  return BindExpr(expr, &scope, false);
}

Result<ExprPtr> Binder::BindAgainst(
    const ExprPtr& expr, const std::vector<std::pair<std::string, Schema>>& tables) {
  Scope scope;
  scope.tables = tables;
  return BindExpr(expr, &scope, false);
}

}  // namespace hive
