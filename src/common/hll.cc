#include "common/hll.h"

#include <cmath>

#include "common/hash.h"
#include "common/serde.h"

namespace hive {

HyperLogLog::HyperLogLog(int precision) : precision_(precision) {
  if (precision_ < 4) precision_ = 4;
  if (precision_ > 16) precision_ = 16;
  registers_.assign(1u << precision_, 0);
}

void HyperLogLog::AddHash(uint64_t h) {
  uint32_t idx = static_cast<uint32_t>(h >> (64 - precision_));
  uint64_t rest = h << precision_;
  // Rank = position of leftmost 1-bit in the remaining bits, 1-based.
  int rank = rest == 0 ? (64 - precision_ + 1) : (__builtin_clzll(rest) + 1);
  if (rank > registers_[idx]) registers_[idx] = static_cast<uint8_t>(rank);
}

void HyperLogLog::AddInt64(int64_t v) { AddHash(Murmur64(&v, sizeof v, 0x5eed)); }
void HyperLogLog::AddString(const std::string& s) {
  AddHash(Murmur64(s.data(), s.size(), 0x5eed));
}

uint64_t HyperLogLog::Estimate() const {
  const double m = static_cast<double>(registers_.size());
  double alpha;
  if (registers_.size() >= 128) {
    alpha = 0.7213 / (1.0 + 1.079 / m);
  } else if (registers_.size() == 64) {
    alpha = 0.709;
  } else if (registers_.size() == 32) {
    alpha = 0.697;
  } else {
    alpha = 0.673;
  }
  double sum = 0;
  int zeros = 0;
  for (uint8_t r : registers_) {
    sum += std::ldexp(1.0, -r);
    if (r == 0) ++zeros;
  }
  double est = alpha * m * m / sum;
  if (est <= 2.5 * m && zeros != 0) {
    // Linear counting correction for small cardinalities.
    est = m * std::log(m / zeros);
  }
  return static_cast<uint64_t>(est + 0.5);
}

Status HyperLogLog::MergeFrom(const HyperLogLog& other) {
  if (other.precision_ != precision_)
    return Status::InvalidArgument("HLL precision mismatch");
  for (size_t i = 0; i < registers_.size(); ++i)
    registers_[i] = std::max(registers_[i], other.registers_[i]);
  return Status::OK();
}

void HyperLogLog::Serialize(std::string* out) const {
  serde::PutU32(out, static_cast<uint32_t>(precision_));
  out->append(reinterpret_cast<const char*>(registers_.data()), registers_.size());
}

Result<HyperLogLog> HyperLogLog::Deserialize(const std::string& data, size_t* offset) {
  uint32_t p;
  if (!serde::GetU32(data, offset, &p)) return Status::Corruption("hll header");
  HyperLogLog hll(static_cast<int>(p));
  size_t n = 1u << hll.precision_;
  if (*offset + n > data.size()) return Status::Corruption("hll registers");
  for (size_t i = 0; i < n; ++i)
    hll.registers_[i] = static_cast<uint8_t>(data[*offset + i]);
  *offset += n;
  return hll;
}

}  // namespace hive
