#ifndef HIVE_COMMON_STATUS_H_
#define HIVE_COMMON_STATUS_H_

#include <string>
#include <utility>

namespace hive {

/// Error categories used across the system. Mirrors the RocksDB-style
/// status idiom: no exceptions on hot paths, every fallible operation
/// returns a Status (or Result<T>).
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kIoError,
  kCorruption,
  kNotSupported,      // e.g. SQL features missing in the v1.2 compatibility mode
  kTxnAborted,        // transaction conflict / explicit abort
  kLockTimeout,
  kParseError,
  kPlanError,
  kExecError,
  kResourceExhausted, // workload manager rejections / kills
  kInternal,
};

/// Lightweight status object. Ok status carries no allocation.
///
/// Marked [[nodiscard]] (and the build promotes the warning to an error):
/// silently dropping a fallible call's Status is how lost-ack renames and
/// half-applied DML slip through. An *intentional* discard is written
/// `(void)expr;` with an adjacent `// lint: allow-discard(<reason>)`
/// comment, which tools/hivelint checks for.
///
/// A status may additionally be marked *transient*: the operation failed in
/// a way that a retry of the same call can plausibly succeed (a flaky read,
/// a lost rename ack, a corrupted byte on the wire). The task-attempt retry
/// layer re-runs transient failures up to `task.max.attempts`; permanent
/// errors fail fast. Mirrors the Tez distinction between task-attempt
/// failures (re-run elsewhere) and fatal job errors.
class [[nodiscard]] Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string msg) : code_(code), msg_(std::move(msg)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string m) { return {StatusCode::kInvalidArgument, std::move(m)}; }
  static Status NotFound(std::string m) { return {StatusCode::kNotFound, std::move(m)}; }
  static Status AlreadyExists(std::string m) { return {StatusCode::kAlreadyExists, std::move(m)}; }
  static Status IoError(std::string m) { return {StatusCode::kIoError, std::move(m)}; }
  static Status Corruption(std::string m) { return {StatusCode::kCorruption, std::move(m)}; }
  static Status NotSupported(std::string m) { return {StatusCode::kNotSupported, std::move(m)}; }
  static Status TxnAborted(std::string m) { return {StatusCode::kTxnAborted, std::move(m)}; }
  static Status LockTimeout(std::string m) { return {StatusCode::kLockTimeout, std::move(m)}; }
  static Status ParseError(std::string m) { return {StatusCode::kParseError, std::move(m)}; }
  static Status PlanError(std::string m) { return {StatusCode::kPlanError, std::move(m)}; }
  static Status ExecError(std::string m) { return {StatusCode::kExecError, std::move(m)}; }
  static Status ResourceExhausted(std::string m) { return {StatusCode::kResourceExhausted, std::move(m)}; }
  static Status Internal(std::string m) { return {StatusCode::kInternal, std::move(m)}; }
  /// A retryable I/O failure (flaky read, lost ack). The retry layer treats
  /// any status with the transient bit as eligible for another attempt.
  static Status TransientIoError(std::string m) {
    return Status(StatusCode::kIoError, std::move(m)).MarkTransient();
  }

  /// Flags this status as retryable; returns *this for chaining, e.g.
  /// `return Status::Corruption("checksum").MarkTransient();`.
  Status&& MarkTransient() && {
    transient_ = true;
    return std::move(*this);
  }
  Status& MarkTransient() & {
    transient_ = true;
    return *this;
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return msg_; }

  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsNotSupported() const { return code_ == StatusCode::kNotSupported; }
  bool IsTxnAborted() const { return code_ == StatusCode::kTxnAborted; }
  bool IsExecError() const { return code_ == StatusCode::kExecError; }
  /// True when a retry of the failed operation may succeed.
  bool IsTransient() const { return transient_; }

  /// "OK" or "<code>: <message>" for diagnostics.
  std::string ToString() const;

 private:
  StatusCode code_;
  bool transient_ = false;
  std::string msg_;
};

/// Either a value or an error status. Minimal StatusOr-style wrapper.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : status_(Status::OK()), value_(std::move(value)) {}  // NOLINT
  Result(Status s) : status_(std::move(s)) {}                           // NOLINT

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }
  T& value() { return value_; }
  const T& value() const { return value_; }
  T& operator*() { return value_; }
  const T& operator*() const { return value_; }
  T* operator->() { return &value_; }
  const T* operator->() const { return &value_; }

 private:
  Status status_;
  T value_{};
};

/// Propagates a non-OK Status from an expression.
#define HIVE_RETURN_IF_ERROR(expr)            \
  do {                                        \
    ::hive::Status _st = (expr);              \
    if (!_st.ok()) return _st;                \
  } while (0)

/// Evaluates a Result<T> expression and assigns its value, or propagates
/// the error. Usage: HIVE_ASSIGN_OR_RETURN(auto v, Foo());
#define HIVE_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                               \
  if (!tmp.ok()) return tmp.status();              \
  lhs = std::move(tmp.value())
#define HIVE_ASSIGN_OR_RETURN(lhs, expr) \
  HIVE_ASSIGN_OR_RETURN_IMPL(HIVE_CONCAT_(_res, __LINE__), lhs, expr)
#define HIVE_CONCAT_(a, b) HIVE_CONCAT_IMPL_(a, b)
#define HIVE_CONCAT_IMPL_(a, b) a##b

}  // namespace hive

#endif  // HIVE_COMMON_STATUS_H_
