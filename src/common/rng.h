#ifndef HIVE_COMMON_RNG_H_
#define HIVE_COMMON_RNG_H_

#include <cstdint>

namespace hive {

/// Deterministic xorshift128+ generator used by the workload generators so
/// benchmark datasets are reproducible across runs and platforms.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x853c49e6748fea9bULL) {
    s0_ = seed ^ 0x9e3779b97f4a7c15ULL;
    s1_ = seed * 0xbf58476d1ce4e5b9ULL + 1;
    for (int i = 0; i < 8; ++i) Next();
  }

  uint64_t Next() {
    uint64_t x = s0_;
    const uint64_t y = s1_;
    s0_ = y;
    x ^= x << 23;
    s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
    return s1_ + y;
  }

  /// Uniform in [0, n).
  uint64_t Uniform(uint64_t n) { return n == 0 ? 0 : Next() % n; }
  /// Uniform in [lo, hi] inclusive.
  int64_t Range(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Uniform(static_cast<uint64_t>(hi - lo + 1)));
  }
  /// Uniform double in [0, 1).
  double NextDouble() { return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0); }

 private:
  uint64_t s0_, s1_;
};

}  // namespace hive

#endif  // HIVE_COMMON_RNG_H_
