#include "common/thread_pool.h"

namespace hive {

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads < 1) num_threads = 1;
  workers_.reserve(num_threads);
  for (int i = 0; i < num_threads; ++i)
    workers_.emplace_back([this] { WorkerLoop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

void ThreadPool::SubmitOrRun(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (!shutdown_ &&
        active_ + static_cast<int>(queue_.size()) < num_threads()) {
      queue_.push_back(std::move(task));
      lock.unlock();
      work_cv_.notify_one();
      return;
    }
  }
  task();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (shutdown_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
    }
  }
}

}  // namespace hive
