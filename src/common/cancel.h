#ifndef HIVE_COMMON_CANCEL_H_
#define HIVE_COMMON_CANCEL_H_

#include <string>

#include "common/sync.h"

namespace hive {

/// Why a query's cancellation flag was raised, shared between the workload
/// manager (KILL triggers), the deadline checker (query.timeout.ms) and the
/// execution engine that surfaces it in the final Status. First writer wins:
/// if a trigger and the deadline race, the query reports whichever actually
/// killed it first, never a merged or second-guessed reason.
class KillReason {
 public:
  /// Records `reason` unless one is already set.
  void Set(const std::string& reason) {
    MutexLock lock(&mu_);
    if (reason_.empty()) reason_ = reason;
  }

  /// The recorded reason, or `fallback` when none was recorded (e.g. a
  /// direct Cancel() from a client rather than a named trigger).
  std::string GetOr(const std::string& fallback) const {
    MutexLock lock(&mu_);
    return reason_.empty() ? fallback : reason_;
  }

 private:
  mutable Mutex mu_{"kill_reason.mu"};
  std::string reason_ HIVE_GUARDED_BY(mu_);
};

}  // namespace hive

#endif  // HIVE_COMMON_CANCEL_H_
