#include "common/types.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/hash.h"

namespace hive {

std::string DataType::ToString() const {
  switch (kind) {
    case TypeKind::kNull: return "NULL";
    case TypeKind::kBoolean: return "BOOLEAN";
    case TypeKind::kBigint: return "BIGINT";
    case TypeKind::kDouble: return "DOUBLE";
    case TypeKind::kDecimal: {
      char buf[32];
      std::snprintf(buf, sizeof buf, "DECIMAL(%d,%d)", precision, scale);
      return buf;
    }
    case TypeKind::kString: return "STRING";
    case TypeKind::kDate: return "DATE";
    case TypeKind::kTimestamp: return "TIMESTAMP";
  }
  return "?";
}

int64_t Pow10(int n) {
  static const int64_t kPow10[19] = {
      1LL, 10LL, 100LL, 1000LL, 10000LL, 100000LL, 1000000LL, 10000000LL,
      100000000LL, 1000000000LL, 10000000000LL, 100000000000LL,
      1000000000000LL, 10000000000000LL, 100000000000000LL,
      1000000000000000LL, 10000000000000000LL, 100000000000000000LL,
      1000000000000000000LL};
  if (n < 0) return 1;
  if (n > 18) return kPow10[18];
  return kPow10[n];
}

double Value::AsDouble() const {
  switch (kind_) {
    case TypeKind::kDouble: return f64_;
    case TypeKind::kDecimal: return static_cast<double>(i64_) / static_cast<double>(Pow10(scale_));
    case TypeKind::kString: return std::strtod(str_.c_str(), nullptr);
    default: return static_cast<double>(i64_);
  }
}

int64_t Value::AsInt64() const {
  switch (kind_) {
    case TypeKind::kDouble: return static_cast<int64_t>(f64_);
    case TypeKind::kDecimal: return i64_ / Pow10(scale_);
    case TypeKind::kString: return std::strtoll(str_.c_str(), nullptr, 10);
    default: return i64_;
  }
}

namespace {
bool IsNumericKind(TypeKind k) {
  return k == TypeKind::kBigint || k == TypeKind::kDouble || k == TypeKind::kDecimal;
}
int Sign(int64_t v) { return v < 0 ? -1 : (v > 0 ? 1 : 0); }
}  // namespace

int Value::Compare(const Value& a, const Value& b) {
  if (a.null_ || b.null_) {
    if (a.null_ && b.null_) return 0;
    return a.null_ ? -1 : 1;
  }
  if (a.kind_ == b.kind_) {
    switch (a.kind_) {
      case TypeKind::kString: return a.str_.compare(b.str_) < 0 ? -1 : (a.str_ == b.str_ ? 0 : 1);
      case TypeKind::kDouble: {
        if (a.f64_ < b.f64_) return -1;
        if (a.f64_ > b.f64_) return 1;
        return 0;
      }
      case TypeKind::kDecimal: {
        if (a.scale_ == b.scale_) return Sign(a.i64_ - b.i64_);
        // Rescale through long double to avoid overflow on rescale.
        long double x = static_cast<long double>(a.i64_) / Pow10(a.scale_);
        long double y = static_cast<long double>(b.i64_) / Pow10(b.scale_);
        return x < y ? -1 : (x > y ? 1 : 0);
      }
      default: return Sign(a.i64_ - b.i64_);
    }
  }
  if (IsNumericKind(a.kind_) && IsNumericKind(b.kind_)) {
    long double x = a.kind_ == TypeKind::kDouble ? a.f64_
                  : a.kind_ == TypeKind::kDecimal
                        ? static_cast<long double>(a.i64_) / Pow10(a.scale_)
                        : static_cast<long double>(a.i64_);
    long double y = b.kind_ == TypeKind::kDouble ? b.f64_
                  : b.kind_ == TypeKind::kDecimal
                        ? static_cast<long double>(b.i64_) / Pow10(b.scale_)
                        : static_cast<long double>(b.i64_);
    return x < y ? -1 : (x > y ? 1 : 0);
  }
  // Strings vs numerics etc: order by kind id for a stable total order.
  return static_cast<int>(a.kind_) - static_cast<int>(b.kind_);
}

uint64_t Value::Hash() const {
  if (null_) return 0x9e3779b97f4a7c15ULL;
  switch (kind_) {
    case TypeKind::kString:
      return Murmur64(str_.data(), str_.size(), 0x5eed);
    case TypeKind::kDouble: {
      // Normalize integral doubles to hash equal with bigints.
      double d = f64_;
      int64_t asint = static_cast<int64_t>(d);
      if (static_cast<double>(asint) == d) return Murmur64(&asint, sizeof asint, 0x5eed);
      return Murmur64(&d, sizeof d, 0x5eed);
    }
    case TypeKind::kDecimal: {
      if (i64_ % Pow10(scale_) == 0) {
        int64_t whole = i64_ / Pow10(scale_);
        return Murmur64(&whole, sizeof whole, 0x5eed);
      }
      double d = AsDouble();
      return Murmur64(&d, sizeof d, 0x5eed);
    }
    default:
      return Murmur64(&i64_, sizeof i64_, 0x5eed);
  }
}

std::string Value::ToString() const {
  if (null_) return "NULL";
  switch (kind_) {
    case TypeKind::kNull: return "NULL";
    case TypeKind::kBoolean: return i64_ ? "true" : "false";
    case TypeKind::kBigint: return std::to_string(i64_);
    case TypeKind::kDouble: {
      char buf[32];
      std::snprintf(buf, sizeof buf, "%.6g", f64_);
      return buf;
    }
    case TypeKind::kDecimal: {
      int64_t p = Pow10(scale_);
      int64_t whole = i64_ / p;
      int64_t frac = std::llabs(i64_ % p);
      if (scale_ == 0) return std::to_string(whole);
      std::string out;
      if (i64_ < 0 && whole == 0) out += "-";
      out += std::to_string(whole);
      out += ".";
      std::string frac_digits = std::to_string(frac);
      int width = scale_ > 18 ? 18 : static_cast<int>(scale_);
      if (static_cast<int>(frac_digits.size()) < width)
        out.append(width - frac_digits.size(), '0');
      out += frac_digits;
      return out;
    }
    case TypeKind::kString: return str_;
    case TypeKind::kDate: return FormatDate(i64_);
    case TypeKind::kTimestamp: return FormatTimestamp(i64_);
  }
  return "?";
}

Result<Value> Value::Parse(const std::string& text, const DataType& type) {
  if (text.empty() || text == "\\N" || text == "NULL") return Value::Null();
  switch (type.kind) {
    case TypeKind::kBoolean:
      return Value::Boolean(text == "true" || text == "TRUE" || text == "1");
    case TypeKind::kBigint: {
      char* end = nullptr;
      int64_t v = std::strtoll(text.c_str(), &end, 10);
      if (end == text.c_str()) return Status::InvalidArgument("bad BIGINT: " + text);
      return Value::Bigint(v);
    }
    case TypeKind::kDouble: {
      char* end = nullptr;
      double v = std::strtod(text.c_str(), &end);
      if (end == text.c_str()) return Status::InvalidArgument("bad DOUBLE: " + text);
      return Value::Double(v);
    }
    case TypeKind::kDecimal: {
      // Parse [-]digits[.digits] at the declared scale.
      const char* p = text.c_str();
      bool neg = *p == '-';
      if (neg || *p == '+') ++p;
      int64_t whole = 0;
      while (*p >= '0' && *p <= '9') whole = whole * 10 + (*p++ - '0');
      int64_t frac = 0;
      int fdigits = 0;
      if (*p == '.') {
        ++p;
        while (*p >= '0' && *p <= '9' && fdigits < type.scale) {
          frac = frac * 10 + (*p++ - '0');
          ++fdigits;
        }
        while (*p >= '0' && *p <= '9') ++p;  // truncate extra digits
      }
      int64_t unscaled = whole * Pow10(type.scale) + frac * Pow10(type.scale - fdigits);
      return Value::Decimal(neg ? -unscaled : unscaled, type.scale);
    }
    case TypeKind::kString:
      return Value::String(text);
    case TypeKind::kDate: {
      HIVE_ASSIGN_OR_RETURN(int64_t days, ParseDate(text));
      return Value::Date(days);
    }
    case TypeKind::kTimestamp: {
      HIVE_ASSIGN_OR_RETURN(int64_t us, ParseTimestamp(text));
      return Value::Timestamp(us);
    }
    case TypeKind::kNull:
      return Value::Null();
  }
  return Status::InvalidArgument("unknown type");
}

Result<Value> Value::CastTo(const DataType& type) const {
  if (null_) return Value::Null();
  if (type.kind == kind_ && type.kind != TypeKind::kDecimal) return *this;
  switch (type.kind) {
    case TypeKind::kBoolean: return Value::Boolean(AsInt64() != 0);
    case TypeKind::kBigint: return Value::Bigint(AsInt64());
    case TypeKind::kDouble: return Value::Double(AsDouble());
    case TypeKind::kDecimal: {
      if (kind_ == TypeKind::kDecimal) {
        if (scale_ == type.scale) return *this;
        if (scale_ < type.scale) return Value::Decimal(i64_ * Pow10(type.scale - scale_), type.scale);
        return Value::Decimal(i64_ / Pow10(scale_ - type.scale), type.scale);
      }
      if (kind_ == TypeKind::kDouble)
        return Value::Decimal(static_cast<int64_t>(std::llround(f64_ * Pow10(type.scale))), type.scale);
      return Value::Decimal(AsInt64() * Pow10(type.scale), type.scale);
    }
    case TypeKind::kString: return Value::String(ToString());
    case TypeKind::kDate:
      if (kind_ == TypeKind::kString) return Parse(str_, type);
      if (kind_ == TypeKind::kTimestamp) return Value::Date(i64_ / (86400LL * 1000000LL));
      return Value::Date(AsInt64());
    case TypeKind::kTimestamp:
      if (kind_ == TypeKind::kString) return Parse(str_, type);
      if (kind_ == TypeKind::kDate) return Value::Timestamp(i64_ * 86400LL * 1000000LL);
      return Value::Timestamp(AsInt64());
    case TypeKind::kNull: return Value::Null();
  }
  return Status::InvalidArgument("bad cast");
}

// --- Civil date/time (algorithms by Howard Hinnant, public domain) ---

int64_t DaysFromCivil(int y, unsigned m, unsigned d) {
  y -= m <= 2;
  const int era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);
  const unsigned doy = (153 * (m + (m > 2 ? -3 : 9)) + 2) / 5 + d - 1;
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
  return static_cast<int64_t>(era) * 146097 + static_cast<int64_t>(doe) - 719468;
}

void CivilFromDays(int64_t z, int* y, unsigned* m, unsigned* d) {
  z += 719468;
  const int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(z - era * 146097);
  const unsigned yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const int64_t yy = static_cast<int64_t>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
  const unsigned mp = (5 * doy + 2) / 153;
  *d = doy - (153 * mp + 2) / 5 + 1;
  *m = mp + (mp < 10 ? 3 : -9);
  *y = static_cast<int>(yy + (*m <= 2));
}

Result<int64_t> ParseDate(const std::string& s) {
  int y;
  unsigned m, d;
  if (std::sscanf(s.c_str(), "%d-%u-%u", &y, &m, &d) != 3)
    return Status::InvalidArgument("bad DATE: " + s);
  return DaysFromCivil(y, m, d);
}

Result<int64_t> ParseTimestamp(const std::string& s) {
  int y;
  unsigned m, d, hh = 0, mm = 0, ss = 0;
  int n = std::sscanf(s.c_str(), "%d-%u-%u %u:%u:%u", &y, &m, &d, &hh, &mm, &ss);
  if (n < 3) return Status::InvalidArgument("bad TIMESTAMP: " + s);
  int64_t days = DaysFromCivil(y, m, d);
  return ((days * 86400LL) + hh * 3600LL + mm * 60LL + ss) * 1000000LL;
}

std::string FormatDate(int64_t days) {
  int y;
  unsigned m, d;
  CivilFromDays(days, &y, &m, &d);
  char buf[16];
  std::snprintf(buf, sizeof buf, "%04d-%02u-%02u", y, m, d);
  return buf;
}

std::string FormatTimestamp(int64_t micros) {
  int64_t secs = micros / 1000000LL;
  int64_t days = secs / 86400;
  int64_t rem = secs % 86400;
  if (rem < 0) {
    rem += 86400;
    days -= 1;
  }
  int y;
  unsigned m, d;
  CivilFromDays(days, &y, &m, &d);
  char buf[32];
  std::snprintf(buf, sizeof buf, "%04d-%02u-%02u %02lld:%02lld:%02lld", y, m, d,
                static_cast<long long>(rem / 3600),
                static_cast<long long>((rem % 3600) / 60),
                static_cast<long long>(rem % 60));
  return buf;
}

int64_t ExtractDateField(DateField f, const Value& v) {
  int64_t days;
  int64_t rem_secs = 0;
  if (v.kind() == TypeKind::kTimestamp) {
    int64_t secs = v.i64() / 1000000LL;
    days = secs / 86400;
    rem_secs = secs % 86400;
    if (rem_secs < 0) {
      rem_secs += 86400;
      days -= 1;
    }
  } else {
    days = v.i64();
  }
  int y;
  unsigned m, d;
  CivilFromDays(days, &y, &m, &d);
  switch (f) {
    case DateField::kYear: return y;
    case DateField::kQuarter: return (m - 1) / 3 + 1;
    case DateField::kMonth: return m;
    case DateField::kDay: return d;
    case DateField::kHour: return rem_secs / 3600;
    case DateField::kMinute: return (rem_secs % 3600) / 60;
    case DateField::kSecond: return rem_secs % 60;
  }
  return 0;
}

}  // namespace hive
