#include "common/schema.h"

#include <cctype>

#include "common/serde.h"

namespace hive {

std::string ToLower(const std::string& s) {
  std::string out = s;
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::optional<size_t> Schema::IndexOf(const std::string& name) const {
  std::string needle = ToLower(name);
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (ToLower(fields_[i].name) == needle) return i;
  }
  return std::nullopt;
}

std::string Schema::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (i) out += ", ";
    out += fields_[i].name + " " + fields_[i].type.ToString();
  }
  out += ")";
  return out;
}

void Schema::Serialize(std::string* out) const {
  serde::PutU32(out, static_cast<uint32_t>(fields_.size()));
  for (const Field& f : fields_) {
    serde::PutString(out, f.name);
    serde::PutU32(out, static_cast<uint32_t>(f.type.kind));
    serde::PutU32(out, static_cast<uint32_t>(f.type.precision));
    serde::PutU32(out, static_cast<uint32_t>(f.type.scale));
  }
}

Result<Schema> Schema::Deserialize(const std::string& data, size_t* offset) {
  uint32_t n;
  if (!serde::GetU32(data, offset, &n)) return Status::Corruption("schema count");
  Schema schema;
  for (uint32_t i = 0; i < n; ++i) {
    Field f;
    uint32_t kind, prec, scale;
    if (!serde::GetString(data, offset, &f.name) ||
        !serde::GetU32(data, offset, &kind) ||
        !serde::GetU32(data, offset, &prec) ||
        !serde::GetU32(data, offset, &scale))
      return Status::Corruption("schema field");
    f.type.kind = static_cast<TypeKind>(kind);
    f.type.precision = static_cast<int16_t>(prec);
    f.type.scale = static_cast<int16_t>(scale);
    schema.AddField(std::move(f.name), f.type);
  }
  return schema;
}

}  // namespace hive
