#ifndef HIVE_COMMON_TYPES_H_
#define HIVE_COMMON_TYPES_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace hive {

/// Physical/logical type kinds supported by the engine. Mirrors the atomic
/// SQL types the paper's SQL dialect exercises. BIGINT is the only integer
/// width (Hive INT/BIGINT both map here); DECIMAL is a scaled int64.
enum class TypeKind : uint8_t {
  kNull = 0,
  kBoolean,
  kBigint,
  kDouble,
  kDecimal,    // unscaled int64 payload + (precision, scale)
  kString,
  kDate,       // int64 days since 1970-01-01
  kTimestamp,  // int64 microseconds since epoch
};

/// A SQL data type: kind plus decimal precision/scale when applicable.
struct DataType {
  TypeKind kind = TypeKind::kNull;
  int16_t precision = 0;
  int16_t scale = 0;

  static DataType Null() { return {TypeKind::kNull, 0, 0}; }
  static DataType Boolean() { return {TypeKind::kBoolean, 0, 0}; }
  static DataType Bigint() { return {TypeKind::kBigint, 0, 0}; }
  static DataType Double() { return {TypeKind::kDouble, 0, 0}; }
  static DataType Decimal(int p, int s) {
    return {TypeKind::kDecimal, static_cast<int16_t>(p), static_cast<int16_t>(s)};
  }
  static DataType String() { return {TypeKind::kString, 0, 0}; }
  static DataType Date() { return {TypeKind::kDate, 0, 0}; }
  static DataType Timestamp() { return {TypeKind::kTimestamp, 0, 0}; }

  bool IsNumeric() const {
    return kind == TypeKind::kBigint || kind == TypeKind::kDouble ||
           kind == TypeKind::kDecimal;
  }
  bool IsIntegerBacked() const {
    return kind == TypeKind::kBigint || kind == TypeKind::kDate ||
           kind == TypeKind::kTimestamp || kind == TypeKind::kDecimal ||
           kind == TypeKind::kBoolean;
  }

  bool operator==(const DataType& o) const {
    return kind == o.kind && precision == o.precision && scale == o.scale;
  }
  bool operator!=(const DataType& o) const { return !(*this == o); }

  /// SQL-ish rendering, e.g. "DECIMAL(7,2)".
  std::string ToString() const;
};

/// A nullable scalar value. Strings own their bytes; integer-backed kinds
/// share the i64 payload (decimal stores the unscaled value with the scale
/// recorded alongside so cross-scale comparison works).
class Value {
 public:
  Value() : kind_(TypeKind::kNull), null_(true) {}

  static Value Null() { return Value(); }
  static Value Boolean(bool v) { Value x(TypeKind::kBoolean); x.i64_ = v ? 1 : 0; return x; }
  static Value Bigint(int64_t v) { Value x(TypeKind::kBigint); x.i64_ = v; return x; }
  static Value Double(double v) { Value x(TypeKind::kDouble); x.f64_ = v; return x; }
  static Value Decimal(int64_t unscaled, int scale) {
    Value x(TypeKind::kDecimal); x.i64_ = unscaled; x.scale_ = static_cast<int16_t>(scale); return x;
  }
  static Value String(std::string v) { Value x(TypeKind::kString); x.str_ = std::move(v); return x; }
  static Value Date(int64_t days) { Value x(TypeKind::kDate); x.i64_ = days; return x; }
  static Value Timestamp(int64_t micros) { Value x(TypeKind::kTimestamp); x.i64_ = micros; return x; }

  bool is_null() const { return null_; }
  TypeKind kind() const { return kind_; }
  int scale() const { return scale_; }

  bool bool_value() const { return i64_ != 0; }
  int64_t i64() const { return i64_; }
  double f64() const { return f64_; }
  const std::string& str() const { return str_; }

  /// Numeric view regardless of backing kind (decimal is descaled).
  double AsDouble() const;
  /// Integer view; doubles are truncated.
  int64_t AsInt64() const;

  /// Total ordering used by ORDER BY / min-max indexes: nulls first, then by
  /// value. Comparing numeric kinds cross-kind is allowed; other cross-kind
  /// comparisons order by kind id. Returns <0, 0, >0.
  static int Compare(const Value& a, const Value& b);

  /// Hash for group-by / join keys. Equal values (incl. cross numeric kind
  /// integral equality) hash equal by first normalizing.
  uint64_t Hash() const;

  bool operator==(const Value& o) const { return Compare(*this, o) == 0; }
  bool operator!=(const Value& o) const { return Compare(*this, o) != 0; }
  bool operator<(const Value& o) const { return Compare(*this, o) < 0; }

  /// SQL literal rendering ("NULL", quoted strings, ISO dates...).
  std::string ToString() const;

  /// Parses text into a value of the requested type. Empty/"\\N" -> NULL.
  static Result<Value> Parse(const std::string& text, const DataType& type);

  /// Best-effort cast between kinds (numeric widen/narrow, string parse).
  Result<Value> CastTo(const DataType& type) const;

 private:
  explicit Value(TypeKind k) : kind_(k), null_(false) {}

  TypeKind kind_;
  bool null_ = true;
  int16_t scale_ = 0;
  int64_t i64_ = 0;
  double f64_ = 0;
  std::string str_;
};

/// Hash functor for unordered containers of Value (DISTINCT accumulators).
/// Pairs with the default std::equal_to<Value> (Value::Compare equality), so
/// cross-kind numeric equality groups together just as the ordered set did.
struct ValueHasher {
  size_t operator()(const Value& v) const { return static_cast<size_t>(v.Hash()); }
};

/// --- Civil date/time helpers (Howard Hinnant's algorithms) ---

/// days since 1970-01-01 for a proleptic Gregorian date.
int64_t DaysFromCivil(int y, unsigned m, unsigned d);
/// Inverse of DaysFromCivil.
void CivilFromDays(int64_t z, int* y, unsigned* m, unsigned* d);
/// Parse "YYYY-MM-DD" into days-since-epoch.
Result<int64_t> ParseDate(const std::string& s);
/// Parse "YYYY-MM-DD[ HH:MM:SS]" into micros-since-epoch.
Result<int64_t> ParseTimestamp(const std::string& s);
/// Render days-since-epoch as "YYYY-MM-DD".
std::string FormatDate(int64_t days);
/// Render micros-since-epoch as "YYYY-MM-DD HH:MM:SS".
std::string FormatTimestamp(int64_t micros);

/// Extract a field (YEAR, MONTH, DAY, HOUR...) from a date/timestamp value.
enum class DateField { kYear, kQuarter, kMonth, kDay, kHour, kMinute, kSecond };
int64_t ExtractDateField(DateField f, const Value& v);

/// Power-of-ten table for decimal rescaling (10^0 .. 10^18).
int64_t Pow10(int n);

}  // namespace hive

#endif  // HIVE_COMMON_TYPES_H_
