#ifndef HIVE_COMMON_SYNC_H_
#define HIVE_COMMON_SYNC_H_

// Annotated synchronization primitives — the only place in the engine where
// raw std:: synchronization types may appear (enforced by tools/hivelint).
//
// Why wrappers instead of std::mutex directly:
//
//  1. *Static* checking. hive::Mutex carries Clang thread-safety capability
//     attributes, so a Clang build with -Wthread-safety -Werror rejects code
//     that touches a HIVE_GUARDED_BY field without holding its mutex, or
//     that acquires locks a function promised to avoid (HIVE_EXCLUDES).
//     Under GCC the attributes compile to nothing; the wrappers still work.
//
//  2. *Dynamic* deadlock-order checking. When built with
//     HIVE_LOCK_ORDER_CHECKS (the default; see CMakeLists.txt), every Mutex
//     participates in a process-wide lock-order graph: acquiring B while
//     holding A records the edge A→B, and an acquisition that would close a
//     cycle (B held, acquiring A) is reported with both acquisition stacks'
//     lock names. This catches *potential* deadlocks on the first
//     inconsistent ordering, even when the deadly interleaving never fires —
//     the complement of TSan, which needs the bad schedule to happen.
//
// The canonical lock order is documented in DESIGN.md ("Static analysis &
// concurrency hygiene"): server.sessions → workload_manager → txn_manager →
// catalog → compaction → result_cache → llap caches → single-flight slots →
// filesystems → metrics/stats leaves.

#include <condition_variable>
#include <mutex>
#include <string>
#include <vector>

// --- Clang thread-safety annotation macros -------------------------------
// Names follow the conventional capability vocabulary (see the Clang
// ThreadSafetyAnalysis docs / Abseil's thread_annotations.h) with a HIVE_
// prefix so they cannot collide with third-party headers.

#if defined(__clang__)
#define HIVE_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define HIVE_THREAD_ANNOTATION_(x)  // no-op outside Clang
#endif

#define HIVE_CAPABILITY(x) HIVE_THREAD_ANNOTATION_(capability(x))
#define HIVE_SCOPED_CAPABILITY HIVE_THREAD_ANNOTATION_(scoped_lockable)
#define HIVE_GUARDED_BY(x) HIVE_THREAD_ANNOTATION_(guarded_by(x))
#define HIVE_PT_GUARDED_BY(x) HIVE_THREAD_ANNOTATION_(pt_guarded_by(x))
#define HIVE_ACQUIRE(...) HIVE_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
#define HIVE_RELEASE(...) HIVE_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))
#define HIVE_TRY_ACQUIRE(...) HIVE_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))
#define HIVE_REQUIRES(...) HIVE_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))
#define HIVE_EXCLUDES(...) HIVE_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))
#define HIVE_ACQUIRED_BEFORE(...) HIVE_THREAD_ANNOTATION_(acquired_before(__VA_ARGS__))
#define HIVE_ACQUIRED_AFTER(...) HIVE_THREAD_ANNOTATION_(acquired_after(__VA_ARGS__))
#define HIVE_RETURN_CAPABILITY(x) HIVE_THREAD_ANNOTATION_(lock_returned(x))
#define HIVE_NO_THREAD_SAFETY_ANALYSIS HIVE_THREAD_ANNOTATION_(no_thread_safety_analysis)

namespace hive {

class CondVar;

/// A std::mutex wrapper carrying a Clang capability attribute and (in
/// checked builds) membership in the process-wide lock-order graph. Every
/// Mutex is named; names are what the deadlock detector prints, so use
/// stable dotted identifiers ("catalog.mu", "llap.poison").
class HIVE_CAPABILITY("mutex") Mutex {
 public:
  explicit Mutex(const char* name);
  ~Mutex();

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() HIVE_ACQUIRE();
  void Unlock() HIVE_RELEASE();
  bool TryLock() HIVE_TRY_ACQUIRE(true);

  const char* name() const { return name_; }

 private:
  friend class CondVar;

  std::mutex mu_;
  const char* name_;
#ifdef HIVE_LOCK_ORDER_CHECKS
  /// Node id in the lock-order graph; assigned at construction, never
  /// reused, unregistered at destruction.
  uint64_t order_id_;
#endif
};

/// RAII scoped lock over a hive::Mutex; supports early release (Unlock())
/// for the unlock-then-notify idiom.
class HIVE_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) HIVE_ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() HIVE_RELEASE() {
    if (held_) mu_->Unlock();
  }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// Releases before scope exit (then stays released).
  void Unlock() HIVE_RELEASE() {
    mu_->Unlock();
    held_ = false;
  }

  Mutex* mutex() const { return mu_; }

 private:
  Mutex* mu_;
  bool held_ = true;
};

/// Condition variable paired with hive::Mutex. There is deliberately no
/// predicate overload: writing the `while (!cond) cv.Wait(lock);` loop at
/// the call site keeps guarded-field reads inside the function that holds
/// the MutexLock, where Clang's analysis can see them (lambda bodies are
/// analyzed as separate functions and would need escape hatches).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `lock`'s mutex and blocks; re-acquires before
  /// returning. As with all condition variables, spurious wakeups happen:
  /// always wait in a predicate loop.
  void Wait(MutexLock& lock) HIVE_NO_THREAD_SAFETY_ANALYSIS;

  /// Like Wait, but gives up after `timeout_us` microseconds of real time.
  /// Returns false when the wait timed out, true when the CondVar was
  /// notified (or woke spuriously) — either way the mutex is re-held on
  /// return, so the caller's predicate loop stays correct.
  bool WaitFor(MutexLock& lock, int64_t timeout_us) HIVE_NO_THREAD_SAFETY_ANALYSIS;

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

// --- lock-order (potential-deadlock) detector ----------------------------

namespace lockorder {

/// One detected ordering inconsistency. `Report()` is the human-readable
/// form the detector also prints to stderr on first detection.
struct Violation {
  /// The lock being acquired when the cycle closed.
  std::string acquiring;
  /// The already-ordered lock the new edge conflicts with.
  std::string conflicting;
  /// Lock names held (outermost first) at the acquisition that closed the
  /// cycle.
  std::vector<std::string> current_stack;
  /// Lock names held when the conflicting (reverse-direction) edge was
  /// first recorded.
  std::vector<std::string> prior_stack;

  std::string Report() const;
};

/// Violations recorded since process start (or the last Reset). Checked
/// builds only; stubs return empty when HIVE_LOCK_ORDER_CHECKS is off.
std::vector<Violation> Violations();
size_t ViolationCount();

/// Test hook: forgets recorded violations AND learned edges, so one test's
/// intentional cycle does not leak into the next.
void ResetForTests();

}  // namespace lockorder

}  // namespace hive

#endif  // HIVE_COMMON_SYNC_H_
