#include "common/sync.h"

#include <chrono>
#include <cstdio>
#include <unordered_map>
#include <unordered_set>

namespace hive {

#ifdef HIVE_LOCK_ORDER_CHECKS

namespace {

/// Process-wide lock-order graph. Nodes are live Mutex instances (by id),
/// edges A→B mean "B was acquired while A was held". The graph is kept
/// acyclic: an acquisition that would close a cycle is reported instead of
/// recorded, so one bad ordering cannot cascade into spurious reports on
/// every later path through it.
struct Graph {
  std::mutex mu;
  uint64_t next_id = 1;
  std::unordered_map<uint64_t, std::string> names;
  /// from → (to → held-lock names when the edge was first recorded).
  std::unordered_map<uint64_t,
                     std::unordered_map<uint64_t, std::vector<std::string>>>
      edges;
  std::vector<lockorder::Violation> violations;
  /// (from<<32 | to) pairs already reported, to keep output finite.
  std::unordered_set<uint64_t> reported;
};

Graph& G() {
  // Leaked intentionally: mutexes with static storage duration may lock
  // during other statics' destructors; the graph must outlive them all.
  static Graph* g = new Graph;
  return *g;
}

struct HeldLock {
  uint64_t id;
  const char* name;
};

thread_local std::vector<HeldLock> tls_held;
/// Edges this thread has already pushed through the global graph; lets the
/// steady state (all orderings long since recorded) skip the graph mutex.
/// Held through an owning holder so thread exit frees it (leak-sanitizer
/// clean) while a lock taken after thread_local destruction — possible in
/// late static destructors — just sees a null cache and re-allocates.
struct SeenCache {
  std::unordered_set<uint64_t>* set = nullptr;
  ~SeenCache() {
    delete set;
    set = nullptr;
  }
};
thread_local SeenCache tls_seen_cache;

uint64_t EdgeKey(uint64_t from, uint64_t to) { return (from << 32) | to; }

std::vector<std::string> HeldNames() {
  std::vector<std::string> names;
  names.reserve(tls_held.size());
  for (const HeldLock& h : tls_held) names.emplace_back(h.name);
  return names;
}

/// True when `to` can already reach `from` through recorded edges — i.e.
/// adding from→to would close a cycle. On success fills `first_hop` with
/// the first node on the to→…→from path (for the prior-stack report).
bool Reaches(Graph& g, uint64_t to, uint64_t from, uint64_t* first_hop) {
  std::vector<std::pair<uint64_t, uint64_t>> stack;  // (node, origin hop)
  std::unordered_set<uint64_t> visited{to};
  auto it = g.edges.find(to);
  if (it != g.edges.end())
    for (const auto& e : it->second) stack.emplace_back(e.first, e.first);
  while (!stack.empty()) {
    auto [node, origin] = stack.back();
    stack.pop_back();
    if (node == from) {
      *first_hop = origin;
      return true;
    }
    if (!visited.insert(node).second) continue;
    auto next = g.edges.find(node);
    if (next == g.edges.end()) continue;
    for (const auto& e : next->second) stack.emplace_back(e.first, origin);
  }
  return false;
}

void RecordEdges(uint64_t id, const char* name) {
  for (const HeldLock& held : tls_held) {
    if (held.id == id) continue;
    uint64_t key = EdgeKey(held.id, id);
    std::unordered_set<uint64_t>* seen = tls_seen_cache.set;
    if (seen && seen->count(key)) continue;
    Graph& g = G();
    std::lock_guard<std::mutex> lock(g.mu);
    if (!g.names.count(held.id) || !g.names.count(id)) continue;
    auto& out = g.edges[held.id];
    if (out.count(id)) {
      if (seen) seen->insert(key);
      continue;
    }
    uint64_t first_hop = 0;
    if (Reaches(g, id, held.id, &first_hop)) {
      // Cycle: `id` already orders before `held.id` somewhere, and this
      // thread is acquiring `id` while holding `held.id`.
      if (g.reported.insert(key).second) {
        lockorder::Violation v;
        v.acquiring = name;
        v.conflicting = held.name;
        v.current_stack = HeldNames();
        auto prior = g.edges[id].find(first_hop);
        if (prior != g.edges[id].end()) v.prior_stack = prior->second;
        std::fprintf(stderr, "%s\n", v.Report().c_str());
        g.violations.push_back(std::move(v));
      }
      if (seen) seen->insert(key);  // don't re-walk the graph
      continue;
    }
    out.emplace(id, HeldNames());
    if (seen) seen->insert(key);
  }
}

void OnAcquired(uint64_t id, const char* name) {
  if (tls_seen_cache.set == nullptr)
    tls_seen_cache.set = new std::unordered_set<uint64_t>;
  if (!tls_held.empty()) RecordEdges(id, name);
  tls_held.push_back({id, name});
}

void OnReleased(uint64_t id) {
  for (auto it = tls_held.rbegin(); it != tls_held.rend(); ++it) {
    if (it->id == id) {
      tls_held.erase(std::next(it).base());
      return;
    }
  }
}

}  // namespace

Mutex::Mutex(const char* name) : name_(name) {
  Graph& g = G();
  std::lock_guard<std::mutex> lock(g.mu);
  order_id_ = g.next_id++;
  g.names.emplace(order_id_, name);
}

Mutex::~Mutex() {
  Graph& g = G();
  std::lock_guard<std::mutex> lock(g.mu);
  g.names.erase(order_id_);
  g.edges.erase(order_id_);
  for (auto& [from, out] : g.edges) out.erase(order_id_);
}

void Mutex::Lock() {
  mu_.lock();
  OnAcquired(order_id_, name_);
}

void Mutex::Unlock() {
  OnReleased(order_id_);
  mu_.unlock();
}

bool Mutex::TryLock() {
  if (!mu_.try_lock()) return false;
  OnAcquired(order_id_, name_);
  return true;
}

void CondVar::Wait(MutexLock& lock) {
  Mutex* mu = lock.mutex();
  OnReleased(mu->order_id_);
  std::unique_lock<std::mutex> ul(mu->mu_, std::adopt_lock);
  cv_.wait(ul);
  ul.release();
  OnAcquired(mu->order_id_, mu->name_);
}

bool CondVar::WaitFor(MutexLock& lock, int64_t timeout_us) {
  Mutex* mu = lock.mutex();
  OnReleased(mu->order_id_);
  std::unique_lock<std::mutex> ul(mu->mu_, std::adopt_lock);
  bool notified =
      cv_.wait_for(ul, std::chrono::microseconds(timeout_us)) ==
      std::cv_status::no_timeout;
  ul.release();
  OnAcquired(mu->order_id_, mu->name_);
  return notified;
}

namespace lockorder {

std::vector<Violation> Violations() {
  Graph& g = G();
  std::lock_guard<std::mutex> lock(g.mu);
  return g.violations;
}

size_t ViolationCount() {
  Graph& g = G();
  std::lock_guard<std::mutex> lock(g.mu);
  return g.violations.size();
}

void ResetForTests() {
  Graph& g = G();
  std::lock_guard<std::mutex> lock(g.mu);
  g.edges.clear();
  g.violations.clear();
  g.reported.clear();
  // Only the calling thread's edge cache can be dropped from here; tests
  // should use fresh Mutex instances (fresh ids) so other threads' caches
  // cannot mask a re-created ordering.
  if (tls_seen_cache.set) tls_seen_cache.set->clear();
}

}  // namespace lockorder

#else  // !HIVE_LOCK_ORDER_CHECKS

Mutex::Mutex(const char* name) : name_(name) {}
Mutex::~Mutex() = default;

void Mutex::Lock() { mu_.lock(); }
void Mutex::Unlock() { mu_.unlock(); }
bool Mutex::TryLock() { return mu_.try_lock(); }

void CondVar::Wait(MutexLock& lock) {
  std::unique_lock<std::mutex> ul(lock.mutex()->mu_, std::adopt_lock);
  cv_.wait(ul);
  ul.release();
}

bool CondVar::WaitFor(MutexLock& lock, int64_t timeout_us) {
  std::unique_lock<std::mutex> ul(lock.mutex()->mu_, std::adopt_lock);
  bool notified =
      cv_.wait_for(ul, std::chrono::microseconds(timeout_us)) ==
      std::cv_status::no_timeout;
  ul.release();
  return notified;
}

namespace lockorder {
std::vector<Violation> Violations() { return {}; }
size_t ViolationCount() { return 0; }
void ResetForTests() {}
}  // namespace lockorder

#endif  // HIVE_LOCK_ORDER_CHECKS

namespace lockorder {

std::string Violation::Report() const {
  std::string out = "hive::Mutex lock-order violation: acquiring '" +
                    acquiring + "' while holding [";
  for (size_t i = 0; i < current_stack.size(); ++i) {
    if (i) out += ", ";
    out += current_stack[i];
  }
  out += "] conflicts with the recorded order '" + acquiring + "' -> '" +
         conflicting + "' (first recorded while holding [";
  for (size_t i = 0; i < prior_stack.size(); ++i) {
    if (i) out += ", ";
    out += prior_stack[i];
  }
  out += "]); a cross-thread interleaving of these paths can deadlock";
  return out;
}

}  // namespace lockorder

}  // namespace hive
