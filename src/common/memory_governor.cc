#include "common/memory_governor.h"

#include <algorithm>

namespace hive {

bool MemoryGovernor::TryReserve(int64_t bytes) {
  if (bytes <= 0) return true;
  const int64_t limit = limit_.load(std::memory_order_relaxed);
  if (limit <= 0) {
    reserved_.fetch_add(bytes, std::memory_order_relaxed);
    return true;
  }
  int64_t cur = reserved_.load(std::memory_order_relaxed);
  for (;;) {
    if (cur + bytes > limit) {
      denied_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    if (reserved_.compare_exchange_weak(cur, cur + bytes,
                                        std::memory_order_relaxed))
      return true;
  }
}

void MemoryGovernor::Release(int64_t bytes) {
  if (bytes <= 0) return;
  reserved_.fetch_sub(bytes, std::memory_order_relaxed);
}

QueryMemory::~QueryMemory() {
  int64_t leftover = used_.exchange(0, std::memory_order_relaxed);
  if (governor_ && leftover > 0) governor_->Release(leftover);
}

bool QueryMemory::TryGrow(int64_t bytes) {
  if (bytes <= 0) return true;
  if (query_limit_ > 0) {
    int64_t cur = used_.load(std::memory_order_relaxed);
    for (;;) {
      if (cur + bytes > query_limit_) return false;
      if (used_.compare_exchange_weak(cur, cur + bytes,
                                      std::memory_order_relaxed))
        break;
    }
  } else {
    used_.fetch_add(bytes, std::memory_order_relaxed);
  }
  if (governor_ && !governor_->TryReserve(bytes)) {
    used_.fetch_sub(bytes, std::memory_order_relaxed);
    return false;
  }
  return true;
}

void QueryMemory::Release(int64_t bytes) {
  if (bytes <= 0) return;
  used_.fetch_sub(bytes, std::memory_order_relaxed);
  if (governor_) governor_->Release(bytes);
}

bool MemoryReservation::GrowTo(int64_t bytes) {
  bytes = std::max<int64_t>(bytes, 0);
  if (bytes <= held_) {
    if (memory_) memory_->Release(held_ - bytes);
    held_ = bytes;
    return true;
  }
  if (memory_ && !memory_->TryGrow(bytes - held_)) return false;
  held_ = bytes;
  return true;
}

void MemoryReservation::Release() {
  if (memory_ && held_ > 0) memory_->Release(held_);
  held_ = 0;
}

}  // namespace hive
