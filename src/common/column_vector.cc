#include "common/column_vector.h"

namespace hive {

Value ColumnVector::GetValue(size_t i) const {
  if (IsNull(i)) return Value::Null();
  switch (type_.kind) {
    case TypeKind::kBoolean: return Value::Boolean(i64_[i] != 0);
    case TypeKind::kBigint: return Value::Bigint(i64_[i]);
    case TypeKind::kDouble: return Value::Double(f64_[i]);
    case TypeKind::kDecimal: return Value::Decimal(i64_[i], type_.scale);
    case TypeKind::kString: return Value::String(str_[i]);
    case TypeKind::kDate: return Value::Date(i64_[i]);
    case TypeKind::kTimestamp: return Value::Timestamp(i64_[i]);
    case TypeKind::kNull: return Value::Null();
  }
  return Value::Null();
}

void ColumnVector::Resize(size_t n) {
  nulls_.resize(n, 0);
  if (type_.kind == TypeKind::kDouble) {
    f64_.resize(n, 0);
  } else if (type_.kind == TypeKind::kString) {
    str_.resize(n);
  } else {
    i64_.resize(n, 0);
  }
}

void ColumnVector::AppendNull() {
  nulls_.push_back(0);
  if (type_.kind == TypeKind::kDouble) {
    f64_.push_back(0);
  } else if (type_.kind == TypeKind::kString) {
    str_.emplace_back();
  } else {
    i64_.push_back(0);
  }
}

void ColumnVector::AppendI64(int64_t v) {
  nulls_.push_back(1);
  i64_.push_back(v);
}

void ColumnVector::AppendF64(double v) {
  nulls_.push_back(1);
  f64_.push_back(v);
}

void ColumnVector::AppendStr(std::string v) {
  nulls_.push_back(1);
  str_.push_back(std::move(v));
}

void ColumnVector::AppendValue(const Value& v) {
  if (v.is_null()) {
    AppendNull();
    return;
  }
  switch (type_.kind) {
    case TypeKind::kDouble:
      AppendF64(v.AsDouble());
      break;
    case TypeKind::kString:
      AppendStr(v.kind() == TypeKind::kString ? v.str() : v.ToString());
      break;
    case TypeKind::kDecimal: {
      if (v.kind() == TypeKind::kDecimal && v.scale() == type_.scale) {
        AppendI64(v.i64());
      } else {
        auto cast = v.CastTo(type_);
        if (cast.ok() && !cast->is_null()) {
          AppendI64(cast->i64());
        } else {
          AppendNull();
        }
      }
      break;
    }
    default:
      AppendI64(v.AsInt64());
      break;
  }
}

void ColumnVector::AppendFrom(const ColumnVector& src, size_t i) {
  if (src.IsNull(i)) {
    AppendNull();
    return;
  }
  switch (type_.kind) {
    case TypeKind::kDouble: AppendF64(src.f64_[i]); break;
    case TypeKind::kString: AppendStr(src.str_[i]); break;
    default: AppendI64(src.i64_[i]); break;
  }
}

size_t ColumnVector::ByteSize() const {
  size_t n = nulls_.size() + i64_.size() * 8 + f64_.size() * 8;
  for (const auto& s : str_) n += s.size() + 16;
  return n;
}

RowBatch::RowBatch(Schema schema) : schema_(std::move(schema)) {
  columns_.resize(schema_.num_fields());
  for (size_t i = 0; i < schema_.num_fields(); ++i)
    columns_[i] = std::make_shared<ColumnVector>(schema_.field(i).type);
}

void RowBatch::AddColumn(Field field, ColumnVectorPtr col) {
  schema_.AddField(field.name, field.type);
  columns_.push_back(std::move(col));
}

void RowBatch::SetSelection(std::vector<int32_t> sel) {
  selection_ = std::move(sel);
  has_selection_ = true;
}

void RowBatch::ClearSelection() {
  selection_.clear();
  has_selection_ = false;
}

void RowBatch::Flatten() {
  if (!has_selection_) return;
  for (size_t c = 0; c < columns_.size(); ++c) {
    auto dense = std::make_shared<ColumnVector>(columns_[c]->type());
    for (int32_t row : selection_) dense->AppendFrom(*columns_[c], row);
    columns_[c] = dense;
  }
  num_rows_ = selection_.size();
  ClearSelection();
}

std::vector<Value> RowBatch::GetRow(size_t i) const {
  int32_t row = SelectedRow(i);
  std::vector<Value> out;
  out.reserve(columns_.size());
  for (const auto& col : columns_) out.push_back(col->GetValue(row));
  return out;
}

size_t RowBatch::ByteSize() const {
  size_t n = selection_.size() * 4;
  for (const auto& col : columns_) n += col ? col->ByteSize() : 0;
  return n;
}

}  // namespace hive
