#ifndef HIVE_COMMON_HLL_H_
#define HIVE_COMMON_HLL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/types.h"

namespace hive {

/// HyperLogLog cardinality sketch (dense representation) used by the
/// metastore to keep per-column number-of-distinct-values statistics that
/// can be merged additively across partitions and inserts, as described in
/// Section 4.1 of the paper (HMS stores HLL-based NDV so stats can be
/// combined "without loss of approximation accuracy").
class HyperLogLog {
 public:
  /// `precision` selects 2^precision registers (4..16). 12 -> 4 KiB, ~1.6%
  /// standard error, plenty for optimizer cardinalities.
  explicit HyperLogLog(int precision = 12);

  void AddHash(uint64_t h);
  void Add(const Value& v) { AddHash(v.Hash()); }
  void AddInt64(int64_t v);
  void AddString(const std::string& s);

  /// Estimated distinct count with small-range correction.
  uint64_t Estimate() const;

  /// Register-wise max merge; lossless for the sketch.
  Status MergeFrom(const HyperLogLog& other);

  int precision() const { return precision_; }

  void Serialize(std::string* out) const;
  static Result<HyperLogLog> Deserialize(const std::string& data, size_t* offset);

 private:
  int precision_;
  std::vector<uint8_t> registers_;
};

}  // namespace hive

#endif  // HIVE_COMMON_HLL_H_
