#include "common/ast.h"

namespace hive {

namespace {
const char* BinOpName(BinaryOp op) {
  switch (op) {
    case BinaryOp::kEq: return "=";
    case BinaryOp::kNe: return "<>";
    case BinaryOp::kLt: return "<";
    case BinaryOp::kLe: return "<=";
    case BinaryOp::kGt: return ">";
    case BinaryOp::kGe: return ">=";
    case BinaryOp::kAdd: return "+";
    case BinaryOp::kSub: return "-";
    case BinaryOp::kMul: return "*";
    case BinaryOp::kDiv: return "/";
    case BinaryOp::kMod: return "%";
    case BinaryOp::kAnd: return "AND";
    case BinaryOp::kOr: return "OR";
    case BinaryOp::kLike: return "LIKE";
    case BinaryOp::kConcat: return "||";
  }
  return "?";
}
}  // namespace

ExprPtr MakeLiteral(Value v) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kLiteral;
  e->literal = std::move(v);
  return e;
}

ExprPtr MakeColumnRef(std::string qualifier, std::string column) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kColumnRef;
  e->qualifier = std::move(qualifier);
  e->column = std::move(column);
  return e;
}

ExprPtr MakeBinary(BinaryOp op, ExprPtr l, ExprPtr r) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kBinary;
  e->bin_op = op;
  e->children = {std::move(l), std::move(r)};
  return e;
}

ExprPtr MakeUnary(UnaryOp op, ExprPtr operand) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kUnary;
  e->un_op = op;
  e->children = {std::move(operand)};
  return e;
}

ExprPtr MakeFunction(std::string name, std::vector<ExprPtr> args) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kFunction;
  e->func_name = std::move(name);
  e->children = std::move(args);
  return e;
}

ExprPtr MakeCast(ExprPtr operand, DataType type) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kCast;
  e->cast_type = type;
  e->children = {std::move(operand)};
  return e;
}

std::string ExprListToString(const std::vector<ExprPtr>& exprs) {
  std::string out;
  for (size_t i = 0; i < exprs.size(); ++i) {
    if (i) out += ", ";
    out += exprs[i]->ToString();
  }
  return out;
}

std::string Expr::ToString() const {
  switch (kind) {
    case ExprKind::kLiteral:
      if (literal.kind() == TypeKind::kString) {
        std::string escaped;
        for (char c : literal.str()) {
          if (c == '\'') escaped += "''";
          else escaped.push_back(c);
        }
        return "'" + escaped + "'";
      }
      if (literal.kind() == TypeKind::kDate) return "DATE '" + literal.ToString() + "'";
      if (literal.kind() == TypeKind::kTimestamp)
        return "TIMESTAMP '" + literal.ToString() + "'";
      return literal.ToString();
    case ExprKind::kColumnRef:
      return qualifier.empty() ? column : qualifier + "." + column;
    case ExprKind::kStar:
      return qualifier.empty() ? "*" : qualifier + ".*";
    case ExprKind::kBinary:
      return "(" + children[0]->ToString() + " " + BinOpName(bin_op) + " " +
             children[1]->ToString() + ")";
    case ExprKind::kUnary:
      return un_op == UnaryOp::kNot ? "(NOT " + children[0]->ToString() + ")"
                                    : "(-" + children[0]->ToString() + ")";
    case ExprKind::kFunction: {
      std::string out = func_name + "(";
      if (distinct) out += "DISTINCT ";
      out += ExprListToString(children);
      out += ")";
      if (window) {
        out += " OVER (";
        if (!window->partition_by.empty())
          out += "PARTITION BY " + ExprListToString(window->partition_by);
        if (!window->order_by.empty()) {
          out += " ORDER BY ";
          for (size_t i = 0; i < window->order_by.size(); ++i) {
            if (i) out += ", ";
            out += window->order_by[i].first->ToString();
            if (!window->order_by[i].second) out += " DESC";
          }
        }
        out += ")";
      }
      return out;
    }
    case ExprKind::kCase: {
      std::string out = "CASE";
      size_t pair_count = (children.size() - (has_else ? 1 : 0)) / 2;
      for (size_t p = 0; p < pair_count; ++p)
        out += " WHEN " + children[2 * p]->ToString() + " THEN " +
               children[2 * p + 1]->ToString();
      if (has_else) out += " ELSE " + children.back()->ToString();
      out += " END";
      return out;
    }
    case ExprKind::kCast:
      return "CAST(" + children[0]->ToString() + " AS " + cast_type.ToString() + ")";
    case ExprKind::kInList: {
      std::string out = children[0]->ToString();
      out += negated ? " NOT IN (" : " IN (";
      for (size_t i = 1; i < children.size(); ++i) {
        if (i > 1) out += ", ";
        out += children[i]->ToString();
      }
      return out + ")";
    }
    case ExprKind::kBetween:
      return children[0]->ToString() + (negated ? " NOT BETWEEN " : " BETWEEN ") +
             children[1]->ToString() + " AND " + children[2]->ToString();
    case ExprKind::kIsNull:
      return children[0]->ToString() + (negated ? " IS NOT NULL" : " IS NULL");
    case ExprKind::kSubquery: {
      std::string body = subquery ? subquery->ToString() : "?";
      switch (subquery_kind) {
        case SubqueryKind::kScalar: return "(" + body + ")";
        case SubqueryKind::kExists: return "EXISTS (" + body + ")";
        case SubqueryKind::kNotExists: return "NOT EXISTS (" + body + ")";
        case SubqueryKind::kIn:
          return children[0]->ToString() + " IN (" + body + ")";
        case SubqueryKind::kNotIn:
          return children[0]->ToString() + " NOT IN (" + body + ")";
      }
      return "?";
    }
    case ExprKind::kParam:
      return "?" + std::to_string(param_index);
  }
  return "?";
}

std::string TableRef::ToString() const {
  switch (kind) {
    case Kind::kTable: {
      std::string out = db.empty() ? table : db + "." + table;
      if (!alias.empty() && alias != table) out += " AS " + alias;
      return out;
    }
    case Kind::kSubquery:
      return "(" + subquery->ToString() + ") AS " + alias;
    case Kind::kJoin: {
      const char* name = "JOIN";
      switch (join_type) {
        case JoinType::kInner: name = "JOIN"; break;
        case JoinType::kLeft: name = "LEFT JOIN"; break;
        case JoinType::kRight: name = "RIGHT JOIN"; break;
        case JoinType::kFull: name = "FULL JOIN"; break;
        case JoinType::kCross: name = "CROSS JOIN"; break;
        case JoinType::kSemi: name = "SEMI JOIN"; break;
        case JoinType::kAnti: name = "ANTI JOIN"; break;
      }
      std::string out = left->ToString() + " " + name + " " + right->ToString();
      if (condition) out += " ON " + condition->ToString();
      return out;
    }
  }
  return "?";
}

std::string SelectCore::ToString() const {
  std::string out = "SELECT ";
  if (distinct) out += "DISTINCT ";
  for (size_t i = 0; i < items.size(); ++i) {
    if (i) out += ", ";
    out += items[i].expr->ToString();
    if (!items[i].alias.empty()) out += " AS " + items[i].alias;
  }
  if (from) out += " FROM " + from->ToString();
  if (where) out += " WHERE " + where->ToString();
  if (!group_by.empty()) {
    out += " GROUP BY " + ExprListToString(group_by);
    if (!grouping_sets.empty()) {
      out += " GROUPING SETS (";
      for (size_t s = 0; s < grouping_sets.size(); ++s) {
        if (s) out += ", ";
        out += "(";
        for (size_t k = 0; k < grouping_sets[s].size(); ++k) {
          if (k) out += ", ";
          out += group_by[grouping_sets[s][k]]->ToString();
        }
        out += ")";
      }
      out += ")";
    }
  }
  if (having) out += " HAVING " + having->ToString();
  return out;
}

std::string QueryExpr::ToString() const {
  if (op == SetOpKind::kNone) return core.ToString();
  const char* name = "";
  switch (op) {
    case SetOpKind::kUnionAll: name = " UNION ALL "; break;
    case SetOpKind::kUnionDistinct: name = " UNION "; break;
    case SetOpKind::kIntersect: name = " INTERSECT "; break;
    case SetOpKind::kExcept: name = " EXCEPT "; break;
    case SetOpKind::kNone: break;
  }
  return "(" + left->ToString() + ")" + name + "(" + right->ToString() + ")";
}

std::string SelectStmt::ToString() const {
  std::string out;
  if (!ctes.empty()) {
    out += "WITH ";
    for (size_t i = 0; i < ctes.size(); ++i) {
      if (i) out += ", ";
      out += ctes[i].name + " AS (" + ctes[i].query->ToString() + ")";
    }
    out += " ";
  }
  out += body->ToString();
  if (!order_by.empty()) {
    out += " ORDER BY ";
    for (size_t i = 0; i < order_by.size(); ++i) {
      if (i) out += ", ";
      out += order_by[i].expr->ToString();
      if (!order_by[i].ascending) out += " DESC";
    }
  }
  if (limit >= 0) out += " LIMIT " + std::to_string(limit);
  return out;
}

std::string InsertStatement::ToString() const {
  std::string out = "INSERT INTO " + (db.empty() ? table : db + "." + table);
  if (!columns.empty()) {
    out += " (";
    for (size_t i = 0; i < columns.size(); ++i) {
      if (i) out += ", ";
      out += columns[i];
    }
    out += ")";
  }
  if (source) {
    out += " " + source->ToString();
  } else {
    out += " VALUES ";
    for (size_t r = 0; r < values_rows.size(); ++r) {
      if (r) out += ", ";
      out += "(" + ExprListToString(values_rows[r]) + ")";
    }
  }
  return out;
}

std::string UpdateStatement::ToString() const {
  std::string out = "UPDATE " + (db.empty() ? table : db + "." + table) + " SET ";
  for (size_t i = 0; i < assignments.size(); ++i) {
    if (i) out += ", ";
    out += assignments[i].first + " = " + assignments[i].second->ToString();
  }
  if (where) out += " WHERE " + where->ToString();
  return out;
}

std::string DeleteStatement::ToString() const {
  std::string out = "DELETE FROM " + (db.empty() ? table : db + "." + table);
  if (where) out += " WHERE " + where->ToString();
  return out;
}

std::string MergeStatement::ToString() const {
  std::string out = "MERGE INTO " + (db.empty() ? table : db + "." + table);
  if (!target_alias.empty()) out += " AS " + target_alias;
  out += " USING " + source->ToString() + " ON " + on->ToString();
  if (has_matched_update) {
    out += " WHEN MATCHED THEN UPDATE SET ";
    for (size_t i = 0; i < matched_assignments.size(); ++i) {
      if (i) out += ", ";
      out += matched_assignments[i].first + " = " +
             matched_assignments[i].second->ToString();
    }
  }
  if (has_matched_delete) out += " WHEN MATCHED THEN DELETE";
  if (has_not_matched_insert)
    out += " WHEN NOT MATCHED THEN INSERT VALUES (" +
           ExprListToString(insert_values) + ")";
  return out;
}

std::string CreateTableStatement::ToString() const {
  std::string out = "CREATE ";
  if (temporary) out += "TEMPORARY ";
  if (external) out += "EXTERNAL ";
  out += "TABLE " + (db.empty() ? table : db + "." + table);
  out += " (";
  for (size_t i = 0; i < columns.size(); ++i) {
    if (i) out += ", ";
    out += columns[i].name + " " + columns[i].type.ToString();
  }
  out += ")";
  if (!partition_columns.empty()) {
    out += " PARTITIONED BY (";
    for (size_t i = 0; i < partition_columns.size(); ++i) {
      if (i) out += ", ";
      out += partition_columns[i].name + " " + partition_columns[i].type.ToString();
    }
    out += ")";
  }
  if (!stored_by.empty()) out += " STORED BY '" + stored_by + "'";
  if (as_select) out += " AS " + as_select->ToString();
  return out;
}

std::string CreateMaterializedViewStatement::ToString() const {
  return "CREATE MATERIALIZED VIEW " + (db.empty() ? name : db + "." + name) +
         " AS " + (query ? query->ToString() : query_sql);
}

std::string AlterMaterializedViewRebuildStatement::ToString() const {
  return "ALTER MATERIALIZED VIEW " + (db.empty() ? name : db + "." + name) +
         " REBUILD";
}

std::string DropTableStatement::ToString() const {
  return std::string("DROP ") + (is_materialized_view ? "MATERIALIZED VIEW " : "TABLE ") +
         (db.empty() ? table : db + "." + table);
}

std::string ResourcePlanStatement::ToString() const {
  switch (op) {
    case Op::kCreatePlan: return "CREATE RESOURCE PLAN " + plan;
    case Op::kCreatePool:
      return "CREATE POOL " + plan + "." + pool + " WITH alloc_fraction=" +
             std::to_string(alloc_fraction) +
             ", query_parallelism=" + std::to_string(query_parallelism);
    case Op::kCreateRule:
      return "CREATE RULE " + rule_name + " IN " + plan + " WHEN " + rule_metric +
             " > " + std::to_string(rule_threshold) + " THEN " + rule_action + " " +
             rule_target_pool;
    case Op::kAddRuleToPool: return "ADD RULE " + rule_name + " TO " + pool;
    case Op::kCreateMapping:
      return "CREATE APPLICATION MAPPING " + mapping_application + " IN " + plan +
             " TO " + pool;
    case Op::kSetDefaultPool:
      return "ALTER PLAN " + plan + " SET DEFAULT POOL = " + pool;
    case Op::kEnableActivate:
      return "ALTER RESOURCE PLAN " + plan + " ENABLE ACTIVATE";
  }
  return "?";
}

}  // namespace hive
