#include "common/hash.h"

#include <cstring>

namespace hive {

uint64_t Murmur64(const void* data, size_t len, uint64_t seed) {
  const uint64_t m = 0xc6a4a7935bd1e995ULL;
  const int r = 47;
  uint64_t h = seed ^ (len * m);

  const auto* p = static_cast<const uint8_t*>(data);
  const uint8_t* end = p + (len / 8) * 8;
  while (p != end) {
    uint64_t k;
    std::memcpy(&k, p, 8);
    p += 8;
    k *= m;
    k ^= k >> r;
    k *= m;
    h ^= k;
    h *= m;
  }

  size_t tail = len & 7;
  if (tail != 0) {
    uint64_t k = 0;
    std::memcpy(&k, p, tail);
    h ^= k;
    h *= m;
  }

  h ^= h >> r;
  h *= m;
  h ^= h >> r;
  return h;
}

}  // namespace hive
