#ifndef HIVE_COMMON_HASH_H_
#define HIVE_COMMON_HASH_H_

#include <cstddef>
#include <cstdint>

namespace hive {

/// 64-bit MurmurHash2-style hash used for join/group-by keys, Bloom filters
/// and HyperLogLog sketches. Stable across runs (no ASLR-dependent seeding)
/// so file-embedded Bloom filters remain valid.
uint64_t Murmur64(const void* data, size_t len, uint64_t seed);

/// Mix step for combining hashes (boost::hash_combine style, 64-bit).
inline uint64_t HashCombine(uint64_t a, uint64_t b) {
  a ^= b + 0x9e3779b97f4a7c15ULL + (a << 12) + (a >> 4);
  return a;
}

}  // namespace hive

#endif  // HIVE_COMMON_HASH_H_
