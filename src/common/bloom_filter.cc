#include "common/bloom_filter.h"

#include <cmath>
#include <cstring>

#include "common/hash.h"
#include "common/serde.h"

namespace hive {

BloomFilter::BloomFilter(uint64_t expected_entries, double fpp) {
  if (expected_entries == 0) expected_entries = 1;
  if (fpp <= 0 || fpp >= 1) fpp = 0.03;
  double bits = -static_cast<double>(expected_entries) * std::log(fpp) /
                (std::log(2.0) * std::log(2.0));
  num_bits_ = static_cast<uint64_t>(bits) | 63;  // round up to word multiple
  num_bits_ += 1;
  num_hashes_ = std::max(1, static_cast<int>(std::round(
                                bits / expected_entries * std::log(2.0))));
  if (num_hashes_ > 16) num_hashes_ = 16;
  bits_.assign(num_bits_ / 64, 0);
}

void BloomFilter::AddHash(uint64_t h) {
  uint64_t h1 = h;
  uint64_t h2 = (h >> 17) | (h << 47);
  for (int i = 0; i < num_hashes_; ++i) {
    uint64_t bit = (h1 + i * h2) % num_bits_;
    bits_[bit >> 6] |= (1ULL << (bit & 63));
  }
}

bool BloomFilter::MightContainHash(uint64_t h) const {
  uint64_t h1 = h;
  uint64_t h2 = (h >> 17) | (h << 47);
  for (int i = 0; i < num_hashes_; ++i) {
    uint64_t bit = (h1 + i * h2) % num_bits_;
    if ((bits_[bit >> 6] & (1ULL << (bit & 63))) == 0) return false;
  }
  return true;
}

void BloomFilter::AddInt64(int64_t v) { AddHash(Murmur64(&v, sizeof v, 0x5eed)); }
bool BloomFilter::MightContainInt64(int64_t v) const {
  return MightContainHash(Murmur64(&v, sizeof v, 0x5eed));
}
void BloomFilter::AddString(const std::string& s) {
  AddHash(Murmur64(s.data(), s.size(), 0x5eed));
}
bool BloomFilter::MightContainString(const std::string& s) const {
  return MightContainHash(Murmur64(s.data(), s.size(), 0x5eed));
}

Status BloomFilter::MergeFrom(const BloomFilter& other) {
  if (other.num_bits_ != num_bits_ || other.num_hashes_ != num_hashes_)
    return Status::InvalidArgument("bloom geometry mismatch");
  for (size_t i = 0; i < bits_.size(); ++i) bits_[i] |= other.bits_[i];
  return Status::OK();
}

void BloomFilter::Serialize(std::string* out) const {
  serde::PutU64(out, num_bits_);
  serde::PutU32(out, static_cast<uint32_t>(num_hashes_));
  serde::PutU64(out, bits_.size());
  size_t base = out->size();
  out->resize(base + bits_.size() * 8);
  std::memcpy(out->data() + base, bits_.data(), bits_.size() * 8);
}

Result<BloomFilter> BloomFilter::Deserialize(const std::string& data, size_t* offset) {
  BloomFilter bf(1, 0.03);
  uint64_t nbits, nwords;
  uint32_t nhashes;
  if (!serde::GetU64(data, offset, &nbits) ||
      !serde::GetU32(data, offset, &nhashes) ||
      !serde::GetU64(data, offset, &nwords))
    return Status::Corruption("bloom header");
  if (*offset + nwords * 8 > data.size()) return Status::Corruption("bloom bits");
  bf.num_bits_ = nbits;
  bf.num_hashes_ = static_cast<int>(nhashes);
  bf.bits_.assign(nwords, 0);
  std::memcpy(bf.bits_.data(), data.data() + *offset, nwords * 8);
  *offset += nwords * 8;
  return bf;
}

}  // namespace hive
