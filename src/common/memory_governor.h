#ifndef HIVE_COMMON_MEMORY_GOVERNOR_H_
#define HIVE_COMMON_MEMORY_GOVERNOR_H_

#include <atomic>
#include <cstdint>

namespace hive {

/// Process-wide memory budget ("exec.memory.limit.bytes") that blocking
/// operators draw reservations from. The governor hands out bytes, never
/// allocates them: an operator reports the footprint it is about to reach
/// at batch granularity, and a denied grow is the signal to spill through
/// hive::fs (or fail with a budget-exceeded status when spilling is off).
///
/// Accounting is a pair of relaxed atomics; a reservation race between two
/// queries may over-admit by one batch, which is the same slack a real
/// memory manager has between malloc and its ledger. Within one query the
/// serial operator pipeline makes grow/denial decisions deterministic.
class MemoryGovernor {
 public:
  /// `limit_bytes` <= 0 means unlimited.
  explicit MemoryGovernor(int64_t limit_bytes = 0) : limit_(limit_bytes) {}

  int64_t limit() const { return limit_.load(std::memory_order_relaxed); }
  int64_t reserved() const { return reserved_.load(std::memory_order_relaxed); }
  int64_t denied() const { return denied_.load(std::memory_order_relaxed); }

  /// Tries to take `bytes` from the remaining budget. Returns false (and
  /// counts a denial) when the grant would exceed the limit.
  bool TryReserve(int64_t bytes);
  void Release(int64_t bytes);

  /// Unique id for spill directories / file prefixes; file names never
  /// influence query results, only namespace uniqueness across attempts.
  uint64_t NextSpillId() {
    return spill_ids_.fetch_add(1, std::memory_order_relaxed);
  }

 private:
  std::atomic<int64_t> limit_;
  std::atomic<int64_t> reserved_{0};
  std::atomic<int64_t> denied_{0};
  std::atomic<uint64_t> spill_ids_{0};
};

/// One query's share of the governor ("query.memory.limit.bytes"): grows
/// are checked against the per-query cap first, then forwarded to the
/// process governor. Destruction releases whatever the query still holds,
/// so error paths cannot leak budget.
class QueryMemory {
 public:
  /// Either pointer/limit may be absent (null / <= 0): the missing layer
  /// admits everything.
  QueryMemory(MemoryGovernor* governor, int64_t query_limit_bytes)
      : governor_(governor), query_limit_(query_limit_bytes) {}
  ~QueryMemory();

  QueryMemory(const QueryMemory&) = delete;
  QueryMemory& operator=(const QueryMemory&) = delete;

  bool TryGrow(int64_t bytes);
  void Release(int64_t bytes);

  int64_t used() const { return used_.load(std::memory_order_relaxed); }
  int64_t query_limit() const { return query_limit_; }
  /// True when any layer can actually deny (there is a budget to exceed).
  bool bounded() const {
    return query_limit_ > 0 || (governor_ && governor_->limit() > 0);
  }
  MemoryGovernor* governor() const { return governor_; }

 private:
  MemoryGovernor* governor_;
  const int64_t query_limit_;
  std::atomic<int64_t> used_{0};
};

/// Operator-level reservation: tracks the bytes one blocking operator holds
/// and reports growth at batch granularity. GrowTo(footprint) is the whole
/// protocol — the operator states the size it is about to reach; a false
/// return means the budget is exhausted and the operator must spill (and
/// Release) or fail. RAII: destruction returns the bytes.
class MemoryReservation {
 public:
  /// `memory` may be null (hand-built contexts): every grow succeeds.
  explicit MemoryReservation(QueryMemory* memory = nullptr) : memory_(memory) {}
  ~MemoryReservation() { Release(); }

  MemoryReservation(const MemoryReservation&) = delete;
  MemoryReservation& operator=(const MemoryReservation&) = delete;

  void Attach(QueryMemory* memory) { memory_ = memory; }

  /// Grows (or shrinks) the held reservation to `bytes`. On denial the
  /// reservation keeps its previous size.
  bool GrowTo(int64_t bytes);
  /// Returns everything held (the operator spilled or finished).
  void Release();

  int64_t held() const { return held_; }

 private:
  QueryMemory* memory_ = nullptr;
  int64_t held_ = 0;
};

}  // namespace hive

#endif  // HIVE_COMMON_MEMORY_GOVERNOR_H_
