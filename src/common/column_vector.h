#ifndef HIVE_COMMON_COLUMN_VECTOR_H_
#define HIVE_COMMON_COLUMN_VECTOR_H_

#include <memory>
#include <string>
#include <vector>

#include "common/schema.h"
#include "common/types.h"

namespace hive {

/// A typed columnar vector of values, the unit of data flow between the COF
/// reader, the LLAP cache and the vectorized operators. Integer-backed kinds
/// (BIGINT, DATE, TIMESTAMP, DECIMAL, BOOLEAN) share the i64 buffer; DOUBLE
/// uses the f64 buffer; STRING owns a string vector. Validity is a byte per
/// row (1 = non-null).
class ColumnVector {
 public:
  ColumnVector() = default;
  explicit ColumnVector(DataType type) : type_(type) {}

  const DataType& type() const { return type_; }
  void set_type(DataType t) { type_ = t; }
  size_t size() const { return nulls_.size(); }

  bool IsNull(size_t i) const { return nulls_[i] == 0; }
  void SetNull(size_t i) { nulls_[i] = 0; }

  int64_t GetI64(size_t i) const { return i64_[i]; }
  double GetF64(size_t i) const { return f64_[i]; }
  const std::string& GetStr(size_t i) const { return str_[i]; }

  /// Boxed accessor; prefer the typed ones on hot paths.
  Value GetValue(size_t i) const;

  void Resize(size_t n);
  void AppendNull();
  void AppendI64(int64_t v);
  void AppendF64(double v);
  void AppendStr(std::string v);
  void AppendValue(const Value& v);

  /// Appends row `i` of `src` (same type) to this vector.
  void AppendFrom(const ColumnVector& src, size_t i);

  /// Raw buffers for the vectorized kernels.
  std::vector<int64_t>& i64_data() { return i64_; }
  const std::vector<int64_t>& i64_data() const { return i64_; }
  std::vector<double>& f64_data() { return f64_; }
  const std::vector<double>& f64_data() const { return f64_; }
  std::vector<std::string>& str_data() { return str_; }
  const std::vector<std::string>& str_data() const { return str_; }
  std::vector<uint8_t>& validity() { return nulls_; }
  const std::vector<uint8_t>& validity() const { return nulls_; }

  /// Approximate memory footprint; drives LLAP cache accounting.
  size_t ByteSize() const;

 private:
  DataType type_;
  std::vector<uint8_t> nulls_;  // 1 = valid
  std::vector<int64_t> i64_;
  std::vector<double> f64_;
  std::vector<std::string> str_;
};

using ColumnVectorPtr = std::shared_ptr<ColumnVector>;

/// A batch of rows in columnar layout with an optional selection vector.
/// Filters mark surviving rows in the selection instead of copying, the
/// vectorized-execution idiom the paper inherits from [39].
class RowBatch {
 public:
  RowBatch() = default;
  explicit RowBatch(Schema schema);

  const Schema& schema() const { return schema_; }
  size_t num_columns() const { return columns_.size(); }
  ColumnVectorPtr column(size_t i) const { return columns_[i]; }
  void SetColumn(size_t i, ColumnVectorPtr col) { columns_[i] = std::move(col); }
  void AddColumn(Field field, ColumnVectorPtr col);

  /// Physical row count of the underlying vectors.
  size_t num_rows() const { return num_rows_; }
  void set_num_rows(size_t n) { num_rows_ = n; }

  bool has_selection() const { return has_selection_; }
  const std::vector<int32_t>& selection() const { return selection_; }
  void SetSelection(std::vector<int32_t> sel);
  void ClearSelection();

  /// Logical row count after selection.
  size_t SelectedSize() const { return has_selection_ ? selection_.size() : num_rows_; }
  /// Maps logical row index to physical index.
  int32_t SelectedRow(size_t i) const {
    return has_selection_ ? selection_[i] : static_cast<int32_t>(i);
  }

  /// Materializes the selection into dense vectors (copying survivors).
  void Flatten();

  /// Row `i` (logical) as boxed values, for tests and result fetch.
  std::vector<Value> GetRow(size_t i) const;

  size_t ByteSize() const;

 private:
  Schema schema_;
  std::vector<ColumnVectorPtr> columns_;
  size_t num_rows_ = 0;
  bool has_selection_ = false;
  std::vector<int32_t> selection_;
};

}  // namespace hive

#endif  // HIVE_COMMON_COLUMN_VECTOR_H_
