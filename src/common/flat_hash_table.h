#ifndef HIVE_COMMON_FLAT_HASH_TABLE_H_
#define HIVE_COMMON_FLAT_HASH_TABLE_H_

#include <cstdint>
#include <vector>

namespace hive {

/// Cache-friendly hash structures for the vectorized join/aggregation hot
/// path. All of them are deterministic by construction: their observable
/// contents (lookup results and chain order) depend only on the sequence of
/// inserts, never on partition fan-out or thread scheduling, which is what
/// lets the morsel-parallel build produce byte-identical query results at
/// any executor count.

/// Open-addressing (linear-probing, power-of-two) hash index mapping 64-bit
/// hashes to chains of int32 payload ids. One flat slot array replaces the
/// node-per-entry std::unordered_multimap/std::unordered_map layout: a probe
/// touches consecutive cache lines instead of chasing list nodes, and the
/// stored hash filters mismatches without comparing keys.
///
/// Payloads with the same 64-bit hash chain together in a side array;
/// chains are newest-first, so inserting ids in ascending order yields
/// descending chains — the discipline the join build relies on for
/// deterministic duplicate-match order. Rehashing relocates slots wholesale
/// and never reorders a chain.
///
/// Not internally synchronized: build single-threaded (or one instance per
/// partition), then probe concurrently (Find/NextOf/PayloadOf are const).
class FlatHashIndex {
 public:
  static constexpr int32_t kInvalid = -1;

  /// Clears and pre-sizes the slot array for `expected` entries.
  void Reset(size_t expected) {
    entries_.clear();
    occupied_ = 0;
    size_t slots = 16;
    while (slots < expected * 2) slots <<= 1;
    slots_.assign(slots, Slot{});
    mask_ = slots - 1;
  }

  /// Inserts `id` under `hash`; duplicates chain newest-first.
  void Insert(uint64_t hash, int32_t id) {
    if ((occupied_ + 1) * 2 > slots_.size()) Rehash(slots_.size() * 2);
    size_t i = hash & mask_;
    for (;;) {
      Slot& s = slots_[i];
      if (s.head == kInvalid) {
        s.hash = hash;
        s.head = static_cast<int32_t>(entries_.size());
        entries_.push_back(Entry{id, kInvalid});
        ++occupied_;
        return;
      }
      if (s.hash == hash) {
        entries_.push_back(Entry{id, s.head});
        s.head = static_cast<int32_t>(entries_.size() - 1);
        return;
      }
      i = (i + 1) & mask_;
    }
  }

  /// Head of the chain for `hash` (an entry handle), or kInvalid.
  int32_t Find(uint64_t hash) const {
    if (slots_.empty()) return kInvalid;
    size_t i = hash & mask_;
    for (;;) {
      const Slot& s = slots_[i];
      if (s.head == kInvalid) return kInvalid;
      if (s.hash == hash) return s.head;
      i = (i + 1) & mask_;
    }
  }

  int32_t PayloadOf(int32_t entry) const { return entries_[entry].id; }
  int32_t NextOf(int32_t entry) const { return entries_[entry].next; }

  size_t num_entries() const { return entries_.size(); }
  size_t num_slots() const { return slots_.size(); }
  /// Occupied fraction of the slot array (distinct hashes / slots).
  double load_factor() const {
    return slots_.empty() ? 0.0
                          : static_cast<double>(occupied_) /
                                static_cast<double>(slots_.size());
  }
  size_t ApproxBytes() const {
    return slots_.size() * sizeof(Slot) + entries_.capacity() * sizeof(Entry);
  }

 private:
  struct Slot {
    uint64_t hash = 0;
    int32_t head = kInvalid;  // entry handle, kInvalid = empty slot
  };
  struct Entry {
    int32_t id;    // caller payload (build row / group ordinal)
    int32_t next;  // next entry with the same hash, kInvalid at chain end
  };

  void Rehash(size_t new_slots) {
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(new_slots, Slot{});
    mask_ = new_slots - 1;
    // Chains live in entries_ and move wholesale with their slot, so a
    // rehash never changes lookup results or chain order.
    for (const Slot& s : old) {
      if (s.head == kInvalid) continue;
      size_t i = s.hash & mask_;
      while (slots_[i].head != kInvalid) i = (i + 1) & mask_;
      slots_[i] = s;
    }
  }

  std::vector<Slot> slots_;
  std::vector<Entry> entries_;
  size_t occupied_ = 0;
  uint64_t mask_ = 0;
};

/// The join build table: hash-partitioned FlatHashIndexes built in parallel
/// (one worker per partition, lock-free — partitions share nothing) and
/// probed without synchronization. A row's partition comes from its hash's
/// top bits, so chains — which group rows with *equal* hashes — always land
/// in one partition; as long as every partition inserts its rows in
/// ascending row order, the probe sees identical candidate chains no matter
/// how many partitions or workers built the table.
class FlatJoinTable {
 public:
  /// Sizes `partitions` (rounded up to a power of two) sub-indexes from a
  /// counting pass over `hashes`; rows with valid[row]==0 are skipped (null
  /// join keys never match). Call once, then BuildPartition for each p.
  void Init(const std::vector<uint64_t>& hashes, const std::vector<uint8_t>& valid,
            int partitions) {
    int p = 1;
    while (p < partitions) p <<= 1;
    bits_ = 0;
    while ((1 << bits_) < p) ++bits_;
    parts_.assign(static_cast<size_t>(p), FlatHashIndex());
    std::vector<size_t> counts(parts_.size(), 0);
    for (size_t r = 0; r < hashes.size(); ++r)
      if (valid[r]) ++counts[PartitionOf(hashes[r])];
    for (size_t i = 0; i < parts_.size(); ++i) parts_[i].Reset(counts[i]);
  }

  int num_partitions() const { return static_cast<int>(parts_.size()); }

  size_t PartitionOf(uint64_t hash) const {
    return bits_ == 0 ? 0 : static_cast<size_t>(hash >> (64 - bits_));
  }

  /// Inserts partition `p`'s rows in ascending row order. Thread-safe for
  /// distinct partitions (each touches only its own sub-index).
  void BuildPartition(int p, const std::vector<uint64_t>& hashes,
                      const std::vector<uint8_t>& valid) {
    FlatHashIndex& idx = parts_[static_cast<size_t>(p)];
    for (size_t r = 0; r < hashes.size(); ++r)
      if (valid[r] && PartitionOf(hashes[r]) == static_cast<size_t>(p))
        idx.Insert(hashes[r], static_cast<int32_t>(r));
  }

  /// Walks the candidate build rows for one probe hash (rows whose build
  /// hash equals it exactly, descending row order).
  class Iterator {
   public:
    Iterator() = default;
    Iterator(const FlatHashIndex* idx, int32_t entry) : idx_(idx), entry_(entry) {}
    bool valid() const { return entry_ != FlatHashIndex::kInvalid; }
    int32_t row() const { return idx_->PayloadOf(entry_); }
    void Advance() { entry_ = idx_->NextOf(entry_); }

   private:
    const FlatHashIndex* idx_ = nullptr;
    int32_t entry_ = FlatHashIndex::kInvalid;
  };

  Iterator Probe(uint64_t hash) const {
    const FlatHashIndex& idx = parts_[PartitionOf(hash)];
    return Iterator(&idx, idx.Find(hash));
  }

  size_t num_entries() const {
    size_t n = 0;
    for (const FlatHashIndex& p : parts_) n += p.num_entries();
    return n;
  }
  /// Entries in one partition (per-worker build-cost accounting).
  size_t num_entries_in(int p) const {
    return parts_[static_cast<size_t>(p)].num_entries();
  }
  size_t num_slots() const {
    size_t n = 0;
    for (const FlatHashIndex& p : parts_) n += p.num_slots();
    return n;
  }
  double load_factor() const {
    size_t slots = num_slots();
    if (slots == 0) return 0.0;
    double occupied = 0;
    for (const FlatHashIndex& p : parts_)
      occupied += p.load_factor() * static_cast<double>(p.num_slots());
    return occupied / static_cast<double>(slots);
  }
  size_t ApproxBytes() const {
    size_t n = 0;
    for (const FlatHashIndex& p : parts_) n += p.ApproxBytes();
    return n;
  }

 private:
  std::vector<FlatHashIndex> parts_;
  int bits_ = 0;
};

/// Perfect-hash join table (cf. DuckDB's perfect hash join): when the build
/// side's single integer key spans a dense domain [min, max] with no
/// duplicates — the date_dim/item dimension-table shape — a probe is one
/// bounds check plus one array load, with no hashing, probing, or key
/// verification at all.
class PerfectHashTable {
 public:
  /// Attempts to build over `keys` (valid[r]==0 rows are skipped). Returns
  /// false — leaving the table disengaged — when a duplicate key shows up;
  /// the caller falls back to the generic table. The caller is responsible
  /// for checking density before sizing a [min, max] array.
  bool TryBuild(const std::vector<int64_t>& keys, const std::vector<uint8_t>& valid,
                int64_t min, int64_t max) {
    min_ = min;
    max_ = max;
    size_t range = static_cast<size_t>(max - min + 1);
    rows_.assign(range, -1);
    for (size_t r = 0; r < keys.size(); ++r) {
      if (!valid[r]) continue;
      int32_t& slot = rows_[static_cast<size_t>(keys[r] - min_)];
      if (slot != -1) {
        rows_.clear();
        return false;  // duplicate build key: not a perfect domain
      }
      slot = static_cast<int32_t>(r);
    }
    engaged_ = true;
    return true;
  }

  bool engaged() const { return engaged_; }

  /// Build row for `key`, or -1. No verification needed: the array index is
  /// the key.
  int32_t Lookup(int64_t key) const {
    if (key < min_ || key > max_) return -1;
    return rows_[static_cast<size_t>(key - min_)];
  }

  size_t range() const { return rows_.size(); }
  size_t ApproxBytes() const { return rows_.capacity() * sizeof(int32_t); }

 private:
  std::vector<int32_t> rows_;
  int64_t min_ = 0;
  int64_t max_ = -1;
  bool engaged_ = false;
};

}  // namespace hive

#endif  // HIVE_COMMON_FLAT_HASH_TABLE_H_
