#ifndef HIVE_COMMON_AST_H_
#define HIVE_COMMON_AST_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/schema.h"
#include "common/types.h"

namespace hive {

struct SelectStmt;

/// Expression node kinds.
enum class ExprKind {
  kLiteral,
  kColumnRef,   // [qualifier.]name; resolved to an input ordinal by binding
  kStar,        // * or qualifier.*
  kBinary,
  kUnary,
  kFunction,    // scalar, aggregate or window call
  kCase,        // operands: [when,then]... (+ else if has_else)
  kCast,
  kInList,      // operand IN (v1, v2, ...)
  kBetween,     // operand BETWEEN lo AND hi
  kIsNull,      // IS [NOT] NULL via negated flag
  kSubquery,    // scalar / EXISTS / IN subquery
  kParam,       // ? placeholder in a PREPAREd statement; 1-based index
};

enum class BinaryOp {
  kEq, kNe, kLt, kLe, kGt, kGe,
  kAdd, kSub, kMul, kDiv, kMod,
  kAnd, kOr,
  kLike, kConcat,
};

enum class UnaryOp { kNot, kNegate };

enum class SubqueryKind { kScalar, kExists, kNotExists, kIn, kNotIn };

/// Window specification for OVER clauses (unbounded frames only).
struct WindowSpec {
  std::vector<std::shared_ptr<struct Expr>> partition_by;
  std::vector<std::pair<std::shared_ptr<struct Expr>, bool>> order_by;  // expr, asc
};

/// A SQL expression. Shared pointers keep subtree sharing cheap during
/// optimization (trees are treated as immutable once built).
struct Expr {
  ExprKind kind = ExprKind::kLiteral;

  // kLiteral
  Value literal;

  // kColumnRef / kStar
  std::string qualifier;
  std::string column;
  /// Ordinal into the binder's input row; -1 until bound.
  int binding = -1;

  // kBinary / kUnary
  BinaryOp bin_op = BinaryOp::kEq;
  UnaryOp un_op = UnaryOp::kNot;

  // kFunction
  std::string func_name;  // upper-cased
  bool distinct = false;  // COUNT(DISTINCT x)
  std::shared_ptr<WindowSpec> window;  // non-null for window calls

  // kCase
  bool has_else = false;

  // kCast
  DataType cast_type;

  // kIsNull
  bool negated = false;  // IS NOT NULL / NOT IN / NOT BETWEEN / NOT LIKE

  // kSubquery
  SubqueryKind subquery_kind = SubqueryKind::kScalar;
  std::shared_ptr<SelectStmt> subquery;

  // kParam: 1-based position of the `?` in the prepared statement's text.
  // Parameters never survive to binding: EXECUTE substitutes literals first.
  int param_index = 0;

  std::vector<std::shared_ptr<Expr>> children;

  /// Resolved result type (filled by the binder).
  DataType type;

  /// Canonical SQL-ish rendering; doubles as the plan-cache key fragment.
  std::string ToString() const;
};

using ExprPtr = std::shared_ptr<Expr>;

ExprPtr MakeLiteral(Value v);
ExprPtr MakeColumnRef(std::string qualifier, std::string column);
ExprPtr MakeBinary(BinaryOp op, ExprPtr l, ExprPtr r);
ExprPtr MakeUnary(UnaryOp op, ExprPtr operand);
ExprPtr MakeFunction(std::string name, std::vector<ExprPtr> args);
ExprPtr MakeCast(ExprPtr operand, DataType type);

/// FROM-clause item.
struct TableRef {
  enum class Kind { kTable, kSubquery, kJoin } kind = Kind::kTable;

  // kTable
  std::string db;     // empty = current database
  std::string table;
  std::string alias;  // empty = table name

  // kSubquery
  std::shared_ptr<SelectStmt> subquery;

  // kJoin
  enum class JoinType { kInner, kLeft, kRight, kFull, kCross, kSemi, kAnti };
  JoinType join_type = JoinType::kInner;
  std::shared_ptr<TableRef> left;
  std::shared_ptr<TableRef> right;
  ExprPtr condition;

  std::string ToString() const;
};
using TableRefPtr = std::shared_ptr<TableRef>;

struct SelectItem {
  ExprPtr expr;
  std::string alias;  // empty = derived
};

/// One SELECT core (before set operations / ORDER BY).
struct SelectCore {
  bool distinct = false;
  std::vector<SelectItem> items;
  TableRefPtr from;  // null for SELECT <exprs> with no FROM
  ExprPtr where;
  std::vector<ExprPtr> group_by;
  /// GROUPING SETS: each entry is a list of indexes into group_by; empty
  /// vector means plain GROUP BY (single implicit set of all keys).
  std::vector<std::vector<size_t>> grouping_sets;
  ExprPtr having;

  std::string ToString() const;
};

enum class SetOpKind { kNone, kUnionAll, kUnionDistinct, kIntersect, kExcept };

/// Query expression tree: a core or a set operation over two subtrees.
struct QueryExpr {
  SetOpKind op = SetOpKind::kNone;   // kNone => `core` is active
  SelectCore core;
  std::shared_ptr<QueryExpr> left;
  std::shared_ptr<QueryExpr> right;

  std::string ToString() const;
};

struct OrderItem {
  ExprPtr expr;
  bool ascending = true;
};

struct CteDef {
  std::string name;
  std::shared_ptr<SelectStmt> query;
};

/// Full SELECT statement: CTEs + query expression + ORDER BY + LIMIT.
struct SelectStmt {
  std::vector<CteDef> ctes;
  std::shared_ptr<QueryExpr> body;
  std::vector<OrderItem> order_by;
  int64_t limit = -1;

  std::string ToString() const;
};

// --- statements ---

enum class StatementKind {
  kSelect,
  kInsert,
  kUpdate,
  kDelete,
  kMerge,
  kCreateTable,
  kCreateMaterializedView,
  kAlterMaterializedViewRebuild,
  kDropTable,
  kExplain,
  kCreateDatabase,
  kAnalyzeTable,
  kResourcePlanDdl,
  kShowTables,
  kShowMetrics,
  kPrepare,
  kExecute,
  kDeallocate,
};

struct Statement {
  virtual ~Statement() = default;
  virtual StatementKind kind() const = 0;
  virtual std::string ToString() const = 0;
};
using StatementPtr = std::shared_ptr<Statement>;

struct SelectStatement : Statement {
  SelectStmt select;
  StatementKind kind() const override { return StatementKind::kSelect; }
  std::string ToString() const override { return select.ToString(); }
};

struct InsertStatement : Statement {
  std::string db, table;
  std::vector<std::string> columns;  // optional explicit column list
  std::shared_ptr<SelectStmt> source;             // INSERT ... SELECT
  std::vector<std::vector<ExprPtr>> values_rows;  // INSERT ... VALUES
  StatementKind kind() const override { return StatementKind::kInsert; }
  std::string ToString() const override;
};

struct UpdateStatement : Statement {
  std::string db, table;
  std::vector<std::pair<std::string, ExprPtr>> assignments;
  ExprPtr where;
  StatementKind kind() const override { return StatementKind::kUpdate; }
  std::string ToString() const override;
};

struct DeleteStatement : Statement {
  std::string db, table;
  ExprPtr where;
  StatementKind kind() const override { return StatementKind::kDelete; }
  std::string ToString() const override;
};

struct MergeStatement : Statement {
  std::string db, table;      // target
  std::string target_alias;
  TableRefPtr source;         // table or subquery with alias
  ExprPtr on;
  /// WHEN MATCHED THEN UPDATE SET ... (optional extra condition)
  bool has_matched_update = false;
  std::vector<std::pair<std::string, ExprPtr>> matched_assignments;
  ExprPtr matched_update_condition;
  /// WHEN MATCHED THEN DELETE
  bool has_matched_delete = false;
  ExprPtr matched_delete_condition;
  /// WHEN NOT MATCHED THEN INSERT VALUES (...)
  bool has_not_matched_insert = false;
  std::vector<ExprPtr> insert_values;
  StatementKind kind() const override { return StatementKind::kMerge; }
  std::string ToString() const override;
};

struct ColumnDef {
  std::string name;
  DataType type;
};

struct CreateTableStatement : Statement {
  std::string db, table;
  bool if_not_exists = false;
  bool external = false;
  /// CREATE TEMPORARY TABLE: session-scoped, dropped when the connection
  /// closes, invisible to every other session. May not be db-qualified.
  bool temporary = false;
  std::vector<ColumnDef> columns;
  std::vector<ColumnDef> partition_columns;
  /// Constraint clauses (PRIMARY KEY, FOREIGN KEY ... REFERENCES, ...).
  struct Constraint {
    enum class Kind { kPrimaryKey, kForeignKey, kUnique, kNotNull } kind;
    std::vector<std::string> columns;
    std::string ref_table;
    std::vector<std::string> ref_columns;
  };
  std::vector<Constraint> constraints;
  std::string stored_by;  // storage handler class ("droid", "jdbc", ...)
  std::map<std::string, std::string> properties;
  std::shared_ptr<SelectStmt> as_select;  // CTAS
  StatementKind kind() const override { return StatementKind::kCreateTable; }
  std::string ToString() const override;
};

struct CreateMaterializedViewStatement : Statement {
  std::string db, name;
  std::map<std::string, std::string> properties;
  std::shared_ptr<SelectStmt> query;
  std::string query_sql;  // original text of the definition
  StatementKind kind() const override {
    return StatementKind::kCreateMaterializedView;
  }
  std::string ToString() const override;
};

struct AlterMaterializedViewRebuildStatement : Statement {
  std::string db, name;
  StatementKind kind() const override {
    return StatementKind::kAlterMaterializedViewRebuild;
  }
  std::string ToString() const override;
};

struct DropTableStatement : Statement {
  std::string db, table;
  bool if_exists = false;
  bool is_materialized_view = false;
  StatementKind kind() const override { return StatementKind::kDropTable; }
  std::string ToString() const override;
};

struct ExplainStatement : Statement {
  StatementPtr inner;
  /// EXPLAIN ANALYZE: execute the statement and annotate the plan tree with
  /// per-operator actuals (rows, batches, wall + virtual time, memory).
  bool analyze = false;
  StatementKind kind() const override { return StatementKind::kExplain; }
  std::string ToString() const override {
    return (analyze ? "EXPLAIN ANALYZE " : "EXPLAIN ") + inner->ToString();
  }
};

struct CreateDatabaseStatement : Statement {
  std::string name;
  bool if_not_exists = false;
  StatementKind kind() const override { return StatementKind::kCreateDatabase; }
  std::string ToString() const override { return "CREATE DATABASE " + name; }
};

struct AnalyzeTableStatement : Statement {
  std::string db, table;
  StatementKind kind() const override { return StatementKind::kAnalyzeTable; }
  std::string ToString() const override {
    return "ANALYZE TABLE " + table + " COMPUTE STATISTICS";
  }
};

struct ShowTablesStatement : Statement {
  std::string db;
  StatementKind kind() const override { return StatementKind::kShowTables; }
  std::string ToString() const override { return "SHOW TABLES"; }
};

/// SHOW METRICS: one row per engine metric from the server's registry
/// (counters, gauges, callback gauges and histogram summaries).
struct ShowMetricsStatement : Statement {
  StatementKind kind() const override { return StatementKind::kShowMetrics; }
  std::string ToString() const override { return "SHOW METRICS"; }
};

/// Renders an expression list: "a, b, c".
std::string ExprListToString(const std::vector<ExprPtr>& exprs);

/// PREPARE name AS <select>: parses and stores a parameterized SELECT
/// template under a session-scoped name. `?` placeholders become kParam
/// expressions numbered in textual order.
struct PrepareStatement : Statement {
  std::string name;
  std::shared_ptr<SelectStmt> query;
  int param_count = 0;  // number of ? placeholders seen by the parser
  StatementKind kind() const override { return StatementKind::kPrepare; }
  std::string ToString() const override {
    return "PREPARE " + name + " AS " + query->ToString();
  }
};

/// EXECUTE name [(arg, ...)]: runs a prepared statement with literal
/// arguments substituted for its ? placeholders in order.
struct ExecuteStatement : Statement {
  std::string name;
  std::vector<ExprPtr> args;
  StatementKind kind() const override { return StatementKind::kExecute; }
  std::string ToString() const override {
    std::string out = "EXECUTE " + name;
    if (!args.empty()) out += " (" + ExprListToString(args) + ")";
    return out;
  }
};

/// DEALLOCATE [PREPARE] name: drops a prepared statement.
struct DeallocateStatement : Statement {
  std::string name;
  StatementKind kind() const override { return StatementKind::kDeallocate; }
  std::string ToString() const override { return "DEALLOCATE " + name; }
};

/// Workload-management DDL (Section 5.2): CREATE RESOURCE PLAN / POOL /
/// RULE / MAPPING, ALTER PLAN ... Parsed into one statement kind with a
/// sub-operation tag; the server applies them to the WorkloadManager.
struct ResourcePlanStatement : Statement {
  enum class Op {
    kCreatePlan,
    kCreatePool,
    kCreateRule,
    kAddRuleToPool,
    kCreateMapping,
    kSetDefaultPool,
    kEnableActivate,
  };
  Op op = Op::kCreatePlan;
  std::string plan;        // resource plan name
  std::string pool;        // pool name (plan-relative)
  double alloc_fraction = 0;
  int query_parallelism = 0;
  std::string rule_name;
  std::string rule_metric;   // e.g. "total_runtime"
  int64_t rule_threshold = 0;
  std::string rule_action;   // "MOVE" or "KILL"
  std::string rule_target_pool;
  std::string mapping_application;
  StatementKind kind() const override { return StatementKind::kResourcePlanDdl; }
  std::string ToString() const override;
};

}  // namespace hive

#endif  // HIVE_COMMON_AST_H_
