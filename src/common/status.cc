#include "common/status.h"

namespace hive {

namespace {
const char* CodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "InvalidArgument";
    case StatusCode::kNotFound: return "NotFound";
    case StatusCode::kAlreadyExists: return "AlreadyExists";
    case StatusCode::kIoError: return "IoError";
    case StatusCode::kCorruption: return "Corruption";
    case StatusCode::kNotSupported: return "NotSupported";
    case StatusCode::kTxnAborted: return "TxnAborted";
    case StatusCode::kLockTimeout: return "LockTimeout";
    case StatusCode::kParseError: return "ParseError";
    case StatusCode::kPlanError: return "PlanError";
    case StatusCode::kExecError: return "ExecError";
    case StatusCode::kResourceExhausted: return "ResourceExhausted";
    case StatusCode::kInternal: return "Internal";
  }
  return "Unknown";
}
}  // namespace

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = CodeName(code_);
  if (transient_) out += "(transient)";
  out += ": ";
  out += msg_;
  return out;
}

}  // namespace hive
