#ifndef HIVE_COMMON_BLOOM_FILTER_H_
#define HIVE_COMMON_BLOOM_FILTER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"

namespace hive {

/// Standard k-hash Bloom filter. Used in two places that mirror the paper:
/// (i) per-row-group filters embedded in COF files for sarg pushdown, and
/// (ii) dynamic semijoin reducers built at runtime (Section 4.6).
///
/// Double hashing (Kirsch-Mitzenmacher) over a single Murmur64 pass keeps
/// insert/query cheap. Serializable so COF files can embed it.
class BloomFilter {
 public:
  BloomFilter() : BloomFilter(1024, 0.03) {}

  /// Sizes the filter for `expected_entries` at false positive rate `fpp`.
  BloomFilter(uint64_t expected_entries, double fpp);

  void AddHash(uint64_t h);
  bool MightContainHash(uint64_t h) const;

  void Add(const Value& v) { AddHash(v.Hash()); }
  bool MightContain(const Value& v) const { return MightContainHash(v.Hash()); }

  void AddInt64(int64_t v);
  bool MightContainInt64(int64_t v) const;
  void AddString(const std::string& s);
  bool MightContainString(const std::string& s) const;

  /// Merges another filter built with identical geometry.
  Status MergeFrom(const BloomFilter& other);

  uint64_t num_bits() const { return num_bits_; }
  int num_hashes() const { return num_hashes_; }
  size_t SizeBytes() const { return bits_.size() * 8; }

  /// Binary round-trip for embedding in file footers.
  void Serialize(std::string* out) const;
  static Result<BloomFilter> Deserialize(const std::string& data, size_t* offset);

 private:
  uint64_t num_bits_;
  int num_hashes_;
  std::vector<uint64_t> bits_;
};

}  // namespace hive

#endif  // HIVE_COMMON_BLOOM_FILTER_H_
