#ifndef HIVE_COMMON_CONFIG_H_
#define HIVE_COMMON_CONFIG_H_

#include <cstdint>
#include <map>
#include <string>

namespace hive {

/// Session/engine configuration. The keys mirror the Hive knobs that the
/// paper's experiments toggle; the defaults correspond to the "Hive 3.1"
/// configuration. The Figure 7 baseline ("Hive 1.2 mode") is produced by
/// flipping the execution/optimizer flags via `SetLegacyV12Mode()`.
class Config {
 public:
  Config() = default;

  // --- execution runtime ---
  /// "tez" (DAG runtime) or "mr" (stage-materializing MapReduce emulation).
  std::string execution_engine = "tez";
  /// LLAP daemons: persistent executors + data cache (Section 5.1).
  bool llap_enabled = true;
  /// Simulated YARN container allocation latency charged per container
  /// launch when LLAP is off (microseconds of virtual time).
  int64_t container_startup_us = 150000;
  /// Extra per-stage materialization cost factor in MR mode: each stage
  /// writes its shuffle output through the file system.
  bool mr_materialize_shuffle = true;
  /// Worker parallelism (stand-in for cluster executors).
  int num_executors = 4;
  /// Morsel-driven intra-query parallelism for leaf scan pipelines
  /// (scan -> filter/project [-> partial aggregate]). Off in MR mode
  /// regardless of this flag.
  bool parallel_scan_enabled = true;
  /// Modeled per-row scan CPU cost in nanoseconds of virtual time (~3M
  /// rows/s per executor core at the default). Executors are modeled the
  /// same way container start-up is: a serial scan charges the clock for
  /// every row it reads, while a parallel pipeline charges only its
  /// slowest worker — the critical path of a morsel queue drained by
  /// num_executors cores, whether or not the host physically has them.
  int64_t scan_cpu_ns_per_row = 350;
  /// Morsel-driven parallel hash-join probe (build side is partitioned
  /// across the executor pool as well). Off in MR mode regardless.
  bool parallel_join_enabled = true;
  /// Perfect-hash join for single dense-integer build-key domains
  /// (date_dim/item-style dimensions): probe = bounds check + array load.
  bool perfect_hash_join_enabled = true;
  /// Modeled per-row join CPU cost (build insert / probe lookup), charged
  /// like scan_cpu_ns_per_row: serial joins pay every row, parallel joins
  /// pay the slowest worker.
  int64_t join_cpu_ns_per_row = 200;
  /// Rows per vectorized batch.
  int vector_batch_size = 1024;
  /// Memory guard on hash-join build sides (rows); exceeding it raises an
  /// execution error, the trigger for query re-optimization (Section 4.2).
  int64_t join_build_row_limit = INT64_MAX;

  // --- memory governance & spill ---
  /// "exec.memory.limit.bytes": process-wide byte budget blocking operators
  /// (hash-join build, aggregation state, sort buffers) draw reservations
  /// from. <= 0 disables the process cap.
  int64_t exec_memory_limit_bytes = 0;
  /// "query.memory.limit.bytes": one query's share of the process budget,
  /// checked before the governor. <= 0 means bounded only by the process
  /// cap.
  int64_t query_memory_limit_bytes = 0;
  /// "exec.spill.enabled": a denied reservation makes the operator spill
  /// through hive::fs (grace hash join, external merge sort, agg partition
  /// flush). When false the query instead fails with a budget-exceeded
  /// ResourceExhausted status.
  bool spill_enabled = true;
  /// Root directory for spill files; each query gets a unique subdirectory,
  /// deleted when the query finishes.
  std::string spill_dir = "/tmp/spill";
  /// Hash-prefix fan-out of one spill pass: grace-join partition pairs, agg
  /// flush partitions, and the external-sort merge fan-in.
  int spill_partitions = 8;
  /// Grace-join recursion bound: a build partition still over budget after
  /// this many repartition passes (duplicate-heavy keys cannot split
  /// further) is joined in memory best-effort instead of failing.
  int spill_max_recursion = 4;

  // --- fault tolerance (task retries, speculation, deadlines) ---
  /// "task.max.attempts": attempts for a task whose failure is transient —
  /// a morsel read inside the parallel scan, or a whole query fragment
  /// (Tez re-runs failed task attempts the same way). 1 disables retries.
  int task_max_attempts = 3;
  /// Base backoff between attempts, doubling per retry; charged to the
  /// virtual clock so tests stay fast (microseconds of virtual time).
  int64_t task_retry_backoff_us = 2000;
  /// "speculation.enabled": when a morsel task runs slower than
  /// speculation_slowdown_factor x the median completed task, launch a
  /// speculative duplicate attempt and keep the first finisher
  /// (deterministic tie-break: the original wins ties), mirroring Tez
  /// speculative execution for stragglers.
  bool speculation_enabled = true;
  /// "speculation.slowdown.factor": straggler threshold multiplier.
  double speculation_slowdown_factor = 2.0;
  /// "cache.poison.threshold": consecutive chunk-checksum failures on one
  /// file before the LLAP cache degrades that file to direct reads.
  int cache_poison_threshold = 3;
  /// "query.timeout.ms": elapsed (wall + virtual) budget per query; the
  /// deadline is evaluated at morsel/batch boundaries and kills the query
  /// with a ResourceExhausted status naming the trigger. <= 0 disables.
  int64_t query_timeout_ms = 0;

  // --- optimizer ---
  /// Cost-based optimization (join reordering etc., Section 4.1).
  bool cbo_enabled = true;
  /// Shared work optimizer (Section 4.5).
  bool shared_work_enabled = true;
  /// Dynamic semijoin reduction + Bloom pushdown (Section 4.6).
  bool semijoin_reduction_enabled = true;
  /// Dynamic partition pruning (Section 4.6).
  bool dynamic_partition_pruning_enabled = true;
  /// Materialized view based rewriting (Section 4.4).
  bool materialized_view_rewriting_enabled = true;
  /// Query result cache (Section 4.3).
  bool result_cache_enabled = true;
  /// Query reoptimization on execution error (Section 4.2): "off",
  /// "overlay" or "reoptimize".
  std::string reexecution_strategy = "reoptimize";
  /// Max joins considered by exhaustive join reordering before falling back
  /// to a greedy heuristic.
  int join_reorder_max_relations = 7;

  // --- SQL compatibility ---
  /// When true, reject SQL constructs Hive 1.2 lacked (set operations,
  /// correlated scalar subqueries with non-equi conditions, ...). Used to
  /// reproduce the "only 50 of 99 queries run" effect in Figure 7.
  bool legacy_sql_only = false;

  // --- LLAP cache ---
  int64_t llap_cache_capacity_bytes = 256LL << 20;
  double llap_lrfu_lambda = 0.05;
  int llap_io_threads = 2;

  // --- ACID ---
  /// Delta-file count threshold that triggers minor compaction.
  int compaction_delta_threshold = 10;
  /// delta/base size ratio that triggers major compaction.
  double compaction_ratio_threshold = 0.1;

  // --- sessions & admission control ---
  /// "wlm.queue.timeout.ms": how long a query may wait in its resource
  /// pool's admission queue for a concurrency slot before failing with a
  /// ResourceExhausted status naming the pool. <= 0 restores the historic
  /// reject-on-full behavior (no queueing).
  int64_t wlm_queue_timeout_ms = 0;
  /// "server.plan.cache.enabled": reuse compiled plans for EXECUTE of
  /// prepared statements via the server-wide LRU plan cache (keyed on
  /// normalized AST + catalog version).
  bool plan_cache_enabled = true;
  /// "server.plan.cache.capacity": max cached plans before LRU eviction.
  int plan_cache_capacity = 128;

  /// Switches every knob to the Hive v1.2-era configuration used as the
  /// Figure 7 baseline: MapReduce-style runtime, no LLAP, rule-based-only
  /// optimizer, no shared work / semijoin / result cache / MV rewriting,
  /// restricted SQL surface.
  void SetLegacyV12Mode() {
    execution_engine = "mr";
    llap_enabled = false;
    parallel_scan_enabled = false;
    parallel_join_enabled = false;
    perfect_hash_join_enabled = false;
    cbo_enabled = false;
    shared_work_enabled = false;
    semijoin_reduction_enabled = false;
    dynamic_partition_pruning_enabled = false;
    materialized_view_rewriting_enabled = false;
    result_cache_enabled = false;
    reexecution_strategy = "off";
    legacy_sql_only = true;
  }
};

/// Every Config field with its public dotted name, for code that must treat
/// the knob set uniformly (the session/server layering merge below, SET
/// handling, docs). A new knob only needs to be added here once to
/// participate — and tools/hivelint's drift pass enforces that every Config
/// member IS here ([knob-unregistered]), that every registered knob is read
/// somewhere in src/ ([knob-dead]), and that every public name below has a
/// row in README.md's configuration reference ([knob-undocumented]).
#define HIVE_CONFIG_FIELDS(X)                                               \
  X(execution_engine, "execution.engine")                                   \
  X(llap_enabled, "llap.enabled")                                           \
  X(container_startup_us, "container.startup.us")                           \
  X(mr_materialize_shuffle, "mr.materialize.shuffle")                       \
  X(num_executors, "exec.num.executors")                                    \
  X(parallel_scan_enabled, "exec.parallel.scan.enabled")                    \
  X(scan_cpu_ns_per_row, "exec.scan.cpu.ns.per.row")                        \
  X(parallel_join_enabled, "exec.parallel.join.enabled")                    \
  X(perfect_hash_join_enabled, "exec.perfect.hash.join.enabled")            \
  X(join_cpu_ns_per_row, "exec.join.cpu.ns.per.row")                        \
  X(vector_batch_size, "exec.vector.batch.size")                            \
  X(join_build_row_limit, "exec.join.build.row.limit")                      \
  X(exec_memory_limit_bytes, "exec.memory.limit.bytes")                     \
  X(query_memory_limit_bytes, "query.memory.limit.bytes")                   \
  X(spill_enabled, "exec.spill.enabled")                                    \
  X(spill_dir, "exec.spill.dir")                                            \
  X(spill_partitions, "exec.spill.num.partitions")                          \
  X(spill_max_recursion, "exec.spill.max.recursion")                        \
  X(task_max_attempts, "task.max.attempts")                                 \
  X(task_retry_backoff_us, "task.retry.backoff.us")                         \
  X(speculation_enabled, "speculation.enabled")                             \
  X(speculation_slowdown_factor, "speculation.slowdown.factor")             \
  X(cache_poison_threshold, "cache.poison.threshold")                       \
  X(query_timeout_ms, "query.timeout.ms")                                   \
  X(cbo_enabled, "optimizer.cbo.enabled")                                   \
  X(shared_work_enabled, "optimizer.shared.work.enabled")                   \
  X(semijoin_reduction_enabled, "optimizer.semijoin.reduction.enabled")     \
  X(dynamic_partition_pruning_enabled,                                      \
    "optimizer.dynamic.partition.pruning.enabled")                          \
  X(materialized_view_rewriting_enabled, "optimizer.mv.rewriting.enabled")  \
  X(result_cache_enabled, "cache.result.enabled")                           \
  X(reexecution_strategy, "query.reexecution.strategy")                     \
  X(join_reorder_max_relations, "optimizer.join.reorder.max.relations")     \
  X(legacy_sql_only, "sql.legacy.v12.only")                                 \
  X(llap_cache_capacity_bytes, "llap.cache.capacity.bytes")                 \
  X(llap_lrfu_lambda, "llap.cache.lrfu.lambda")                             \
  X(llap_io_threads, "llap.io.threads")                                     \
  X(compaction_delta_threshold, "compaction.delta.threshold")               \
  X(compaction_ratio_threshold, "compaction.ratio.threshold")               \
  X(wlm_queue_timeout_ms, "wlm.queue.timeout.ms")                           \
  X(plan_cache_enabled, "server.plan.cache.enabled")                        \
  X(plan_cache_capacity, "server.plan.cache.capacity")

/// THE config layering rule, defined in exactly one place: a session's
/// effective configuration starts from the server's *current* defaults and
/// applies, per field, only the knobs the session itself changed since it
/// was opened (`session` differs from `open_snapshot`, the server defaults
/// captured at open time). So a server-level default change made after a
/// session opened is visible to that session — unless the session overrode
/// the same knob, in which case the session override wins.
inline Config LayerConfig(const Config& server_now, const Config& open_snapshot,
                          const Config& session) {
  Config effective = server_now;
#define HIVE_CONFIG_LAYER_FIELD(f, pub) \
  if (!(session.f == open_snapshot.f)) effective.f = session.f;
  HIVE_CONFIG_FIELDS(HIVE_CONFIG_LAYER_FIELD)
#undef HIVE_CONFIG_LAYER_FIELD
  return effective;
}

}  // namespace hive

#endif  // HIVE_COMMON_CONFIG_H_
