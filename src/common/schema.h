#ifndef HIVE_COMMON_SCHEMA_H_
#define HIVE_COMMON_SCHEMA_H_

#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/types.h"

namespace hive {

/// A named, typed column.
struct Field {
  std::string name;
  DataType type;

  bool operator==(const Field& o) const { return name == o.name && type == o.type; }
};

/// Ordered list of fields. Column name lookup is case-insensitive, matching
/// HiveQL identifier semantics.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Field> fields) : fields_(std::move(fields)) {}

  const std::vector<Field>& fields() const { return fields_; }
  size_t num_fields() const { return fields_.size(); }
  const Field& field(size_t i) const { return fields_[i]; }

  void AddField(std::string name, DataType type) {
    fields_.push_back({std::move(name), type});
  }

  /// Case-insensitive index lookup; nullopt when absent.
  std::optional<size_t> IndexOf(const std::string& name) const;

  bool operator==(const Schema& o) const { return fields_ == o.fields_; }

  /// "(a BIGINT, b STRING)" rendering for EXPLAIN and error messages.
  std::string ToString() const;

  void Serialize(std::string* out) const;
  static Result<Schema> Deserialize(const std::string& data, size_t* offset);

 private:
  std::vector<Field> fields_;
};

/// Lower-cases ASCII; identifier normalization helper.
std::string ToLower(const std::string& s);

}  // namespace hive

#endif  // HIVE_COMMON_SCHEMA_H_
