#ifndef HIVE_COMMON_SERDE_H_
#define HIVE_COMMON_SERDE_H_

#include <cstdint>
#include <cstring>
#include <string>

namespace hive::serde {

/// Little-endian fixed-width and length-prefixed primitives used by the COF
/// file format, Bloom/HLL sketches and metastore persistence. All Get*
/// helpers advance *offset and return false on truncation.

inline void PutU32(std::string* out, uint32_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof v);
}
inline void PutU64(std::string* out, uint64_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof v);
}
inline void PutI64(std::string* out, int64_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof v);
}
inline void PutF64(std::string* out, double v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof v);
}
inline void PutString(std::string* out, const std::string& s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->append(s);
}

inline bool GetU32(const std::string& in, size_t* offset, uint32_t* v) {
  if (*offset + sizeof *v > in.size()) return false;
  std::memcpy(v, in.data() + *offset, sizeof *v);
  *offset += sizeof *v;
  return true;
}
inline bool GetU64(const std::string& in, size_t* offset, uint64_t* v) {
  if (*offset + sizeof *v > in.size()) return false;
  std::memcpy(v, in.data() + *offset, sizeof *v);
  *offset += sizeof *v;
  return true;
}
inline bool GetI64(const std::string& in, size_t* offset, int64_t* v) {
  if (*offset + sizeof *v > in.size()) return false;
  std::memcpy(v, in.data() + *offset, sizeof *v);
  *offset += sizeof *v;
  return true;
}
inline bool GetF64(const std::string& in, size_t* offset, double* v) {
  if (*offset + sizeof *v > in.size()) return false;
  std::memcpy(v, in.data() + *offset, sizeof *v);
  *offset += sizeof *v;
  return true;
}
inline bool GetString(const std::string& in, size_t* offset, std::string* s) {
  uint32_t n;
  if (!GetU32(in, offset, &n)) return false;
  if (*offset + n > in.size()) return false;
  s->assign(in.data() + *offset, n);
  *offset += n;
  return true;
}

}  // namespace hive::serde

#endif  // HIVE_COMMON_SERDE_H_
