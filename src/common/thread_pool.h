#ifndef HIVE_COMMON_THREAD_POOL_H_
#define HIVE_COMMON_THREAD_POOL_H_

#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "common/sync.h"

namespace hive {

/// Fixed-size worker pool. The exec DAG scheduler uses one pool to stand in
/// for YARN containers, and LLAP daemons embed one as their executor set.
class ThreadPool {
 public:
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task; tasks run FIFO across workers.
  void Submit(std::function<void()> task);

  /// Enqueues the task only while the pool has spare capacity (running +
  /// queued < num_threads); otherwise runs it inline on the calling thread.
  /// A task enqueued under that bound is guaranteed a pickup even when every
  /// later task blocks, which keeps nested fan-out (a pool task submitting
  /// sub-tasks and waiting on them) deadlock-free.
  void SubmitOrRun(std::function<void()> task);

  /// Blocks until the queue is empty and all workers are idle.
  void Wait();

  int num_threads() const { return static_cast<int>(workers_.size()); }

 private:
  void WorkerLoop();

  Mutex mu_{"thread_pool.mu"};
  CondVar work_cv_;
  CondVar idle_cv_;
  std::deque<std::function<void()>> queue_ HIVE_GUARDED_BY(mu_);
  std::vector<std::thread> workers_;
  int active_ HIVE_GUARDED_BY(mu_) = 0;
  bool shutdown_ HIVE_GUARDED_BY(mu_) = false;
};

}  // namespace hive

#endif  // HIVE_COMMON_THREAD_POOL_H_
