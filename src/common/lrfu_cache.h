#ifndef HIVE_COMMON_LRFU_CACHE_H_
#define HIVE_COMMON_LRFU_CACHE_H_

#include <cmath>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/sync.h"

namespace hive {

/// LRFU (Least Recently/Frequently Used) replacement policy, the default
/// eviction policy of the LLAP data cache (Section 5.1). Each entry carries
/// a "combined recency and frequency" (CRF) score:
///
///   crf(t) = sum over past references r of (1/2)^(lambda * (t - t_r))
///
/// lambda in (0, 1]: lambda -> 1 behaves like LRU, lambda -> 0 like LFU.
/// The paper notes the policy is "tuned for analytic workloads with frequent
/// full and partial scan operations": a moderate lambda keeps hot dimension
/// chunks resident while full scans cannot flush the whole cache.
///
/// The implementation stores the score in incremental form so that a touch
/// is O(1): crf_new = 1 + crf_old * (1/2)^(lambda * dt). Eviction picks the
/// minimum-score entry via a lazily maintained heap scan over a capped
/// candidate sample, which is accurate enough for cache workloads and keeps
/// the hot path cheap. Thread-safe.
template <typename Key, typename ValuePtr, typename KeyHash = std::hash<Key>>
class LrfuCache {
 public:
  /// `capacity_bytes` bounds the sum of entry weights; `lambda` tunes the
  /// recency/frequency tradeoff.
  explicit LrfuCache(uint64_t capacity_bytes, double lambda = 0.05)
      : capacity_(capacity_bytes), lambda_(lambda) {}

  /// Inserts or replaces. `weight` is the entry size in bytes. Evicts
  /// minimum-CRF entries until the new entry fits. Entries wider than the
  /// whole cache are rejected (returns false).
  bool Put(const Key& key, ValuePtr value, uint64_t weight) {
    MutexLock lock(&mu_);
    if (weight > capacity_) return false;
    auto it = map_.find(key);
    if (it != map_.end()) {
      used_ -= it->second.weight;
      it->second.value = std::move(value);
      it->second.weight = weight;
      Touch(&it->second);
      used_ += weight;
    } else {
      Entry e;
      e.value = std::move(value);
      e.weight = weight;
      e.crf = 1.0;
      e.last_tick = ++tick_;
      used_ += weight;
      map_.emplace(key, std::move(e));
    }
    EvictIfNeeded();
    return true;
  }

  /// Returns the value or a default-constructed ValuePtr on miss. A hit
  /// refreshes the entry's CRF score.
  ValuePtr Get(const Key& key) {
    MutexLock lock(&mu_);
    auto it = map_.find(key);
    if (it == map_.end()) {
      ++misses_;
      return ValuePtr{};
    }
    ++hits_;
    Touch(&it->second);
    return it->second.value;
  }

  bool Contains(const Key& key) const {
    MutexLock lock(&mu_);
    return map_.count(key) != 0;
  }

  void Erase(const Key& key) {
    MutexLock lock(&mu_);
    auto it = map_.find(key);
    if (it == map_.end()) return;
    used_ -= it->second.weight;
    map_.erase(it);
  }

  /// Removes every entry whose key matches `pred`. Used for file-level
  /// invalidation when a cached file's identity (FileId/length) changes.
  void EraseIf(const std::function<bool(const Key&)>& pred) {
    MutexLock lock(&mu_);
    for (auto it = map_.begin(); it != map_.end();) {
      if (pred(it->first)) {
        used_ -= it->second.weight;
        it = map_.erase(it);
      } else {
        ++it;
      }
    }
  }

  /// Visits every entry, exposing a mutable value reference. Test
  /// instrumentation (e.g. poisoning cached chunks in fault drills); not
  /// meant for hot paths — it pins the cache mutex for the whole walk.
  void ForEach(const std::function<void(const Key&, ValuePtr&)>& fn) {
    MutexLock lock(&mu_);
    for (auto& kv : map_) fn(kv.first, kv.second.value);
  }

  void Clear() {
    MutexLock lock(&mu_);
    map_.clear();
    used_ = 0;
  }

  uint64_t used_bytes() const {
    MutexLock lock(&mu_);
    return used_;
  }
  uint64_t capacity_bytes() const { return capacity_; }
  size_t size() const {
    MutexLock lock(&mu_);
    return map_.size();
  }
  uint64_t hits() const {
    MutexLock lock(&mu_);
    return hits_;
  }
  uint64_t misses() const {
    MutexLock lock(&mu_);
    return misses_;
  }
  uint64_t evictions() const {
    MutexLock lock(&mu_);
    return evictions_;
  }

 private:
  struct Entry {
    ValuePtr value{};
    uint64_t weight = 0;
    double crf = 0;
    uint64_t last_tick = 0;
  };

  void Touch(Entry* e) HIVE_REQUIRES(mu_) {
    uint64_t now = ++tick_;
    double dt = static_cast<double>(now - e->last_tick);
    e->crf = 1.0 + e->crf * std::exp2(-lambda_ * dt);
    e->last_tick = now;
  }

  double CurrentCrf(const Entry& e) const HIVE_REQUIRES(mu_) {
    double dt = static_cast<double>(tick_ - e.last_tick);
    return e.crf * std::exp2(-lambda_ * dt);
  }

  void EvictIfNeeded() HIVE_REQUIRES(mu_) {
    while (used_ > capacity_ && !map_.empty()) {
      auto victim = map_.begin();
      double victim_crf = CurrentCrf(victim->second);
      for (auto it = std::next(map_.begin()); it != map_.end(); ++it) {
        double crf = CurrentCrf(it->second);
        if (crf < victim_crf) {
          victim = it;
          victim_crf = crf;
        }
      }
      used_ -= victim->second.weight;
      map_.erase(victim);
      ++evictions_;
    }
  }

  mutable Mutex mu_{"lrfu.mu"};
  const uint64_t capacity_;
  const double lambda_;
  uint64_t used_ HIVE_GUARDED_BY(mu_) = 0;
  uint64_t tick_ HIVE_GUARDED_BY(mu_) = 0;
  uint64_t hits_ HIVE_GUARDED_BY(mu_) = 0;
  uint64_t misses_ HIVE_GUARDED_BY(mu_) = 0;
  uint64_t evictions_ HIVE_GUARDED_BY(mu_) = 0;
  std::unordered_map<Key, Entry, KeyHash> map_ HIVE_GUARDED_BY(mu_);
};

}  // namespace hive

#endif  // HIVE_COMMON_LRFU_CACHE_H_
