#ifndef HIVE_COMMON_SIM_CLOCK_H_
#define HIVE_COMMON_SIM_CLOCK_H_

#include <atomic>
#include <chrono>
#include <cstdint>

namespace hive {

/// Accounts *modeled* latency separately from wall-clock work.
///
/// The paper's cluster-level effects (YARN container allocation at query
/// start-up, network shuffle) cannot be measured on a single machine, so the
/// runtime charges them to a virtual clock instead of sleeping. Benchmarks
/// report wall time + charged virtual time; unit tests stay fast because
/// nothing actually sleeps.
class SimClock {
 public:
  /// Charges `us` microseconds of modeled latency along the query's critical
  /// path (callers are responsible for only charging serialized costs).
  void Charge(int64_t us) { virtual_us_.fetch_add(us, std::memory_order_relaxed); }

  int64_t virtual_us() const { return virtual_us_.load(std::memory_order_relaxed); }
  void Reset() { virtual_us_.store(0, std::memory_order_relaxed); }

  /// Wall-clock now, for the real-work component of measurements.
  static int64_t WallMicros() {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }

 private:
  std::atomic<int64_t> virtual_us_{0};
};

}  // namespace hive

#endif  // HIVE_COMMON_SIM_CLOCK_H_
