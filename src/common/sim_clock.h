#ifndef HIVE_COMMON_SIM_CLOCK_H_
#define HIVE_COMMON_SIM_CLOCK_H_

#include <atomic>
#include <chrono>
#include <cstdint>

namespace hive {

/// Accounts *modeled* latency separately from wall-clock work.
///
/// The paper's cluster-level effects (YARN container allocation at query
/// start-up, network shuffle) cannot be measured on a single machine, so the
/// runtime charges them to a virtual clock instead of sleeping. Benchmarks
/// report wall time + charged virtual time; unit tests stay fast because
/// nothing actually sleeps.
class SimClock {
 public:
  /// Charges `us` microseconds of modeled latency along the query's critical
  /// path (callers are responsible for only charging serialized costs).
  void Charge(int64_t us) {
    virtual_us_.fetch_add(us, std::memory_order_relaxed);
    if (task_sink_) *task_sink_ += us;
  }

  /// RAII scope that mirrors charges made on *this thread* into `sink`, on
  /// top of the global total. The morsel driver wraps each task attempt in
  /// one so modeled latency injected deep in the I/O stack (e.g. a
  /// fault-injected slow datanode) is attributable to that attempt — the
  /// signal its straggler detector compares against the median task.
  class TaskScope {
   public:
    explicit TaskScope(int64_t* sink) : prev_(task_sink_) { task_sink_ = sink; }
    ~TaskScope() { task_sink_ = prev_; }
    TaskScope(const TaskScope&) = delete;
    TaskScope& operator=(const TaskScope&) = delete;

   private:
    int64_t* prev_;
  };

  /// Mirrors `us` into the current thread's task sink WITHOUT advancing the
  /// global clock — for modeled latency that was already charged on another
  /// thread (an I/O-elevator prefetch) but must count against the task that
  /// consumes its result. Returns false (and does nothing) when no task
  /// scope is active, so callers can bank the charge for a later consumer.
  static bool Attribute(int64_t us) {
    if (!task_sink_) return false;
    *task_sink_ += us;
    return true;
  }
  /// True when the calling thread is inside a TaskScope.
  static bool HasTaskSink() { return task_sink_ != nullptr; }

  int64_t virtual_us() const { return virtual_us_.load(std::memory_order_relaxed); }
  void Reset() { virtual_us_.store(0, std::memory_order_relaxed); }

  /// Wall-clock now, for the real-work component of measurements.
  static int64_t WallMicros() {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }

 private:
  std::atomic<int64_t> virtual_us_{0};
  /// Per-thread mirror target installed by TaskScope (null = none active).
  inline static thread_local int64_t* task_sink_ = nullptr;
};

}  // namespace hive

#endif  // HIVE_COMMON_SIM_CLOCK_H_
