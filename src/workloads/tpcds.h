#ifndef HIVE_WORKLOADS_TPCDS_H_
#define HIVE_WORKLOADS_TPCDS_H_

#include <string>
#include <vector>

#include "common/types.h"

namespace hive {

/// TPC-DS-subset workload (Section 7.1): the star-schema core the paper's
/// Figure 7 queries revolve around — `store_sales` / `store_returns` fact
/// tables (sales partitioned by day, as in the paper's setup), plus
/// `date_dim`, `item`, `customer` and `store` dimensions with declared
/// PK/FK constraints. Data is generated deterministically; `scale` is a
/// row multiplier (scale 1 ~ 30k fact rows), preserving the paper's
/// selectivity structure rather than its absolute volume.
///
/// This module holds pure workload *data* — schemas, generated rows, query
/// text. Loading it into a server (DDL execution, ACID writes, stats) lives
/// in server/workload_loader.h; benchmarks and tests are defined entirely
/// by what is below, independent of any engine.
struct TpcdsOptions {
  int scale = 1;
  int days = 12;            // distinct sold_date partitions
  int items = 200;
  int customers = 500;
  int stores = 10;
};

/// The CREATE TABLE script for the TPC-DS subset.
std::string TpcdsDdl();

/// One table's worth of deterministically generated rows. Partitioned
/// tables carry partition-column values after the data columns.
struct GeneratedTable {
  std::string name;
  std::vector<std::vector<Value>> rows;
};

/// Generates all six tables, dimensions before facts (load order matters:
/// FK targets must exist first).
std::vector<GeneratedTable> GenerateTpcds(const TpcdsOptions& options);

/// One benchmark query.
struct BenchQuery {
  std::string name;
  std::string sql;
  /// True when the query uses SQL surface Hive 1.2 lacked (set operations,
  /// grouping sets, interval notation, order-by-unselected...); the legacy
  /// configuration must reject it, reproducing the "only 50 of 99 queries
  /// run" effect of Figure 7.
  bool requires_v3 = false;
};

/// The Figure 7 query set: a representative slice of TPC-DS shapes
/// (star joins + dimension filters, multi-way joins, correlated
/// subqueries, set operations, window functions, grouping sets, a
/// shared-work-friendly multi-subquery query modeled on q88).
std::vector<BenchQuery> TpcdsQueries();

/// The q88-style query (Section 7.1's shared-work example): many identical
/// fact-scan subexpressions that the shared work optimizer collapses.
std::string TpcdsQ88Style();

}  // namespace hive

#endif  // HIVE_WORKLOADS_TPCDS_H_
