#include "workloads/tpcds.h"

#include "common/rng.h"

namespace hive {

namespace {

const char* kCategories[] = {"Sports", "Books", "Home", "Electronics", "Music",
                             "Jewelry", "Shoes", "Men", "Women", "Children"};
const char* kStates[] = {"CA", "NY", "TX", "WA", "OR", "IL"};
const char* kCountries[] = {"US", "DE", "FR", "JP", "IN", "BR"};

}  // namespace

std::string TpcdsDdl() {
  return R"sql(
CREATE TABLE date_dim (
  d_date_sk INT, d_date DATE, d_year INT, d_qoy INT, d_moy INT, d_dom INT,
  PRIMARY KEY (d_date_sk));
CREATE TABLE item (
  i_item_sk INT, i_category STRING, i_brand STRING,
  i_current_price DECIMAL(7,2),
  PRIMARY KEY (i_item_sk));
CREATE TABLE customer (
  c_customer_sk INT, c_name STRING, c_birth_country STRING,
  PRIMARY KEY (c_customer_sk));
CREATE TABLE store (
  s_store_sk INT, s_state STRING, s_city STRING,
  PRIMARY KEY (s_store_sk));
CREATE TABLE store_sales (
  ss_item_sk INT, ss_customer_sk INT, ss_store_sk INT, ss_ticket_number INT,
  ss_quantity INT, ss_list_price DECIMAL(7,2), ss_sales_price DECIMAL(7,2),
  FOREIGN KEY (ss_item_sk) REFERENCES item (i_item_sk),
  FOREIGN KEY (ss_customer_sk) REFERENCES customer (c_customer_sk)
) PARTITIONED BY (ss_sold_date_sk INT);
CREATE TABLE store_returns (
  sr_item_sk INT, sr_ticket_number INT, sr_customer_sk INT,
  sr_return_amt DECIMAL(7,2), sr_returned_date_sk INT);
)sql";
}

std::vector<GeneratedTable> GenerateTpcds(const TpcdsOptions& options) {
  std::vector<GeneratedTable> tables;
  Rng rng(0xda7a);

  // date_dim: `days` consecutive days starting 2018-01-01 (sk = day index).
  std::vector<std::vector<Value>> dates;
  int64_t base_days = DaysFromCivil(2018, 1, 1);
  for (int d = 0; d < options.days; ++d) {
    int y;
    unsigned m, dom;
    CivilFromDays(base_days + d * 30, &y, &m, &dom);  // one per month-ish
    dates.push_back({Value::Bigint(d), Value::Date(base_days + d * 30),
                     Value::Bigint(y), Value::Bigint((m - 1) / 3 + 1),
                     Value::Bigint(m), Value::Bigint(dom)});
  }
  tables.push_back({"date_dim", std::move(dates)});

  std::vector<std::vector<Value>> items;
  for (int i = 0; i < options.items; ++i) {
    items.push_back({Value::Bigint(i), Value::String(kCategories[i % 10]),
                     Value::String("Brand#" + std::to_string(i % 25)),
                     Value::Decimal(rng.Range(100, 9999), 2)});
  }
  tables.push_back({"item", std::move(items)});

  std::vector<std::vector<Value>> customers;
  for (int c = 0; c < options.customers; ++c) {
    customers.push_back({Value::Bigint(c),
                         Value::String("Customer#" + std::to_string(c)),
                         Value::String(kCountries[c % 6])});
  }
  tables.push_back({"customer", std::move(customers)});

  std::vector<std::vector<Value>> stores;
  for (int s = 0; s < options.stores; ++s) {
    stores.push_back({Value::Bigint(s), Value::String(kStates[s % 6]),
                      Value::String("City#" + std::to_string(s))});
  }
  tables.push_back({"store", std::move(stores)});

  // Fact tables. Selectivity skews mirror TPC-DS: item/customer zipf-ish.
  std::vector<std::vector<Value>> sales;
  std::vector<std::vector<Value>> returns;
  int64_t ticket = 0;
  int rows_per_day = 2500 * options.scale;
  for (int day = 0; day < options.days; ++day) {
    for (int r = 0; r < rows_per_day; ++r) {
      int64_t item_sk = rng.Uniform(2) == 0 ? rng.Uniform(options.items / 10)
                                            : rng.Uniform(options.items);
      int64_t customer_sk = rng.Uniform(options.customers);
      int64_t store_sk = rng.Uniform(options.stores);
      int64_t list_price = rng.Range(100, 20000);
      int64_t sales_price = list_price - rng.Uniform(list_price / 2 + 1);
      ++ticket;
      sales.push_back({Value::Bigint(item_sk), Value::Bigint(customer_sk),
                       Value::Bigint(store_sk), Value::Bigint(ticket),
                       Value::Bigint(rng.Range(1, 20)),
                       Value::Decimal(list_price, 2), Value::Decimal(sales_price, 2),
                       Value::Bigint(day)});
      if (rng.Uniform(10) == 0) {  // ~10% of sales are returned
        returns.push_back({Value::Bigint(item_sk), Value::Bigint(ticket),
                           Value::Bigint(customer_sk),
                           Value::Decimal(sales_price / 2, 2), Value::Bigint(day)});
      }
    }
  }
  tables.push_back({"store_sales", std::move(sales)});
  tables.push_back({"store_returns", std::move(returns)});
  return tables;
}

std::string TpcdsQ88Style() {
  // Section 7.1's shared-work showcase: eight scalar subqueries over the
  // same fact table differing only in a residual predicate; the shared work
  // optimizer computes the common scan once.
  return R"sql(
SELECT
  (SELECT COUNT(*) FROM store_sales WHERE ss_quantity BETWEEN 1 AND 3) AS h1,
  (SELECT COUNT(*) FROM store_sales WHERE ss_quantity BETWEEN 4 AND 6) AS h2,
  (SELECT COUNT(*) FROM store_sales WHERE ss_quantity BETWEEN 7 AND 9) AS h3,
  (SELECT COUNT(*) FROM store_sales WHERE ss_quantity BETWEEN 10 AND 12) AS h4,
  (SELECT COUNT(*) FROM store_sales WHERE ss_quantity BETWEEN 13 AND 15) AS h5,
  (SELECT COUNT(*) FROM store_sales WHERE ss_quantity BETWEEN 16 AND 17) AS h6,
  (SELECT COUNT(*) FROM store_sales WHERE ss_quantity BETWEEN 18 AND 19) AS h7,
  (SELECT COUNT(*) FROM store_sales WHERE ss_quantity BETWEEN 19 AND 20) AS h8
)sql";
}

std::vector<BenchQuery> TpcdsQueries() {
  std::vector<BenchQuery> out;
  auto add = [&out](std::string name, std::string sql, bool v3 = false) {
    out.push_back({std::move(name), std::move(sql), v3});
  };

  add("q03",
      "SELECT d_year, i_brand, SUM(ss_sales_price) AS sum_agg "
      "FROM store_sales, date_dim, item "
      "WHERE ss_sold_date_sk = d_date_sk AND ss_item_sk = i_item_sk "
      "AND i_category = 'Sports' AND d_moy = 11 "
      "GROUP BY d_year, i_brand ORDER BY sum_agg DESC LIMIT 10");

  add("q07",
      "SELECT i_category, COUNT(*) AS cnt, SUM(ss_quantity) AS qty "
      "FROM store_sales, item WHERE ss_item_sk = i_item_sk "
      "GROUP BY i_category ORDER BY i_category");

  add("q15",
      "SELECT c_birth_country, SUM(ss_sales_price) AS total "
      "FROM store_sales, customer WHERE ss_customer_sk = c_customer_sk "
      "GROUP BY c_birth_country HAVING SUM(ss_sales_price) > 100 "
      "ORDER BY total DESC");

  add("q19",
      "SELECT i_brand, s_state, SUM(ss_sales_price) AS revenue "
      "FROM store_sales, item, store, date_dim "
      "WHERE ss_item_sk = i_item_sk AND ss_store_sk = s_store_sk "
      "AND ss_sold_date_sk = d_date_sk AND d_year = 2018 AND i_category = 'Books' "
      "GROUP BY i_brand, s_state ORDER BY revenue DESC LIMIT 20");

  add("q25_semijoin",
      "SELECT ss_customer_sk, SUM(ss_sales_price) AS sum_sales "
      "FROM store_sales, store_returns, item "
      "WHERE ss_item_sk = sr_item_sk AND ss_ticket_number = sr_ticket_number "
      "AND ss_item_sk = i_item_sk AND i_category = 'Sports' "
      "GROUP BY ss_customer_sk ORDER BY sum_sales DESC LIMIT 10");

  add("q32_scalar_subquery",
      "SELECT COUNT(*) FROM store_sales, item "
      "WHERE ss_item_sk = i_item_sk AND ss_sales_price > "
      "(SELECT AVG(ss_sales_price) FROM store_sales)",
      true);

  add("q42",
      "SELECT d_year, i_category, SUM(ss_sales_price) AS total "
      "FROM store_sales, date_dim, item "
      "WHERE ss_sold_date_sk = d_date_sk AND ss_item_sk = i_item_sk "
      "GROUP BY d_year, i_category ORDER BY total DESC, d_year LIMIT 15");

  add("q43_in_subquery",
      "SELECT s_state, COUNT(*) AS cnt FROM store_sales, store "
      "WHERE ss_store_sk = s_store_sk AND ss_item_sk IN "
      "(SELECT i_item_sk FROM item WHERE i_category IN ('Sports', 'Music')) "
      "GROUP BY s_state ORDER BY cnt DESC");

  add("q52",
      "SELECT d_year, i_brand, SUM(ss_list_price) AS total "
      "FROM store_sales, date_dim, item "
      "WHERE ss_sold_date_sk = d_date_sk AND ss_item_sk = i_item_sk AND d_qoy = 1 "
      "GROUP BY d_year, i_brand ORDER BY d_year, total DESC LIMIT 10");

  add("q68_exists",
      "SELECT COUNT(*) FROM customer c WHERE EXISTS "
      "(SELECT 1 FROM store_sales ss WHERE ss.ss_customer_sk = c.c_customer_sk "
      "AND ss.ss_quantity > 15)");

  // --- v3-only queries: constructs Hive 1.2 rejected (Section 7.1) ---

  add("q14_intersect",
      "SELECT i_item_sk FROM store_sales, item WHERE ss_item_sk = i_item_sk "
      "AND i_category = 'Sports' "
      "INTERSECT "
      "SELECT i_item_sk FROM store_returns, item WHERE sr_item_sk = i_item_sk",
      true);

  add("q38_except",
      "SELECT ss_customer_sk FROM store_sales "
      "EXCEPT SELECT sr_customer_sk FROM store_returns",
      true);

  add("q18_rollup",
      "SELECT i_category, s_state, SUM(ss_sales_price) AS total "
      "FROM store_sales, item, store "
      "WHERE ss_item_sk = i_item_sk AND ss_store_sk = s_store_sk "
      "GROUP BY ROLLUP (i_category, s_state) ORDER BY total DESC LIMIT 25",
      true);

  add("q67_grouping_sets",
      "SELECT i_category, i_brand, SUM(ss_sales_price) AS total "
      "FROM store_sales, item WHERE ss_item_sk = i_item_sk "
      "GROUP BY i_category, i_brand GROUPING SETS ((i_category, i_brand), "
      "(i_category), ()) ORDER BY total DESC LIMIT 20",
      true);

  add("q12_interval",
      "SELECT COUNT(*) FROM store_sales, date_dim "
      "WHERE ss_sold_date_sk = d_date_sk AND "
      "d_date BETWEEN DATE '2018-01-01' AND DATE '2018-01-01' + INTERVAL 90 DAY",
      true);

  add("q44_order_unselected",
      "SELECT i_brand FROM item ORDER BY i_current_price DESC LIMIT 5", true);

  add("q51_window",
      "SELECT i_category, total, RANK() OVER (ORDER BY total DESC) AS rnk "
      "FROM (SELECT i_category, SUM(ss_sales_price) AS total "
      "      FROM store_sales, item WHERE ss_item_sk = i_item_sk "
      "      GROUP BY i_category) t ORDER BY rnk");

  add("q58_correlated_scalar",
      "SELECT i_category, "
      "(SELECT SUM(ss_sales_price) FROM store_sales WHERE ss_item_sk = i_item_sk) "
      "AS item_total FROM item WHERE i_item_sk < 10 ORDER BY i_item_sk",
      true);

  add("q88_sharedwork", TpcdsQ88Style(), true);

  add("q79_multiway",
      "SELECT c_name, s_city, SUM(ss_sales_price) AS amt "
      "FROM store_sales, date_dim, store, customer "
      "WHERE ss_sold_date_sk = d_date_sk AND ss_store_sk = s_store_sk "
      "AND ss_customer_sk = c_customer_sk AND d_moy = 1 "
      "GROUP BY c_name, s_city ORDER BY amt DESC LIMIT 10");

  return out;
}

}  // namespace hive
