#ifndef HIVE_WORKLOADS_SSB_H_
#define HIVE_WORKLOADS_SSB_H_

#include <string>
#include <vector>

#include "common/types.h"
#include "workloads/tpcds.h"

namespace hive {

/// Star-Schema Benchmark (Section 7.3 / Figure 8): one `lineorder` fact
/// table and four dimensions (`dates`, `customer_d`, `supplier`, `part`),
/// with the 13 SSB queries adapted to this engine's dialect. Matches the
/// benchmark's structure: tight dimensional filters, star joins,
/// aggregation. Pure workload data, like tpcds.h — the loader lives in
/// server/workload_loader.h.
struct SsbOptions {
  int scale = 1;  // lineorder rows = 20000 * scale
};

/// The CREATE TABLE script for the SSB schema.
std::string SsbDdl();

/// INSERT statements populating the four dimension tables (small enough to
/// go through the SQL path).
std::vector<std::string> SsbDimensionInserts();

/// Deterministically generated `lineorder` rows (20000 * scale).
std::vector<std::vector<Value>> GenerateSsbLineorder(const SsbOptions& options);

/// The 13 SSB queries (q1.1 .. q4.3).
std::vector<BenchQuery> SsbQueries();

/// Definition of the denormalized materialized view the Figure 8
/// experiment builds (all dimensions joined into the fact table), plus the
/// column list shared by the native and droid-backed variants.
std::string SsbDenormalizedMvSql();

}  // namespace hive

#endif  // HIVE_WORKLOADS_SSB_H_
