#ifndef HIVE_WORKLOADS_SSB_H_
#define HIVE_WORKLOADS_SSB_H_

#include <string>
#include <vector>

#include "server/hive_server.h"
#include "workloads/tpcds.h"

namespace hive {

/// Star-Schema Benchmark (Section 7.3 / Figure 8): one `lineorder` fact
/// table and four dimensions (`dates`, `customer_d`, `supplier`, `part`),
/// with the 13 SSB queries adapted to this engine's dialect. Matches the
/// benchmark's structure: tight dimensional filters, star joins,
/// aggregation.
struct SsbOptions {
  int scale = 1;  // lineorder rows = 20000 * scale
};

/// Creates and loads the SSB schema.
Status LoadSsb(Connection& conn, const SsbOptions& options);

/// The 13 SSB queries (q1.1 .. q4.3).
std::vector<BenchQuery> SsbQueries();

/// Definition of the denormalized materialized view the Figure 8
/// experiment builds (all dimensions joined into the fact table), plus the
/// column list shared by the native and droid-backed variants.
std::string SsbDenormalizedMvSql();

/// Sets up the droid-backed variant: creates an external droid table and
/// ingests the denormalized rows (with lo_orderdate mapped to __time), then
/// registers a materialized view ON that table by swapping the MV storage.
/// Returns the droid table name.
Result<std::string> LoadSsbIntoDroid(Connection& conn);

}  // namespace hive

#endif  // HIVE_WORKLOADS_SSB_H_
