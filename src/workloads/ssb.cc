#include "workloads/ssb.h"

#include "common/rng.h"

namespace hive {

namespace {

const char* kRegions[] = {"AMERICA", "ASIA", "EUROPE", "AFRICA", "MIDDLE EAST"};
const char* kNations[] = {"UNITED STATES", "CHINA", "FRANCE", "BRAZIL", "INDIA",
                          "GERMANY", "JAPAN", "CANADA", "RUSSIA", "EGYPT"};

// Dimension cardinalities; lineorder FKs draw from the same ranges.
constexpr int kCustomers = 200, kSuppliers = 40, kParts = 120;

std::string ValuesInsert(const std::string& table,
                         const std::vector<std::string>& rows) {
  std::string sql = "INSERT INTO " + table + " VALUES ";
  for (size_t i = 0; i < rows.size(); ++i) sql += (i ? ", " : "") + rows[i];
  return sql;
}

}  // namespace

std::string SsbDdl() {
  return R"sql(
CREATE TABLE dates (
  d_datekey INT, d_year INT, d_yearmonthnum INT, d_weeknuminyear INT,
  PRIMARY KEY (d_datekey));
CREATE TABLE customer_d (
  c_custkey INT, c_city STRING, c_nation STRING, c_region STRING,
  PRIMARY KEY (c_custkey));
CREATE TABLE supplier (
  s_suppkey INT, s_city STRING, s_nation STRING, s_region STRING,
  PRIMARY KEY (s_suppkey));
CREATE TABLE part (
  p_partkey INT, p_mfgr STRING, p_category STRING, p_brand1 STRING,
  PRIMARY KEY (p_partkey));
CREATE TABLE lineorder (
  lo_orderkey INT, lo_custkey INT, lo_partkey INT, lo_suppkey INT,
  lo_orderdate INT, lo_quantity INT, lo_extendedprice INT,
  lo_discount INT, lo_revenue INT, lo_supplycost INT,
  FOREIGN KEY (lo_orderdate) REFERENCES dates (d_datekey));
)sql";
}

std::vector<std::string> SsbDimensionInserts() {
  std::vector<std::string> inserts;

  // dates: 7 years x 12 months, datekey = yyyymm.
  std::vector<std::string> rows;
  for (int year = 1992; year <= 1998; ++year)
    for (int month = 1; month <= 12; ++month) {
      int key = year * 100 + month;
      rows.push_back("(" + std::to_string(key) + ", " + std::to_string(year) +
                     ", " + std::to_string(key) + ", " +
                     std::to_string((month - 1) * 4 + 1) + ")");
    }
  inserts.push_back(ValuesInsert("dates", rows));

  rows.clear();
  for (int c = 0; c < kCustomers; ++c)
    rows.push_back("(" + std::to_string(c) + ", 'City" + std::to_string(c % 25) +
                   "', '" + kNations[c % 10] + "', '" + kRegions[c % 5] + "')");
  inserts.push_back(ValuesInsert("customer_d", rows));

  rows.clear();
  for (int s = 0; s < kSuppliers; ++s)
    rows.push_back("(" + std::to_string(s) + ", 'City" + std::to_string(s % 25) +
                   "', '" + kNations[s % 10] + "', '" + kRegions[s % 5] + "')");
  inserts.push_back(ValuesInsert("supplier", rows));

  rows.clear();
  for (int p = 0; p < kParts; ++p)
    rows.push_back("(" + std::to_string(p) + ", 'MFGR#" + std::to_string(p % 5 + 1) +
                   "', 'MFGR#" + std::to_string(p % 5 + 1) + std::to_string(p % 5 + 1) +
                   "', 'MFGR#" + std::to_string(p % 5 + 1) + std::to_string(p % 5 + 1) +
                   std::to_string(p % 40 + 10) + "')");
  inserts.push_back(ValuesInsert("part", rows));

  return inserts;
}

std::vector<std::vector<Value>> GenerateSsbLineorder(const SsbOptions& options) {
  Rng rng(0x55b);
  int total = 20000 * options.scale;
  std::vector<std::vector<Value>> rows;
  rows.reserve(total);
  for (int i = 0; i < total; ++i) {
    int year = 1992 + static_cast<int>(rng.Uniform(7));
    int month = 1 + static_cast<int>(rng.Uniform(12));
    int64_t price = rng.Range(100, 10000);
    int64_t discount = rng.Range(0, 10);
    int64_t revenue = price * (100 - discount) / 100;
    rows.push_back({Value::Bigint(i), Value::Bigint(rng.Uniform(kCustomers)),
                    Value::Bigint(rng.Uniform(kParts)), Value::Bigint(rng.Uniform(kSuppliers)),
                    Value::Bigint(year * 100 + month), Value::Bigint(rng.Range(1, 50)),
                    Value::Bigint(price), Value::Bigint(discount),
                    Value::Bigint(revenue), Value::Bigint(price * 3 / 5)});
  }
  return rows;
}

std::string SsbDenormalizedMvSql() {
  // The Figure 8 experiment's denormalized view: every dimension joined
  // into the fact table, plus the derived measures the queries aggregate
  // (so both the native and the droid-backed variants can roll them up).
  return "SELECT d_year, d_yearmonthnum, d_weeknuminyear, "
         "c_city, c_nation, c_region, s_city, s_nation, s_region, "
         "p_mfgr, p_category, p_brand1, "
         "lo_quantity, lo_discount, lo_extendedprice, lo_revenue, lo_supplycost, "
         "lo_extendedprice * lo_discount AS lo_rev_disc, "
         "lo_revenue - lo_supplycost AS lo_profit "
         "FROM lineorder, dates, customer_d, supplier, part "
         "WHERE lo_orderdate = d_datekey AND lo_custkey = c_custkey "
         "AND lo_suppkey = s_suppkey AND lo_partkey = p_partkey";
}

std::vector<BenchQuery> SsbQueries() {
  std::vector<BenchQuery> out;
  auto add = [&out](std::string name, std::string sql) {
    out.push_back({std::move(name), std::move(sql), false});
  };
  const std::string join =
      "FROM lineorder, dates, customer_d, supplier, part "
      "WHERE lo_orderdate = d_datekey AND lo_custkey = c_custkey "
      "AND lo_suppkey = s_suppkey AND lo_partkey = p_partkey AND ";

  // Flight 1: revenue with date + discount/quantity filters.
  add("q1.1", "SELECT SUM(lo_extendedprice * lo_discount) AS revenue " + join +
                  "d_year = 1993 AND lo_discount BETWEEN 1 AND 3 AND lo_quantity < 25");
  add("q1.2", "SELECT SUM(lo_extendedprice * lo_discount) AS revenue " + join +
                  "d_yearmonthnum = 199401 AND lo_discount BETWEEN 4 AND 6 "
                  "AND lo_quantity BETWEEN 26 AND 35");
  add("q1.3", "SELECT SUM(lo_extendedprice * lo_discount) AS revenue " + join +
                  "d_weeknuminyear = 5 AND d_year = 1994 "
                  "AND lo_discount BETWEEN 5 AND 7 AND lo_quantity BETWEEN 26 AND 35");

  // Flight 2: revenue by year and brand with part/supplier filters.
  add("q2.1", "SELECT d_year, p_brand1, SUM(lo_revenue) AS revenue " + join +
                  "p_category = 'MFGR#11' AND s_region = 'AMERICA' "
                  "GROUP BY d_year, p_brand1 ORDER BY d_year, p_brand1");
  add("q2.2", "SELECT d_year, p_brand1, SUM(lo_revenue) AS revenue " + join +
                  "p_brand1 = 'MFGR#2212' AND s_region = 'ASIA' "
                  "GROUP BY d_year, p_brand1 ORDER BY d_year, p_brand1");
  add("q2.3", "SELECT d_year, p_brand1, SUM(lo_revenue) AS revenue " + join +
                  "p_brand1 = 'MFGR#3314' AND s_region = 'EUROPE' "
                  "GROUP BY d_year, p_brand1 ORDER BY d_year, p_brand1");

  // Flight 3: revenue by customer/supplier geography over year ranges.
  add("q3.1", "SELECT c_nation, s_nation, d_year, SUM(lo_revenue) AS revenue " + join +
                  "c_region = 'ASIA' AND s_region = 'ASIA' "
                  "AND d_year >= 1992 AND d_year <= 1997 "
                  "GROUP BY c_nation, s_nation, d_year ORDER BY d_year, revenue DESC");
  add("q3.2", "SELECT c_city, s_city, d_year, SUM(lo_revenue) AS revenue " + join +
                  "c_nation = 'UNITED STATES' AND s_nation = 'UNITED STATES' "
                  "AND d_year >= 1992 AND d_year <= 1997 "
                  "GROUP BY c_city, s_city, d_year ORDER BY d_year, revenue DESC");
  add("q3.3", "SELECT c_city, s_city, d_year, SUM(lo_revenue) AS revenue " + join +
                  "c_city = 'City3' AND s_city = 'City3' "
                  "AND d_year >= 1992 AND d_year <= 1997 "
                  "GROUP BY c_city, s_city, d_year ORDER BY d_year, revenue DESC");
  add("q3.4", "SELECT c_city, s_city, d_year, SUM(lo_revenue) AS revenue " + join +
                  "c_city = 'City5' AND s_city = 'City5' AND d_yearmonthnum = 199712 "
                  "GROUP BY c_city, s_city, d_year ORDER BY d_year, revenue DESC");

  // Flight 4: profit drill-downs.
  add("q4.1", "SELECT d_year, c_nation, SUM(lo_revenue - lo_supplycost) AS profit " +
                  join +
                  "c_region = 'AMERICA' AND s_region = 'AMERICA' "
                  "GROUP BY d_year, c_nation ORDER BY d_year, c_nation");
  add("q4.2", "SELECT d_year, s_nation, p_category, "
              "SUM(lo_revenue - lo_supplycost) AS profit " + join +
                  "c_region = 'AMERICA' AND s_region = 'AMERICA' "
                  "AND d_year >= 1997 AND p_mfgr = 'MFGR#1' "
                  "GROUP BY d_year, s_nation, p_category "
                  "ORDER BY d_year, s_nation, p_category");
  add("q4.3", "SELECT d_year, s_city, p_brand1, "
              "SUM(lo_revenue - lo_supplycost) AS profit " + join +
                  "s_nation = 'UNITED STATES' AND d_year >= 1997 "
                  "AND p_category = 'MFGR#11' "
                  "GROUP BY d_year, s_city, p_brand1 ORDER BY d_year, s_city, p_brand1");
  return out;
}

}  // namespace hive
