#include "fs/fault_injection.h"

#include "common/hash.h"

namespace hive {

namespace {

/// Site identity: one logical read/rename target. Offset distinguishes the
/// chunk-granular ranged reads of the I/O elevator.
uint64_t SiteHash(uint64_t seed, uint64_t kind, const std::string& path,
                  uint64_t offset) {
  uint64_t h = Murmur64(path.data(), path.size(), seed ^ (kind * 0x9e3779b97f4a7c15ULL));
  h ^= offset + 0xbf58476d1ce4e5b9ULL + (h << 6) + (h >> 2);
  return h;
}

/// Maps a hash to a uniform double in [0, 1) — the coin for rate checks.
double ToUnit(uint64_t h) {
  return static_cast<double>(h >> 11) * (1.0 / 9007199254740992.0);
}

}  // namespace

bool FaultInjectingFileSystem::ShouldInject(size_t rule_index, FaultKind kind,
                                            const std::string& path, uint64_t offset,
                                            double rate, int max_per_site,
                                            bool permanent) {
  if (rate <= 0.0) return false;
  MutexLock lock(&mu_);
  uint64_t site = SiteHash(seed_ + rule_index * 0x2545f4914f6cdd1dULL,
                           static_cast<uint64_t>(kind), path, offset);
  // The coin depends only on (seed, kind, path, offset): the same site
  // always draws the same faults, in every run and on every thread.
  if (ToUnit(Murmur64(&site, sizeof site, seed_)) >= rate) return false;
  int& count = site_counts_[site];
  if (!permanent && count >= max_per_site) return false;  // transient: cleared
  ++count;
  return true;
}

Result<std::string> FaultInjectingFileSystem::FilterRead(const std::string& path,
                                                         uint64_t offset,
                                                         Result<std::string> result) {
  if (!result.ok()) return result;
  std::vector<FaultRule> rules;
  uint64_t seed;
  {
    MutexLock lock(&mu_);
    rules = rules_;
    seed = seed_;
  }
  for (size_t r = 0; r < rules.size(); ++r) {
    const FaultRule& rule = rules[r];
    if (rule.path_prefix.size() > path.size() ||
        path.compare(0, rule.path_prefix.size(), rule.path_prefix) != 0)
      continue;
    if (ShouldInject(r, FaultKind::kLatency, path, offset, rule.latency_rate,
                     rule.max_latency_injections_per_site, false)) {
      injected_latency_us_.fetch_add(rule.latency_us, std::memory_order_relaxed);
      if (clock_) clock_->Charge(rule.latency_us);
    }
    if (ShouldInject(r, FaultKind::kReadError, path, offset, rule.read_error_rate,
                     rule.max_read_errors_per_site, rule.permanent)) {
      injected_read_errors_.fetch_add(1, std::memory_order_relaxed);
      if (rule.permanent)
        return Status::IoError("injected permanent read error: " + path);
      return Status::TransientIoError("injected transient read error: " + path);
    }
    if (!result->empty() &&
        ShouldInject(r, FaultKind::kCorrupt, path, offset, rule.corrupt_rate,
                     rule.max_corruptions_per_site, false)) {
      injected_corruptions_.fetch_add(1, std::memory_order_relaxed);
      uint64_t site = SiteHash(seed, 0x5151, path, offset);
      (*result)[site % result->size()] ^= 0x40;  // one silent bit flip
    }
  }
  return result;
}

Result<std::string> FaultInjectingFileSystem::ReadFile(const std::string& path) {
  return FilterRead(path, 0, base_->ReadFile(path));
}

Result<std::string> FaultInjectingFileSystem::ReadRange(const std::string& path,
                                                        uint64_t offset, uint64_t len) {
  return FilterRead(path, offset, base_->ReadRange(path, offset, len));
}

Status FaultInjectingFileSystem::Rename(const std::string& from, const std::string& to) {
  std::vector<FaultRule> rules;
  {
    MutexLock lock(&mu_);
    rules = rules_;
  }
  for (size_t r = 0; r < rules.size(); ++r) {
    const FaultRule& rule = rules[r];
    if (rule.path_prefix.size() > from.size() ||
        from.compare(0, rule.path_prefix.size(), rule.path_prefix) != 0)
      continue;
    if (ShouldInject(r, FaultKind::kRename, from, 0, rule.rename_error_rate,
                     rule.max_rename_errors_per_site, false)) {
      injected_rename_errors_.fetch_add(1, std::memory_order_relaxed);
      if (rule.torn_rename) {
        // Torn: the rename took effect but the ack was lost. A correct
        // caller probes the destination before re-issuing.
        Status applied = base_->Rename(from, to);
        if (!applied.ok()) return applied;
        return Status::TransientIoError("injected torn rename (applied): " + from +
                                        " -> " + to);
      }
      return Status::TransientIoError("injected failed rename: " + from + " -> " + to);
    }
  }
  return base_->Rename(from, to);
}

}  // namespace hive
