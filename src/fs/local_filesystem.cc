#include "fs/local_filesystem.h"

#include <algorithm>
#include <filesystem>
#include <fstream>

#include "common/hash.h"

namespace stdfs = std::filesystem;

namespace hive {

LocalFileSystem::LocalFileSystem(std::string root_dir) : root_(std::move(root_dir)) {
  std::error_code ec;
  stdfs::create_directories(root_, ec);
}

std::string LocalFileSystem::Resolve(const std::string& path) const {
  std::string out = root_;
  for (const std::string& part : SplitPath(path)) out += "/" + part;
  return out;
}

uint64_t LocalFileSystem::IdFor(const std::string& resolved) {
  MutexLock lock(&mu_);
  auto it = ids_.find(resolved);
  if (it != ids_.end()) return it->second;
  // Synthesize a stable id from size and mtime for externally created files.
  std::error_code ec;
  auto size = stdfs::file_size(resolved, ec);
  auto mtime = stdfs::last_write_time(resolved, ec).time_since_epoch().count();
  uint64_t parts[2] = {static_cast<uint64_t>(size), static_cast<uint64_t>(mtime)};
  uint64_t id = Murmur64(parts, sizeof parts, 0xe7a6);
  ids_[resolved] = id;
  return id;
}

Status LocalFileSystem::WriteFile(const std::string& path, const std::string& data) {
  std::string resolved = Resolve(path);
  std::error_code ec;
  stdfs::create_directories(stdfs::path(resolved).parent_path(), ec);
  std::ofstream out(resolved, std::ios::binary | std::ios::trunc);
  // Open/write failures on a local disk are frequently momentary (EINTR,
  // AV scanners, NFS hiccups): tagged transient so the retry layer re-runs.
  if (!out) return Status::TransientIoError("cannot open for write: " + resolved);
  out.write(data.data(), static_cast<std::streamsize>(data.size()));
  if (!out) return Status::TransientIoError("short write: " + resolved);
  out.close();
  MutexLock lock(&mu_);
  ids_[resolved] = next_file_id_++;
  return Status::OK();
}

Result<std::string> LocalFileSystem::ReadFile(const std::string& path) {
  std::string resolved = Resolve(path);
  std::ifstream in(resolved, std::ios::binary);
  if (!in) return Status::NotFound("no such file: " + path);
  std::string data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  CountRead(data.size());
  return data;
}

Result<std::string> LocalFileSystem::ReadRange(const std::string& path,
                                               uint64_t offset, uint64_t len) {
  std::string resolved = Resolve(path);
  std::ifstream in(resolved, std::ios::binary);
  if (!in) return Status::NotFound("no such file: " + path);
  in.seekg(static_cast<std::streamoff>(offset));
  std::string data(len, '\0');
  in.read(data.data(), static_cast<std::streamsize>(len));
  data.resize(static_cast<size_t>(in.gcount()));
  CountRead(data.size());
  return data;
}

Result<FileInfo> LocalFileSystem::Stat(const std::string& path) {
  std::string resolved = Resolve(path);
  std::error_code ec;
  auto st = stdfs::status(resolved, ec);
  if (ec || st.type() == stdfs::file_type::not_found)
    return Status::NotFound("no such path: " + path);
  FileInfo info;
  info.path = path;
  info.is_dir = stdfs::is_directory(st);
  if (!info.is_dir) {
    info.size = stdfs::file_size(resolved, ec);
    info.file_id = IdFor(resolved);
  }
  return info;
}

Result<std::vector<FileInfo>> LocalFileSystem::ListDir(const std::string& path) {
  std::string resolved = Resolve(path);
  std::error_code ec;
  if (!stdfs::is_directory(resolved, ec))
    return Status::NotFound("no such dir: " + path);
  std::vector<FileInfo> out;
  for (const auto& entry : stdfs::directory_iterator(resolved, ec)) {
    FileInfo info;
    info.path = JoinPath(path, entry.path().filename().string());
    info.is_dir = entry.is_directory();
    if (!info.is_dir) {
      info.size = entry.file_size();
      info.file_id = IdFor(entry.path().string());
    }
    out.push_back(std::move(info));
  }
  std::sort(out.begin(), out.end(),
            [](const FileInfo& a, const FileInfo& b) { return a.path < b.path; });
  return out;
}

Status LocalFileSystem::MakeDirs(const std::string& path) {
  std::error_code ec;
  stdfs::create_directories(Resolve(path), ec);
  if (ec) return Status::IoError("mkdirs failed: " + path);
  return Status::OK();
}

Status LocalFileSystem::DeleteFile(const std::string& path) {
  std::error_code ec;
  if (!stdfs::remove(Resolve(path), ec) || ec)
    return Status::NotFound("no such file: " + path);
  return Status::OK();
}

Status LocalFileSystem::DeleteRecursive(const std::string& path) {
  std::error_code ec;
  stdfs::remove_all(Resolve(path), ec);
  if (ec) return Status::IoError("remove_all failed: " + path);
  return Status::OK();
}

Status LocalFileSystem::Rename(const std::string& from, const std::string& to) {
  std::error_code ec;
  stdfs::rename(Resolve(from), Resolve(to), ec);
  // Retryable: the source is intact when rename fails, so the ACID commit
  // path may simply re-issue it (rename is atomic, never torn, on POSIX).
  if (ec) return Status::TransientIoError("rename failed: " + from + " -> " + to);
  return Status::OK();
}

bool LocalFileSystem::Exists(const std::string& path) {
  std::error_code ec;
  return stdfs::exists(Resolve(path), ec);
}

}  // namespace hive
