#include "fs/mem_filesystem.h"

#include <algorithm>

namespace hive {

MemFileSystem::MemFileSystem() { dirs_.insert("/"); }

std::string MemFileSystem::Normalize(const std::string& path) {
  std::string out;
  for (const std::string& part : SplitPath(path)) out += "/" + part;
  return out.empty() ? "/" : out;
}

bool MemFileSystem::IsDirLocked(const std::string& path) const {
  return dirs_.count(path) != 0;
}

Status MemFileSystem::WriteFile(const std::string& raw, const std::string& data) {
  std::string path = Normalize(raw);
  MutexLock lock(&mu_);
  if (IsDirLocked(path)) return Status::InvalidArgument("is a directory: " + path);
  // Create parent directories implicitly (HDFS-create semantics).
  std::string parent = path;
  std::vector<std::string> to_add;
  while ((parent = ParentPath(parent)) != "/") {
    if (dirs_.count(parent)) break;
    to_add.push_back(parent);
  }
  for (const auto& d : to_add) dirs_.insert(d);
  files_[path] = File{data, next_file_id_++};
  return Status::OK();
}

Result<std::string> MemFileSystem::ReadFile(const std::string& raw) {
  std::string path = Normalize(raw);
  MutexLock lock(&mu_);
  auto it = files_.find(path);
  if (it == files_.end()) return Status::NotFound("no such file: " + path);
  CountRead(it->second.data.size());
  return it->second.data;
}

Result<std::string> MemFileSystem::ReadRange(const std::string& raw, uint64_t offset,
                                             uint64_t len) {
  std::string path = Normalize(raw);
  MutexLock lock(&mu_);
  auto it = files_.find(path);
  if (it == files_.end()) return Status::NotFound("no such file: " + path);
  const std::string& data = it->second.data;
  if (offset >= data.size()) return std::string();
  uint64_t n = std::min<uint64_t>(len, data.size() - offset);
  CountRead(n);
  return data.substr(offset, n);
}

Result<FileInfo> MemFileSystem::Stat(const std::string& raw) {
  std::string path = Normalize(raw);
  MutexLock lock(&mu_);
  auto it = files_.find(path);
  if (it != files_.end())
    return FileInfo{path, it->second.data.size(), it->second.file_id, false};
  if (IsDirLocked(path)) return FileInfo{path, 0, 0, true};
  return Status::NotFound("no such path: " + path);
}

Result<std::vector<FileInfo>> MemFileSystem::ListDir(const std::string& raw) {
  std::string path = Normalize(raw);
  MutexLock lock(&mu_);
  if (!IsDirLocked(path)) return Status::NotFound("no such dir: " + path);
  std::string prefix = path == "/" ? "/" : path + "/";
  std::vector<FileInfo> out;
  for (auto it = files_.lower_bound(prefix); it != files_.end(); ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    if (it->first.find('/', prefix.size()) != std::string::npos) continue;
    out.push_back({it->first, it->second.data.size(), it->second.file_id, false});
  }
  for (auto it = dirs_.lower_bound(prefix); it != dirs_.end(); ++it) {
    if (it->compare(0, prefix.size(), prefix) != 0) break;
    if (it->find('/', prefix.size()) != std::string::npos) continue;
    out.push_back({*it, 0, 0, true});
  }
  std::sort(out.begin(), out.end(),
            [](const FileInfo& a, const FileInfo& b) { return a.path < b.path; });
  return out;
}

Status MemFileSystem::MakeDirs(const std::string& raw) {
  std::string path = Normalize(raw);
  MutexLock lock(&mu_);
  if (files_.count(path)) return Status::AlreadyExists("file exists: " + path);
  std::string cur = "/";
  for (const std::string& part : SplitPath(path)) {
    cur = JoinPath(cur, part);
    dirs_.insert(cur);
  }
  return Status::OK();
}

Status MemFileSystem::DeleteFile(const std::string& raw) {
  std::string path = Normalize(raw);
  MutexLock lock(&mu_);
  if (files_.erase(path) == 0) return Status::NotFound("no such file: " + path);
  return Status::OK();
}

Status MemFileSystem::DeleteRecursive(const std::string& raw) {
  std::string path = Normalize(raw);
  MutexLock lock(&mu_);
  std::string prefix = path + "/";
  for (auto it = files_.begin(); it != files_.end();) {
    if (it->first == path || it->first.compare(0, prefix.size(), prefix) == 0)
      it = files_.erase(it);
    else
      ++it;
  }
  for (auto it = dirs_.begin(); it != dirs_.end();) {
    if (*it == path || it->compare(0, prefix.size(), prefix) == 0)
      it = dirs_.erase(it);
    else
      ++it;
  }
  return Status::OK();
}

Status MemFileSystem::Rename(const std::string& raw_from, const std::string& raw_to) {
  std::string from = Normalize(raw_from), to = Normalize(raw_to);
  MutexLock lock(&mu_);
  if (from == to) return files_.count(from) || IsDirLocked(from)
                             ? Status::OK()
                             : Status::NotFound("no such path: " + from);
  auto fit = files_.find(from);
  if (fit != files_.end()) {
    // POSIX rename semantics (what LocalFileSystem inherits from
    // std::filesystem::rename): a file atomically replaces an existing
    // destination *file*, but never a directory. ACID commit relies on this
    // replace being a single step — no window where the destination is gone.
    if (IsDirLocked(to))
      return Status::InvalidArgument("rename target is a directory: " + to);
    files_[to] = std::move(fit->second);
    files_.erase(fit);
    return Status::OK();
  }
  if (!IsDirLocked(from)) return Status::NotFound("no such path: " + from);
  if (files_.count(to))
    return Status::InvalidArgument("rename target is a file: " + to);
  if (IsDirLocked(to)) {
    // Directory over directory: POSIX allows it only when the destination is
    // empty (it is replaced); a non-empty destination fails with ENOTEMPTY.
    // The old implementation silently *merged* the trees, which could make a
    // half-committed ACID directory look fully committed.
    std::string to_prefix = to + "/";
    bool empty = files_.lower_bound(to_prefix) == files_.end() ||
                 files_.lower_bound(to_prefix)->first.compare(
                     0, to_prefix.size(), to_prefix) != 0;
    auto dir_child = dirs_.lower_bound(to_prefix);
    if (dir_child != dirs_.end() &&
        dir_child->compare(0, to_prefix.size(), to_prefix) == 0)
      empty = false;
    if (!empty)
      return Status::InvalidArgument("rename target not empty: " + to);
  }
  std::string prefix = from + "/";
  std::map<std::string, File> moved;
  for (auto it = files_.begin(); it != files_.end();) {
    if (it->first.compare(0, prefix.size(), prefix) == 0) {
      moved[to + "/" + it->first.substr(prefix.size())] = std::move(it->second);
      it = files_.erase(it);
    } else {
      ++it;
    }
  }
  for (auto& kv : moved) files_[kv.first] = std::move(kv.second);
  std::set<std::string> new_dirs;
  for (auto it = dirs_.begin(); it != dirs_.end();) {
    if (*it == from) {
      new_dirs.insert(to);
      it = dirs_.erase(it);
    } else if (it->compare(0, prefix.size(), prefix) == 0) {
      new_dirs.insert(to + "/" + it->substr(prefix.size()));
      it = dirs_.erase(it);
    } else {
      ++it;
    }
  }
  dirs_.insert(new_dirs.begin(), new_dirs.end());
  return Status::OK();
}

bool MemFileSystem::Exists(const std::string& raw) {
  std::string path = Normalize(raw);
  MutexLock lock(&mu_);
  return files_.count(path) != 0 || IsDirLocked(path);
}

}  // namespace hive
