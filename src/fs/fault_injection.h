#ifndef HIVE_FS_FAULT_INJECTION_H_
#define HIVE_FS_FAULT_INJECTION_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/sim_clock.h"
#include "common/sync.h"
#include "fs/filesystem.h"

namespace hive {

/// One fault rule of a deterministic fault schedule, scoped to a path
/// prefix (empty prefix = every path). Rules model the cluster failures the
/// paper's runtime is built to survive: flaky DFS reads that Tez re-runs as
/// new task attempts, slow datanodes that trigger speculation, corrupted
/// bytes that checksums catch, and lost rename acks during ACID commits.
///
/// Every decision is a pure function of (seed, operation, path, offset,
/// attempt#), NOT of wall-clock time or thread interleaving, so a seeded
/// schedule replays identically across runs and worker counts — the
/// deterministic-simulation-testing idiom. "Transient" faults clear after
/// `max_*_per_site` injections at one site (path+offset), so a retry of the
/// same read eventually succeeds; `permanent` faults never clear.
struct FaultRule {
  std::string path_prefix;

  /// Fraction of read sites (ReadFile / ReadRange at one offset) that fail
  /// with a transient I/O error.
  double read_error_rate = 0.0;
  int max_read_errors_per_site = 1;
  /// When set, injected read errors never clear (fail-fast path).
  bool permanent = false;

  /// Fraction of read sites whose returned bytes get one deterministic bit
  /// flip (silent corruption; detected by COF chunk checksums downstream).
  double corrupt_rate = 0.0;
  int max_corruptions_per_site = 1;

  /// Fraction of read sites that are charged `latency_us` of virtual time
  /// (straggler modeling; drives speculative execution).
  double latency_rate = 0.0;
  int64_t latency_us = 0;
  int max_latency_injections_per_site = 1;

  /// Fraction of renames that fail. torn_rename=false: nothing happened
  /// (source intact, safe to re-issue). torn_rename=true: the rename WAS
  /// applied but the ack was lost — the caller sees an error while the
  /// destination exists, and must probe before retrying.
  double rename_error_rate = 0.0;
  bool torn_rename = false;
  int max_rename_errors_per_site = 1;
};

/// Decorator over any FileSystem that injects a seeded, deterministic fault
/// schedule. Thread-safe; the wrapped file system must outlive it. All
/// non-faulted operations delegate unchanged, so the decorator can wrap the
/// warehouse FS of a running HiveServer2 in tests.
class FaultInjectingFileSystem : public FileSystem {
 public:
  /// `clock` (optional) receives injected latency as virtual time.
  FaultInjectingFileSystem(FileSystem* base, uint64_t seed,
                           SimClock* clock = nullptr)
      : base_(base), seed_(seed), clock_(clock) {}

  void AddRule(FaultRule rule) {
    MutexLock lock(&mu_);
    rules_.push_back(std::move(rule));
  }
  void ClearRules() {
    MutexLock lock(&mu_);
    rules_.clear();
  }
  /// Forgets per-site injection history (a fresh schedule replay).
  void ResetSchedule() {
    MutexLock lock(&mu_);
    site_counts_.clear();
  }
  /// Re-seeds the schedule and forgets injection history, so one warehouse
  /// can sweep a whole seed matrix. Call only while no query is running.
  void Reseed(uint64_t seed) {
    MutexLock lock(&mu_);
    seed_ = seed;
    site_counts_.clear();
  }
  /// Late-binds the virtual clock (the server owning the clock is usually
  /// constructed *after* the file system it reads from). Call only while no
  /// query is running.
  void set_clock(SimClock* clock) { clock_ = clock; }

  Status WriteFile(const std::string& path, const std::string& data) override {
    return base_->WriteFile(path, data);
  }
  Result<std::string> ReadFile(const std::string& path) override;
  Result<std::string> ReadRange(const std::string& path, uint64_t offset,
                                uint64_t len) override;
  Result<FileInfo> Stat(const std::string& path) override { return base_->Stat(path); }
  Result<std::vector<FileInfo>> ListDir(const std::string& path) override {
    return base_->ListDir(path);
  }
  Status MakeDirs(const std::string& path) override { return base_->MakeDirs(path); }
  Status DeleteFile(const std::string& path) override { return base_->DeleteFile(path); }
  Status DeleteRecursive(const std::string& path) override {
    return base_->DeleteRecursive(path);
  }
  Status Rename(const std::string& from, const std::string& to) override;
  bool Exists(const std::string& path) override { return base_->Exists(path); }

  // --- fault observability ---
  uint64_t injected_read_errors() const { return injected_read_errors_.load(); }
  uint64_t injected_corruptions() const { return injected_corruptions_.load(); }
  uint64_t injected_rename_errors() const { return injected_rename_errors_.load(); }
  int64_t injected_latency_us() const { return injected_latency_us_.load(); }

 private:
  enum class FaultKind : uint64_t { kReadError = 1, kCorrupt = 2, kLatency = 3, kRename = 4 };

  /// Pure decision: does rule `rule_index` fire at this (kind, path, offset)
  /// site, and is this injection still within the site's budget? Counts the
  /// injection when it fires.
  bool ShouldInject(size_t rule_index, FaultKind kind, const std::string& path,
                    uint64_t offset, double rate, int max_per_site, bool permanent);

  /// Applies read-path faults to the result of a base read.
  Result<std::string> FilterRead(const std::string& path, uint64_t offset,
                                 Result<std::string> result);

  FileSystem* base_;
  uint64_t seed_;  // written only via Reseed() while quiescent
  SimClock* clock_;
  mutable Mutex mu_{"fs.faults.mu"};
  std::vector<FaultRule> rules_ HIVE_GUARDED_BY(mu_);
  /// Injections already delivered per (kind, path, offset) site.
  std::unordered_map<uint64_t, int> site_counts_ HIVE_GUARDED_BY(mu_);
  std::atomic<uint64_t> injected_read_errors_{0};
  std::atomic<uint64_t> injected_corruptions_{0};
  std::atomic<uint64_t> injected_rename_errors_{0};
  std::atomic<int64_t> injected_latency_us_{0};
};

}  // namespace hive

#endif  // HIVE_FS_FAULT_INJECTION_H_
