#ifndef HIVE_FS_FILESYSTEM_H_
#define HIVE_FS_FILESYSTEM_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"

namespace hive {

/// Metadata for a file or directory.
struct FileInfo {
  std::string path;
  uint64_t size = 0;
  /// Unique identity assigned at creation, the analogue of the HDFS file id
  /// / blob-store ETag the paper's LLAP cache uses for validity checks
  /// (Section 5.1): a path whose FileId changed is a different file.
  uint64_t file_id = 0;
  bool is_dir = false;
};

/// Hierarchical file system abstraction standing in for HDFS / cloud object
/// stores. Files are immutable once written (write-once semantics match the
/// ACID design: new data always lands in new delta files). Implementations
/// must be thread-safe.
class FileSystem {
 public:
  virtual ~FileSystem() = default;

  /// Creates (or replaces) a file with `data`; assigns a fresh FileId.
  virtual Status WriteFile(const std::string& path, const std::string& data) = 0;
  /// Reads the entire file.
  virtual Result<std::string> ReadFile(const std::string& path) = 0;
  /// Reads `len` bytes at `offset` (clamped to EOF). The LLAP I/O elevator
  /// uses ranged reads to fetch footers and individual stripes.
  virtual Result<std::string> ReadRange(const std::string& path, uint64_t offset,
                                        uint64_t len) = 0;
  virtual Result<FileInfo> Stat(const std::string& path) = 0;
  /// Non-recursive listing of direct children (files and directories).
  virtual Result<std::vector<FileInfo>> ListDir(const std::string& path) = 0;
  virtual Status MakeDirs(const std::string& path) = 0;
  virtual Status DeleteFile(const std::string& path) = 0;
  virtual Status DeleteRecursive(const std::string& path) = 0;
  virtual Status Rename(const std::string& from, const std::string& to) = 0;
  virtual bool Exists(const std::string& path) = 0;

  // --- I/O accounting (drives the cache-effectiveness benchmarks) ---
  uint64_t bytes_read() const { return bytes_read_.load(std::memory_order_relaxed); }
  uint64_t read_calls() const { return read_calls_.load(std::memory_order_relaxed); }
  void ResetIoStats() {
    bytes_read_ = 0;
    read_calls_ = 0;
  }

 protected:
  void CountRead(uint64_t bytes) {
    bytes_read_.fetch_add(bytes, std::memory_order_relaxed);
    read_calls_.fetch_add(1, std::memory_order_relaxed);
  }

 private:
  std::atomic<uint64_t> bytes_read_{0};
  std::atomic<uint64_t> read_calls_{0};
};

/// Splits "/a/b/c" into {"a","b","c"}; empty segments are dropped.
std::vector<std::string> SplitPath(const std::string& path);
/// Parent of "/a/b/c" is "/a/b"; parent of "/a" is "/".
std::string ParentPath(const std::string& path);
/// Joins with exactly one '/' between the parts.
std::string JoinPath(const std::string& a, const std::string& b);
/// Last path segment.
std::string BaseName(const std::string& path);

}  // namespace hive

#endif  // HIVE_FS_FILESYSTEM_H_
