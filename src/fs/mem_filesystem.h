#ifndef HIVE_FS_MEM_FILESYSTEM_H_
#define HIVE_FS_MEM_FILESYSTEM_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/sync.h"
#include "fs/filesystem.h"

namespace hive {

/// In-memory file system used by tests and benches. Paths are absolute,
/// '/'-separated. Directory entries are tracked explicitly so empty
/// directories (fresh partitions) list correctly.
class MemFileSystem : public FileSystem {
 public:
  MemFileSystem();

  Status WriteFile(const std::string& path, const std::string& data) override;
  Result<std::string> ReadFile(const std::string& path) override;
  Result<std::string> ReadRange(const std::string& path, uint64_t offset,
                                uint64_t len) override;
  Result<FileInfo> Stat(const std::string& path) override;
  Result<std::vector<FileInfo>> ListDir(const std::string& path) override;
  Status MakeDirs(const std::string& path) override;
  Status DeleteFile(const std::string& path) override;
  Status DeleteRecursive(const std::string& path) override;
  Status Rename(const std::string& from, const std::string& to) override;
  bool Exists(const std::string& path) override;

 private:
  struct File {
    std::string data;
    uint64_t file_id;
  };

  static std::string Normalize(const std::string& path);
  bool IsDirLocked(const std::string& path) const HIVE_REQUIRES(mu_);

  mutable Mutex mu_{"fs.mem.mu"};
  std::map<std::string, File> files_ HIVE_GUARDED_BY(mu_);
  std::set<std::string> dirs_ HIVE_GUARDED_BY(mu_);
  uint64_t next_file_id_ HIVE_GUARDED_BY(mu_) = 1;
};

}  // namespace hive

#endif  // HIVE_FS_MEM_FILESYSTEM_H_
