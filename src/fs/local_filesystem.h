#ifndef HIVE_FS_LOCAL_FILESYSTEM_H_
#define HIVE_FS_LOCAL_FILESYSTEM_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/sync.h"
#include "fs/filesystem.h"

namespace hive {

/// FileSystem backed by a directory on the local disk. All virtual paths are
/// rooted under `root_dir`, so "/warehouse/t/base_1/f" maps to
/// "<root_dir>/warehouse/t/base_1/f". FileIds are assigned at write time and
/// remembered per (path); files written by other processes get a synthetic
/// id derived from size+mtime (the ETag analogue).
class LocalFileSystem : public FileSystem {
 public:
  explicit LocalFileSystem(std::string root_dir);

  Status WriteFile(const std::string& path, const std::string& data) override;
  Result<std::string> ReadFile(const std::string& path) override;
  Result<std::string> ReadRange(const std::string& path, uint64_t offset,
                                uint64_t len) override;
  Result<FileInfo> Stat(const std::string& path) override;
  Result<std::vector<FileInfo>> ListDir(const std::string& path) override;
  Status MakeDirs(const std::string& path) override;
  Status DeleteFile(const std::string& path) override;
  Status DeleteRecursive(const std::string& path) override;
  Status Rename(const std::string& from, const std::string& to) override;
  bool Exists(const std::string& path) override;

 private:
  std::string Resolve(const std::string& path) const;
  uint64_t IdFor(const std::string& resolved);

  std::string root_;
  Mutex mu_{"fs.local.mu"};
  std::unordered_map<std::string, uint64_t> ids_ HIVE_GUARDED_BY(mu_);
  uint64_t next_file_id_ HIVE_GUARDED_BY(mu_) = 1;
};

}  // namespace hive

#endif  // HIVE_FS_LOCAL_FILESYSTEM_H_
