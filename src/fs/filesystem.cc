#include "fs/filesystem.h"

namespace hive {

std::vector<std::string> SplitPath(const std::string& path) {
  std::vector<std::string> parts;
  std::string cur;
  for (char c : path) {
    if (c == '/') {
      if (!cur.empty()) parts.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  if (!cur.empty()) parts.push_back(cur);
  return parts;
}

std::string ParentPath(const std::string& path) {
  auto parts = SplitPath(path);
  if (parts.size() <= 1) return "/";
  std::string out;
  for (size_t i = 0; i + 1 < parts.size(); ++i) out += "/" + parts[i];
  return out;
}

std::string JoinPath(const std::string& a, const std::string& b) {
  if (a.empty() || a == "/") return "/" + b;
  if (a.back() == '/') return a + b;
  return a + "/" + b;
}

std::string BaseName(const std::string& path) {
  auto parts = SplitPath(path);
  return parts.empty() ? "" : parts.back();
}

}  // namespace hive
