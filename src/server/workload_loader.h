#ifndef HIVE_SERVER_WORKLOAD_LOADER_H_
#define HIVE_SERVER_WORKLOAD_LOADER_H_

#include <string>

#include "server/hive_server.h"
#include "workloads/ssb.h"
#include "workloads/tpcds.h"

namespace hive {

/// Loads the workload definitions from workloads/ into a live server:
/// executes the DDL, writes the generated rows through the ACID path, and
/// merges table statistics. This is the server-layer half of the workloads;
/// workloads/ itself is pure data (schemas, rows, query text) and must not
/// depend on the engine.

/// Creates the TPC-DS-subset schema and loads generated data through the
/// ACID write path.
Status LoadTpcds(Connection& conn, const TpcdsOptions& options);

/// Creates and loads the SSB schema.
Status LoadSsb(Connection& conn, const SsbOptions& options);

/// Sets up the droid-backed variant: creates an external droid table and
/// ingests the denormalized rows (with lo_orderdate mapped to __time), then
/// registers a materialized view ON that table by swapping the MV storage.
/// Returns the droid table name.
Result<std::string> LoadSsbIntoDroid(Connection& conn);

}  // namespace hive

#endif  // HIVE_SERVER_WORKLOAD_LOADER_H_
