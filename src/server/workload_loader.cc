#include "server/workload_loader.h"

#include "sql/parser.h"

namespace hive {

namespace {

Status WriteTable(HiveServer2* server, const std::string& table,
                  const std::vector<std::vector<Value>>& rows) {
  HIVE_ASSIGN_OR_RETURN(TableDesc desc, server->catalog()->GetTable("default", table));
  int64_t txn = server->txns()->OpenTxn();
  HIVE_ASSIGN_OR_RETURN(int64_t write_id,
                        server->txns()->AllocateWriteId(txn, desc.FullName()));
  size_t data_width = desc.schema.num_fields();
  std::map<std::string, std::unique_ptr<AcidWriter>> writers;
  std::map<std::string, std::vector<Value>> new_partitions;
  for (const auto& row : rows) {
    std::string location = desc.location;
    if (desc.IsPartitioned()) {
      std::vector<Value> part(row.begin() + data_width, row.end());
      std::string dir = Catalog::PartitionDirName(desc.partition_cols, part);
      location = JoinPath(desc.location, dir);
      new_partitions.emplace(dir, part);
    }
    auto& writer = writers[location];
    if (!writer)
      writer = std::make_unique<AcidWriter>(server->filesystem(), location,
                                            desc.schema, write_id);
    writer->Insert({row.begin(), row.begin() + data_width});
  }
  for (const auto& [dir, values] : new_partitions) {
    HIVE_RETURN_IF_ERROR(server->catalog()->AddPartition("default", table, values));
    // Per-partition row counts power partition-pruning estimates.
    TableStatistics pstats;
    for (const auto& row : rows) {
      bool match = true;
      for (size_t p = 0; p < values.size(); ++p)
        if (Value::Compare(row[data_width + p], values[p]) != 0) match = false;
      if (match) ++pstats.row_count;
    }
    HIVE_RETURN_IF_ERROR(
        server->catalog()->MergeStats("default", table, pstats, values));
  }
  for (auto& [location, writer] : writers) HIVE_RETURN_IF_ERROR(writer->Commit());
  HIVE_RETURN_IF_ERROR(server->txns()->CommitTxn(txn));

  // Table-level statistics (additive).
  TableStatistics stats;
  stats.row_count = static_cast<int64_t>(rows.size());
  Schema full = desc.FullSchema();
  for (size_t c = 0; c < full.num_fields(); ++c) {
    ColumnStatistics col;
    for (const auto& row : rows) {
      ++col.num_values;
      if (row[c].is_null()) {
        ++col.num_nulls;
        continue;
      }
      if (col.min.is_null() || Value::Compare(row[c], col.min) < 0) col.min = row[c];
      if (col.max.is_null() || Value::Compare(row[c], col.max) > 0) col.max = row[c];
      col.ndv.Add(row[c]);
    }
    stats.columns[ToLower(full.field(c).name)] = std::move(col);
  }
  return server->catalog()->MergeStats("default", table, stats);
}

}  // namespace

Status LoadTpcds(Connection& conn, const TpcdsOptions& options) {
  HiveServer2* server = conn.server();
  HIVE_RETURN_IF_ERROR(conn.ExecuteScript(TpcdsDdl()).status());
  for (const GeneratedTable& table : GenerateTpcds(options))
    HIVE_RETURN_IF_ERROR(WriteTable(server, table.name, table.rows));
  return Status::OK();
}

Status LoadSsb(Connection& conn, const SsbOptions& options) {
  HiveServer2* server = conn.server();
  HIVE_RETURN_IF_ERROR(conn.ExecuteScript(SsbDdl()).status());
  for (const std::string& insert : SsbDimensionInserts())
    HIVE_RETURN_IF_ERROR(conn.Execute(insert).status());

  // lineorder: write through the fast path (large).
  std::vector<std::vector<Value>> rows = GenerateSsbLineorder(options);
  HIVE_ASSIGN_OR_RETURN(TableDesc desc,
                        server->catalog()->GetTable("default", "lineorder"));
  int64_t txn = server->txns()->OpenTxn();
  HIVE_ASSIGN_OR_RETURN(int64_t write_id,
                        server->txns()->AllocateWriteId(txn, desc.FullName()));
  AcidWriter writer(server->filesystem(), desc.location, desc.schema, write_id);
  TableStatistics stats;
  stats.row_count = static_cast<int64_t>(rows.size());
  for (const auto& row : rows) writer.Insert(row);
  HIVE_RETURN_IF_ERROR(writer.Commit());
  HIVE_RETURN_IF_ERROR(server->txns()->CommitTxn(txn));
  HIVE_RETURN_IF_ERROR(server->catalog()->MergeStats("default", "lineorder", stats));
  return Status::OK();
}

Result<std::string> LoadSsbIntoDroid(Connection& conn) {
  HiveServer2* server = conn.server();
  // Evaluate the denormalized view once and ingest it into droid, then
  // register the external table as a materialized view over the same
  // definition (the paper's "materializations can be stored in other
  // supported systems").
  const std::string table = "ssb_denorm_droid";
  HIVE_ASSIGN_OR_RETURN(
      QueryResult rows,
      conn.Execute(SsbDenormalizedMvSql()));

  std::string ddl = "CREATE EXTERNAL TABLE " + table + " (";
  for (size_t c = 0; c < rows.schema.num_fields(); ++c) {
    if (c) ddl += ", ";
    ddl += rows.schema.field(c).name + " " + rows.schema.field(c).type.ToString();
  }
  ddl += ") STORED BY 'droid' TBLPROPERTIES ('droid.datasource' = '" + table + "')";
  HIVE_RETURN_IF_ERROR(conn.Execute(ddl).status());

  // Ingest through the handler's output format.
  HIVE_ASSIGN_OR_RETURN(TableDesc desc, server->catalog()->GetTable("default", table));
  RowBatch batch(desc.schema);
  for (const auto& row : rows.rows)
    for (size_t c = 0; c < batch.num_columns(); ++c)
      batch.column(c)->AppendValue(c < row.size() ? row[c] : Value::Null());
  batch.set_num_rows(rows.rows.size());
  HIVE_RETURN_IF_ERROR(server->droid()->Ingest(table, batch));

  // Register as a materialized view with the current source snapshot.
  Config config = server->default_config();
  Binder binder(server->catalog(), &config, "default");
  HIVE_ASSIGN_OR_RETURN(StatementPtr parsed, Parser::Parse(SsbDenormalizedMvSql()));
  auto* select = dynamic_cast<SelectStatement*>(parsed.get());
  HIVE_RETURN_IF_ERROR(binder.BindSelect(select->select).status());
  desc.is_materialized_view = true;
  desc.view_sql = select->select.ToString();
  // Aliasing shared_ptr: shares ownership of the statement, points at the
  // embedded SelectStmt the optimizer's rewrite pass binds.
  desc.view_ast = std::shared_ptr<const SelectStmt>(parsed, &select->select);
  for (const std::string& source : binder.referenced_tables())
    desc.mv_source_snapshot[source] =
        server->txns()->TableWriteIdHighWatermark(source);
  HIVE_RETURN_IF_ERROR(server->catalog()->UpdateTable(desc));
  return table;
}

}  // namespace hive
