#ifndef HIVE_SERVER_RESULT_CACHE_H_
#define HIVE_SERVER_RESULT_CACHE_H_

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/schema.h"
#include "common/sync.h"
#include "common/types.h"

namespace hive {

/// Query result cache (Section 4.3). Keys are the canonicalized AST text
/// with table references fully qualified (so the same text in different
/// databases cannot collide); entries record the write-id high watermark of
/// every table that contributed, and a lookup only hits while none of those
/// tables has new or modified data — transactional consistency makes reuse
/// safe.
///
/// The pending-entry mode protects against a thundering herd: when several
/// identical queries miss at once, the first becomes the filler and the
/// rest wait for it to publish instead of recomputing.
class QueryResultCache {
 public:
  struct Entry {
    Schema schema;
    std::vector<std::vector<Value>> rows;
    /// table full name -> write-id high watermark at execution time.
    std::map<std::string, int64_t> snapshot;
  };

  /// Lookup outcome.
  enum class LookupState { kHit, kMissFill, kMissWaited };

  /// Looks up `key`. On a valid hit, fills `*entry` and returns kHit. On a
  /// miss, the caller becomes the filler (kMissFill) and MUST later call
  /// Publish or AbandonFill. If another filler is in flight, blocks until
  /// it publishes, then re-validates: a valid entry yields kMissWaited with
  /// `*entry` filled, otherwise the caller becomes the next filler.
  /// `current_hwm(table)` supplies the live write-id high watermark.
  LookupState Lookup(const std::string& key,
                     const std::function<int64_t(const std::string&)>& current_hwm,
                     Entry* entry);

  /// Publishes the filler's result.
  void Publish(const std::string& key, Entry entry);

  /// The filler failed; wakes waiters so one of them can take over.
  void AbandonFill(const std::string& key);

  /// Drops entries referencing `table` (explicit invalidation hook).
  void InvalidateTable(const std::string& table);

  int64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  int64_t misses() const { return misses_.load(std::memory_order_relaxed); }
  size_t size() const;

 private:
  struct Pending {
    bool filling = false;  // guarded by QueryResultCache::mu_
    CondVar cv;            // waits on QueryResultCache::mu_
  };

  bool ValidLocked(const Entry& entry,
                   const std::function<int64_t(const std::string&)>& current_hwm) const
      HIVE_REQUIRES(mu_);

  mutable Mutex mu_{"result_cache.mu"};
  std::map<std::string, Entry> entries_ HIVE_GUARDED_BY(mu_);
  std::map<std::string, std::shared_ptr<Pending>> pending_ HIVE_GUARDED_BY(mu_);
  /// Atomics, not guarded fields: the accessors above read them without
  /// taking mu_ (metrics callbacks poll while queries run).
  std::atomic<int64_t> hits_{0};
  std::atomic<int64_t> misses_{0};
};

}  // namespace hive

#endif  // HIVE_SERVER_RESULT_CACHE_H_
