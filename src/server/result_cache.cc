#include "server/result_cache.h"

namespace hive {

bool QueryResultCache::ValidLocked(
    const Entry& entry,
    const std::function<int64_t(const std::string&)>& current_hwm) const {
  for (const auto& [table, hwm] : entry.snapshot)
    if (current_hwm(table) != hwm) return false;
  return true;
}

QueryResultCache::LookupState QueryResultCache::Lookup(
    const std::string& key,
    const std::function<int64_t(const std::string&)>& current_hwm, Entry* entry) {
  MutexLock lock(&mu_);
  for (;;) {
    auto it = entries_.find(key);
    if (it != entries_.end()) {
      if (ValidLocked(it->second, current_hwm)) {
        ++hits_;
        *entry = it->second;
        return LookupState::kHit;
      }
      // Stale: expunge.
      entries_.erase(it);
    }
    auto pending = pending_.find(key);
    if (pending == pending_.end() || !pending->second->filling) {
      auto& p = pending_[key];
      if (!p) p = std::make_shared<Pending>();
      p->filling = true;
      ++misses_;
      return LookupState::kMissFill;
    }
    // Another query is filling this entry: wait for it (pending mode).
    std::shared_ptr<Pending> p = pending->second;
    while (p->filling) p->cv.Wait(lock);
    auto filled = entries_.find(key);
    if (filled != entries_.end() && ValidLocked(filled->second, current_hwm)) {
      ++hits_;
      *entry = filled->second;
      return LookupState::kMissWaited;
    }
    // Filler failed or result already stale: loop and become the filler.
  }
}

void QueryResultCache::Publish(const std::string& key, Entry entry) {
  MutexLock lock(&mu_);
  entries_[key] = std::move(entry);
  auto pending = pending_.find(key);
  if (pending != pending_.end()) {
    pending->second->filling = false;
    pending->second->cv.NotifyAll();
    pending_.erase(pending);
  }
}

void QueryResultCache::AbandonFill(const std::string& key) {
  MutexLock lock(&mu_);
  auto pending = pending_.find(key);
  if (pending != pending_.end()) {
    pending->second->filling = false;
    pending->second->cv.NotifyAll();
    pending_.erase(pending);
  }
}

void QueryResultCache::InvalidateTable(const std::string& table) {
  MutexLock lock(&mu_);
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->second.snapshot.count(table)) {
      it = entries_.erase(it);
    } else {
      ++it;
    }
  }
}

size_t QueryResultCache::size() const {
  MutexLock lock(&mu_);
  return entries_.size();
}

}  // namespace hive
