#ifndef HIVE_SERVER_CONNECTION_MANAGER_H_
#define HIVE_SERVER_CONNECTION_MANAGER_H_

#include <atomic>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/cancel.h"
#include "common/config.h"
#include "common/status.h"
#include "common/sync.h"
#include "server/prepared_statement.h"
#include "server/query_result.h"

namespace hive {

class Catalog;
class ConnectionManager;
class FileSystem;
class HiveServer2;
class QueryResultCache;
class WorkloadManager;
namespace obs {
class MetricsRegistry;
class Counter;
}  // namespace obs

/// Hidden database where session temp tables physically live; each table is
/// name-mangled with its owning session id, so two sessions' `CREATE
/// TEMPORARY TABLE t` never collide and SHOW TABLES never lists them.
inline constexpr char kTempDatabase[] = "__temp";

/// Per-connection server-side state: identity, current database, config
/// overrides, temporary tables, prepared statements, and the lifecycle
/// bookkeeping (in-flight statement count, cancellation hooks) that lets
/// ConnectionManager tear a session down deterministically.
///
/// Sessions are created only by ConnectionManager (the constructor is
/// private and hivelint's session-construct rule backs that up); everything
/// else holds a Connection handle or a Session pointer borrowed from one.
class Session {
 public:
  uint64_t id = 0;
  std::string application;
  std::string database = "default";
  /// Session-level settings, seeded from the server default at open time.
  /// Reads should go through Config layering (LayerConfig in config.h):
  /// a field the session never touched tracks the *live* server default.
  Config config;
  /// Snapshot of the server default at open time; layering compares against
  /// this to tell a session override from an inherited default.
  Config open_defaults;

  /// Registers a statement start. Fails once the session is closed — this
  /// is where "execute after close" turns into a clean error.
  Status BeginStatement();
  void EndStatement();

  /// Registers a running statement's cancellation hooks so Close can abort
  /// it. If the session is already closing, the hooks fire immediately.
  /// Returns a token for UnregisterCancel.
  uint64_t RegisterCancel(std::shared_ptr<std::atomic<bool>> cancelled,
                          std::shared_ptr<KillReason> kill_reason);
  void UnregisterCancel(uint64_t token);

  bool closed() const;

  // --- temporary tables (logical name -> physical name in __temp) ---

  /// Physical name of a session temp table: "s<sid>_<name>".
  static std::string TempPhysicalName(uint64_t session_id,
                                      const std::string& name);

  /// When `*db` is empty and `*table` names a session temp table, rewrites
  /// them to the physical (__temp, s<sid>_<name>) location. Returns true
  /// when it rewrote.
  bool ResolveTempTable(std::string* db, std::string* table) const;
  Status AddTempTable(const std::string& name, const std::string& physical);
  /// Forgets `name`, returning its physical name through `*physical`.
  bool RemoveTempTable(const std::string& name, std::string* physical);
  std::map<std::string, std::string> TempTables() const;

  // --- prepared statements ---

  Status AddPrepared(PreparedStatement stmt);
  Result<PreparedStatement> GetPrepared(const std::string& name) const;
  Status RemovePrepared(const std::string& name);

 private:
  friend class ConnectionManager;
  Session() = default;

  struct CancelHooks {
    std::shared_ptr<std::atomic<bool>> cancelled;
    std::shared_ptr<KillReason> kill_reason;
  };

  mutable Mutex mu_{"server.session.mu"};
  /// Signalled when the last in-flight statement ends (Close waits on it).
  CondVar drained_cv_;
  bool closed_ HIVE_GUARDED_BY(mu_) = false;
  int inflight_ HIVE_GUARDED_BY(mu_) = 0;
  uint64_t next_cancel_token_ HIVE_GUARDED_BY(mu_) = 1;
  std::map<uint64_t, CancelHooks> cancels_ HIVE_GUARDED_BY(mu_);
  std::map<std::string, std::string> temp_tables_ HIVE_GUARDED_BY(mu_);
  std::map<std::string, PreparedStatement> prepared_ HIVE_GUARDED_BY(mu_);
};

/// RAII handle over a server session — the public way to talk to
/// HiveServer2. Move-only; closing (explicitly or via the destructor) tears
/// the session down deterministically: new statements are rejected,
/// in-flight and queued queries are cancelled and drained, temp tables and
/// prepared statements are dropped, and the session's spill namespace is
/// deleted. Close is idempotent; Execute after Close returns a clean
/// "connection is closed" error. A Connection must not outlive its server.
class Connection {
 public:
  Connection() = default;
  Connection(Connection&& other) noexcept { *this = std::move(other); }
  Connection& operator=(Connection&& other) noexcept;
  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;
  ~Connection();

  /// Executes one SQL statement.
  Result<QueryResult> Execute(const std::string& sql);

  /// Runs a ';'-separated script, returning every statement's result in
  /// order. Fails on the first statement that errors.
  Result<std::vector<QueryResult>> ExecuteScript(const std::string& sql);

  /// True until Close (explicit or via another handle) ran.
  bool open() const;

  /// Closes the connection; safe to call more than once.
  Status Close();

  /// Session-level config overrides (see Config layering in config.h).
  Config& config() { return session_->config; }
  const std::string& database() const { return session_->database; }
  void set_database(std::string db) { session_->database = std::move(db); }
  const std::string& application() const { return session_->application; }
  uint64_t id() const { return session_ ? session_->id : 0; }
  HiveServer2* server() const { return server_; }

 private:
  friend class ConnectionManager;
  Connection(HiveServer2* server, ConnectionManager* manager,
             std::shared_ptr<Session> session)
      : server_(server), manager_(manager), session_(std::move(session)) {}

  HiveServer2* server_ = nullptr;
  ConnectionManager* manager_ = nullptr;
  /// Shared with the manager's registry; keeps state like config/database
  /// readable after Close (the server-side registration is gone by then).
  std::shared_ptr<Session> session_;
};

/// Owns every session of one server: hands out Connection handles, tracks
/// the registry for metrics, and performs deterministic teardown on close
/// (cancel in-flight queries, wait for them to drain, drop temp objects and
/// prepared statements, delete the session's spill namespace).
class ConnectionManager {
 public:
  ConnectionManager(HiveServer2* server, Catalog* catalog,
                    QueryResultCache* result_cache, FileSystem* fs,
                    WorkloadManager* wm, obs::MetricsRegistry* metrics);
  ~ConnectionManager() { CloseAll(); }

  /// Opens a session and returns its RAII handle.
  Connection Connect(const std::string& application, const Config& defaults);

  /// Legacy entry point backing the deprecated HiveServer2::OpenSession:
  /// the session has no owning handle and is closed only by CloseAll at
  /// server destruction.
  Session* OpenUnowned(const std::string& application, const Config& defaults);

  /// Tears the session down (idempotent). See Connection::Close.
  Status Close(const std::shared_ptr<Session>& session);

  /// Closes every remaining session (server shutdown).
  void CloseAll();

  int64_t active() const { return active_.load(std::memory_order_relaxed); }

 private:
  std::shared_ptr<Session> MakeSession(const std::string& application,
                                       const Config& defaults);

  HiveServer2* server_;
  Catalog* catalog_;
  QueryResultCache* result_cache_;
  FileSystem* fs_;
  WorkloadManager* wm_;
  obs::MetricsRegistry* metrics_;
  obs::Counter* opened_counter_ = nullptr;
  obs::Counter* closed_counter_ = nullptr;

  mutable Mutex mu_{"server.sessions.mu"};
  std::map<uint64_t, std::shared_ptr<Session>> sessions_ HIVE_GUARDED_BY(mu_);
  uint64_t next_id_ HIVE_GUARDED_BY(mu_) = 1;
  /// Mirror of sessions_.size() readable without mu_ so the
  /// "server.sessions.active" gauge can't deadlock against callers that
  /// already hold a lock ordered after mu_ (e.g. WLM trigger evaluation).
  std::atomic<int64_t> active_{0};
};

}  // namespace hive

#endif  // HIVE_SERVER_CONNECTION_MANAGER_H_
