#ifndef HIVE_SERVER_PREPARED_STATEMENT_H_
#define HIVE_SERVER_PREPARED_STATEMENT_H_

#include <atomic>
#include <list>
#include <map>
#include <memory>
#include <string>

#include "common/config.h"
#include "common/sync.h"
#include "optimizer/rel.h"
#include "common/ast.h"

namespace hive {

/// One PREPAREd statement in a session: the parsed SELECT template with its
/// `?` placeholders intact. EXECUTE substitutes literal arguments into a
/// deep copy (optimizer/normalize.h) and runs the result like an ad-hoc
/// query, so the template itself stays immutable and shareable.
struct PreparedStatement {
  std::string name;
  std::string sql;  // original PREPARE text, for EXPLAIN and SHOW
  std::shared_ptr<SelectStmt> query;
  int param_count = 0;
};

/// Server-wide bounded LRU cache of optimized plans for prepared-statement
/// executions. Keyed on the normalized (database-qualified, parameter-
/// substituted) statement text plus a fingerprint of the planner-relevant
/// config knobs — sessions with different optimizer settings must not share
/// plans. Entries remember the catalog version they were planned against;
/// any DDL or stats change bumps that version and the stale entry is
/// dropped (and counted as an invalidation) on its next lookup.
class PlanCache {
 public:
  struct Entry {
    RelNodePtr plan;
    int mv_rewrites = 0;
    uint64_t catalog_version = 0;
  };

  explicit PlanCache(size_t capacity = 128) : capacity_(capacity) {}

  void set_capacity(size_t capacity) {
    MutexLock lock(&mu_);
    capacity_ = capacity;
    EvictLocked();
  }

  /// Returns the cached plan for `key` when present AND planned against
  /// `catalog_version`; a version mismatch erases the entry and counts an
  /// invalidation. Hits refresh LRU order.
  bool Lookup(const std::string& key, uint64_t catalog_version, Entry* out);

  /// Inserts (or refreshes) `key`, evicting least-recently-used entries
  /// beyond capacity.
  void Insert(const std::string& key, Entry entry);

  /// Drops every entry (used when invalidation must be immediate).
  void Clear();

  /// Planner-relevant knobs folded into every cache key: two sessions whose
  /// configs agree on these may share a plan, everything else (memory
  /// limits, timeouts, engine selection at runtime) binds at execution.
  static std::string ConfigFingerprint(const Config& config);

  size_t size() const;
  int64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  int64_t misses() const { return misses_.load(std::memory_order_relaxed); }
  int64_t invalidations() const {
    return invalidations_.load(std::memory_order_relaxed);
  }

 private:
  void EvictLocked() HIVE_REQUIRES(mu_);

  mutable Mutex mu_{"server.plan_cache.mu"};
  size_t capacity_ HIVE_GUARDED_BY(mu_);
  /// Most-recently-used at the front.
  std::list<std::pair<std::string, Entry>> lru_ HIVE_GUARDED_BY(mu_);
  std::map<std::string, std::list<std::pair<std::string, Entry>>::iterator>
      index_ HIVE_GUARDED_BY(mu_);
  std::atomic<int64_t> hits_{0};
  std::atomic<int64_t> misses_{0};
  std::atomic<int64_t> invalidations_{0};
};

}  // namespace hive

#endif  // HIVE_SERVER_PREPARED_STATEMENT_H_
