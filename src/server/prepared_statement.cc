#include "server/prepared_statement.h"

namespace hive {

bool PlanCache::Lookup(const std::string& key, uint64_t catalog_version,
                       Entry* out) {
  MutexLock lock(&mu_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  if (it->second->second.catalog_version != catalog_version) {
    // Planned against an older catalog: DDL or an ANALYZE ran since. The
    // entry can never become valid again, so drop it now.
    lru_.erase(it->second);
    index_.erase(it);
    invalidations_.fetch_add(1, std::memory_order_relaxed);
    misses_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  *out = it->second->second;
  hits_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void PlanCache::Insert(const std::string& key, Entry entry) {
  MutexLock lock(&mu_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->second = std::move(entry);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.emplace_front(key, std::move(entry));
  index_[key] = lru_.begin();
  EvictLocked();
}

void PlanCache::Clear() {
  MutexLock lock(&mu_);
  lru_.clear();
  index_.clear();
}

void PlanCache::EvictLocked() {
  while (lru_.size() > capacity_) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
  }
}

size_t PlanCache::size() const {
  MutexLock lock(&mu_);
  return lru_.size();
}

std::string PlanCache::ConfigFingerprint(const Config& config) {
  std::string fp;
  fp += config.cbo_enabled ? '1' : '0';
  fp += config.shared_work_enabled ? '1' : '0';
  fp += config.semijoin_reduction_enabled ? '1' : '0';
  fp += config.dynamic_partition_pruning_enabled ? '1' : '0';
  fp += config.materialized_view_rewriting_enabled ? '1' : '0';
  fp += config.legacy_sql_only ? '1' : '0';
  fp += config.parallel_join_enabled ? '1' : '0';
  fp += config.perfect_hash_join_enabled ? '1' : '0';
  fp += ':';
  fp += std::to_string(config.join_reorder_max_relations);
  return fp;
}

}  // namespace hive
