#include "server/hive_server.h"

#include <algorithm>

#include "exec/task_retry.h"
#include "federation/materialized_operator.h"
#include "server/dml.h"
#include "obs/metric_names.h"

namespace hive {

HiveServer2::HiveServer2(FileSystem* fs, Config config)
    : fs_(fs),
      default_config_(config),
      catalog_(fs),
      compaction_(&catalog_, &txns_, &default_config_),
      governor_(config.exec_memory_limit_bytes),
      plan_cache_(static_cast<size_t>(std::max(config.plan_cache_capacity, 0))),
      connections_(this, &catalog_, &result_cache_, fs_, &wm_, &metrics_) {
  llap_ = std::make_unique<LlapDaemon>(fs_, default_config_);
  handlers_.Register(std::make_unique<DroidStorageHandler>(&droid_));
  handlers_.Register(std::make_unique<CsvStorageHandler>(fs_));
  // Hidden home of session temp tables; created eagerly so the first
  // CREATE TEMPORARY TABLE doesn't race another session's.
  // lint: allow-discard(already-exists is fine when two servers share a catalog fs)
  (void)catalog_.CreateDatabase(kTempDatabase);
  RegisterEngineMetrics();
  wm_.RegisterMetrics(&metrics_);
  // Workload-manager triggers may name any registry metric in addition to
  // the built-in elapsed-runtime one ("WHEN llap.cache.misses > N THEN ...").
  wm_.SetMetricReader([this](const std::string& name) { return metrics_.Value(name); });
}

void HiveServer2::RegisterEngineMetrics() {
  // Pull-style gauges: each component keeps its own atomics; the registry
  // polls them only when a snapshot is taken, so these add zero hot-path
  // cost. Names follow the <subsystem>.<object>.<event> scheme.
  LlapCacheProvider* cache = llap_->cache();
  metrics_.RegisterCallback(obs::metric::kLlapCacheHits,
                            [cache] { return static_cast<int64_t>(cache->data_hits()); });
  metrics_.RegisterCallback(obs::metric::kLlapCacheMisses,
                            [cache] { return static_cast<int64_t>(cache->data_misses()); });
  metrics_.RegisterCallback(obs::metric::kLlapCacheEvictions,
                            [cache] { return static_cast<int64_t>(cache->data_evictions()); });
  metrics_.RegisterCallback(obs::metric::kLlapCacheUsedBytes,
                            [cache] { return static_cast<int64_t>(cache->used_bytes()); });
  metrics_.RegisterCallback(obs::metric::kLlapCacheChunks,
                            [cache] { return static_cast<int64_t>(cache->cached_chunks()); });
  metrics_.RegisterCallback(obs::metric::kLlapCacheDecodes,
                            [cache] { return static_cast<int64_t>(cache->data_decodes()); });
  metrics_.RegisterCallback(obs::metric::kLlapCacheSingleflightWaits, [cache] {
    return static_cast<int64_t>(cache->singleflight_waits());
  });
  metrics_.RegisterCallback(obs::metric::kLlapCacheMetadataHits, [cache] {
    return static_cast<int64_t>(cache->metadata_hits());
  });
  metrics_.RegisterCallback(obs::metric::kLlapCachePoisonDetected, [cache] {
    return static_cast<int64_t>(cache->poison_detected());
  });
  metrics_.RegisterCallback(obs::metric::kLlapCacheDegradedReads, [cache] {
    return static_cast<int64_t>(cache->degraded_reads());
  });
  metrics_.RegisterCallback(obs::metric::kLlapCacheDegradedFiles, [cache] {
    return static_cast<int64_t>(cache->degraded_files());
  });
  LlapDaemon* llap = llap_.get();
  metrics_.RegisterCallback(obs::metric::kLlapFragmentsSubmitted,
                            [llap] { return llap->fragments_submitted(); });
  metrics_.RegisterCallback(obs::metric::kLlapFragmentsCompleted,
                            [llap] { return llap->fragments_completed(); });
  metrics_.RegisterCallback(obs::metric::kLlapIoPrefetches,
                            [llap] { return llap->prefetches_issued(); });
  QueryResultCache* results = &result_cache_;
  metrics_.RegisterCallback(obs::metric::kResultCacheHits, [results] { return results->hits(); });
  metrics_.RegisterCallback(obs::metric::kResultCacheMisses,
                            [results] { return results->misses(); });
  metrics_.RegisterCallback(obs::metric::kResultCacheEntries, [results] {
    return static_cast<int64_t>(results->size());
  });
  TransactionManager* txns = &txns_;
  metrics_.RegisterCallback(obs::metric::kTxnAborted, [txns] {
    return static_cast<int64_t>(txns->NumAborted());
  });
  CompactionManager* compaction = &compaction_;
  metrics_.RegisterCallback(obs::metric::kCompactionRuns,
                            [compaction] { return compaction->compactions_run(); });
  metrics_.RegisterCallback(obs::metric::kCompactionPendingCleans, [compaction] {
    return static_cast<int64_t>(compaction->pending_cleans());
  });
  SimClock* clock = &clock_;
  metrics_.RegisterCallback(obs::metric::kVirtualUs, [clock] { return clock->virtual_us(); });
  PlanCache* plans = &plan_cache_;
  metrics_.RegisterCallback(obs::metric::kPlanCacheHits,
                            [plans] { return plans->hits(); });
  metrics_.RegisterCallback(obs::metric::kPlanCacheMisses,
                            [plans] { return plans->misses(); });
  metrics_.RegisterCallback(obs::metric::kPlanCacheInvalidations,
                            [plans] { return plans->invalidations(); });
  metrics_.RegisterCallback(obs::metric::kPlanCacheEntries, [plans] {
    return static_cast<int64_t>(plans->size());
  });
}

Connection HiveServer2::Connect(const std::string& application) {
  return connections_.Connect(application, default_config_);
}

Session* HiveServer2::OpenSession(const std::string& application) {
  return connections_.OpenUnowned(application, default_config_);
}

Result<QueryResult> HiveServer2::ExecuteOn(Session* session, const std::string& sql) {
  HIVE_RETURN_IF_ERROR(session->BeginStatement());
  Result<QueryResult> result = Status::OK();
  auto parsed = Parser::Parse(sql);
  if (parsed.ok()) {
    result = Dispatch(session, *parsed);
  } else {
    result = parsed.status();
  }
  session->EndStatement();
  return result;
}

Result<std::vector<QueryResult>> HiveServer2::ExecuteScriptOn(
    Session* session, const std::string& sql) {
  HIVE_RETURN_IF_ERROR(session->BeginStatement());
  Result<std::vector<QueryResult>> out = std::vector<QueryResult>{};
  auto parsed = Parser::ParseScript(sql);
  if (!parsed.ok()) {
    out = parsed.status();
  } else {
    out->reserve(parsed->size());
    for (const StatementPtr& stmt : *parsed) {
      Result<QueryResult> result = Dispatch(session, stmt);
      if (!result.ok()) {
        out = result.status();
        break;
      }
      out->push_back(std::move(*result));
    }
  }
  session->EndStatement();
  return out;
}

TableResolver HiveServer2::TempResolver(Session* session) const {
  return [session](std::string* db, std::string* table) {
    // lint: allow-discard(resolver contract: untouched names mean no match)
    (void)session->ResolveTempTable(db, table);
  };
}

std::string HiveServer2::ResultCacheKey(Session* session,
                                        const SelectStmt& stmt) const {
  return NormalizedQueryText(stmt, session->database, TempResolver(session));
}

Result<QueryResult> HiveServer2::Dispatch(Session* session, const StatementPtr& stmt) {
  metrics_.counter(obs::metric::kServerStatements)->Inc();
  DmlDriver dml(this, session);
  switch (stmt->kind()) {
    case StatementKind::kSelect: {
      const auto* select = static_cast<const SelectStatement*>(stmt.get());
      // Cache key: canonical AST with fully qualified tables (current
      // database and session temp tables resolved into the key), so
      // identical text in different databases/sessions cannot collide and
      // an EXECUTE of the equivalent query shares the entry.
      std::string key = ResultCacheKey(session, select->select);
      return ExecuteSelect(session, select->select, key);
    }
    case StatementKind::kExplain:
      return ExecuteExplain(session, *static_cast<const ExplainStatement*>(stmt.get()));
    case StatementKind::kPrepare:
      return ExecutePrepare(session, *static_cast<const PrepareStatement*>(stmt.get()));
    case StatementKind::kExecute:
      return ExecutePrepared(session, *static_cast<const ExecuteStatement*>(stmt.get()));
    case StatementKind::kDeallocate: {
      const auto* dealloc = static_cast<const DeallocateStatement*>(stmt.get());
      HIVE_RETURN_IF_ERROR(session->RemovePrepared(dealloc->name));
      return QueryResult{};
    }
    case StatementKind::kInsert:
      return dml.Insert(*static_cast<const InsertStatement*>(stmt.get()));
    case StatementKind::kUpdate:
      return dml.Update(*static_cast<const UpdateStatement*>(stmt.get()));
    case StatementKind::kDelete:
      return dml.Delete(*static_cast<const DeleteStatement*>(stmt.get()));
    case StatementKind::kMerge:
      return dml.Merge(*static_cast<const MergeStatement*>(stmt.get()));
    case StatementKind::kCreateMaterializedView:
      return dml.CreateMaterializedView(
          *static_cast<const CreateMaterializedViewStatement*>(stmt.get()));
    case StatementKind::kAlterMaterializedViewRebuild:
      return dml.RebuildMaterializedView(
          *static_cast<const AlterMaterializedViewRebuildStatement*>(stmt.get()));
    case StatementKind::kAnalyzeTable:
      return ExecuteAnalyze(session,
                            *static_cast<const AnalyzeTableStatement*>(stmt.get()));
    case StatementKind::kResourcePlanDdl: {
      HIVE_RETURN_IF_ERROR(
          wm_.Apply(*static_cast<const ResourcePlanStatement*>(stmt.get())));
      return QueryResult{};
    }
    case StatementKind::kShowMetrics:
      return ExecuteShowMetrics();
    default:
      return ExecuteDdl(session, stmt);
  }
}

bool HiveServer2::MvIsFresh(const TableDesc& view) const {
  bool stale = false;
  for (const auto& [table, hwm] : view.mv_source_snapshot) {
    if (txns_.TableWriteIdHighWatermark(table) != hwm) stale = true;
  }
  if (!stale) return true;
  // Stale views may still rewrite within their declared staleness window
  // (rebuilds run periodically in micro batches; Section 4.4).
  if (view.mv_staleness_window_us <= 0) return false;
  return SimClock::WallMicros() - view.mv_last_rebuild_us <=
         view.mv_staleness_window_us;
}

Result<RelNodePtr> HiveServer2::PlanSelect(
    Session* session, const SelectStmt& stmt, const Config& config,
    std::vector<std::string>* referenced_tables, bool* nondeterministic,
    const std::map<std::string, int64_t>* runtime_stats, int* mv_rewrites) {
  Binder binder(&catalog_, &config, session->database);
  binder.set_table_resolver(TempResolver(session));
  HIVE_ASSIGN_OR_RETURN(RelNodePtr plan, binder.BindSelect(stmt));
  if (referenced_tables) *referenced_tables = binder.referenced_tables();
  if (nondeterministic) *nondeterministic = binder.uses_nondeterministic();
  Optimizer optimizer(&catalog_, &config);
  optimizer.set_mv_filter([this](const TableDesc& view) { return MvIsFresh(view); });
  if (runtime_stats) optimizer.set_runtime_stats(*runtime_stats);
  HIVE_ASSIGN_OR_RETURN(plan, optimizer.Optimize(plan));
  if (mv_rewrites) *mv_rewrites = LastMvRewriteCount();
  // Federation pushdown (Section 6.2) runs as a final stage.
  HIVE_ASSIGN_OR_RETURN(plan, PushDownToHandlers(plan, &handlers_));
  return plan;
}

ExecContext HiveServer2::MakeContext(const Config& config, const TxnSnapshot& snapshot,
                                     RuntimeStats* stats,
                                     std::shared_ptr<std::atomic<bool>> cancelled,
                                     std::shared_ptr<KillReason> kill_reason) {
  ExecContext ctx;
  ctx.fs = fs_;
  ctx.catalog = &catalog_;
  ctx.config = &config;
  ctx.clock = &clock_;
  ctx.mode = config.llap_enabled
                 ? RuntimeMode::kLlap
                 : (config.execution_engine == "mr" ? RuntimeMode::kMapReduce
                                                    : RuntimeMode::kTez);
  ctx.chunks = config.llap_enabled
                   ? static_cast<ChunkProvider*>(llap_->cache())
                   : nullptr;  // filled by caller when direct
  ctx.snapshot_for = [this, snapshot](const std::string& table) {
    return txns_.GetValidWriteIds(table, snapshot);
  };
  ctx.runtime_stats = stats;
  ctx.metrics = &metrics_;
  ctx.cancelled = std::move(cancelled);
  ctx.kill_reason = std::move(kill_reason);
  // Morsel-driven intra-query parallelism: leaf pipelines fan out across the
  // LLAP executor pool; chunk read-ahead rides the I/O elevator threads.
  ctx.max_parallel_workers = config.num_executors;
  if (llap_ && config.execution_engine != "mr") {
    LlapDaemon* llap = llap_.get();
    ctx.submit_worker = [llap](std::function<Status()> fn) {
      return llap->SubmitWorkFragment(std::move(fn));
    };
  }
  if (config.llap_enabled && llap_) {
    LlapDaemon* llap = llap_.get();
    ctx.prefetch_chunk = [llap](std::shared_ptr<CofReader> reader,
                                size_t row_group, size_t column) {
      llap->PrefetchChunk(std::move(reader), row_group, column);
    };
  }
  return ctx;
}

namespace {
/// Unhooks a statement's cancellation registration on every exit path.
struct CancelRegistration {
  Session* session;
  uint64_t token;
  ~CancelRegistration() { session->UnregisterCancel(token); }
};
}  // namespace

Result<QueryResult> HiveServer2::TryExecuteSelect(Session* session,
                                                  const SelectStmt& stmt, int attempt,
                                                  RuntimeStats* stats,
                                                  Config* attempt_config,
                                                  bool use_plan_cache) {
  Config& config = *attempt_config;
  std::map<std::string, int64_t> overrides;
  if (attempt > 0 && config.reexecution_strategy == "reoptimize" && stats) {
    MutexLock lock(&stats->mu);
    overrides = stats->rows_produced;
  }
  if (attempt > 0 && config.reexecution_strategy == "overlay") {
    // Overlay strategy: force the robust configuration on reexecution.
    config.llap_enabled = false;
    config.execution_engine = "tez";
  }
  int mv_rewrites = 0;
  std::vector<std::string> referenced;
  bool nondeterministic = false;
  // Plan-cache probe (prepared statements, attempt 0 only: re-execution
  // attempts deliberately re-plan). The key folds in the planner-relevant
  // config fingerprint; the catalog version check drops entries staled by
  // DDL or ANALYZE. Plans that used an MV rewrite are never reused — MV
  // freshness is time-dependent.
  RelNodePtr plan;
  const bool probe_plan_cache =
      use_plan_cache && attempt == 0 && config.plan_cache_enabled;
  std::string plan_key;
  uint64_t catalog_version = 0;
  if (probe_plan_cache) {
    plan_key = ResultCacheKey(session, stmt) + "#" +
               PlanCache::ConfigFingerprint(config);
    catalog_version = catalog_.version();
    PlanCache::Entry entry;
    if (plan_cache_.Lookup(plan_key, catalog_version, &entry)) {
      plan = entry.plan;
      mv_rewrites = entry.mv_rewrites;
    }
  }
  if (!plan) {
    HIVE_ASSIGN_OR_RETURN(
        plan, PlanSelect(session, stmt, config, &referenced, &nondeterministic,
                         overrides.empty() ? nullptr : &overrides, &mv_rewrites));
    if (probe_plan_cache && mv_rewrites == 0)
      plan_cache_.Insert(plan_key, {plan, mv_rewrites, catalog_version});
  }

  // Admission control + snapshot. The cancellation hooks are created ahead
  // of Admit and registered with the session so teardown can abort this
  // query even while it waits in the admission queue. The reader scope
  // keeps the compaction cleaner from deleting directories this scan's
  // snapshot may still select.
  auto cancelled = std::make_shared<std::atomic<bool>>(false);
  auto kill_reason = std::make_shared<KillReason>();
  CancelRegistration registration{
      session, session->RegisterCancel(cancelled, kill_reason)};
  HIVE_ASSIGN_OR_RETURN(
      auto wm_handle,
      wm_.Admit(session->application, config.wlm_queue_timeout_ms, cancelled,
                kill_reason));
  CompactionManager::ReadScope read_scope(&compaction_);
  TxnSnapshot snapshot = txns_.GetSnapshot();

  DirectChunkProvider direct(fs_);
  ExecContext ctx = MakeContext(config, snapshot, stats, wm_handle->cancelled,
                                wm_handle->kill_reason);
  if (!ctx.chunks) ctx.chunks = &direct;
  ctx.external_scan_factory = [this, &ctx](const RelNode& scan) -> Result<OperatorPtr> {
    StorageHandler* handler = handlers_.Get(scan.table.storage_handler);
    if (!handler)
      return Status::NotSupported("no handler: " + scan.table.storage_handler);
    return handler->CreateScan(&ctx, scan);
  };
  ctx.join_build_row_limit = config.join_build_row_limit;
  if (attempt > 0) ctx.join_build_row_limit = INT64_MAX;

  // Memory governance: every blocking operator in this query draws from one
  // QueryMemory over the process governor; a denied grow makes it spill into
  // the query's private namespace under spill_dir (torn down below).
  QueryMemory query_memory(&governor_, config.query_memory_limit_bytes);
  ctx.query_memory = &query_memory;
  std::string spill_dir;
  if (config.spill_enabled && !config.spill_dir.empty()) {
    // Session-scoped namespace: close tears down everything under
    // <spill_dir>/s<sid> in one sweep even when per-query cleanup was
    // skipped by a crashily-cancelled query.
    spill_dir = config.spill_dir + "/s" + std::to_string(session->id) + "/q" +
                std::to_string(governor_.NextSpillId());
    ctx.spill_dir = spill_dir;
  }

  int64_t wall_start = SimClock::WallMicros();
  int64_t virt_start = clock_.virtual_us();
  // Engine-wide cache counters move under concurrent queries; the deltas
  // recorded below are this query's approximate share.
  uint64_t llap_hits_start = llap_ ? llap_->cache()->data_hits() : 0;
  uint64_t llap_misses_start = llap_ ? llap_->cache()->data_misses() : 0;
  ctx.ArmDeadline();
  ctx.OnQueryStart();

  QueryResult result;
  obs::QueryProfile* profile = &result.profile();
  ctx.profile = profile;
  auto run = [&]() -> Status {
    // Fresh vertex attempt: recompile and rebuild the result from scratch
    // (a Tez task re-run restarts the fragment, never resumes it), and drop
    // any span tree a failed attempt attached.
    result.rows.clear();
    result.schema = Schema();
    profile->ResetOperatorTree();
    HIVE_ASSIGN_OR_RETURN(OperatorPtr root, CompilePlan(&ctx, plan));
    HIVE_RETURN_IF_ERROR(root->Open());
    result.schema = root->schema();
    bool done = false;
    for (;;) {
      // Coordinator-side interruption point: a KILL trigger or deadline that
      // fired between batches must abort even when every remaining operator
      // only drains already-materialized state (and so never polls again).
      HIVE_RETURN_IF_ERROR(ctx.CheckInterrupted());
      auto batch = root->Next(&done);
      if (!batch.ok()) return batch.status();
      if (done) break;
      for (size_t i = 0; i < batch->SelectedSize(); ++i)
        result.rows.push_back(batch->GetRow(i));
      // Report progress so workload-manager triggers can MOVE/KILL.
      int64_t elapsed_ms =
          (SimClock::WallMicros() - wall_start + clock_.virtual_us() - virt_start) /
          1000;
      wm_.ReportProgress(wm_handle, elapsed_ms);
    }
    return root->Close();
  };
  // Vertex-level task attempts: a transient failure that escaped the
  // morsel-level retries (e.g. while opening footers) re-runs the whole
  // fragment, the way Tez re-runs a failed task attempt.
  Status exec_status = RunTaskAttempts(&config, &clock_, stats, [&]() -> Status {
    if (config.llap_enabled && llap_) {
      // Query fragments execute on the persistent LLAP executors.
      auto future = llap_->SubmitFragment([&run] { return run(); });
      return future.get();
    }
    return run();
  });
  wm_.Release(wm_handle);
  if (!spill_dir.empty()) {
    // lint: allow-discard(spill teardown is best-effort; results are already materialized)
    (void)fs_->DeleteRecursive(spill_dir);
    // Prune the session namespace too once its last query dir is gone, so an
    // idle session leaves no entry under spill_dir (close sweeps it anyway).
    std::string session_dir =
        config.spill_dir + "/s" + std::to_string(session->id);
    if (auto entries = fs_->ListDir(session_dir);
        entries.ok() && entries->empty()) {
      // lint: allow-discard(best-effort prune; a concurrent query may recreate it)
      (void)fs_->DeleteRecursive(session_dir);
    }
  }
  if (!exec_status.ok()) return exec_status;

  namespace qc = obs::qc;
  profile->SetCounter(qc::kWallUs, SimClock::WallMicros() - wall_start);
  profile->SetCounter(qc::kVirtualUs, clock_.virtual_us() - virt_start);
  profile->SetCounter(qc::kRowsReturned, static_cast<int64_t>(result.rows.size()));
  if (mv_rewrites) profile->SetCounter(qc::kMvRewrites, mv_rewrites);
  if (stats) {
    // RuntimeStats accumulates across attempts of one ExecuteSelect, so
    // these are cumulative for the query, not just this attempt.
    profile->SetCounter(qc::kTaskAttempts,
                        stats->task_attempts.load(std::memory_order_relaxed));
    profile->SetCounter(qc::kTaskRetries,
                        stats->task_retries.load(std::memory_order_relaxed));
    profile->SetCounter(qc::kSpeculativeTasks,
                        stats->speculative_tasks.load(std::memory_order_relaxed));
    profile->SetCounter(qc::kSpeculativeWins,
                        stats->speculative_wins.load(std::memory_order_relaxed));
  }
  if (llap_ && config.llap_enabled) {
    profile->SetCounter(qc::kLlapCacheHits,
                        static_cast<int64_t>(llap_->cache()->data_hits() -
                                             llap_hits_start));
    profile->SetCounter(qc::kLlapCacheMisses,
                        static_cast<int64_t>(llap_->cache()->data_misses() -
                                             llap_misses_start));
  }
  result.rows_affected = static_cast<int64_t>(result.rows.size());
  return result;
}

Result<QueryResult> HiveServer2::ExecuteSelect(Session* session, const SelectStmt& stmt,
                                               const std::string& cache_key,
                                               bool bypass_cache,
                                               bool use_plan_cache) {
  Config config = EffectiveConfig(session);
  metrics_.counter(obs::metric::kServerQueries)->Inc();

  // Result cache probe (Section 4.3). The binder reports determinism and
  // the referenced tables; both gate caching.
  bool cache_eligible = config.result_cache_enabled && !bypass_cache;
  auto current_hwm = [this](const std::string& table) {
    return txns_.TableWriteIdHighWatermark(table);
  };
  bool filling = false;
  if (cache_eligible) {
    QueryResultCache::Entry entry;
    auto state = result_cache_.Lookup(cache_key, current_hwm, &entry);
    if (state != QueryResultCache::LookupState::kMissFill) {
      QueryResult result;
      result.schema = entry.schema;
      result.rows = entry.rows;
      result.rows_affected = static_cast<int64_t>(result.rows.size());
      result.profile().SetCounter(obs::qc::kFromResultCache, 1);
      result.profile().SetCounter(obs::qc::kRowsReturned,
                                  static_cast<int64_t>(result.rows.size()));
      return result;
    }
    filling = true;
  }

  RuntimeStats stats;
  Result<QueryResult> result = Status::OK();
  int attempts = config.reexecution_strategy == "off" ? 1 : 2;
  for (int attempt = 0; attempt < attempts; ++attempt) {
    Config attempt_config = config;
    result = TryExecuteSelect(session, stmt, attempt, &stats, &attempt_config,
                              use_plan_cache);
    if (result.ok()) {
      if (attempt) result->profile().SetCounter(obs::qc::kReexecutions, attempt);
      break;
    }
    // Only execution errors trigger the re-execution machinery.
    if (!result.status().IsExecError()) break;
  }
  if (!result.ok()) {
    metrics_.counter(obs::metric::kServerQueryErrors)->Inc();
    if (filling) result_cache_.AbandonFill(cache_key);
    return result;
  }
  // Fold this query's fault-tolerance footprint into the engine totals once
  // (morsel-level and vertex-level attempts both landed in `stats`).
  namespace qc = obs::qc;
  const obs::QueryProfile& profile = result->profile();
  metrics_.counter(qc::kTaskAttempts)->Add(profile.counter(qc::kTaskAttempts));
  metrics_.counter(qc::kTaskRetries)->Add(profile.counter(qc::kTaskRetries));
  metrics_.counter(qc::kSpeculativeTasks)
      ->Add(profile.counter(qc::kSpeculativeTasks));
  metrics_.counter(qc::kSpeculativeWins)
      ->Add(profile.counter(qc::kSpeculativeWins));
  if (profile.counter(qc::kReexecutions))
    metrics_.counter(qc::kReexecutions)->Add(profile.counter(qc::kReexecutions));
  if (profile.counter(qc::kMvRewrites))
    metrics_.counter(qc::kMvRewrites)->Add(profile.counter(qc::kMvRewrites));
  metrics_.histogram(obs::metric::kServerQueryWallUs)->Record(profile.counter(qc::kWallUs));

  if (filling) {
    // Non-deterministic queries must not populate the cache.
    bool nondeterministic = false;
    Binder binder(&catalog_, &config, session->database);
    binder.set_table_resolver(TempResolver(session));
    auto bound = binder.BindSelect(stmt);
    std::vector<std::string> referenced;
    if (bound.ok()) {
      nondeterministic = binder.uses_nondeterministic();
      referenced = binder.referenced_tables();
    }
    if (!nondeterministic && bound.ok()) {
      QueryResultCache::Entry entry;
      entry.schema = result->schema;
      entry.rows = result->rows;
      for (const std::string& table : referenced)
        entry.snapshot[table] = current_hwm(table);
      result_cache_.Publish(cache_key, std::move(entry));
    } else {
      result_cache_.AbandonFill(cache_key);
    }
  }
  return result;
}

Result<QueryResult> HiveServer2::ExecuteIncrementalMvQuery(Session* session,
                                                           const SelectStmt& stmt,
                                                           const TableDesc& view) {
  Config config = EffectiveConfig(session);
  config.materialized_view_rewriting_enabled = false;  // never self-rewrite
  config.result_cache_enabled = false;
  HIVE_ASSIGN_OR_RETURN(RelNodePtr plan, PlanSelect(session, stmt, config, nullptr,
                                                    nullptr, nullptr, nullptr));
  TxnSnapshot snapshot = txns_.GetSnapshot();
  DirectChunkProvider direct(fs_);
  ExecContext ctx = MakeContext(config, snapshot, nullptr, nullptr);
  if (!ctx.chunks) ctx.chunks = &direct;
  ctx.external_scan_factory = [this, &ctx](const RelNode& scan) -> Result<OperatorPtr> {
    StorageHandler* handler = handlers_.Get(scan.table.storage_handler);
    if (!handler)
      return Status::NotSupported("no handler: " + scan.table.storage_handler);
    return handler->CreateScan(&ctx, scan);
  };
  // Delta snapshot: only write ids ABOVE the view's recorded high watermark
  // are visible, so the definition evaluates over the new data only.
  ctx.snapshot_for = [this, snapshot, &view](const std::string& table) {
    ValidWriteIdList list = txns_.GetValidWriteIds(table, snapshot);
    auto recorded = view.mv_source_snapshot.find(table);
    if (recorded != view.mv_source_snapshot.end()) {
      for (int64_t wid = 1; wid <= recorded->second; ++wid)
        list.exceptions.insert(wid);
    }
    return list;
  };
  HIVE_ASSIGN_OR_RETURN(OperatorPtr root, CompilePlan(&ctx, plan));
  HIVE_ASSIGN_OR_RETURN(auto rows, CollectRows(root.get()));
  QueryResult result;
  result.schema = root->schema();
  result.rows = std::move(rows);
  return result;
}

namespace {

/// Evaluates one EXECUTE argument. Only literals (and a negated numeric
/// literal, which the parser leaves as unary minus) are allowed: argument
/// expressions never see a row, so anything else is a user error.
Result<Value> EvalExecuteArg(const ExprPtr& e) {
  if (!e) return Status::InvalidArgument("EXECUTE argument is empty");
  if (e->kind == ExprKind::kLiteral) return e->literal;
  if (e->kind == ExprKind::kUnary && e->un_op == UnaryOp::kNegate &&
      !e->children.empty() && e->children[0] &&
      e->children[0]->kind == ExprKind::kLiteral) {
    const Value& v = e->children[0]->literal;
    if (v.kind() == TypeKind::kBigint) return Value::Bigint(-v.i64());
    if (v.kind() == TypeKind::kDouble) return Value::Double(-v.f64());
  }
  return Status::InvalidArgument("EXECUTE arguments must be literals, got " +
                                 e->ToString());
}

}  // namespace

Result<QueryResult> HiveServer2::ExecutePrepare(Session* session,
                                                const PrepareStatement& stmt) {
  PreparedStatement prepared;
  prepared.name = stmt.name;
  prepared.sql = stmt.ToString();
  prepared.query = stmt.query;
  prepared.param_count = stmt.param_count;
  HIVE_RETURN_IF_ERROR(session->AddPrepared(std::move(prepared)));
  return QueryResult{};
}

Result<std::shared_ptr<SelectStmt>> HiveServer2::ResolvePrepared(
    Session* session, const ExecuteStatement& stmt) {
  HIVE_ASSIGN_OR_RETURN(PreparedStatement prepared, session->GetPrepared(stmt.name));
  if (static_cast<int>(stmt.args.size()) != prepared.param_count)
    return Status::InvalidArgument(
        "prepared statement '" + stmt.name + "' expects " +
        std::to_string(prepared.param_count) + " parameter(s), got " +
        std::to_string(stmt.args.size()));
  std::vector<Value> values;
  values.reserve(stmt.args.size());
  for (const ExprPtr& arg : stmt.args) {
    HIVE_ASSIGN_OR_RETURN(Value v, EvalExecuteArg(arg));
    values.push_back(std::move(v));
  }
  // After substitution the tree is literally the equivalent ad-hoc query:
  // same canonical text, same result-cache key, byte-identical answer.
  return SubstituteParams(*prepared.query, values);
}

Result<QueryResult> HiveServer2::ExecutePrepared(Session* session,
                                                 const ExecuteStatement& stmt,
                                                 bool bypass_cache) {
  HIVE_ASSIGN_OR_RETURN(std::shared_ptr<SelectStmt> substituted,
                        ResolvePrepared(session, stmt));
  std::string key = ResultCacheKey(session, *substituted);
  return ExecuteSelect(session, *substituted, key, bypass_cache,
                       /*use_plan_cache=*/true);
}

Result<QueryResult> HiveServer2::ExecuteExplain(Session* session,
                                                const ExplainStatement& stmt) {
  const SelectStmt* select = nullptr;
  std::shared_ptr<SelectStmt> substituted;  // keeps an EXECUTE's tree alive
  bool prepared = false;
  if (stmt.inner->kind() == StatementKind::kSelect) {
    select = &static_cast<const SelectStatement*>(stmt.inner.get())->select;
  } else if (stmt.inner->kind() == StatementKind::kExecute) {
    const auto* exec = static_cast<const ExecuteStatement*>(stmt.inner.get());
    HIVE_ASSIGN_OR_RETURN(substituted, ResolvePrepared(session, *exec));
    select = substituted.get();
    prepared = true;
  } else {
    return Status::NotSupported("EXPLAIN supports SELECT and EXECUTE statements");
  }

  Config config = EffectiveConfig(session);
  std::string text;
  if (stmt.analyze) {
    // EXPLAIN ANALYZE really executes the query (bypassing the result cache:
    // a cached answer has no operator tree to annotate) and renders the
    // profile — the plan tree with per-operator actuals plus the counters.
    HIVE_ASSIGN_OR_RETURN(QueryResult executed,
                          ExecuteSelect(session, *select, /*cache_key=*/"",
                                        /*bypass_cache=*/true,
                                        /*use_plan_cache=*/prepared));
    text = executed.profile().ToString();
  } else if (prepared && config.plan_cache_enabled) {
    // EXPLAIN EXECUTE shows whether the plan came from the plan cache, and
    // warms the cache on a miss (so EXPLAIN then EXECUTE plans once).
    std::string plan_key = ResultCacheKey(session, *select) + "#" +
                           PlanCache::ConfigFingerprint(config);
    uint64_t catalog_version = catalog_.version();
    PlanCache::Entry entry;
    if (plan_cache_.Lookup(plan_key, catalog_version, &entry)) {
      text = "-- plan cache: hit\n" + entry.plan->ToString();
    } else {
      int mv_rewrites = 0;
      HIVE_ASSIGN_OR_RETURN(RelNodePtr plan,
                            PlanSelect(session, *select, config, nullptr,
                                       nullptr, nullptr, &mv_rewrites));
      if (mv_rewrites == 0)
        plan_cache_.Insert(plan_key, {plan, mv_rewrites, catalog_version});
      text = "-- plan cache: miss\n" + plan->ToString();
    }
  } else {
    HIVE_ASSIGN_OR_RETURN(RelNodePtr plan,
                          PlanSelect(session, *select, config, nullptr,
                                     nullptr, nullptr, nullptr));
    text = plan->ToString();
  }
  QueryResult result;
  result.schema.AddField("plan", DataType::String());
  size_t start = 0;
  while (start < text.size()) {
    size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    result.rows.push_back({Value::String(text.substr(start, end - start))});
    start = end + 1;
  }
  return result;
}

Result<QueryResult> HiveServer2::ExecuteShowMetrics() {
  QueryResult result;
  result.schema.AddField("metric", DataType::String());
  result.schema.AddField("value", DataType::Bigint());
  obs::MetricsSnapshot snap = metrics_.Snapshot();
  for (const auto& [name, value] : snap.values)
    result.rows.push_back({Value::String(name), Value::Bigint(value)});
  result.rows_affected = static_cast<int64_t>(result.rows.size());
  return result;
}

Result<QueryResult> HiveServer2::ExecuteAnalyze(Session* session,
                                                const AnalyzeTableStatement& stmt) {
  DmlDriver dml(this, session);
  return dml.Analyze(stmt);
}

Result<QueryResult> HiveServer2::ExecuteDdl(Session* session, const StatementPtr& stmt) {
  DmlDriver dml(this, session);
  switch (stmt->kind()) {
    case StatementKind::kCreateDatabase: {
      const auto* create = static_cast<const CreateDatabaseStatement*>(stmt.get());
      Status status = catalog_.CreateDatabase(create->name);
      if (!status.ok() && !(create->if_not_exists &&
                            status.code() == StatusCode::kAlreadyExists))
        return status;
      return QueryResult{};
    }
    case StatementKind::kCreateTable:
      return dml.CreateTable(*static_cast<const CreateTableStatement*>(stmt.get()));
    case StatementKind::kDropTable: {
      const auto* drop = static_cast<const DropTableStatement*>(stmt.get());
      if (drop->db.empty()) {
        // Session temp tables shadow permanent ones for unqualified names,
        // mirroring how SELECT resolves them. No transaction/lock dance:
        // nobody outside this session can see the table.
        std::string physical;
        if (session->RemoveTempTable(drop->table, &physical)) {
          Status status = catalog_.DropTable(kTempDatabase, physical);
          result_cache_.InvalidateTable(std::string(kTempDatabase) + "." +
                                        physical);
          if (!status.ok()) return status;
          return QueryResult{};
        }
      }
      std::string db = drop->db.empty() ? session->database : drop->db;
      auto desc = catalog_.GetTable(db, drop->table);
      if (!desc.ok()) {
        if (drop->if_exists && desc.status().IsNotFound()) return QueryResult{};
        return desc.status();
      }
      // DROP disrupts readers and writers: exclusive lock (Section 3.2).
      int64_t txn = txns_.OpenTxn();
      Status lock = txns_.AcquireLock(txn, desc->FullName(), LockMode::kExclusive);
      if (!lock.ok()) {
        // lint: allow-discard(best-effort abort while propagating the lock error)
        (void)txns_.AbortTxn(txn);
        return lock;
      }
      if (!desc->storage_handler.empty()) {
        StorageHandler* handler = handlers_.Get(desc->storage_handler);
        if (handler) {
          Status handler_drop = handler->OnDropTable(*desc);
          if (!handler_drop.ok()) {
            // Abort — not commit — so the exclusive lock is released and the
            // table (still in the catalog) can be dropped again after the
            // handler recovers. Returning early without the abort would leak
            // the lock and wedge every later writer on this table.
            (void)txns_.AbortTxn(txn);  // lint: allow-discard(propagating handler error)
            return handler_drop;
          }
        }
      }
      Status status = catalog_.DropTable(db, drop->table);
      result_cache_.InvalidateTable(desc->FullName());
      if (!status.ok()) {
        // lint: allow-discard(best-effort abort while propagating the drop error)
        (void)txns_.AbortTxn(txn);
        return status;
      }
      HIVE_RETURN_IF_ERROR(txns_.CommitTxn(txn));
      return QueryResult{};
    }
    case StatementKind::kShowTables: {
      QueryResult result;
      result.schema.AddField("table_name", DataType::String());
      for (const std::string& name : catalog_.ListTables(session->database))
        result.rows.push_back({Value::String(name)});
      return result;
    }
    default:
      return Status::NotSupported("unsupported statement");
  }
}

}  // namespace hive
