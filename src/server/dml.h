#ifndef HIVE_SERVER_DML_H_
#define HIVE_SERVER_DML_H_

#include "server/hive_server.h"

namespace hive {

/// Drives DML statements and materialized-view lifecycle against the ACID
/// layer (Section 3.2):
///  * INSERT writes delta directories (routing rows to partitions and
///    registering new partitions on the fly),
///  * UPDATE/DELETE scan with row ids and write delete+insert deltas,
///    tracking their write sets for first-commit-wins conflict resolution,
///  * MERGE joins the target against the source and applies the matched /
///    not-matched actions in a single transaction (exercising multi-action
///    writes),
///  * CREATE MATERIALIZED VIEW materializes its definition and records the
///    per-source write-id snapshot; REBUILD maintains it incrementally when
///    the sources only saw inserts, falling back to a full rebuild
///    otherwise (Section 4.4).
class DmlDriver {
 public:
  DmlDriver(HiveServer2* server, Session* session)
      : server_(server), session_(session) {}

  Result<QueryResult> CreateTable(const CreateTableStatement& stmt);
  Result<QueryResult> Insert(const InsertStatement& stmt);
  Result<QueryResult> Update(const UpdateStatement& stmt);
  Result<QueryResult> Delete(const DeleteStatement& stmt);
  Result<QueryResult> Merge(const MergeStatement& stmt);
  Result<QueryResult> CreateMaterializedView(
      const CreateMaterializedViewStatement& stmt);
  Result<QueryResult> RebuildMaterializedView(
      const AlterMaterializedViewRebuildStatement& stmt);
  Result<QueryResult> Analyze(const AnalyzeTableStatement& stmt);

 private:
  /// Runs a SELECT without touching the result cache (DML sources).
  Result<QueryResult> RunSelect(const SelectStmt& stmt);

  /// Resolves a statement's (db, table): for unqualified names, session
  /// temp tables shadow the current database.
  std::pair<std::string, std::string> ResolveTarget(const std::string& db,
                                                    const std::string& table) const;

  /// Writes `rows` (full-schema order: data then partition columns) into
  /// the table under `txn`, routing partitioned rows into per-partition
  /// delta directories, merging statistics, and recording the write set.
  Result<int64_t> InsertRows(const TableDesc& desc,
                             const std::vector<std::vector<Value>>& rows, int64_t txn);

  /// A scanned record eligible for update/delete.
  struct TargetRow {
    std::string location;           // partition (or table) directory
    std::string resource;           // lock/write-set resource name
    RecordId id;
    std::vector<Value> values;      // full-schema order
  };

  /// Scans the target table, returning rows matching `where` (bound over
  /// the full schema; null = all rows) together with their record ids.
  Result<std::vector<TargetRow>> ScanTargets(const TableDesc& desc,
                                             const ExprPtr& bound_where);

  /// Computes additive column statistics for freshly inserted rows.
  static TableStatistics ComputeStats(const Schema& schema,
                                      const std::vector<std::vector<Value>>& rows);

  HiveServer2* server_;
  Session* session_;
};

}  // namespace hive

#endif  // HIVE_SERVER_DML_H_
