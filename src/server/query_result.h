#ifndef HIVE_SERVER_QUERY_RESULT_H_
#define HIVE_SERVER_QUERY_RESULT_H_

#include <memory>
#include <string>
#include <vector>

#include "common/schema.h"
#include "common/types.h"
#include "obs/query_profile.h"

namespace hive {

/// Result of one statement. Everything the engine measured while producing
/// it lives in the attached QueryProfile — named counters (see obs::qc for
/// the well-known names) plus the operator span tree EXPLAIN ANALYZE
/// renders. Copies of a QueryResult share one profile.
struct QueryResult {
  Schema schema;
  std::vector<std::vector<Value>> rows;
  int64_t rows_affected = 0;

  /// Structured execution record: `result.profile().counter("task.retries")`,
  /// `result.profile().root()` for the annotated operator tree.
  obs::QueryProfile& profile() { return *profile_; }
  const obs::QueryProfile& profile() const { return *profile_; }

  /// Header + up to `max_rows` rows (always exactly the schema's columns,
  /// so ragged hand-built rows cannot misalign), a truncation marker, and
  /// the profile's one-line summary when the query recorded one.
  std::string ToString(size_t max_rows = 25) const;

 private:
  std::shared_ptr<obs::QueryProfile> profile_ =
      std::make_shared<obs::QueryProfile>();
};

}  // namespace hive

#endif  // HIVE_SERVER_QUERY_RESULT_H_
