#ifndef HIVE_SERVER_HIVE_SERVER_H_
#define HIVE_SERVER_HIVE_SERVER_H_

#include <memory>
#include <string>
#include <vector>

#include "common/config.h"
#include "common/sim_clock.h"
#include "exec/compiler.h"
#include "federation/csv_handler.h"
#include "federation/droid_handler.h"
#include "federation/storage_handler.h"
#include "fs/mem_filesystem.h"
#include "llap/daemon.h"
#include "metastore/catalog.h"
#include "metastore/compaction_manager.h"
#include "metastore/txn_manager.h"
#include "optimizer/binder.h"
#include "optimizer/mv_rewrite.h"
#include "optimizer/optimizer.h"
#include "server/result_cache.h"
#include "server/workload_manager.h"
#include "sql/parser.h"

namespace hive {

/// A session holds per-connection state: current database, config overrides
/// and the application name the workload manager maps on.
struct Session {
  std::string database = "default";
  std::string application;
  Config config;
};

/// Result of one statement.
struct QueryResult {
  Schema schema;
  std::vector<std::vector<Value>> rows;
  int64_t rows_affected = 0;
  bool from_result_cache = false;
  int reexecutions = 0;
  int mv_rewrites_used = 0;
  /// Virtual (modeled) + wall time spent executing, microseconds.
  int64_t exec_wall_us = 0;
  int64_t exec_virtual_us = 0;
  // --- fault-tolerance footprint of this execution ---
  /// Task attempts that were retries of transient failures.
  int64_t task_retries = 0;
  /// Speculative duplicate attempts launched / won against stragglers.
  int64_t speculative_tasks = 0;
  int64_t speculative_wins = 0;

  std::string ToString(size_t max_rows = 25) const;
};

/// HiveServer2 (Section 2): parses, plans, optimizes and executes SQL
/// statements, coordinating the metastore, transaction manager, LLAP
/// daemon, workload manager, result cache and storage handlers. Figure 2's
/// preparation pipeline maps to ExecuteSelect; DML/DDL follow their own
/// drivers.
class HiveServer2 {
 public:
  /// `fs` outlives the server. Default config applies to new sessions.
  HiveServer2(FileSystem* fs, Config config = {});

  Session* OpenSession(const std::string& application = "");

  /// Executes one SQL statement in the session.
  Result<QueryResult> Execute(Session* session, const std::string& sql);

  /// Runs a ';'-separated script, returning the last statement's result.
  Result<QueryResult> ExecuteScript(Session* session, const std::string& sql);

  // --- component access (benchmarks / tests) ---
  Catalog* catalog() { return &catalog_; }
  TransactionManager* txns() { return &txns_; }
  LlapDaemon* llap() { return llap_.get(); }
  DroidStore* droid() { return &droid_; }
  QueryResultCache* result_cache() { return &result_cache_; }
  WorkloadManager* workload_manager() { return &wm_; }
  SimClock* clock() { return &clock_; }
  FileSystem* filesystem() { return fs_; }
  CompactionManager* compaction() { return &compaction_; }
  const Config& default_config() const { return default_config_; }

 private:
  friend class DmlDriver;

  Result<QueryResult> Dispatch(Session* session, const StatementPtr& stmt);
  Result<QueryResult> ExecuteSelect(Session* session, const SelectStmt& stmt,
                                    const std::string& cache_key);
  /// One planning+execution attempt; `attempt` > 0 applies the configured
  /// re-execution strategy (overlay / reoptimize with runtime stats).
  Result<QueryResult> TryExecuteSelect(Session* session, const SelectStmt& stmt,
                                       int attempt, RuntimeStats* stats,
                                       Config* attempt_config);
  Result<QueryResult> ExecuteExplain(Session* session, const ExplainStatement& stmt);
  Result<QueryResult> ExecuteDdl(Session* session, const StatementPtr& stmt);
  /// Evaluates a materialized view's definition over only the write ids
  /// added since the view's recorded snapshot (incremental maintenance).
  Result<QueryResult> ExecuteIncrementalMvQuery(Session* session,
                                                const SelectStmt& stmt,
                                                const TableDesc& view);
  Result<QueryResult> ExecuteAnalyze(Session* session, const AnalyzeTableStatement& stmt);

  /// Plans a SELECT into an optimized RelNode tree (parse products in).
  Result<RelNodePtr> PlanSelect(Session* session, const SelectStmt& stmt,
                                const Config& config,
                                std::vector<std::string>* referenced_tables,
                                bool* nondeterministic,
                                const std::map<std::string, int64_t>* runtime_stats,
                                int* mv_rewrites);

  /// Builds the ExecContext for one execution.
  ExecContext MakeContext(const Config& config, const TxnSnapshot& snapshot,
                          RuntimeStats* stats,
                          std::shared_ptr<std::atomic<bool>> cancelled,
                          std::shared_ptr<KillReason> kill_reason = nullptr);

  /// True when the MV is usable for rewriting under its staleness window.
  bool MvIsFresh(const TableDesc& view) const;

  FileSystem* fs_;
  Config default_config_;
  SimClock clock_;
  Catalog catalog_;
  TransactionManager txns_;
  CompactionManager compaction_;
  std::unique_ptr<LlapDaemon> llap_;
  DroidStore droid_;
  StorageHandlerRegistry handlers_;
  QueryResultCache result_cache_;
  WorkloadManager wm_;
  std::vector<std::unique_ptr<Session>> sessions_;
  std::mutex sessions_mu_;
};

}  // namespace hive

#endif  // HIVE_SERVER_HIVE_SERVER_H_
