#ifndef HIVE_SERVER_HIVE_SERVER_H_
#define HIVE_SERVER_HIVE_SERVER_H_

#include <memory>
#include <string>
#include <vector>

#include "common/config.h"
#include "common/memory_governor.h"
#include "common/sim_clock.h"
#include "common/sync.h"
#include "exec/compiler.h"
#include "federation/csv_handler.h"
#include "federation/droid_handler.h"
#include "federation/storage_handler.h"
#include "fs/mem_filesystem.h"
#include "llap/daemon.h"
#include "metastore/catalog.h"
#include "metastore/compaction_manager.h"
#include "metastore/txn_manager.h"
#include "obs/metrics.h"
#include "obs/query_profile.h"
#include "optimizer/binder.h"
#include "optimizer/mv_rewrite.h"
#include "optimizer/normalize.h"
#include "optimizer/optimizer.h"
#include "server/connection_manager.h"
#include "server/prepared_statement.h"
#include "server/query_result.h"
#include "server/result_cache.h"
#include "server/workload_manager.h"
#include "sql/parser.h"

namespace hive {

/// HiveServer2 (Section 2): parses, plans, optimizes and executes SQL
/// statements, coordinating the metastore, transaction manager, LLAP
/// daemon, workload manager, result cache and storage handlers. Figure 2's
/// preparation pipeline maps to ExecuteSelect; DML/DDL follow their own
/// drivers.
///
/// Clients talk to the server through RAII Connection handles:
///
///   HiveServer2 server(&fs);
///   Connection conn = server.Connect("etl");
///   auto result = conn.Execute("SELECT ...");
///
/// Each connection owns a server-side session (current database, config
/// overrides, temp tables, prepared statements) that is torn down
/// deterministically when the handle closes.
class HiveServer2 {
 public:
  /// `fs` outlives the server. Default config applies to new sessions.
  HiveServer2(FileSystem* fs, Config config = {});

  /// Opens a connection for `application` (the name workload-manager
  /// mappings route on). The returned handle is the public entry point for
  /// executing statements; it must not outlive the server.
  Connection Connect(const std::string& application = "");

  [[deprecated("use Connect(); the returned Connection owns the session")]]
  Session* OpenSession(const std::string& application = "");

  /// Executes one SQL statement in the session.
  [[deprecated("use Connection::Execute")]]
  Result<QueryResult> Execute(Session* session, const std::string& sql) {
    return ExecuteOn(session, sql);
  }

  /// Runs a ';'-separated script, returning every statement's result in
  /// order. Fails on the first statement that errors.
  [[deprecated("use Connection::ExecuteScript")]]
  Result<std::vector<QueryResult>> ExecuteScript(Session* session,
                                                 const std::string& sql) {
    return ExecuteScriptOn(session, sql);
  }

  // --- component access (benchmarks / tests) ---
  Catalog* catalog() { return &catalog_; }
  TransactionManager* txns() { return &txns_; }
  LlapDaemon* llap() { return llap_.get(); }
  DroidStore* droid() { return &droid_; }
  QueryResultCache* result_cache() { return &result_cache_; }
  WorkloadManager* workload_manager() { return &wm_; }
  /// Prepared-statement plan cache (server-wide; see prepared_statement.h).
  PlanCache* plan_cache() { return &plan_cache_; }
  ConnectionManager* connections() { return &connections_; }
  /// Engine-wide metrics registry (SHOW METRICS); components publish into
  /// it via push counters or snapshot-time callback gauges.
  obs::MetricsRegistry* metrics() { return &metrics_; }
  /// Process-wide memory budget every query's reservations draw from.
  MemoryGovernor* memory_governor() { return &governor_; }
  SimClock* clock() { return &clock_; }
  FileSystem* filesystem() { return fs_; }
  CompactionManager* compaction() { return &compaction_; }
  const Config& default_config() const { return default_config_; }

  /// Replaces the server default config. Sessions see the change through
  /// Config layering (LayerConfig): every field a session has not
  /// explicitly overridden tracks the new default. Apply between
  /// statements — concurrent readers of the default are not synchronized.
  void SetDefaultConfig(const Config& config) { default_config_ = config; }

  /// The config one of this session's statements would run under right
  /// now: session overrides on top of the live server default. THE one
  /// place the layering rule is applied (satellite: config layering).
  Config EffectiveConfig(const Session* session) const {
    return LayerConfig(default_config_, session->open_defaults,
                       session->config);
  }

  /// Registers an additional storage handler (Section 6.1) alongside the
  /// built-in droid/CSV ones; referenced by CREATE TABLE ... STORED BY
  /// '<name>'. Call before queries touch tables of that handler.
  void RegisterStorageHandler(std::unique_ptr<StorageHandler> handler) {
    handlers_.Register(std::move(handler));
  }

 private:
  friend class DmlDriver;
  friend class Connection;

  /// Registers snapshot-time callback gauges for every component that
  /// already keeps internal counters (LLAP cache/daemon, result cache,
  /// transaction + compaction managers); called once from the constructor.
  void RegisterEngineMetrics();

  /// Statement entry points behind Connection::Execute/ExecuteScript (and
  /// the deprecated Session overloads): bracket the dispatch with the
  /// session's in-flight accounting so Close can drain deterministically.
  Result<QueryResult> ExecuteOn(Session* session, const std::string& sql);
  Result<std::vector<QueryResult>> ExecuteScriptOn(Session* session,
                                                   const std::string& sql);

  Result<QueryResult> Dispatch(Session* session, const StatementPtr& stmt);
  /// `bypass_cache` skips the result-cache probe AND fill (EXPLAIN ANALYZE
  /// must measure a real execution); `use_plan_cache` lets attempt 0 reuse
  /// an optimized plan from the prepared-statement plan cache.
  Result<QueryResult> ExecuteSelect(Session* session, const SelectStmt& stmt,
                                    const std::string& cache_key,
                                    bool bypass_cache = false,
                                    bool use_plan_cache = false);
  /// One planning+execution attempt; `attempt` > 0 applies the configured
  /// re-execution strategy (overlay / reoptimize with runtime stats).
  Result<QueryResult> TryExecuteSelect(Session* session, const SelectStmt& stmt,
                                       int attempt, RuntimeStats* stats,
                                       Config* attempt_config,
                                       bool use_plan_cache);
  Result<QueryResult> ExecuteExplain(Session* session, const ExplainStatement& stmt);
  Result<QueryResult> ExecuteDdl(Session* session, const StatementPtr& stmt);
  /// PREPARE / EXECUTE / DEALLOCATE (prepared statements).
  Result<QueryResult> ExecutePrepare(Session* session,
                                     const PrepareStatement& stmt);
  Result<QueryResult> ExecutePrepared(Session* session,
                                      const ExecuteStatement& stmt,
                                      bool bypass_cache = false);
  /// Looks up the prepared statement and substitutes the EXECUTE arguments
  /// (literals only) into a fresh tree ready for planning.
  Result<std::shared_ptr<SelectStmt>> ResolvePrepared(
      Session* session, const ExecuteStatement& stmt);
  /// Evaluates a materialized view's definition over only the write ids
  /// added since the view's recorded snapshot (incremental maintenance).
  Result<QueryResult> ExecuteIncrementalMvQuery(Session* session,
                                                const SelectStmt& stmt,
                                                const TableDesc& view);
  Result<QueryResult> ExecuteAnalyze(Session* session, const AnalyzeTableStatement& stmt);
  Result<QueryResult> ExecuteShowMetrics();

  /// Temp-table resolver for this session (feeds normalization + binding).
  TableResolver TempResolver(Session* session) const;
  /// Canonical result-cache key: database-qualified, temp-resolved text,
  /// identical for an ad-hoc query and the equivalent EXECUTE.
  std::string ResultCacheKey(Session* session, const SelectStmt& stmt) const;

  /// Plans a SELECT into an optimized RelNode tree (parse products in).
  Result<RelNodePtr> PlanSelect(Session* session, const SelectStmt& stmt,
                                const Config& config,
                                std::vector<std::string>* referenced_tables,
                                bool* nondeterministic,
                                const std::map<std::string, int64_t>* runtime_stats,
                                int* mv_rewrites);

  /// Builds the ExecContext for one execution.
  ExecContext MakeContext(const Config& config, const TxnSnapshot& snapshot,
                          RuntimeStats* stats,
                          std::shared_ptr<std::atomic<bool>> cancelled,
                          std::shared_ptr<KillReason> kill_reason = nullptr);

  /// True when the MV is usable for rewriting under its staleness window.
  bool MvIsFresh(const TableDesc& view) const;

  FileSystem* fs_;
  Config default_config_;
  SimClock clock_;
  Catalog catalog_;
  TransactionManager txns_;
  CompactionManager compaction_;
  std::unique_ptr<LlapDaemon> llap_;
  DroidStore droid_;
  StorageHandlerRegistry handlers_;
  QueryResultCache result_cache_;
  WorkloadManager wm_;
  obs::MetricsRegistry metrics_;
  MemoryGovernor governor_;
  PlanCache plan_cache_;
  /// Declared last: its destructor closes every remaining session (which
  /// touches the catalog, caches and filesystem above), so it must be
  /// destroyed first.
  ConnectionManager connections_;
};

}  // namespace hive

#endif  // HIVE_SERVER_HIVE_SERVER_H_
