#ifndef HIVE_SERVER_HIVE_SERVER_H_
#define HIVE_SERVER_HIVE_SERVER_H_

#include <memory>
#include <string>
#include <vector>

#include "common/config.h"
#include "common/memory_governor.h"
#include "common/sim_clock.h"
#include "common/sync.h"
#include "exec/compiler.h"
#include "federation/csv_handler.h"
#include "federation/droid_handler.h"
#include "federation/storage_handler.h"
#include "fs/mem_filesystem.h"
#include "llap/daemon.h"
#include "metastore/catalog.h"
#include "metastore/compaction_manager.h"
#include "metastore/txn_manager.h"
#include "obs/metrics.h"
#include "obs/query_profile.h"
#include "optimizer/binder.h"
#include "optimizer/mv_rewrite.h"
#include "optimizer/optimizer.h"
#include "server/result_cache.h"
#include "server/workload_manager.h"
#include "sql/parser.h"

namespace hive {

/// A session holds per-connection state: current database, config overrides
/// and the application name the workload manager maps on.
struct Session {
  std::string database = "default";
  std::string application;
  Config config;
};

/// Result of one statement. Everything the engine measured while producing
/// it lives in the attached QueryProfile — named counters (see obs::qc for
/// the well-known names) plus the operator span tree EXPLAIN ANALYZE
/// renders. Copies of a QueryResult share one profile.
struct QueryResult {
  Schema schema;
  std::vector<std::vector<Value>> rows;
  int64_t rows_affected = 0;

  /// Structured execution record: `result.profile().counter("task.retries")`,
  /// `result.profile().root()` for the annotated operator tree.
  obs::QueryProfile& profile() { return *profile_; }
  const obs::QueryProfile& profile() const { return *profile_; }

  // --- deprecated flat accessors ---
  // Thin shims over profile() counters, kept for one PR so out-of-tree
  // callers can migrate; new code reads the profile directly.
  bool from_result_cache() const {
    return profile_->counter(obs::qc::kFromResultCache) != 0;
  }
  int reexecutions() const {
    return static_cast<int>(profile_->counter(obs::qc::kReexecutions));
  }
  int mv_rewrites_used() const {
    return static_cast<int>(profile_->counter(obs::qc::kMvRewrites));
  }
  int64_t exec_wall_us() const { return profile_->counter(obs::qc::kWallUs); }
  int64_t exec_virtual_us() const {
    return profile_->counter(obs::qc::kVirtualUs);
  }
  int64_t task_retries() const {
    return profile_->counter(obs::qc::kTaskRetries);
  }
  int64_t speculative_tasks() const {
    return profile_->counter(obs::qc::kSpeculativeTasks);
  }
  int64_t speculative_wins() const {
    return profile_->counter(obs::qc::kSpeculativeWins);
  }

  /// Header + up to `max_rows` rows (always exactly the schema's columns,
  /// so ragged hand-built rows cannot misalign), a truncation marker, and
  /// the profile's one-line summary when the query recorded one.
  std::string ToString(size_t max_rows = 25) const;

 private:
  std::shared_ptr<obs::QueryProfile> profile_ =
      std::make_shared<obs::QueryProfile>();
};

/// HiveServer2 (Section 2): parses, plans, optimizes and executes SQL
/// statements, coordinating the metastore, transaction manager, LLAP
/// daemon, workload manager, result cache and storage handlers. Figure 2's
/// preparation pipeline maps to ExecuteSelect; DML/DDL follow their own
/// drivers.
class HiveServer2 {
 public:
  /// `fs` outlives the server. Default config applies to new sessions.
  HiveServer2(FileSystem* fs, Config config = {});

  Session* OpenSession(const std::string& application = "");

  /// Executes one SQL statement in the session.
  Result<QueryResult> Execute(Session* session, const std::string& sql);

  /// Runs a ';'-separated script, returning every statement's result in
  /// order. Fails on the first statement that errors.
  Result<std::vector<QueryResult>> ExecuteScript(Session* session,
                                                 const std::string& sql);

  /// Convenience shim over ExecuteScript for callers that only care about
  /// the final statement (DDL preambles): returns the last result, or an
  /// empty QueryResult for an empty script.
  Result<QueryResult> ExecuteScriptLast(Session* session, const std::string& sql);

  // --- component access (benchmarks / tests) ---
  Catalog* catalog() { return &catalog_; }
  TransactionManager* txns() { return &txns_; }
  LlapDaemon* llap() { return llap_.get(); }
  DroidStore* droid() { return &droid_; }
  QueryResultCache* result_cache() { return &result_cache_; }
  WorkloadManager* workload_manager() { return &wm_; }
  /// Engine-wide metrics registry (SHOW METRICS); components publish into
  /// it via push counters or snapshot-time callback gauges.
  obs::MetricsRegistry* metrics() { return &metrics_; }
  /// Process-wide memory budget every query's reservations draw from.
  MemoryGovernor* memory_governor() { return &governor_; }
  SimClock* clock() { return &clock_; }
  FileSystem* filesystem() { return fs_; }
  CompactionManager* compaction() { return &compaction_; }
  const Config& default_config() const { return default_config_; }

  /// Registers an additional storage handler (Section 6.1) alongside the
  /// built-in droid/CSV ones; referenced by CREATE TABLE ... STORED BY
  /// '<name>'. Call before queries touch tables of that handler.
  void RegisterStorageHandler(std::unique_ptr<StorageHandler> handler) {
    handlers_.Register(std::move(handler));
  }

 private:
  friend class DmlDriver;

  /// Registers snapshot-time callback gauges for every component that
  /// already keeps internal counters (LLAP cache/daemon, result cache,
  /// transaction + compaction managers); called once from the constructor.
  void RegisterEngineMetrics();

  Result<QueryResult> Dispatch(Session* session, const StatementPtr& stmt);
  /// `bypass_cache` skips the result-cache probe AND fill (EXPLAIN ANALYZE
  /// must measure a real execution).
  Result<QueryResult> ExecuteSelect(Session* session, const SelectStmt& stmt,
                                    const std::string& cache_key,
                                    bool bypass_cache = false);
  /// One planning+execution attempt; `attempt` > 0 applies the configured
  /// re-execution strategy (overlay / reoptimize with runtime stats).
  Result<QueryResult> TryExecuteSelect(Session* session, const SelectStmt& stmt,
                                       int attempt, RuntimeStats* stats,
                                       Config* attempt_config);
  Result<QueryResult> ExecuteExplain(Session* session, const ExplainStatement& stmt);
  Result<QueryResult> ExecuteDdl(Session* session, const StatementPtr& stmt);
  /// Evaluates a materialized view's definition over only the write ids
  /// added since the view's recorded snapshot (incremental maintenance).
  Result<QueryResult> ExecuteIncrementalMvQuery(Session* session,
                                                const SelectStmt& stmt,
                                                const TableDesc& view);
  Result<QueryResult> ExecuteAnalyze(Session* session, const AnalyzeTableStatement& stmt);
  Result<QueryResult> ExecuteShowMetrics();

  /// Plans a SELECT into an optimized RelNode tree (parse products in).
  Result<RelNodePtr> PlanSelect(Session* session, const SelectStmt& stmt,
                                const Config& config,
                                std::vector<std::string>* referenced_tables,
                                bool* nondeterministic,
                                const std::map<std::string, int64_t>* runtime_stats,
                                int* mv_rewrites);

  /// Builds the ExecContext for one execution.
  ExecContext MakeContext(const Config& config, const TxnSnapshot& snapshot,
                          RuntimeStats* stats,
                          std::shared_ptr<std::atomic<bool>> cancelled,
                          std::shared_ptr<KillReason> kill_reason = nullptr);

  /// True when the MV is usable for rewriting under its staleness window.
  bool MvIsFresh(const TableDesc& view) const;

  FileSystem* fs_;
  Config default_config_;
  SimClock clock_;
  Catalog catalog_;
  TransactionManager txns_;
  CompactionManager compaction_;
  std::unique_ptr<LlapDaemon> llap_;
  DroidStore droid_;
  StorageHandlerRegistry handlers_;
  QueryResultCache result_cache_;
  WorkloadManager wm_;
  obs::MetricsRegistry metrics_;
  MemoryGovernor governor_;
  std::vector<std::unique_ptr<Session>> sessions_ HIVE_GUARDED_BY(sessions_mu_);
  Mutex sessions_mu_{"server.sessions.mu"};
};

}  // namespace hive

#endif  // HIVE_SERVER_HIVE_SERVER_H_
