#include "server/connection_manager.h"

#include "fs/filesystem.h"
#include "metastore/catalog.h"
#include "obs/metrics.h"
#include "server/hive_server.h"
#include "server/result_cache.h"
#include "server/workload_manager.h"
#include "obs/metric_names.h"

namespace hive {

// --- Session ---

Status Session::BeginStatement() {
  MutexLock lock(&mu_);
  if (closed_) return Status::InvalidArgument("connection is closed");
  ++inflight_;
  return Status::OK();
}

void Session::EndStatement() {
  MutexLock lock(&mu_);
  if (--inflight_ == 0) drained_cv_.NotifyAll();
}

uint64_t Session::RegisterCancel(std::shared_ptr<std::atomic<bool>> cancelled,
                                 std::shared_ptr<KillReason> kill_reason) {
  MutexLock lock(&mu_);
  if (closed_) {
    // Teardown already swept the registration map; fire the hooks directly
    // so this statement aborts at its next interruption point.
    kill_reason->Set("session closed");
    cancelled->store(true, std::memory_order_release);
  }
  uint64_t token = next_cancel_token_++;
  cancels_[token] = {std::move(cancelled), std::move(kill_reason)};
  return token;
}

void Session::UnregisterCancel(uint64_t token) {
  MutexLock lock(&mu_);
  cancels_.erase(token);
}

bool Session::closed() const {
  MutexLock lock(&mu_);
  return closed_;
}

std::string Session::TempPhysicalName(uint64_t session_id,
                                      const std::string& name) {
  return "s" + std::to_string(session_id) + "_" + name;
}

bool Session::ResolveTempTable(std::string* db, std::string* table) const {
  if (!db->empty()) return false;
  MutexLock lock(&mu_);
  auto it = temp_tables_.find(*table);
  if (it == temp_tables_.end()) return false;
  *db = kTempDatabase;
  *table = it->second;
  return true;
}

Status Session::AddTempTable(const std::string& name,
                             const std::string& physical) {
  MutexLock lock(&mu_);
  if (!temp_tables_.emplace(name, physical).second)
    return Status::AlreadyExists("temporary table '" + name +
                                 "' already exists in this session");
  return Status::OK();
}

bool Session::RemoveTempTable(const std::string& name, std::string* physical) {
  MutexLock lock(&mu_);
  auto it = temp_tables_.find(name);
  if (it == temp_tables_.end()) return false;
  *physical = it->second;
  temp_tables_.erase(it);
  return true;
}

std::map<std::string, std::string> Session::TempTables() const {
  MutexLock lock(&mu_);
  return temp_tables_;
}

Status Session::AddPrepared(PreparedStatement stmt) {
  MutexLock lock(&mu_);
  std::string name = stmt.name;
  if (!prepared_.emplace(name, std::move(stmt)).second)
    return Status::AlreadyExists("prepared statement '" + name +
                                 "' already exists");
  return Status::OK();
}

Result<PreparedStatement> Session::GetPrepared(const std::string& name) const {
  MutexLock lock(&mu_);
  auto it = prepared_.find(name);
  if (it == prepared_.end())
    return Status::NotFound("prepared statement '" + name + "'");
  return it->second;
}

Status Session::RemovePrepared(const std::string& name) {
  MutexLock lock(&mu_);
  if (prepared_.erase(name) == 0)
    return Status::NotFound("prepared statement '" + name + "'");
  return Status::OK();
}

// --- Connection ---

Connection& Connection::operator=(Connection&& other) noexcept {
  if (this != &other) {
    if (session_) {
      // lint: allow-discard(move-assignment cannot propagate close errors)
      (void)Close();
    }
    server_ = other.server_;
    manager_ = other.manager_;
    session_ = std::move(other.session_);
    other.server_ = nullptr;
    other.manager_ = nullptr;
  }
  return *this;
}

Connection::~Connection() {
  // lint: allow-discard(destructor cannot propagate close errors)
  if (session_) (void)Close();
}

Result<QueryResult> Connection::Execute(const std::string& sql) {
  if (!session_) return Status::InvalidArgument("connection is closed");
  return server_->ExecuteOn(session_.get(), sql);
}

Result<std::vector<QueryResult>> Connection::ExecuteScript(
    const std::string& sql) {
  if (!session_) return Status::InvalidArgument("connection is closed");
  return server_->ExecuteScriptOn(session_.get(), sql);
}

bool Connection::open() const { return session_ && !session_->closed(); }

Status Connection::Close() {
  if (!session_ || !manager_) return Status::OK();
  return manager_->Close(session_);
}

// --- ConnectionManager ---

ConnectionManager::ConnectionManager(HiveServer2* server, Catalog* catalog,
                                     QueryResultCache* result_cache,
                                     FileSystem* fs, WorkloadManager* wm,
                                     obs::MetricsRegistry* metrics)
    : server_(server),
      catalog_(catalog),
      result_cache_(result_cache),
      fs_(fs),
      wm_(wm),
      metrics_(metrics) {
  opened_counter_ = metrics_->counter(obs::metric::kSessionsOpened);
  closed_counter_ = metrics_->counter(obs::metric::kSessionsClosed);
  metrics_->RegisterCallback(obs::metric::kSessionsActive,
                             [this] { return active(); });
}

std::shared_ptr<Session> ConnectionManager::MakeSession(
    const std::string& application, const Config& defaults) {
  // make_shared needs a public constructor; Session's is private to keep
  // construction inside this translation unit.
  std::shared_ptr<Session> session(new Session());
  session->application = application;
  session->config = defaults;
  session->open_defaults = defaults;
  MutexLock lock(&mu_);
  session->id = next_id_++;
  sessions_[session->id] = session;
  active_.store(static_cast<int64_t>(sessions_.size()),
                std::memory_order_relaxed);
  opened_counter_->Inc();
  return session;
}

Connection ConnectionManager::Connect(const std::string& application,
                                      const Config& defaults) {
  return Connection(server_, this, MakeSession(application, defaults));
}

Session* ConnectionManager::OpenUnowned(const std::string& application,
                                        const Config& defaults) {
  return MakeSession(application, defaults).get();
}

Status ConnectionManager::Close(const std::shared_ptr<Session>& session) {
  if (!session) return Status::OK();
  {
    MutexLock lock(&session->mu_);
    if (session->closed_) return Status::OK();  // idempotent
    session->closed_ = true;
    // Cancel everything in flight: running queries abort at their next
    // interruption point, queued admissions fail with this reason.
    for (auto& [token, hooks] : session->cancels_) {
      hooks.kill_reason->Set("session closed");
      hooks.cancelled->store(true, std::memory_order_release);
    }
    session->cancels_.clear();
  }
  // Queued admissions block on the workload manager's condvar, not on any
  // session state: kick them awake so they observe the cancellation.
  wm_->Kick();
  {
    MutexLock lock(&session->mu_);
    while (session->inflight_ > 0) session->drained_cv_.Wait(lock);
  }
  // From here no statement is running and BeginStatement rejects new ones,
  // so session state is safe to read without the session lock.
  for (const auto& [name, physical] : session->temp_tables_) {
    // lint: allow-discard(best-effort temp-table cleanup at close)
    (void)catalog_->DropTable(kTempDatabase, physical);
    result_cache_->InvalidateTable(std::string(kTempDatabase) + "." + physical);
  }
  session->temp_tables_.clear();
  session->prepared_.clear();
  if (!session->config.spill_dir.empty()) {
    // The whole session spill namespace (TryExecuteSelect spills under
    // <spill_dir>/s<sid>/q<qid>) goes at once; per-query teardown already
    // removed the common case.
    // lint: allow-discard(best-effort spill cleanup at close)
    (void)fs_->DeleteRecursive(session->config.spill_dir + "/s" +
                               std::to_string(session->id));
  }
  closed_counter_->Inc();
  MutexLock lock(&mu_);
  sessions_.erase(session->id);
  active_.store(static_cast<int64_t>(sessions_.size()),
                std::memory_order_relaxed);
  return Status::OK();
}

void ConnectionManager::CloseAll() {
  std::vector<std::shared_ptr<Session>> remaining;
  {
    MutexLock lock(&mu_);
    for (auto& [id, session] : sessions_) remaining.push_back(session);
  }
  for (const std::shared_ptr<Session>& session : remaining) {
    // lint: allow-discard(shutdown path; Close only errors on null session)
    (void)Close(session);
  }
}

}  // namespace hive
