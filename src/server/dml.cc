#include "server/dml.h"

#include <map>
#include <set>

#include "common/hash.h"
#include "optimizer/expr_eval.h"

namespace hive {

namespace {

/// Per-location ACID writers for one transaction.
class TxnWriters {
 public:
  TxnWriters(FileSystem* fs, const Schema& schema, int64_t write_id)
      : fs_(fs), schema_(schema), write_id_(write_id) {}

  AcidWriter* ForLocation(const std::string& location) {
    auto it = writers_.find(location);
    if (it == writers_.end()) {
      it = writers_
               .emplace(location, std::make_unique<AcidWriter>(fs_, location, schema_,
                                                               write_id_))
               .first;
    }
    return it->second.get();
  }

  Status CommitAll() {
    for (auto& [location, writer] : writers_)
      HIVE_RETURN_IF_ERROR(writer->Commit());
    return Status::OK();
  }

 private:
  FileSystem* fs_;
  Schema schema_;
  int64_t write_id_;
  std::map<std::string, std::unique_ptr<AcidWriter>> writers_;
};

}  // namespace

TableStatistics DmlDriver::ComputeStats(const Schema& schema,
                                        const std::vector<std::vector<Value>>& rows) {
  TableStatistics stats;
  stats.row_count = static_cast<int64_t>(rows.size());
  for (size_t c = 0; c < schema.num_fields(); ++c) {
    ColumnStatistics col;
    for (const auto& row : rows) {
      if (c >= row.size()) continue;
      ++col.num_values;
      if (row[c].is_null()) {
        ++col.num_nulls;
        continue;
      }
      if (col.min.is_null() || Value::Compare(row[c], col.min) < 0) col.min = row[c];
      if (col.max.is_null() || Value::Compare(row[c], col.max) > 0) col.max = row[c];
      col.ndv.Add(row[c]);
    }
    stats.columns[ToLower(schema.field(c).name)] = std::move(col);
  }
  return stats;
}

Result<QueryResult> DmlDriver::RunSelect(const SelectStmt& stmt) {
  Config config = server_->EffectiveConfig(session_);
  RuntimeStats stats;
  return server_->TryExecuteSelect(session_, stmt, 0, &stats, &config,
                                   /*use_plan_cache=*/false);
}

std::pair<std::string, std::string> DmlDriver::ResolveTarget(
    const std::string& db, const std::string& table) const {
  std::string out_db = db;
  std::string out_table = table;
  if (out_db.empty()) {
    session_->ResolveTempTable(&out_db, &out_table);
    if (out_db.empty()) out_db = session_->database;
  }
  return {out_db, out_table};
}

Result<QueryResult> DmlDriver::CreateTable(const CreateTableStatement& stmt) {
  if (stmt.temporary) {
    // Session temp table: physically a normal table in the hidden temp
    // database under a session-mangled name, registered with the session
    // so unqualified references resolve to it and close drops it.
    if (!stmt.db.empty())
      return Status::InvalidArgument(
          "TEMPORARY tables cannot be database-qualified");
    CreateTableStatement physical = stmt;
    physical.temporary = false;
    physical.db = kTempDatabase;
    physical.table = Session::TempPhysicalName(session_->id, stmt.table);
    HIVE_RETURN_IF_ERROR(session_->AddTempTable(stmt.table, physical.table));
    auto result = CreateTable(physical);
    if (!result.ok()) {
      std::string unused;
      // lint: allow-discard(undoing the registration we just made)
      (void)session_->RemoveTempTable(stmt.table, &unused);
    }
    return result;
  }
  TableDesc desc;
  desc.db = stmt.db.empty() ? session_->database : stmt.db;
  desc.name = stmt.table;
  for (const ColumnDef& col : stmt.columns) desc.schema.AddField(col.name, col.type);
  for (const ColumnDef& col : stmt.partition_columns)
    desc.partition_cols.push_back({col.name, col.type});
  desc.storage_handler = stmt.stored_by;
  desc.properties = stmt.properties;
  desc.is_acid = stmt.stored_by.empty() && !stmt.external;
  if (stmt.properties.count("transactional") &&
      stmt.properties.at("transactional") == "false")
    desc.is_acid = false;
  for (const auto& constraint : stmt.constraints) {
    ConstraintDef def;
    switch (constraint.kind) {
      case CreateTableStatement::Constraint::Kind::kPrimaryKey:
        def.kind = ConstraintDef::Kind::kPrimaryKey;
        break;
      case CreateTableStatement::Constraint::Kind::kForeignKey:
        def.kind = ConstraintDef::Kind::kForeignKey;
        break;
      case CreateTableStatement::Constraint::Kind::kUnique:
        def.kind = ConstraintDef::Kind::kUnique;
        break;
      case CreateTableStatement::Constraint::Kind::kNotNull:
        def.kind = ConstraintDef::Kind::kNotNull;
        break;
    }
    def.columns = constraint.columns;
    def.ref_table = constraint.ref_table;
    def.ref_columns = constraint.ref_columns;
    desc.constraints.push_back(std::move(def));
  }

  // CTAS: derive missing columns from the query output.
  std::vector<std::vector<Value>> ctas_rows;
  if (stmt.as_select) {
    HIVE_ASSIGN_OR_RETURN(QueryResult source, RunSelect(*stmt.as_select));
    if (desc.schema.num_fields() == 0) desc.schema = source.schema;
    ctas_rows = std::move(source.rows);
  }

  // Metastore hook for storage handlers (may infer the schema).
  if (!desc.storage_handler.empty()) {
    StorageHandler* handler = server_->handlers_.Get(desc.storage_handler);
    if (!handler)
      return Status::NotSupported("unknown storage handler: " + desc.storage_handler);
    HIVE_RETURN_IF_ERROR(handler->OnCreateTable(&desc));
  }

  Status status = server_->catalog_.CreateTable(desc);
  if (!status.ok()) {
    if (stmt.if_not_exists && status.code() == StatusCode::kAlreadyExists)
      return QueryResult{};
    return status;
  }
  if (!ctas_rows.empty()) {
    HIVE_ASSIGN_OR_RETURN(TableDesc created,
                          server_->catalog_.GetTable(desc.db, desc.name));
    int64_t txn = server_->txns_.OpenTxn();
    auto inserted = InsertRows(created, ctas_rows, txn);
    if (!inserted.ok()) {
      // lint: allow-discard(best-effort abort while propagating the original error)
    (void)server_->txns_.AbortTxn(txn);
      return inserted.status();
    }
    HIVE_RETURN_IF_ERROR(server_->txns_.CommitTxn(txn));
  }
  return QueryResult{};
}

Result<int64_t> DmlDriver::InsertRows(const TableDesc& desc,
                                      const std::vector<std::vector<Value>>& rows,
                                      int64_t txn) {
  // External tables route through their handler's output format.
  if (!desc.storage_handler.empty()) {
    StorageHandler* handler = server_->handlers_.Get(desc.storage_handler);
    if (!handler)
      return Status::NotSupported("unknown storage handler: " + desc.storage_handler);
    RowBatch batch(desc.FullSchema());
    for (const auto& row : rows)
      for (size_t c = 0; c < batch.num_columns(); ++c)
        batch.column(c)->AppendValue(c < row.size() ? row[c] : Value::Null());
    batch.set_num_rows(rows.size());
    HIVE_RETURN_IF_ERROR(handler->Insert(desc, batch));
    return static_cast<int64_t>(rows.size());
  }

  HIVE_ASSIGN_OR_RETURN(int64_t write_id,
                        server_->txns_.AllocateWriteId(txn, desc.FullName()));
  size_t data_width = desc.schema.num_fields();
  TxnWriters writers(server_->fs_, desc.schema, write_id);
  std::map<std::string, std::vector<Value>> new_partitions;

  for (const auto& row : rows) {
    std::string location = desc.location;
    std::string resource = desc.FullName();
    if (desc.IsPartitioned()) {
      std::vector<Value> part_values(row.begin() + data_width, row.end());
      std::string dir = Catalog::PartitionDirName(desc.partition_cols, part_values);
      location = JoinPath(desc.location, dir);
      resource += "/" + dir;
      new_partitions.emplace(dir, part_values);
    }
    HIVE_RETURN_IF_ERROR(
        server_->txns_.RecordWriteSet(txn, resource, WriteOpKind::kInsert));
    HIVE_RETURN_IF_ERROR(
        server_->txns_.AcquireLock(txn, resource, LockMode::kShared));
    std::vector<Value> data_row(row.begin(), row.begin() + std::min(row.size(),
                                                                    data_width));
    writers.ForLocation(location)->Insert(data_row);
  }
  for (const auto& [dir, values] : new_partitions)
    HIVE_RETURN_IF_ERROR(server_->catalog_.AddPartition(desc.db, desc.name, values));
  HIVE_RETURN_IF_ERROR(writers.CommitAll());

  // Statistics merge additively (Section 4.1).
  TableStatistics stats = ComputeStats(desc.FullSchema(), rows);
  HIVE_RETURN_IF_ERROR(server_->catalog_.MergeStats(desc.db, desc.name, stats));
  return static_cast<int64_t>(rows.size());
}

Result<QueryResult> DmlDriver::Insert(const InsertStatement& stmt) {
  auto [db, table] = ResolveTarget(stmt.db, stmt.table);
  HIVE_ASSIGN_OR_RETURN(TableDesc desc, server_->catalog_.GetTable(db, table));
  Schema full = desc.FullSchema();

  // Gather source rows.
  std::vector<std::vector<Value>> rows;
  if (stmt.source) {
    HIVE_ASSIGN_OR_RETURN(QueryResult source, RunSelect(*stmt.source));
    rows = std::move(source.rows);
  } else {
    for (const auto& exprs : stmt.values_rows) {
      std::vector<Value> row;
      for (const ExprPtr& e : exprs) {
        // VALUES rows are literal expressions (fold with the evaluator).
        Config config = server_->EffectiveConfig(session_);
        Binder binder(&server_->catalog_, &config, session_->database);
        binder.set_table_resolver(server_->TempResolver(session_));
        HIVE_ASSIGN_OR_RETURN(ExprPtr bound, binder.BindScalar(e, Schema(), ""));
        HIVE_ASSIGN_OR_RETURN(Value v, EvalExpr(*bound, nullptr));
        row.push_back(std::move(v));
      }
      rows.push_back(std::move(row));
    }
  }

  // Column-list reordering and cast to declared types.
  std::vector<int> target_index(full.num_fields(), -1);
  if (!stmt.columns.empty()) {
    for (size_t i = 0; i < stmt.columns.size(); ++i) {
      auto idx = full.IndexOf(stmt.columns[i]);
      if (!idx) return Status::PlanError("unknown column " + stmt.columns[i]);
      target_index[*idx] = static_cast<int>(i);
    }
  }
  std::vector<std::vector<Value>> shaped;
  shaped.reserve(rows.size());
  for (const auto& row : rows) {
    std::vector<Value> out(full.num_fields(), Value::Null());
    for (size_t c = 0; c < full.num_fields(); ++c) {
      int src = stmt.columns.empty() ? static_cast<int>(c) : target_index[c];
      if (src < 0 || static_cast<size_t>(src) >= row.size()) continue;
      auto cast = row[src].CastTo(full.field(c).type);
      out[c] = cast.ok() ? *cast : Value::Null();
    }
    // NOT NULL constraint enforcement.
    for (const ConstraintDef& constraint : desc.constraints) {
      if (constraint.kind != ConstraintDef::Kind::kNotNull) continue;
      for (const std::string& column : constraint.columns) {
        auto idx = full.IndexOf(column);
        if (idx && out[*idx].is_null())
          return Status::InvalidArgument("NOT NULL constraint violated on " + column);
      }
    }
    shaped.push_back(std::move(out));
  }

  int64_t txn = server_->txns_.OpenTxn();
  auto inserted = InsertRows(desc, shaped, txn);
  if (!inserted.ok()) {
    // lint: allow-discard(best-effort abort while propagating the original error)
    (void)server_->txns_.AbortTxn(txn);
    return inserted.status();
  }
  HIVE_RETURN_IF_ERROR(server_->txns_.CommitTxn(txn));
  // Automatic compaction check (Section 3.2). Post-commit and advisory:
  // the insert already committed, and a failed check simply retries after
  // the next write surpasses the thresholds again.
  if (desc.is_acid) {
    // lint: allow-discard(post-commit compaction is advisory)
    (void)server_->compaction_.MaybeCompact(db, table);
  }
  QueryResult result;
  result.rows_affected = *inserted;
  return result;
}

Result<std::vector<DmlDriver::TargetRow>> DmlDriver::ScanTargets(
    const TableDesc& desc, const ExprPtr& bound_where) {
  std::vector<TargetRow> out;
  Schema full = desc.FullSchema();
  size_t data_width = desc.schema.num_fields();

  struct Location {
    std::string path;
    std::string resource;
    std::vector<Value> part_values;
  };
  std::vector<Location> locations;
  if (desc.IsPartitioned()) {
    HIVE_ASSIGN_OR_RETURN(std::vector<PartitionInfo> parts,
                          server_->catalog_.GetPartitions(desc.db, desc.name));
    for (const PartitionInfo& p : parts) {
      std::string dir = Catalog::PartitionDirName(desc.partition_cols, p.values);
      locations.push_back({p.location, desc.FullName() + "/" + dir, p.values});
    }
  } else {
    locations.push_back({desc.location, desc.FullName(), {}});
  }

  // Hold a reader scope so compaction cleaning defers until this target
  // scan drains (UPDATE/DELETE race post-write compactions from peers).
  CompactionManager::ReadScope read_scope(&server_->compaction_);
  TxnSnapshot snapshot = server_->txns_.GetSnapshot();
  ValidWriteIdList write_ids =
      server_->txns_.GetValidWriteIds(desc.FullName(), snapshot);

  for (const Location& location : locations) {
    AcidReader reader(server_->fs_, location.path, desc.schema);
    AcidScanOptions options;
    options.include_row_ids = true;
    HIVE_RETURN_IF_ERROR(reader.Open(write_ids, options));
    bool done = false;
    for (;;) {
      HIVE_ASSIGN_OR_RETURN(RowBatch batch, reader.NextBatch(&done));
      if (done) break;
      for (size_t i = 0; i < batch.SelectedSize(); ++i) {
        int32_t row = batch.SelectedRow(i);
        TargetRow target;
        target.location = location.path;
        target.resource = location.resource;
        target.values.reserve(full.num_fields());
        for (size_t c = 0; c < data_width; ++c)
          target.values.push_back(batch.column(c)->GetValue(row));
        for (const Value& v : location.part_values) target.values.push_back(v);
        target.id.write_id = batch.column(data_width)->GetI64(row);
        target.id.bucket = batch.column(data_width + 1)->GetI64(row);
        target.id.row_id = batch.column(data_width + 2)->GetI64(row);
        if (bound_where) {
          HIVE_ASSIGN_OR_RETURN(Value keep, EvalExpr(*bound_where, &target.values));
          if (!IsTrue(keep)) continue;
        }
        out.push_back(std::move(target));
      }
    }
  }
  return out;
}

Result<QueryResult> DmlDriver::Update(const UpdateStatement& stmt) {
  auto [db, table] = ResolveTarget(stmt.db, stmt.table);
  HIVE_ASSIGN_OR_RETURN(TableDesc desc, server_->catalog_.GetTable(db, table));
  if (!desc.is_acid)
    return Status::NotSupported("UPDATE requires a transactional table");
  Schema full = desc.FullSchema();
  Config config = server_->EffectiveConfig(session_);
  Binder binder(&server_->catalog_, &config, session_->database);
  binder.set_table_resolver(server_->TempResolver(session_));

  ExprPtr bound_where;
  if (stmt.where) {
    HIVE_ASSIGN_OR_RETURN(bound_where, binder.BindScalar(stmt.where, full, desc.name));
  }
  std::vector<std::pair<size_t, ExprPtr>> assignments;
  for (const auto& [column, expr] : stmt.assignments) {
    auto idx = full.IndexOf(column);
    if (!idx) return Status::PlanError("unknown column " + column);
    if (*idx >= desc.schema.num_fields())
      return Status::NotSupported("cannot UPDATE a partition column");
    HIVE_ASSIGN_OR_RETURN(ExprPtr bound, binder.BindScalar(expr, full, desc.name));
    assignments.push_back({*idx, bound});
  }

  // Update = delete + insert in one transaction (Section 3.2). The txn must
  // open BEFORE targets are scanned: first-commit-wins compares conflicting
  // commits against the txn's start sequence, so a read performed before the
  // start would let a peer's commit slip between read and open undetected.
  int64_t txn = server_->txns_.OpenTxn();
  auto targets_or = ScanTargets(desc, bound_where);
  if (!targets_or.ok()) {
    // lint: allow-discard(best-effort abort while propagating the original error)
    (void)server_->txns_.AbortTxn(txn);
    return targets_or.status();
  }
  std::vector<TargetRow> targets = std::move(*targets_or);
  auto apply = [&]() -> Status {
    HIVE_ASSIGN_OR_RETURN(int64_t write_id,
                          server_->txns_.AllocateWriteId(txn, desc.FullName()));
    TxnWriters writers(server_->fs_, desc.schema, write_id);
    for (const TargetRow& target : targets) {
      HIVE_RETURN_IF_ERROR(server_->txns_.RecordWriteSet(txn, target.resource,
                                                         WriteOpKind::kUpdateDelete));
      HIVE_RETURN_IF_ERROR(
          server_->txns_.AcquireLock(txn, target.resource, LockMode::kShared));
      AcidWriter* writer = writers.ForLocation(target.location);
      writer->Delete(target.id);
      std::vector<Value> new_row(target.values.begin(),
                                 target.values.begin() + desc.schema.num_fields());
      for (const auto& [ordinal, expr] : assignments) {
        HIVE_ASSIGN_OR_RETURN(Value v, EvalExpr(*expr, &target.values));
        auto cast = v.CastTo(full.field(ordinal).type);
        new_row[ordinal] = cast.ok() ? *cast : Value::Null();
      }
      writer->Insert(new_row);
    }
    return writers.CommitAll();
  };
  Status status = apply();
  if (!status.ok()) {
    // lint: allow-discard(best-effort abort while propagating the original error)
    (void)server_->txns_.AbortTxn(txn);
    return status;
  }
  HIVE_RETURN_IF_ERROR(server_->txns_.CommitTxn(txn));
  QueryResult result;
  result.rows_affected = static_cast<int64_t>(targets.size());
  if (desc.is_acid) {
    // lint: allow-discard(post-commit compaction is advisory)
    (void)server_->compaction_.MaybeCompact(db, table);
  }
  return result;
}

Result<QueryResult> DmlDriver::Delete(const DeleteStatement& stmt) {
  auto [db, table] = ResolveTarget(stmt.db, stmt.table);
  HIVE_ASSIGN_OR_RETURN(TableDesc desc, server_->catalog_.GetTable(db, table));
  if (!desc.is_acid)
    return Status::NotSupported("DELETE requires a transactional table");
  Config config = server_->EffectiveConfig(session_);
  Binder binder(&server_->catalog_, &config, session_->database);
  binder.set_table_resolver(server_->TempResolver(session_));
  ExprPtr bound_where;
  if (stmt.where) {
    HIVE_ASSIGN_OR_RETURN(bound_where,
                          binder.BindScalar(stmt.where, desc.FullSchema(), desc.name));
  }
  // As in Update: open before reading so conflicting commits are detected.
  int64_t txn = server_->txns_.OpenTxn();
  auto targets_or = ScanTargets(desc, bound_where);
  if (!targets_or.ok()) {
    // lint: allow-discard(best-effort abort while propagating the original error)
    (void)server_->txns_.AbortTxn(txn);
    return targets_or.status();
  }
  std::vector<TargetRow> targets = std::move(*targets_or);
  auto apply = [&]() -> Status {
    HIVE_ASSIGN_OR_RETURN(int64_t write_id,
                          server_->txns_.AllocateWriteId(txn, desc.FullName()));
    TxnWriters writers(server_->fs_, desc.schema, write_id);
    for (const TargetRow& target : targets) {
      HIVE_RETURN_IF_ERROR(server_->txns_.RecordWriteSet(txn, target.resource,
                                                         WriteOpKind::kUpdateDelete));
      HIVE_RETURN_IF_ERROR(
          server_->txns_.AcquireLock(txn, target.resource, LockMode::kShared));
      writers.ForLocation(target.location)->Delete(target.id);
    }
    return writers.CommitAll();
  };
  Status status = apply();
  if (!status.ok()) {
    // lint: allow-discard(best-effort abort while propagating the original error)
    (void)server_->txns_.AbortTxn(txn);
    return status;
  }
  HIVE_RETURN_IF_ERROR(server_->txns_.CommitTxn(txn));
  QueryResult result;
  result.rows_affected = static_cast<int64_t>(targets.size());
  // lint: allow-discard(post-commit compaction is advisory)
  (void)server_->compaction_.MaybeCompact(db, table);
  return result;
}

Result<QueryResult> DmlDriver::Merge(const MergeStatement& stmt) {
  auto [db, table] = ResolveTarget(stmt.db, stmt.table);
  HIVE_ASSIGN_OR_RETURN(TableDesc desc, server_->catalog_.GetTable(db, table));
  if (!desc.is_acid)
    return Status::NotSupported("MERGE requires a transactional table");
  Schema target_schema = desc.FullSchema();
  std::string target_alias =
      stmt.target_alias.empty() ? desc.name : stmt.target_alias;

  // Materialize the source.
  SelectStmt source_query;
  auto core_body = std::make_shared<QueryExpr>();
  core_body->op = SetOpKind::kNone;
  SelectItem star;
  auto star_expr = std::make_shared<Expr>();
  star_expr->kind = ExprKind::kStar;
  star.expr = star_expr;
  core_body->core.items.push_back(star);
  core_body->core.from = stmt.source;
  source_query.body = core_body;
  HIVE_ASSIGN_OR_RETURN(QueryResult source, RunSelect(source_query));
  const Schema& source_schema = source.schema;
  std::string source_alias = stmt.source->alias;

  Config config = server_->EffectiveConfig(session_);
  Binder binder(&server_->catalog_, &config, session_->database);
  binder.set_table_resolver(server_->TempResolver(session_));
  std::vector<std::pair<std::string, Schema>> scopes = {
      {target_alias, target_schema}, {source_alias, source_schema}};
  HIVE_ASSIGN_OR_RETURN(ExprPtr on, binder.BindAgainst(stmt.on, scopes));

  ExprPtr matched_update_cond, matched_delete_cond;
  std::vector<std::pair<size_t, ExprPtr>> assignments;
  if (stmt.has_matched_update) {
    for (const auto& [column, expr] : stmt.matched_assignments) {
      auto idx = target_schema.IndexOf(column);
      if (!idx) return Status::PlanError("unknown column " + column);
      HIVE_ASSIGN_OR_RETURN(ExprPtr bound, binder.BindAgainst(expr, scopes));
      assignments.push_back({*idx, bound});
    }
    if (stmt.matched_update_condition) {
      HIVE_ASSIGN_OR_RETURN(matched_update_cond,
                            binder.BindAgainst(stmt.matched_update_condition, scopes));
    }
  }
  if (stmt.has_matched_delete && stmt.matched_delete_condition) {
    HIVE_ASSIGN_OR_RETURN(matched_delete_cond,
                          binder.BindAgainst(stmt.matched_delete_condition, scopes));
  }
  std::vector<ExprPtr> insert_values;
  for (const ExprPtr& e : stmt.insert_values) {
    HIVE_ASSIGN_OR_RETURN(ExprPtr bound, binder.BindAgainst(e, scopes));
    insert_values.push_back(bound);
  }

  // As in Update: open before reading so conflicting commits are detected.
  int64_t txn = server_->txns_.OpenTxn();
  auto targets_or = ScanTargets(desc, nullptr);
  if (!targets_or.ok()) {
    // lint: allow-discard(best-effort abort while propagating the original error)
    (void)server_->txns_.AbortTxn(txn);
    return targets_or.status();
  }
  std::vector<TargetRow> targets = std::move(*targets_or);
  int64_t affected = 0;
  auto apply = [&]() -> Status {
    HIVE_ASSIGN_OR_RETURN(int64_t write_id,
                          server_->txns_.AllocateWriteId(txn, desc.FullName()));
    TxnWriters writers(server_->fs_, desc.schema, write_id);
    std::vector<bool> source_matched(source.rows.size(), false);
    size_t target_width = target_schema.num_fields();

    for (const TargetRow& target : targets) {
      for (size_t s = 0; s < source.rows.size(); ++s) {
        std::vector<Value> combined = target.values;
        combined.insert(combined.end(), source.rows[s].begin(), source.rows[s].end());
        HIVE_ASSIGN_OR_RETURN(Value match, EvalExpr(*on, &combined));
        if (!IsTrue(match)) continue;
        source_matched[s] = true;
        // WHEN MATCHED: delete first (Hive evaluates clauses in order; this
        // engine applies DELETE before UPDATE when both match).
        if (stmt.has_matched_delete) {
          bool do_delete = true;
          if (matched_delete_cond) {
            HIVE_ASSIGN_OR_RETURN(Value v, EvalExpr(*matched_delete_cond, &combined));
            do_delete = IsTrue(v);
          }
          if (do_delete) {
            HIVE_RETURN_IF_ERROR(server_->txns_.RecordWriteSet(
                txn, target.resource, WriteOpKind::kUpdateDelete));
            writers.ForLocation(target.location)->Delete(target.id);
            ++affected;
            break;
          }
        }
        if (stmt.has_matched_update) {
          bool do_update = true;
          if (matched_update_cond) {
            HIVE_ASSIGN_OR_RETURN(Value v, EvalExpr(*matched_update_cond, &combined));
            do_update = IsTrue(v);
          }
          if (do_update) {
            HIVE_RETURN_IF_ERROR(server_->txns_.RecordWriteSet(
                txn, target.resource, WriteOpKind::kUpdateDelete));
            AcidWriter* writer = writers.ForLocation(target.location);
            writer->Delete(target.id);
            std::vector<Value> new_row(target.values.begin(),
                                       target.values.begin() + desc.schema.num_fields());
            for (const auto& [ordinal, expr] : assignments) {
              HIVE_ASSIGN_OR_RETURN(Value v, EvalExpr(*expr, &combined));
              auto cast = v.CastTo(target_schema.field(ordinal).type);
              new_row[ordinal] = cast.ok() ? *cast : Value::Null();
            }
            writer->Insert(new_row);
            ++affected;
            break;
          }
        }
        break;  // matched; only first match acts
      }
    }

    // WHEN NOT MATCHED THEN INSERT.
    if (stmt.has_not_matched_insert) {
      std::vector<std::vector<Value>> inserts;
      for (size_t s = 0; s < source.rows.size(); ++s) {
        if (source_matched[s]) continue;
        std::vector<Value> combined(target_width, Value::Null());
        combined.insert(combined.end(), source.rows[s].begin(), source.rows[s].end());
        std::vector<Value> row;
        for (size_t i = 0; i < insert_values.size(); ++i) {
          HIVE_ASSIGN_OR_RETURN(Value v, EvalExpr(*insert_values[i], &combined));
          auto cast = i < target_schema.num_fields()
                          ? v.CastTo(target_schema.field(i).type)
                          : Result<Value>(v);
          row.push_back(cast.ok() ? *cast : Value::Null());
        }
        inserts.push_back(std::move(row));
        ++affected;
      }
      if (!inserts.empty()) {
        // Route through the shared insert machinery (handles partitions).
        size_t data_width = desc.schema.num_fields();
        std::map<std::string, std::vector<Value>> new_partitions;
        for (const auto& row : inserts) {
          std::string location = desc.location;
          std::string resource = desc.FullName();
          if (desc.IsPartitioned()) {
            std::vector<Value> part_values(row.begin() + data_width, row.end());
            std::string dir =
                Catalog::PartitionDirName(desc.partition_cols, part_values);
            location = JoinPath(desc.location, dir);
            resource += "/" + dir;
            new_partitions.emplace(dir, part_values);
          }
          HIVE_RETURN_IF_ERROR(
              server_->txns_.RecordWriteSet(txn, resource, WriteOpKind::kInsert));
          std::vector<Value> data_row(row.begin(), row.begin() + data_width);
          writers.ForLocation(location)->Insert(data_row);
        }
        for (const auto& [dir, values] : new_partitions)
          HIVE_RETURN_IF_ERROR(
              server_->catalog_.AddPartition(desc.db, desc.name, values));
      }
    }
    return writers.CommitAll();
  };
  Status status = apply();
  if (!status.ok()) {
    // lint: allow-discard(best-effort abort while propagating the original error)
    (void)server_->txns_.AbortTxn(txn);
    return status;
  }
  HIVE_RETURN_IF_ERROR(server_->txns_.CommitTxn(txn));
  QueryResult result;
  result.rows_affected = affected;
  // lint: allow-discard(post-commit compaction is advisory)
  (void)server_->compaction_.MaybeCompact(db, table);
  return result;
}

Result<QueryResult> DmlDriver::CreateMaterializedView(
    const CreateMaterializedViewStatement& stmt) {
  std::string db = stmt.db.empty() ? session_->database : stmt.db;
  // Materialize the definition.
  HIVE_ASSIGN_OR_RETURN(QueryResult rows, RunSelect(*stmt.query));

  // Referenced tables + current snapshot for staleness tracking.
  Config config = server_->EffectiveConfig(session_);
  Binder binder(&server_->catalog_, &config, session_->database);
  binder.set_table_resolver(server_->TempResolver(session_));
  HIVE_RETURN_IF_ERROR(binder.BindSelect(*stmt.query).status());

  TableDesc desc;
  desc.db = db;
  desc.name = stmt.name;
  desc.schema = rows.schema;
  desc.is_materialized_view = true;
  desc.view_sql = stmt.query->ToString();
  desc.view_ast = stmt.query;
  desc.properties = stmt.properties;
  auto window = stmt.properties.find("rewriting.time.window");
  if (window != stmt.properties.end())
    desc.mv_staleness_window_us =
        std::strtoll(window->second.c_str(), nullptr, 10) * 1000000LL;
  for (const std::string& table : binder.referenced_tables()) {
    desc.mv_source_snapshot[table] = server_->txns_.TableWriteIdHighWatermark(table);
    desc.mv_source_upd_counts[table] = server_->txns_.UpdateDeleteCount(table);
  }
  desc.mv_last_rebuild_us = SimClock::WallMicros();
  HIVE_RETURN_IF_ERROR(server_->catalog_.CreateTable(desc));
  HIVE_ASSIGN_OR_RETURN(TableDesc created, server_->catalog_.GetTable(db, stmt.name));
  created.is_materialized_view = true;
  created.view_sql = desc.view_sql;
  created.view_ast = desc.view_ast;
  created.mv_source_snapshot = desc.mv_source_snapshot;
  created.mv_source_upd_counts = desc.mv_source_upd_counts;
  created.mv_staleness_window_us = desc.mv_staleness_window_us;
  created.mv_last_rebuild_us = desc.mv_last_rebuild_us;
  HIVE_RETURN_IF_ERROR(server_->catalog_.UpdateTable(created));

  int64_t txn = server_->txns_.OpenTxn();
  auto inserted = InsertRows(created, rows.rows, txn);
  if (!inserted.ok()) {
    // lint: allow-discard(best-effort abort while propagating the original error)
    (void)server_->txns_.AbortTxn(txn);
    return inserted.status();
  }
  HIVE_RETURN_IF_ERROR(server_->txns_.CommitTxn(txn));
  QueryResult result;
  result.rows_affected = *inserted;
  return result;
}

Result<QueryResult> DmlDriver::RebuildMaterializedView(
    const AlterMaterializedViewRebuildStatement& stmt) {
  std::string db = stmt.db.empty() ? session_->database : stmt.db;
  HIVE_ASSIGN_OR_RETURN(TableDesc view, server_->catalog_.GetTable(db, stmt.name));
  if (!view.is_materialized_view)
    return Status::InvalidArgument(stmt.name + " is not a materialized view");
  HIVE_ASSIGN_OR_RETURN(StatementPtr parsed, Parser::Parse(view.view_sql));
  auto* select = dynamic_cast<SelectStatement*>(parsed.get());
  if (!select) return Status::Internal("bad view definition");

  // Incremental eligibility: definition is SPJ (no aggregate in the plan)
  // and every source only saw INSERTs since the last rebuild.
  Config config = server_->EffectiveConfig(session_);
  Binder binder(&server_->catalog_, &config, db);
  HIVE_ASSIGN_OR_RETURN(RelNodePtr bound, binder.BindSelect(select->select));
  std::function<bool(const RelNodePtr&)> has_agg = [&](const RelNodePtr& node) {
    if (node->kind == RelKind::kAggregate) return true;
    for (const RelNodePtr& input : node->inputs)
      if (has_agg(input)) return true;
    return false;
  };
  bool inserts_only = true;
  for (const auto& [table, count] : view.mv_source_upd_counts)
    if (server_->txns_.UpdateDeleteCount(table) != count) inserts_only = false;
  bool incremental = inserts_only && !has_agg(bound);

  QueryResult result;
  if (incremental) {
    // Incremental maintenance: evaluate the definition over the delta
    // snapshot — only write ids above the recorded high watermark — and
    // append the result (the INSERT path of Section 4.4).
    HIVE_ASSIGN_OR_RETURN(
        QueryResult delta,
        server_->ExecuteIncrementalMvQuery(session_, select->select, view));
    result.rows_affected = static_cast<int64_t>(delta.rows.size());
    if (!delta.rows.empty()) {
      int64_t txn = server_->txns_.OpenTxn();
      auto inserted = InsertRows(view, delta.rows, txn);
      if (!inserted.ok()) {
        // lint: allow-discard(best-effort abort while propagating the original error)
    (void)server_->txns_.AbortTxn(txn);
        return inserted.status();
      }
      HIVE_RETURN_IF_ERROR(server_->txns_.CommitTxn(txn));
    }
  } else {
    // Full rebuild: recompute under an exclusive lock and replace contents.
    int64_t txn = server_->txns_.OpenTxn();
    Status lock = server_->txns_.AcquireLock(txn, view.FullName(), LockMode::kExclusive);
    if (!lock.ok()) {
      // lint: allow-discard(best-effort abort while propagating the original error)
    (void)server_->txns_.AbortTxn(txn);
      return lock;
    }
    HIVE_ASSIGN_OR_RETURN(QueryResult rows, RunSelect(select->select));
    HIVE_RETURN_IF_ERROR(server_->fs_->DeleteRecursive(view.location));
    HIVE_RETURN_IF_ERROR(server_->fs_->MakeDirs(view.location));
    TableDesc reset = view;
    reset.stats = TableStatistics{};
    HIVE_RETURN_IF_ERROR(server_->catalog_.UpdateTable(reset));
    auto inserted = InsertRows(view, rows.rows, txn);
    if (!inserted.ok()) {
      // lint: allow-discard(best-effort abort while propagating the original error)
    (void)server_->txns_.AbortTxn(txn);
      return inserted.status();
    }
    HIVE_RETURN_IF_ERROR(server_->txns_.CommitTxn(txn));
    result.rows_affected = *inserted;
  }

  // Refresh the staleness bookkeeping.
  HIVE_ASSIGN_OR_RETURN(TableDesc updated, server_->catalog_.GetTable(db, stmt.name));
  for (auto& [table, hwm] : updated.mv_source_snapshot)
    hwm = server_->txns_.TableWriteIdHighWatermark(table);
  for (auto& [table, count] : updated.mv_source_upd_counts)
    count = server_->txns_.UpdateDeleteCount(table);
  updated.mv_last_rebuild_us = SimClock::WallMicros();
  HIVE_RETURN_IF_ERROR(server_->catalog_.UpdateTable(updated));
  return result;
}

Result<QueryResult> DmlDriver::Analyze(const AnalyzeTableStatement& stmt) {
  auto [db, table] = ResolveTarget(stmt.db, stmt.table);
  HIVE_ASSIGN_OR_RETURN(TableDesc desc, server_->catalog_.GetTable(db, table));
  // Recompute statistics with a full scan of the table.
  SelectStmt query;
  auto body = std::make_shared<QueryExpr>();
  body->op = SetOpKind::kNone;
  SelectItem star;
  auto star_expr = std::make_shared<Expr>();
  star_expr->kind = ExprKind::kStar;
  star.expr = star_expr;
  body->core.items.push_back(star);
  auto from = std::make_shared<TableRef>();
  from->kind = TableRef::Kind::kTable;
  from->db = db;
  from->table = stmt.table;
  from->alias = stmt.table;
  body->core.from = from;
  query.body = body;
  HIVE_ASSIGN_OR_RETURN(QueryResult rows, RunSelect(query));

  HIVE_ASSIGN_OR_RETURN(TableDesc updated, server_->catalog_.GetTable(db, table));
  updated.stats = ComputeStats(desc.FullSchema(), rows.rows);
  HIVE_RETURN_IF_ERROR(server_->catalog_.UpdateTable(updated));
  QueryResult result;
  result.rows_affected = static_cast<int64_t>(rows.rows.size());
  return result;
}

}  // namespace hive
