#include "server/query_result.h"

#include <algorithm>

namespace hive {

std::string QueryResult::ToString(size_t max_rows) const {
  std::string out;
  const size_t ncols = schema.num_fields();
  for (size_t c = 0; c < ncols; ++c) {
    if (c) out += "\t";
    out += schema.field(c).name;
  }
  if (ncols) out += "\n";
  const size_t shown = std::min(rows.size(), max_rows);
  for (size_t i = 0; i < shown; ++i) {
    // Render exactly the schema's column count: a ragged row (hand-built
    // results, wide rows from set operations) can never shift the columns
    // of every row after it.
    for (size_t c = 0; c < ncols; ++c) {
      if (c) out += "\t";
      out += c < rows[i].size() ? rows[i][c].ToString() : "NULL";
    }
    out += "\n";
  }
  if (rows.size() > max_rows)
    out += "... (" + std::to_string(rows.size() - max_rows) + " more, " +
           std::to_string(rows.size()) + " rows total)\n";
  if (!profile_->counters().empty()) out += "-- " + profile_->Summary() + "\n";
  return out;
}

}  // namespace hive
