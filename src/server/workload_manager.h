#ifndef HIVE_SERVER_WORKLOAD_MANAGER_H_
#define HIVE_SERVER_WORKLOAD_MANAGER_H_

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/cancel.h"
#include "common/sync.h"
#include "common/status.h"
#include "common/ast.h"

namespace hive {

namespace obs {
class MetricsRegistry;
class Counter;
class Histogram;
}  // namespace obs

/// Workload management (Section 5.2): resource plans made of pools (with
/// an allocation fraction and a query-parallelism cap), application
/// mappings routing queries to pools, and triggers that MOVE or KILL
/// queries based on runtime metrics. One plan is active at a time.
///
/// Admission control: a query takes a slot in its mapped pool. When the
/// pool is full the query enters the pool's FIFO admission queue and waits
/// up to its deadline (`wlm.queue.timeout.ms`) for a slot; a deadline of
/// zero restores the historic reject-on-full behavior. Queues drain fairly
/// on every release: each pool's oldest waiter takes freed own-pool slots
/// first, then the globally oldest waiter may borrow an idle slot from a
/// pool with no waiters of its own (the paper's cluster-utilization rule).
class WorkloadManager {
 public:
  struct Pool {
    std::string name;
    double alloc_fraction = 0;
    int query_parallelism = 0;
    int active = 0;
    std::vector<std::string> rules;
  };

  struct Rule {
    std::string name;
    /// "total_runtime"/"elapsed" compare against the query's elapsed ms;
    /// any other (dotted) name reads the engine metric registry through the
    /// reader installed with SetMetricReader — e.g. "llap.cache.misses".
    std::string metric;
    int64_t threshold = 0;    // ms for elapsed rules, raw units otherwise
    std::string action;       // "MOVE" | "KILL"
    std::string target_pool;
  };

  struct Plan {
    std::string name;
    std::map<std::string, Pool> pools;
    std::map<std::string, Rule> rules;
    std::map<std::string, std::string> mappings;  // application -> pool
    std::string default_pool;
    bool active = false;
  };

  /// A query's registration, from admission request to release. Queued and
  /// running state (pool, move/kill flags) lives here.
  struct QueryHandle {
    enum class State { kUnmanaged, kQueued, kAdmitted, kTimedOut, kKilled, kReleased };

    std::string application;
    std::string pool;           // mapped pool while queued; running pool after
    std::string borrowed_from;  // non-empty when running on a borrowed slot
    State state = State::kUnmanaged;
    /// Global arrival order; queues drain oldest-seq-first.
    uint64_t seq = 0;
    int64_t enqueued_us = 0;
    std::shared_ptr<std::atomic<bool>> cancelled =
        std::make_shared<std::atomic<bool>>(false);
    /// Why `cancelled` was raised — the trigger's name for KILL rules, or
    /// the deadline key; surfaced in the query's final error Status.
    std::shared_ptr<KillReason> kill_reason = std::make_shared<KillReason>();
    int64_t start_us = 0;
    bool moved = false;
  };

  /// Installs the engine-metric lookup rules with dotted metric names use
  /// (the server wires this to its MetricsRegistry). Keeping it a plain
  /// reader function leaves this layer ignorant of the registry type.
  void SetMetricReader(std::function<int64_t(const std::string&)> reader) {
    MutexLock lock(&mu_);
    metric_reader_ = std::move(reader);
  }

  /// Wires the wlm.queue.* metrics (queued/admitted/timeout counters, wait
  /// histogram, depth callback gauge) into the server's registry.
  void RegisterMetrics(obs::MetricsRegistry* registry);

  /// Applies one resource-plan DDL statement.
  Status Apply(const ResourcePlanStatement& stmt);

  /// Admits a query for `application`; chooses its pool via mappings or the
  /// default pool. With a positive `queue_timeout_ms` a query that finds
  /// every usable slot busy waits in its pool's FIFO queue, failing with
  /// kResourceExhausted (naming the pool) only when the deadline expires;
  /// with a non-positive timeout it fails immediately. No active plan =
  /// unmanaged (always admitted). Callers may pass pre-made cancellation
  /// hooks (`cancelled`, `kill_reason`) so a third party — e.g. session
  /// teardown — can abort the query even while it waits in the queue.
  Result<std::shared_ptr<QueryHandle>> Admit(
      const std::string& application, int64_t queue_timeout_ms = 0,
      std::shared_ptr<std::atomic<bool>> cancelled = nullptr,
      std::shared_ptr<KillReason> kill_reason = nullptr);

  /// MOVE to another pool. Works on running queries (re-accounts the slot;
  /// the target may transiently exceed its parallelism) and on *queued*
  /// queries, which simply start competing for the target pool's slots.
  Status Move(const std::shared_ptr<QueryHandle>& handle,
              const std::string& target_pool);

  /// Evaluates triggers for a running query given its elapsed runtime.
  /// MOVE re-accounts the query into the target pool; KILL sets the
  /// cancellation flag (the engine aborts at the next batch boundary).
  void ReportProgress(const std::shared_ptr<QueryHandle>& handle, int64_t elapsed_ms);

  /// Releases the query's slot and drains the admission queues into any
  /// freed capacity.
  void Release(const std::shared_ptr<QueryHandle>& handle);

  /// Wakes queued waiters so they can re-check their cancellation flags
  /// (used by session teardown, which cancels queued queries).
  void Kick();

  bool HasActivePlan() const;
  /// Active-plan introspection for tests/examples.
  Result<Plan> ActivePlan() const;
  int ActiveInPool(const std::string& pool) const;
  int QueuedInPool(const std::string& pool) const;
  /// Total queries waiting for admission across all pools.
  int64_t QueueDepth() const;
  /// Snapshot of the waiting queries in arrival order — the admin view a
  /// MOVE of a still-queued query operates on.
  std::vector<std::shared_ptr<QueryHandle>> QueuedQueries() const;

 private:
  /// Admits as many waiters as freed capacity allows: own-pool FIFO heads
  /// first, then the oldest waiter overall may borrow an idle slot from a
  /// pool nobody is queued for. Notifies waiters when anyone was admitted.
  void DrainQueueLocked() HIVE_REQUIRES(mu_);
  void RemoveFromQueueLocked(const std::shared_ptr<QueryHandle>& handle)
      HIVE_REQUIRES(mu_);
  Status MoveLocked(const std::shared_ptr<QueryHandle>& handle,
                    const std::string& target_pool) HIVE_REQUIRES(mu_);

  mutable Mutex mu_{"workload_manager.mu"};
  CondVar queue_cv_;
  std::map<std::string, Plan> plans_ HIVE_GUARDED_BY(mu_);
  std::string active_plan_ HIVE_GUARDED_BY(mu_);
  std::function<int64_t(const std::string&)> metric_reader_ HIVE_GUARDED_BY(mu_);
  /// Waiting queries in arrival order (seq ascending).
  std::vector<std::shared_ptr<QueryHandle>> queue_ HIVE_GUARDED_BY(mu_);
  uint64_t next_seq_ HIVE_GUARDED_BY(mu_) = 1;
  /// Mirror of queue_.size() readable without mu_, so the depth callback
  /// can't self-deadlock when a trigger rule references "wlm.queue.depth"
  /// (trigger evaluation already holds mu_).
  std::atomic<int64_t> queue_depth_{0};
  /// Registry-owned metric handles (null until RegisterMetrics). Counters
  /// and histograms are internally atomic, so bumping them under mu_ is
  /// cheap and respects the lock order (metrics are leaves).
  obs::Counter* queued_counter_ = nullptr;
  obs::Counter* admitted_counter_ = nullptr;
  obs::Counter* timeout_counter_ = nullptr;
  obs::Counter* rejected_counter_ = nullptr;
  obs::Histogram* wait_histogram_ = nullptr;
};

}  // namespace hive

#endif  // HIVE_SERVER_WORKLOAD_MANAGER_H_
