#ifndef HIVE_SERVER_WORKLOAD_MANAGER_H_
#define HIVE_SERVER_WORKLOAD_MANAGER_H_

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/cancel.h"
#include "common/sync.h"
#include "common/status.h"
#include "sql/ast.h"

namespace hive {

/// Workload management (Section 5.2): resource plans made of pools (with
/// an allocation fraction and a query-parallelism cap), application
/// mappings routing queries to pools, and triggers that MOVE or KILL
/// queries based on runtime metrics. One plan is active at a time.
///
/// Admission control: a query takes a slot in its mapped pool; when the
/// pool is full, an idle slot is borrowed from another pool (the paper's
/// cluster-utilization rule) and returned as soon as the query finishes.
class WorkloadManager {
 public:
  struct Pool {
    std::string name;
    double alloc_fraction = 0;
    int query_parallelism = 0;
    int active = 0;
    std::vector<std::string> rules;
  };

  struct Rule {
    std::string name;
    /// "total_runtime"/"elapsed" compare against the query's elapsed ms;
    /// any other (dotted) name reads the engine metric registry through the
    /// reader installed with SetMetricReader — e.g. "llap.cache.misses".
    std::string metric;
    int64_t threshold = 0;    // ms for elapsed rules, raw units otherwise
    std::string action;       // "MOVE" | "KILL"
    std::string target_pool;
  };

  struct Plan {
    std::string name;
    std::map<std::string, Pool> pools;
    std::map<std::string, Rule> rules;
    std::map<std::string, std::string> mappings;  // application -> pool
    std::string default_pool;
    bool active = false;
  };

  /// A running query's registration; move/kill state lives here.
  struct QueryHandle {
    std::string pool;
    std::string borrowed_from;  // non-empty when running on a borrowed slot
    std::shared_ptr<std::atomic<bool>> cancelled =
        std::make_shared<std::atomic<bool>>(false);
    /// Why `cancelled` was raised — the trigger's name for KILL rules, or
    /// the deadline key; surfaced in the query's final error Status.
    std::shared_ptr<KillReason> kill_reason = std::make_shared<KillReason>();
    int64_t start_us = 0;
    bool moved = false;
  };

  /// Installs the engine-metric lookup rules with dotted metric names use
  /// (the server wires this to its MetricsRegistry). Keeping it a plain
  /// reader function leaves this layer ignorant of the registry type.
  void SetMetricReader(std::function<int64_t(const std::string&)> reader) {
    MutexLock lock(&mu_);
    metric_reader_ = std::move(reader);
  }

  /// Applies one resource-plan DDL statement.
  Status Apply(const ResourcePlanStatement& stmt);

  /// Admits a query for `application`; chooses its pool via mappings or the
  /// default pool. Fails with kResourceExhausted when no slot is available
  /// anywhere. No active plan = unmanaged (always admitted).
  Result<std::shared_ptr<QueryHandle>> Admit(const std::string& application);

  /// Evaluates triggers for a running query given its elapsed runtime.
  /// MOVE re-accounts the query into the target pool; KILL sets the
  /// cancellation flag (the engine aborts at the next batch boundary).
  void ReportProgress(const std::shared_ptr<QueryHandle>& handle, int64_t elapsed_ms);

  /// Releases the query's slot.
  void Release(const std::shared_ptr<QueryHandle>& handle);

  bool HasActivePlan() const;
  /// Active-plan introspection for tests/examples.
  Result<Plan> ActivePlan() const;
  int ActiveInPool(const std::string& pool) const;

 private:
  mutable Mutex mu_{"workload_manager.mu"};
  std::map<std::string, Plan> plans_ HIVE_GUARDED_BY(mu_);
  std::string active_plan_ HIVE_GUARDED_BY(mu_);
  std::function<int64_t(const std::string&)> metric_reader_ HIVE_GUARDED_BY(mu_);
};

}  // namespace hive

#endif  // HIVE_SERVER_WORKLOAD_MANAGER_H_
