#include "server/workload_manager.h"

#include "common/sim_clock.h"

namespace hive {

Status WorkloadManager::Apply(const ResourcePlanStatement& stmt) {
  MutexLock lock(&mu_);
  switch (stmt.op) {
    case ResourcePlanStatement::Op::kCreatePlan: {
      if (plans_.count(stmt.plan)) return Status::AlreadyExists("plan " + stmt.plan);
      Plan plan;
      plan.name = stmt.plan;
      plans_[stmt.plan] = std::move(plan);
      return Status::OK();
    }
    case ResourcePlanStatement::Op::kCreatePool: {
      auto it = plans_.find(stmt.plan);
      if (it == plans_.end()) return Status::NotFound("plan " + stmt.plan);
      Pool pool;
      pool.name = stmt.pool;
      pool.alloc_fraction = stmt.alloc_fraction;
      pool.query_parallelism = stmt.query_parallelism;
      it->second.pools[stmt.pool] = std::move(pool);
      if (it->second.default_pool.empty()) it->second.default_pool = stmt.pool;
      return Status::OK();
    }
    case ResourcePlanStatement::Op::kCreateRule: {
      auto it = plans_.find(stmt.plan);
      if (it == plans_.end()) return Status::NotFound("plan " + stmt.plan);
      Rule rule;
      rule.name = stmt.rule_name;
      rule.metric = stmt.rule_metric;
      rule.threshold = stmt.rule_threshold;
      rule.action = stmt.rule_action;
      rule.target_pool = stmt.rule_target_pool;
      it->second.rules[stmt.rule_name] = std::move(rule);
      return Status::OK();
    }
    case ResourcePlanStatement::Op::kAddRuleToPool: {
      // ADD RULE r TO pool applies to the plan that defines the rule.
      for (auto& [name, plan] : plans_) {
        auto rule = plan.rules.find(stmt.rule_name);
        if (rule == plan.rules.end()) continue;
        auto pool = plan.pools.find(stmt.pool);
        if (pool == plan.pools.end()) return Status::NotFound("pool " + stmt.pool);
        pool->second.rules.push_back(stmt.rule_name);
        return Status::OK();
      }
      return Status::NotFound("rule " + stmt.rule_name);
    }
    case ResourcePlanStatement::Op::kCreateMapping: {
      auto it = plans_.find(stmt.plan);
      if (it == plans_.end()) return Status::NotFound("plan " + stmt.plan);
      it->second.mappings[stmt.mapping_application] = stmt.pool;
      return Status::OK();
    }
    case ResourcePlanStatement::Op::kSetDefaultPool: {
      auto it = plans_.find(stmt.plan);
      if (it == plans_.end()) return Status::NotFound("plan " + stmt.plan);
      it->second.default_pool = stmt.pool;
      return Status::OK();
    }
    case ResourcePlanStatement::Op::kEnableActivate: {
      auto it = plans_.find(stmt.plan);
      if (it == plans_.end()) return Status::NotFound("plan " + stmt.plan);
      for (auto& [name, plan] : plans_) plan.active = false;
      it->second.active = true;
      active_plan_ = stmt.plan;
      return Status::OK();
    }
  }
  return Status::Internal("unhandled resource plan op");
}

Result<std::shared_ptr<WorkloadManager::QueryHandle>> WorkloadManager::Admit(
    const std::string& application) {
  MutexLock lock(&mu_);
  auto handle = std::make_shared<QueryHandle>();
  handle->start_us = SimClock::WallMicros();
  if (active_plan_.empty()) return handle;  // unmanaged
  Plan& plan = plans_[active_plan_];
  auto mapping = plan.mappings.find(ToLower(application));
  std::string pool_name =
      mapping != plan.mappings.end() ? mapping->second : plan.default_pool;
  auto pool = plan.pools.find(pool_name);
  if (pool == plan.pools.end())
    return Status::Internal("active plan has no pool " + pool_name);
  if (pool->second.active < pool->second.query_parallelism) {
    ++pool->second.active;
    handle->pool = pool_name;
    return handle;
  }
  // Borrow an idle slot from another pool until its owner claims it.
  for (auto& [name, other] : plan.pools) {
    if (name == pool_name) continue;
    if (other.active < other.query_parallelism) {
      ++other.active;
      handle->pool = pool_name;
      handle->borrowed_from = name;
      return handle;
    }
  }
  return Status::ResourceExhausted("all pools at capacity for application " +
                                   application);
}

void WorkloadManager::ReportProgress(const std::shared_ptr<QueryHandle>& handle,
                                     int64_t elapsed_ms) {
  MutexLock lock(&mu_);
  if (active_plan_.empty() || handle->pool.empty() || handle->moved) return;
  Plan& plan = plans_[active_plan_];
  auto pool = plan.pools.find(handle->pool);
  if (pool == plan.pools.end()) return;
  for (const std::string& rule_name : pool->second.rules) {
    auto rule = plan.rules.find(rule_name);
    if (rule == plan.rules.end()) continue;
    // Elapsed-time rules compare the query's own runtime; any other metric
    // name is resolved against the engine registry via the installed reader
    // (so e.g. "llap.cache.misses > N" throttles a pool once the cache
    // starts thrashing, regardless of which query caused it).
    const std::string& metric = rule->second.metric;
    bool elapsed_rule = metric == "total_runtime" || metric == "elapsed";
    int64_t observed = elapsed_rule
                           ? elapsed_ms
                           : (metric_reader_ ? metric_reader_(metric) : 0);
    if (observed <= rule->second.threshold) continue;
    if (rule->second.action == "KILL") {
      // Record the trigger before raising the flag so any executor that
      // observes the cancellation also sees why it fired.
      handle->kill_reason->Set("query killed by workload manager trigger '" +
                               rule->second.name + "' (" + rule->second.metric +
                               " > " + std::to_string(rule->second.threshold) +
                               (elapsed_rule ? " ms)" : ")"));
      handle->cancelled->store(true);
      return;
    }
    if (rule->second.action == "MOVE") {
      auto target = plan.pools.find(rule->second.target_pool);
      if (target == plan.pools.end()) continue;
      // Move accounting: free the old slot, take one in the target (moves
      // always succeed; the target may transiently exceed its parallelism,
      // matching the paper's preemption-friendly fragment model).
      if (handle->borrowed_from.empty()) {
        --pool->second.active;
      } else {
        --plan.pools[handle->borrowed_from].active;
        handle->borrowed_from.clear();
      }
      ++target->second.active;
      handle->pool = rule->second.target_pool;
      handle->moved = true;
      return;
    }
  }
}

void WorkloadManager::Release(const std::shared_ptr<QueryHandle>& handle) {
  MutexLock lock(&mu_);
  if (active_plan_.empty() || handle->pool.empty()) return;
  Plan& plan = plans_[active_plan_];
  std::string slot_pool =
      handle->borrowed_from.empty() ? handle->pool : handle->borrowed_from;
  auto pool = plan.pools.find(slot_pool);
  if (pool != plan.pools.end() && pool->second.active > 0) --pool->second.active;
  handle->pool.clear();
}

bool WorkloadManager::HasActivePlan() const {
  MutexLock lock(&mu_);
  return !active_plan_.empty();
}

Result<WorkloadManager::Plan> WorkloadManager::ActivePlan() const {
  MutexLock lock(&mu_);
  if (active_plan_.empty()) return Status::NotFound("no active plan");
  return plans_.at(active_plan_);
}

int WorkloadManager::ActiveInPool(const std::string& pool) const {
  MutexLock lock(&mu_);
  if (active_plan_.empty()) return 0;
  const Plan& plan = plans_.at(active_plan_);
  auto it = plan.pools.find(pool);
  return it == plan.pools.end() ? 0 : it->second.active;
}

}  // namespace hive
