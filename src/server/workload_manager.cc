#include "server/workload_manager.h"

#include <algorithm>

#include "common/sim_clock.h"
#include "obs/metrics.h"
#include "obs/metric_names.h"

namespace hive {

void WorkloadManager::RegisterMetrics(obs::MetricsRegistry* registry) {
  queued_counter_ = registry->counter(obs::metric::kWlmQueued);
  admitted_counter_ = registry->counter(obs::metric::kWlmAdmitted);
  timeout_counter_ = registry->counter(obs::metric::kWlmTimeouts);
  rejected_counter_ = registry->counter(obs::metric::kWlmRejected);
  wait_histogram_ = registry->histogram(obs::metric::kWlmWaitUs);
  registry->RegisterCallback(
      obs::metric::kWlmQueueDepth,
      [this] { return queue_depth_.load(std::memory_order_relaxed); });
}

Status WorkloadManager::Apply(const ResourcePlanStatement& stmt) {
  MutexLock lock(&mu_);
  switch (stmt.op) {
    case ResourcePlanStatement::Op::kCreatePlan: {
      if (plans_.count(stmt.plan)) return Status::AlreadyExists("plan " + stmt.plan);
      Plan plan;
      plan.name = stmt.plan;
      plans_[stmt.plan] = std::move(plan);
      return Status::OK();
    }
    case ResourcePlanStatement::Op::kCreatePool: {
      auto it = plans_.find(stmt.plan);
      if (it == plans_.end()) return Status::NotFound("plan " + stmt.plan);
      Pool pool;
      pool.name = stmt.pool;
      pool.alloc_fraction = stmt.alloc_fraction;
      pool.query_parallelism = stmt.query_parallelism;
      it->second.pools[stmt.pool] = std::move(pool);
      if (it->second.default_pool.empty()) it->second.default_pool = stmt.pool;
      // New capacity may unblock waiters when the active plan grows.
      if (active_plan_ == stmt.plan) DrainQueueLocked();
      return Status::OK();
    }
    case ResourcePlanStatement::Op::kCreateRule: {
      auto it = plans_.find(stmt.plan);
      if (it == plans_.end()) return Status::NotFound("plan " + stmt.plan);
      Rule rule;
      rule.name = stmt.rule_name;
      rule.metric = stmt.rule_metric;
      rule.threshold = stmt.rule_threshold;
      rule.action = stmt.rule_action;
      rule.target_pool = stmt.rule_target_pool;
      it->second.rules[stmt.rule_name] = std::move(rule);
      return Status::OK();
    }
    case ResourcePlanStatement::Op::kAddRuleToPool: {
      // ADD RULE r TO pool applies to the plan that defines the rule.
      for (auto& [name, plan] : plans_) {
        auto rule = plan.rules.find(stmt.rule_name);
        if (rule == plan.rules.end()) continue;
        auto pool = plan.pools.find(stmt.pool);
        if (pool == plan.pools.end()) return Status::NotFound("pool " + stmt.pool);
        pool->second.rules.push_back(stmt.rule_name);
        return Status::OK();
      }
      return Status::NotFound("rule " + stmt.rule_name);
    }
    case ResourcePlanStatement::Op::kCreateMapping: {
      auto it = plans_.find(stmt.plan);
      if (it == plans_.end()) return Status::NotFound("plan " + stmt.plan);
      it->second.mappings[stmt.mapping_application] = stmt.pool;
      return Status::OK();
    }
    case ResourcePlanStatement::Op::kSetDefaultPool: {
      auto it = plans_.find(stmt.plan);
      if (it == plans_.end()) return Status::NotFound("plan " + stmt.plan);
      it->second.default_pool = stmt.pool;
      return Status::OK();
    }
    case ResourcePlanStatement::Op::kEnableActivate: {
      auto it = plans_.find(stmt.plan);
      if (it == plans_.end()) return Status::NotFound("plan " + stmt.plan);
      for (auto& [name, plan] : plans_) plan.active = false;
      it->second.active = true;
      active_plan_ = stmt.plan;
      DrainQueueLocked();
      return Status::OK();
    }
  }
  return Status::Internal("unhandled resource plan op");
}

Result<std::shared_ptr<WorkloadManager::QueryHandle>> WorkloadManager::Admit(
    const std::string& application, int64_t queue_timeout_ms,
    std::shared_ptr<std::atomic<bool>> cancelled,
    std::shared_ptr<KillReason> kill_reason) {
  MutexLock lock(&mu_);
  auto handle = std::make_shared<QueryHandle>();
  if (cancelled) handle->cancelled = std::move(cancelled);
  if (kill_reason) handle->kill_reason = std::move(kill_reason);
  handle->start_us = SimClock::WallMicros();
  if (active_plan_.empty()) return handle;  // unmanaged
  Plan& plan = plans_[active_plan_];
  auto mapping = plan.mappings.find(ToLower(application));
  std::string pool_name =
      mapping != plan.mappings.end() ? mapping->second : plan.default_pool;
  if (!plan.pools.count(pool_name))
    return Status::Internal("active plan has no pool " + pool_name);

  handle->application = application;
  handle->pool = pool_name;
  handle->state = QueryHandle::State::kQueued;
  handle->seq = next_seq_++;
  handle->enqueued_us = SimClock::WallMicros();
  queue_.push_back(handle);
  queue_depth_.store(static_cast<int64_t>(queue_.size()),
                     std::memory_order_relaxed);
  if (queued_counter_) queued_counter_->Inc();
  DrainQueueLocked();
  if (handle->state == QueryHandle::State::kAdmitted) return handle;

  if (queue_timeout_ms <= 0) {
    // Historic reject-on-full semantics: no queueing without a deadline.
    RemoveFromQueueLocked(handle);
    handle->state = QueryHandle::State::kTimedOut;
    if (rejected_counter_) rejected_counter_->Inc();
    return Status::ResourceExhausted("all pools at capacity for application " +
                                     application);
  }

  const int64_t deadline_us =
      SimClock::WallMicros() + queue_timeout_ms * 1000;
  while (handle->state == QueryHandle::State::kQueued &&
         !handle->cancelled->load(std::memory_order_acquire)) {
    int64_t remaining_us = deadline_us - SimClock::WallMicros();
    if (remaining_us <= 0) break;
    queue_cv_.WaitFor(lock, remaining_us);
  }
  if (handle->state == QueryHandle::State::kAdmitted) return handle;
  RemoveFromQueueLocked(handle);
  if (handle->cancelled->load(std::memory_order_acquire)) {
    handle->state = QueryHandle::State::kKilled;
    return Status::ResourceExhausted(
        handle->kill_reason->GetOr("query killed while queued for admission"));
  }
  handle->state = QueryHandle::State::kTimedOut;
  if (timeout_counter_) timeout_counter_->Inc();
  return Status::ResourceExhausted(
      "admission queue deadline expired after " +
      std::to_string(queue_timeout_ms) + " ms waiting for a slot in pool '" +
      handle->pool + "' (wlm.queue.timeout.ms)");
}

void WorkloadManager::DrainQueueLocked() {
  if (queue_.empty()) return;
  if (active_plan_.empty()) {
    // Plan went away while queries waited: everyone runs unmanaged.
    for (auto& waiter : queue_) {
      waiter->state = QueryHandle::State::kAdmitted;
      waiter->pool.clear();
      if (admitted_counter_) admitted_counter_->Inc();
    }
    queue_.clear();
    queue_depth_.store(0, std::memory_order_relaxed);
    queue_cv_.NotifyAll();
    return;
  }
  Plan& plan = plans_[active_plan_];
  bool admitted_any = false;
  auto admit = [&](const std::shared_ptr<QueryHandle>& waiter) {
    waiter->state = QueryHandle::State::kAdmitted;
    if (admitted_counter_) admitted_counter_->Inc();
    if (wait_histogram_)
      wait_histogram_->Record(
          std::max<int64_t>(0, SimClock::WallMicros() - waiter->enqueued_us));
    admitted_any = true;
  };
  // Pass 1: own-pool slots. queue_ is in arrival order, so scanning front to
  // back admits each pool's waiters FIFO.
  for (auto it = queue_.begin(); it != queue_.end();) {
    auto pool = plan.pools.find((*it)->pool);
    if (pool != plan.pools.end() &&
        pool->second.active < pool->second.query_parallelism) {
      ++pool->second.active;
      admit(*it);
      it = queue_.erase(it);
    } else {
      ++it;
    }
  }
  // Pass 2: after pass 1 no waiter's own pool has capacity, so leftover idle
  // slots go to the globally oldest waiters (fair cross-pool draining) as
  // borrowed slots — but never from a pool that has waiters of its own.
  bool progress = true;
  while (progress && !queue_.empty()) {
    progress = false;
    const std::shared_ptr<QueryHandle>& head = queue_.front();
    for (auto& [name, other] : plan.pools) {
      if (name == head->pool) continue;
      if (other.active >= other.query_parallelism) continue;
      bool has_own_waiter = false;
      for (const auto& waiter : queue_)
        if (waiter->pool == name) { has_own_waiter = true; break; }
      if (has_own_waiter) continue;
      ++other.active;
      head->borrowed_from = name;
      admit(head);
      queue_.erase(queue_.begin());
      progress = true;
      break;
    }
  }
  queue_depth_.store(static_cast<int64_t>(queue_.size()),
                     std::memory_order_relaxed);
  if (admitted_any) queue_cv_.NotifyAll();
}

void WorkloadManager::RemoveFromQueueLocked(
    const std::shared_ptr<QueryHandle>& handle) {
  auto it = std::find(queue_.begin(), queue_.end(), handle);
  if (it != queue_.end()) queue_.erase(it);
  queue_depth_.store(static_cast<int64_t>(queue_.size()),
                     std::memory_order_relaxed);
}

Status WorkloadManager::Move(const std::shared_ptr<QueryHandle>& handle,
                             const std::string& target_pool) {
  MutexLock lock(&mu_);
  return MoveLocked(handle, target_pool);
}

Status WorkloadManager::MoveLocked(const std::shared_ptr<QueryHandle>& handle,
                                   const std::string& target_pool) {
  if (active_plan_.empty()) return Status::OK();  // unmanaged: nothing to do
  Plan& plan = plans_[active_plan_];
  auto target = plan.pools.find(target_pool);
  if (target == plan.pools.end()) return Status::NotFound("pool " + target_pool);
  if (handle->state == QueryHandle::State::kQueued) {
    // A queued query just starts competing for the target pool's slots; its
    // arrival order (seq) is preserved.
    handle->pool = target_pool;
    handle->moved = true;
    DrainQueueLocked();
    return Status::OK();
  }
  if (handle->state != QueryHandle::State::kAdmitted)
    return Status::InvalidArgument("query is not queued or running");
  // Move accounting: free the old slot, take one in the target (moves
  // always succeed; the target may transiently exceed its parallelism,
  // matching the paper's preemption-friendly fragment model).
  std::string slot_pool =
      handle->borrowed_from.empty() ? handle->pool : handle->borrowed_from;
  auto pool = plan.pools.find(slot_pool);
  if (pool != plan.pools.end() && pool->second.active > 0)
    --pool->second.active;
  handle->borrowed_from.clear();
  ++target->second.active;
  handle->pool = target_pool;
  handle->moved = true;
  // The freed slot may admit a waiter.
  DrainQueueLocked();
  return Status::OK();
}

void WorkloadManager::ReportProgress(const std::shared_ptr<QueryHandle>& handle,
                                     int64_t elapsed_ms) {
  MutexLock lock(&mu_);
  if (active_plan_.empty() || handle->pool.empty() || handle->moved) return;
  if (handle->state != QueryHandle::State::kAdmitted &&
      handle->state != QueryHandle::State::kUnmanaged)
    return;
  Plan& plan = plans_[active_plan_];
  auto pool = plan.pools.find(handle->pool);
  if (pool == plan.pools.end()) return;
  for (const std::string& rule_name : pool->second.rules) {
    auto rule = plan.rules.find(rule_name);
    if (rule == plan.rules.end()) continue;
    // Elapsed-time rules compare the query's own runtime; any other metric
    // name is resolved against the engine registry via the installed reader
    // (so e.g. "llap.cache.misses > N" throttles a pool once the cache
    // starts thrashing, regardless of which query caused it).
    const std::string& metric = rule->second.metric;
    bool elapsed_rule = metric == "total_runtime" || metric == "elapsed";
    int64_t observed = elapsed_rule
                           ? elapsed_ms
                           : (metric_reader_ ? metric_reader_(metric) : 0);
    if (observed <= rule->second.threshold) continue;
    if (rule->second.action == "KILL") {
      // Record the trigger before raising the flag so any executor that
      // observes the cancellation also sees why it fired.
      handle->kill_reason->Set("query killed by workload manager trigger '" +
                               rule->second.name + "' (" + rule->second.metric +
                               " > " + std::to_string(rule->second.threshold) +
                               (elapsed_rule ? " ms)" : ")"));
      handle->cancelled->store(true);
      return;
    }
    if (rule->second.action == "MOVE") {
      if (!plan.pools.count(rule->second.target_pool)) continue;
      (void)MoveLocked(handle, rule->second.target_pool);  // lint: allow-discard(target checked above)
      return;
    }
  }
}

void WorkloadManager::Release(const std::shared_ptr<QueryHandle>& handle) {
  MutexLock lock(&mu_);
  if (handle->state == QueryHandle::State::kUnmanaged) {
    handle->state = QueryHandle::State::kReleased;
    return;
  }
  if (handle->state != QueryHandle::State::kAdmitted) return;
  handle->state = QueryHandle::State::kReleased;
  if (active_plan_.empty() || handle->pool.empty()) return;
  Plan& plan = plans_[active_plan_];
  std::string slot_pool =
      handle->borrowed_from.empty() ? handle->pool : handle->borrowed_from;
  auto pool = plan.pools.find(slot_pool);
  if (pool != plan.pools.end() && pool->second.active > 0) --pool->second.active;
  handle->pool.clear();
  DrainQueueLocked();
}

void WorkloadManager::Kick() {
  MutexLock lock(&mu_);
  queue_cv_.NotifyAll();
}

bool WorkloadManager::HasActivePlan() const {
  MutexLock lock(&mu_);
  return !active_plan_.empty();
}

Result<WorkloadManager::Plan> WorkloadManager::ActivePlan() const {
  MutexLock lock(&mu_);
  if (active_plan_.empty()) return Status::NotFound("no active plan");
  return plans_.at(active_plan_);
}

int WorkloadManager::ActiveInPool(const std::string& pool) const {
  MutexLock lock(&mu_);
  if (active_plan_.empty()) return 0;
  const Plan& plan = plans_.at(active_plan_);
  auto it = plan.pools.find(pool);
  return it == plan.pools.end() ? 0 : it->second.active;
}

int WorkloadManager::QueuedInPool(const std::string& pool) const {
  MutexLock lock(&mu_);
  int count = 0;
  for (const auto& waiter : queue_)
    if (waiter->pool == pool) ++count;
  return count;
}

int64_t WorkloadManager::QueueDepth() const {
  return queue_depth_.load(std::memory_order_relaxed);
}

std::vector<std::shared_ptr<WorkloadManager::QueryHandle>>
WorkloadManager::QueuedQueries() const {
  MutexLock lock(&mu_);
  return queue_;
}

}  // namespace hive
