#include "llap/llap_cache.h"

namespace hive {

LlapCacheProvider::LlapCacheProvider(FileSystem* fs, const Config& config)
    : fs_(fs),
      data_cache_(static_cast<uint64_t>(config.llap_cache_capacity_bytes),
                  config.llap_lrfu_lambda) {}

Result<std::shared_ptr<CofReader>> LlapCacheProvider::OpenReader(
    const std::string& path) {
  // Check file identity first: a cached reader is valid only while the
  // FileId matches (files are immutable once written, but paths can be
  // re-created by compaction).
  HIVE_ASSIGN_OR_RETURN(FileInfo info, fs_->Stat(path));
  {
    std::lock_guard<std::mutex> lock(metadata_mu_);
    auto it = metadata_.find(path);
    if (it != metadata_.end()) {
      if (it->second.first == info.file_id) {
        metadata_hits_.fetch_add(1, std::memory_order_relaxed);
        return it->second.second;
      }
      // Stale: the path now holds a different file.
      InvalidateFileLocked(it->second.first);
      metadata_.erase(it);
    }
  }
  HIVE_ASSIGN_OR_RETURN(std::shared_ptr<CofReader> reader, CofReader::Open(fs_, path));
  std::lock_guard<std::mutex> lock(metadata_mu_);
  metadata_[path] = {info.file_id, reader};
  return reader;
}

Result<ColumnVectorPtr> LlapCacheProvider::ReadChunk(
    const std::shared_ptr<CofReader>& reader, size_t row_group, size_t column) {
  ChunkKey key{reader->file_id(), static_cast<uint32_t>(row_group),
               static_cast<uint32_t>(column)};
  // Single-flight: concurrent readers of the same cold chunk (parallel
  // workers plus their read-ahead prefetches) must not decode it N times.
  // The flight map is consulted before the cache so that followers neither
  // count a spurious miss nor race the leader's Put.
  std::shared_ptr<InFlight> flight;
  bool leader = false;
  {
    std::lock_guard<std::mutex> lock(inflight_mu_);
    auto it = inflight_.find(key);
    if (it != inflight_.end()) {
      flight = it->second;
    } else {
      if (ColumnVectorPtr cached = data_cache_.Get(key)) return cached;
      flight = std::make_shared<InFlight>();
      inflight_.emplace(key, flight);
      leader = true;
    }
  }
  if (!leader) {
    singleflight_waits_.fetch_add(1, std::memory_order_relaxed);
    std::unique_lock<std::mutex> lock(flight->mu);
    flight->cv.wait(lock, [&] { return flight->done; });
    lock.unlock();
    // Re-probe so the follower registers a cache hit (and refreshes LRFU
    // recency); fall back to the flight's result if it was already evicted.
    if (ColumnVectorPtr cached = data_cache_.Get(key)) return cached;
    return flight->result;
  }
  // Leader: decode outside any lock, publish, then retire the flight.
  Result<ColumnVectorPtr> decoded = reader->ReadColumnChunk(row_group, column);
  if (decoded.ok()) {
    data_decodes_.fetch_add(1, std::memory_order_relaxed);
    data_cache_.Put(key, *decoded, (*decoded)->ByteSize());
  }
  {
    std::lock_guard<std::mutex> lock(flight->mu);
    flight->result = decoded;
    flight->done = true;
  }
  flight->cv.notify_all();
  {
    std::lock_guard<std::mutex> lock(inflight_mu_);
    inflight_.erase(key);
  }
  return decoded;
}

void LlapCacheProvider::Clear() {
  data_cache_.Clear();
  std::lock_guard<std::mutex> lock(metadata_mu_);
  metadata_.clear();
}

void LlapCacheProvider::InvalidateFile(uint64_t file_id) {
  InvalidateFileLocked(file_id);
}

void LlapCacheProvider::InvalidateFileLocked(uint64_t file_id) {
  data_cache_.EraseIf(
      [file_id](const ChunkKey& key) { return key.file_id == file_id; });
}

}  // namespace hive
