#include "llap/llap_cache.h"

#include "common/hash.h"
#include "common/sim_clock.h"

namespace hive {

namespace {

/// Content fingerprint of a decoded chunk: validity bitmap plus the typed
/// payload. Chained Murmur64 so any flipped bit anywhere changes the result.
uint64_t ChunkFingerprint(const ColumnVector& col) {
  uint64_t h = Murmur64(col.validity().data(), col.validity().size(), 0x11a9);
  switch (col.type().kind) {
    case TypeKind::kDouble:
      return Murmur64(col.f64_data().data(), col.f64_data().size() * 8, h);
    case TypeKind::kString: {
      for (const std::string& s : col.str_data())
        h = Murmur64(s.data(), s.size(), h ^ (s.size() * 0x9e3779b97f4a7c15ULL));
      return h;
    }
    default:
      return Murmur64(col.i64_data().data(), col.i64_data().size() * 8, h);
  }
}

}  // namespace

LlapCacheProvider::LlapCacheProvider(FileSystem* fs, const Config& config)
    : fs_(fs),
      poison_threshold_(config.cache_poison_threshold),
      data_cache_(static_cast<uint64_t>(config.llap_cache_capacity_bytes),
                  config.llap_lrfu_lambda) {}

Result<std::shared_ptr<CofReader>> LlapCacheProvider::OpenReader(
    const std::string& path) {
  // Check file identity first: a cached reader is valid only while the
  // FileId matches (files are immutable once written, but paths can be
  // re-created by compaction).
  HIVE_ASSIGN_OR_RETURN(FileInfo info, fs_->Stat(path));
  {
    MutexLock lock(&metadata_mu_);
    auto it = metadata_.find(path);
    if (it != metadata_.end()) {
      if (it->second.first == info.file_id) {
        metadata_hits_.fetch_add(1, std::memory_order_relaxed);
        return it->second.second;
      }
      // Stale: the path now holds a different file.
      InvalidateFileLocked(it->second.first);
      metadata_.erase(it);
    }
  }
  HIVE_ASSIGN_OR_RETURN(std::shared_ptr<CofReader> reader, CofReader::Open(fs_, path));
  MutexLock lock(&metadata_mu_);
  metadata_[path] = {info.file_id, reader};
  return reader;
}

bool LlapCacheProvider::IsDegraded(uint64_t file_id) const {
  if (!poison_seen_.load(std::memory_order_relaxed)) return false;
  MutexLock lock(&poison_mu_);
  return degraded_.count(file_id) != 0;
}

ColumnVectorPtr LlapCacheProvider::ValidateHit(const ChunkKey& key,
                                               const CachedChunkPtr& entry) {
  if (ChunkFingerprint(*entry->chunk) == entry->fingerprint) {
    // Clean hit. If this file had a corruption streak going, it ends here.
    if (poison_seen_.load(std::memory_order_relaxed)) {
      MutexLock lock(&poison_mu_);
      auto it = poison_streak_.find(key.file_id);
      if (it != poison_streak_.end()) it->second = 0;
    }
    // Hand any banked elevator stall to the first task that consumes the
    // chunk (never drain it on scope-less threads — it would be lost).
    if (SimClock::HasTaskSink())
      SimClock::Attribute(
          entry->pending_charge_us.exchange(0, std::memory_order_relaxed));
    return entry->chunk;
  }
  // Poisoned: the cached bytes changed after insert. Evict, count the
  // incident, and let the caller fall through to a fresh decode — queries
  // never see the corrupted chunk.
  poison_detected_.fetch_add(1, std::memory_order_relaxed);
  poison_seen_.store(true, std::memory_order_relaxed);
  data_cache_.Erase(key);
  MutexLock lock(&poison_mu_);
  if (++poison_streak_[key.file_id] >= poison_threshold_)
    degraded_.insert(key.file_id);
  return nullptr;
}

Result<ColumnVectorPtr> LlapCacheProvider::ReadChunk(
    const std::shared_ptr<CofReader>& reader, size_t row_group, size_t column) {
  // Files with repeated poisoning incidents bypass the cache entirely: the
  // daemon keeps serving them, just without trusting cached copies.
  if (IsDegraded(reader->file_id())) {
    degraded_reads_.fetch_add(1, std::memory_order_relaxed);
    return reader->ReadColumnChunk(row_group, column);
  }
  ChunkKey key{reader->file_id(), static_cast<uint32_t>(row_group),
               static_cast<uint32_t>(column)};
  // Single-flight: concurrent readers of the same cold chunk (parallel
  // workers plus their read-ahead prefetches) must not decode it N times.
  // The flight map is consulted before the cache so that followers neither
  // count a spurious miss nor race the leader's Put.
  std::shared_ptr<InFlight> flight;
  bool leader = false;
  {
    MutexLock lock(&inflight_mu_);
    auto it = inflight_.find(key);
    if (it != inflight_.end()) {
      flight = it->second;
    } else {
      if (CachedChunkPtr cached = data_cache_.Get(key)) {
        if (ColumnVectorPtr chunk = ValidateHit(key, cached)) return chunk;
        // Fingerprint mismatch: entry evicted; become the decode leader.
      }
      flight = std::make_shared<InFlight>();
      inflight_.emplace(key, flight);
      leader = true;
    }
  }
  if (!leader) {
    singleflight_waits_.fetch_add(1, std::memory_order_relaxed);
    Result<ColumnVectorPtr> flight_result = Status::Internal("decode pending");
    {
      MutexLock lock(&flight->mu);
      while (!flight->done) flight->cv.Wait(lock);
      flight_result = flight->result;
    }
    // Re-probe so the follower registers a cache hit (and refreshes LRFU
    // recency); fall back to the flight's result if it was already evicted.
    if (CachedChunkPtr cached = data_cache_.Get(key))
      if (ColumnVectorPtr chunk = ValidateHit(key, cached)) return chunk;
    return flight_result;
  }
  // Leader: decode outside any lock, publish, then retire the flight.
  // Capture the modeled I/O stall of the decode so it can be attributed to
  // the leader's own task — or banked on the entry when the leader is a
  // scope-less elevator thread, for the first real consumer to inherit.
  int64_t io_charge_us = 0;
  Result<ColumnVectorPtr> decoded = Status::OK();
  {
    SimClock::TaskScope io_scope(&io_charge_us);
    decoded = reader->ReadColumnChunk(row_group, column);
  }
  bool attributed = SimClock::Attribute(io_charge_us);
  if (decoded.ok()) {
    data_decodes_.fetch_add(1, std::memory_order_relaxed);
    auto entry = std::make_shared<CachedChunk>();
    entry->chunk = *decoded;
    entry->fingerprint = ChunkFingerprint(**decoded);
    entry->pending_charge_us.store(attributed ? 0 : io_charge_us,
                                   std::memory_order_relaxed);
    data_cache_.Put(key, std::move(entry), (*decoded)->ByteSize());
  }
  {
    MutexLock lock(&flight->mu);
    flight->result = decoded;
    flight->done = true;
  }
  flight->cv.NotifyAll();
  {
    MutexLock lock(&inflight_mu_);
    inflight_.erase(key);
  }
  return decoded;
}

size_t LlapCacheProvider::PoisonChunks(size_t n) {
  size_t poisoned = 0;
  data_cache_.ForEach([&](const ChunkKey&, CachedChunkPtr& entry) {
    if (poisoned >= n || !entry->chunk || entry->chunk->size() == 0) return;
    // Corrupt the decoded data in place without refreshing the stored
    // fingerprint — exactly what a stray write into the cache would do.
    ColumnVector& col = *entry->chunk;
    switch (col.type().kind) {
      case TypeKind::kDouble:
        col.f64_data()[0] = -col.f64_data()[0] + 1.0;
        break;
      case TypeKind::kString:
        col.str_data()[0].push_back('!');
        break;
      default:
        col.i64_data()[0] ^= 0x40;
        break;
    }
    ++poisoned;
  });
  return poisoned;
}

void LlapCacheProvider::Clear() {
  data_cache_.Clear();
  {
    MutexLock lock(&poison_mu_);
    poison_streak_.clear();
    degraded_.clear();
  }
  MutexLock lock(&metadata_mu_);
  metadata_.clear();
}

void LlapCacheProvider::InvalidateFile(uint64_t file_id) {
  InvalidateFileLocked(file_id);
}

void LlapCacheProvider::InvalidateFileLocked(uint64_t file_id) {
  data_cache_.EraseIf(
      [file_id](const ChunkKey& key) { return key.file_id == file_id; });
}

}  // namespace hive
