#ifndef HIVE_LLAP_DAEMON_H_
#define HIVE_LLAP_DAEMON_H_

#include <atomic>
#include <functional>
#include <future>
#include <memory>

#include "common/thread_pool.h"
#include "llap/llap_cache.h"

namespace hive {

/// An LLAP daemon (Section 5.1): persistent multi-threaded query executors
/// plus the shared data cache, long-running so queries pay no container
/// start-up cost. Daemons are stateless — losing one only loses cached
/// bytes, so any executor can process any fragment.
///
/// `IoElevator` models the separate I/O threads that read and decode data
/// off the execution path: columns are fetched asynchronously so a batch
/// can be processed while the next one is being prepared.
class LlapDaemon {
 public:
  LlapDaemon(FileSystem* fs, const Config& config)
      : cache_(fs, config),
        executors_(config.num_executors),
        io_pool_(config.llap_io_threads) {}

  /// The MVCC-aware chunk cache shared by all fragments.
  LlapCacheProvider* cache() { return &cache_; }

  /// Runs a query fragment on a persistent executor; returns a future the
  /// coordinator waits on. Fragments from different queries interleave
  /// freely across the executor pool.
  std::future<Status> SubmitFragment(std::function<Status()> fragment) {
    auto promise = std::make_shared<std::promise<Status>>();
    auto future = promise->get_future();
    fragments_submitted_.fetch_add(1, std::memory_order_relaxed);
    executors_.Submit([this, promise, fragment = std::move(fragment)]() mutable {
      promise->set_value(fragment());
      fragments_completed_.fetch_add(1, std::memory_order_relaxed);
    });
    return future;
  }

  /// Runs an intra-query worker fragment of a morsel-driven pipeline. Unlike
  /// SubmitFragment (whose coordinator fragments block on their workers),
  /// this prefers an idle executor but falls back to running inline on the
  /// caller when the pool is saturated, so nested fan-out cannot deadlock
  /// the fixed-size executor set.
  std::future<Status> SubmitWorkFragment(std::function<Status()> fragment) {
    auto promise = std::make_shared<std::promise<Status>>();
    auto future = promise->get_future();
    fragments_submitted_.fetch_add(1, std::memory_order_relaxed);
    executors_.SubmitOrRun([this, promise, fragment = std::move(fragment)]() mutable {
      promise->set_value(fragment());
      fragments_completed_.fetch_add(1, std::memory_order_relaxed);
    });
    return future;
  }

  /// Asynchronously fetches and decodes a column chunk through the cache
  /// (the I/O elevator path).
  std::future<Result<ColumnVectorPtr>> PrefetchChunk(
      std::shared_ptr<CofReader> reader, size_t row_group, size_t column) {
    auto promise = std::make_shared<std::promise<Result<ColumnVectorPtr>>>();
    auto future = promise->get_future();
    prefetches_issued_.fetch_add(1, std::memory_order_relaxed);
    io_pool_.Submit([this, promise, reader = std::move(reader), row_group, column] {
      promise->set_value(cache_.ReadChunk(reader, row_group, column));
    });
    return future;
  }

  int num_executors() const { return executors_.num_threads(); }
  int64_t fragments_submitted() const { return fragments_submitted_.load(); }
  int64_t fragments_completed() const { return fragments_completed_.load(); }
  int64_t prefetches_issued() const { return prefetches_issued_.load(); }

 private:
  LlapCacheProvider cache_;
  ThreadPool executors_;
  ThreadPool io_pool_;
  std::atomic<int64_t> fragments_submitted_{0};
  std::atomic<int64_t> fragments_completed_{0};
  std::atomic<int64_t> prefetches_issued_{0};
};

}  // namespace hive

#endif  // HIVE_LLAP_DAEMON_H_
