#ifndef HIVE_LLAP_LLAP_CACHE_H_
#define HIVE_LLAP_LLAP_CACHE_H_

#include <atomic>
#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "common/config.h"
#include "common/lrfu_cache.h"
#include "fs/filesystem.h"
#include "storage/chunk_provider.h"

namespace hive {

/// The LLAP data cache (Section 5.1): decoded column chunks addressed along
/// the two dimensions the paper describes — row groups and columns — keyed
/// by (FileId, row group, column). Because cache keys carry the FileId (the
/// ETag analogue), a rewritten file never serves stale chunks, and because
/// ACID visibility is adjusted at the file level, the cache behaves as an
/// MVCC view serving concurrent queries in different transactional states:
/// each query simply addresses exactly the files its snapshot selected.
///
/// Metadata (COF footers: min/max indexes, Bloom filters) caches separately
/// and is populated on first access, letting later queries evaluate sargs
/// and decide row-group skips without touching the data at all.
///
/// Eviction is LRFU over chunk byte sizes (the paper's default policy).
class LlapCacheProvider : public ChunkProvider {
 public:
  LlapCacheProvider(FileSystem* fs, const Config& config);

  Result<std::shared_ptr<CofReader>> OpenReader(const std::string& path) override;
  Result<ColumnVectorPtr> ReadChunk(const std::shared_ptr<CofReader>& reader,
                                    size_t row_group, size_t column) override;

  /// Drops every cache entry (tests / daemon restart).
  void Clear();

  /// Invalidates data cached for a specific file id (compaction cleanup).
  void InvalidateFile(uint64_t file_id);

  // --- observability ---
  uint64_t data_hits() const { return data_cache_.hits(); }
  uint64_t data_misses() const { return data_cache_.misses(); }
  uint64_t metadata_hits() const { return metadata_hits_; }
  uint64_t used_bytes() const { return data_cache_.used_bytes(); }
  size_t cached_chunks() const { return data_cache_.size(); }
  /// Chunk decodes actually performed (single-flight leaders only).
  uint64_t data_decodes() const { return data_decodes_; }
  /// Readers that waited on another thread's in-flight decode.
  uint64_t singleflight_waits() const { return singleflight_waits_; }

 private:
  struct ChunkKey {
    uint64_t file_id;
    uint32_t row_group;
    uint32_t column;
    bool operator==(const ChunkKey& o) const {
      return file_id == o.file_id && row_group == o.row_group && column == o.column;
    }
  };
  struct ChunkKeyHash {
    size_t operator()(const ChunkKey& k) const {
      uint64_t h = k.file_id * 0x9e3779b97f4a7c15ULL;
      h ^= (static_cast<uint64_t>(k.row_group) << 32) | k.column;
      return static_cast<size_t>(h * 0xbf58476d1ce4e5b9ULL);
    }
  };

  /// Single-flight slot: the first reader of a cold key (the leader)
  /// decodes; concurrent readers wait on `cv` and reuse the result.
  struct InFlight {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    Result<ColumnVectorPtr> result{Status::Internal("decode pending")};
  };

  void InvalidateFileLocked(uint64_t file_id);

  FileSystem* fs_;
  LrfuCache<ChunkKey, ColumnVectorPtr, ChunkKeyHash> data_cache_;
  std::mutex inflight_mu_;
  std::unordered_map<ChunkKey, std::shared_ptr<InFlight>, ChunkKeyHash> inflight_;
  std::atomic<uint64_t> data_decodes_{0};
  std::atomic<uint64_t> singleflight_waits_{0};
  /// Metadata cache: path -> (file_id, reader). Validity is re-checked via
  /// Stat on each open (FileId change = new file).
  std::mutex metadata_mu_;
  std::map<std::string, std::pair<uint64_t, std::shared_ptr<CofReader>>> metadata_;
  std::atomic<uint64_t> metadata_hits_{0};
};

}  // namespace hive

#endif  // HIVE_LLAP_LLAP_CACHE_H_
