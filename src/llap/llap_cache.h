#ifndef HIVE_LLAP_LLAP_CACHE_H_
#define HIVE_LLAP_LLAP_CACHE_H_

#include <atomic>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "common/config.h"
#include "common/sync.h"
#include "common/lrfu_cache.h"
#include "fs/filesystem.h"
#include "storage/chunk_provider.h"

namespace hive {

/// The LLAP data cache (Section 5.1): decoded column chunks addressed along
/// the two dimensions the paper describes — row groups and columns — keyed
/// by (FileId, row group, column). Because cache keys carry the FileId (the
/// ETag analogue), a rewritten file never serves stale chunks, and because
/// ACID visibility is adjusted at the file level, the cache behaves as an
/// MVCC view serving concurrent queries in different transactional states:
/// each query simply addresses exactly the files its snapshot selected.
///
/// Metadata (COF footers: min/max indexes, Bloom filters) caches separately
/// and is populated on first access, letting later queries evaluate sargs
/// and decide row-group skips without touching the data at all.
///
/// Eviction is LRFU over chunk byte sizes (the paper's default policy).
///
/// Poisoning defense: a decoded chunk is fingerprinted (content hash) when
/// inserted and re-validated on every hit, so memory corruption — or a
/// hostile writer scribbling over the shared daemon cache — can never leak
/// wrong bytes into a query. A mismatch evicts the entry and falls back to
/// a fresh decode through the single-flight path; after
/// `cache.poison.threshold` *consecutive* corrupted hits on one file, that
/// file degrades to direct (uncached) reads for the daemon's lifetime.
class LlapCacheProvider : public ChunkProvider {
 public:
  LlapCacheProvider(FileSystem* fs, const Config& config);

  Result<std::shared_ptr<CofReader>> OpenReader(const std::string& path) override;
  Result<ColumnVectorPtr> ReadChunk(const std::shared_ptr<CofReader>& reader,
                                    size_t row_group, size_t column) override;

  /// Drops every cache entry (tests / daemon restart) and forgets poison
  /// history: a restarted daemon re-admits degraded files.
  void Clear();

  /// Invalidates data cached for a specific file id (compaction cleanup).
  void InvalidateFile(uint64_t file_id);

  /// Test hook: silently corrupts up to `n` cached chunks *without*
  /// refreshing their stored fingerprints, simulating cache poisoning.
  /// Returns how many chunks were corrupted.
  size_t PoisonChunks(size_t n);

  // --- observability ---
  uint64_t data_hits() const { return data_cache_.hits(); }
  uint64_t data_misses() const { return data_cache_.misses(); }
  uint64_t data_evictions() const { return data_cache_.evictions(); }
  uint64_t metadata_hits() const { return metadata_hits_; }
  uint64_t used_bytes() const { return data_cache_.used_bytes(); }
  size_t cached_chunks() const { return data_cache_.size(); }
  /// Chunk decodes actually performed (single-flight leaders only).
  uint64_t data_decodes() const { return data_decodes_; }
  /// Readers that waited on another thread's in-flight decode.
  uint64_t singleflight_waits() const { return singleflight_waits_; }
  /// Cache hits rejected because the chunk's content hash no longer matched.
  uint64_t poison_detected() const { return poison_detected_; }
  /// Reads served directly from storage because the file is degraded.
  uint64_t degraded_reads() const { return degraded_reads_; }
  size_t degraded_files() const {
    MutexLock lock(&poison_mu_);
    return degraded_.size();
  }

 private:
  struct ChunkKey {
    uint64_t file_id;
    uint32_t row_group;
    uint32_t column;
    bool operator==(const ChunkKey& o) const {
      return file_id == o.file_id && row_group == o.row_group && column == o.column;
    }
  };
  struct ChunkKeyHash {
    size_t operator()(const ChunkKey& k) const {
      uint64_t h = k.file_id * 0x9e3779b97f4a7c15ULL;
      h ^= (static_cast<uint64_t>(k.row_group) << 32) | k.column;
      return static_cast<size_t>(h * 0xbf58476d1ce4e5b9ULL);
    }
  };

  /// Cache entry: the decoded chunk plus its content fingerprint, taken at
  /// insert time and re-checked on every hit.
  struct CachedChunk {
    ColumnVectorPtr chunk;
    uint64_t fingerprint = 0;
    /// Modeled I/O stall incurred decoding this chunk on a thread with no
    /// task scope (the I/O elevator). The first task-scoped consumer takes
    /// it (exchange to 0) so straggler detection still sees the stall even
    /// though the read itself became a cache hit.
    std::atomic<int64_t> pending_charge_us{0};
  };
  using CachedChunkPtr = std::shared_ptr<CachedChunk>;

  /// Single-flight slot: the first reader of a cold key (the leader)
  /// decodes; concurrent readers wait on `cv` and reuse the result.
  struct InFlight {
    Mutex mu{"llap.inflight.slot.mu"};
    CondVar cv;
    bool done HIVE_GUARDED_BY(mu) = false;
    Result<ColumnVectorPtr> result HIVE_GUARDED_BY(mu){Status::Internal("decode pending")};
  };

  void InvalidateFileLocked(uint64_t file_id);
  /// Returns the chunk if the cached entry's fingerprint still matches;
  /// otherwise evicts it, records the poisoning (possibly degrading the
  /// file), and returns nullptr so the caller re-decodes.
  ColumnVectorPtr ValidateHit(const ChunkKey& key, const CachedChunkPtr& entry);
  bool IsDegraded(uint64_t file_id) const;

  FileSystem* fs_;
  const int poison_threshold_;
  LrfuCache<ChunkKey, CachedChunkPtr, ChunkKeyHash> data_cache_;
  Mutex inflight_mu_{"llap.inflight.mu"};
  std::unordered_map<ChunkKey, std::shared_ptr<InFlight>, ChunkKeyHash> inflight_
      HIVE_GUARDED_BY(inflight_mu_);
  std::atomic<uint64_t> data_decodes_{0};
  std::atomic<uint64_t> singleflight_waits_{0};
  std::atomic<uint64_t> poison_detected_{0};
  std::atomic<uint64_t> degraded_reads_{0};
  /// Fast-path guard: true once any poisoning has ever been detected, so
  /// clean hits only pay the streak-reset lock after an actual incident.
  std::atomic<bool> poison_seen_{false};
  mutable Mutex poison_mu_{"llap.poison.mu"};
  /// Consecutive corrupted hits per file; reset by any clean hit.
  std::unordered_map<uint64_t, int> poison_streak_ HIVE_GUARDED_BY(poison_mu_);
  std::unordered_set<uint64_t> degraded_ HIVE_GUARDED_BY(poison_mu_);
  /// Metadata cache: path -> (file_id, reader). Validity is re-checked via
  /// Stat on each open (FileId change = new file).
  Mutex metadata_mu_{"llap.metadata.mu"};
  std::map<std::string, std::pair<uint64_t, std::shared_ptr<CofReader>>> metadata_
      HIVE_GUARDED_BY(metadata_mu_);
  std::atomic<uint64_t> metadata_hits_{0};
};

}  // namespace hive

#endif  // HIVE_LLAP_LLAP_CACHE_H_
