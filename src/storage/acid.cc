#include "storage/acid.h"

#include <algorithm>
#include <cstdio>

#include "common/hash.h"

namespace hive {

std::string ValidWriteIdList::ToString() const {
  std::string out = "hwm=" + std::to_string(high_watermark) + " exceptions={";
  bool first = true;
  for (int64_t e : exceptions) {
    if (!first) out += ",";
    out += std::to_string(e);
    if (open_writes.count(e)) out += "(open)";
    first = false;
  }
  out += "}";
  return out;
}

std::string BaseDirName(int64_t write_id) { return "base_" + std::to_string(write_id); }

std::string DeltaDirName(int64_t min_write_id, int64_t max_write_id) {
  return "delta_" + std::to_string(min_write_id) + "_" + std::to_string(max_write_id);
}

std::string DeleteDeltaDirName(int64_t min_write_id, int64_t max_write_id) {
  return "delete_delta_" + std::to_string(min_write_id) + "_" +
         std::to_string(max_write_id);
}

AcidDirInfo ParseAcidDirName(const std::string& path) {
  AcidDirInfo info;
  info.path = path;
  std::string name = BaseName(path);
  long long a = 0, b = 0;
  if (std::sscanf(name.c_str(), "base_%lld", &a) == 1 &&
      name.rfind("base_", 0) == 0) {
    info.kind = AcidDirKind::kBase;
    info.min_write_id = 0;
    info.max_write_id = a;
  } else if (name.rfind("delete_delta_", 0) == 0 &&
             std::sscanf(name.c_str(), "delete_delta_%lld_%lld", &a, &b) == 2) {
    info.kind = AcidDirKind::kDeleteDelta;
    info.min_write_id = a;
    info.max_write_id = b;
  } else if (name.rfind("delta_", 0) == 0 &&
             std::sscanf(name.c_str(), "delta_%lld_%lld", &a, &b) == 2) {
    info.kind = AcidDirKind::kDelta;
    info.min_write_id = a;
    info.max_write_id = b;
  }
  return info;
}

Schema AcidFileSchema(const Schema& user_schema) {
  Schema out;
  out.AddField(kAcidWriteIdCol, DataType::Bigint());
  out.AddField(kAcidBucketCol, DataType::Bigint());
  out.AddField(kAcidRowIdCol, DataType::Bigint());
  for (const Field& f : user_schema.fields()) out.AddField(f.name, f.type);
  return out;
}

namespace {
/// Delete files record the target record id plus the write id of the
/// DELETING transaction, so delete application is row-level snapshot
/// filtered just like inserts (required once compacted delete deltas span
/// multiple write ids).
Schema DeleteFileSchema() {
  Schema out;
  out.AddField(kAcidWriteIdCol, DataType::Bigint());
  out.AddField(kAcidBucketCol, DataType::Bigint());
  out.AddField(kAcidRowIdCol, DataType::Bigint());
  out.AddField("_acid_deleter_wid", DataType::Bigint());
  return out;
}
}  // namespace

size_t RecordIdHash::operator()(const RecordId& r) const {
  uint64_t h = static_cast<uint64_t>(r.write_id);
  h = HashCombine(h, static_cast<uint64_t>(r.bucket));
  h = HashCombine(h, static_cast<uint64_t>(r.row_id));
  return static_cast<size_t>(h);
}

AcidWriter::AcidWriter(FileSystem* fs, std::string dir, Schema user_schema,
                       int64_t write_id, CofWriteOptions options)
    : fs_(fs),
      dir_(std::move(dir)),
      user_schema_(std::move(user_schema)),
      write_id_(write_id),
      options_(options) {}

void AcidWriter::Insert(const std::vector<Value>& row) {
  if (!insert_writer_) {
    insert_writer_ =
        std::make_unique<CofWriter>(AcidFileSchema(user_schema_), options_);
  }
  std::vector<Value> full;
  full.reserve(row.size() + kNumAcidMetaCols);
  full.push_back(Value::Bigint(write_id_));
  full.push_back(Value::Bigint(0));  // single bucket per writer
  full.push_back(Value::Bigint(next_row_id_++));
  full.insert(full.end(), row.begin(), row.end());
  insert_writer_->AppendRow(full);
}

void AcidWriter::Delete(const RecordId& id) {
  if (!delete_writer_) {
    CofWriteOptions delete_options = options_;
    delete_options.bloom_columns.clear();
    delete_writer_ = std::make_unique<CofWriter>(DeleteFileSchema(), delete_options);
  }
  delete_writer_->AppendRow({Value::Bigint(id.write_id), Value::Bigint(id.bucket),
                             Value::Bigint(id.row_id), Value::Bigint(write_id_)});
  ++deletes_written_;
}

Status AcidWriter::Commit() {
  if (insert_writer_) {
    HIVE_ASSIGN_OR_RETURN(std::string bytes, insert_writer_->Finish());
    std::string delta_dir = JoinPath(dir_, DeltaDirName(write_id_, write_id_));
    HIVE_RETURN_IF_ERROR(fs_->MakeDirs(delta_dir));
    HIVE_RETURN_IF_ERROR(fs_->WriteFile(JoinPath(delta_dir, "file_0000"), bytes));
    insert_writer_.reset();
  }
  if (delete_writer_) {
    HIVE_ASSIGN_OR_RETURN(std::string bytes, delete_writer_->Finish());
    std::string dd_dir = JoinPath(dir_, DeleteDeltaDirName(write_id_, write_id_));
    HIVE_RETURN_IF_ERROR(fs_->MakeDirs(dd_dir));
    HIVE_RETURN_IF_ERROR(fs_->WriteFile(JoinPath(dd_dir, "file_0000"), bytes));
    delete_writer_.reset();
  }
  return Status::OK();
}

Result<AcidDirSelection> SelectAcidDirs(FileSystem* fs, const std::string& dir,
                                        const ValidWriteIdList& snapshot) {
  AcidDirSelection sel;
  if (!fs->Exists(dir)) return sel;  // empty table
  HIVE_ASSIGN_OR_RETURN(std::vector<FileInfo> entries, fs->ListDir(dir));
  std::vector<AcidDirInfo> bases, deltas, delete_deltas;
  for (const FileInfo& e : entries) {
    if (!e.is_dir) continue;
    AcidDirInfo info = ParseAcidDirName(e.path);
    switch (info.kind) {
      case AcidDirKind::kBase: bases.push_back(info); break;
      case AcidDirKind::kDelta: deltas.push_back(info); break;
      case AcidDirKind::kDeleteDelta: delete_deltas.push_back(info); break;
      case AcidDirKind::kOther: break;
    }
  }
  // Newest base visible to the snapshot wins; older bases are obsolete.
  std::sort(bases.begin(), bases.end(),
            [](const AcidDirInfo& a, const AcidDirInfo& b) {
              return a.max_write_id < b.max_write_id;
            });
  int64_t base_wid = 0;
  for (const AcidDirInfo& b : bases) {
    if (b.max_write_id <= snapshot.high_watermark) {
      if (sel.base) sel.obsolete.push_back(*sel.base);
      sel.base = b;
      base_wid = b.max_write_id;
    }
  }
  auto keep = [&](std::vector<AcidDirInfo>& in, std::vector<AcidDirInfo>* out) {
    std::sort(in.begin(), in.end(), [](const AcidDirInfo& a, const AcidDirInfo& b) {
      if (a.min_write_id != b.min_write_id) return a.min_write_id < b.min_write_id;
      return a.max_write_id > b.max_write_id;  // widest first at same start
    });
    for (size_t i = 0; i < in.size(); ++i) {
      const AcidDirInfo& d = in[i];
      if (d.max_write_id <= base_wid) {
        sel.obsolete.push_back(d);
        continue;
      }
      // A delta strictly contained in an earlier (wider) surviving one is a
      // pre-compaction leftover.
      bool contained = false;
      for (const AcidDirInfo& prev : *out) {
        if (prev.min_write_id <= d.min_write_id && d.max_write_id <= prev.max_write_id &&
            !(prev.min_write_id == d.min_write_id && prev.max_write_id == d.max_write_id)) {
          contained = true;
          break;
        }
      }
      if (contained) {
        sel.obsolete.push_back(d);
        continue;
      }
      // Visibility is enforced row-by-row from the embedded write ids, so
      // every surviving directory is read; deltas of open/aborted
      // transactions contribute no visible rows.
      out->push_back(d);
    }
  };
  keep(deltas, &sel.deltas);
  keep(delete_deltas, &sel.delete_deltas);
  return sel;
}

AcidReader::AcidReader(FileSystem* fs, std::string dir, Schema user_schema,
                       ChunkProvider* provider)
    : fs_(fs),
      dir_(std::move(dir)),
      user_schema_(std::move(user_schema)),
      direct_provider_(fs),
      provider_(provider ? provider : &direct_provider_) {}

Status AcidReader::LoadDeleteDeltas(const std::vector<AcidDirInfo>& delete_dirs) {
  for (const AcidDirInfo& dd : delete_dirs) {
    HIVE_ASSIGN_OR_RETURN(std::vector<FileInfo> files, fs_->ListDir(dd.path));
    for (const FileInfo& f : files) {
      if (f.is_dir) continue;
      HIVE_ASSIGN_OR_RETURN(std::shared_ptr<CofReader> reader,
                            provider_->OpenReader(f.path));
      for (size_t rg = 0; rg < reader->num_row_groups(); ++rg) {
        ColumnVectorPtr cols[4];
        for (size_t c = 0; c < 4; ++c) {
          HIVE_ASSIGN_OR_RETURN(cols[c], provider_->ReadChunk(reader, rg, c));
        }
        const auto& wid = cols[0]->i64_data();
        const auto& bucket = cols[1]->i64_data();
        const auto& rowid = cols[2]->i64_data();
        const auto& deleter = cols[3]->i64_data();
        for (size_t i = 0; i < wid.size(); ++i) {
          // A delete only applies when the deleting transaction is visible.
          if (!snapshot_.IsValid(deleter[i])) continue;
          delete_set_.insert({wid[i], bucket[i], rowid[i]});
        }
      }
    }
  }
  return Status::OK();
}

Status AcidReader::Open(const ValidWriteIdList& snapshot, const AcidScanOptions& options) {
  snapshot_ = snapshot;
  options_ = options;
  if (options_.columns.empty()) {
    for (size_t i = 0; i < user_schema_.num_fields(); ++i)
      options_.columns.push_back(i);
  }
  HIVE_ASSIGN_OR_RETURN(AcidDirSelection sel, SelectAcidDirs(fs_, dir_, snapshot));
  auto add_files = [&](const AcidDirInfo& d) -> Status {
    HIVE_ASSIGN_OR_RETURN(std::vector<FileInfo> files, fs_->ListDir(d.path));
    for (const FileInfo& f : files)
      if (!f.is_dir) data_files_.push_back(f.path);
    return Status::OK();
  };
  if (sel.base) HIVE_RETURN_IF_ERROR(add_files(*sel.base));
  for (const AcidDirInfo& d : sel.deltas) HIVE_RETURN_IF_ERROR(add_files(d));
  HIVE_RETURN_IF_ERROR(LoadDeleteDeltas(sel.delete_deltas));
  opened_ = true;
  return Status::OK();
}

Result<RowBatch> AcidReader::ReadFileRowGroup(const std::shared_ptr<CofReader>& file,
                                              size_t row_group) const {
  row_groups_read_.fetch_add(1, std::memory_order_relaxed);
  // Physical columns: requested user columns shifted past the meta
  // columns, plus the meta columns themselves (always read: validity and
  // delete anti-join need them; cheap because they are RLE).
  std::vector<size_t> physical;
  for (size_t c : options_.columns) physical.push_back(c + kNumAcidMetaCols);
  physical.push_back(0);
  physical.push_back(1);
  physical.push_back(2);
  Schema raw_schema;
  for (size_t c : physical)
    raw_schema.AddField(file->schema().field(c).name, file->schema().field(c).type);
  RowBatch raw(raw_schema);
  for (size_t i = 0; i < physical.size(); ++i) {
    HIVE_ASSIGN_OR_RETURN(ColumnVectorPtr col,
                          provider_->ReadChunk(file, row_group, physical[i]));
    raw.SetColumn(i, std::move(col));
  }
  raw.set_num_rows(file->row_group(row_group).num_rows);

  size_t n_user = options_.columns.size();
  const auto& wid = raw.column(n_user)->i64_data();
  const auto& bucket = raw.column(n_user + 1)->i64_data();
  const auto& rowid = raw.column(n_user + 2)->i64_data();
  std::vector<int32_t> selection;
  selection.reserve(raw.num_rows());
  for (size_t i = 0; i < raw.num_rows(); ++i) {
    if (!snapshot_.IsValid(wid[i])) continue;
    if (!delete_set_.empty() &&
        delete_set_.count({wid[i], bucket[i], rowid[i]}) != 0)
      continue;
    selection.push_back(static_cast<int32_t>(i));
  }

  Schema out_schema;
  for (size_t c : options_.columns)
    out_schema.AddField(user_schema_.field(c).name, user_schema_.field(c).type);
  if (options_.include_row_ids) {
    out_schema.AddField(kAcidWriteIdCol, DataType::Bigint());
    out_schema.AddField(kAcidBucketCol, DataType::Bigint());
    out_schema.AddField(kAcidRowIdCol, DataType::Bigint());
  }
  RowBatch out(out_schema);
  for (size_t i = 0; i < n_user; ++i) out.SetColumn(i, raw.column(i));
  if (options_.include_row_ids) {
    out.SetColumn(n_user, raw.column(n_user));
    out.SetColumn(n_user + 1, raw.column(n_user + 1));
    out.SetColumn(n_user + 2, raw.column(n_user + 2));
  }
  out.set_num_rows(raw.num_rows());
  if (selection.size() != raw.num_rows()) out.SetSelection(std::move(selection));
  return out;
}

Result<RowBatch> AcidReader::NextBatch(bool* done) {
  *done = false;
  if (!opened_) return Status::Internal("AcidReader not opened");
  for (;;) {
    if (!current_) {
      if (file_index_ >= data_files_.size()) {
        *done = true;
        return RowBatch();
      }
      HIVE_ASSIGN_OR_RETURN(current_, provider_->OpenReader(data_files_[file_index_]));
      rg_index_ = 0;
    }
    if (rg_index_ >= current_->num_row_groups()) {
      current_.reset();
      ++file_index_;
      continue;
    }
    size_t rg = rg_index_++;
    if (!current_->MightMatch(rg, options_.sarg)) {
      row_groups_skipped_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    return ReadFileRowGroup(current_, rg);
  }
}

Compactor::Compactor(FileSystem* fs, std::string dir, Schema user_schema)
    : fs_(fs), dir_(std::move(dir)), user_schema_(std::move(user_schema)) {}

namespace {

/// Groups deltas into maximal runs whose combined [lo, hi] range never
/// spans a snapshot exception. An open transaction inside the range could
/// still commit its own delta later; if an already-compacted delta covered
/// that write id, the late delta would look like a pre-compaction leftover
/// and its data would be lost. Splitting at exceptions prevents that.
std::vector<std::vector<AcidDirInfo>> SplitMergeRuns(
    const std::vector<AcidDirInfo>& deltas, const ValidWriteIdList& snapshot) {
  std::vector<std::vector<AcidDirInfo>> runs;
  std::vector<AcidDirInfo> current;
  int64_t current_hi = 0;
  for (const AcidDirInfo& d : deltas) {
    bool gap_has_open = false;
    if (!current.empty()) {
      auto it = snapshot.open_writes.lower_bound(current_hi + 1);
      if (it != snapshot.open_writes.end() && *it < d.min_write_id)
        gap_has_open = true;
    }
    if (!current.empty() && gap_has_open) {
      runs.push_back(std::move(current));
      current.clear();
    }
    current_hi = std::max(current_hi, d.max_write_id);
    current.push_back(d);
  }
  if (!current.empty()) runs.push_back(std::move(current));
  return runs;
}

}  // namespace

Status Compactor::RunMinor(const ValidWriteIdList& snapshot) {
  HIVE_ASSIGN_OR_RETURN(AcidDirSelection sel, SelectAcidDirs(fs_, dir_, snapshot));
  // Merge insert deltas, run by run.
  for (const auto& run : SplitMergeRuns(sel.deltas, snapshot)) {
    if (run.size() < 2) continue;
    int64_t lo = run.front().min_write_id;
    int64_t hi = run.front().max_write_id;
    CofWriter writer(AcidFileSchema(user_schema_));
    for (const AcidDirInfo& d : run) {
      lo = std::min(lo, d.min_write_id);
      hi = std::max(hi, d.max_write_id);
      HIVE_ASSIGN_OR_RETURN(std::vector<FileInfo> files, fs_->ListDir(d.path));
      for (const FileInfo& f : files) {
        if (f.is_dir) continue;
        HIVE_ASSIGN_OR_RETURN(auto reader, CofReader::Open(fs_, f.path));
        std::vector<size_t> all;
        for (size_t c = 0; c < reader->schema().num_fields(); ++c) all.push_back(c);
        for (size_t rg = 0; rg < reader->num_row_groups(); ++rg) {
          HIVE_ASSIGN_OR_RETURN(RowBatch batch, reader->ReadRowGroup(rg, all));
          // Compaction deletes history: rows of aborted transactions are
          // dropped here (their ids are snapshot exceptions).
          std::vector<int32_t> keep_rows;
          const auto& wid = batch.column(0)->i64_data();
          for (size_t i = 0; i < batch.num_rows(); ++i)
            if (snapshot.IsValid(wid[i]) ||
                snapshot.open_writes.count(wid[i]) != 0)
              keep_rows.push_back(static_cast<int32_t>(i));
          if (keep_rows.size() != batch.num_rows())
            batch.SetSelection(std::move(keep_rows));
          writer.AppendBatch(batch);
        }
      }
    }
    HIVE_ASSIGN_OR_RETURN(std::string bytes, writer.Finish());
    std::string out_dir = JoinPath(dir_, DeltaDirName(lo, hi));
    HIVE_RETURN_IF_ERROR(fs_->MakeDirs(out_dir));
    HIVE_RETURN_IF_ERROR(fs_->WriteFile(JoinPath(out_dir, "file_0000"), bytes));
  }
  // Merge delete deltas, same run structure.
  for (const auto& run : SplitMergeRuns(sel.delete_deltas, snapshot)) {
    if (run.size() < 2) continue;
    int64_t lo = run.front().min_write_id;
    int64_t hi = run.front().max_write_id;
    CofWriter writer(DeleteFileSchema());
    for (const AcidDirInfo& d : run) {
      lo = std::min(lo, d.min_write_id);
      hi = std::max(hi, d.max_write_id);
      HIVE_ASSIGN_OR_RETURN(std::vector<FileInfo> files, fs_->ListDir(d.path));
      for (const FileInfo& f : files) {
        if (f.is_dir) continue;
        HIVE_ASSIGN_OR_RETURN(auto reader, CofReader::Open(fs_, f.path));
        for (size_t rg = 0; rg < reader->num_row_groups(); ++rg) {
          HIVE_ASSIGN_OR_RETURN(RowBatch batch,
                                reader->ReadRowGroup(rg, {0, 1, 2, 3}));
          // Drop delete records whose deleting transaction aborted.
          std::vector<int32_t> keep_rows;
          const auto& deleter = batch.column(3)->i64_data();
          for (size_t i = 0; i < batch.num_rows(); ++i)
            if (snapshot.IsValid(deleter[i]) ||
                snapshot.open_writes.count(deleter[i]) != 0)
              keep_rows.push_back(static_cast<int32_t>(i));
          if (keep_rows.size() != batch.num_rows())
            batch.SetSelection(std::move(keep_rows));
          writer.AppendBatch(batch);
        }
      }
    }
    HIVE_ASSIGN_OR_RETURN(std::string bytes, writer.Finish());
    std::string out_dir = JoinPath(dir_, DeleteDeltaDirName(lo, hi));
    HIVE_RETURN_IF_ERROR(fs_->MakeDirs(out_dir));
    HIVE_RETURN_IF_ERROR(fs_->WriteFile(JoinPath(out_dir, "file_0000"), bytes));
  }
  return Status::OK();
}

Status Compactor::RunMajor(const ValidWriteIdList& snapshot) {
  // Never compact past a still-open transaction: its delta would be
  // orphaned once it commits. Aborted history below the cap is removed.
  ValidWriteIdList capped = snapshot;
  if (!snapshot.open_writes.empty())
    capped.high_watermark =
        std::min(capped.high_watermark, *snapshot.open_writes.begin() - 1);

  HIVE_ASSIGN_OR_RETURN(AcidDirSelection sel, SelectAcidDirs(fs_, dir_, capped));
  int64_t hwm = sel.base ? sel.base->max_write_id : 0;
  for (const AcidDirInfo& d : sel.deltas)
    if (d.max_write_id <= capped.high_watermark) hwm = std::max(hwm, d.max_write_id);
  for (const AcidDirInfo& d : sel.delete_deltas)
    if (d.max_write_id <= capped.high_watermark) hwm = std::max(hwm, d.max_write_id);
  if (hwm == 0) return Status::OK();  // nothing to do
  capped.high_watermark = std::min(capped.high_watermark, hwm);

  AcidReader reader(fs_, dir_, user_schema_);
  AcidScanOptions options;
  options.include_row_ids = true;
  HIVE_RETURN_IF_ERROR(reader.Open(capped, options));

  CofWriter writer(AcidFileSchema(user_schema_));
  bool done = false;
  size_t n_user = user_schema_.num_fields();
  for (;;) {
    HIVE_ASSIGN_OR_RETURN(RowBatch batch, reader.NextBatch(&done));
    if (done) break;
    // Reorder: meta columns lead in the file layout.
    for (size_t i = 0; i < batch.SelectedSize(); ++i) {
      int32_t row = batch.SelectedRow(i);
      std::vector<Value> full;
      full.reserve(n_user + kNumAcidMetaCols);
      full.push_back(batch.column(n_user)->GetValue(row));
      full.push_back(batch.column(n_user + 1)->GetValue(row));
      full.push_back(batch.column(n_user + 2)->GetValue(row));
      for (size_t c = 0; c < n_user; ++c)
        full.push_back(batch.column(c)->GetValue(row));
      writer.AppendRow(full);
    }
  }
  HIVE_ASSIGN_OR_RETURN(std::string bytes, writer.Finish());
  std::string out_dir = JoinPath(dir_, BaseDirName(hwm));
  HIVE_RETURN_IF_ERROR(fs_->MakeDirs(out_dir));
  HIVE_RETURN_IF_ERROR(fs_->WriteFile(JoinPath(out_dir, "file_0000"), bytes));
  return Status::OK();
}

Status Compactor::Clean(const ValidWriteIdList& snapshot) {
  HIVE_ASSIGN_OR_RETURN(AcidDirSelection sel, SelectAcidDirs(fs_, dir_, snapshot));
  for (const AcidDirInfo& d : sel.obsolete)
    HIVE_RETURN_IF_ERROR(fs_->DeleteRecursive(d.path));
  return Status::OK();
}

}  // namespace hive
