#include "storage/cof.h"

#include <algorithm>
#include <unordered_map>

#include "common/hash.h"
#include "common/serde.h"

namespace hive {

namespace {

constexpr char kMagic[] = "COF1";
constexpr size_t kMagicLen = 4;

/// Seed for the per-chunk Murmur64 checksums carried in the footer.
constexpr uint64_t kChunkChecksumSeed = 0xc0f1c0f1ULL;

enum Encoding : uint8_t {
  kPlainI64 = 0,
  kRleI64 = 1,
  kPlainF64 = 2,
  kPlainString = 3,
  kDictString = 4,
};

void PutValidity(std::string* out, const std::vector<uint8_t>& validity) {
  serde::PutU32(out, static_cast<uint32_t>(validity.size()));
  bool all_valid = true;
  for (uint8_t v : validity)
    if (!v) {
      all_valid = false;
      break;
    }
  out->push_back(all_valid ? 1 : 0);
  if (!all_valid)
    out->append(reinterpret_cast<const char*>(validity.data()), validity.size());
}

bool GetValidity(const std::string& in, size_t* offset, std::vector<uint8_t>* validity) {
  uint32_t n;
  if (!serde::GetU32(in, offset, &n)) return false;
  if (*offset >= in.size()) return false;
  uint8_t all_valid = static_cast<uint8_t>(in[(*offset)++]);
  if (all_valid) {
    validity->assign(n, 1);
    return true;
  }
  if (*offset + n > in.size()) return false;
  validity->resize(n);
  std::memcpy(validity->data(), in.data() + *offset, n);
  *offset += n;
  return true;
}

/// Encodes one column chunk, choosing the cheapest encoding.
void EncodeColumn(const ColumnVector& col, std::string* out) {
  const size_t n = col.size();
  if (col.type().kind == TypeKind::kDouble) {
    out->push_back(static_cast<char>(kPlainF64));
    PutValidity(out, col.validity());
    out->append(reinterpret_cast<const char*>(col.f64_data().data()), n * 8);
    return;
  }
  if (col.type().kind == TypeKind::kString) {
    // Count distinct to decide between plain and dictionary encoding.
    std::unordered_map<std::string, uint32_t> dict;
    size_t plain_cost = 0, dict_str_cost = 0;
    for (size_t i = 0; i < n; ++i) {
      const std::string& s = col.GetStr(i);
      plain_cost += 4 + s.size();
      if (dict.emplace(s, static_cast<uint32_t>(dict.size())).second)
        dict_str_cost += 4 + s.size();
    }
    size_t dict_cost = 4 + dict_str_cost + n * 4;
    if (dict_cost < plain_cost) {
      out->push_back(static_cast<char>(kDictString));
      PutValidity(out, col.validity());
      // Dictionary in first-appearance order.
      std::vector<const std::string*> ordered(dict.size());
      for (const auto& kv : dict) ordered[kv.second] = &kv.first;
      serde::PutU32(out, static_cast<uint32_t>(ordered.size()));
      for (const std::string* s : ordered) serde::PutString(out, *s);
      for (size_t i = 0; i < n; ++i) serde::PutU32(out, dict[col.GetStr(i)]);
    } else {
      out->push_back(static_cast<char>(kPlainString));
      PutValidity(out, col.validity());
      for (size_t i = 0; i < n; ++i) serde::PutString(out, col.GetStr(i));
    }
    return;
  }
  // Integer-backed kinds: plain vs run-length.
  const auto& data = col.i64_data();
  size_t runs = n == 0 ? 0 : 1;
  for (size_t i = 1; i < n; ++i)
    if (data[i] != data[i - 1]) ++runs;
  size_t rle_cost = 4 + runs * 12;
  size_t plain_cost = n * 8;
  if (rle_cost < plain_cost) {
    out->push_back(static_cast<char>(kRleI64));
    PutValidity(out, col.validity());
    serde::PutU32(out, static_cast<uint32_t>(runs));
    size_t i = 0;
    while (i < n) {
      size_t j = i;
      while (j < n && data[j] == data[i]) ++j;
      serde::PutI64(out, data[i]);
      serde::PutU32(out, static_cast<uint32_t>(j - i));
      i = j;
    }
  } else {
    out->push_back(static_cast<char>(kPlainI64));
    PutValidity(out, col.validity());
    out->append(reinterpret_cast<const char*>(data.data()), n * 8);
  }
}

Result<ColumnVectorPtr> DecodeColumn(const std::string& in, DataType type) {
  size_t offset = 0;
  if (in.empty()) return Status::Corruption("empty column chunk");
  auto enc = static_cast<Encoding>(static_cast<uint8_t>(in[0]));
  offset = 1;
  auto col = std::make_shared<ColumnVector>(type);
  std::vector<uint8_t> validity;
  if (!GetValidity(in, &offset, &validity)) return Status::Corruption("cof validity");
  const size_t n = validity.size();
  col->Resize(n);
  col->validity() = validity;
  switch (enc) {
    case kPlainI64: {
      if (offset + n * 8 > in.size()) return Status::Corruption("cof i64 data");
      std::memcpy(col->i64_data().data(), in.data() + offset, n * 8);
      break;
    }
    case kRleI64: {
      uint32_t runs;
      if (!serde::GetU32(in, &offset, &runs)) return Status::Corruption("cof rle");
      size_t pos = 0;
      for (uint32_t r = 0; r < runs; ++r) {
        int64_t v;
        uint32_t count;
        if (!serde::GetI64(in, &offset, &v) || !serde::GetU32(in, &offset, &count))
          return Status::Corruption("cof rle run");
        for (uint32_t k = 0; k < count && pos < n; ++k) col->i64_data()[pos++] = v;
      }
      if (pos != n) return Status::Corruption("cof rle length");
      break;
    }
    case kPlainF64: {
      if (offset + n * 8 > in.size()) return Status::Corruption("cof f64 data");
      std::memcpy(col->f64_data().data(), in.data() + offset, n * 8);
      break;
    }
    case kPlainString: {
      for (size_t i = 0; i < n; ++i)
        if (!serde::GetString(in, &offset, &col->str_data()[i]))
          return Status::Corruption("cof string");
      break;
    }
    case kDictString: {
      uint32_t dict_size;
      if (!serde::GetU32(in, &offset, &dict_size)) return Status::Corruption("cof dict");
      std::vector<std::string> dict(dict_size);
      for (auto& s : dict)
        if (!serde::GetString(in, &offset, &s)) return Status::Corruption("cof dict entry");
      for (size_t i = 0; i < n; ++i) {
        uint32_t idx;
        if (!serde::GetU32(in, &offset, &idx) || idx >= dict_size)
          return Status::Corruption("cof dict index");
        col->str_data()[i] = dict[idx];
      }
      break;
    }
    default:
      return Status::Corruption("cof unknown encoding");
  }
  return col;
}

ColumnChunkStats ComputeStats(const ColumnVector& col) {
  ColumnChunkStats stats;
  stats.value_count = col.size();
  for (size_t i = 0; i < col.size(); ++i) {
    if (col.IsNull(i)) {
      ++stats.null_count;
      continue;
    }
    Value v = col.GetValue(i);
    if (stats.min.is_null() || Value::Compare(v, stats.min) < 0) stats.min = v;
    if (stats.max.is_null() || Value::Compare(v, stats.max) > 0) stats.max = v;
  }
  return stats;
}

void SerializeStats(std::string* out, const ColumnChunkStats& stats) {
  SerializeValue(out, stats.min);
  SerializeValue(out, stats.max);
  serde::PutU64(out, stats.null_count);
  serde::PutU64(out, stats.value_count);
  serde::PutU32(out, stats.has_bloom ? 1 : 0);
}

Result<ColumnChunkStats> DeserializeStats(const std::string& in, size_t* offset) {
  ColumnChunkStats stats;
  HIVE_ASSIGN_OR_RETURN(stats.min, DeserializeValue(in, offset));
  HIVE_ASSIGN_OR_RETURN(stats.max, DeserializeValue(in, offset));
  uint32_t has_bloom;
  if (!serde::GetU64(in, offset, &stats.null_count) ||
      !serde::GetU64(in, offset, &stats.value_count) ||
      !serde::GetU32(in, offset, &has_bloom))
    return Status::Corruption("cof stats");
  stats.has_bloom = has_bloom != 0;
  return stats;
}

}  // namespace

void SerializeValue(std::string* out, const Value& v) {
  if (v.is_null()) {
    out->push_back(0);
    return;
  }
  out->push_back(static_cast<char>(v.kind()));
  switch (v.kind()) {
    case TypeKind::kDouble:
      serde::PutF64(out, v.f64());
      break;
    case TypeKind::kString:
      serde::PutString(out, v.str());
      break;
    case TypeKind::kDecimal:
      serde::PutI64(out, v.i64());
      serde::PutU32(out, static_cast<uint32_t>(v.scale()));
      break;
    default:
      serde::PutI64(out, v.i64());
      break;
  }
}

Result<Value> DeserializeValue(const std::string& data, size_t* offset) {
  if (*offset >= data.size()) return Status::Corruption("value tag");
  auto kind = static_cast<TypeKind>(static_cast<uint8_t>(data[*offset]));
  ++*offset;
  if (kind == TypeKind::kNull) return Value::Null();
  switch (kind) {
    case TypeKind::kDouble: {
      double d;
      if (!serde::GetF64(data, offset, &d)) return Status::Corruption("value f64");
      return Value::Double(d);
    }
    case TypeKind::kString: {
      std::string s;
      if (!serde::GetString(data, offset, &s)) return Status::Corruption("value str");
      return Value::String(std::move(s));
    }
    case TypeKind::kDecimal: {
      int64_t unscaled;
      uint32_t scale;
      if (!serde::GetI64(data, offset, &unscaled) || !serde::GetU32(data, offset, &scale))
        return Status::Corruption("value decimal");
      return Value::Decimal(unscaled, static_cast<int>(scale));
    }
    default: {
      int64_t i;
      if (!serde::GetI64(data, offset, &i)) return Status::Corruption("value i64");
      switch (kind) {
        case TypeKind::kBoolean: return Value::Boolean(i != 0);
        case TypeKind::kDate: return Value::Date(i);
        case TypeKind::kTimestamp: return Value::Timestamp(i);
        default: return Value::Bigint(i);
      }
    }
  }
}

CofWriter::CofWriter(Schema schema, CofWriteOptions options)
    : schema_(std::move(schema)), options_(options) {
  buffer_.append(kMagic, kMagicLen);
  pending_.reserve(schema_.num_fields());
  for (size_t i = 0; i < schema_.num_fields(); ++i)
    pending_.emplace_back(schema_.field(i).type);
  bloom_enabled_.assign(schema_.num_fields(), false);
  for (const std::string& name : options_.bloom_columns) {
    auto idx = schema_.IndexOf(name);
    if (idx) bloom_enabled_[*idx] = true;
  }
}

void CofWriter::AppendRow(const std::vector<Value>& row) {
  for (size_t c = 0; c < pending_.size() && c < row.size(); ++c)
    pending_[c].AppendValue(row[c]);
  for (size_t c = row.size(); c < pending_.size(); ++c) pending_[c].AppendNull();
  ++pending_rows_;
  ++rows_appended_;
  if (pending_rows_ >= options_.row_group_size) FlushRowGroup();
}

void CofWriter::AppendBatch(const RowBatch& batch) {
  for (size_t i = 0; i < batch.SelectedSize(); ++i) {
    int32_t row = batch.SelectedRow(i);
    for (size_t c = 0; c < pending_.size() && c < batch.num_columns(); ++c)
      pending_[c].AppendFrom(*batch.column(c), row);
    ++pending_rows_;
    ++rows_appended_;
    if (pending_rows_ >= options_.row_group_size) FlushRowGroup();
  }
}

void CofWriter::FlushRowGroup() {
  if (pending_rows_ == 0) return;
  CofRowGroupInfo info;
  info.offset = buffer_.size();
  info.num_rows = static_cast<uint32_t>(pending_rows_);
  for (size_t c = 0; c < pending_.size(); ++c) {
    std::string encoded;
    EncodeColumn(pending_[c], &encoded);
    info.column_offsets.push_back(buffer_.size() - info.offset);
    info.column_lengths.push_back(encoded.size());
    info.column_checksums.push_back(
        Murmur64(encoded.data(), encoded.size(), kChunkChecksumSeed));
    buffer_.append(encoded);
    info.stats.push_back(ComputeStats(pending_[c]));
    if (bloom_enabled_[c]) {
      auto bloom = std::make_shared<BloomFilter>(pending_rows_, options_.bloom_fpp);
      for (size_t i = 0; i < pending_[c].size(); ++i)
        if (!pending_[c].IsNull(i)) bloom->Add(pending_[c].GetValue(i));
      info.stats.back().has_bloom = true;
      info.blooms.push_back(std::move(bloom));
    } else {
      info.blooms.push_back(nullptr);
    }
  }
  info.length = buffer_.size() - info.offset;
  row_groups_.push_back(std::move(info));
  for (auto& col : pending_) col = ColumnVector(col.type());
  pending_rows_ = 0;
}

Result<std::string> CofWriter::Finish() {
  if (finished_) return Status::Internal("CofWriter::Finish called twice");
  finished_ = true;
  FlushRowGroup();
  uint64_t footer_offset = buffer_.size();
  std::string footer;
  schema_.Serialize(&footer);
  serde::PutU32(&footer, static_cast<uint32_t>(row_groups_.size()));
  for (const CofRowGroupInfo& rg : row_groups_) {
    serde::PutU64(&footer, rg.offset);
    serde::PutU64(&footer, rg.length);
    serde::PutU32(&footer, rg.num_rows);
    for (size_t c = 0; c < schema_.num_fields(); ++c) {
      serde::PutU64(&footer, rg.column_offsets[c]);
      serde::PutU64(&footer, rg.column_lengths[c]);
      serde::PutU64(&footer, rg.column_checksums[c]);
      SerializeStats(&footer, rg.stats[c]);
      if (rg.stats[c].has_bloom) rg.blooms[c]->Serialize(&footer);
    }
  }
  buffer_.append(footer);
  // Tail: [footer checksum][footer offset][magic]. The checksum covers the
  // footer bytes so a corrupted footer read is detected before any of its
  // offsets/checksums are trusted (the chunk checksums can only protect the
  // data if the footer carrying them is itself intact).
  serde::PutU64(&buffer_, Murmur64(footer.data(), footer.size(), kChunkChecksumSeed));
  serde::PutU64(&buffer_, footer_offset);
  buffer_.append(kMagic, kMagicLen);
  return std::move(buffer_);
}

Result<std::shared_ptr<CofReader>> CofReader::Open(FileSystem* fs,
                                                   const std::string& path) {
  HIVE_ASSIGN_OR_RETURN(FileInfo info, fs->Stat(path));
  if (info.size < kMagicLen * 2 + 16) return Status::Corruption("cof too small: " + path);
  // Tail and footer integrity failures are marked transient: the bytes on
  // storage are usually fine and only this read of them was bad (torn or
  // corrupted), so the task-attempt layer re-reads instead of failing the
  // query — and a bad footer is never admitted to the metadata cache.
  HIVE_ASSIGN_OR_RETURN(std::string tail, fs->ReadRange(path, info.size - 20, 20));
  if (tail.size() != 20 || tail.substr(16, 4) != kMagic)
    return Status::Corruption("cof bad magic: " + path).MarkTransient();
  size_t off = 0;
  uint64_t footer_checksum = 0, footer_offset = 0;
  if (!serde::GetU64(tail, &off, &footer_checksum) ||
      !serde::GetU64(tail, &off, &footer_offset) || footer_offset >= info.size - 20)
    return Status::Corruption("cof bad footer offset: " + path).MarkTransient();
  HIVE_ASSIGN_OR_RETURN(
      std::string footer,
      fs->ReadRange(path, footer_offset, info.size - 20 - footer_offset));
  if (Murmur64(footer.data(), footer.size(), kChunkChecksumSeed) != footer_checksum)
    return Status::Corruption("cof footer checksum mismatch: " + path).MarkTransient();

  auto reader = std::shared_ptr<CofReader>(new CofReader());
  reader->fs_ = fs;
  reader->path_ = path;
  reader->file_id_ = info.file_id;
  size_t offset = 0;
  HIVE_ASSIGN_OR_RETURN(reader->schema_, Schema::Deserialize(footer, &offset));
  uint32_t num_rgs;
  if (!serde::GetU32(footer, &offset, &num_rgs)) return Status::Corruption("cof rg count");
  for (uint32_t i = 0; i < num_rgs; ++i) {
    CofRowGroupInfo rg;
    if (!serde::GetU64(footer, &offset, &rg.offset) ||
        !serde::GetU64(footer, &offset, &rg.length) ||
        !serde::GetU32(footer, &offset, &rg.num_rows))
      return Status::Corruption("cof rg header");
    for (size_t c = 0; c < reader->schema_.num_fields(); ++c) {
      uint64_t coff, clen, csum;
      if (!serde::GetU64(footer, &offset, &coff) ||
          !serde::GetU64(footer, &offset, &clen) ||
          !serde::GetU64(footer, &offset, &csum))
        return Status::Corruption("cof col range");
      rg.column_offsets.push_back(coff);
      rg.column_lengths.push_back(clen);
      rg.column_checksums.push_back(csum);
      HIVE_ASSIGN_OR_RETURN(ColumnChunkStats stats, DeserializeStats(footer, &offset));
      if (stats.has_bloom) {
        HIVE_ASSIGN_OR_RETURN(BloomFilter bloom, BloomFilter::Deserialize(footer, &offset));
        rg.blooms.push_back(std::make_shared<BloomFilter>(std::move(bloom)));
      } else {
        rg.blooms.push_back(nullptr);
      }
      rg.stats.push_back(std::move(stats));
    }
    reader->row_groups_.push_back(std::move(rg));
  }
  return reader;
}

uint64_t CofReader::NumRows() const {
  uint64_t n = 0;
  for (const auto& rg : row_groups_) n += rg.num_rows;
  return n;
}

ColumnChunkStats CofReader::FileStats(size_t column) const {
  ColumnChunkStats out;
  for (const auto& rg : row_groups_) {
    const ColumnChunkStats& s = rg.stats[column];
    out.null_count += s.null_count;
    out.value_count += s.value_count;
    if (!s.min.is_null() && (out.min.is_null() || Value::Compare(s.min, out.min) < 0))
      out.min = s.min;
    if (!s.max.is_null() && (out.max.is_null() || Value::Compare(s.max, out.max) > 0))
      out.max = s.max;
  }
  return out;
}

bool CofReader::MightMatch(size_t rg, const SearchArgument& sarg) const {
  if (sarg.empty()) return true;
  const CofRowGroupInfo& info = row_groups_[rg];
  std::vector<std::string> names;
  names.reserve(schema_.num_fields());
  for (const Field& f : schema_.fields()) names.push_back(f.name);
  // Augment stats with Bloom filters for equality probes.
  for (const SargPredicate& pred : sarg.conjuncts) {
    auto idx = schema_.IndexOf(pred.column);
    if (!idx) continue;
    if (!pred.ChunkMightMatch(info.stats[*idx])) return false;
    if (info.blooms[*idx] && (pred.op == SargOp::kEq || pred.op == SargOp::kIn) &&
        !pred.values.empty()) {
      bool any = false;
      for (const Value& v : pred.values)
        if (info.blooms[*idx]->MightContain(v)) {
          any = true;
          break;
        }
      if (!any) return false;
    }
  }
  return true;
}

Result<ColumnVectorPtr> CofReader::ReadColumnChunk(size_t rg, size_t column) {
  const CofRowGroupInfo& info = row_groups_[rg];
  HIVE_ASSIGN_OR_RETURN(
      std::string bytes,
      fs_->ReadRange(path_, info.offset + info.column_offsets[column],
                     info.column_lengths[column]));
  // Checksum before decode: a short read or a flipped bit must never decode
  // into wrong-but-plausible data. Marked transient — the chunk on disk may
  // be fine and only this read of it bad — so the task-attempt retry layer
  // re-reads instead of failing the query.
  if (bytes.size() != info.column_lengths[column])
    return Status::Corruption("cof chunk short read: " + path_)
        .MarkTransient();
  if (Murmur64(bytes.data(), bytes.size(), kChunkChecksumSeed) !=
      info.column_checksums[column])
    return Status::Corruption("cof chunk checksum mismatch: " + path_)
        .MarkTransient();
  return DecodeColumn(bytes, schema_.field(column).type);
}

Result<RowBatch> CofReader::ReadRowGroup(size_t rg, const std::vector<size_t>& columns) {
  Schema projected;
  for (size_t c : columns) projected.AddField(schema_.field(c).name, schema_.field(c).type);
  RowBatch batch(projected);
  for (size_t i = 0; i < columns.size(); ++i) {
    HIVE_ASSIGN_OR_RETURN(ColumnVectorPtr col, ReadColumnChunk(rg, columns[i]));
    batch.SetColumn(i, std::move(col));
  }
  batch.set_num_rows(row_groups_[rg].num_rows);
  return batch;
}

}  // namespace hive
