#ifndef HIVE_STORAGE_SARG_H_
#define HIVE_STORAGE_SARG_H_

#include <memory>
#include <string>
#include <vector>

#include "common/bloom_filter.h"
#include "common/types.h"

namespace hive {

/// Column statistics kept per row group and per file in COF footers, and
/// consulted by sarg evaluation to skip entire row groups (the ORC behaviour
/// the paper leans on in Sections 4.6 and 5.1).
struct ColumnChunkStats {
  Value min;          // null when the chunk is all-null
  Value max;
  uint64_t null_count = 0;
  uint64_t value_count = 0;
  bool has_bloom = false;
};

/// Comparison kinds available for pushdown ("sargable predicates").
enum class SargOp {
  kEq,
  kLt,
  kLe,
  kGt,
  kGe,
  kIn,
  kBetween,   // values[0] <= x <= values[1]
  kIsNull,
  kIsNotNull,
};

/// One pushed-down conjunct over a single column. `bloom` carries a dynamic
/// semijoin reducer (Section 4.6, "index semijoin"): when set, a chunk may
/// be skipped if none of its candidate values can be in the filter. A
/// predicate may be bloom-only (op == kIn with empty values).
struct SargPredicate {
  std::string column;
  SargOp op = SargOp::kEq;
  std::vector<Value> values;
  std::shared_ptr<const BloomFilter> bloom;

  /// True if a chunk with these stats could contain matching rows.
  bool ChunkMightMatch(const ColumnChunkStats& stats) const;

  std::string ToString() const;
};

/// Conjunction of pushed-down predicates.
struct SearchArgument {
  std::vector<SargPredicate> conjuncts;

  bool empty() const { return conjuncts.empty(); }

  /// True when every conjunct might match, i.e. the chunk cannot be skipped.
  bool ChunkMightMatch(
      const std::vector<std::string>& columns,
      const std::vector<ColumnChunkStats>& stats) const;

  std::string ToString() const;
};

}  // namespace hive

#endif  // HIVE_STORAGE_SARG_H_
