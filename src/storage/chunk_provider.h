#ifndef HIVE_STORAGE_CHUNK_PROVIDER_H_
#define HIVE_STORAGE_CHUNK_PROVIDER_H_

#include <memory>
#include <string>

#include "storage/cof.h"

namespace hive {

/// Indirection between scan operators and COF files. The direct provider
/// reads through the file system; the LLAP I/O elevator provides a caching
/// implementation keyed by (FileId, row group, column) with metadata
/// caching (Section 5.1). A provider must be thread-safe.
class ChunkProvider {
 public:
  virtual ~ChunkProvider() = default;

  /// Opens (or returns cached) metadata for a COF file.
  virtual Result<std::shared_ptr<CofReader>> OpenReader(const std::string& path) = 0;

  /// Reads (or returns cached) one decoded column chunk.
  virtual Result<ColumnVectorPtr> ReadChunk(const std::shared_ptr<CofReader>& reader,
                                            size_t row_group, size_t column) = 0;
};

/// Pass-through provider: every call hits the file system.
class DirectChunkProvider : public ChunkProvider {
 public:
  explicit DirectChunkProvider(FileSystem* fs) : fs_(fs) {}

  Result<std::shared_ptr<CofReader>> OpenReader(const std::string& path) override {
    return CofReader::Open(fs_, path);
  }

  Result<ColumnVectorPtr> ReadChunk(const std::shared_ptr<CofReader>& reader,
                                    size_t row_group, size_t column) override {
    return reader->ReadColumnChunk(row_group, column);
  }

 private:
  FileSystem* fs_;
};

}  // namespace hive

#endif  // HIVE_STORAGE_CHUNK_PROVIDER_H_
