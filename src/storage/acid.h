#ifndef HIVE_STORAGE_ACID_H_
#define HIVE_STORAGE_ACID_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/column_vector.h"
#include "fs/filesystem.h"
#include "storage/chunk_provider.h"
#include "storage/cof.h"
#include "storage/sarg.h"

namespace hive {

/// Snapshot of valid write ids for one table, derived by the transaction
/// manager from the global transaction list (Section 3.2). Readers skip rows
/// whose WriteId is above the high watermark or belongs to an open/aborted
/// transaction.
struct ValidWriteIdList {
  int64_t high_watermark = 0;
  /// WriteIds <= high_watermark that are open or aborted.
  std::set<int64_t> exceptions;
  /// The subset of `exceptions` whose transactions are still OPEN (may yet
  /// commit). Readers treat both alike; the compactor must never produce a
  /// base/delta whose range spans an open id (its data would be orphaned
  /// when the transaction commits), while aborted ids are safe to compact
  /// away — that is how "major compaction deletes history".
  std::set<int64_t> open_writes;

  bool IsValid(int64_t write_id) const {
    return write_id <= high_watermark && exceptions.count(write_id) == 0;
  }
  /// True when every id in [lo, hi] is valid (needed for compacted deltas).
  bool IsRangeValid(int64_t lo, int64_t hi) const {
    if (hi > high_watermark) return false;
    auto it = exceptions.lower_bound(lo);
    return it == exceptions.end() || *it > hi;
  }
  /// A snapshot that sees everything up to `hwm` (tests / non-ACID paths).
  static ValidWriteIdList All(int64_t hwm = INT64_MAX) { return {hwm, {}, {}}; }

  std::string ToString() const;
};

/// Kinds of ACID directories inside a table/partition location (Figure 3).
enum class AcidDirKind { kBase, kDelta, kDeleteDelta, kOther };

/// Parsed "base_100" / "delta_101_105" / "delete_delta_103_103" name.
struct AcidDirInfo {
  AcidDirKind kind = AcidDirKind::kOther;
  int64_t min_write_id = 0;
  int64_t max_write_id = 0;
  std::string path;
};

/// Formats/parses ACID directory names.
std::string BaseDirName(int64_t write_id);
std::string DeltaDirName(int64_t min_write_id, int64_t max_write_id);
std::string DeleteDeltaDirName(int64_t min_write_id, int64_t max_write_id);
AcidDirInfo ParseAcidDirName(const std::string& path);

/// Hidden ACID metadata columns embedded as the leading columns of every
/// ACID file; (writeid, bucket, rowid) uniquely identifies a record.
inline constexpr const char* kAcidWriteIdCol = "_acid_write_id";
inline constexpr const char* kAcidBucketCol = "_acid_bucket";
inline constexpr const char* kAcidRowIdCol = "_acid_row_id";
inline constexpr size_t kNumAcidMetaCols = 3;

/// Prepends the three ACID metadata fields to a user schema.
Schema AcidFileSchema(const Schema& user_schema);

/// Unique record identity; hashable for delete-set membership.
struct RecordId {
  int64_t write_id = 0;
  int64_t bucket = 0;
  int64_t row_id = 0;

  bool operator==(const RecordId& o) const {
    return write_id == o.write_id && bucket == o.bucket && row_id == o.row_id;
  }
};
struct RecordIdHash {
  size_t operator()(const RecordId& r) const;
};

/// Writes insert / delete deltas for one transaction's writes to a table or
/// partition directory. Each writer instance covers one (directory, WriteId)
/// pair, matching the single-statement-transaction model.
class AcidWriter {
 public:
  /// `dir` is the table or partition location; `write_id` the allocated id.
  AcidWriter(FileSystem* fs, std::string dir, Schema user_schema, int64_t write_id,
             CofWriteOptions options = {});

  /// Buffers an inserted row; row ids are assigned sequentially.
  void Insert(const std::vector<Value>& row);
  /// Buffers a delete of an existing record.
  void Delete(const RecordId& id);

  /// Flushes delta_N_N and/or delete_delta_N_N directories.
  Status Commit();

  int64_t rows_inserted() const { return next_row_id_; }

 private:
  FileSystem* fs_;
  std::string dir_;
  Schema user_schema_;
  int64_t write_id_;
  CofWriteOptions options_;
  std::unique_ptr<CofWriter> insert_writer_;
  std::unique_ptr<CofWriter> delete_writer_;
  int64_t next_row_id_ = 0;
  int64_t deletes_written_ = 0;
};

/// Options for AcidReader scans.
struct AcidScanOptions {
  /// Projected user-column indexes (into the user schema). Empty = all.
  std::vector<size_t> columns;
  /// Pushed-down predicate for row-group skipping.
  SearchArgument sarg;
  /// When true, the three ACID metadata columns are appended to each output
  /// batch (needed by UPDATE/DELETE to address records).
  bool include_row_ids = false;
};

/// Merge-on-read scanner over an ACID directory: selects the newest valid
/// base, overlays valid insert deltas, and anti-joins the in-memory delete
/// set built from valid delete deltas — the read path of Section 3.2.
class AcidReader {
 public:
  /// `provider` overrides how column chunks are fetched (the LLAP cache
  /// plugs in here); defaults to direct file-system reads.
  AcidReader(FileSystem* fs, std::string dir, Schema user_schema,
             ChunkProvider* provider = nullptr);

  /// Plans the scan under `snapshot`: resolves directories and loads delete
  /// deltas. Must be called before NextBatch.
  Status Open(const ValidWriteIdList& snapshot, const AcidScanOptions& options);

  /// Produces the next batch, or an empty optional batch (num_rows 0 and
  /// `done` set) at end of scan.
  Result<RowBatch> NextBatch(bool* done);

  /// Reads one row group of one selected data file, applying snapshot
  /// validity and the delete anti-join but NOT the sarg (the caller decides
  /// skipping). Const and thread-safe after Open: morsel-driven parallel
  /// scans call this concurrently for disjoint (file, row group) pairs.
  Result<RowBatch> ReadFileRowGroup(const std::shared_ptr<CofReader>& file,
                                    size_t row_group) const;

  /// Data files selected by the snapshot (for LLAP-driven scans).
  const std::vector<std::string>& data_files() const { return data_files_; }
  const std::unordered_set<RecordId, RecordIdHash>& delete_set() const {
    return delete_set_;
  }
  const SearchArgument& sarg() const { return options_.sarg; }

  /// Statistics: row groups skipped via sarg evaluation.
  uint64_t row_groups_skipped() const { return row_groups_skipped_.load(); }
  uint64_t row_groups_read() const { return row_groups_read_.load(); }

 private:
  Status LoadDeleteDeltas(const std::vector<AcidDirInfo>& delete_dirs);

  FileSystem* fs_;
  std::string dir_;
  Schema user_schema_;
  DirectChunkProvider direct_provider_;
  ChunkProvider* provider_;
  AcidScanOptions options_;
  ValidWriteIdList snapshot_;

  std::vector<std::string> data_files_;
  /// Parallel to data_files_: the file's directory write-id range; rows in
  /// multi-writeid (compacted) files carry their own embedded write ids.
  std::unordered_set<RecordId, RecordIdHash> delete_set_;

  // Iteration state (NextBatch only; ReadFileRowGroup is stateless).
  size_t file_index_ = 0;
  std::shared_ptr<CofReader> current_;
  size_t rg_index_ = 0;
  std::atomic<uint64_t> row_groups_skipped_{0};
  mutable std::atomic<uint64_t> row_groups_read_{0};
  bool opened_ = false;
};

/// Lists the ACID directories under `dir` that are visible to `snapshot`,
/// partitioned into the chosen base (nullable), insert deltas and delete
/// deltas. Exposed for the compactor and tests.
struct AcidDirSelection {
  std::optional<AcidDirInfo> base;
  std::vector<AcidDirInfo> deltas;
  std::vector<AcidDirInfo> delete_deltas;
  /// Directories superseded by the chosen base (compaction cleanup targets).
  std::vector<AcidDirInfo> obsolete;
};
Result<AcidDirSelection> SelectAcidDirs(FileSystem* fs, const std::string& dir,
                                        const ValidWriteIdList& snapshot);

/// Compaction (Section 3.2): merges deltas into larger deltas (minor) or
/// rewrites everything into a new base applying deletes (major). The merge
/// phase never takes locks; Clean() removes obsolete directories afterwards
/// so in-flight readers finish undisturbed.
class Compactor {
 public:
  Compactor(FileSystem* fs, std::string dir, Schema user_schema);

  /// Merges all valid insert deltas into one delta_{min}_{max} and all
  /// delete deltas into one delete_delta_{min}_{max}.
  Status RunMinor(const ValidWriteIdList& snapshot);

  /// Rewrites base+deltas−deletes into base_{hwm}.
  Status RunMajor(const ValidWriteIdList& snapshot);

  /// Deletes directories superseded by compaction output.
  Status Clean(const ValidWriteIdList& snapshot);

 private:
  FileSystem* fs_;
  std::string dir_;
  Schema user_schema_;
};

}  // namespace hive

#endif  // HIVE_STORAGE_ACID_H_
