#ifndef HIVE_STORAGE_COF_H_
#define HIVE_STORAGE_COF_H_

#include <memory>
#include <string>
#include <vector>

#include "common/bloom_filter.h"
#include "common/column_vector.h"
#include "common/schema.h"
#include "fs/filesystem.h"
#include "storage/sarg.h"

namespace hive {

/// COF ("Columnar ORC-like Format") is this repo's stand-in for Apache ORC:
/// a self-describing columnar file of row groups with per-row-group column
/// encodings (plain / run-length / dictionary), min-max indexes, optional
/// per-column Bloom filters and a footer carrying the schema and file-level
/// statistics. Everything the paper's read path needs — projection pushdown,
/// sargable-predicate row-group skipping and Bloom-filter probing (Sections
/// 4.6, 5.1) — is supported.
///
/// File layout:
///   "COF1"
///   row-group 0 block | row-group 1 block | ...
///   footer (schema, row-group directory with stats and Bloom filters)
///   u64 footer_offset  "COF1"
///
/// Row-group block: per column, u8 encoding tag + encoded payload.

struct CofWriteOptions {
  /// Rows per row group; the skipping granularity.
  size_t row_group_size = 4096;
  /// Columns (by name, case-insensitive) that get Bloom filters.
  std::vector<std::string> bloom_columns;
  double bloom_fpp = 0.03;
};

/// Per-row-group directory entry in the footer.
struct CofRowGroupInfo {
  uint64_t offset = 0;
  uint64_t length = 0;
  uint32_t num_rows = 0;
  /// Per-column byte ranges relative to the row-group block start, so a
  /// reader can fetch a single column chunk with one ranged read.
  std::vector<uint64_t> column_offsets;
  std::vector<uint64_t> column_lengths;
  /// Murmur64 of each encoded column chunk, validated on every read (ORC
  /// likewise checksums its streams). A mismatch means the bytes — not the
  /// format — are bad, so readers report it as a *transient* Corruption:
  /// a re-read (new task attempt) can succeed where this one saw rot.
  std::vector<uint64_t> column_checksums;
  std::vector<ColumnChunkStats> stats;
  std::vector<std::shared_ptr<BloomFilter>> blooms;  // nullptr when absent
};

/// Streaming writer: append rows/batches, then Finish() to obtain the file
/// bytes (the caller writes them through a FileSystem).
class CofWriter {
 public:
  CofWriter(Schema schema, CofWriteOptions options = {});

  void AppendRow(const std::vector<Value>& row);
  void AppendBatch(const RowBatch& batch);

  size_t rows_appended() const { return rows_appended_; }

  /// Seals the file and returns its serialized bytes.
  Result<std::string> Finish();

 private:
  void FlushRowGroup();

  Schema schema_;
  CofWriteOptions options_;
  std::string buffer_;
  std::vector<CofRowGroupInfo> row_groups_;
  std::vector<ColumnVector> pending_;  // current row group accumulation
  std::vector<bool> bloom_enabled_;
  size_t pending_rows_ = 0;
  size_t rows_appended_ = 0;
  bool finished_ = false;
};

/// Reader over a COF file. Opens by parsing the footer (one ranged read),
/// then serves per-column chunk reads; the LLAP I/O elevator addresses the
/// cache at exactly this (file, row group, column) granularity.
class CofReader {
 public:
  /// Opens by reading the footer from `fs`. Metadata only; no data read.
  static Result<std::shared_ptr<CofReader>> Open(FileSystem* fs,
                                                 const std::string& path);

  const Schema& schema() const { return schema_; }
  size_t num_row_groups() const { return row_groups_.size(); }
  const CofRowGroupInfo& row_group(size_t i) const { return row_groups_[i]; }
  uint64_t file_id() const { return file_id_; }
  const std::string& path() const { return path_; }
  uint64_t NumRows() const;

  /// File-level column stats (merged over all row groups).
  ColumnChunkStats FileStats(size_t column) const;

  /// True when row group `rg` cannot be skipped under `sarg`.
  bool MightMatch(size_t rg, const SearchArgument& sarg) const;

  /// Reads and decodes one column chunk.
  Result<ColumnVectorPtr> ReadColumnChunk(size_t rg, size_t column);

  /// Reads a row group restricted to `columns` (projection pushdown).
  /// The returned batch's schema contains just those columns, in order.
  Result<RowBatch> ReadRowGroup(size_t rg, const std::vector<size_t>& columns);

 private:
  CofReader() = default;

  FileSystem* fs_ = nullptr;
  std::string path_;
  uint64_t file_id_ = 0;
  Schema schema_;
  std::vector<CofRowGroupInfo> row_groups_;
};

/// Serializes a Value with a kind tag (used by footer stats).
void SerializeValue(std::string* out, const Value& v);
Result<Value> DeserializeValue(const std::string& data, size_t* offset);

}  // namespace hive

#endif  // HIVE_STORAGE_COF_H_
