#include "storage/sarg.h"

#include "common/schema.h"

namespace hive {

namespace {
const char* OpName(SargOp op) {
  switch (op) {
    case SargOp::kEq: return "=";
    case SargOp::kLt: return "<";
    case SargOp::kLe: return "<=";
    case SargOp::kGt: return ">";
    case SargOp::kGe: return ">=";
    case SargOp::kIn: return "IN";
    case SargOp::kBetween: return "BETWEEN";
    case SargOp::kIsNull: return "IS NULL";
    case SargOp::kIsNotNull: return "IS NOT NULL";
  }
  return "?";
}
}  // namespace

bool SargPredicate::ChunkMightMatch(const ColumnChunkStats& stats) const {
  const bool all_null = stats.null_count == stats.value_count;
  switch (op) {
    case SargOp::kIsNull:
      return stats.null_count > 0;
    case SargOp::kIsNotNull:
      return !all_null;
    default:
      break;
  }
  if (all_null) return false;  // value comparisons never match pure-null chunks
  if (stats.min.is_null() || stats.max.is_null()) return true;  // no stats
  switch (op) {
    case SargOp::kEq: {
      const Value& v = values[0];
      if (Value::Compare(v, stats.min) < 0 || Value::Compare(v, stats.max) > 0)
        return false;
      if (bloom && !bloom->MightContain(v)) return false;
      return true;
    }
    case SargOp::kLt:
      return Value::Compare(stats.min, values[0]) < 0;
    case SargOp::kLe:
      return Value::Compare(stats.min, values[0]) <= 0;
    case SargOp::kGt:
      return Value::Compare(stats.max, values[0]) > 0;
    case SargOp::kGe:
      return Value::Compare(stats.max, values[0]) >= 0;
    case SargOp::kBetween: {
      if (Value::Compare(stats.max, values[0]) < 0) return false;
      if (Value::Compare(stats.min, values[1]) > 0) return false;
      return true;
    }
    case SargOp::kIn: {
      bool any_in_range = values.empty();  // bloom-only predicate
      for (const Value& v : values) {
        if (Value::Compare(v, stats.min) >= 0 && Value::Compare(v, stats.max) <= 0) {
          if (!bloom || bloom->MightContain(v)) {
            any_in_range = true;
            break;
          }
        }
      }
      return any_in_range;
    }
    default:
      return true;
  }
}

std::string SargPredicate::ToString() const {
  std::string out = column;
  out += " ";
  out += OpName(op);
  if (op == SargOp::kIn || op == SargOp::kBetween) {
    out += " (";
    for (size_t i = 0; i < values.size(); ++i) {
      if (i) out += ", ";
      out += values[i].ToString();
    }
    out += ")";
  } else if (!values.empty()) {
    out += " " + values[0].ToString();
  }
  if (bloom) out += " [bloom]";
  return out;
}

bool SearchArgument::ChunkMightMatch(
    const std::vector<std::string>& columns,
    const std::vector<ColumnChunkStats>& stats) const {
  for (const SargPredicate& pred : conjuncts) {
    std::string needle = ToLower(pred.column);
    for (size_t c = 0; c < columns.size(); ++c) {
      if (ToLower(columns[c]) == needle) {
        if (!pred.ChunkMightMatch(stats[c])) return false;
        break;
      }
    }
  }
  return true;
}

std::string SearchArgument::ToString() const {
  std::string out;
  for (size_t i = 0; i < conjuncts.size(); ++i) {
    if (i) out += " AND ";
    out += conjuncts[i].ToString();
  }
  return out;
}

}  // namespace hive
