#include "federation/csv_handler.h"

#include "federation/materialized_operator.h"

namespace hive {

std::string CsvJoin(const std::vector<Value>& row) {
  std::string out;
  for (size_t i = 0; i < row.size(); ++i) {
    if (i) out.push_back(',');
    if (row[i].is_null()) {
      out += "\\N";
      continue;
    }
    for (char c : row[i].ToString()) {
      if (c == ',' || c == '\\' || c == '\n') out.push_back('\\');
      out.push_back(c);
    }
  }
  return out;
}

std::vector<std::string> CsvSplit(const std::string& line) {
  std::vector<std::string> out;
  std::string cur;
  for (size_t i = 0; i < line.size(); ++i) {
    if (line[i] == '\\' && i + 1 < line.size()) {
      if (line[i + 1] == 'N' && cur.empty() &&
          (i + 2 >= line.size() || line[i + 2] == ',')) {
        cur = "\\N";
        ++i;
        continue;
      }
      cur.push_back(line[++i]);
      continue;
    }
    if (line[i] == ',') {
      out.push_back(std::move(cur));
      cur.clear();
      continue;
    }
    cur.push_back(line[i]);
  }
  out.push_back(std::move(cur));
  return out;
}

Status CsvStorageHandler::Insert(const TableDesc& table, const RowBatch& rows) {
  std::string path = DataFile(table);
  std::string existing;
  if (fs_->Exists(path)) {
    HIVE_ASSIGN_OR_RETURN(existing, fs_->ReadFile(path));
  }
  for (size_t i = 0; i < rows.SelectedSize(); ++i) {
    existing += CsvJoin(rows.GetRow(i));
    existing.push_back('\n');
  }
  return fs_->WriteFile(path, existing);
}

Result<OperatorPtr> CsvStorageHandler::CreateScan(ExecContext* ctx,
                                                  const RelNode& scan) {
  Schema full = scan.table.FullSchema();
  Schema proj_schema;
  for (size_t ordinal : scan.projected)
    proj_schema.AddField(full.field(ordinal).name, full.field(ordinal).type);
  RowBatch rows(proj_schema);
  size_t out_rows = 0;
  std::string path = DataFile(scan.table);
  if (fs_->Exists(path)) {
    HIVE_ASSIGN_OR_RETURN(std::string data, fs_->ReadFile(path));
    size_t start = 0;
    while (start < data.size()) {
      size_t end = data.find('\n', start);
      if (end == std::string::npos) end = data.size();
      if (end > start) {
        std::vector<std::string> fields = CsvSplit(data.substr(start, end - start));
        ++out_rows;
        for (size_t i = 0; i < scan.projected.size(); ++i) {
          size_t src = scan.projected[i];
          Value v = Value::Null();
          if (src < fields.size() && fields[src] != "\\N") {
            auto parsed = Value::Parse(fields[src], proj_schema.field(i).type);
            if (parsed.ok()) v = *parsed;
          }
          rows.column(i)->AppendValue(v);
        }
      }
      start = end + 1;
    }
  }
  rows.set_num_rows(out_rows);
  return OperatorPtr(std::make_unique<MaterializedScanOperator>(ctx, scan, rows));
}

}  // namespace hive
