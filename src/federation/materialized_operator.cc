#include "federation/materialized_operator.h"

#include "exec/vector_eval.h"

namespace hive {

MaterializedScanOperator::MaterializedScanOperator(ExecContext* ctx,
                                                   const RelNode& node, RowBatch rows)
    : Operator(ctx), schema_(node.schema), filters_(node.scan_filters) {
  // Cast/realign columns to the declared output types.
  RowBatch aligned(schema_);
  size_t out_rows = 0;
  for (size_t i = 0; i < rows.SelectedSize(); ++i) {
    int32_t row = rows.SelectedRow(i);
    ++out_rows;
    for (size_t c = 0; c < schema_.num_fields(); ++c) {
      Value v = c < rows.num_columns() ? rows.column(c)->GetValue(row) : Value::Null();
      if (!v.is_null() && v.kind() != schema_.field(c).type.kind) {
        auto cast = v.CastTo(schema_.field(c).type);
        v = cast.ok() ? *cast : Value::Null();
      }
      aligned.column(c)->AppendValue(v);
    }
  }
  aligned.set_num_rows(out_rows);
  rows_ = std::move(aligned);
}

Status MaterializedScanOperator::Open() { return Status::OK(); }

Result<RowBatch> MaterializedScanOperator::Next(bool* done) {
  if (emitted_ || rows_.num_rows() == 0) {
    *done = true;
    return RowBatch();
  }
  emitted_ = true;
  *done = false;
  RowBatch out = rows_;
  for (const ExprPtr& f : filters_) {
    HIVE_ASSIGN_OR_RETURN(std::vector<int32_t> selection, FilterSelection(*f, out));
    out.SetSelection(std::move(selection));
  }
  rows_produced_ += static_cast<int64_t>(out.SelectedSize());
  return out;
}

}  // namespace hive
