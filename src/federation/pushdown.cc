#include "federation/droid.h"
#include "federation/storage_handler.h"

namespace hive {

namespace {

/// Attempts to convert one bound conjunct (over the scan's output schema)
/// into droid filter structures. Returns false when not expressible.
bool ConvertFilter(const ExprPtr& e, const Schema& schema, DroidQuery* query) {
  auto column_of = [&](const ExprPtr& c) -> const Field* {
    if (c->kind != ExprKind::kColumnRef) return nullptr;
    if (c->binding < 0 || static_cast<size_t>(c->binding) >= schema.num_fields())
      return nullptr;
    return &schema.field(c->binding);
  };
  switch (e->kind) {
    case ExprKind::kBinary: {
      const ExprPtr& l = e->children[0];
      const ExprPtr& r = e->children[1];
      // EXTRACT(year FROM __time) comparisons -> time intervals.
      if (l->kind == ExprKind::kFunction && l->func_name == "EXTRACT_YEAR" &&
          !l->children.empty() && r->kind == ExprKind::kLiteral) {
        const Field* f = column_of(l->children[0]);
        if (!f || ToLower(f->name) != "__time") return false;
        int64_t year = r->literal.AsInt64();
        int64_t start = DaysFromCivil(static_cast<int>(year), 1, 1) * 86400LL * 1000000LL;
        int64_t end =
            DaysFromCivil(static_cast<int>(year) + 1, 1, 1) * 86400LL * 1000000LL;
        switch (e->bin_op) {
          case BinaryOp::kEq:
            query->interval_start_us = std::max(query->interval_start_us, start);
            query->interval_end_us = std::min(query->interval_end_us, end);
            return true;
          case BinaryOp::kGe:
            query->interval_start_us = std::max(query->interval_start_us, start);
            return true;
          case BinaryOp::kGt:
            query->interval_start_us = std::max(query->interval_start_us, end);
            return true;
          case BinaryOp::kLe:
            query->interval_end_us = std::min(query->interval_end_us, end);
            return true;
          case BinaryOp::kLt:
            query->interval_end_us = std::min(query->interval_end_us, start);
            return true;
          default:
            return false;
        }
      }
      const Field* f = column_of(l);
      if (!f || r->kind != ExprKind::kLiteral) return false;
      if (e->bin_op == BinaryOp::kEq && f->type.kind == TypeKind::kString) {
        query->filters.push_back({ToLower(f->name), r->literal.str()});
        return true;
      }
      if (ToLower(f->name) == "__time") {
        int64_t t = r->literal.AsInt64();
        switch (e->bin_op) {
          case BinaryOp::kGe: query->interval_start_us = std::max(query->interval_start_us, t); return true;
          case BinaryOp::kGt: query->interval_start_us = std::max(query->interval_start_us, t + 1); return true;
          case BinaryOp::kLt: query->interval_end_us = std::min(query->interval_end_us, t); return true;
          case BinaryOp::kLe: query->interval_end_us = std::min(query->interval_end_us, t + 1); return true;
          default: return false;
        }
      }
      if (f->type.IsNumeric()) {
        DroidBound bound;
        bound.dimension = ToLower(f->name);
        double v = r->literal.AsDouble();
        switch (e->bin_op) {
          case BinaryOp::kGt:
            bound.has_lower = true; bound.lower = v; bound.lower_strict = true;
            break;
          case BinaryOp::kGe:
            bound.has_lower = true; bound.lower = v;
            break;
          case BinaryOp::kLt:
            bound.has_upper = true; bound.upper = v; bound.upper_strict = true;
            break;
          case BinaryOp::kLe:
            bound.has_upper = true; bound.upper = v;
            break;
          case BinaryOp::kEq:
            bound.has_lower = true; bound.lower = v;
            bound.has_upper = true; bound.upper = v;
            break;
          default: return false;
        }
        query->bounds.push_back(bound);
        return true;
      }
      return false;
    }
    case ExprKind::kBetween: {
      if (e->negated) return false;
      const Field* f = column_of(e->children[0]);
      if (!f || e->children[1]->kind != ExprKind::kLiteral ||
          e->children[2]->kind != ExprKind::kLiteral)
        return false;
      // EXTRACT(year...) BETWEEN handled via two bounds on __time.
      if (e->children[0]->kind == ExprKind::kFunction) return false;
      if (!f->type.IsNumeric()) return false;
      DroidBound bound;
      bound.dimension = ToLower(f->name);
      bound.has_lower = true;
      bound.lower = e->children[1]->literal.AsDouble();
      bound.has_upper = true;
      bound.upper = e->children[2]->literal.AsDouble();
      query->bounds.push_back(bound);
      return true;
    }
    case ExprKind::kInList: {
      if (e->negated) return false;
      const Field* f = column_of(e->children[0]);
      if (!f || f->type.kind != TypeKind::kString) return false;
      std::vector<std::string> values;
      for (size_t i = 1; i < e->children.size(); ++i) {
        if (e->children[i]->kind != ExprKind::kLiteral) return false;
        values.push_back(e->children[i]->literal.str());
      }
      query->in_dimension.push_back(ToLower(f->name));
      query->in_values.push_back(std::move(values));
      return true;
    }
    default:
      return false;
  }
}

bool IsHandlerScan(const RelNodePtr& node, const StorageHandlerRegistry* registry) {
  return node->kind == RelKind::kScan && !node->table.storage_handler.empty() &&
         node->federated_query.empty() &&
         registry->Get(node->table.storage_handler) != nullptr &&
         node->table.storage_handler == "droid";
}

/// Collects Filter*(Scan) under a node, gathering all conjuncts.
RelNodePtr UnwrapFilters(RelNodePtr node, std::vector<ExprPtr>* conjuncts) {
  while (node->kind == RelKind::kFilter) {
    std::function<void(const ExprPtr&)> split = [&](const ExprPtr& e) {
      if (e->kind == ExprKind::kBinary && e->bin_op == BinaryOp::kAnd) {
        split(e->children[0]);
        split(e->children[1]);
      } else {
        conjuncts->push_back(e);
      }
    };
    split(node->predicate);
    node = node->inputs[0];
  }
  return node;
}

}  // namespace

Result<RelNodePtr> PushDownToHandlers(RelNodePtr plan,
                                      const StorageHandlerRegistry* registry) {
  for (RelNodePtr& input : plan->inputs) {
    HIVE_ASSIGN_OR_RETURN(input, PushDownToHandlers(input, registry));
  }
  // Pattern: Aggregate over Filter*(Scan[droid]).
  if (plan->kind == RelKind::kAggregate) {
    std::vector<ExprPtr> conjuncts;
    RelNodePtr base = UnwrapFilters(plan->inputs[0], &conjuncts);
    if (!IsHandlerScan(base, registry)) return plan;
    for (const ExprPtr& f : base->scan_filters) conjuncts.push_back(f);

    DroidQuery query;
    query.query_type = plan->group_keys.empty() ? "timeseries" : "groupBy";
    auto ds = base->table.properties.find("droid.datasource");
    query.datasource = ds != base->table.properties.end() ? ds->second
                                                          : base->table.name;
    // All group keys must be plain column refs.
    for (const ExprPtr& key : plan->group_keys) {
      if (key->kind != ExprKind::kColumnRef) return plan;
      query.dimensions.push_back(ToLower(base->schema.field(key->binding).name));
    }
    // Aggregates must map to droid aggregators.
    for (const AggCall& agg : plan->aggs) {
      if (agg.distinct) return plan;
      DroidAggSpec spec;
      spec.name = agg.name;
      if (agg.func == "COUNT") {
        spec.type = "count";
      } else {
        if (!agg.arg || agg.arg->kind != ExprKind::kColumnRef) return plan;
        spec.field = ToLower(base->schema.field(agg.arg->binding).name);
        if (agg.func == "SUM")
          spec.type = agg.result_type.kind == TypeKind::kBigint ? "longSum" : "doubleSum";
        else if (agg.func == "MIN")
          spec.type = "doubleMin";
        else if (agg.func == "MAX")
          spec.type = "doubleMax";
        else
          return plan;  // AVG etc. stay local
      }
      query.aggregations.push_back(std::move(spec));
    }
    // Every filter conjunct must convert.
    for (const ExprPtr& c : conjuncts)
      if (!ConvertFilter(c, base->schema, &query)) return plan;

    // Build the replacement scan carrying the generated query; its output
    // schema mirrors the aggregate's output.
    auto scan = std::make_shared<RelNode>();
    scan->kind = RelKind::kScan;
    scan->table = base->table;
    scan->scan_alias = base->scan_alias;
    scan->schema = plan->schema;
    for (size_t i = 0; i < plan->schema.num_fields(); ++i) scan->projected.push_back(i);
    scan->federated_query = query.ToJson();
    return RelNodePtr(scan);
  }
  // Pattern: Filter*(Scan[droid]) without aggregation: push the filters.
  if (plan->kind == RelKind::kFilter) {
    std::vector<ExprPtr> conjuncts;
    RelNodePtr base = UnwrapFilters(plan, &conjuncts);
    if (!IsHandlerScan(base, registry)) return plan;
    // Filters evaluate locally inside the scan (cheap enough); merge them
    // into scan_filters so the scan node owns them.
    for (const ExprPtr& c : conjuncts) base->scan_filters.push_back(c);
    return base;
  }
  return plan;
}

}  // namespace hive
