#ifndef HIVE_FEDERATION_CSV_HANDLER_H_
#define HIVE_FEDERATION_CSV_HANDLER_H_

#include "federation/storage_handler.h"
#include "fs/filesystem.h"

namespace hive {

/// A minimal "JDBC-style" handler: external tables stored as delimited text
/// files under the table location. Demonstrates the second pushdown target
/// class of Section 6.2 (engines reached via generated SQL — here the
/// generated form is the scan itself) and gives the engine a plain-text
/// interchange format. One file `data.csv`, '\x01'-free comma-separated
/// values with '\' escaping, one line per row.
class CsvStorageHandler : public StorageHandler {
 public:
  explicit CsvStorageHandler(FileSystem* fs) : fs_(fs) {}

  std::string name() const override { return "jdbc"; }

  Result<OperatorPtr> CreateScan(ExecContext* ctx, const RelNode& scan) override;
  Status Insert(const TableDesc& table, const RowBatch& rows) override;
  Status OnCreateTable(TableDesc* desc) override {
    desc->is_acid = false;
    return Status::OK();
  }

 private:
  std::string DataFile(const TableDesc& table) const {
    return JoinPath(table.location, "data.csv");
  }

  FileSystem* fs_;
};

/// CSV line helpers shared with the workload generators.
std::string CsvJoin(const std::vector<Value>& row);
std::vector<std::string> CsvSplit(const std::string& line);

}  // namespace hive

#endif  // HIVE_FEDERATION_CSV_HANDLER_H_
