#ifndef HIVE_FEDERATION_DROID_H_
#define HIVE_FEDERATION_DROID_H_

#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/column_vector.h"
#include "common/schema.h"
#include "common/sync.h"

namespace hive {

/// "droid": an embedded mini-OLAP store standing in for Apache Druid
/// (Section 6). It keeps the architectural properties the paper's Figure 8
/// experiment relies on:
///   * time-partitioned immutable segments,
///   * dictionary-encoded string dimensions with inverted indexes
///     (dimension value -> row ids), so selective dimensional filters touch
///     only matching rows,
///   * one-pass aggregation executed inside the store,
///   * a JSON query interface (groupBy / timeseries / topN / select) that
///     the Hive side generates via pushdown.
///
/// Tables ingest a `__time` column (TIMESTAMP) plus string dimensions and
/// numeric metrics; segments are cut monthly on `__time`.

struct DroidAggSpec {
  std::string type;   // "doubleSum", "longSum", "count", "doubleMin", "doubleMax"
  std::string name;   // output column
  std::string field;  // input metric ("" for count)
};

struct DroidSelector {
  std::string dimension;
  std::string value;
};

struct DroidBound {
  std::string dimension;  // numeric dimension or metric
  double lower = 0, upper = 0;
  bool has_lower = false, has_upper = false;
  /// Strict bounds exclude the endpoint (lower_strict: value > lower).
  bool lower_strict = false, upper_strict = false;
};

/// A parsed droid query. `ToJson` renders the wire form (Figure 6c);
/// `FromJson` is intentionally absent — the engine passes the struct via
/// the serialized form for fidelity with the paper's flow and re-parses
/// with ParseDroidQuery below.
struct DroidQuery {
  std::string query_type = "groupBy";  // groupBy | timeseries | topN | select
  std::string datasource;
  std::vector<std::string> dimensions;
  std::vector<DroidAggSpec> aggregations;
  std::vector<DroidSelector> filters;       // dimension = value (ANDed)
  std::vector<std::string> in_dimension;    // dimension for IN filter
  std::vector<std::vector<std::string>> in_values;
  std::vector<DroidBound> bounds;           // numeric range filters
  int64_t interval_start_us = INT64_MIN;
  int64_t interval_end_us = INT64_MAX;
  int64_t limit = -1;
  std::vector<std::pair<std::string, bool>> order_by;  // column, ascending

  std::string ToJson() const;
};

Result<DroidQuery> ParseDroidQuery(const std::string& json);

/// One immutable time-partitioned segment.
class DroidSegment {
 public:
  DroidSegment(Schema schema, int64_t start_us, int64_t end_us);

  void Append(const std::vector<Value>& row);
  /// Seals the segment: builds dictionaries and inverted indexes.
  void Seal();

  const Schema& schema() const { return schema_; }
  size_t num_rows() const { return num_rows_; }
  int64_t start_us() const { return start_us_; }
  int64_t end_us() const { return end_us_; }

  /// Row ids matching a dimension selector via the inverted index; nullptr
  /// when the value is absent (no rows).
  const std::vector<int32_t>* Postings(const std::string& dimension,
                                       const std::string& value) const;
  Value GetValue(size_t row, size_t column) const { return columns_[column]->GetValue(row); }
  const ColumnVector& column(size_t i) const { return *columns_[i]; }

 private:
  Schema schema_;
  int64_t start_us_, end_us_;
  size_t num_rows_ = 0;
  std::vector<ColumnVectorPtr> columns_;
  /// inverted_[column name][value] -> sorted row ids.
  std::map<std::string, std::unordered_map<std::string, std::vector<int32_t>>> inverted_;
  bool sealed_ = false;
};

/// A named datasource: schema + segments.
class DroidDataSource {
 public:
  explicit DroidDataSource(Schema schema) : schema_(std::move(schema)) {}

  const Schema& schema() const { return schema_; }
  Status Ingest(const RowBatch& rows);
  size_t num_rows() const;
  size_t num_segments() const { return segments_.size(); }

  Result<RowBatch> Execute(const DroidQuery& query) const;

 private:
  Schema schema_;
  std::map<int64_t, std::unique_ptr<DroidSegment>> segments_;  // by month start
};

/// The store: a registry of datasources, shared by handler instances.
class DroidStore {
 public:
  Status CreateDataSource(const std::string& name, Schema schema);
  bool Exists(const std::string& name) const;
  Result<Schema> GetSchema(const std::string& name) const;
  Status Ingest(const std::string& name, const RowBatch& rows);
  Result<RowBatch> Execute(const DroidQuery& query) const;
  size_t NumRows(const std::string& name) const;

 private:
  mutable Mutex mu_{"droid.store.mu"};
  std::map<std::string, std::unique_ptr<DroidDataSource>> sources_ HIVE_GUARDED_BY(mu_);
};

}  // namespace hive

#endif  // HIVE_FEDERATION_DROID_H_
