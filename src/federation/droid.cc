#include "federation/droid.h"

#include <algorithm>
#include <cstring>

#include "common/hash.h"

namespace hive {

namespace {

constexpr int64_t kMonthUs = 30LL * 86400 * 1000000;

std::string JsonEscape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

}  // namespace

std::string DroidQuery::ToJson() const {
  std::string out = "{\n";
  out += "  \"queryType\": \"" + query_type + "\",\n";
  out += "  \"dataSource\": \"" + JsonEscape(datasource) + "\",\n";
  out += "  \"granularity\": \"all\",\n";
  out += "  \"dimensions\": [";
  for (size_t i = 0; i < dimensions.size(); ++i) {
    if (i) out += ", ";
    out += "\"" + JsonEscape(dimensions[i]) + "\"";
  }
  out += "],\n  \"aggregations\": [";
  for (size_t i = 0; i < aggregations.size(); ++i) {
    if (i) out += ", ";
    out += "{ \"type\": \"" + aggregations[i].type + "\", \"name\": \"" +
           JsonEscape(aggregations[i].name) + "\", \"fieldName\": \"" +
           JsonEscape(aggregations[i].field) + "\" }";
  }
  out += "],\n  \"filter\": [";
  bool first = true;
  for (const DroidSelector& s : filters) {
    if (!first) out += ", ";
    first = false;
    out += "{ \"type\": \"selector\", \"dimension\": \"" + JsonEscape(s.dimension) +
           "\", \"value\": \"" + JsonEscape(s.value) + "\" }";
  }
  for (size_t i = 0; i < in_dimension.size(); ++i) {
    if (!first) out += ", ";
    first = false;
    out += "{ \"type\": \"in\", \"dimension\": \"" + JsonEscape(in_dimension[i]) +
           "\", \"values\": [";
    for (size_t v = 0; v < in_values[i].size(); ++v) {
      if (v) out += ", ";
      out += "\"" + JsonEscape(in_values[i][v]) + "\"";
    }
    out += "] }";
  }
  for (const DroidBound& b : bounds) {
    if (!first) out += ", ";
    first = false;
    out += "{ \"type\": \"bound\", \"dimension\": \"" + JsonEscape(b.dimension) + "\"";
    if (b.has_lower)
      out += ", \"lower\": " + std::to_string(b.lower) + ", \"lowerStrict\": " +
             (b.lower_strict ? "true" : "false");
    if (b.has_upper)
      out += ", \"upper\": " + std::to_string(b.upper) + ", \"upperStrict\": " +
             (b.upper_strict ? "true" : "false");
    out += " }";
  }
  out += "],\n";
  out += "  \"intervals\": [\"" + std::to_string(interval_start_us) + "/" +
         std::to_string(interval_end_us) + "\"],\n";
  out += "  \"limit\": " + std::to_string(limit) + ",\n";
  out += "  \"orderBy\": [";
  for (size_t i = 0; i < order_by.size(); ++i) {
    if (i) out += ", ";
    out += "{ \"column\": \"" + JsonEscape(order_by[i].first) + "\", \"direction\": \"" +
           (order_by[i].second ? "ascending" : "descending") + "\" }";
  }
  out += "]\n}";
  return out;
}

// Minimal parser for the exact shape ToJson emits (the engine is both
// producer and consumer; a full JSON parser would add nothing here).
namespace {

std::string Unescape(const std::string& s) {
  std::string out;
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '\\' && i + 1 < s.size()) ++i;
    out.push_back(s[i]);
  }
  return out;
}

/// Reads the quoted string immediately after `key` (first occurrence from
/// `from`), returning its end position.
bool ReadString(const std::string& json, size_t* pos, std::string* out) {
  size_t q1 = json.find('"', *pos);
  if (q1 == std::string::npos) return false;
  size_t q2 = q1 + 1;
  while (q2 < json.size() && (json[q2] != '"' || json[q2 - 1] == '\\')) ++q2;
  if (q2 >= json.size()) return false;
  *out = Unescape(json.substr(q1 + 1, q2 - q1 - 1));
  *pos = q2 + 1;
  return true;
}

}  // namespace

Result<DroidQuery> ParseDroidQuery(const std::string& json) {
  DroidQuery q;
  auto field_string = [&](const char* key, std::string* out) {
    size_t pos = json.find(std::string("\"") + key + "\":");
    if (pos == std::string::npos) return false;
    pos += std::strlen(key) + 3;
    return ReadString(json, &pos, out);
  };
  field_string("queryType", &q.query_type);
  field_string("dataSource", &q.datasource);

  // dimensions
  size_t pos = json.find("\"dimensions\": [");
  if (pos != std::string::npos) {
    size_t end = json.find(']', pos);
    size_t cursor = pos + 15;
    while (cursor < end) {
      std::string dim;
      size_t next = cursor;
      if (!ReadString(json, &next, &dim) || next > end) break;
      q.dimensions.push_back(dim);
      cursor = next;
    }
  }
  // aggregations
  pos = json.find("\"aggregations\": [");
  if (pos != std::string::npos) {
    size_t end = json.find("],", pos);
    size_t cursor = pos;
    for (;;) {
      size_t obj = json.find("{ \"type\":", cursor);
      if (obj == std::string::npos || obj > end) break;
      DroidAggSpec agg;
      size_t p = obj + 9;
      ReadString(json, &p, &agg.type);
      p = json.find("\"name\":", obj) + 7;
      ReadString(json, &p, &agg.name);
      p = json.find("\"fieldName\":", obj) + 12;
      ReadString(json, &p, &agg.field);
      q.aggregations.push_back(agg);
      cursor = obj + 9;
    }
  }
  // filters
  pos = json.find("\"filter\": [");
  if (pos != std::string::npos) {
    size_t end = json.find("],", pos);
    size_t cursor = pos;
    for (;;) {
      size_t obj = json.find("{ \"type\": \"", cursor);
      if (obj == std::string::npos || obj > end) break;
      size_t p = obj + 11;
      std::string type = json.substr(p, json.find('"', p) - p);
      if (type == "selector") {
        DroidSelector s;
        size_t dp = json.find("\"dimension\":", obj) + 12;
        ReadString(json, &dp, &s.dimension);
        size_t vp = json.find("\"value\":", obj) + 8;
        ReadString(json, &vp, &s.value);
        q.filters.push_back(s);
      } else if (type == "in") {
        std::string dim;
        size_t dp = json.find("\"dimension\":", obj) + 12;
        ReadString(json, &dp, &dim);
        size_t vs = json.find("\"values\": [", obj) + 11;
        size_t ve = json.find(']', vs);
        std::vector<std::string> values;
        size_t cur = vs;
        while (cur < ve) {
          std::string v;
          size_t next = cur;
          if (!ReadString(json, &next, &v) || next > ve) break;
          values.push_back(v);
          cur = next;
        }
        q.in_dimension.push_back(dim);
        q.in_values.push_back(values);
      } else if (type == "bound") {
        DroidBound b;
        size_t dp = json.find("\"dimension\":", obj) + 12;
        ReadString(json, &dp, &b.dimension);
        size_t obj_end = json.find('}', obj);
        size_t lp = json.find("\"lower\":", obj);
        if (lp != std::string::npos && lp < obj_end) {
          b.has_lower = true;
          b.lower = std::strtod(json.c_str() + lp + 8, nullptr);
          size_t ls = json.find("\"lowerStrict\":", obj);
          if (ls != std::string::npos && ls < obj_end)
            b.lower_strict = json.compare(ls + 15, 4, "true") == 0;
        }
        size_t up = json.find("\"upper\":", obj);
        if (up != std::string::npos && up < obj_end) {
          b.has_upper = true;
          b.upper = std::strtod(json.c_str() + up + 8, nullptr);
          size_t us = json.find("\"upperStrict\":", obj);
          if (us != std::string::npos && us < obj_end)
            b.upper_strict = json.compare(us + 15, 4, "true") == 0;
        }
        q.bounds.push_back(b);
      }
      cursor = obj + 11;
    }
  }
  // intervals
  pos = json.find("\"intervals\": [\"");
  if (pos != std::string::npos) {
    const char* p = json.c_str() + pos + 15;
    q.interval_start_us = std::strtoll(p, nullptr, 10);
    size_t slash = json.find('/', pos);
    if (slash != std::string::npos)
      q.interval_end_us = std::strtoll(json.c_str() + slash + 1, nullptr, 10);
  }
  pos = json.find("\"limit\": ");
  if (pos != std::string::npos) q.limit = std::strtoll(json.c_str() + pos + 9, nullptr, 10);
  // orderBy
  pos = json.find("\"orderBy\": [");
  if (pos != std::string::npos) {
    size_t cursor = pos;
    for (;;) {
      size_t obj = json.find("{ \"column\":", cursor);
      if (obj == std::string::npos) break;
      std::string column, direction;
      size_t p = obj + 11;
      ReadString(json, &p, &column);
      size_t dp = json.find("\"direction\":", obj) + 12;
      ReadString(json, &dp, &direction);
      q.order_by.push_back({column, direction == "ascending"});
      cursor = obj + 11;
    }
  }
  return q;
}

DroidSegment::DroidSegment(Schema schema, int64_t start_us, int64_t end_us)
    : schema_(std::move(schema)), start_us_(start_us), end_us_(end_us) {
  for (size_t i = 0; i < schema_.num_fields(); ++i)
    columns_.push_back(std::make_shared<ColumnVector>(schema_.field(i).type));
}

void DroidSegment::Append(const std::vector<Value>& row) {
  for (size_t c = 0; c < columns_.size(); ++c)
    columns_[c]->AppendValue(c < row.size() ? row[c] : Value::Null());
  ++num_rows_;
  sealed_ = false;
}

void DroidSegment::Seal() {
  if (sealed_) return;
  inverted_.clear();
  for (size_t c = 0; c < schema_.num_fields(); ++c) {
    if (schema_.field(c).type.kind != TypeKind::kString) continue;
    auto& index = inverted_[ToLower(schema_.field(c).name)];
    for (size_t r = 0; r < num_rows_; ++r) {
      if (columns_[c]->IsNull(r)) continue;
      index[columns_[c]->GetStr(r)].push_back(static_cast<int32_t>(r));
    }
  }
  sealed_ = true;
}

const std::vector<int32_t>* DroidSegment::Postings(const std::string& dimension,
                                                   const std::string& value) const {
  auto dim = inverted_.find(ToLower(dimension));
  if (dim == inverted_.end()) return nullptr;
  auto val = dim->second.find(value);
  static const std::vector<int32_t> kEmpty;
  return val == dim->second.end() ? &kEmpty : &val->second;
}

Status DroidDataSource::Ingest(const RowBatch& rows) {
  auto time_index = schema_.IndexOf("__time");
  for (size_t i = 0; i < rows.SelectedSize(); ++i) {
    std::vector<Value> row = rows.GetRow(i);
    int64_t ts = time_index && !row[*time_index].is_null() ? row[*time_index].i64() : 0;
    int64_t month = ts >= 0 ? ts / kMonthUs : (ts - kMonthUs + 1) / kMonthUs;
    auto it = segments_.find(month);
    if (it == segments_.end()) {
      it = segments_
               .emplace(month, std::make_unique<DroidSegment>(
                                   schema_, month * kMonthUs, (month + 1) * kMonthUs))
               .first;
    }
    it->second->Append(row);
  }
  return Status::OK();
}

size_t DroidDataSource::num_rows() const {
  size_t n = 0;
  for (const auto& [month, segment] : segments_) n += segment->num_rows();
  return n;
}

Result<RowBatch> DroidDataSource::Execute(const DroidQuery& query) const {
  // Raw "select" scan: all columns, filters applied, no aggregation.
  if (query.query_type == "select") {
    RowBatch out(schema_);
    size_t out_rows = 0;
    auto time_index = schema_.IndexOf("__time");
    for (const auto& [month, segment] : segments_) {
      for (size_t r = 0; r < segment->num_rows(); ++r) {
        bool pass = true;
        for (const DroidSelector& sel : query.filters) {
          auto idx = schema_.IndexOf(sel.dimension);
          if (!idx) continue;
          Value v = segment->GetValue(r, *idx);
          if (v.is_null() || v.ToString() != sel.value) pass = false;
          if (!pass) break;
        }
        if (pass && time_index) {
          Value t = segment->GetValue(r, *time_index);
          if (!t.is_null() &&
              (t.i64() < query.interval_start_us || t.i64() >= query.interval_end_us))
            pass = false;
        }
        if (!pass) continue;
        ++out_rows;
        for (size_t c = 0; c < schema_.num_fields(); ++c)
          out.column(c)->AppendValue(segment->GetValue(r, c));
        if (query.limit >= 0 && static_cast<int64_t>(out_rows) >= query.limit) break;
      }
    }
    out.set_num_rows(out_rows);
    return out;
  }
  // Output schema: dimensions (as stored types) then aggregations.
  Schema out_schema;
  std::vector<int> dim_cols;
  for (const std::string& dim : query.dimensions) {
    auto idx = schema_.IndexOf(dim);
    if (!idx) return Status::InvalidArgument("droid: unknown dimension " + dim);
    dim_cols.push_back(static_cast<int>(*idx));
    out_schema.AddField(schema_.field(*idx).name, schema_.field(*idx).type);
  }
  std::vector<int> agg_cols;
  for (const DroidAggSpec& agg : query.aggregations) {
    if (agg.type == "count") {
      agg_cols.push_back(-1);
      out_schema.AddField(agg.name, DataType::Bigint());
      continue;
    }
    auto idx = schema_.IndexOf(agg.field);
    if (!idx) return Status::InvalidArgument("droid: unknown metric " + agg.field);
    agg_cols.push_back(static_cast<int>(*idx));
    out_schema.AddField(agg.name, agg.type == "longSum" ? DataType::Bigint()
                                                        : DataType::Double());
  }
  auto time_index = schema_.IndexOf("__time");
  // Pre-resolve bound-filter columns (per-row hot loop below).
  std::vector<int> bound_cols(query.bounds.size(), -1);
  for (size_t b = 0; b < query.bounds.size(); ++b) {
    auto idx = schema_.IndexOf(query.bounds[b].dimension);
    if (idx) bound_cols[b] = static_cast<int>(*idx);
  }

  struct GroupAcc {
    std::vector<Value> dims;
    std::vector<double> sums;
    std::vector<int64_t> counts;
    std::vector<double> mins, maxs;
    bool any = false;
  };
  std::unordered_map<uint64_t, std::vector<GroupAcc>> groups;

  for (const auto& [month, segment] : segments_) {
    const_cast<DroidSegment*>(segment.get())->Seal();
    if (segment->end_us() <= query.interval_start_us ||
        segment->start_us() >= query.interval_end_us) {
      // Segment-level interval pruning: outside the requested intervals.
      if (time_index) continue;
    }
    // Candidate rows from inverted indexes.
    std::vector<int32_t> candidates;
    bool restricted = false;
    for (const DroidSelector& sel : query.filters) {
      const std::vector<int32_t>* postings = segment->Postings(sel.dimension, sel.value);
      if (!postings) continue;  // not an indexed dimension; filtered below
      if (!restricted) {
        candidates = *postings;
        restricted = true;
      } else {
        std::vector<int32_t> merged;
        std::set_intersection(candidates.begin(), candidates.end(), postings->begin(),
                              postings->end(), std::back_inserter(merged));
        candidates = std::move(merged);
      }
    }
    for (size_t f = 0; f < query.in_dimension.size(); ++f) {
      std::vector<int32_t> unioned;
      bool indexed = true;
      for (const std::string& value : query.in_values[f]) {
        const std::vector<int32_t>* postings =
            segment->Postings(query.in_dimension[f], value);
        if (!postings) {
          indexed = false;
          break;
        }
        std::vector<int32_t> merged;
        std::set_union(unioned.begin(), unioned.end(), postings->begin(), postings->end(),
                       std::back_inserter(merged));
        unioned = std::move(merged);
      }
      if (!indexed) continue;
      if (!restricted) {
        candidates = std::move(unioned);
        restricted = true;
      } else {
        std::vector<int32_t> merged;
        std::set_intersection(candidates.begin(), candidates.end(), unioned.begin(),
                              unioned.end(), std::back_inserter(merged));
        candidates = std::move(merged);
      }
    }
    if (!restricted) {
      candidates.resize(segment->num_rows());
      for (size_t r = 0; r < segment->num_rows(); ++r)
        candidates[r] = static_cast<int32_t>(r);
    }

    for (int32_t r : candidates) {
      // Residual filters: time interval and numeric bounds.
      if (time_index) {
        Value t = segment->GetValue(r, *time_index);
        if (!t.is_null() &&
            (t.i64() < query.interval_start_us || t.i64() >= query.interval_end_us))
          continue;
      }
      bool pass = true;
      for (size_t bi = 0; bi < query.bounds.size(); ++bi) {
        const DroidBound& b = query.bounds[bi];
        if (bound_cols[bi] < 0) continue;
        const ColumnVector& col = segment->column(bound_cols[bi]);
        if (col.IsNull(r)) {
          pass = false;
          break;
        }
        double d;
        switch (col.type().kind) {
          case TypeKind::kDouble: d = col.GetF64(r); break;
          case TypeKind::kDecimal:
            d = static_cast<double>(col.GetI64(r)) /
                static_cast<double>(Pow10(col.type().scale));
            break;
          default: d = static_cast<double>(col.GetI64(r)); break;
        }
        if (b.has_lower && (b.lower_strict ? d <= b.lower : d < b.lower)) pass = false;
        if (b.has_upper && (b.upper_strict ? d >= b.upper : d > b.upper)) pass = false;
        if (!pass) break;
      }
      if (!pass) continue;

      std::vector<Value> dims;
      dims.reserve(dim_cols.size());
      uint64_t h = 0x9e3779b97f4a7c15ULL;
      for (int c : dim_cols) {
        Value v = segment->GetValue(r, c);
        h = HashCombine(h, v.Hash());
        dims.push_back(std::move(v));
      }
      GroupAcc* acc = nullptr;
      auto& bucket = groups[h];
      for (GroupAcc& g : bucket) {
        bool equal = true;
        for (size_t k = 0; k < dims.size() && equal; ++k)
          if (Value::Compare(g.dims[k], dims[k]) != 0) equal = false;
        if (equal) {
          acc = &g;
          break;
        }
      }
      if (!acc) {
        GroupAcc g;
        g.dims = dims;
        g.sums.assign(query.aggregations.size(), 0);
        g.counts.assign(query.aggregations.size(), 0);
        g.mins.assign(query.aggregations.size(), 1e300);
        g.maxs.assign(query.aggregations.size(), -1e300);
        bucket.push_back(std::move(g));
        acc = &bucket.back();
      }
      acc->any = true;
      for (size_t a = 0; a < query.aggregations.size(); ++a) {
        if (agg_cols[a] < 0) {
          ++acc->counts[a];
          continue;
        }
        Value v = segment->GetValue(r, agg_cols[a]);
        if (v.is_null()) continue;
        double d = v.AsDouble();
        acc->sums[a] += d;
        ++acc->counts[a];
        acc->mins[a] = std::min(acc->mins[a], d);
        acc->maxs[a] = std::max(acc->maxs[a], d);
      }
    }
  }

  RowBatch out(out_schema);
  size_t out_rows = 0;
  for (const auto& [h, bucket] : groups) {
    for (const GroupAcc& g : bucket) {
      for (size_t k = 0; k < g.dims.size(); ++k) out.column(k)->AppendValue(g.dims[k]);
      for (size_t a = 0; a < query.aggregations.size(); ++a) {
        const std::string& type = query.aggregations[a].type;
        size_t col = g.dims.size() + a;
        if (type == "count" || type == "longSum") {
          out.column(col)->AppendValue(
              type == "count" ? Value::Bigint(g.counts[a])
                              : Value::Bigint(static_cast<int64_t>(g.sums[a])));
        } else if (type == "doubleMin") {
          out.column(col)->AppendValue(g.counts[a] ? Value::Double(g.mins[a]) : Value::Null());
        } else if (type == "doubleMax") {
          out.column(col)->AppendValue(g.counts[a] ? Value::Double(g.maxs[a]) : Value::Null());
        } else {
          out.column(col)->AppendValue(Value::Double(g.sums[a]));
        }
      }
      ++out_rows;
    }
  }
  out.set_num_rows(out_rows);

  // ORDER BY + LIMIT inside the store (topN / limitSpec semantics).
  if (!query.order_by.empty()) {
    std::vector<int32_t> order(out.num_rows());
    for (size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int32_t>(i);
    std::vector<int> key_cols;
    for (const auto& [column, asc] : query.order_by) {
      auto idx = out_schema.IndexOf(column);
      key_cols.push_back(idx ? static_cast<int>(*idx) : 0);
    }
    std::stable_sort(order.begin(), order.end(), [&](int32_t a, int32_t b) {
      for (size_t k = 0; k < key_cols.size(); ++k) {
        int cmp = Value::Compare(out.column(key_cols[k])->GetValue(a),
                                 out.column(key_cols[k])->GetValue(b));
        if (cmp != 0) return query.order_by[k].second ? cmp < 0 : cmp > 0;
      }
      return false;
    });
    if (query.limit >= 0 && static_cast<int64_t>(order.size()) > query.limit)
      order.resize(static_cast<size_t>(query.limit));
    out.SetSelection(std::move(order));
    out.Flatten();
  } else if (query.limit >= 0 && static_cast<int64_t>(out.num_rows()) > query.limit) {
    std::vector<int32_t> sel;
    for (int64_t i = 0; i < query.limit; ++i) sel.push_back(static_cast<int32_t>(i));
    out.SetSelection(std::move(sel));
    out.Flatten();
  }
  return out;
}

Status DroidStore::CreateDataSource(const std::string& name, Schema schema) {
  MutexLock lock(&mu_);
  if (sources_.count(name)) return Status::AlreadyExists("datasource " + name);
  sources_[name] = std::make_unique<DroidDataSource>(std::move(schema));
  return Status::OK();
}

bool DroidStore::Exists(const std::string& name) const {
  MutexLock lock(&mu_);
  return sources_.count(name) != 0;
}

Result<Schema> DroidStore::GetSchema(const std::string& name) const {
  MutexLock lock(&mu_);
  auto it = sources_.find(name);
  if (it == sources_.end()) return Status::NotFound("datasource " + name);
  return it->second->schema();
}

Status DroidStore::Ingest(const std::string& name, const RowBatch& rows) {
  MutexLock lock(&mu_);
  auto it = sources_.find(name);
  if (it == sources_.end()) return Status::NotFound("datasource " + name);
  return it->second->Ingest(rows);
}

Result<RowBatch> DroidStore::Execute(const DroidQuery& query) const {
  MutexLock lock(&mu_);
  auto it = sources_.find(query.datasource);
  if (it == sources_.end())
    return Status::NotFound("datasource " + query.datasource);
  return it->second->Execute(query);
}

size_t DroidStore::NumRows(const std::string& name) const {
  MutexLock lock(&mu_);
  auto it = sources_.find(name);
  return it == sources_.end() ? 0 : it->second->num_rows();
}

}  // namespace hive
