#ifndef HIVE_FEDERATION_MATERIALIZED_OPERATOR_H_
#define HIVE_FEDERATION_MATERIALIZED_OPERATOR_H_

#include "exec/operator.h"
#include "optimizer/rel.h"

namespace hive {

/// Adapts a batch fetched from an external engine to a scan node's contract:
/// casts columns to the scan's output types (the deserializer half of a
/// SerDe), applies residual scan filters, and emits one batch.
class MaterializedScanOperator : public Operator {
 public:
  /// `rows`' columns must correspond positionally to `node.schema` fields
  /// (types may differ; they are cast).
  MaterializedScanOperator(ExecContext* ctx, const RelNode& node, RowBatch rows);

  Status Open() override;
  Result<RowBatch> Next(bool* done) override;
  const Schema& schema() const override { return schema_; }

 private:
  Schema schema_;
  std::vector<ExprPtr> filters_;
  RowBatch rows_;
  bool emitted_ = false;
};

}  // namespace hive

#endif  // HIVE_FEDERATION_MATERIALIZED_OPERATOR_H_
