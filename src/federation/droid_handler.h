#ifndef HIVE_FEDERATION_DROID_HANDLER_H_
#define HIVE_FEDERATION_DROID_HANDLER_H_

#include "federation/droid.h"
#include "federation/storage_handler.h"

namespace hive {

/// Storage handler for droid-backed external tables (Section 6.1's Druid
/// handler). Tables declare `TBLPROPERTIES('droid.datasource' = '<name>')`;
/// when the table is created without columns, the schema is inferred from
/// the existing datasource (the paper's "automatically inferred from Druid
/// metadata"); when created with columns, the datasource is created.
class DroidStorageHandler : public StorageHandler {
 public:
  explicit DroidStorageHandler(DroidStore* store) : store_(store) {}

  std::string name() const override { return "droid"; }

  Result<OperatorPtr> CreateScan(ExecContext* ctx, const RelNode& scan) override;
  Status Insert(const TableDesc& table, const RowBatch& rows) override;
  Status OnCreateTable(TableDesc* desc) override;

  DroidStore* store() { return store_; }

  /// Number of queries pushed down (observability for Figure 8 runs).
  int64_t pushed_queries() const { return pushed_queries_; }

 private:
  static std::string DataSourceName(const TableDesc& desc);

  DroidStore* store_;
  int64_t pushed_queries_ = 0;
};

}  // namespace hive

#endif  // HIVE_FEDERATION_DROID_HANDLER_H_
