#ifndef HIVE_OBS_QUERY_PROFILE_H_
#define HIVE_OBS_QUERY_PROFILE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "obs/metric_names.h"

namespace hive {
namespace obs {

/// Per-operator execution span: filled in by the profiling wrapper the
/// compiler inserts around every physical operator. Times are *inclusive*
/// (children included) — self time derives by subtracting the children —
/// and come in two flavors mirroring SimClock: wall microseconds actually
/// spent, and virtual microseconds of modeled cluster latency (container
/// start-up, shuffle, injected faults, modeled scan CPU).
struct OperatorProfileNode {
  std::string name;    // operator kind: "Scan", "HashJoin", "ParallelAgg", ...
  std::string detail;  // e.g. table name, join type, "parallel x4"
  /// Blocking operators materialize their input before emitting (join
  /// build, aggregation, sort, window): their memory peak is the bytes they
  /// held, while streaming operators only ever hold one batch.
  bool blocking = false;

  int64_t rows_out = 0;
  int64_t batches = 0;
  int64_t wall_us = 0;     // inclusive wall time across Open/Next/Close
  int64_t virtual_us = 0;  // inclusive modeled (SimClock) time
  uint64_t bytes_out = 0;  // sum of emitted batch footprints
  uint64_t peak_mem_bytes = 0;  // estimate; see `blocking`

  std::vector<std::shared_ptr<OperatorProfileNode>> children;

  /// Inclusive minus children-inclusive (never below 0).
  int64_t SelfWallUs() const;
  int64_t SelfVirtualUs() const;
};

using OperatorProfileNodePtr = std::shared_ptr<OperatorProfileNode>;

/// The structured execution record attached to every QueryResult: a flat
/// bag of named counters ("task.retries", "time.wall_us", ...) plus the
/// operator-span tree rooted at the query's physical plan. Counter names
/// follow the registry's naming scheme so per-query numbers line up with
/// the engine-wide SHOW METRICS output.
///
/// Not thread-safe: one query's coordinator writes it; readers consume it
/// after the query finishes.
class QueryProfile {
 public:
  // --- counters ---
  void SetCounter(const std::string& name, int64_t v) { counters_[name] = v; }
  void AddCounter(const std::string& name, int64_t delta) {
    counters_[name] += delta;
  }
  /// 0 when the counter was never recorded.
  int64_t counter(const std::string& name) const {
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
  }
  const std::map<std::string, int64_t>& counters() const { return counters_; }

  // --- operator tree ---
  /// Attaches a compiled plan's span tree. The first root is the main
  /// query plan; later roots are auxiliary plans (semijoin-reducer builds).
  void AttachRoot(OperatorProfileNodePtr root) {
    roots_.push_back(std::move(root));
  }
  /// Drops all spans; called before a re-execution attempt recompiles so
  /// the retained tree always describes the attempt that produced the rows.
  void ResetOperatorTree() { roots_.clear(); }
  const std::vector<OperatorProfileNodePtr>& roots() const { return roots_; }
  /// Main plan root (null when the statement never compiled a plan).
  const OperatorProfileNode* root() const {
    return roots_.empty() ? nullptr : roots_.front().get();
  }

  /// Sums SelfVirtualUs over the main plan's spans — identically the main
  /// root's inclusive time. Auxiliary roots are *excluded*: semijoin-reducer
  /// builds execute inside the main plan's scan Open, so their time is
  /// already inside the main root and adding them would double-count.
  int64_t TreeVirtualUs() const;
  int64_t TreeWallUs() const;

  /// One-line digest: rows, wall+virtual time, cache hit, retries.
  std::string Summary() const;
  /// Plan tree annotated with actuals (EXPLAIN ANALYZE body) followed by
  /// the counter block.
  std::string ToString() const;
  /// JSON export for benches: {"counters": {...}, "plan": {...}}.
  std::string ToJson() const;

 private:
  std::map<std::string, int64_t> counters_;
  std::vector<OperatorProfileNodePtr> roots_;
};

// The well-known per-query counter names live in obs/metric_names.h with
// every other metric name; qc is an alias of that registry (kept for the
// server, the deprecated QueryResult accessors and tests).

}  // namespace obs
}  // namespace hive

#endif  // HIVE_OBS_QUERY_PROFILE_H_
