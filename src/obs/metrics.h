#ifndef HIVE_OBS_METRICS_H_
#define HIVE_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/sync.h"

namespace hive {
namespace obs {

/// Metric naming scheme (see DESIGN.md "Observability"): dot-separated,
/// lower-case, `<subsystem>.<object>.<event>` — e.g. "llap.cache.hits",
/// "exec.morsels.claimed", "task.retries". Counters count events, gauges
/// report a current level, histograms record a distribution of values
/// (microsecond latencies, bytes).

/// A monotonically increasing event counter. Increments land on one of
/// several cache-line-padded shards chosen by the calling thread, so
/// concurrent writers on the hot path never contend on one cache line;
/// `value()` (the snapshot path) sums the shards.
class Counter {
 public:
  static constexpr int kShards = 16;

  void Add(int64_t delta) {
    shards_[ShardIndex()].v.fetch_add(delta, std::memory_order_relaxed);
  }
  void Inc() { Add(1); }

  /// Sum over shards. Concurrent increments may or may not be included
  /// (each shard is read atomically; the sum is not a point-in-time cut).
  int64_t value() const {
    int64_t sum = 0;
    for (const Shard& s : shards_) sum += s.v.load(std::memory_order_relaxed);
    return sum;
  }

 private:
  struct alignas(64) Shard {
    std::atomic<int64_t> v{0};
  };

  static unsigned ShardIndex() {
    // Cheap per-thread shard assignment: round-robin on first use.
    static std::atomic<unsigned> next{0};
    thread_local unsigned slot = next.fetch_add(1, std::memory_order_relaxed);
    return slot % kShards;
  }

  Shard shards_[kShards];
};

/// A current-level metric (bytes in use, active queries). Set/Add semantics.
class Gauge {
 public:
  void Set(int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void Add(int64_t delta) { v_.fetch_add(delta, std::memory_order_relaxed); }
  int64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> v_{0};
};

/// A lock-free histogram over power-of-two buckets (bucket i holds values
/// in [2^(i-1), 2^i), bucket 0 holds 0). Suited to latency/byte
/// distributions where a factor-of-two resolution is enough.
class Histogram {
 public:
  static constexpr int kBuckets = 48;

  void Record(int64_t v);

  int64_t count() const { return count_.load(std::memory_order_relaxed); }
  int64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  int64_t max() const { return max_.load(std::memory_order_relaxed); }
  double mean() const {
    int64_t n = count();
    return n ? static_cast<double>(sum()) / static_cast<double>(n) : 0.0;
  }
  /// Upper bound of the bucket containing the p-th percentile (p in [0,1]).
  int64_t ValueAtPercentile(double p) const;

 private:
  std::atomic<int64_t> buckets_[kBuckets] = {};
  std::atomic<int64_t> count_{0};
  std::atomic<int64_t> sum_{0};
  std::atomic<int64_t> max_{0};
};

/// Point-in-time view of every metric in a registry. Counter/gauge/callback
/// values flatten into one name -> value map; histograms carry a summary.
struct MetricsSnapshot {
  struct HistogramSummary {
    int64_t count = 0;
    int64_t sum = 0;
    int64_t max = 0;
    int64_t p50 = 0;
    int64_t p95 = 0;
  };

  std::map<std::string, int64_t> values;
  std::map<std::string, HistogramSummary> histograms;

  /// Value lookup with 0 default (histograms expose "<name>.count" etc.).
  int64_t Get(const std::string& name) const {
    auto it = values.find(name);
    return it == values.end() ? 0 : it->second;
  }

  /// Stable JSON export for benches ({"name": value, ...}).
  std::string ToJson() const;
};

/// Registry of named metrics. Lookup (`counter("x")`) takes a mutex once;
/// callers cache the returned pointer, which stays valid for the registry's
/// lifetime, so steady-state increments are lock-free. Components that
/// already maintain internal atomics (the LLAP cache, the result cache, the
/// transaction manager) register *callback gauges* instead: the registry
/// polls them only when a snapshot is taken, adding zero hot-path cost.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Returns the named metric, creating it on first use. Pointers are
  /// stable; hold them instead of re-resolving names on hot paths.
  Counter* counter(const std::string& name);
  Gauge* gauge(const std::string& name);
  Histogram* histogram(const std::string& name);

  /// Registers a pull-style gauge evaluated at snapshot time. Re-registering
  /// a name replaces the callback (daemon restart).
  void RegisterCallback(const std::string& name, std::function<int64_t()> fn);

  /// Aggregates every shard/callback into a consistent-enough point view.
  MetricsSnapshot Snapshot() const;

  /// Point lookup without creating the metric: counters, gauges, callback
  /// gauges and histogram summary suffixes ("<name>.count", ".sum", ".max",
  /// ".p50", ".p95") all resolve; unknown names return 0. Used by the
  /// workload manager's trigger rules, which reference metrics by name.
  int64_t Value(const std::string& name) const;

 private:
  mutable Mutex mu_{"metrics.registry.mu"};
  std::map<std::string, std::unique_ptr<Counter>> counters_ HIVE_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_ HIVE_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_ HIVE_GUARDED_BY(mu_);
  std::map<std::string, std::function<int64_t()>> callbacks_ HIVE_GUARDED_BY(mu_);
};

}  // namespace obs
}  // namespace hive

#endif  // HIVE_OBS_METRICS_H_
