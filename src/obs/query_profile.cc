#include "obs/query_profile.h"

#include <algorithm>
#include <cstdio>

namespace hive {
namespace obs {

namespace {

int64_t ChildrenWall(const OperatorProfileNode& n) {
  int64_t sum = 0;
  for (const auto& c : n.children) sum += c->wall_us;
  return sum;
}

int64_t ChildrenVirtual(const OperatorProfileNode& n) {
  int64_t sum = 0;
  for (const auto& c : n.children) sum += c->virtual_us;
  return sum;
}

std::string HumanUs(int64_t us) {
  char buf[32];
  if (us >= 1000000)
    std::snprintf(buf, sizeof(buf), "%.2fs", static_cast<double>(us) / 1e6);
  else if (us >= 1000)
    std::snprintf(buf, sizeof(buf), "%.1fms", static_cast<double>(us) / 1e3);
  else
    std::snprintf(buf, sizeof(buf), "%lldus", static_cast<long long>(us));
  return buf;
}

std::string HumanBytes(uint64_t b) {
  char buf[32];
  if (b >= (1u << 20))
    std::snprintf(buf, sizeof(buf), "%.1fMB", static_cast<double>(b) / (1u << 20));
  else if (b >= (1u << 10))
    std::snprintf(buf, sizeof(buf), "%.1fKB", static_cast<double>(b) / (1u << 10));
  else
    std::snprintf(buf, sizeof(buf), "%lluB", static_cast<unsigned long long>(b));
  return buf;
}

void RenderNode(const OperatorProfileNode& n, int depth, std::string* out) {
  out->append(static_cast<size_t>(depth) * 2, ' ');
  *out += n.name;
  if (!n.detail.empty()) *out += "[" + n.detail + "]";
  *out += " (rows=" + std::to_string(n.rows_out);
  *out += " batches=" + std::to_string(n.batches);
  *out += " wall=" + HumanUs(n.wall_us);
  *out += " virt=" + HumanUs(n.virtual_us);
  *out += " mem~" + HumanBytes(n.peak_mem_bytes);
  *out += ")\n";
  for (const auto& c : n.children) RenderNode(*c, depth + 1, out);
}

void SumTree(const OperatorProfileNode& n, int64_t* wall, int64_t* virt) {
  *wall += n.SelfWallUs();
  *virt += n.SelfVirtualUs();
  for (const auto& c : n.children) SumTree(*c, wall, virt);
}

void NodeJson(const OperatorProfileNode& n, std::string* out) {
  *out += "{\"op\":\"" + n.name + "\"";
  if (!n.detail.empty()) *out += ",\"detail\":\"" + n.detail + "\"";
  *out += ",\"rows\":" + std::to_string(n.rows_out);
  *out += ",\"batches\":" + std::to_string(n.batches);
  *out += ",\"wall_us\":" + std::to_string(n.wall_us);
  *out += ",\"virtual_us\":" + std::to_string(n.virtual_us);
  *out += ",\"peak_mem_bytes\":" + std::to_string(n.peak_mem_bytes);
  if (!n.children.empty()) {
    *out += ",\"children\":[";
    for (size_t i = 0; i < n.children.size(); ++i) {
      if (i) *out += ",";
      NodeJson(*n.children[i], out);
    }
    *out += "]";
  }
  *out += "}";
}

}  // namespace

int64_t OperatorProfileNode::SelfWallUs() const {
  return std::max<int64_t>(0, wall_us - ChildrenWall(*this));
}

int64_t OperatorProfileNode::SelfVirtualUs() const {
  return std::max<int64_t>(0, virtual_us - ChildrenVirtual(*this));
}

int64_t QueryProfile::TreeVirtualUs() const {
  if (roots_.empty()) return 0;
  int64_t wall = 0, virt = 0;
  SumTree(*roots_.front(), &wall, &virt);
  return virt;
}

int64_t QueryProfile::TreeWallUs() const {
  if (roots_.empty()) return 0;
  int64_t wall = 0, virt = 0;
  SumTree(*roots_.front(), &wall, &virt);
  return wall;
}

std::string QueryProfile::Summary() const {
  std::string out;
  out += std::to_string(counter(qc::kRowsReturned)) + " rows";
  out += ", wall " + HumanUs(counter(qc::kWallUs));
  out += " (+" + HumanUs(counter(qc::kVirtualUs)) + " virtual)";
  if (counter(qc::kFromResultCache)) out += ", result-cache hit";
  if (counter(qc::kMvRewrites))
    out += ", mv-rewrites " + std::to_string(counter(qc::kMvRewrites));
  if (counter(qc::kReexecutions))
    out += ", reexecutions " + std::to_string(counter(qc::kReexecutions));
  if (counter(qc::kTaskRetries))
    out += ", retries " + std::to_string(counter(qc::kTaskRetries));
  if (counter(qc::kSpeculativeTasks))
    out += ", speculative " + std::to_string(counter(qc::kSpeculativeTasks)) +
           "/" + std::to_string(counter(qc::kSpeculativeWins)) + " won";
  return out;
}

std::string QueryProfile::ToString() const {
  std::string out;
  for (size_t i = 0; i < roots_.size(); ++i) {
    if (i == 1)
      out +=
          "-- auxiliary plans (semijoin reducer builds; run inside the main "
          "plan's scan Open, so their time is included above) --\n";
    RenderNode(*roots_[i], 0, &out);
  }
  out += "-- " + Summary() + "\n";
  for (const auto& [name, value] : counters_)
    out += "   " + name + " = " + std::to_string(value) + "\n";
  return out;
}

std::string QueryProfile::ToJson() const {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : counters_) {
    if (!first) out += ",";
    first = false;
    out += "\"" + name + "\":" + std::to_string(value);
  }
  out += "}";
  if (!roots_.empty()) {
    out += ",\"plan\":";
    NodeJson(*roots_.front(), &out);
    if (roots_.size() > 1) {
      out += ",\"auxiliary\":[";
      for (size_t i = 1; i < roots_.size(); ++i) {
        if (i > 1) out += ",";
        NodeJson(*roots_[i], &out);
      }
      out += "]";
    }
  }
  out += "}";
  return out;
}

}  // namespace obs
}  // namespace hive
