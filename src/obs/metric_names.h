#ifndef HIVE_OBS_METRIC_NAMES_H_
#define HIVE_OBS_METRIC_NAMES_H_

// Central registry of every metric name in the system. Call sites reference
// these constants instead of spelling the string — a typo'd name becomes a
// compile error instead of a counter that silently reads zero forever, and
// tools/hivelint's drift pass enforces both directions: a string literal at
// a counter()/gauge()/histogram()/RegisterCallback() call site is
// [metric-literal], a constant here that no src/ file references is
// [metric-dead], and two constants with the same string are
// [metric-duplicate].
//
// Naming scheme: dotted paths, subsystem first (exec.*, llap.*, server.*,
// wlm.*, cache.result.*, time.*), _us suffix for microsecond quantities.

namespace hive {
namespace obs {
namespace metric {

// --- per-query profile counters (QueryProfile) ----------------------------
inline constexpr char kWallUs[] = "time.wall_us";
inline constexpr char kVirtualUs[] = "time.virtual_us";
inline constexpr char kRowsReturned[] = "exec.rows_returned";
inline constexpr char kFromResultCache[] = "cache.result.hit";
inline constexpr char kReexecutions[] = "query.reexecutions";
inline constexpr char kMvRewrites[] = "query.mv_rewrites";
inline constexpr char kTaskAttempts[] = "task.attempts";
inline constexpr char kTaskRetries[] = "task.retries";
inline constexpr char kSpeculativeTasks[] = "task.speculative";
inline constexpr char kSpeculativeWins[] = "task.speculative_wins";
inline constexpr char kLlapCacheHits[] = "llap.cache.hits";
inline constexpr char kLlapCacheMisses[] = "llap.cache.misses";

// --- execution engine -----------------------------------------------------
inline constexpr char kJoinBuildRows[] = "exec.join.build_rows";
inline constexpr char kJoinPerfectHash[] = "exec.join.perfect_hash";
inline constexpr char kJoinProbeHits[] = "exec.join.probe.hits";
inline constexpr char kJoinProbeMisses[] = "exec.join.probe.misses";
inline constexpr char kMorselsClaimed[] = "exec.morsels.claimed";
inline constexpr char kMorselsSkipped[] = "exec.morsels.skipped";
inline constexpr char kMorselCostUs[] = "exec.morsel.cost_us";
inline constexpr char kMorselQueueWaitUs[] = "exec.morsel.queue_wait_us";
inline constexpr char kSpillBytes[] = "exec.spill.bytes";
inline constexpr char kSpillPartitions[] = "exec.spill.partitions";
inline constexpr char kSpillMergePasses[] = "exec.spill.merge_passes";
inline constexpr char kSpillDeniedReservations[] = "exec.spill.denied_reservations";

// --- LLAP daemon ----------------------------------------------------------
inline constexpr char kLlapCacheEvictions[] = "llap.cache.evictions";
inline constexpr char kLlapCacheUsedBytes[] = "llap.cache.used_bytes";
inline constexpr char kLlapCacheChunks[] = "llap.cache.chunks";
inline constexpr char kLlapCacheDecodes[] = "llap.cache.decodes";
inline constexpr char kLlapCacheSingleflightWaits[] = "llap.cache.singleflight_waits";
inline constexpr char kLlapCacheMetadataHits[] = "llap.cache.metadata_hits";
inline constexpr char kLlapCachePoisonDetected[] = "llap.cache.poison_detected";
inline constexpr char kLlapCacheDegradedReads[] = "llap.cache.degraded_reads";
inline constexpr char kLlapCacheDegradedFiles[] = "llap.cache.degraded_files";
inline constexpr char kLlapFragmentsSubmitted[] = "llap.fragments.submitted";
inline constexpr char kLlapFragmentsCompleted[] = "llap.fragments.completed";
inline constexpr char kLlapIoPrefetches[] = "llap.io.prefetches";

// --- server ---------------------------------------------------------------
inline constexpr char kServerStatements[] = "server.statements";
inline constexpr char kServerQueries[] = "server.queries";
inline constexpr char kServerQueryErrors[] = "server.query_errors";
inline constexpr char kServerQueryWallUs[] = "server.query.wall_us";
inline constexpr char kSessionsOpened[] = "server.sessions.opened";
inline constexpr char kSessionsClosed[] = "server.sessions.closed";
inline constexpr char kSessionsActive[] = "server.sessions.active";
inline constexpr char kPlanCacheHits[] = "server.plan_cache.hits";
inline constexpr char kPlanCacheMisses[] = "server.plan_cache.misses";
inline constexpr char kPlanCacheInvalidations[] = "server.plan_cache.invalidations";
inline constexpr char kPlanCacheEntries[] = "server.plan_cache.entries";
inline constexpr char kResultCacheHits[] = "cache.result.hits";
inline constexpr char kResultCacheMisses[] = "cache.result.misses";
inline constexpr char kResultCacheEntries[] = "cache.result.entries";
inline constexpr char kTxnAborted[] = "txn.aborted";
inline constexpr char kCompactionRuns[] = "compaction.runs";
inline constexpr char kCompactionPendingCleans[] = "compaction.pending_cleans";

// --- workload management --------------------------------------------------
inline constexpr char kWlmQueued[] = "wlm.queue.queued";
inline constexpr char kWlmAdmitted[] = "wlm.queue.admitted";
inline constexpr char kWlmTimeouts[] = "wlm.queue.timeouts";
inline constexpr char kWlmRejected[] = "wlm.queue.rejected";
inline constexpr char kWlmWaitUs[] = "wlm.queue.wait_us";
inline constexpr char kWlmQueueDepth[] = "wlm.queue.depth";

}  // namespace metric

/// Historical alias: the per-query counter block predates the central
/// registry and was spelled qc::. Both names refer to the same constants.
namespace qc = metric;

}  // namespace obs
}  // namespace hive

#endif  // HIVE_OBS_METRIC_NAMES_H_
