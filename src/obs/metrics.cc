#include "obs/metrics.h"

#include <algorithm>

namespace hive {
namespace obs {

namespace {

int BucketFor(int64_t v) {
  if (v <= 0) return 0;
  int bucket = 1;
  while (bucket < Histogram::kBuckets - 1 && (int64_t{1} << bucket) <= v) ++bucket;
  return bucket;
}

int64_t BucketUpperBound(int bucket) {
  if (bucket <= 0) return 0;
  return int64_t{1} << bucket;
}

}  // namespace

void Histogram::Record(int64_t v) {
  buckets_[BucketFor(v)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
  int64_t prev = max_.load(std::memory_order_relaxed);
  while (v > prev &&
         !max_.compare_exchange_weak(prev, v, std::memory_order_relaxed)) {
  }
}

int64_t Histogram::ValueAtPercentile(double p) const {
  int64_t n = count();
  if (n <= 0) return 0;
  p = std::min(1.0, std::max(0.0, p));
  int64_t rank = static_cast<int64_t>(p * static_cast<double>(n - 1)) + 1;
  int64_t seen = 0;
  for (int b = 0; b < kBuckets; ++b) {
    seen += buckets_[b].load(std::memory_order_relaxed);
    if (seen >= rank) return BucketUpperBound(b);
  }
  return max();
}

Counter* MetricsRegistry::counter(const std::string& name) {
  MutexLock lock(&mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::gauge(const std::string& name) {
  MutexLock lock(&mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::histogram(const std::string& name) {
  MutexLock lock(&mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return slot.get();
}

void MetricsRegistry::RegisterCallback(const std::string& name,
                                       std::function<int64_t()> fn) {
  MutexLock lock(&mu_);
  callbacks_[name] = std::move(fn);
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  // Copy the callback list out so user callbacks never run under the
  // registry lock (they may take component locks of their own).
  std::vector<std::pair<std::string, std::function<int64_t()>>> callbacks;
  MetricsSnapshot snap;
  {
    MutexLock lock(&mu_);
    for (const auto& [name, c] : counters_) snap.values[name] = c->value();
    for (const auto& [name, g] : gauges_) snap.values[name] = g->value();
    for (const auto& [name, h] : histograms_) {
      MetricsSnapshot::HistogramSummary s;
      s.count = h->count();
      s.sum = h->sum();
      s.max = h->max();
      s.p50 = h->ValueAtPercentile(0.5);
      s.p95 = h->ValueAtPercentile(0.95);
      snap.histograms[name] = s;
      snap.values[name + ".count"] = s.count;
      snap.values[name + ".sum"] = s.sum;
      snap.values[name + ".max"] = s.max;
      snap.values[name + ".p50"] = s.p50;
      snap.values[name + ".p95"] = s.p95;
    }
    callbacks.assign(callbacks_.begin(), callbacks_.end());
  }
  for (const auto& [name, fn] : callbacks) snap.values[name] = fn();
  return snap;
}

int64_t MetricsRegistry::Value(const std::string& name) const {
  std::function<int64_t()> callback;
  {
    MutexLock lock(&mu_);
    if (auto it = counters_.find(name); it != counters_.end())
      return it->second->value();
    if (auto it = gauges_.find(name); it != gauges_.end())
      return it->second->value();
    // Histogram summaries are addressed by suffix: "x.p95" -> histogram "x".
    if (size_t dot = name.rfind('.'); dot != std::string::npos) {
      auto it = histograms_.find(name.substr(0, dot));
      if (it != histograms_.end()) {
        const std::string suffix = name.substr(dot + 1);
        const Histogram& h = *it->second;
        if (suffix == "count") return h.count();
        if (suffix == "sum") return h.sum();
        if (suffix == "max") return h.max();
        if (suffix == "p50") return h.ValueAtPercentile(0.5);
        if (suffix == "p95") return h.ValueAtPercentile(0.95);
      }
    }
    auto it = callbacks_.find(name);
    if (it == callbacks_.end()) return 0;
    callback = it->second;
  }
  // Run the callback outside the lock (it may take component locks).
  return callback();
}

std::string MetricsSnapshot::ToJson() const {
  std::string out = "{";
  bool first = true;
  for (const auto& [name, value] : values) {
    if (!first) out += ",";
    first = false;
    out += "\"" + name + "\":" + std::to_string(value);
  }
  out += "}";
  return out;
}

}  // namespace obs
}  // namespace hive
