#include "sql/lexer.h"

#include <cctype>
#include <cstdlib>
#include <set>

#include "common/schema.h"

namespace hive {

namespace {
const std::set<std::string>& Keywords() {
  static const auto* kKeywords = new std::set<std::string>{
      "SELECT", "FROM", "WHERE", "GROUP", "BY", "HAVING", "ORDER", "LIMIT",
      "AS", "AND", "OR", "NOT", "NULL", "TRUE", "FALSE", "IN", "EXISTS",
      "BETWEEN", "LIKE", "IS", "CASE", "WHEN", "THEN", "ELSE", "END", "CAST",
      "JOIN", "INNER", "LEFT", "RIGHT", "FULL", "OUTER", "CROSS", "ON",
      "UNION", "ALL", "INTERSECT", "EXCEPT", "DISTINCT", "ASC", "DESC",
      "INSERT", "INTO", "VALUES", "UPDATE", "SET", "DELETE", "MERGE", "USING",
      "MATCHED", "CREATE", "TABLE", "EXTERNAL", "VIEW", "MATERIALIZED",
      "DROP", "ALTER", "REBUILD", "PARTITIONED", "PARTITION", "STORED",
      "TBLPROPERTIES", "PRIMARY", "FOREIGN", "KEY", "REFERENCES", "UNIQUE",
      "CONSTRAINT", "INT", "INTEGER", "BIGINT", "DOUBLE", "FLOAT", "DECIMAL",
      "NUMERIC", "STRING", "VARCHAR", "CHAR", "BOOLEAN", "DATE", "TIMESTAMP",
      "EXTRACT", "YEAR", "QUARTER", "MONTH", "DAY", "HOUR", "MINUTE",
      "SECOND", "INTERVAL", "OVER", "ROWS", "RANGE", "UNBOUNDED", "PRECEDING",
      "FOLLOWING", "CURRENT", "ROW", "WITH", "EXPLAIN", "ANALYZE", "COMPUTE",
      "STATISTICS", "RESOURCE", "PLAN", "POOL", "RULE", "MOVE", "KILL",
      "TO", "ADD", "APPLICATION", "MAPPING", "DEFAULT", "ENABLE", "ACTIVATE",
      "GROUPING", "SETS", "ROLLUP", "CUBE", "HAVING", "BY", "IF", "TRANSACTIONAL",
      "SHOW", "TABLES", "DESCRIBE", "TRUNCATE", "METRICS",
      "PREPARE", "EXECUTE", "DEALLOCATE", "TEMPORARY", "DATABASE",
  };
  return *kKeywords;
}
}  // namespace

bool IsReservedKeyword(const std::string& word) { return Keywords().count(word) != 0; }

Result<std::vector<Token>> Tokenize(const std::string& sql) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = sql.size();
  while (i < n) {
    char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // -- line comments
    if (c == '-' && i + 1 < n && sql[i + 1] == '-') {
      while (i < n && sql[i] != '\n') ++i;
      continue;
    }
    Token token;
    token.position = i;
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = i;
      while (i < n && (std::isalnum(static_cast<unsigned char>(sql[i])) || sql[i] == '_'))
        ++i;
      std::string word = sql.substr(start, i - start);
      std::string upper = word;
      for (char& ch : upper) ch = static_cast<char>(std::toupper(static_cast<unsigned char>(ch)));
      if (IsReservedKeyword(upper)) {
        token.kind = TokenKind::kKeyword;
        token.text = upper;
      } else {
        token.kind = TokenKind::kIdentifier;
        token.text = word;
      }
    } else if (c == '`') {
      size_t start = ++i;
      while (i < n && sql[i] != '`') ++i;
      if (i >= n) return Status::ParseError("unterminated quoted identifier");
      token.kind = TokenKind::kIdentifier;
      token.text = sql.substr(start, i - start);
      ++i;
    } else if (std::isdigit(static_cast<unsigned char>(c)) ||
               (c == '.' && i + 1 < n && std::isdigit(static_cast<unsigned char>(sql[i + 1])))) {
      size_t start = i;
      bool is_double = false;
      while (i < n && std::isdigit(static_cast<unsigned char>(sql[i]))) ++i;
      if (i < n && sql[i] == '.') {
        is_double = true;
        ++i;
        while (i < n && std::isdigit(static_cast<unsigned char>(sql[i]))) ++i;
      }
      if (i < n && (sql[i] == 'e' || sql[i] == 'E')) {
        is_double = true;
        ++i;
        if (i < n && (sql[i] == '+' || sql[i] == '-')) ++i;
        while (i < n && std::isdigit(static_cast<unsigned char>(sql[i]))) ++i;
      }
      std::string text = sql.substr(start, i - start);
      token.text = text;
      if (is_double) {
        token.kind = TokenKind::kDoubleLiteral;
        token.double_value = std::strtod(text.c_str(), nullptr);
      } else {
        token.kind = TokenKind::kIntLiteral;
        token.int_value = std::strtoll(text.c_str(), nullptr, 10);
      }
    } else if (c == '\'') {
      ++i;
      std::string text;
      for (;;) {
        if (i >= n) return Status::ParseError("unterminated string literal");
        if (sql[i] == '\'') {
          if (i + 1 < n && sql[i + 1] == '\'') {  // '' escape
            text.push_back('\'');
            i += 2;
            continue;
          }
          ++i;
          break;
        }
        text.push_back(sql[i++]);
      }
      token.kind = TokenKind::kStringLiteral;
      token.text = std::move(text);
    } else {
      token.kind = TokenKind::kSymbol;
      // Two-character operators first.
      if (i + 1 < n) {
        std::string two = sql.substr(i, 2);
        if (two == "<=" || two == ">=" || two == "<>" || two == "!=" || two == "||") {
          token.text = two == "!=" ? "<>" : two;
          i += 2;
          tokens.push_back(token);
          continue;
        }
      }
      static const std::string kSingle = "(),.;*+-/%<>=?";
      if (kSingle.find(c) == std::string::npos)
        return Status::ParseError(std::string("unexpected character '") + c +
                                  "' at offset " + std::to_string(i));
      token.text = std::string(1, c);
      ++i;
    }
    tokens.push_back(std::move(token));
  }
  Token eof;
  eof.kind = TokenKind::kEof;
  eof.position = n;
  tokens.push_back(eof);
  return tokens;
}

}  // namespace hive
