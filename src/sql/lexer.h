#ifndef HIVE_SQL_LEXER_H_
#define HIVE_SQL_LEXER_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace hive {

/// Token kinds produced by the SQL lexer.
enum class TokenKind {
  kEof,
  kIdentifier,   // foo, `quoted`
  kKeyword,      // SELECT, FROM... (upper-cased in `text`)
  kIntLiteral,
  kDoubleLiteral,
  kStringLiteral,  // 'text' with '' escaping
  kSymbol,         // ( ) , . ; * + - / % < > = <= >= <> != ||
};

struct Token {
  TokenKind kind = TokenKind::kEof;
  std::string text;   // keywords upper-cased; identifiers as written
  int64_t int_value = 0;
  double double_value = 0;
  size_t position = 0;  // byte offset for error messages

  bool IsKeyword(const char* kw) const {
    return kind == TokenKind::kKeyword && text == kw;
  }
  bool IsSymbol(const char* s) const {
    return kind == TokenKind::kSymbol && text == s;
  }
};

/// Tokenizes `sql`. Keywords are recognized case-insensitively from a fixed
/// list; anything else alphanumeric is an identifier. `--` comments are
/// skipped.
Result<std::vector<Token>> Tokenize(const std::string& sql);

/// True when `word` (upper-case) is a reserved keyword.
bool IsReservedKeyword(const std::string& word);

}  // namespace hive

#endif  // HIVE_SQL_LEXER_H_
