#ifndef HIVE_SQL_PARSER_H_
#define HIVE_SQL_PARSER_H_

#include <string>
#include <vector>

#include "common/ast.h"
#include "sql/lexer.h"

namespace hive {

/// Recursive-descent parser for the HiveQL dialect this engine supports:
/// SELECT (joins, subqueries incl. correlated, set operations, grouping
/// sets, window functions, CTEs), INSERT/UPDATE/DELETE/MERGE, CREATE
/// [EXTERNAL] TABLE (PARTITIONED BY, constraints, STORED BY,
/// TBLPROPERTIES, CTAS), CREATE MATERIALIZED VIEW, ALTER MATERIALIZED VIEW
/// REBUILD, DROP, EXPLAIN, ANALYZE, and the workload-management DDL of
/// Section 5.2.
class Parser {
 public:
  /// Parses a single statement (trailing ';' permitted).
  static Result<StatementPtr> Parse(const std::string& sql);

  /// Parses a script of ';'-separated statements.
  static Result<std::vector<StatementPtr>> ParseScript(const std::string& sql);

 private:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  const Token& Peek(int ahead = 0) const;
  const Token& Next();
  bool Accept(const char* keyword_or_symbol);
  Status Expect(const char* keyword_or_symbol);
  Status ErrorHere(const std::string& message) const;

  Result<StatementPtr> ParseStatement();
  Result<std::shared_ptr<SelectStmt>> ParseSelectStmt();
  Result<std::shared_ptr<QueryExpr>> ParseQueryExpr();
  Result<std::shared_ptr<QueryExpr>> ParseQueryTerm();
  Result<SelectCore> ParseSelectCore();
  Result<TableRefPtr> ParseTableRef();
  Result<TableRefPtr> ParseTablePrimary();

  Result<ExprPtr> ParseExpr();
  Result<ExprPtr> ParseOr();
  Result<ExprPtr> ParseAnd();
  Result<ExprPtr> ParseNot();
  Result<ExprPtr> ParseComparison();
  Result<ExprPtr> ParseAdditive();
  Result<ExprPtr> ParseMultiplicative();
  Result<ExprPtr> ParseUnary();
  Result<ExprPtr> ParsePrimary();
  Result<ExprPtr> ParseFunctionCall(std::string name);
  Result<DataType> ParseDataType();
  Result<std::vector<ExprPtr>> ParseExprList();

  Result<StatementPtr> ParseInsert();
  Result<StatementPtr> ParseUpdate();
  Result<StatementPtr> ParseDelete();
  Result<StatementPtr> ParseMerge();
  Result<StatementPtr> ParseCreate();
  Result<StatementPtr> ParseCreateTable(bool external, bool temporary);
  Result<StatementPtr> ParseCreateMaterializedView();
  Result<StatementPtr> ParseDrop();
  Result<StatementPtr> ParseAlter();
  Result<StatementPtr> ParseResourcePlanCreate();
  Result<StatementPtr> ParseAnalyze();
  Result<StatementPtr> ParsePrepare();
  Result<StatementPtr> ParseExecute();
  Result<StatementPtr> ParseDeallocate();

  /// Parses [db.]name into the pair.
  Status ParseQualifiedName(std::string* db, std::string* name);

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  /// Count of `?` placeholders seen so far; assigns 1-based param indexes
  /// in textual order (only meaningful inside PREPARE).
  int params_seen_ = 0;
};

}  // namespace hive

#endif  // HIVE_SQL_PARSER_H_
